// Package dmknn is a distributed moving-k-nearest-neighbor query engine
// over moving objects — a reproduction of "Distributed Processing of
// Moving K-Nearest-Neighbor Query on Moving Objects" (ICDE 2007).
//
// A population of moving objects (vehicles, couriers, phones) is
// monitored by continuous kNN queries whose focal points also move. The
// engine answers every registered query at every evaluation interval
// while sending dramatically fewer wireless uplink messages than the
// classic stream-everything design: the objects themselves take part in
// query processing, transmitting only when an event near a query can
// change its answer. See DESIGN.md for the protocol and the formal
// guarantees (the default configuration maintains provably exact answers
// under an ideal network).
//
// Two ways to use the package:
//
//   - Simulation (Run): evaluate the protocol and the centralized
//     baselines on synthetic workloads with exact message metering and a
//     ground-truth auditor. This regenerates every figure and table of
//     the paper's evaluation (see EXPERIMENTS.md and cmd/dknn-bench).
//
//   - Deployment (ListenAndServe, DialObject, DialQuery): run the same
//     protocol state machines over real TCP connections, with the query
//     server as a daemon and object/query agents embedded in client
//     processes.
package dmknn

import (
	"fmt"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Vector is a velocity in meters per second.
type Vector struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle given by its corners.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// ObjectID identifies a moving data object.
type ObjectID uint32

// QueryID identifies a continuous kNN query.
type QueryID uint32

// Neighbor is one member of a query answer.
type Neighbor struct {
	ID       ObjectID
	Distance float64
}

// Answer is the current result of one continuous query: the k nearest
// objects in ascending distance order, as of the given evaluation tick.
type Answer struct {
	Query     QueryID
	Tick      int64
	Neighbors []Neighbor
}

// String implements fmt.Stringer.
func (a Answer) String() string {
	return fmt.Sprintf("query %d @%d: %v", a.Query, a.Tick, a.Neighbors)
}

func (p Point) internal() geo.Point   { return geo.Pt(p.X, p.Y) }
func (v Vector) internal() geo.Vector { return geo.Vec(v.X, v.Y) }

func (r Rect) internal() geo.Rect {
	return geo.NewRect(geo.Pt(r.MinX, r.MinY), geo.Pt(r.MaxX, r.MaxY))
}

func fromAnswer(a model.Answer) Answer {
	out := Answer{Query: QueryID(a.Query), Tick: int64(a.At)}
	out.Neighbors = make([]Neighbor, len(a.Neighbors))
	for i, n := range a.Neighbors {
		out.Neighbors[i] = Neighbor{ID: ObjectID(n.ID), Distance: n.Dist}
	}
	return out
}

// Protocol carries the DKNN protocol knobs; see DESIGN.md for how each
// shapes the traffic/accuracy tradeoff. The zero value selects the
// defaults.
type Protocol struct {
	// HorizonTicks is the maximum number of evaluation intervals between
	// monitor refreshes of one query (default 20).
	HorizonTicks int
	// ThetaInside is the in-boundary movement threshold in meters; 0
	// (default) keeps answers exact under an ideal network.
	ThetaInside float64
	// QueryDeviation is the focal client's track-correction threshold in
	// meters (default 0: correct on every velocity change).
	QueryDeviation float64
	// AnswerSlack is the buffer size m: the server monitors k+m objects
	// per query (default 10).
	AnswerSlack int
	// ResyncTicks, when positive, forces a periodic full state rebuild
	// per query; useful on lossy media (default 0: disabled).
	ResyncTicks int
	// MinProbeRadius is the initial probe ring in meters (default 200).
	MinProbeRadius float64
	// DeltaAnswers delivers answer changes as incremental updates
	// instead of full answers, cutting downlink bytes (default off).
	DeltaAnswers bool
	// Influence enables influential-neighbor-set safe regions: monitor
	// installs advertise a per-query frontier distance, and objects whose
	// motion cannot flip their side of the frontier suppress their
	// reports, cutting uplink traffic further (default off).
	Influence bool
}
