// Package core implements the paper's primary contribution: distributed
// processing of moving k-nearest-neighbor queries on moving objects
// ("DKNN"). Instead of every object streaming its position to the server,
// the objects themselves take part in query processing:
//
//   - The server bootstraps each query with an expanding-ring probe,
//     computes the exact kNN from the replies, and installs a *monitor*
//     on every object inside the monitoring region — a circle of radius
//     R = r_b + δ around the query, where the advertised boundary r_b
//     encloses the k+m nearest objects (m = AnswerSlack buffer) and the
//     slack δ = (Vobj + Vqry)·H·Δt guarantees that no object outside R
//     at install time can become a nearest neighbor within the next H
//     ticks.
//
//   - Each aware object dead-reckons the query's advertised track locally
//     every tick and transmits only on events: crossing the advertised
//     boundary inward (EnterReport) or outward (ExitReport), leaving the
//     monitoring region while being a boundary member (LeaveReport), or —
//     while inside the boundary — drifting more than the in-circle
//     threshold θ from its last report (MoveReport, which keeps the
//     server's ranking of the buffered set fresh).
//
//   - The server maintains the answer as the k nearest among the buffered
//     members. It *refreshes* the monitor without probing (epoch+1,
//     objects self-report side changes relative to their previous state)
//     when the query track corrects, when the buffer half-drains or
//     overflows, or when the safety horizon H expires; it falls back to a
//     fresh probe only when fewer than k members remain known.
//
// With zero network latency, no loss, θ = 0, and query deviation
// threshold 0, the maintained answers are exact at every tick — a tested
// invariant. Nonzero thresholds trade bounded answer staleness for fewer
// messages; latency and loss degrade accuracy gracefully (both are
// measured experiments, not failure modes).
//
// The communication profile is the paper's headline property: uplink
// traffic is proportional to activity *near queries* — roughly
// Q·(k + m + boundary crossings) per tick — and essentially independent
// of the total object population N, whereas the centralized baselines pay
// Θ(N) uplinks per tick (CP) or Θ(N·speed/τ) (CI).
//
// The protocol state machines (Server, ObjectAgent, QueryAgent) are
// medium-agnostic: Method wires them into the simulation engine, and
// internal/nettcp runs the same machines over real TCP connections.
package core

import (
	"errors"
	"fmt"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/sim"
)

// errNoMaxProbeRadius reports a server built without a probe cap.
var errNoMaxProbeRadius = errors.New("core: MaxProbeRadius must be positive (use Config.WithWorldDefault)")

// Config carries the protocol knobs. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// HorizonTicks is H: the maximum number of ticks between monitor
	// reinstalls of one query. Larger H means fewer reinstalls but a
	// larger monitoring region (more aware objects, more event reports)
	// — the Fig 12 ablation sweeps it.
	HorizonTicks int
	// ThetaInside is θ: an object inside the answer boundary re-reports
	// after drifting this many meters from its last reported position.
	// 0 keeps the server's ranking exact; larger values trade accuracy
	// for fewer MoveReports (the Table 3 ablation).
	ThetaInside float64
	// QueryDeviation is the focal client's dead-reckoning threshold in
	// meters: it reports QueryMove when its true position deviates this
	// far from the track the server advertises. 0 reports every velocity
	// change.
	QueryDeviation float64
	// MinProbeRadius is the initial probe ring radius in meters. Probes
	// double until they cover at least k objects.
	MinProbeRadius float64
	// MaxProbeRadius caps ring expansion. Method defaults it to the
	// world diagonal (probe everything before giving up).
	MaxProbeRadius float64
	// AnswerSlack is m: the advertised answer boundary is sized to
	// enclose k + m objects rather than exactly k. The buffer absorbs
	// exits — the server refreshes (cheap, no probe) when it half
	// drains and falls back to a probe only when fewer than k objects
	// remain known. m also bounds the number of in-circle reporters, so
	// it is the knob between probe frequency and MoveReport volume.
	AnswerSlack int
	// ResyncTicks, when positive, forces a full probe (complete state
	// rebuild) at least this often per query. Zero disables it. Lossy
	// deployments use it to bound how long a client/server
	// desynchronization from a lost message can persist.
	ResyncTicks int
	// DeltaAnswers switches answer delivery to incremental updates
	// (positive/negative membership deltas) instead of full answers,
	// cutting downlink bytes roughly k-fold per change. A full answer
	// re-baselines the client after every (re)install; a lost delta
	// therefore desynchronizes the client's view only until the next
	// install.
	DeltaAnswers bool
	// Influence enables influential-neighbor-set safe regions (INSQ):
	// after each install the server derives a frontier F — the midpoint
	// between the k-th and (k+1)-th inside member — and advertises it on
	// an extended install. Each aware object then derives a private
	// movement threshold (its slack to F) and suppresses MoveReports
	// while its accumulated drift provably cannot have changed its side
	// of the frontier, instead of re-reporting every θ meters. The
	// server re-validates the frontier on every applied report and
	// refreshes the install the moment the influence set changes, so
	// answers stay membership-exact on a clean channel while in-circle
	// uplink traffic drops to frontier-zone activity. Off (the default)
	// keeps the classic velocity-worst-case path byte-identical on the
	// wire.
	Influence bool
}

// DefaultConfig returns the parameterization used by the headline
// experiments.
func DefaultConfig() Config {
	return Config{
		HorizonTicks:   20,
		ThetaInside:    0,
		QueryDeviation: 0,
		MinProbeRadius: 200,
		AnswerSlack:    10,
	}
}

// WithWorldDefault returns c with MaxProbeRadius defaulted to the world
// diagonal when unset.
func (c Config) WithWorldDefault(world geo.Rect) Config {
	if c.MaxProbeRadius == 0 {
		c.MaxProbeRadius = world.Min.Dist(world.Max)
	}
	return c
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.HorizonTicks <= 0:
		return fmt.Errorf("core: non-positive horizon %d", c.HorizonTicks)
	case c.ThetaInside < 0:
		return fmt.Errorf("core: negative theta %v", c.ThetaInside)
	case c.QueryDeviation < 0:
		return fmt.Errorf("core: negative query deviation %v", c.QueryDeviation)
	case c.MinProbeRadius <= 0:
		return fmt.Errorf("core: non-positive probe radius %v", c.MinProbeRadius)
	case c.AnswerSlack < 0:
		return fmt.Errorf("core: negative answer slack %d", c.AnswerSlack)
	case c.ResyncTicks < 0:
		return fmt.Errorf("core: negative resync period %d", c.ResyncTicks)
	}
	return nil
}

// Method is the DKNN strategy plugged into the simulation engine: it
// instantiates one Server, one ObjectAgent per data object, and one
// QueryAgent per query, all wired to the engine's metered network.
type Method struct {
	cfg    Config
	env    *sim.Env
	server *Server
	agents []*ObjectAgent
	qcs    []*QueryAgent
}

var _ sim.Method = (*Method)(nil)

// New returns a DKNN method with the given protocol configuration.
func New(cfg Config) (*Method, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Method{cfg: cfg}, nil
}

// Name implements sim.Method.
func (m *Method) Name() string { return "dknn" }

// Setup implements sim.Method.
func (m *Method) Setup(env *sim.Env) error {
	m.env = env
	m.cfg = m.cfg.WithWorldDefault(env.World)

	srv, err := NewServer(m.cfg, ServerDeps{
		Side:           env.Net.ServerSide(),
		Now:            env.Net.Now,
		DT:             env.DT,
		MaxObjectSpeed: env.MaxObjectSpeed,
		MaxQuerySpeed:  env.MaxQuerySpeed,
		LatencyTicks:   env.LatencyTicks,
		Trace:          env.Trace,
	})
	if err != nil {
		return err
	}
	m.server = srv
	env.Net.AttachServer(srv)

	m.agents = make([]*ObjectAgent, len(env.Objects))
	for i := range m.agents {
		id := model.ObjectID(i + 1)
		idx := i
		agent, err := m.buildObjectAgent(idx)
		if err != nil {
			return err
		}
		m.agents[i] = agent
		env.Net.AttachClient(id, agent)
	}

	m.qcs = make([]*QueryAgent, len(env.Queries))
	for i := range m.qcs {
		qa, err := m.buildQueryAgent(i)
		if err != nil {
			return err
		}
		m.qcs[i] = qa
		env.Net.AttachClient(env.Queries[i].State.ID, qa)
	}
	return nil
}

func (m *Method) buildObjectAgent(idx int) (*ObjectAgent, error) {
	env := m.env
	id := model.ObjectID(idx + 1)
	return NewObjectAgent(m.cfg, AgentDeps{
		ID:           id,
		Side:         env.Net.ClientSide(id),
		Now:          env.Net.Now,
		Pos:          func() geo.Point { return env.Objects[idx].Pos },
		DT:           env.DT,
		LatencyTicks: env.LatencyTicks,
		Trace:        env.Trace,
	})
}

func (m *Method) buildQueryAgent(idx int) (*QueryAgent, error) {
	env := m.env
	addr := env.Queries[idx].State.ID
	return NewQueryAgent(m.cfg, env.Queries[idx].Spec, QueryAgentDeps{
		AgentDeps: AgentDeps{
			ID:           addr,
			Side:         env.Net.ClientSide(addr),
			Now:          env.Net.Now,
			Pos:          func() geo.Point { return env.Queries[idx].State.Pos },
			DT:           env.DT,
			LatencyTicks: env.LatencyTicks,
			Trace:        env.Trace,
		},
		Vel: func() geo.Vector { return env.Queries[idx].State.Vel },
	})
}

// RestartObject simulates a crash/restart of one data object's client
// process: the agent is replaced with a fresh one holding no monitor
// state, exactly as a rebooted device would come back. Installed
// monitors it held are gone; the protocol re-recruits it through the
// normal install/refresh cycle.
func (m *Method) RestartObject(id model.ObjectID) error {
	idx := int(id) - 1
	if m.env == nil || idx < 0 || idx >= len(m.agents) {
		return fmt.Errorf("core: restart of unknown object %d", id)
	}
	agent, err := m.buildObjectAgent(idx)
	if err != nil {
		return err
	}
	m.agents[idx] = agent
	m.env.Net.AttachClient(id, agent)
	return nil
}

// RestartQuery simulates a crash/restart of a query's focal client: the
// agent restarts with no registration and no answer state. Its next Tick
// re-registers; the server treats a duplicate registration from the
// focal client as a restart and re-baselines it with a full
// AnswerUpdate.
func (m *Method) RestartQuery(q model.QueryID) error {
	qi := int(q) - 1
	if m.env == nil || qi < 0 || qi >= len(m.qcs) {
		return fmt.Errorf("core: restart of unknown query %d", q)
	}
	qa, err := m.buildQueryAgent(qi)
	if err != nil {
		return err
	}
	m.qcs[qi] = qa
	m.env.Net.AttachClient(m.env.Queries[qi].State.ID, qa)
	return nil
}

// ClientTick implements sim.Method.
func (m *Method) ClientTick(now model.Tick) {
	for _, qc := range m.qcs {
		qc.Tick(now)
	}
	for _, a := range m.agents {
		a.Tick(now)
	}
}

// ServerTick implements sim.Method.
func (m *Method) ServerTick(now model.Tick) { m.server.Tick(now) }

// Finalize implements sim.Method.
func (m *Method) Finalize(now model.Tick) bool { return m.server.Finalize(now) }

// Answer implements sim.Method: the answer as currently visible at the
// query's focal client (what the user would see).
func (m *Method) Answer(q model.QueryID) model.Answer {
	qi := int(q) - 1
	if qi < 0 || qi >= len(m.qcs) {
		return model.Answer{Query: q}
	}
	return m.qcs[qi].Answer()
}

// ServerAnswer returns the server's maintained answer (used by tests to
// distinguish server-side from client-visible state).
func (m *Method) ServerAnswer(q model.QueryID) model.Answer {
	return m.server.Answer(q)
}

// ServerTime implements sim.Method.
func (m *Method) ServerTime() time.Duration { return m.server.BusyTime() }
