package core

import (
	"math"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// unitQueryAgent builds the focal client matching installQuery's setup
// (query 1, k=2, addr 500, stationary at (500,500)).
func unitQueryAgent(t *testing.T, now *model.Tick, latency int) (*QueryAgent, *recClient) {
	t.Helper()
	side := &recClient{}
	cfg := baseCfg().WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)))
	qa, err := NewQueryAgent(cfg, model.QuerySpec{ID: 1, K: 2, Pos: geo.Pt(500, 500)},
		QueryAgentDeps{
			AgentDeps: AgentDeps{
				ID: 500, Side: side,
				Now:          func() model.Tick { return *now },
				Pos:          func() geo.Point { return geo.Pt(500, 500) },
				DT:           1,
				LatencyTicks: latency,
			},
			Vel: func() geo.Vector { return geo.Vector{} },
		})
	if err != nil {
		t.Fatal(err)
	}
	return qa, side
}

// answerProbes replies to the currently broadcast probe (and any
// expansions) for query 1 with the given object positions.
func answerProbes(t *testing.T, srv *Server, side *recSide, now model.Tick, objects map[model.ObjectID]geo.Point) {
	t.Helper()
	reply := func() {
		probe, ok := side.lastBroadcast().(protocol.ProbeRequest)
		if !ok {
			return
		}
		for id, p := range objects {
			if probe.Region.Contains(p) {
				srv.HandleUplink(id, protocol.ProbeReply{
					Query: 1, Seq: probe.Seq, Object: id, Pos: p, At: now,
				})
			}
		}
	}
	reply()
	for i := 0; i < 6 && srv.Finalize(now); i++ {
		reply()
	}
}

func memberIDs(ns []model.Neighbor) []model.ObjectID {
	ids := make([]model.ObjectID, len(ns))
	for i, n := range ns {
		ids[i] = n.ID
	}
	return ids
}

func sameIDs(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[model.ObjectID]bool, len(a))
	for _, n := range a {
		set[n.ID] = true
	}
	for _, n := range b {
		if !set[n.ID] {
			return false
		}
	}
	return true
}

// The tentpole acceptance test: a deliberately dropped AnswerDelta is
// detected by the focal client from the sequence gap and repaired with a
// full re-baseline in exactly one request/response round trip.
func TestDroppedDeltaDetectedAndRepairedOneRoundTrip(t *testing.T) {
	cfg := baseCfg()
	cfg.DeltaAnswers = true
	srv, side, now := unitServer(t, cfg)
	*now = 1
	inst := installQuery(t, srv, side, 1)
	qa, qside := unitQueryAgent(t, now, 0)

	// The install baselines the client with a full AnswerUpdate.
	if len(side.downlinks) != 1 {
		t.Fatalf("expected 1 baseline downlink, got %d", len(side.downlinks))
	}
	base, ok := side.downlinks[0].msg.(protocol.AnswerUpdate)
	if !ok {
		t.Fatalf("baseline is %T, want AnswerUpdate", side.downlinks[0].msg)
	}
	qa.HandleServerMessage(base)
	if got := qa.Answer(); !sameIDs(got.Neighbors, srv.Answer(1).Neighbors) {
		t.Fatalf("baseline not applied: %v", memberIDs(got.Neighbors))
	}

	// Membership change #1: object 4 enters closest. The server sends an
	// AnswerDelta — which we deliberately DROP.
	*now = 2
	srv.HandleUplink(4, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 4, Pos: geo.Pt(505, 500), At: 2,
	}})
	if len(side.downlinks) != 2 {
		t.Fatalf("expected a delta downlink, got %d total", len(side.downlinks))
	}
	if _, ok := side.downlinks[1].msg.(protocol.AnswerDelta); !ok {
		t.Fatalf("change flowed as %T, want AnswerDelta", side.downlinks[1].msg)
	}

	// Membership change #2: object 5 enters even closer. This delta IS
	// delivered; its sequence number exposes the gap.
	srv.HandleUplink(5, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 5, Pos: geo.Pt(503, 500), At: 2,
	}})
	if len(side.downlinks) != 3 {
		t.Fatalf("expected a second delta, got %d total", len(side.downlinks))
	}
	preUp := len(qside.sent)
	qa.HandleServerMessage(side.downlinks[2].msg)

	// The client must NOT have applied the out-of-sequence delta, and must
	// have sent exactly one answer-resync request.
	if got := qa.Answer(); !sameIDs(got.Neighbors, base.Neighbors) {
		t.Fatalf("gap delta was applied: %v", memberIDs(got.Neighbors))
	}
	if len(qside.sent) != preUp+1 {
		t.Fatalf("gap triggered %d uplinks, want exactly 1", len(qside.sent)-preUp)
	}
	rs, ok := qside.last().(protocol.AnswerResync)
	if !ok {
		t.Fatalf("gap uplinked %T, want AnswerResync", qside.last())
	}
	if rs.Query != 1 || rs.LastSeq != base.Seq {
		t.Fatalf("resync = %+v, want LastSeq %d", rs, base.Seq)
	}

	// Server half of the round trip: the resync request yields exactly one
	// full re-baselining AnswerUpdate.
	preDown := len(side.downlinks)
	srv.HandleUplink(500, rs)
	if len(side.downlinks) != preDown+1 {
		t.Fatalf("resync produced %d downlinks, want exactly 1", len(side.downlinks)-preDown)
	}
	repair, ok := side.downlinks[preDown].msg.(protocol.AnswerUpdate)
	if !ok {
		t.Fatalf("repair is %T, want a full AnswerUpdate", side.downlinks[preDown].msg)
	}
	qa.HandleServerMessage(repair)

	// One round trip later the client matches the server exactly.
	want := srv.Answer(1).Neighbors
	got := qa.Answer().Neighbors
	if !sameIDs(got, want) {
		t.Fatalf("client %v != server %v after repair", memberIDs(got), memberIDs(want))
	}
	if got[0].ID != 5 || got[1].ID != 4 {
		t.Fatalf("repaired answer %v, want {5,4}", memberIDs(got))
	}
}

// Only the query's own focal client may force a re-baseline; a resync for
// an unknown query is a no-op.
func TestAnswerResyncRequiresFocalClient(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	pre := len(side.downlinks)
	srv.HandleUplink(666, protocol.AnswerResync{Query: 1, LastSeq: 0, At: 1})
	if len(side.downlinks) != pre {
		t.Fatal("resync from a non-focal client was honored")
	}
	srv.HandleUplink(500, protocol.AnswerResync{Query: 77, LastSeq: 0, At: 1})
	if len(side.downlinks) != pre {
		t.Fatal("resync for an unknown query sent something")
	}
	srv.HandleUplink(500, protocol.AnswerResync{Query: 1, LastSeq: 0, At: 1})
	if len(side.downlinks) != pre+1 {
		t.Fatalf("focal resync produced %d downlinks, want 1", len(side.downlinks)-pre)
	}
	au, ok := side.downlinks[pre].msg.(protocol.AnswerUpdate)
	if !ok {
		t.Fatalf("resync answered with %T", side.downlinks[pre].msg)
	}
	if len(au.Neighbors) != 2 {
		t.Fatalf("resync answer %v", memberIDs(au.Neighbors))
	}
}

// A duplicate registration from the focal client means the client
// restarted without local state: it is re-baselined with a full
// AnswerUpdate. A duplicate from anyone else stays a silent no-op.
func TestDuplicateRegistrationRebaselinesRestartedClient(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	pre := len(side.downlinks)

	// Foreign duplicate: ignored, no state perturbed.
	srv.HandleUplink(666, protocol.QueryRegister{Query: 1, K: 9, Pos: geo.Pt(0, 0), At: 1})
	if len(side.downlinks) != pre || srv.QueryCount() != 1 {
		t.Fatal("foreign duplicate registration perturbed the monitor")
	}

	// Focal duplicate: full answer re-baseline, still one monitor.
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: 1})
	if srv.QueryCount() != 1 {
		t.Fatal("restart registration duplicated the monitor")
	}
	if len(side.downlinks) != pre+1 {
		t.Fatalf("restart produced %d downlinks, want 1", len(side.downlinks)-pre)
	}
	au, ok := side.downlinks[pre].msg.(protocol.AnswerUpdate)
	if !ok || len(au.Neighbors) != 2 {
		t.Fatalf("restart re-baseline = %T %v", side.downlinks[pre].msg, au.Neighbors)
	}
}

// A probe started by the periodic ResyncTicks timer must end in a full
// AnswerUpdate even when membership did not change — that unconditional
// re-baseline is what heals a silently desynced client.
func TestResyncProbeRebaselinesWithoutMembershipChange(t *testing.T) {
	cfg := baseCfg()
	cfg.ResyncTicks = 5
	srv, side, now := unitServer(t, cfg)
	*now = 1
	installQuery(t, srv, side, 1)
	preDown := len(side.downlinks)

	objects := map[model.ObjectID]geo.Point{
		1: geo.Pt(510, 500), 2: geo.Pt(530, 500), 3: geo.Pt(560, 500),
	}
	*now = 6
	srv.Tick(6)
	if _, ok := side.lastBroadcast().(protocol.ProbeRequest); !ok {
		t.Fatalf("ResyncTicks did not start a probe; last %T", side.lastBroadcast())
	}
	answerProbes(t, srv, side, 6, objects)

	if len(side.downlinks) != preDown+1 {
		t.Fatalf("resync probe produced %d answer downlinks, want 1", len(side.downlinks)-preDown)
	}
	au, ok := side.downlinks[preDown].msg.(protocol.AnswerUpdate)
	if !ok {
		t.Fatalf("resync probe concluded with %T, want a full AnswerUpdate", side.downlinks[preDown].msg)
	}
	if len(au.Neighbors) != 2 || au.Neighbors[0].ID != 1 || au.Neighbors[1].ID != 2 {
		t.Fatalf("resync answer %v, want unchanged {1,2}", memberIDs(au.Neighbors))
	}
}

// Every answer message — full or delta, change-driven or resync — carries
// the next consecutive sequence number.
func TestAnswerSeqStrictlyConsecutive(t *testing.T) {
	cfg := baseCfg()
	cfg.DeltaAnswers = true
	srv, side, now := unitServer(t, cfg)
	*now = 1
	inst := installQuery(t, srv, side, 1)
	srv.HandleUplink(4, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 4, Pos: geo.Pt(505, 500), At: 1,
	}})
	srv.HandleUplink(4, protocol.ExitReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 4, Pos: geo.Pt(900, 900), At: 1,
	}})
	srv.HandleUplink(500, protocol.AnswerResync{Query: 1, LastSeq: 1, At: 1})

	var seqs []uint32
	for _, d := range side.downlinks {
		switch m := d.msg.(type) {
		case protocol.AnswerUpdate:
			seqs = append(seqs, m.Seq)
		case protocol.AnswerDelta:
			seqs = append(seqs, m.Seq)
		}
	}
	if len(seqs) != 4 {
		t.Fatalf("expected 4 answer messages, got %d (%v)", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint32(i+1) {
			t.Fatalf("answer seqs %v, want 1,2,3,4", seqs)
		}
	}
}

// Registrations and track corrections carrying non-finite velocities are
// poison for dead reckoning and must be rejected at the wire surface.
func TestNonFiniteVelocityRejected(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	for i, vel := range []geo.Vector{
		geo.Vec(math.NaN(), 0),
		geo.Vec(0, math.Inf(1)),
		geo.Vec(math.Inf(-1), math.NaN()),
	} {
		srv.HandleUplink(500, protocol.QueryRegister{
			Query: 1, K: 2, Pos: geo.Pt(500, 500), Vel: vel, At: 1,
		})
		if srv.QueryCount() != 0 {
			t.Fatalf("case %d: non-finite velocity registration accepted", i)
		}
	}

	installQuery(t, srv, side, 1)
	preB := len(side.broadcasts)
	*now = 2
	srv.HandleUplink(500, protocol.QueryMove{Query: 1, Pos: geo.Pt(510, 500), Vel: geo.Vec(math.Inf(1), 0), At: 2})
	srv.HandleUplink(500, protocol.QueryMove{Query: 1, Pos: geo.Pt(math.NaN(), 500), At: 2})
	srv.Tick(2)
	if len(side.broadcasts) != preB {
		t.Fatal("non-finite QueryMove was applied (triggered a reinstall)")
	}
}

// A report from exactly epochGrace epochs behind the live one is still
// applied; one more epoch behind is discarded. (The far side of the
// window — epochGrace+1 and future epochs — is covered in
// TestStaleEpochReportsIgnoredBeyondGrace.)
func TestEpochGraceBoundary(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)

	// Advance the live epoch by epochGrace refresh reinstalls.
	live := inst.Epoch
	for i := 0; i < epochGrace; i++ {
		*now = model.Tick(2 + i)
		srv.HandleUplink(500, protocol.QueryMove{Query: 1, Pos: geo.Pt(500+float64(i+1), 500), At: *now})
		srv.Tick(*now)
		ninst, ok := side.lastBroadcast().(protocol.MonitorInstall)
		if !ok {
			t.Fatalf("refresh %d did not install; last %T", i, side.lastBroadcast())
		}
		if ninst.Epoch != live+1 {
			t.Fatalf("refresh epoch %d, want %d", ninst.Epoch, live+1)
		}
		live = ninst.Epoch
	}

	// Exactly epochGrace behind: applied.
	srv.HandleUplink(40, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: live - epochGrace, Object: 40, Pos: geo.Pt(500, 501), At: *now,
	}})
	found := false
	for _, n := range srv.Answer(1).Neighbors {
		if n.ID == 40 {
			found = true
		}
	}
	if !found {
		t.Fatalf("report exactly epochGrace behind was discarded: %v",
			memberIDs(srv.Answer(1).Neighbors))
	}

	// epochGrace+1 behind: discarded.
	srv.HandleUplink(41, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: live - epochGrace - 1, Object: 41, Pos: geo.Pt(500, 502), At: *now,
	}})
	for _, n := range srv.Answer(1).Neighbors {
		if n.ID == 41 {
			t.Fatal("report epochGrace+1 behind was applied")
		}
	}
}

// Regression for the slice-aliasing bug: agent answer state must own its
// storage on both the receive path (mutating the delivered slice) and the
// read path (mutating the slice Answer returns).
func TestQueryAgentAnswerOwnsItsStorage(t *testing.T) {
	now := new(model.Tick)
	qa, _ := unitQueryAgent(t, now, 0)

	ns := []model.Neighbor{{ID: 1, Dist: 5}, {ID: 2, Dist: 7}}
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 1, QPos: geo.Pt(500, 500), Neighbors: ns})

	// Mutating the delivered slice (e.g. a reused decode buffer) must not
	// reach into the agent.
	ns[0] = model.Neighbor{ID: 99, Dist: 0}
	if got := qa.Answer(); got.Neighbors[0].ID != 1 {
		t.Fatalf("agent aliases the delivered slice: %v", memberIDs(got.Neighbors))
	}

	// Mutating the returned slice must not corrupt the agent either.
	a := qa.Answer()
	a.Neighbors[0] = model.Neighbor{ID: 42, Dist: 0}
	if got := qa.Answer(); got.Neighbors[0].ID != 1 {
		t.Fatalf("Answer exposes internal storage: %v", memberIDs(got.Neighbors))
	}
}

// Deregister clears all answer and sequencing state: a re-registered
// query starts from a clean slate and cannot report the previous
// registration's neighbors, and accepts the new registration's first
// baseline regardless of its sequence number.
func TestQueryAgentDeregisterClearsAnswerState(t *testing.T) {
	now := new(model.Tick)
	qa, _ := unitQueryAgent(t, now, 0)

	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 7, At: 1, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	if len(qa.Answer().Neighbors) != 1 {
		t.Fatal("baseline not applied")
	}
	qa.Deregister()
	if len(qa.Answer().Neighbors) != 0 {
		t.Fatalf("answer survives deregistration: %v", memberIDs(qa.Answer().Neighbors))
	}
	// A fresh registration's baseline carries a smaller sequence number
	// than the old stream; with cleared state it must still be accepted.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 9, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 3, Dist: 2}}})
	if a := qa.Answer(); len(a.Neighbors) != 1 || a.Neighbors[0].ID != 3 {
		t.Fatalf("post-restart baseline rejected: %v", memberIDs(a.Neighbors))
	}
}

// Stale and duplicated answer messages are ignored silently — they are
// expected under duplication faults and must not trigger resync traffic.
func TestQueryAgentIgnoresStaleAndDuplicateAnswers(t *testing.T) {
	now := new(model.Tick)
	qa, side := unitQueryAgent(t, now, 0)

	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 2, At: 1, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	pre := len(side.sent)

	// Duplicate full update (same seq, different content): ignored.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 2, At: 2, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 9, Dist: 1}}})
	// Stale full update: ignored.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 2, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 8, Dist: 1}}})
	// Duplicate delta (seq already applied): ignored, no resync.
	qa.HandleServerMessage(protocol.AnswerDelta{Query: 1, Seq: 2, At: 2,
		Added: []model.Neighbor{{ID: 7, Dist: 1}}})

	if a := qa.Answer(); len(a.Neighbors) != 1 || a.Neighbors[0].ID != 1 {
		t.Fatalf("stale/duplicate answer applied: %v", memberIDs(a.Neighbors))
	}
	if len(side.sent) != pre {
		t.Fatalf("stale/duplicate answers sent %d uplinks", len(side.sent)-pre)
	}

	// The next in-sequence delta still applies normally.
	qa.HandleServerMessage(protocol.AnswerDelta{Query: 1, Seq: 3, At: 3,
		Added: []model.Neighbor{{ID: 2, Dist: 1}}, Removed: []model.ObjectID{1}})
	if a := qa.Answer(); len(a.Neighbors) != 1 || a.Neighbors[0].ID != 2 {
		t.Fatalf("in-sequence delta rejected: %v", memberIDs(a.Neighbors))
	}
}

// An unanswered resync request is retried once per round trip
// (2·LatencyTicks+1), and retries stop as soon as a full update lands.
func TestQueryAgentResyncRetriesOncePerRoundTrip(t *testing.T) {
	now := new(model.Tick)
	qa, side := unitQueryAgent(t, now, 2) // retry gap = 2*2+1 = 5

	*now = 1
	qa.Tick(1) // registers
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 1, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})

	countResyncs := func() int {
		n := 0
		for _, m := range side.sent {
			if _, ok := m.(protocol.AnswerResync); ok {
				n++
			}
		}
		return n
	}

	// A gap delta at tick 3 triggers the first request.
	*now = 3
	qa.HandleServerMessage(protocol.AnswerDelta{Query: 1, Seq: 3, At: 3,
		Added: []model.Neighbor{{ID: 2, Dist: 1}}})
	if countResyncs() != 1 {
		t.Fatalf("gap sent %d resyncs, want 1", countResyncs())
	}
	// Further gap deltas while a request is pending do not re-send.
	qa.HandleServerMessage(protocol.AnswerDelta{Query: 1, Seq: 4, At: 3,
		Added: []model.Neighbor{{ID: 3, Dist: 1}}})
	if countResyncs() != 1 {
		t.Fatal("pending resync was duplicated by a second gap delta")
	}
	// Ticks within the round trip stay silent; the retry fires at 3+5.
	for tick := model.Tick(4); tick <= 7; tick++ {
		*now = tick
		qa.Tick(tick)
	}
	if countResyncs() != 1 {
		t.Fatalf("retry fired early: %d resyncs", countResyncs())
	}
	*now = 8
	qa.Tick(8)
	if countResyncs() != 2 {
		t.Fatalf("retry did not fire after a full round trip: %d resyncs", countResyncs())
	}

	// A full update clears the pending request; no more retries.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 6, At: 8, QPos: geo.Pt(500, 500),
		Neighbors: []model.Neighbor{{ID: 2, Dist: 1}, {ID: 3, Dist: 2}}})
	for tick := model.Tick(9); tick <= 30; tick++ {
		*now = tick
		qa.Tick(tick)
	}
	if countResyncs() != 2 {
		t.Fatalf("retries continued after repair: %d resyncs", countResyncs())
	}
}

// A delta arriving before any baseline is itself a gap: the client has
// nothing to apply it to and must request a full answer.
func TestQueryAgentDeltaBeforeBaselineTriggersResync(t *testing.T) {
	now := new(model.Tick)
	qa, side := unitQueryAgent(t, now, 0)
	*now = 1
	qa.HandleServerMessage(protocol.AnswerDelta{Query: 1, Seq: 1, At: 1,
		Added: []model.Neighbor{{ID: 2, Dist: 1}}})
	rs, ok := side.last().(protocol.AnswerResync)
	if !ok {
		t.Fatalf("baseline-less delta uplinked %T, want AnswerResync", side.last())
	}
	if rs.LastSeq != 0 {
		t.Fatalf("LastSeq = %d, want 0 (no answer applied yet)", rs.LastSeq)
	}
	if len(qa.Answer().Neighbors) != 0 {
		t.Fatal("baseline-less delta was applied")
	}
}

// A full AnswerUpdate echoes the server's dead-reckoned query-position
// estimate. The client updates its advertised-track baseline when it
// *sends* a QueryMove, so a lost uplink leaves both sides silently
// diverged until the next natural velocity change; a deviating echo is
// proof of that loss, and the client re-advertises on its next Tick.
func TestStaleQueryTrackEchoTriggersQueryMove(t *testing.T) {
	now := new(model.Tick)
	qa, side := unitQueryAgent(t, now, 0)
	*now = 1
	qa.Tick(1) // registers at (500,500)
	pre := len(side.sent)

	// Matching echo: clean channel, no corrective traffic.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 1,
		QPos: geo.Pt(500, 500), Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	*now = 2
	qa.Tick(2)
	if len(side.sent) != pre {
		t.Fatalf("matching echo produced traffic: %v", side.sent[pre:])
	}

	// Deviating echo: the server is provably tracking a stale position.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 2, At: 2,
		QPos: geo.Pt(490, 500), Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	*now = 3
	qa.Tick(3)
	mv, ok := side.last().(protocol.QueryMove)
	if !ok || len(side.sent) != pre+1 {
		t.Fatalf("stale echo did not trigger exactly one QueryMove: %v", side.sent[pre:])
	}
	if mv.Pos != geo.Pt(500, 500) || mv.At != 3 {
		t.Fatalf("corrective QueryMove carries wrong track: %+v", mv)
	}
	// One correction is enough; nothing further without new evidence.
	for tick := model.Tick(4); tick <= 10; tick++ {
		*now = tick
		qa.Tick(tick)
	}
	if len(side.sent) != pre+1 {
		t.Fatalf("corrective QueryMove repeated: %v", side.sent[pre:])
	}
}

// Echoes predating the latest track advertisement reflect an in-flight
// crossing, not a loss: an answer the server generated before the
// client's QueryMove could possibly have arrived was legitimately
// computed against the previous track and must not trigger a correction.
func TestTrackEchoInFlightCrossingIgnored(t *testing.T) {
	now := new(model.Tick)
	qa, side := unitQueryAgent(t, now, 2)
	*now = 5
	qa.Tick(5) // registers: lastAt = 5
	pre := len(side.sent)

	// Generated at tick 6 < lastAt+latency = 7: the registration may not
	// have reached the server yet; a deviating echo proves nothing.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 1, At: 6,
		QPos: geo.Pt(400, 400), Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	*now = 6
	qa.Tick(6)
	if len(side.sent) != pre {
		t.Fatalf("in-flight crossing triggered a correction: %v", side.sent[pre:])
	}

	// From tick 7 on the advertisement must have landed; a deviating
	// echo now is a loss and is corrected.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 1, Seq: 2, At: 7,
		QPos: geo.Pt(400, 400), Neighbors: []model.Neighbor{{ID: 1, Dist: 5}}})
	*now = 7
	qa.Tick(7)
	if _, ok := side.last().(protocol.QueryMove); !ok || len(side.sent) != pre+1 {
		t.Fatalf("post-round-trip stale echo not corrected: %v", side.sent[pre:])
	}
}
