package core

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// The report → answer path is the server's per-message hot loop: applying
// an in-boundary MoveReport and recomputing the (unchanged) answer must
// not allocate — the accumulator, fill, and added/removed scratch all
// live on the monitor.
func TestReportAnswerPathDoesNotAllocate(t *testing.T) {
	srv, side, now := benchServer(t)
	*now = 1
	inst := benchInstall(t, srv, side)
	// Box the message once: the per-call interface conversion is the
	// caller's concern, not the server path under test.
	var msg protocol.Message = protocol.MoveReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 3, Pos: geo.Pt(520, 501), At: 1,
	}}
	for i := 0; i < 4; i++ {
		srv.HandleUplink(3, msg) // warm the per-monitor scratch
	}
	if avg := testing.AllocsPerRun(200, func() {
		srv.HandleUplink(3, msg)
	}); avg != 0 {
		t.Errorf("MoveReport path allocates %.1f times per report, want 0", avg)
	}
}

// Register must keep s.order sorted via binary-search insert (no full
// re-sort), and deregister must splice by binary search — out-of-order
// registration and interleaved removal exercise both.
func TestRegisterOrderMaintained(t *testing.T) {
	srv, _, now := benchServer(t)
	*now = 1
	for _, q := range []model.QueryID{40, 10, 30, 20, 50, 25} {
		srv.HandleUplink(model.ObjectID(q), protocol.QueryRegister{
			Query: q, K: 1, Pos: geo.Pt(500, 500), At: 1,
		})
	}
	want := []model.QueryID{10, 20, 25, 30, 40, 50}
	if len(srv.order) != len(want) {
		t.Fatalf("order = %v, want %v", srv.order, want)
	}
	for i, q := range want {
		if srv.order[i] != q {
			t.Fatalf("order = %v, want %v", srv.order, want)
		}
	}
	srv.HandleUplink(30, protocol.QueryDeregister{Query: 30})
	srv.HandleUplink(10, protocol.QueryDeregister{Query: 10})
	srv.HandleUplink(50, protocol.QueryDeregister{Query: 50})
	want = []model.QueryID{20, 25, 40}
	if len(srv.order) != len(want) {
		t.Fatalf("after deregister: order = %v, want %v", srv.order, want)
	}
	for i, q := range want {
		if srv.order[i] != q {
			t.Fatalf("after deregister: order = %v, want %v", srv.order, want)
		}
	}
}
