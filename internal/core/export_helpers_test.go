package core

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// The federation-facing read helpers: the track estimate and focal
// address a cluster uses to decide when a monitor should migrate, and
// the involvement index it transfers on object handoff.
func TestFederationReadHelpers(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)

	if _, ok := srv.QueryEstimate(99, 1); ok {
		t.Error("estimate for an unknown query")
	}
	if _, ok := srv.QueryAddr(99); ok {
		t.Error("address for an unknown query")
	}
	est, ok := srv.QueryEstimate(1, 1)
	if !ok || est.Dist(geo.Pt(500, 500)) > 1e-9 {
		t.Fatalf("estimate = %v ok=%v, want the registered position", est, ok)
	}
	if addr, ok := srv.QueryAddr(1); !ok || addr != 500 {
		t.Fatalf("addr = %v ok=%v, want registrant 500", addr, ok)
	}

	// A track advertised with velocity dead-reckons forward.
	srv.HandleUplink(500, protocol.QueryMove{
		Query: 1, Pos: geo.Pt(500, 500), Vel: geo.Vector{X: 10}, At: 1,
	})
	if est, _ := srv.QueryEstimate(1, 3); est.Dist(geo.Pt(520, 500)) > 1e-9 {
		t.Fatalf("dead-reckoned estimate = %v, want (520,500)", est)
	}

	// Objects 1..3 participated in the install; a stranger did not.
	if qs := srv.QueriesInvolving(1); len(qs) != 1 || qs[0] != 1 {
		t.Fatalf("QueriesInvolving(member) = %v", qs)
	}
	if qs := srv.QueriesInvolving(999); qs != nil {
		t.Fatalf("QueriesInvolving(stranger) = %v", qs)
	}
}

// ExportMonitorsWhere is the column-migration bulk path: it must honor
// the predicate, skip probing monitors exactly like ExportMonitor, and
// remove what it exports.
func TestExportMonitorsWhere(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	// A second query mid-probe: registered but never installed.
	srv.HandleUplink(501, protocol.QueryRegister{Query: 2, K: 2, Pos: geo.Pt(100, 100), At: 1})
	srv.Tick(1)

	stay := srv.ExportMonitorsWhere(1, func(q model.QueryID, est geo.Point) bool {
		return est.X > 900 // nothing lives there
	})
	if len(stay) != 0 || !srv.HasQuery(1) {
		t.Fatalf("predicate-false export moved %d monitors", len(stay))
	}

	moved := srv.ExportMonitorsWhere(1, func(model.QueryID, geo.Point) bool { return true })
	if len(moved) != 1 {
		t.Fatalf("exported %d monitors, want 1 (probing q2 skipped)", len(moved))
	}
	if moved[0].State.Query != 1 || moved[0].Est.Dist(geo.Pt(500, 500)) > 1e-9 {
		t.Fatalf("exported %+v", moved[0])
	}
	if srv.HasQuery(1) {
		t.Error("exported monitor still registered")
	}
	if !srv.HasQuery(2) {
		t.Error("probing monitor was exported")
	}
}

// The allocation probe behind dknn-bench's allocs_per_op artifact: the
// MoveReport hot path must stay allocation-free, and the probe itself
// must set up the full register→probe→install handshake.
func TestMoveReportAllocProbe(t *testing.T) {
	v, err := MoveReportAllocsPerOp(300)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 0.5 {
		t.Fatalf("MoveReport allocates %.2f objects/op, want 0", v)
	}
}
