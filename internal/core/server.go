package core

import (
	"math"
	"slices"
	"sync"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/knn"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// ServerDeps are the environment bindings a Server needs. They decouple
// the protocol state machine from the medium: the simulation engine and
// the TCP daemon provide different implementations.
type ServerDeps struct {
	// Side is the sending surface toward the clients.
	Side transport.ServerSide
	// Now returns the current evaluation tick.
	Now func() model.Tick
	// DT is the duration of one tick in seconds.
	DT float64
	// Speed bounds of the population; the safety slack is sized from
	// them.
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	// LatencyTicks is the known one-way delivery delay bound (0 for an
	// in-process medium); probe deadlines are scheduled from it.
	LatencyTicks int
	// Trace, when non-nil, receives a lifecycle event at every protocol
	// transition (register, probe, install, answer, resync). nil
	// disables tracing at the cost of one branch per site.
	Trace obs.Sink
}

// Server is the DKNN server: per registered query it runs the probe →
// install → event-maintenance cycle described in the package comment.
//
// Server is safe for concurrent use; every entry point takes its lock.
// In the simulation the lock is uncontended.
type Server struct {
	cfg  Config
	deps ServerDeps

	mu       sync.Mutex
	monitors map[model.QueryID]*monitor
	order    []model.QueryID // sorted, for deterministic iteration

	busy time.Duration
}

// NewServer returns a DKNN server for the given protocol configuration
// and environment bindings.
func NewServer(cfg Config, deps ServerDeps) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxProbeRadius <= 0 {
		return nil, errNoMaxProbeRadius
	}
	return &Server{
		cfg:      cfg,
		deps:     deps,
		monitors: make(map[model.QueryID]*monitor),
	}, nil
}

// monitor is the server's per-query state.
type monitor struct {
	query model.QueryID
	k     int
	rng   float64        // fixed range; 0 means kNN mode
	addr  model.ObjectID // focal client's network address

	// Advertised query track: the focal client's last reported position
	// and velocity. Server and aware objects extrapolate the same line.
	qpos geo.Point
	qvel geo.Vector
	qat  model.Tick

	// Install state.
	epoch        uint32
	installed    bool
	answerRadius float64
	radius       float64
	installedAt  model.Tick
	prevRegion   geo.Circle // last installed region, for covering reinstalls

	// Working state maintained from reports.
	cands  *knn.CandidateSet       // last known positions of aware objects
	inside map[model.ObjectID]bool // ids currently inside the answer circle
	answer []model.Neighbor        // current maintained answer
	sent   map[model.ObjectID]bool // membership of the last answer message
	// rebaseline forces the next answer message to be a full update
	// (set by installs so delta-mode clients resynchronize).
	rebaseline bool
	// answerSeq numbers the answer stream: it increments on every answer
	// message (full or delta) downlinked for this query, letting the focal
	// client detect lost, duplicated, and reordered answers.
	answerSeq uint32
	// resyncProbe marks a probe started by the periodic ResyncTicks timer:
	// when it concludes, the focal client is unconditionally re-baselined
	// with a full AnswerUpdate even if membership did not change, healing
	// any client-side divergence accumulated from lost messages.
	resyncProbe bool

	needsReinstall bool

	// Influence state (Config.Influence only): the advertised frontier F
	// and band, zero when no valid frontier exists for the current epoch
	// (agents then fall back to the θ drift rule). frontierRefreshes
	// counts the frontier-triggered refreshes issued this tick so a
	// pathological oscillation cannot keep Finalize from quiescing.
	frontier          float64
	band              float64
	frontierRefreshes int

	// Probe state.
	probing     bool
	probeSeq    uint32
	probeRadius float64
	probeDue    model.Tick
	lastProbeAt model.Tick
	replies     *knn.CandidateSet

	// Report-path scratch, reused across calls so the steady-state
	// report → answer path performs no allocations. accBuf backs
	// mon.answer (Answer and sendFullAnswer copy before the next
	// recompute overwrites it); the delta send path copies addedBuf and
	// removedBuf into the outgoing message because the transport retains
	// message payloads until delivery.
	accBuf     []model.Neighbor
	extraBuf   []model.Neighbor
	addedBuf   []model.Neighbor
	removedBuf []model.ObjectID
	accSet     map[model.ObjectID]bool
	goneBuf    []model.ObjectID
}

// BusyTime returns the cumulative wall-clock time spent processing.
func (s *Server) BusyTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}

// QueryCount returns the number of registered queries.
func (s *Server) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.monitors)
}

func (s *Server) track(start time.Time) { s.busy += time.Since(start) }

// emit marks the node/direction fields unset and records e. Callers
// guard with s.deps.Trace != nil so the disabled path stays a single
// branch with no event construction.
func (s *Server) emit(e obs.Event) {
	e.Node, e.Dir = -1, -1
	s.deps.Trace.Record(e)
}

// HandleUplink implements transport.ServerHandler.
func (s *Server) HandleUplink(from model.ObjectID, msg protocol.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.track(time.Now())
	s.handleUplinkLocked(from, msg, s.deps.Now())
}

// Ingest is one queued arrival for HandleUplinkBatch. A nil Msg is a
// disconnect marker: the batch processor applies the same purge as
// HandleClientGone(From) at that point of the arrival order.
type Ingest struct {
	// Seq is a caller-assigned global arrival number. The server does not
	// interpret it; batching callers use it to reconstruct the arrival
	// order of sends deferred across shards (see internal/shard).
	Seq  uint64
	From model.ObjectID
	Msg  protocol.Message
}

// HandleUplinkBatch processes a tick's queued arrivals in slice order
// under one lock acquisition and one busy-time sample. It is
// semantically the loop
//
//	for _, in := range batch { s.HandleUplink(in.From, in.Msg) }
//
// with nil-Msg entries standing in for HandleClientGone(in.From). The
// optional before hook runs just before each entry is applied (still
// under the server lock); batching callers use it to stamp the entry's
// Seq onto their send-capturing transport so every send the entry
// triggers is attributable to its arrival position.
func (s *Server) HandleUplinkBatch(batch []Ingest, before func(Ingest)) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.track(time.Now())
	now := s.deps.Now()
	for _, in := range batch {
		if before != nil {
			before(in)
		}
		if in.Msg == nil {
			s.clientGoneLocked(in.From, now)
			continue
		}
		s.handleUplinkLocked(in.From, in.Msg, now)
	}
}

func (s *Server) handleUplinkLocked(from model.ObjectID, msg protocol.Message, now model.Tick) {
	switch v := msg.(type) {
	case protocol.QueryRegister:
		s.register(v, from)
	case protocol.QueryMove:
		if mon, ok := s.monitors[v.Query]; ok && finitePoint(v.Pos) && finiteVec(v.Vel) {
			mon.qpos, mon.qvel, mon.qat = v.Pos, v.Vel, v.At
			mon.needsReinstall = true
		}
	case protocol.QueryDeregister:
		s.deregister(v.Query)
	case protocol.AnswerResync:
		// Only the query's own focal client may force a re-baseline.
		if mon, ok := s.monitors[v.Query]; ok && mon.addr == from {
			s.resyncAnswer(mon, now)
		}
	case protocol.ProbeReply:
		if mon, ok := s.monitors[v.Query]; ok && mon.probing && v.Seq == mon.probeSeq {
			mon.replies.Set(v.Object, v.Pos)
		}
	case protocol.EnterReport:
		if mon := s.current(v.Query, v.Epoch); mon != nil {
			mon.cands.Set(v.Object, v.Pos)
			mon.inside[v.Object] = true
			s.refreshAnswer(mon, now)
		}
	case protocol.ExitReport:
		if mon := s.current(v.Query, v.Epoch); mon != nil {
			mon.cands.Set(v.Object, v.Pos)
			delete(mon.inside, v.Object)
			if mon.rng == 0 && len(mon.inside) < mon.k {
				mon.needsReinstall = true
			}
			s.refreshAnswer(mon, now)
		}
	case protocol.LeaveReport:
		if mon := s.current(v.Query, v.Epoch); mon != nil {
			mon.cands.Remove(v.Object)
			if mon.inside[v.Object] {
				delete(mon.inside, v.Object)
				if mon.rng == 0 && len(mon.inside) < mon.k {
					mon.needsReinstall = true
				}
			}
			s.refreshAnswer(mon, now)
		}
	case protocol.MoveReport:
		if mon := s.current(v.Query, v.Epoch); mon != nil {
			mon.cands.Set(v.Object, v.Pos)
			// A MoveReport is sent only by objects that believe they are
			// inside the answer circle, so it doubles as a membership
			// affirmation — under message loss this heals a lost
			// EnterReport within one tick.
			mon.inside[v.Object] = true
			s.refreshAnswer(mon, now)
		}
	default:
		// Other kinds (e.g. LocationReport) are not part of this
		// protocol; ignore rather than fail, as a real server must.
	}
}

// HandleClientGone implements transport.DisconnectHandler: a vanished
// client is purged from every monitor it participates in, and a vanished
// focal client takes its query down with it.
func (s *Server) HandleClientGone(id model.ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.track(time.Now())
	s.clientGoneLocked(id, s.deps.Now())
}

func (s *Server) clientGoneLocked(id model.ObjectID, now model.Tick) {
	var deadQueries []model.QueryID
	for _, q := range s.order {
		mon := s.monitors[q]
		if mon.addr == id {
			deadQueries = append(deadQueries, q)
			continue
		}
		// A reply from the vanished client may still sit in a pending
		// probe round; purge it before the round concludes into state.
		mon.replies.Remove(id)
		touched := mon.cands.Has(id) || mon.inside[id]
		if !touched {
			continue
		}
		mon.cands.Remove(id)
		if mon.inside[id] {
			delete(mon.inside, id)
			if mon.rng == 0 && len(mon.inside) < mon.k {
				mon.needsReinstall = true
			}
		}
		s.refreshAnswer(mon, now)
	}
	for _, q := range deadQueries {
		s.deregister(q)
	}
}

// epochGrace is how many epochs behind the live one a report may be and
// still be applied. Under delivery latency, a report legitimately crosses
// a reinstall in flight; its position payload is still current and — for
// enter/move affirmations — adding a correctly-positioned candidate can
// never evict a true neighbor from the top-k. With zero latency no report
// ever lags, so the grace window cannot affect the exact mode.
const epochGrace = 2

// refreshMinGap is the minimum number of ticks between buffer-driven
// refresh reinstalls of one query.
const refreshMinGap = 2

// current returns the monitor for q if the report's epoch is the live one
// or within the grace window; older reports are discarded.
func (s *Server) current(q model.QueryID, epoch uint32) *monitor {
	mon, ok := s.monitors[q]
	if !ok || epoch > mon.epoch || mon.epoch-epoch > epochGrace {
		return nil
	}
	return mon
}

// maxK bounds the accepted kNN parameter: a wire-supplied k feeds
// allocation sizes, so an absurd value is a denial-of-service attempt,
// not a query.
const maxK = 1 << 16

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func finitePoint(p geo.Point) bool { return finite(p.X) && finite(p.Y) }

func finiteVec(v geo.Vector) bool { return finite(v.X) && finite(v.Y) }

func (s *Server) register(v protocol.QueryRegister, from model.ObjectID) {
	if mon, exists := s.monitors[v.Query]; exists {
		// Duplicate registration: keep existing state. When it comes from
		// the query's own focal client, the client restarted without local
		// state — re-baseline it with a full AnswerUpdate so it does not
		// sit on an empty answer until the next periodic probe.
		if mon.addr == from {
			s.resyncAnswer(mon, s.deps.Now())
		}
		return
	}
	// Sanitize wire input: this is an open network surface. A non-finite
	// velocity is as poisonous as a non-finite position — it corrupts
	// every subsequent dead-reckoning extrapolation for the monitor.
	if v.Range < 0 || math.IsNaN(v.Range) || math.IsInf(v.Range, 0) ||
		!finitePoint(v.Pos) || !finiteVec(v.Vel) ||
		(v.Range == 0 && (v.K == 0 || v.K > maxK)) {
		return
	}
	mon := &monitor{
		query:          v.Query,
		k:              int(v.K),
		rng:            v.Range,
		addr:           from,
		qpos:           v.Pos,
		qvel:           v.Vel,
		qat:            v.At,
		cands:          knn.NewCandidateSet(),
		inside:         make(map[model.ObjectID]bool),
		sent:           make(map[model.ObjectID]bool),
		replies:        knn.NewCandidateSet(),
		needsReinstall: true,
	}
	s.monitors[v.Query] = mon
	// s.order stays sorted: insert at the binary-search position instead
	// of re-sorting the whole slice on every registration.
	i, _ := slices.BinarySearch(s.order, v.Query)
	s.order = slices.Insert(s.order, i, v.Query)
	if s.deps.Trace != nil {
		v := float64(mon.k)
		if mon.rng > 0 {
			v = mon.rng
		}
		s.emit(obs.Event{At: s.deps.Now(), Type: obs.EvQueryRegistered,
			Query: mon.query, Object: from, Value: v})
	}
}

func (s *Server) deregister(q model.QueryID) {
	mon, ok := s.monitors[q]
	if !ok {
		return
	}
	if mon.installed {
		s.deps.Side.Broadcast(mon.prevRegion, protocol.MonitorCancel{Query: q, Epoch: mon.epoch})
	}
	delete(s.monitors, q)
	if i, found := slices.BinarySearch(s.order, q); found {
		s.order = slices.Delete(s.order, i, i+1)
	}
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: s.deps.Now(), Type: obs.EvQueryDeregistered, Query: q})
	}
}

// qEst extrapolates the advertised query track to now.
func (mon *monitor) qEst(now model.Tick, dt float64) geo.Point {
	return geo.DeadReckon(mon.qpos, mon.qvel, float64(now-mon.qat)*dt)
}

// delta is the monitoring-region slack: the worst-case relative
// displacement between query and object over the reinstall horizon.
func (s *Server) delta() float64 {
	return geo.SafeRadius(0, s.deps.MaxObjectSpeed, s.deps.MaxQuerySpeed,
		float64(s.cfg.HorizonTicks)*s.deps.DT)
}

// Tick runs the periodic server work: horizon expiry, buffer checks, and
// probe initiation for monitors that need a reinstall.
func (s *Server) Tick(now model.Tick) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.track(time.Now())
	cfg := s.cfg
	for _, q := range s.order {
		mon := s.monitors[q]
		mon.frontierRefreshes = 0
		if mon.probing {
			continue
		}
		// Influence mode: the maintained answer ranks stored member
		// positions against the dead-reckoned query, so it drifts with the
		// query even on report-free ticks — and suppressed members only
		// guarantee their side of F relative to that same moving view. A
		// purely query-motion-driven reordering must therefore be detected
		// here, not just on applied reports: re-evaluating invalidates the
		// frontier (computeAnswer re-checks it) and the Finalize sweep's
		// refresh + correction wave then repairs membership this tick.
		if cfg.Influence && mon.rng == 0 && mon.installed && mon.frontier > 0 {
			s.refreshAnswer(mon, now)
		}
		if mon.installed && now-mon.installedAt >= model.Tick(cfg.HorizonTicks) {
			mon.needsReinstall = true
		}
		// Periodic full resynchronization for lossy deployments: a probe
		// rebuilds all per-query state from scratch, healing any
		// client/server desynchronization accumulated from lost messages.
		if cfg.ResyncTicks > 0 && mon.installed &&
			now-mon.lastProbeAt >= model.Tick(cfg.ResyncTicks) {
			mon.resyncProbe = true
			s.startProbe(mon, now)
			continue
		}
		// Refill the answer buffer before it drains (half-empty), and
		// shrink it when it overflows to twice the target — both are
		// cheap refreshes, not probes. Range monitors have a fixed
		// boundary: no buffer to manage. Rate-limited: when the world
		// simply has no more objects to recruit, refreshing every tick
		// would advance the epoch faster than in-flight reports can
		// follow.
		if mon.rng == 0 && cfg.AnswerSlack > 0 && mon.installed &&
			now-mon.installedAt >= refreshMinGap {
			count, target := len(mon.inside), mon.k+cfg.AnswerSlack
			if count < mon.k+(cfg.AnswerSlack+1)/2 || count > 2*target {
				mon.needsReinstall = true
			}
		}
		if !mon.needsReinstall {
			continue
		}
		// A refresh reinstall is possible whenever the server still knows
		// at least k objects inside the answer circle with fresh
		// positions: no probe, no mass replies — objects self-report side
		// changes relative to their previous monitor state. The full
		// expanding-ring probe remains for bootstrap and for recovery
		// when exits/leaves dropped the inside count below k. Range
		// monitors always refresh once installed (membership is
		// self-maintaining at any population).
		if mon.installed && (mon.rng > 0 || len(mon.inside) >= mon.k) {
			s.refreshInstall(mon, now)
		} else {
			s.startProbe(mon, now)
		}
	}
}

// refreshInstall reinstalls the monitor around the current query estimate
// without probing. The advertised boundary is sized to enclose the
// k+AnswerSlack buffer; agents' side-change reports (same tick under zero
// latency) then resynchronize membership exactly.
func (s *Server) refreshInstall(mon *monitor, now model.Tick) {
	cfg := s.cfg
	center := mon.qEst(now, s.deps.DT)

	var rk float64
	if mon.rng > 0 {
		rk = mon.rng
	} else {
		// accBuf is free here: its previous contents (mon.answer) are
		// rebuilt by the trailing refreshAnswer before anyone reads them.
		acc := mon.accBuf[:0]
		for id := range mon.inside {
			if p, ok := mon.cands.Position(id); ok {
				acc = append(acc, model.Neighbor{ID: id, Dist: p.Dist(center)})
			}
		}
		mon.accBuf = acc
		model.SortNeighbors(acc)
		if len(acc) < mon.k {
			// Positions for some inside ids are missing (cannot happen in
			// normal operation; defensive): fall back to a probe.
			s.startProbe(mon, now)
			return
		}
		rk = s.boundaryFromKnown(mon, acc)
	}
	if rk > cfg.MaxProbeRadius {
		rk = cfg.MaxProbeRadius
	}
	radius := rk + s.delta()
	if radius > cfg.MaxProbeRadius {
		radius = cfg.MaxProbeRadius
	}
	region := geo.Circle{Center: center, R: radius}

	mon.epoch++
	mon.answerRadius = rk
	mon.radius = radius
	mon.installedAt = now
	mon.needsReinstall = false

	// Objects strictly outside the new circle will exit/drop themselves;
	// prune candidates whose last known position is already outside so
	// stale annulus entries do not accumulate.
	gone := mon.goneBuf[:0]
	mon.cands.Visit(func(id model.ObjectID, p geo.Point) bool {
		if p.Dist(center) > radius && !mon.inside[id] {
			gone = append(gone, id)
		}
		return true
	})
	mon.goneBuf = gone
	for _, id := range gone {
		mon.cands.Remove(id)
	}

	cover := region
	if mon.prevRegion.R > 0 {
		if need := center.Dist(mon.prevRegion.Center) + mon.prevRegion.R; need > cover.R {
			cover.R = need
		}
	}
	mon.prevRegion = region

	if s.cfg.Influence {
		s.updateFrontier(mon, center, rk)
	}
	s.broadcastInstall(cover, mon, protocol.MonitorInstall{
		Query:        mon.query,
		Epoch:        mon.epoch,
		Refresh:      true,
		RangeMode:    mon.rng > 0,
		QueryPos:     center,
		QueryVel:     mon.qvel,
		AnswerRadius: rk,
		Radius:       radius,
		At:           now,
	})
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: now, Type: obs.EvInstalled, Query: mon.query,
			Seq: mon.epoch, Value: radius})
	}
	s.refreshAnswer(mon, now)
}

// boundaryFromKnown sizes the advertised answer boundary from a sorted
// list of known neighbor distances: the (k+m)-th distance when known,
// otherwise a local-density extrapolation from the outermost known
// object.
func (s *Server) boundaryFromKnown(mon *monitor, sorted []model.Neighbor) float64 {
	target := mon.k + s.cfg.AnswerSlack
	if len(sorted) >= target {
		return sorted[target-1].Dist
	}
	outer := sorted[len(sorted)-1].Dist
	if outer <= 0 {
		return s.cfg.MinProbeRadius
	}
	// Area scales with count under locally uniform density.
	est := outer * math.Sqrt(float64(target)/float64(len(sorted)))
	if est > s.cfg.MaxProbeRadius {
		est = s.cfg.MaxProbeRadius
	}
	return est
}

// maxFrontierRefreshes caps the frontier-triggered refreshes one monitor
// may issue per tick. Each correction wave permanently freshens at least
// one member, so convergence normally takes one or two rounds; the cap
// guarantees Finalize quiesces even if a report pattern oscillates.
const maxFrontierRefreshes = 8

// updateFrontier derives the influence frontier for a freshly installed
// kNN monitor: the midpoint between the k-th and (k+1)-th inside-member
// distances, with the band as half the gap. The frontier is valid only
// when it strictly separates the k-th member from the boundary rk —
// degenerate geometries (ties, fewer than k+1 members hugging rk, range
// mode) advertise zero and agents fall back to the θ rule.
func (s *Server) updateFrontier(mon *monitor, center geo.Point, rk float64) {
	mon.frontier, mon.band = 0, 0
	if mon.rng > 0 {
		return
	}
	acc := mon.extraBuf[:0]
	for id := range mon.inside {
		if p, ok := mon.cands.Position(id); ok {
			acc = append(acc, model.Neighbor{ID: id, Dist: p.Dist(center)})
		}
	}
	mon.extraBuf = acc
	if len(acc) < mon.k {
		return
	}
	model.SortNeighbors(acc)
	dk := acc[mon.k-1].Dist
	dnext := rk
	if len(acc) > mon.k {
		dnext = acc[mon.k].Dist
	}
	f := (dk + dnext) / 2
	if !(dk < f && f < rk) {
		return
	}
	mon.frontier = f
	mon.band = (dnext - dk) / 2
}

// frontierValid re-checks the advertised frontier against the sorted
// inside-member distances: it holds exactly when the k-th member is still
// at or below F and the (k+1)-th (if any) is beyond it. Every applied
// report re-runs this; a violation means the influence set changed and
// the monitor must refresh.
func (mon *monitor) frontierValid(sorted []model.Neighbor) bool {
	if len(sorted) < mon.k {
		return false
	}
	if sorted[mon.k-1].Dist > mon.frontier {
		return false
	}
	return len(sorted) == mon.k || sorted[mon.k].Dist > mon.frontier
}

// broadcastInstall sends the monitor (re)install over cover: the classic
// MonitorInstall, or its influence-extended form carrying the frontier
// when influence mode is on — keeping the off-mode wire byte-identical.
func (s *Server) broadcastInstall(cover geo.Circle, mon *monitor, inst protocol.MonitorInstall) {
	if s.cfg.Influence {
		s.deps.Side.Broadcast(cover, protocol.InfluenceInstall{
			Install: inst, Frontier: mon.frontier, Band: mon.band,
		})
		return
	}
	s.deps.Side.Broadcast(cover, inst)
}

// startProbe begins a probe round sized from current knowledge.
func (s *Server) startProbe(mon *monitor, now model.Tick) {
	cfg := s.cfg
	center := mon.qEst(now, s.deps.DT)
	radius := cfg.MinProbeRadius
	if mon.rng > 0 {
		// Range monitors need exactly one probe over the whole region.
		radius = mon.rng + s.delta()
	} else if mon.cands.Len() >= mon.k {
		// If we already track at least k candidates, size the ring from
		// the k-th known distance plus the safety slack.
		ns := mon.cands.KNN(center, mon.k)
		if est := ns[len(ns)-1].Dist + s.delta(); est > radius {
			radius = est
		}
	}
	if radius > cfg.MaxProbeRadius {
		radius = cfg.MaxProbeRadius
	}
	mon.probing = true
	mon.probeSeq++
	mon.probeRadius = radius
	mon.probeDue = now + model.Tick(2*s.deps.LatencyTicks)
	mon.lastProbeAt = now
	mon.replies.Clear()
	s.deps.Side.Broadcast(geo.Circle{Center: center, R: radius}, protocol.ProbeRequest{
		Query:  mon.query,
		Seq:    mon.probeSeq,
		Region: geo.Circle{Center: center, R: radius},
		At:     now,
	})
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: now, Type: obs.EvProbe, Query: mon.query,
			Seq: mon.probeSeq, Value: radius})
	}
}

// Finalize completes probe rounds whose replies are in: either expand the
// ring or install the monitor. It reports whether any message was sent,
// so the driver flushes and calls again.
func (s *Server) Finalize(now model.Tick) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.track(time.Now())
	sent := false
	for _, q := range s.order {
		mon := s.monitors[q]
		if !mon.probing || now < mon.probeDue {
			continue
		}
		if s.concludeProbe(mon, now) {
			sent = true
		}
	}
	// Influence mode: reinstall the moment the influence set changes
	// rather than waiting for the next Tick. Reports applied this round
	// may have invalidated a frontier; refreshing here lets the agents'
	// correction reports and the re-derived frontier converge within the
	// same tick (the driver flushes and calls Finalize again as long as
	// anything was sent). Capped per monitor per tick so an oscillating
	// report pattern cannot keep the tick from quiescing.
	if s.cfg.Influence {
		for _, q := range s.order {
			mon := s.monitors[q]
			if !mon.needsReinstall || !mon.installed || mon.probing ||
				mon.frontierRefreshes >= maxFrontierRefreshes {
				continue
			}
			if mon.rng == 0 && len(mon.inside) < mon.k {
				continue // under-full circle: next Tick's probe recovers it
			}
			mon.frontierRefreshes++
			s.refreshInstall(mon, now)
			sent = true
		}
	}
	return sent
}

func (s *Server) concludeProbe(mon *monitor, now model.Tick) bool {
	cfg := s.cfg
	center := mon.qEst(now, s.deps.DT)

	if mon.rng > 0 {
		// Range monitor: the probe covered the full monitoring region;
		// install directly with the fixed boundary.
		radius := mon.rng + s.delta()
		if radius > cfg.MaxProbeRadius {
			radius = cfg.MaxProbeRadius
		}
		s.install(mon, now, center, mon.rng, radius)
		return true
	}

	if mon.replies.Len() < mon.k && mon.probeRadius < cfg.MaxProbeRadius {
		// Not enough objects inside the ring: double it.
		s.expandProbe(mon, now, min(2*mon.probeRadius, cfg.MaxProbeRadius))
		return true
	}

	target := mon.k + cfg.AnswerSlack
	ns := mon.replies.KNN(center, target)
	var rk float64
	switch {
	case len(ns) >= mon.k:
		// Advertise the boundary that encloses the buffer of k+m
		// objects. When the probe found fewer than k+m (but at least k),
		// estimate the buffer radius from local density so the next ring
		// need not expand again.
		rk = s.boundaryFromKnown(mon, ns)
	default:
		// Fewer than k objects exist even probing everything: monitor the
		// whole probed area so every object stays aware and fresh.
		rk = mon.probeRadius
	}
	radius := rk + s.delta()
	if radius > cfg.MaxProbeRadius {
		radius = cfg.MaxProbeRadius
		if rk > radius {
			rk = radius
		}
	}
	if radius > mon.probeRadius {
		// The safety region exceeds the probed area; one more ring makes
		// the candidate set complete. rk can only shrink with a larger
		// ring, so this converges.
		s.expandProbe(mon, now, radius)
		return true
	}
	s.install(mon, now, center, rk, radius)
	return true
}

func (s *Server) expandProbe(mon *monitor, now model.Tick, radius float64) {
	center := mon.qEst(now, s.deps.DT)
	mon.probeSeq++
	mon.probeRadius = radius
	mon.probeDue = now + model.Tick(2*s.deps.LatencyTicks)
	mon.replies.Clear()
	s.deps.Side.Broadcast(geo.Circle{Center: center, R: radius}, protocol.ProbeRequest{
		Query:  mon.query,
		Seq:    mon.probeSeq,
		Region: geo.Circle{Center: center, R: radius},
		At:     now,
	})
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: now, Type: obs.EvProbe, Query: mon.query,
			Seq: mon.probeSeq, Value: radius})
	}
}

// install commits a probe result: rebuild the candidate and inside sets
// from the replies, advance the epoch, and broadcast the install over a
// region covering both the previous and the new monitoring circles (so
// objects that fell out of the region hear about it and stop monitoring).
func (s *Server) install(mon *monitor, now model.Tick, center geo.Point, rk, radius float64) {
	region := geo.Circle{Center: center, R: radius}
	mon.epoch++
	mon.installed = true
	mon.answerRadius = rk
	mon.radius = radius
	mon.installedAt = now
	mon.probing = false
	mon.needsReinstall = false
	mon.rebaseline = true // next answer message re-baselines delta clients

	mon.cands.Clear()
	clear(mon.inside)
	mon.replies.Visit(func(id model.ObjectID, p geo.Point) bool {
		if d := p.Dist(center); d <= radius {
			mon.cands.Set(id, p)
			if d <= rk {
				mon.inside[id] = true
			}
		}
		return true
	})
	mon.replies.Clear()

	cover := region
	if mon.prevRegion.R > 0 {
		if need := center.Dist(mon.prevRegion.Center) + mon.prevRegion.R; need > cover.R {
			cover.R = need
		}
	}
	mon.prevRegion = region

	if s.cfg.Influence {
		s.updateFrontier(mon, center, rk)
	}
	s.broadcastInstall(cover, mon, protocol.MonitorInstall{
		Query:        mon.query,
		Epoch:        mon.epoch,
		RangeMode:    mon.rng > 0,
		QueryPos:     center,
		QueryVel:     mon.qvel,
		AnswerRadius: rk,
		Radius:       radius,
		At:           now,
	})
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: now, Type: obs.EvInstalled, Query: mon.query,
			Seq: mon.epoch, Value: radius})
	}
	if mon.resyncProbe {
		// A periodic resync probe exists to heal lost-message divergence;
		// the focal client gets a full answer even if membership is
		// unchanged (refreshAnswer would stay silent and leave a desynced
		// client desynced for another ResyncTicks period).
		mon.resyncProbe = false
		s.resyncAnswer(mon, now)
		return
	}
	s.refreshAnswer(mon, now)
}

// computeAnswer recomputes the maintained answer from the inside set
// (filling from annulus candidates while recovering from an under-full
// circle) and stores it in mon.answer.
func (s *Server) computeAnswer(mon *monitor, now model.Tick) []model.Neighbor {
	center := mon.qEst(now, s.deps.DT)

	// Build into the per-monitor scratch: this runs once per applied
	// report, so it must not allocate in steady state.
	acc := mon.accBuf[:0]
	for id := range mon.inside {
		if p, ok := mon.cands.Position(id); ok {
			acc = append(acc, model.Neighbor{ID: id, Dist: p.Dist(center)})
		}
	}
	model.SortNeighbors(acc)
	// Influence mode: every applied report re-validates the advertised
	// frontier. The instant the influence set changes — the k-th member
	// crossed beyond F, or an annulus member crossed under it — the
	// monitor is marked for a refresh, which re-derives and re-advertises
	// the frontier (the Finalize sweep issues it within the same tick).
	if s.cfg.Influence && mon.rng == 0 && mon.installed && !mon.probing &&
		mon.frontier > 0 && !mon.frontierValid(acc) {
		mon.needsReinstall = true
	}
	if mon.rng > 0 {
		// Range monitor: membership is the answer; positions (and hence
		// the reported distances) are only install-time fresh.
	} else if len(acc) > mon.k {
		acc = acc[:mon.k]
	} else if len(acc) < mon.k && mon.cands.Len() > len(acc) {
		// Best-effort fill from annulus candidates (stale positions) while
		// a fallback probe is pending.
		extra := mon.extraBuf[:0]
		mon.cands.Visit(func(id model.ObjectID, p geo.Point) bool {
			if !mon.inside[id] {
				extra = append(extra, model.Neighbor{ID: id, Dist: p.Dist(center)})
			}
			return true
		})
		mon.extraBuf = extra
		model.SortNeighbors(extra)
		need := mon.k - len(acc)
		if need > len(extra) {
			need = len(extra)
		}
		acc = append(acc, extra[:need]...)
		model.SortNeighbors(acc)
	}
	mon.accBuf = acc
	mon.answer = acc
	return acc
}

// sendFullAnswer downlinks the current answer as a re-baselining full
// AnswerUpdate and records its membership as sent.
func (s *Server) sendFullAnswer(mon *monitor, acc []model.Neighbor, now model.Tick) {
	mon.rebaseline = false
	clear(mon.sent)
	for _, n := range acc {
		mon.sent[n.ID] = true
	}
	ns := make([]model.Neighbor, len(acc))
	copy(ns, acc)
	mon.answerSeq++
	s.deps.Side.Downlink(mon.addr, protocol.AnswerUpdate{
		Query: mon.query, Seq: mon.answerSeq, At: now,
		QPos: mon.qEst(now, s.deps.DT), Neighbors: ns,
	})
	if s.deps.Trace != nil {
		s.emit(obs.Event{At: now, Type: obs.EvAnswerFull, Query: mon.query,
			Seq: mon.answerSeq, Value: float64(len(ns))})
	}
}

// refreshAnswer recomputes the maintained answer and downlinks an answer
// message when membership changed (a delta in delta mode, a full update
// otherwise or when a rebaseline is due).
func (s *Server) refreshAnswer(mon *monitor, now model.Tick) {
	acc := s.computeAnswer(mon, now)

	// The common case is "nothing changed": detect it with the reused
	// added scratch so the no-send path is allocation-free.
	changed := len(acc) != len(mon.sent)
	added := mon.addedBuf[:0]
	for _, n := range acc {
		if !mon.sent[n.ID] {
			changed = true
			added = append(added, n)
		}
	}
	mon.addedBuf = added
	if !changed {
		return
	}
	if s.cfg.DeltaAnswers && !mon.rebaseline {
		if mon.accSet == nil {
			mon.accSet = make(map[model.ObjectID]bool, len(acc))
		} else {
			clear(mon.accSet)
		}
		for _, n := range acc {
			mon.accSet[n.ID] = true
		}
		removed := mon.removedBuf[:0]
		for id := range mon.sent {
			if !mon.accSet[id] {
				removed = append(removed, id)
			}
		}
		slices.Sort(removed)
		mon.removedBuf = removed
		clear(mon.sent)
		for _, n := range acc {
			mon.sent[n.ID] = true
		}
		mon.answerSeq++
		// The transport retains the payload until delivery, and the scratch
		// slices will be overwritten by the next report; the outgoing delta
		// gets its own copies (nil stays nil, matching the old wire shape).
		var outAdded []model.Neighbor
		if len(added) > 0 {
			outAdded = make([]model.Neighbor, len(added))
			copy(outAdded, added)
		}
		var outRemoved []model.ObjectID
		if len(removed) > 0 {
			outRemoved = make([]model.ObjectID, len(removed))
			copy(outRemoved, removed)
		}
		s.deps.Side.Downlink(mon.addr, protocol.AnswerDelta{
			Query: mon.query, Seq: mon.answerSeq, At: now, Added: outAdded, Removed: outRemoved,
		})
		if s.deps.Trace != nil {
			s.emit(obs.Event{At: now, Type: obs.EvAnswerDelta, Query: mon.query,
				Seq: mon.answerSeq, Value: float64(len(outAdded) + len(outRemoved))})
		}
		return
	}
	s.sendFullAnswer(mon, acc, now)
}

// resyncAnswer unconditionally re-baselines the focal client with a full
// AnswerUpdate, regardless of whether membership changed since the last
// answer message. This is the server half of the answer-resync protocol:
// it runs on a client's explicit resync request, on a re-registration
// from the focal client (client restart), and when a periodic
// ResyncTicks probe concludes.
func (s *Server) resyncAnswer(mon *monitor, now model.Tick) {
	s.sendFullAnswer(mon, s.computeAnswer(mon, now), now)
}

// Answer returns the server's maintained answer for q.
func (s *Server) Answer(q model.QueryID) model.Answer {
	s.mu.Lock()
	defer s.mu.Unlock()
	mon, ok := s.monitors[q]
	if !ok {
		return model.Answer{Query: q}
	}
	ns := make([]model.Neighbor, len(mon.answer))
	copy(ns, mon.answer)
	return model.Answer{Query: q, At: s.deps.Now(), Neighbors: ns}
}
