package core

import (
	"testing"

	"dmknn/internal/baseline"
	"dmknn/internal/metrics"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{HorizonTicks: 0, MinProbeRadius: 100},
		{HorizonTicks: 10, ThetaInside: -1, MinProbeRadius: 100},
		{HorizonTicks: 10, QueryDeviation: -1, MinProbeRadius: 100},
		{HorizonTicks: 10, MinProbeRadius: 0},
		{HorizonTicks: 10, MinProbeRadius: 100, AnswerSlack: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New accepted bad config", i)
		}
	}
}

func mustDKNN(t *testing.T, cfg Config) *Method {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// quickProto scales the protocol parameters to the Quick world: the
// safety slack (Vobj+Vqry)·H must stay a small fraction of the 1 km
// world for the monitoring regions to be local.
func quickProto() Config {
	cfg := DefaultConfig()
	cfg.HorizonTicks = 8
	cfg.MinProbeRadius = 100
	return cfg
}

// The exactness invariant: with zero latency, no loss, θ = 0 and query
// deviation 0, the client-visible answers match brute-force ground truth
// at every tick for every query.
func TestExactnessInvariant(t *testing.T) {
	cfg := workload.Quick()
	res, err := sim.Run(cfg, mustDKNN(t, quickProto()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit.Evaluations() == 0 {
		t.Fatal("no audited answers")
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("exactness = %v (recall mean %v, worst %v) — protocol not exact under ideal network",
			ex, res.Audit.MeanRecall(), res.Audit.WorstRecall())
	}
}

// Same invariant under every mobility model.
func TestExactnessAcrossMobilityModels(t *testing.T) {
	for _, kind := range []string{workload.ModelDirection, workload.ModelManhattan} {
		cfg, err := workload.WithMobility(workload.Quick(), kind)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Ticks = 60
		res, err := sim.Run(cfg, mustDKNN(t, quickProto()))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ex := res.Audit.Exactness(); ex != 1.0 {
			t.Errorf("%s: exactness = %v", kind, ex)
		}
	}
}

// DKNN uplink traffic must not scale with the object population, while CP
// scales linearly. This is the headline claim of the paper.
func TestUplinkScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling comparison is slow")
	}
	base := workload.Quick()
	base.Ticks = 60

	run := func(n int, m sim.Method) float64 {
		res, err := sim.Run(workload.WithObjects(base, n), m)
		if err != nil {
			t.Fatal(err)
		}
		return res.UplinkPerTick()
	}

	dknnSmall := run(600, mustDKNN(t, quickProto()))
	dknnBig := run(2400, mustDKNN(t, quickProto()))
	cpSmall := run(600, baseline.NewCP())
	cpBig := run(2400, baseline.NewCP())

	if cpSmall < 590 || cpBig < 2390 {
		t.Fatalf("CP should uplink ~N per tick: got %.1f @600, %.1f @2400", cpSmall, cpBig)
	}
	// DKNN grows sublinearly: 4x objects must cost < 2x messages. (Denser
	// population means smaller kNN circles, so cost often *drops*.)
	if dknnBig > 2*dknnSmall {
		t.Errorf("DKNN uplink not population-independent: %.1f @600, %.1f @2400",
			dknnSmall, dknnBig)
	}
	if dknnSmall > cpSmall/4 {
		t.Errorf("DKNN (%.1f) should be far below CP (%.1f) at N=600", dknnSmall, cpSmall)
	}
}

// Determinism: identical seeds produce identical traffic and accuracy.
func TestDeterminism(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 40
	r1, err := sim.Run(cfg, mustDKNN(t, quickProto()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(cfg, mustDKNN(t, quickProto()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Traffic != r2.Traffic {
		t.Error("traffic differs across identical runs")
	}
	if r1.Audit.Exactness() != r2.Audit.Exactness() {
		t.Error("accuracy differs across identical runs")
	}
}

// Under message loss the protocol must survive (no livelock, no panic)
// and degrade gracefully, healing at reinstalls.
func TestLossResilience(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 80
	cfg.UplinkLoss = 0.05
	cfg.DownlinkLoss = 0.05
	cfg.BroadcastLoss = 0.05
	pc := quickProto()
	pc.ResyncTicks = 24 // bound desync lifetime under loss
	res, err := sim.Run(cfg, mustDKNN(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	if rec := res.Audit.MeanRecall(); rec < 0.85 {
		t.Errorf("mean recall %v under 5%% loss — degradation not graceful", rec)
	}
	if res.Traffic.Dropped(0)+res.Traffic.Dropped(1)+res.Traffic.Dropped(2) == 0 {
		t.Error("loss configured but nothing dropped")
	}
}

// Under delivery latency the protocol still quiesces and produces mostly
// correct answers (staleness bounded by the latency).
func TestLatencyDegradesGracefully(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60
	cfg.LatencyTicks = 1
	res, err := sim.Run(cfg, mustDKNN(t, quickProto()))
	if err != nil {
		t.Fatal(err)
	}
	if rec := res.Audit.MeanRecall(); rec < 0.7 {
		t.Errorf("mean recall %v with 1-tick latency", rec)
	}
}

// Nonzero θ trades accuracy for fewer messages, monotonically.
func TestThetaTradeoff(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	run := func(theta float64) (float64, float64) {
		pc := quickProto()
		pc.ThetaInside = theta
		res, err := sim.Run(cfg, mustDKNN(t, pc))
		if err != nil {
			t.Fatal(err)
		}
		return res.UplinkPerTick(), res.Audit.MeanRecall()
	}

	upExact, recExact := run(0)
	upMid, recMid := run(10)
	upLoose, recLoose := run(50)
	if !(upLoose < upMid && upMid < upExact) {
		t.Errorf("uplink should fall with θ: %.1f (θ=0) %.1f (θ=10) %.1f (θ=50)",
			upExact, upMid, upLoose)
	}
	if recExact != 1.0 {
		t.Errorf("θ=0 recall = %v", recExact)
	}
	if !(recLoose <= recMid && recMid <= recExact) {
		t.Errorf("recall should fall with θ: %v %v %v", recExact, recMid, recLoose)
	}
	if recMid < 0.75 {
		t.Errorf("θ=10 recall collapsed to %v", recMid)
	}
}

// A deregistered query stops consuming object traffic: the cancel
// broadcast removes the monitors from the objects, so no event reports
// flow afterwards.
func TestDeregisterStopsTraffic(t *testing.T) {
	cfg := workload.Quick()
	cfg.NumQueries = 1
	method := mustDKNN(t, quickProto())
	eng, err := sim.NewEngine(cfg, method)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	for i := 0; i < 10; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if a := method.ServerAnswer(1); len(a.Neighbors) != cfg.K {
		t.Fatalf("query not established after 10 ticks: %v", a)
	}
	// Deregister via the query client's own transport and deliver.
	addr := env.Queries[0].State.ID
	env.Net.ClientSide(addr).Uplink(protocol.QueryDeregister{Query: 1})
	env.Net.Flush()
	if a := method.ServerAnswer(1); len(a.Neighbors) != 0 {
		t.Fatalf("server retains answer after deregister: %v", a)
	}
	// After the cancel propagates, object agents must hold no monitors
	// and send no event reports.
	before := env.Net.Counters().Snapshot()
	for i := 0; i < 10; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	d := env.Net.Counters().Diff(before)
	for _, k := range []protocol.Kind{
		protocol.KindEnterReport, protocol.KindExitReport,
		protocol.KindLeaveReport, protocol.KindMoveReport,
		protocol.KindProbeReply,
	} {
		if n := d.SentKind(metrics.Uplink, k); n != 0 {
			t.Errorf("%v still flowing after deregister: %d", k, n)
		}
	}
	for i := range env.Objects {
		if n := method.agents[i].MonitorCount(); n != 0 {
			t.Fatalf("object %d still holds %d monitors", i+1, n)
		}
	}
}

// Monitors on objects are dropped once the object leaves the region and
// reports; the server must not keep dead candidates forever.
func TestServerAnswerForUnknownQuery(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 5
	cfg.Warmup = 0
	m := mustDKNN(t, quickProto())
	if _, err := sim.Run(cfg, m); err != nil {
		t.Fatal(err)
	}
	if a := m.Answer(999); len(a.Neighbors) != 0 {
		t.Errorf("unknown query answer = %v", a)
	}
	if a := m.ServerAnswer(999); len(a.Neighbors) != 0 {
		t.Errorf("unknown query server answer = %v", a)
	}
}

// Range-monitoring mode: with a fixed radius, membership is the answer;
// under the ideal network it is exact at every tick, and in-boundary
// objects send no MoveReports at all.
func TestRangeMonitoringExactAndMoveFree(t *testing.T) {
	cfg := workload.Quick()
	cfg.QueryRange = 120
	cfg.K = 0
	cfg.Ticks = 60
	method := mustDKNN(t, quickProto())
	eng, err := sim.NewEngine(cfg, method)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("range monitoring exactness = %v (recall %v)", ex, res.Audit.MeanRecall())
	}
	if n := env.Net.Counters().SentKind(metrics.Uplink, protocol.KindMoveReport); n != 0 {
		t.Errorf("range monitors sent %d MoveReports; membership needs none", n)
	}
	// Uplink stays event-driven: far below CP's N+Q.
	if up := res.UplinkPerTick(); up > float64(cfg.NumObjects)/3 {
		t.Errorf("range monitoring uplink %v too high", up)
	}
}

// The centralized baseline answers range queries too, exactly.
func TestRangeMonitoringCPBaseline(t *testing.T) {
	cfg := workload.Quick()
	cfg.QueryRange = 120
	cfg.K = 0
	cfg.Ticks = 30
	res, err := sim.Run(cfg, baseline.NewCP())
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("CP range exactness = %v", ex)
	}
}

// Delta answer delivery: same exact client-visible membership, fewer
// downlink bytes.
func TestDeltaAnswersExactAndSmaller(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	full, err := sim.Run(cfg, mustDKNN(t, quickProto()))
	if err != nil {
		t.Fatal(err)
	}
	pc := quickProto()
	pc.DeltaAnswers = true
	delta, err := sim.Run(cfg, mustDKNN(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	if ex := delta.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("delta-mode exactness = %v", ex)
	}
	fullBytes := full.Traffic.SentBytes(metrics.Downlink)
	deltaBytes := delta.Traffic.SentBytes(metrics.Downlink)
	if deltaBytes >= fullBytes {
		t.Errorf("delta mode should cut downlink bytes: %d vs %d", deltaBytes, fullBytes)
	}
	if delta.Traffic.SentKind(metrics.Downlink, protocol.KindAnswerDelta) == 0 {
		t.Error("no deltas sent")
	}
}

// The bootstrap install in delta mode sends a full AnswerUpdate (the
// client baseline), and subsequent changes flow as deltas.
func TestDeltaModeBaselinesWithFullUpdate(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 30
	cfg.Warmup = 0 // keep bootstrap traffic in the measured window
	pc := quickProto()
	pc.DeltaAnswers = true
	res, err := sim.Run(cfg, mustDKNN(t, pc))
	if err != nil {
		t.Fatal(err)
	}
	fulls := res.Traffic.SentKind(metrics.Downlink, protocol.KindAnswerUpdate)
	deltas := res.Traffic.SentKind(metrics.Downlink, protocol.KindAnswerDelta)
	if fulls < uint64(cfg.NumQueries) {
		t.Errorf("expected >= %d full baselines, got %d", cfg.NumQueries, fulls)
	}
	if deltas == 0 {
		t.Error("no deltas flowed after baselining")
	}
}
