package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// randMonitorState draws a structurally valid snapshot: finite track,
// admissible (K, Range), and id slices sorted ascending as ExportMonitor
// guarantees. Values are pushed to awkward corners on purpose — answer
// sequences near uint32 wraparound, negative prev-region radius (the
// empty circle), zero-length sets.
func randMonitorState(rng *rand.Rand) MonitorState {
	pt := func() geo.Point {
		return geo.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
	}
	ids := func(maxLen int) []model.ObjectID {
		n := rng.Intn(maxLen + 1)
		if n == 0 {
			return nil
		}
		seen := map[model.ObjectID]bool{}
		out := make([]model.ObjectID, 0, n)
		for len(out) < n {
			id := model.ObjectID(1 + rng.Intn(1000))
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		// Match ExportMonitor's sorted-by-id invariant.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	st := MonitorState{
		Query:        model.QueryID(1 + rng.Intn(1<<16)),
		K:            1 + rng.Intn(64),
		Addr:         model.ObjectID(1 + rng.Intn(1<<16)),
		QPos:         pt(),
		QVel:         geo.Vector{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10},
		QAt:          model.Tick(rng.Intn(10000)),
		Epoch:        rng.Uint32(),
		Installed:    rng.Intn(2) == 0,
		AnswerRadius: rng.Float64() * 100,
		Radius:       rng.Float64() * 300,
		InstalledAt:  model.Tick(rng.Intn(10000)),
		PrevRegion:   geo.Circle{Center: pt(), R: rng.Float64()*200 - 1},
		AnswerSeq:    uint32(int64(1<<32) - 3 + int64(rng.Intn(6))), // straddle wraparound
		LastProbeAt:  model.Tick(rng.Intn(10000)),
		Inside:       ids(8),
		Sent:         ids(8),
	}
	if rng.Intn(4) == 0 {
		st.K, st.Range = 0, 10+rng.Float64()*100 // range monitor
	} else if rng.Intn(2) == 0 {
		// Influence-mode snapshot: a live frontier threshold and its band.
		st.Frontier = 10 + rng.Float64()*200
		st.Band = rng.Float64() * 20
	}
	if n := rng.Intn(9); n > 0 {
		for _, id := range ids(n) {
			st.Candidates = append(st.Candidates, CandidateState{ID: id, Pos: pt()})
		}
	}
	return st
}

// Satellite property test: a monitor snapshot survives the full migration
// encoding unchanged — MonitorState → wire QueryHandoff → binary codec →
// QueryHandoff → MonitorState is the identity, including nil-vs-empty
// slice shape and wraparound answer sequences.
func TestExportStateWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		st := randMonitorState(rng)
		qh := st.ExportState()
		buf := protocol.Encode(nil, qh)
		m, err := protocol.Decode(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v\nstate %+v", i, err, st)
		}
		back, ok := m.(protocol.QueryHandoff)
		if !ok {
			t.Fatalf("case %d: decoded %T, want QueryHandoff", i, m)
		}
		if got := ImportState(back); !reflect.DeepEqual(got, st) {
			t.Fatalf("case %d: round trip diverged\n got %+v\nwant %+v", i, got, st)
		}
	}
}

// Satellite property test: Export → Import → Export is a fixed point of
// live server state. The only deltas the re-export may show are the two
// documented import side effects: the re-baselining full AnswerUpdate
// bumps AnswerSeq by one, and rewrites Sent to the recomputed answer's
// membership (which at steady state is what the exporter had sent).
func TestExportImportExportFixedPoint(t *testing.T) {
	for _, influence := range []bool{false, true} {
		for _, seed := range []int64{1, 2, 3, 4, 5} {
			t.Run(fmt.Sprintf("influence=%v/seed%d", influence, seed), func(t *testing.T) {
				testExportImportExportFixedPoint(t, influence, seed)
			})
		}
	}
}

func testExportImportExportFixedPoint(t *testing.T, influence bool, seed int64) {
	{
		cfg := baseCfg()
		cfg.Influence = influence
		rng := rand.New(rand.NewSource(seed))
		srv, side, now := unitServer(t, cfg)
		*now = 1
		installQuery(t, srv, side, 1)

		// Churn the monitor: in-boundary drift, an exit, an enter, all at
		// random positions so each seed exercises a different final state.
		for tick := model.Tick(2); tick <= 6; tick++ {
			*now = tick
			srv.Tick(tick)
			for id := model.ObjectID(1); id <= 3; id++ {
				srv.HandleUplink(id, protocol.MoveReport{MemberReport: protocol.MemberReport{
					Query: 1, Epoch: 1, Object: id,
					Pos: geo.Pt(500+rng.Float64()*40, 495+rng.Float64()*10), At: tick,
				}})
			}
			srv.Finalize(tick)
		}

		st1, ok := srv.ExportMonitor(1)
		if !ok {
			t.Fatalf("seed %d: export refused", seed)
		}
		if influence && st1.Frontier <= 0 {
			t.Fatalf("seed %d: influence-mode export carries no live frontier", seed)
		}
		if !influence && (st1.Frontier != 0 || st1.Band != 0) {
			t.Fatalf("seed %d: influence-off export carries a frontier %v/%v", seed, st1.Frontier, st1.Band)
		}
		if srv.HasQuery(1) {
			t.Fatalf("seed %d: query still registered after export", seed)
		}
		if _, ok := srv.ExportMonitor(1); ok {
			t.Fatalf("seed %d: second export of a removed monitor succeeded", seed)
		}

		srv2, side2, now2 := unitServer(t, cfg)
		*now2 = *now
		srv2.ImportMonitor(st1, *now2)
		if !srv2.HasQuery(1) {
			t.Fatalf("seed %d: import did not register the query", seed)
		}
		// The import must re-baseline the focal client immediately.
		if len(side2.downlinks) == 0 {
			t.Fatalf("seed %d: import sent nothing to the focal client", seed)
		}
		last := side2.downlinks[len(side2.downlinks)-1]
		resync, ok := last.msg.(protocol.AnswerUpdate)
		if !ok {
			t.Fatalf("seed %d: import sent %T, want re-baselining AnswerUpdate", seed, last.msg)
		}
		if last.to != st1.Addr {
			t.Fatalf("seed %d: re-baseline sent to %d, want focal addr %d", seed, last.to, st1.Addr)
		}
		if resync.Seq != st1.AnswerSeq+1 {
			t.Fatalf("seed %d: resync seq %d, want exported seq %d + 1",
				seed, resync.Seq, st1.AnswerSeq)
		}

		st2, ok := srv2.ExportMonitor(1)
		if !ok {
			t.Fatalf("seed %d: re-export refused", seed)
		}
		if st2.AnswerSeq != st1.AnswerSeq+1 {
			t.Fatalf("seed %d: re-export AnswerSeq %d, want %d",
				seed, st2.AnswerSeq, st1.AnswerSeq+1)
		}
		// At steady state the re-baseline recomputes exactly the membership
		// the exporter last sent, so Sent is itself a fixed point.
		if !reflect.DeepEqual(st2.Sent, st1.Sent) {
			t.Fatalf("seed %d: Sent diverged\n got %v\nwant %v", seed, st2.Sent, st1.Sent)
		}
		norm := st2
		norm.AnswerSeq = st1.AnswerSeq
		if !reflect.DeepEqual(norm, st1) {
			t.Fatalf("seed %d: export/import/export not a fixed point\n got %+v\nwant %+v",
				seed, st2, st1)
		}
	}
}

// ExportMonitor must refuse while a probe round is in flight (the replies
// are addressed to the exporting server) and for unknown queries.
func TestExportRefusesProbingAndUnknown(t *testing.T) {
	srv, _, now := unitServer(t, baseCfg())
	*now = 1
	if _, ok := srv.ExportMonitor(99); ok {
		t.Fatal("exported an unknown query")
	}
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1) // probe now in flight, no replies yet
	if _, ok := srv.ExportMonitor(1); ok {
		t.Fatal("exported a monitor mid-probe")
	}
}

// ImportMonitor applies the register-path sanity bounds to snapshots —
// they cross an inter-node link, an open surface like the radio — and
// drops a snapshot for an already-registered query.
func TestImportMonitorRejectsInvalidAndDuplicate(t *testing.T) {
	srv, _, now := unitServer(t, baseCfg())
	*now = 1
	base := MonitorState{Query: 7, K: 2, Addr: 500, QPos: geo.Pt(100, 100)}

	bad := base
	bad.K = 0 // kNN monitor with no k
	srv.ImportMonitor(bad, 1)
	if srv.HasQuery(7) {
		t.Fatal("imported a k=0 kNN snapshot")
	}
	bad = base
	bad.QPos = geo.Pt(100, nan())
	srv.ImportMonitor(bad, 1)
	if srv.HasQuery(7) {
		t.Fatal("imported a non-finite track")
	}
	bad = base
	bad.Range = -1
	srv.ImportMonitor(bad, 1)
	if srv.HasQuery(7) {
		t.Fatal("imported a negative-range snapshot")
	}

	// A non-finite or negative threshold degrades to the θ rule (frontier
	// zeroed) rather than poisoning suppression or rejecting the monitor.
	bad = base
	bad.Query = 8
	bad.Frontier, bad.Band = nan(), 5
	srv.ImportMonitor(bad, 1)
	if !srv.HasQuery(8) {
		t.Fatal("a bad frontier rejected the whole snapshot")
	}
	if st, ok := srv.ExportMonitor(8); !ok || st.Frontier != 0 || st.Band != 0 {
		t.Fatalf("bad frontier not zeroed on import: %v/%v", st.Frontier, st.Band)
	}
	bad = base
	bad.Query = 9
	bad.Frontier, bad.Band = 50, -1
	srv.ImportMonitor(bad, 1)
	if st, ok := srv.ExportMonitor(9); !ok || st.Frontier != 0 || st.Band != 0 {
		t.Fatalf("negative band not zeroed on import: %v/%v", st.Frontier, st.Band)
	}

	srv.ImportMonitor(base, 1)
	if !srv.HasQuery(7) {
		t.Fatal("rejected a valid snapshot")
	}
	dup := base
	dup.K = 5
	srv.ImportMonitor(dup, 1)
	st, ok := srv.ExportMonitor(7)
	if !ok || st.K != 2 {
		t.Fatalf("duplicate import overwrote the registered monitor: k=%d ok=%v", st.K, ok)
	}
}

func nan() float64 {
	v := 0.0
	return v / v
}
