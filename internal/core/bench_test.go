package core

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// BenchmarkServerMoveReport measures the server's hottest path: applying
// an in-boundary position refresh and recomputing the answer.
func BenchmarkServerMoveReport(b *testing.B) {
	srv, side, now := benchServer(b)
	*now = 1
	inst := benchInstall(b, srv, side)
	msg := protocol.MoveReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 3, Pos: geo.Pt(520, 501), At: 1,
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.HandleUplink(3, msg)
	}
}

// The move-report path must stay allocation-free with tracing disabled:
// the emit sites are value-typed events behind a nil check, so a nil
// sink costs one branch and no boxing. Enforced as a test so plain CI
// runs catch a regression without -bench.
func TestServerMoveReportZeroAllocTracingOff(t *testing.T) {
	srv, side, now := benchServer(t)
	*now = 1
	inst := benchInstall(t, srv, side)
	msg := protocol.MoveReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 3, Pos: geo.Pt(520, 501), At: 1,
	}}
	if avg := testing.AllocsPerRun(200, func() {
		srv.HandleUplink(3, msg)
	}); avg != 0 {
		t.Errorf("MoveReport path allocates %.1f/op with tracing off, want 0", avg)
	}
}

// BenchmarkServerEnterExit measures a membership churn cycle.
func BenchmarkServerEnterExit(b *testing.B) {
	srv, side, now := benchServer(b)
	*now = 1
	inst := benchInstall(b, srv, side)
	enter := protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 99, Pos: geo.Pt(501, 500), At: 1,
	}}
	exit := protocol.ExitReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 99, Pos: geo.Pt(900, 900), At: 1,
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.HandleUplink(99, enter)
		srv.HandleUplink(99, exit)
	}
}

// BenchmarkAgentTick measures one object agent evaluating a monitor.
func BenchmarkAgentTick(b *testing.B) {
	pos := geo.Pt(500, 505)
	cfg := benchCfg()
	agent, err := NewObjectAgent(cfg, AgentDeps{
		ID:   1,
		Side: nullClientSide{},
		Now:  func() model.Tick { return 1 },
		Pos:  func() geo.Point { return pos },
		DT:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	agent.HandleServerMessage(protocol.MonitorInstall{
		Query: 1, Epoch: 1, QueryPos: geo.Pt(500, 500),
		AnswerRadius: 50, Radius: 200, At: 0,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Tick(model.Tick(i + 1))
	}
}

type nullClientSide struct{}

func (nullClientSide) Uplink(protocol.Message) {}

func benchCfg() Config {
	return Config{
		HorizonTicks:   20,
		MinProbeRadius: 100,
		AnswerSlack:    10,
	}.WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)))
}

func benchServer(b testing.TB) (*Server, *recSide, *model.Tick) {
	b.Helper()
	now := new(model.Tick)
	side := &recSide{}
	srv, err := NewServer(benchCfg(), ServerDeps{
		Side:           side,
		Now:            func() model.Tick { return *now },
		DT:             1,
		MaxObjectSpeed: 20,
		MaxQuerySpeed:  20,
	})
	if err != nil {
		b.Fatal(err)
	}
	return srv, side, now
}

// benchInstall registers a k=10 query and completes its probe with 25
// repliers.
func benchInstall(b testing.TB, srv *Server, side *recSide) protocol.MonitorInstall {
	b.Helper()
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 10, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1)
	reply := func() {
		probe, ok := side.lastBroadcast().(protocol.ProbeRequest)
		if !ok {
			return
		}
		for i := 1; i <= 25; i++ {
			p := geo.Pt(500+float64(i)*3, 500)
			if probe.Region.Contains(p) {
				srv.HandleUplink(model.ObjectID(i), protocol.ProbeReply{
					Query: 1, Seq: probe.Seq, Object: model.ObjectID(i), Pos: p, At: 1,
				})
			}
		}
	}
	reply()
	for i := 0; i < 6 && srv.Finalize(1); i++ {
		reply()
	}
	inst, ok := side.lastBroadcast().(protocol.MonitorInstall)
	if !ok {
		b.Fatalf("no install; last %T", side.lastBroadcast())
	}
	return inst
}
