package core

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// recClient records uplinks.
type recClient struct {
	sent []protocol.Message
}

func (r *recClient) Uplink(m protocol.Message) { r.sent = append(r.sent, m) }

func (r *recClient) last() protocol.Message {
	if len(r.sent) == 0 {
		return nil
	}
	return r.sent[len(r.sent)-1]
}

// unitAgent builds an object agent with a movable position and a
// controllable clock.
func unitAgent(t *testing.T) (*ObjectAgent, *recClient, *geo.Point, *model.Tick) {
	t.Helper()
	pos := &geo.Point{X: 500, Y: 500}
	now := new(model.Tick)
	side := &recClient{}
	cfg := baseCfg().WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)))
	a, err := NewObjectAgent(cfg, AgentDeps{
		ID:   7,
		Side: side,
		Now:  func() model.Tick { return *now },
		Pos:  func() geo.Point { return *pos },
		DT:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, side, pos, now
}

func install(epoch uint32, refresh bool, q geo.Point, rk, radius float64, at model.Tick) protocol.MonitorInstall {
	return protocol.MonitorInstall{
		Query: 1, Epoch: epoch, Refresh: refresh,
		QueryPos: q, AnswerRadius: rk, Radius: radius, At: at,
	}
}

func TestAgentAnswersProbeOnlyInsideRegion(t *testing.T) {
	a, side, _, _ := unitAgent(t)
	a.HandleServerMessage(protocol.ProbeRequest{
		Query: 1, Seq: 3, Region: geo.Circle{Center: geo.Pt(500, 520), R: 50}, At: 0,
	})
	rep, ok := side.last().(protocol.ProbeReply)
	if !ok {
		t.Fatal("no probe reply")
	}
	if rep.Object != 7 || rep.Seq != 3 || rep.Pos != geo.Pt(500, 500) {
		t.Fatalf("reply = %+v", rep)
	}
	// Outside the region: silent.
	n := len(side.sent)
	a.HandleServerMessage(protocol.ProbeRequest{
		Query: 1, Seq: 4, Region: geo.Circle{Center: geo.Pt(0, 0), R: 50},
	})
	if len(side.sent) != n {
		t.Fatal("replied to a probe it is not inside")
	}
}

func TestAgentFullInstallBaselinesSilently(t *testing.T) {
	a, side, _, _ := unitAgent(t)
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 20, 100, 0))
	if len(side.sent) != 0 {
		t.Fatalf("full install triggered %d uplinks", len(side.sent))
	}
	if a.MonitorCount() != 1 {
		t.Fatal("monitor not stored")
	}
	// Stale epoch rebroadcast is ignored.
	a.HandleServerMessage(install(0, false, geo.Pt(0, 0), 1, 2, 0))
	if a.MonitorCount() != 1 {
		t.Fatal("stale install mutated state")
	}
}

func TestAgentInstallOutsideRegionDropsMonitor(t *testing.T) {
	a, side, _, _ := unitAgent(t)
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 20, 100, 0))
	// New epoch centered far away: we are outside -> drop, silently for a
	// full install.
	a.HandleServerMessage(install(2, false, geo.Pt(0, 0), 20, 100, 0))
	if a.MonitorCount() != 0 {
		t.Fatal("monitor not dropped")
	}
	if len(side.sent) != 0 {
		t.Fatal("unexpected uplink")
	}
}

func TestAgentRefreshReportsSideChanges(t *testing.T) {
	a, side, _, _ := unitAgent(t)
	// Baseline: inside region, outside boundary (d=10 > rk=5).
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 5, 100, 0))
	// Refresh with a larger boundary: we are now inside -> EnterReport.
	a.HandleServerMessage(install(2, true, geo.Pt(500, 510), 20, 100, 0))
	if _, ok := side.last().(protocol.EnterReport); !ok {
		t.Fatalf("expected EnterReport, got %T", side.last())
	}
	// Refresh shrinking the boundary below us -> ExitReport.
	a.HandleServerMessage(install(3, true, geo.Pt(500, 510), 5, 100, 0))
	if _, ok := side.last().(protocol.ExitReport); !ok {
		t.Fatalf("expected ExitReport, got %T", side.last())
	}
	// Refresh with no side change -> silent.
	n := len(side.sent)
	a.HandleServerMessage(install(4, true, geo.Pt(500, 510), 5, 100, 0))
	if len(side.sent) != n {
		t.Fatal("refresh without side change sent a report")
	}
}

func TestAgentRefreshExitWhenPushedOutOfRegion(t *testing.T) {
	a, side, _, _ := unitAgent(t)
	// Inside the boundary initially.
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 20, 100, 0))
	// The region moves away entirely; we were a member -> ExitReport and
	// drop.
	a.HandleServerMessage(install(2, true, geo.Pt(0, 0), 20, 100, 0))
	if _, ok := side.last().(protocol.ExitReport); !ok {
		t.Fatalf("expected ExitReport, got %T", side.last())
	}
	if a.MonitorCount() != 0 {
		t.Fatal("monitor not dropped")
	}
}

func TestAgentTickCrossingEvents(t *testing.T) {
	a, side, pos, now := unitAgent(t)
	// Stationary query at (500,510), boundary 20, region 100. We start at
	// d=10: inside.
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 20, 100, 0))

	// Move to d=30: exit.
	*now = 1
	*pos = geo.Pt(500, 540)
	a.Tick(1)
	if _, ok := side.last().(protocol.ExitReport); !ok {
		t.Fatalf("expected ExitReport, got %T", side.last())
	}

	// Move back to d=5: enter.
	*now = 2
	*pos = geo.Pt(500, 515)
	a.Tick(2)
	if _, ok := side.last().(protocol.EnterReport); !ok {
		t.Fatalf("expected EnterReport, got %T", side.last())
	}

	// Small move while inside (θ=0): MoveReport.
	*now = 3
	*pos = geo.Pt(501, 515)
	a.Tick(3)
	if _, ok := side.last().(protocol.MoveReport); !ok {
		t.Fatalf("expected MoveReport, got %T", side.last())
	}

	// No move at all: silent.
	n := len(side.sent)
	*now = 4
	a.Tick(4)
	if len(side.sent) != n {
		t.Fatal("stationary inside object reported")
	}

	// Leave the region entirely while a member: LeaveReport + drop.
	*now = 5
	*pos = geo.Pt(500, 900)
	a.Tick(5)
	if _, ok := side.last().(protocol.LeaveReport); !ok {
		t.Fatalf("expected LeaveReport, got %T", side.last())
	}
	if a.MonitorCount() != 0 {
		t.Fatal("monitor retained after leave")
	}
}

func TestAgentAnnulusLeaveIsSilent(t *testing.T) {
	a, side, pos, now := unitAgent(t)
	// Start in the annulus: d=50 > rk=20, inside region 100.
	a.HandleServerMessage(install(1, false, geo.Pt(500, 550), 20, 100, 0))
	if a.MonitorCount() != 1 {
		t.Fatal("annulus object should monitor")
	}
	n := len(side.sent)
	*now = 1
	*pos = geo.Pt(500, 400) // d=150 > region
	a.Tick(1)
	if len(side.sent) != n {
		t.Fatalf("annulus leave sent %d uplinks", len(side.sent)-n)
	}
	if a.MonitorCount() != 0 {
		t.Fatal("monitor retained")
	}
}

func TestAgentMonitorCancel(t *testing.T) {
	a, _, _, _ := unitAgent(t)
	a.HandleServerMessage(install(2, false, geo.Pt(500, 510), 20, 100, 0))
	// Older-epoch cancel is ignored.
	a.HandleServerMessage(protocol.MonitorCancel{Query: 1, Epoch: 1})
	if a.MonitorCount() != 1 {
		t.Fatal("stale cancel removed the monitor")
	}
	a.HandleServerMessage(protocol.MonitorCancel{Query: 1, Epoch: 2})
	if a.MonitorCount() != 0 {
		t.Fatal("cancel ignored")
	}
	// Cancel for an unknown query is a no-op.
	a.HandleServerMessage(protocol.MonitorCancel{Query: 9, Epoch: 1})
}

// Race regression: a deregistration's MonitorCancel (epoch E) can be
// reordered behind a same-tick reinstall for a new registration of the
// same query (epoch E+1) under jitter. The stale cancel must not drop the
// freshly installed monitor; an exact-epoch cancel still must.
func TestAgentCancelRacedWithReinstallKeepsFreshMonitor(t *testing.T) {
	a, _, _, _ := unitAgent(t)
	a.HandleServerMessage(install(5, false, geo.Pt(500, 510), 20, 100, 0))
	// The reinstall (epoch 6) wins the race and arrives first...
	a.HandleServerMessage(install(6, false, geo.Pt(500, 510), 20, 100, 0))
	// ...then the cancel for the torn-down epoch-5 monitor lands.
	a.HandleServerMessage(protocol.MonitorCancel{Query: 1, Epoch: 5})
	if a.MonitorCount() != 1 {
		t.Fatal("raced cancel dropped the freshly installed monitor")
	}
	a.HandleServerMessage(protocol.MonitorCancel{Query: 1, Epoch: 6})
	if a.MonitorCount() != 0 {
		t.Fatal("current-epoch cancel ignored")
	}
}

func TestAgentDeadReckonsMovingQuery(t *testing.T) {
	a, side, _, now := unitAgent(t)
	// Query at (500,520) moving +y at 10 m/s, boundary 25. We are at
	// d=20: inside at install time.
	a.HandleServerMessage(protocol.MonitorInstall{
		Query: 1, Epoch: 1, QueryPos: geo.Pt(500, 520), QueryVel: geo.Vec(0, 10),
		AnswerRadius: 25, Radius: 300, At: 0,
	})
	// Two ticks later the query is predicted at (500,540): d=40 > 25 even
	// though we never moved -> ExitReport.
	*now = 2
	a.Tick(2)
	if _, ok := side.last().(protocol.ExitReport); !ok {
		t.Fatalf("expected ExitReport from dead-reckoned query motion, got %T", side.last())
	}
}

func TestQueryAgentRegistersAndCorrectsTrack(t *testing.T) {
	side := &recClient{}
	now := new(model.Tick)
	pos := geo.Pt(100, 100)
	vel := geo.Vec(5, 0)
	cfg := baseCfg().WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)))
	qa, err := NewQueryAgent(cfg, model.QuerySpec{ID: 3, K: 4, Pos: pos},
		QueryAgentDeps{
			AgentDeps: AgentDeps{
				ID: 200, Side: side,
				Now: func() model.Tick { return *now },
				Pos: func() geo.Point { return pos },
				DT:  1,
			},
			Vel: func() geo.Vector { return vel },
		})
	if err != nil {
		t.Fatal(err)
	}

	*now = 1
	qa.Tick(1)
	reg, ok := side.last().(protocol.QueryRegister)
	if !ok || reg.Query != 3 || reg.K != 4 {
		t.Fatalf("registration = %#v", side.last())
	}

	// Moving exactly along the advertised track: silent.
	*now = 2
	pos = geo.Pt(105, 100)
	n := len(side.sent)
	qa.Tick(2)
	if len(side.sent) != n {
		t.Fatal("on-track query sent a correction")
	}

	// Deviating: QueryMove.
	*now = 3
	pos = geo.Pt(105, 130)
	qa.Tick(3)
	if _, ok := side.last().(protocol.QueryMove); !ok {
		t.Fatalf("expected QueryMove, got %T", side.last())
	}

	// Answer updates are stored and surfaced via the callback.
	got := 0
	qa.OnAnswer = func(model.Answer) { got++ }
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 3, At: 3,
		Neighbors: []model.Neighbor{{ID: 8, Dist: 2}}})
	if got != 1 {
		t.Fatal("OnAnswer not invoked")
	}
	if a := qa.Answer(); len(a.Neighbors) != 1 || a.Neighbors[0].ID != 8 {
		t.Fatalf("stored answer = %v", a)
	}
	// Updates for other queries are ignored.
	qa.HandleServerMessage(protocol.AnswerUpdate{Query: 99})
	if a := qa.Answer(); len(a.Neighbors) != 1 {
		t.Fatal("foreign answer applied")
	}

	// Deregister emits the message and allows re-registration.
	qa.Deregister()
	if _, ok := side.last().(protocol.QueryDeregister); !ok {
		t.Fatalf("expected QueryDeregister, got %T", side.last())
	}
	*now = 4
	qa.Tick(4)
	if _, ok := side.last().(protocol.QueryRegister); !ok {
		t.Fatalf("expected re-registration, got %T", side.last())
	}
}

func TestNewAgentValidation(t *testing.T) {
	bad := Config{} // invalid
	if _, err := NewObjectAgent(bad, AgentDeps{}); err == nil {
		t.Error("ObjectAgent accepted invalid config")
	}
	if _, err := NewQueryAgent(bad, model.QuerySpec{ID: 1, K: 1}, QueryAgentDeps{}); err == nil {
		t.Error("QueryAgent accepted invalid config")
	}
	good := baseCfg().WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)))
	if _, err := NewQueryAgent(good, model.QuerySpec{ID: 1, K: 0}, QueryAgentDeps{}); err == nil {
		t.Error("QueryAgent accepted k=0")
	}
}

// Regression: a refresh install must NOT silently re-baseline the
// last-reported position of an object that drifted inside the boundary —
// the server still holds the old position, so the drift has to surface as
// a MoveReport at the next tick.
func TestRefreshPreservesLastReportBaseline(t *testing.T) {
	a, side, pos, now := unitAgent(t)
	// Inside the boundary at (500,500); server knows this position.
	a.HandleServerMessage(install(1, false, geo.Pt(500, 510), 50, 300, 0))
	// Drift within the boundary, then receive a silent refresh BEFORE the
	// next tick (the race: move and install in the same interval).
	*pos = geo.Pt(520, 500)
	a.HandleServerMessage(install(2, true, geo.Pt(500, 510), 50, 300, 0))
	n := len(side.sent)
	// The next tick must transmit the drift even though the object no
	// longer moves.
	*now = 1
	a.Tick(1)
	if len(side.sent) != n+1 {
		t.Fatalf("drift swallowed by refresh: %d new uplinks, want 1", len(side.sent)-n)
	}
	mv, ok := side.last().(protocol.MoveReport)
	if !ok {
		t.Fatalf("expected MoveReport, got %T", side.last())
	}
	if mv.Pos != geo.Pt(520, 500) {
		t.Fatalf("MoveReport position %v", mv.Pos)
	}
	// Once reported, a further refresh + tick stays silent (no drift).
	a.HandleServerMessage(install(3, true, geo.Pt(500, 510), 50, 300, 1))
	n = len(side.sent)
	*now = 2
	a.Tick(2)
	if len(side.sent) != n {
		t.Fatal("spurious report after drift was already transmitted")
	}
}
