package core

// This file exposes the move-report hot path's allocation rate as a
// callable probe, so cmd/dknn-bench can report allocs/op in its JSON
// artifact without shelling out to `go test -bench`. The measured path
// and setup mirror BenchmarkServerMoveReport / the zero-alloc CI test in
// bench_test.go: a k=10 query installed over 25 repliers, then
// in-boundary MoveReports applied in a loop.

import (
	"fmt"
	"runtime"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// discardSide keeps only the last broadcast — enough to drive the
// probe/install handshake.
type discardSide struct{ last protocol.Message }

func (d *discardSide) Broadcast(_ geo.Circle, m protocol.Message) { d.last = m }
func (d *discardSide) Downlink(model.ObjectID, protocol.Message)  {}

// MoveReportAllocsPerOp measures heap allocations per MoveReport on the
// server's hottest path with tracing off, averaged over runs operations
// (runs <= 0 selects a default). The expected value is 0; anything else
// is a hot-path regression.
func MoveReportAllocsPerOp(runs int) (float64, error) {
	if runs <= 0 {
		runs = 1000
	}
	side := &discardSide{}
	now := model.Tick(1)
	srv, err := NewServer(Config{
		HorizonTicks:   20,
		MinProbeRadius: 100,
		AnswerSlack:    10,
	}.WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000))), ServerDeps{
		Side:           side,
		Now:            func() model.Tick { return now },
		DT:             1,
		MaxObjectSpeed: 20,
		MaxQuerySpeed:  20,
	})
	if err != nil {
		return 0, err
	}
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 10, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1)
	reply := func() {
		probe, ok := side.last.(protocol.ProbeRequest)
		if !ok {
			return
		}
		for i := 1; i <= 25; i++ {
			p := geo.Pt(500+float64(i)*3, 500)
			if probe.Region.Contains(p) {
				srv.HandleUplink(model.ObjectID(i), protocol.ProbeReply{
					Query: 1, Seq: probe.Seq, Object: model.ObjectID(i), Pos: p, At: 1,
				})
			}
		}
	}
	reply()
	for i := 0; i < 6 && srv.Finalize(1); i++ {
		reply()
	}
	inst, ok := side.last.(protocol.MonitorInstall)
	if !ok {
		return 0, fmt.Errorf("core: alloc probe setup produced no install (last %T)", side.last)
	}
	msg := protocol.MoveReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 3, Pos: geo.Pt(520, 501), At: 1,
	}}

	// Same discipline as testing.AllocsPerRun: single P, warm up once,
	// then count Mallocs across the timed loop.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	srv.HandleUplink(3, msg)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		srv.HandleUplink(3, msg)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs), nil
}
