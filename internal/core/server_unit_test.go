package core

import (
	"math"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// recSide records everything the server sends.
type recSide struct {
	broadcasts []struct {
		region geo.Circle
		msg    protocol.Message
	}
	downlinks []struct {
		to  model.ObjectID
		msg protocol.Message
	}
}

func (r *recSide) Broadcast(region geo.Circle, m protocol.Message) {
	r.broadcasts = append(r.broadcasts, struct {
		region geo.Circle
		msg    protocol.Message
	}{region, m})
}

func (r *recSide) Downlink(to model.ObjectID, m protocol.Message) {
	r.downlinks = append(r.downlinks, struct {
		to  model.ObjectID
		msg protocol.Message
	}{to, m})
}

func (r *recSide) lastBroadcast() protocol.Message {
	if len(r.broadcasts) == 0 {
		return nil
	}
	return r.broadcasts[len(r.broadcasts)-1].msg
}

// unitServer builds a server over a recording side with a controllable
// clock.
func unitServer(t *testing.T, cfg Config) (*Server, *recSide, *model.Tick) {
	t.Helper()
	now := new(model.Tick)
	side := &recSide{}
	srv, err := NewServer(cfg.WithWorldDefault(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))),
		ServerDeps{
			Side:           side,
			Now:            func() model.Tick { return *now },
			DT:             1,
			MaxObjectSpeed: 10,
			MaxQuerySpeed:  10,
		})
	if err != nil {
		t.Fatal(err)
	}
	return srv, side, now
}

func baseCfg() Config {
	return Config{
		HorizonTicks:   10,
		MinProbeRadius: 100,
		AnswerSlack:    2,
	}
}

func TestNewServerRequiresMaxProbeRadius(t *testing.T) {
	cfg := baseCfg() // no MaxProbeRadius, no WithWorldDefault
	if _, err := NewServer(cfg, ServerDeps{}); err == nil {
		t.Fatal("NewServer accepted zero MaxProbeRadius")
	}
}

func TestRegisterStartsProbe(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: 1})
	if srv.QueryCount() != 1 {
		t.Fatal("query not registered")
	}
	srv.Tick(1)
	probe, ok := side.lastBroadcast().(protocol.ProbeRequest)
	if !ok {
		t.Fatalf("expected a probe broadcast, got %T", side.lastBroadcast())
	}
	if probe.Region.R != 100 {
		t.Errorf("initial probe radius = %v, want MinProbeRadius", probe.Region.R)
	}
	// Duplicate registration is ignored.
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 9, Pos: geo.Pt(0, 0), At: 1})
	if srv.QueryCount() != 1 {
		t.Fatal("duplicate registration created a second monitor")
	}
}

func TestProbeExpandsUntilEnoughReplies(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1)
	probe := side.lastBroadcast().(protocol.ProbeRequest)

	// No replies: the ring doubles.
	if !srv.Finalize(1) {
		t.Fatal("Finalize should expand the probe")
	}
	probe2 := side.lastBroadcast().(protocol.ProbeRequest)
	if probe2.Region.R != 2*probe.Region.R {
		t.Errorf("expanded radius %v, want doubled %v", probe2.Region.R, 2*probe.Region.R)
	}
	if probe2.Seq != probe.Seq+1 {
		t.Error("probe sequence did not advance")
	}

	// One reply (k=2 needs two): expands again.
	srv.HandleUplink(1, protocol.ProbeReply{Query: 1, Seq: probe2.Seq, Object: 1, Pos: geo.Pt(510, 500), At: 1})
	if !srv.Finalize(1) {
		t.Fatal("Finalize should expand again")
	}
	probe3 := side.lastBroadcast().(protocol.ProbeRequest)

	// Two replies: installs.
	srv.HandleUplink(1, protocol.ProbeReply{Query: 1, Seq: probe3.Seq, Object: 1, Pos: geo.Pt(510, 500), At: 1})
	srv.HandleUplink(2, protocol.ProbeReply{Query: 1, Seq: probe3.Seq, Object: 2, Pos: geo.Pt(520, 500), At: 1})
	if !srv.Finalize(1) {
		t.Fatal("Finalize should install")
	}
	inst, ok := side.lastBroadcast().(protocol.MonitorInstall)
	if !ok {
		t.Fatalf("expected install, got %T", side.lastBroadcast())
	}
	if inst.Refresh {
		t.Error("probe-based install must not be a refresh")
	}
	if inst.Radius < inst.AnswerRadius {
		t.Error("monitoring region smaller than answer boundary")
	}
	// Answer downlinked to the focal client.
	if len(side.downlinks) == 0 || side.downlinks[len(side.downlinks)-1].to != 500 {
		t.Fatal("no AnswerUpdate downlink to the registrant")
	}
	au := side.downlinks[len(side.downlinks)-1].msg.(protocol.AnswerUpdate)
	if len(au.Neighbors) != 2 || au.Neighbors[0].ID != 1 || au.Neighbors[1].ID != 2 {
		t.Fatalf("answer = %v", au.Neighbors)
	}
	// Quiescent afterwards.
	if srv.Finalize(1) {
		t.Error("Finalize not quiescent after install")
	}
}

// install completes a standard register→probe→reply→install handshake for
// a k=2 query at (500,500) with two objects and returns the install.
func installQuery(t *testing.T, srv *Server, side *recSide, now model.Tick) protocol.MonitorInstall {
	t.Helper()
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: now})
	srv.Tick(now)
	objects := map[model.ObjectID]geo.Point{
		1: geo.Pt(510, 500),
		2: geo.Pt(530, 500),
		3: geo.Pt(560, 500),
	}
	reply := func() {
		probe, ok := side.lastBroadcast().(protocol.ProbeRequest)
		if !ok {
			return
		}
		for id, p := range objects {
			if probe.Region.Contains(p) {
				srv.HandleUplink(id, protocol.ProbeReply{
					Query: 1, Seq: probe.Seq, Object: id, Pos: p, At: now,
				})
			}
		}
	}
	reply()
	for i := 0; i < 6 && srv.Finalize(now); i++ {
		reply()
	}
	switch v := side.lastBroadcast().(type) {
	case protocol.MonitorInstall:
		return v
	case protocol.InfluenceInstall: // influence-mode servers install with this kind
		return v.Install
	default:
		t.Fatalf("no install; last broadcast %T", side.lastBroadcast())
		return protocol.MonitorInstall{}
	}
}

func TestEnterExitMaintainAnswer(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)
	a := srv.Answer(1)
	if len(a.Neighbors) != 2 || a.Neighbors[0].ID != 1 {
		t.Fatalf("initial answer %v", a.Neighbors)
	}

	// Object 4 enters very close: answer must change to {4, 1}.
	*now = 2
	srv.HandleUplink(4, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 4, Pos: geo.Pt(505, 500), At: 2,
	}})
	a = srv.Answer(1)
	if a.Neighbors[0].ID != 4 || a.Neighbors[1].ID != 1 {
		t.Fatalf("post-enter answer %v", a.Neighbors)
	}

	// Object 4 exits again: answer reverts.
	srv.HandleUplink(4, protocol.ExitReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 4, Pos: geo.Pt(900, 900), At: 2,
	}})
	a = srv.Answer(1)
	if a.Neighbors[0].ID != 1 || a.Neighbors[1].ID != 2 {
		t.Fatalf("post-exit answer %v", a.Neighbors)
	}
}

func TestStaleEpochReportsIgnoredBeyondGrace(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)
	// A report from epochGrace+1 epochs ago must be dropped.
	old := inst.Epoch - (epochGrace + 1) // wraps: huge number > epoch -> also rejected
	srv.HandleUplink(9, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: old, Object: 9, Pos: geo.Pt(500, 501), At: 1,
	}})
	for _, n := range srv.Answer(1).Neighbors {
		if n.ID == 9 {
			t.Fatal("stale-epoch report was applied")
		}
	}
	// A future epoch is equally invalid.
	srv.HandleUplink(9, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch + 1, Object: 9, Pos: geo.Pt(500, 501), At: 1,
	}})
	for _, n := range srv.Answer(1).Neighbors {
		if n.ID == 9 {
			t.Fatal("future-epoch report was applied")
		}
	}
}

func TestMoveReportAffirmsMembership(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)
	// A MoveReport from an object the server does not track as inside
	// (e.g. its EnterReport was lost) must still make it a member.
	srv.HandleUplink(7, protocol.MoveReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 7, Pos: geo.Pt(501, 500), At: 1,
	}})
	a := srv.Answer(1)
	if a.Neighbors[0].ID != 7 {
		t.Fatalf("move report did not affirm membership: %v", a.Neighbors)
	}
}

func TestHorizonTriggersRefreshNotProbe(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	preBroadcasts := len(side.broadcasts)

	*now = 11 // horizon is 10
	srv.Tick(11)
	if len(side.broadcasts) != preBroadcasts+1 {
		t.Fatalf("expected exactly one broadcast, got %d new", len(side.broadcasts)-preBroadcasts)
	}
	inst, ok := side.lastBroadcast().(protocol.MonitorInstall)
	if !ok {
		t.Fatalf("horizon reinstall should be an install, got %T", side.lastBroadcast())
	}
	if !inst.Refresh {
		t.Error("horizon reinstall with a healthy buffer should be a refresh")
	}
}

func TestBufferDrainTriggersProbe(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)
	// All three known objects leave: fewer than k=2 inside -> a probe, not
	// a refresh.
	for obj := model.ObjectID(1); obj <= 3; obj++ {
		srv.HandleUplink(obj, protocol.LeaveReport{MemberReport: protocol.MemberReport{
			Query: 1, Epoch: inst.Epoch, Object: obj, Pos: geo.Pt(950, 950), At: 1,
		}})
	}
	*now = 2
	srv.Tick(2)
	if _, ok := side.lastBroadcast().(protocol.ProbeRequest); !ok {
		t.Fatalf("drained buffer should trigger a probe, got %T", side.lastBroadcast())
	}
}

func TestQueryMoveTriggersRefresh(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	*now = 2
	srv.HandleUplink(500, protocol.QueryMove{Query: 1, Pos: geo.Pt(520, 500), At: 2})
	srv.Tick(2)
	inst, ok := side.lastBroadcast().(protocol.MonitorInstall)
	if !ok {
		t.Fatalf("query move should reinstall, got %T", side.lastBroadcast())
	}
	if inst.QueryPos != geo.Pt(520, 500) {
		t.Errorf("install advertises %v, want the corrected position", inst.QueryPos)
	}
}

func TestDeregisterBroadcastsCancel(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	srv.HandleUplink(500, protocol.QueryDeregister{Query: 1})
	if _, ok := side.lastBroadcast().(protocol.MonitorCancel); !ok {
		t.Fatalf("deregister should cancel, got %T", side.lastBroadcast())
	}
	if srv.QueryCount() != 0 {
		t.Fatal("monitor retained")
	}
	// Deregistering an unknown query is a no-op.
	srv.HandleUplink(500, protocol.QueryDeregister{Query: 42})
}

func TestSparseWorldFewerThanKObjects(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 5, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1)
	// Only one object exists; it replies to whichever probe covers it.
	for i := 0; i < 8; i++ {
		if !srv.Finalize(1) {
			break
		}
		if probe, ok := side.lastBroadcast().(protocol.ProbeRequest); ok {
			if probe.Region.Contains(geo.Pt(300, 300)) {
				srv.HandleUplink(1, protocol.ProbeReply{
					Query: 1, Seq: probe.Seq, Object: 1, Pos: geo.Pt(300, 300), At: 1,
				})
			}
		}
	}
	inst, ok := side.lastBroadcast().(protocol.MonitorInstall)
	if !ok {
		t.Fatalf("sparse world never installed; last %T", side.lastBroadcast())
	}
	// The monitor must cover the probed area so the lone object stays
	// aware.
	if inst.AnswerRadius <= 0 {
		t.Error("empty answer radius in sparse world")
	}
	a := srv.Answer(1)
	if len(a.Neighbors) != 1 || a.Neighbors[0].ID != 1 {
		t.Fatalf("sparse answer %v", a.Neighbors)
	}
}

func TestUnknownUplinkKindsIgnored(t *testing.T) {
	srv, _, _ := unitServer(t, baseCfg())
	// LocationReport is not part of this protocol; must not panic or
	// register anything.
	srv.HandleUplink(1, protocol.LocationReport{Object: 1, Pos: geo.Pt(1, 1)})
	if srv.QueryCount() != 0 {
		t.Fatal("spurious state from unknown kind")
	}
	// Reports for unknown queries are ignored.
	srv.HandleUplink(1, protocol.EnterReport{MemberReport: protocol.MemberReport{Query: 77}})
	srv.HandleUplink(1, protocol.ProbeReply{Query: 77})
	srv.HandleUplink(1, protocol.QueryMove{Query: 77})
}

func TestBusyTimeAccumulates(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	installQuery(t, srv, side, 1)
	if srv.BusyTime() <= 0 {
		t.Error("BusyTime not tracked")
	}
}

// A vanished client is purged from answers (connection-oriented media).
func TestHandleClientGone(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1)
	// Transient object 50 enters closest.
	srv.HandleUplink(50, protocol.EnterReport{MemberReport: protocol.MemberReport{
		Query: 1, Epoch: inst.Epoch, Object: 50, Pos: geo.Pt(500, 502), At: 1,
	}})
	if a := srv.Answer(1); a.Neighbors[0].ID != 50 {
		t.Fatalf("enter not applied: %v", a.Neighbors)
	}
	srv.HandleClientGone(50)
	for _, n := range srv.Answer(1).Neighbors {
		if n.ID == 50 {
			t.Fatalf("vanished client still in answer: %v", srv.Answer(1).Neighbors)
		}
	}
	// A vanished focal client tears its query down.
	srv.HandleClientGone(500)
	if srv.QueryCount() != 0 {
		t.Fatal("query survived its focal client")
	}
}

// A client that answered a pending probe and then vanished must not be
// resurrected when the probe round concludes.
func TestHandleClientGonePurgesPendingProbeReplies(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	srv.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 1, Pos: geo.Pt(500, 500), At: 1})
	srv.Tick(1)
	probe := side.lastBroadcast().(protocol.ProbeRequest)
	// Two replies; the nearer replier dies before the round concludes.
	srv.HandleUplink(50, protocol.ProbeReply{Query: 1, Seq: probe.Seq, Object: 50, Pos: geo.Pt(500, 505), At: 1})
	srv.HandleUplink(51, protocol.ProbeReply{Query: 1, Seq: probe.Seq, Object: 51, Pos: geo.Pt(500, 520), At: 1})
	srv.HandleClientGone(50)
	for i := 0; i < 6 && srv.Finalize(1); i++ {
		if probe2, ok := side.lastBroadcast().(protocol.ProbeRequest); ok {
			srv.HandleUplink(51, protocol.ProbeReply{Query: 1, Seq: probe2.Seq, Object: 51, Pos: geo.Pt(500, 520), At: 1})
		}
	}
	a := srv.Answer(1)
	for _, n := range a.Neighbors {
		if n.ID == 50 {
			t.Fatalf("vanished probe replier resurrected: %v", a.Neighbors)
		}
	}
	if len(a.Neighbors) != 1 || a.Neighbors[0].ID != 51 {
		t.Fatalf("answer = %v, want {51}", a.Neighbors)
	}
}

// The server is an open network surface: garbage from adversarial or
// buggy clients must never panic it, blow up memory, or corrupt the
// answers of well-behaved queries.
func TestServerRobustToAdversarialClients(t *testing.T) {
	srv, side, now := unitServer(t, baseCfg())
	*now = 1
	inst := installQuery(t, srv, side, 1) // a legitimate query

	nan := math.NaN()
	hostile := []protocol.Message{
		protocol.QueryRegister{Query: 66, K: 0, Pos: geo.Pt(1, 1), At: 1},
		protocol.QueryRegister{Query: 67, K: 1 << 30, Pos: geo.Pt(1, 1), At: 1},
		protocol.QueryRegister{Query: 68, K: 5, Range: -10, Pos: geo.Pt(1, 1), At: 1},
		protocol.QueryRegister{Query: 69, K: 5, Range: nan, Pos: geo.Pt(1, 1), At: 1},
		protocol.QueryRegister{Query: 70, K: 5, Pos: geo.Pt(nan, nan), At: 1},
		protocol.QueryMove{Query: 1, Pos: geo.Pt(nan, nan), At: 1},
		protocol.EnterReport{MemberReport: protocol.MemberReport{
			Query: 1, Epoch: inst.Epoch, Object: 0, Pos: geo.Pt(nan, 5), At: 1}},
		protocol.MoveReport{MemberReport: protocol.MemberReport{
			Query: 1, Epoch: inst.Epoch, Object: 77, Pos: geo.Pt(1e308, 1e308), At: 1}},
		protocol.ProbeReply{Query: 1, Seq: 9999, Object: 5, Pos: geo.Pt(5, 5), At: 1},
		protocol.QueryDeregister{Query: 4242},
	}
	for _, m := range hostile {
		srv.HandleUplink(9999, m)
	}
	// Hostile registrations must have been rejected.
	if got := srv.QueryCount(); got != 1 {
		t.Fatalf("QueryCount = %d after hostile registrations, want 1", got)
	}
	// The server keeps ticking and finalizing without panicking.
	for tick := model.Tick(2); tick < 30; tick++ {
		*now = tick
		srv.Tick(tick)
		for i := 0; i < 6 && srv.Finalize(tick); i++ {
		}
	}
	// The legitimate query still answers with sane, sorted members.
	a := srv.Answer(1)
	if len(a.Neighbors) == 0 {
		t.Fatal("legitimate query lost its answer")
	}
	for i := 1; i < len(a.Neighbors); i++ {
		if a.Neighbors[i].Dist < a.Neighbors[i-1].Dist {
			t.Fatalf("answer unsorted: %v", a.Neighbors)
		}
	}
}
