package core

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/protocol"
)

// HandleUplinkBatch must apply its slice exactly as the equivalent
// sequence of HandleUplink / HandleClientGone calls would, under a
// single lock acquisition, firing the before hook once per entry in
// slice order.
func TestHandleUplinkBatchMatchesSequential(t *testing.T) {
	mk := func() []Ingest {
		return []Ingest{
			{Seq: 1, From: 901, Msg: protocol.QueryRegister{Query: 1, Pos: geo.Pt(100, 100), K: 2, At: 1}},
			{Seq: 2, From: 902, Msg: protocol.QueryRegister{Query: 2, Pos: geo.Pt(500, 500), K: 2, At: 1}},
			{Seq: 3, From: 902}, // nil Msg: client 902 disconnected
			{Seq: 4, From: 903, Msg: protocol.QueryRegister{Query: 3, Pos: geo.Pt(800, 200), K: 2, At: 1}},
		}
	}

	batched, bSide, _ := unitServer(t, baseCfg())
	var hooked []uint64
	batched.HandleUplinkBatch(mk(), func(in Ingest) { hooked = append(hooked, in.Seq) })

	seq, sSide, _ := unitServer(t, baseCfg())
	for _, in := range mk() {
		if in.Msg == nil {
			seq.HandleClientGone(in.From)
			continue
		}
		seq.HandleUplink(in.From, in.Msg)
	}

	if want := []uint64{1, 2, 3, 4}; len(hooked) != len(want) {
		t.Fatalf("before hook fired %d times, want %d", len(hooked), len(want))
	} else {
		for i, s := range want {
			if hooked[i] != s {
				t.Fatalf("before hook order %v, want %v", hooked, want)
			}
		}
	}
	if batched.QueryCount() != seq.QueryCount() {
		t.Fatalf("query count %d (batched) vs %d (sequential)", batched.QueryCount(), seq.QueryCount())
	}
	if batched.QueryCount() != 2 {
		t.Fatalf("query count %d, want 2 (query 2 purged by the disconnect marker)", batched.QueryCount())
	}
	if len(bSide.broadcasts) != len(sSide.broadcasts) || len(bSide.downlinks) != len(sSide.downlinks) {
		t.Fatalf("sends differ: %d/%d broadcasts, %d/%d downlinks",
			len(bSide.broadcasts), len(sSide.broadcasts), len(bSide.downlinks), len(sSide.downlinks))
	}
	for i := range bSide.broadcasts {
		if bSide.broadcasts[i] != sSide.broadcasts[i] {
			t.Fatalf("broadcast %d differs: %+v vs %+v", i, bSide.broadcasts[i], sSide.broadcasts[i])
		}
	}
}

// An empty batch and a nil before hook are both legal.
func TestHandleUplinkBatchEdgeCases(t *testing.T) {
	srv, _, _ := unitServer(t, baseCfg())
	srv.HandleUplinkBatch(nil, nil)
	srv.HandleUplinkBatch([]Ingest{
		{Seq: 1, From: 901, Msg: protocol.QueryRegister{Query: 1, Pos: geo.Pt(100, 100), K: 2, At: 1}},
	}, nil)
	if srv.QueryCount() != 1 {
		t.Fatalf("query count %d, want 1", srv.QueryCount())
	}
	// A disconnect marker for an unknown client is a no-op.
	srv.HandleUplinkBatch([]Ingest{{Seq: 2, From: 777}}, nil)
	if srv.QueryCount() != 1 {
		t.Fatalf("query count %d after unknown disconnect, want 1", srv.QueryCount())
	}
}
