package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/sim"
	"dmknn/internal/simnet"
	"dmknn/internal/workload"
)

// chaosCase is one cell of the fault matrix the soak test sweeps.
type chaosCase struct {
	name   string
	faults simnet.FaultConfig
	churn  bool // client crash/restart churn during the fault phase
}

func chaosMatrix() []chaosCase {
	burst := simnet.BurstLoss(0.30, 4)
	return []chaosCase{
		{name: "burst-loss", faults: simnet.FaultConfig{
			UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst}},
		{name: "jitter", faults: simnet.FaultConfig{JitterTicks: 3}},
		{name: "duplication", faults: simnet.FaultConfig{DuplicateProb: 0.25}},
		{name: "churn", churn: true},
		{name: "everything", faults: simnet.FaultConfig{
			UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst,
			JitterTicks: 3, DuplicateProb: 0.25}, churn: true},
	}
}

// chaosProto is the protocol configuration under chaos: delta answers (so
// answer-stream desync is actually possible) and a resync period that
// bounds how long any divergence can survive.
func chaosProto() Config {
	cfg := quickProto()
	cfg.DeltaAnswers = true
	cfg.ResyncTicks = 12
	return cfg
}

// assertClientAnswersExact checks every query's client-visible answer
// against brute-force ground truth from the live environment, honoring
// ties at the k-th distance.
func assertClientAnswersExact(t *testing.T, env *sim.Env, m *Method, tag string) {
	t.Helper()
	ds := make([]float64, len(env.Objects))
	for _, q := range env.Queries {
		got := m.Answer(q.Spec.ID)
		k := q.Spec.K
		if len(got.Neighbors) != k {
			t.Fatalf("%s: query %d has %d members, want %d",
				tag, q.Spec.ID, len(got.Neighbors), k)
		}
		for i := range env.Objects {
			ds[i] = env.Objects[i].Pos.Dist(q.State.Pos)
		}
		sort.Float64s(ds)
		dk := ds[k-1]
		tol := 1e-6 + dk*1e-9
		seen := make(map[model.ObjectID]bool, k)
		for _, nb := range got.Neighbors {
			if seen[nb.ID] {
				t.Fatalf("%s: query %d reports object %d twice", tag, q.Spec.ID, nb.ID)
			}
			seen[nb.ID] = true
			if int(nb.ID) < 1 || int(nb.ID) > len(env.Objects) {
				t.Fatalf("%s: query %d reports nonexistent object %d", tag, q.Spec.ID, nb.ID)
			}
			if d := env.ObjectByID(nb.ID).Pos.Dist(q.State.Pos); d > dk+tol {
				t.Fatalf("%s: query %d reports object %d at %.3f > k-th distance %.3f",
					tag, q.Spec.ID, nb.ID, d, dk)
			}
		}
	}
}

// runChaos drives one (faults, seed) cell under the given protocol
// configuration: establish cleanly, soak under the fault matrix (plus
// churn when enabled), clear the faults, and require exact
// client-visible answers within the heal window — and stably so
// afterwards.
func runChaos(t *testing.T, c chaosCase, seed int64, pc Config) {
	t.Helper()
	cfg := workload.Quick()
	cfg.Seed = seed
	cfg.NumObjects = 300
	cfg.NumQueries = 4
	cfg.LatencyTicks = 0 // exactness is only defined under same-tick delivery
	cfg.DisableAudit = true

	// Flight recorder: a failed soak dumps the protocol event history
	// that led to the divergence instead of a bare assertion message.
	rec := obs.NewRecorder(0)
	cfg.Trace = rec
	obs.DumpOnFailure(t, rec)

	m := mustDKNN(t, pc)
	eng, err := sim.NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	step := func(n int) {
		for i := 0; i < n; i++ {
			if err := eng.Step(); err != nil {
				t.Fatalf("%s/seed%d: %v", c.name, seed, err)
			}
		}
	}

	// Clean establishment.
	step(10)
	assertClientAnswersExact(t, env, m, "pre-fault")

	// Fault phase.
	env.Net.SetFaults(c.faults)
	var downObj, downQry model.ObjectID
	const faultTicks = 40
	for i := 0; i < faultTicks; i++ {
		if c.churn {
			switch i % 10 {
			case 0: // crash one data object for a few ticks
				downObj = model.ObjectID(1 + (i*7)%cfg.NumObjects)
				env.Net.SetClientDown(downObj, true)
			case 3:
				env.Net.SetClientDown(downObj, false)
				downObj = 0
			case 4: // crash a focal client briefly
				downQry = model.ObjectID(cfg.NumObjects + 1 + (i/10)%cfg.NumQueries)
				env.Net.SetClientDown(downQry, true)
			case 7:
				env.Net.SetClientDown(downQry, false)
				downQry = 0
			case 8: // cold restarts: agents come back with no local state
				if err := m.RestartObject(model.ObjectID(1 + (i*13)%cfg.NumObjects)); err != nil {
					t.Fatal(err)
				}
				if err := m.RestartQuery(model.QueryID(1 + (i/10)%cfg.NumQueries)); err != nil {
					t.Fatal(err)
				}
			}
		}
		step(1)
	}

	// Clear every fault and let the protocol heal: jittered stragglers
	// drain, then a periodic resync probe rebuilds any desynced state.
	env.Net.SetFaults(simnet.FaultConfig{})
	if downObj != 0 {
		env.Net.SetClientDown(downObj, false)
	}
	if downQry != 0 {
		env.Net.SetClientDown(downQry, false)
	}
	// Worst case: the periodic timer fired just before the faults cleared
	// (its rebaseline lost), so the next resync probe starts a full
	// ResyncTicks later and needs a few rounds to expand and conclude.
	heal := 2*pc.ResyncTicks + c.faults.JitterTicks + 2*cfg.LatencyTicks + 3
	step(heal)

	// Exact again — and stably exact, not transiently.
	for i := 0; i < 5; i++ {
		step(1)
		assertClientAnswersExact(t, env, m, fmt.Sprintf("post-heal+%d", i))
	}
}

// The chaos soak: every fault-matrix combination at several seeds. The
// protocol must survive the chaos phase (no panic, no livelock) and
// re-converge to exact kNN answers once the faults clear.
func TestChaosSoakMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, c := range chaosMatrix() {
		for _, seed := range seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed%d", c.name, seed), func(t *testing.T) {
				runChaos(t, c, seed, chaosProto())
			})
		}
	}
}

// influenceChaosMatrix is the fault sweep for influence mode: plain
// independent loss, Gilbert–Elliott burst loss, jitter, and duplication
// — the four channels that can tear the frontier advertisements and the
// suppressed reports apart.
func influenceChaosMatrix() []chaosCase {
	burst := simnet.BurstLoss(0.30, 4)
	plain := simnet.BurstLoss(0.15, 1)
	return []chaosCase{
		{name: "plain-loss", faults: simnet.FaultConfig{
			UplinkGE: plain, DownlinkGE: plain, BroadcastGE: plain}},
		{name: "burst-loss", faults: simnet.FaultConfig{
			UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst}},
		{name: "jitter", faults: simnet.FaultConfig{JitterTicks: 3}},
		{name: "duplication", faults: simnet.FaultConfig{DuplicateProb: 0.25}},
		{name: "everything", faults: simnet.FaultConfig{
			UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst,
			JitterTicks: 3, DuplicateProb: 0.25}},
	}
}

// The influence-mode chaos soak: with frontier-threshold suppression
// active, every fault cell at 8 seeds must still re-converge to exact
// client-visible kNN answers once the faults clear. Lost frontier
// advertisements degrade an object to the θ rule (frontier zero until
// the next install it hears), lost suppressed-side reports are healed
// by the resync probes and the horizon re-affirmation — the sweep
// proves neither path strands a stale member in an answer.
func TestInfluenceChaosSoakMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	pc := chaosProto()
	pc.Influence = true
	for _, c := range influenceChaosMatrix() {
		for _, seed := range seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("%s/seed%d", c.name, seed), func(t *testing.T) {
				runChaos(t, c, seed, pc)
			})
		}
	}
}

// The advertised-bound staleness property: on a clean channel in
// influence mode, a suppressed object's true position never drifts from
// the server's stored copy by more than the slack its frontier
// threshold advertises — drift ≤ |d(lastReport, q̂) − F| — and the
// server's stored position for every inside member is exactly the
// agent's last report. Checked white-box against every agent monitor on
// every tick, alongside client-visible exactness, so the suppression
// rule (including the refresh-time correction wave that re-checks the
// bound against a new frontier) can never trade answer correctness for
// saved uplinks without failing here.
func TestInfluenceSuppressionStalenessBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.Quick()
			cfg.Seed = seed
			cfg.NumObjects = 300
			cfg.NumQueries = 4
			cfg.LatencyTicks = 0
			cfg.DisableAudit = true
			rec := obs.NewRecorder(0)
			cfg.Trace = rec
			obs.DumpOnFailure(t, rec)

			pc := quickProto()
			pc.Influence = true
			m := mustDKNN(t, pc)
			eng, err := sim.NewEngine(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			env := eng.Env()
			for i := 0; i < 10; i++ {
				if err := eng.Step(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 40; i++ {
				if err := eng.Step(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				assertClientAnswersExact(t, env, m, fmt.Sprintf("tick+%d", i))
				now := env.Net.Now()
				for _, a := range m.agents {
					truePos := env.ObjectByID(a.deps.ID).Pos
					for q, am := range a.monitors {
						if !am.inside || am.rangeMode || am.frontier <= 0 {
							continue
						}
						qhat := geo.DeadReckon(am.qpos, am.qvel, float64(now-am.at)*env.DT)
						drift := truePos.Dist(am.lastReport)
						bound := math.Abs(am.lastReport.Dist(qhat) - am.frontier)
						if drift > bound+1e-6 {
							t.Fatalf("tick %d: object %d query %d: drift %.6f exceeds advertised bound %.6f (F=%.3f)",
								now, a.deps.ID, q, drift, bound, am.frontier)
						}
						smon := m.server.monitors[q]
						if smon == nil || !smon.inside[a.deps.ID] {
							continue
						}
						stored, ok := smon.cands.Position(a.deps.ID)
						if !ok || stored != am.lastReport {
							t.Fatalf("tick %d: object %d query %d: server stored %v, agent last reported %v",
								now, a.deps.ID, q, stored, am.lastReport)
						}
					}
				}
			}
			if rec.Count(obs.EvReportSuppressed) == 0 {
				t.Error("no report was ever suppressed — the influence mechanism never engaged")
			}
		})
	}
}

// Influence mode must actually save uplink traffic on a clean channel
// while staying exact: same workload, same seed, strictly fewer uplink
// sends than the fixed-horizon baseline.
func TestInfluenceUplinkReduction(t *testing.T) {
	run := func(pc Config) uint64 {
		cfg := workload.Quick()
		cfg.Seed = 5
		cfg.NumObjects = 300
		cfg.NumQueries = 4
		cfg.LatencyTicks = 0
		cfg.DisableAudit = true
		m := mustDKNN(t, pc)
		eng, err := sim.NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		assertClientAnswersExact(t, eng.Env(), m, "final")
		return eng.Env().Net.Counters().Sent(metrics.Uplink)
	}
	base := run(quickProto())
	inf := quickProto()
	inf.Influence = true
	saved := run(inf)
	if saved >= base {
		t.Fatalf("influence mode sent %d uplinks, baseline %d — no reduction", saved, base)
	}
	t.Logf("uplink sends: baseline %d, influence %d (%.1f%% saved)",
		base, saved, 100*float64(base-saved)/float64(base))
}

// failingTB pretends its test already failed, so DumpOnFailure's cleanup
// path can be driven and its output inspected.
type failingTB struct {
	cleanups []func()
	logs     []string
}

func (f *failingTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *failingTB) Failed() bool      { return true }
func (f *failingTB) Logf(format string, args ...any) {
	f.logs = append(f.logs, fmt.Sprintf(format, args...))
}
func (f *failingTB) finish() {
	for _, fn := range f.cleanups {
		fn()
	}
}

// The flight recorder must demonstrably produce a useful dump when a
// chaos test fails: this drives a lossy run with the recorder armed
// through DumpOnFailure on a TB that reports failure, then inspects the
// dumped trace for the events a divergence post-mortem needs — the drops
// that caused the desync and the resync machinery reacting to it.
func TestChaosFailureDumpsFlightRecorder(t *testing.T) {
	rec := obs.NewRecorder(0)
	ft := &failingTB{}
	obs.DumpOnFailure(ft, rec)

	cfg := workload.Quick()
	cfg.Seed = 7
	cfg.NumObjects = 300
	cfg.NumQueries = 4
	cfg.LatencyTicks = 0
	cfg.DisableAudit = true
	cfg.Trace = rec
	m := mustDKNN(t, chaosProto())
	eng, err := sim.NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	step := func(n int) {
		for i := 0; i < n; i++ {
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	step(10) // clean establishment
	burst := simnet.BurstLoss(0.30, 4)
	env.Net.SetFaults(simnet.FaultConfig{UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst})
	step(60) // loss long enough to desync answer streams and trigger resyncs

	ft.finish() // the "test" ends failed: the cleanup must dump the trace
	if len(ft.logs) == 0 {
		t.Fatal("DumpOnFailure logged nothing on a failed test")
	}
	dump := strings.Join(ft.logs, "\n")
	for _, want := range []string{
		"flight recorder:",
		"net-drop",         // the induced fault is visible
		"resync-requested", // the client noticed the desync
		"answer-delta",     // the delta stream the loss tore
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump lacks %q", want)
		}
	}
	if rec.Count(obs.EvResyncRequested) == 0 {
		t.Error("loss phase triggered no resync — the induced failure path did not run")
	}
}

// The full chaos run is deterministic: identical seeds produce identical
// traffic, drops, and duplication counts.
func TestChaosDeterministic(t *testing.T) {
	run := func() (metrics.Counters, uint64) {
		cfg := workload.Quick()
		cfg.Seed = 9
		cfg.NumObjects = 300
		cfg.NumQueries = 4
		cfg.LatencyTicks = 0
		cfg.DisableAudit = true
		m := mustDKNN(t, chaosProto())
		eng, err := sim.NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		env := eng.Env()
		burst := simnet.BurstLoss(0.2, 4)
		env.Net.SetFaults(simnet.FaultConfig{
			UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst,
			JitterTicks: 2, DuplicateProb: 0.2,
		})
		for i := 0; i < 40; i++ {
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return env.Net.Counters().Snapshot(), env.Net.Duplicated(metrics.Uplink)
	}
	c1, d1 := run()
	c2, d2 := run()
	if d1 != d2 {
		t.Fatalf("duplication count differs: %d vs %d", d1, d2)
	}
	for _, dir := range []metrics.Direction{metrics.Uplink, metrics.Downlink, metrics.Broadcast} {
		if c1.Sent(dir) != c2.Sent(dir) || c1.Delivered(dir) != c2.Delivered(dir) ||
			c1.Dropped(dir) != c2.Dropped(dir) {
			t.Fatalf("%v traffic differs across identical chaos runs", dir)
		}
	}
}
