package core

// This file holds the monitor-state export/import hooks a spatially
// partitioned federation (internal/cluster) uses to migrate a query
// monitor between servers when its focal client crosses a partition
// boundary. The snapshot is the complete per-query state machine —
// track, epoch, candidate and inside sets, answer sequence — so the
// importing server resumes exactly where the exporting one stopped, and
// the focal client only observes a re-baselining AnswerUpdate on the
// existing resync path.

import (
	"slices"

	"dmknn/internal/geo"
	"dmknn/internal/knn"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// CandidateState is one (object, last known position) pair of an
// exported monitor's candidate set.
type CandidateState struct {
	ID  model.ObjectID
	Pos geo.Point
}

// MonitorState is a portable snapshot of one query monitor. All slices
// are sorted by id so the snapshot (and hence its wire encoding) is
// deterministic.
type MonitorState struct {
	Query model.QueryID
	K     int
	Range float64
	Addr  model.ObjectID

	QPos geo.Point
	QVel geo.Vector
	QAt  model.Tick

	Epoch        uint32
	Installed    bool
	AnswerRadius float64
	Radius       float64
	InstalledAt  model.Tick
	PrevRegion   geo.Circle

	AnswerSeq   uint32
	LastProbeAt model.Tick

	// Influence frontier advertised with the current epoch (zero when
	// none). Migrating it keeps suppressed objects suppressed: the new
	// home validates and refreshes against the same F the aware objects
	// hold, instead of force-refreshing every monitor it imports.
	Frontier float64
	Band     float64

	Candidates []CandidateState
	Inside     []model.ObjectID
	Sent       []model.ObjectID
}

// ExportMonitor snapshots and removes q's monitor. Unlike a deregister
// it does NOT broadcast a MonitorCancel: the aware objects keep their
// installs and continue reporting, which is exactly what a migration
// wants. It refuses (returns false) while a probe round is in flight —
// the in-flight replies are addressed to this server and would be lost —
// so callers retry on a later tick; it also returns false for an
// unknown query.
func (s *Server) ExportMonitor(q model.QueryID) (MonitorState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mon, ok := s.monitors[q]
	if !ok || mon.probing {
		return MonitorState{}, false
	}
	return s.exportLocked(q, mon), true
}

// exportLocked snapshots mon and removes it from the server's tables.
// Callers hold s.mu and have already rejected probing monitors.
func (s *Server) exportLocked(q model.QueryID, mon *monitor) MonitorState {
	st := MonitorState{
		Query:        mon.query,
		K:            mon.k,
		Range:        mon.rng,
		Addr:         mon.addr,
		QPos:         mon.qpos,
		QVel:         mon.qvel,
		QAt:          mon.qat,
		Epoch:        mon.epoch,
		Installed:    mon.installed,
		AnswerRadius: mon.answerRadius,
		Radius:       mon.radius,
		InstalledAt:  mon.installedAt,
		PrevRegion:   mon.prevRegion,
		AnswerSeq:    mon.answerSeq,
		LastProbeAt:  mon.lastProbeAt,
		Frontier:     mon.frontier,
		Band:         mon.band,
	}
	if n := mon.cands.Len(); n > 0 {
		st.Candidates = make([]CandidateState, 0, n)
		mon.cands.Visit(func(id model.ObjectID, p geo.Point) bool {
			st.Candidates = append(st.Candidates, CandidateState{ID: id, Pos: p})
			return true
		})
		slices.SortFunc(st.Candidates, func(a, b CandidateState) int {
			return int(a.ID) - int(b.ID)
		})
	}
	st.Inside = sortedIDs(mon.inside)
	st.Sent = sortedIDs(mon.sent)
	delete(s.monitors, q)
	if i, found := slices.BinarySearch(s.order, q); found {
		s.order = slices.Delete(s.order, i, i+1)
	}
	return st
}

// ExportedMonitor pairs a bulk-exported snapshot with the focal track
// estimate the leave predicate saw, so the caller routes the snapshot
// without re-deriving the estimate from the (already removed) monitor.
type ExportedMonitor struct {
	State MonitorState
	Est   geo.Point
}

// ExportMonitorsWhere bulk-exports every monitor whose dead-reckoned
// focal estimate at now satisfies leave, under a single lock acquisition
// — the column-migration path of an adaptive partition, where one map
// change moves many monitors at once. Monitors are visited in query-id
// order, so the export sequence (and hence the wire traffic it produces)
// is deterministic. Probing monitors are skipped exactly like
// ExportMonitor refuses them; the caller's next sweep picks them up.
func (s *Server) ExportMonitorsWhere(now model.Tick, leave func(q model.QueryID, est geo.Point) bool) []ExportedMonitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ExportedMonitor
	// exportLocked mutates s.order; walk a snapshot of it.
	for _, q := range slices.Clone(s.order) {
		mon := s.monitors[q]
		if mon.probing {
			continue
		}
		est := mon.qEst(now, s.deps.DT)
		if !leave(q, est) {
			continue
		}
		out = append(out, ExportedMonitor{State: s.exportLocked(q, mon), Est: est})
	}
	return out
}

// ImportMonitor installs a migrated monitor and immediately re-baselines
// the focal client with a full AnswerUpdate through the resync path: the
// answer sequence continues from the exported value, so the client
// applies the update as an ordinary re-baseline and never observes the
// migration. A snapshot for an already-registered query is dropped.
func (s *Server) ImportMonitor(st MonitorState, now model.Tick) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.monitors[st.Query]; exists {
		return
	}
	// The snapshot crossed an inter-node link, which is an open surface
	// like the radio: apply the register-path sanity bounds.
	if st.Range < 0 || (st.Range == 0 && (st.K <= 0 || st.K > maxK)) ||
		!finitePoint(st.QPos) || !finiteVec(st.QVel) {
		return
	}
	// The codec already rejects non-finite thresholds; zero a locally
	// constructed bad value too, so an unusable frontier degrades to the
	// θ rule instead of poisoning suppression decisions.
	if !finite(st.Frontier) || st.Frontier < 0 || !finite(st.Band) || st.Band < 0 {
		st.Frontier, st.Band = 0, 0
	}
	mon := &monitor{
		query:        st.Query,
		k:            st.K,
		rng:          st.Range,
		addr:         st.Addr,
		qpos:         st.QPos,
		qvel:         st.QVel,
		qat:          st.QAt,
		epoch:        st.Epoch,
		installed:    st.Installed,
		answerRadius: st.AnswerRadius,
		radius:       st.Radius,
		installedAt:  st.InstalledAt,
		prevRegion:   st.PrevRegion,
		answerSeq:    st.AnswerSeq,
		lastProbeAt:  st.LastProbeAt,
		frontier:     st.Frontier,
		band:         st.Band,
		cands:        knn.NewCandidateSet(),
		inside:       make(map[model.ObjectID]bool, len(st.Inside)),
		sent:         make(map[model.ObjectID]bool, len(st.Sent)),
		replies:      knn.NewCandidateSet(),
	}
	for _, c := range st.Candidates {
		mon.cands.Set(c.ID, c.Pos)
	}
	for _, id := range st.Inside {
		mon.inside[id] = true
	}
	for _, id := range st.Sent {
		mon.sent[id] = true
	}
	// A never-installed snapshot (exported between register and first
	// probe) restarts its bootstrap here.
	mon.needsReinstall = !st.Installed
	s.monitors[st.Query] = mon
	i, _ := slices.BinarySearch(s.order, st.Query)
	s.order = slices.Insert(s.order, i, st.Query)
	if mon.installed {
		s.resyncAnswer(mon, now)
	}
}

// HasQuery reports whether q is registered at this server.
func (s *Server) HasQuery(q model.QueryID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.monitors[q]
	return ok
}

// QueryEstimate extrapolates q's advertised track to now. It is how a
// federation detects that a focal client drifted out of this server's
// region and the monitor should migrate.
func (s *Server) QueryEstimate(q model.QueryID, now model.Tick) (geo.Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mon, ok := s.monitors[q]
	if !ok {
		return geo.Point{}, false
	}
	return mon.qEst(now, s.deps.DT), true
}

// QueryAddr returns the focal client address q was registered from.
func (s *Server) QueryAddr(q model.QueryID) (model.ObjectID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mon, ok := s.monitors[q]
	if !ok {
		return 0, false
	}
	return mon.addr, true
}

// QueriesInvolving returns the sorted ids of the queries whose monitor
// state (candidates, inside set, or last sent answer) currently includes
// the object. A federation transfers this set on object handoff so the
// new owner can purge the right monitors when the client disconnects.
func (s *Server) QueriesInvolving(id model.ObjectID) []model.QueryID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []model.QueryID
	for _, q := range s.order {
		mon := s.monitors[q]
		if mon.cands.Has(id) || mon.inside[id] || mon.sent[id] {
			out = append(out, q)
		}
	}
	return out
}

// ExportState converts the snapshot to its wire form.
func (st MonitorState) ExportState() protocol.QueryHandoff {
	qh := protocol.QueryHandoff{
		Query:        st.Query,
		K:            uint32(st.K),
		Range:        st.Range,
		Addr:         st.Addr,
		QPos:         st.QPos,
		QVel:         st.QVel,
		QAt:          st.QAt,
		Epoch:        st.Epoch,
		Installed:    st.Installed,
		AnswerRadius: st.AnswerRadius,
		Radius:       st.Radius,
		InstalledAt:  st.InstalledAt,
		PrevRegion:   st.PrevRegion,
		AnswerSeq:    st.AnswerSeq,
		LastProbeAt:  st.LastProbeAt,
		Frontier:     st.Frontier,
		Band:         st.Band,
		Inside:       st.Inside,
		Sent:         st.Sent,
	}
	if len(st.Candidates) > 0 {
		qh.Candidates = make([]protocol.CandidateRecord, len(st.Candidates))
		for i, c := range st.Candidates {
			qh.Candidates[i] = protocol.CandidateRecord{ID: c.ID, Pos: c.Pos}
		}
	}
	return qh
}

// ImportState converts a wire handoff back to a snapshot.
func ImportState(qh protocol.QueryHandoff) MonitorState {
	st := MonitorState{
		Query:        qh.Query,
		K:            int(qh.K),
		Range:        qh.Range,
		Addr:         qh.Addr,
		QPos:         qh.QPos,
		QVel:         qh.QVel,
		QAt:          qh.QAt,
		Epoch:        qh.Epoch,
		Installed:    qh.Installed,
		AnswerRadius: qh.AnswerRadius,
		Radius:       qh.Radius,
		InstalledAt:  qh.InstalledAt,
		PrevRegion:   qh.PrevRegion,
		AnswerSeq:    qh.AnswerSeq,
		LastProbeAt:  qh.LastProbeAt,
		Frontier:     qh.Frontier,
		Band:         qh.Band,
		Inside:       qh.Inside,
		Sent:         qh.Sent,
	}
	if len(qh.Candidates) > 0 {
		st.Candidates = make([]CandidateState, len(qh.Candidates))
		for i, c := range qh.Candidates {
			st.Candidates[i] = CandidateState{ID: c.ID, Pos: c.Pos}
		}
	}
	return st
}

// sortedIDs flattens a membership set into a sorted id slice.
func sortedIDs(set map[model.ObjectID]bool) []model.ObjectID {
	if len(set) == 0 {
		return nil
	}
	out := make([]model.ObjectID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
