package core

import (
	"math"
	"sort"
	"sync"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// trackEpsilon absorbs float-summation noise when a client compares its
// true position against a dead-reckoned track: iterated per-tick motion
// and one-shot extrapolation differ by ~1e-12 m, which must not count as
// a deviation (it would re-trigger the track-correction path every tick).
// One micrometer is far below any physically meaningful threshold.
const trackEpsilon = 1e-6

// AgentDeps are the environment bindings of a client-side state machine:
// how it reads its own position (a local sensor — free), how it transmits
// (metered), and what time it is.
type AgentDeps struct {
	ID   model.ObjectID
	Side transport.ClientSide
	Now  func() model.Tick
	// Pos reads the client's own current position.
	Pos func() geo.Point
	// DT is the duration of one tick in seconds.
	DT float64
	// LatencyTicks is the known one-way delivery delay bound; the query
	// agent paces answer-resync retries by the round trip it implies.
	LatencyTicks int
	// Trace, when non-nil, receives an event per client-side protocol
	// action (report sent or suppressed, boundary crossed, resync
	// requested). nil disables tracing.
	Trace obs.Sink
}

// emitAgent marks the node/direction fields unset and records e; call
// sites guard with deps.Trace != nil.
func emitAgent(tr obs.Sink, e obs.Event) {
	e.Node, e.Dir = -1, -1
	tr.Record(e)
}

// ObjectAgent is the logic running on one moving data object: it answers
// probes, keeps the monitors installed on it, and transmits only on the
// events the protocol defines.
//
// ObjectAgent is safe for concurrent use (the TCP client invokes
// HandleServerMessage from its receive loop while a ticker drives Tick).
type ObjectAgent struct {
	cfg  Config
	deps AgentDeps

	mu       sync.Mutex
	monitors map[model.QueryID]*agentMonitor
	order    []model.QueryID // sorted, for deterministic send order
}

// NewObjectAgent returns an object-side agent.
func NewObjectAgent(cfg Config, deps AgentDeps) (*ObjectAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ObjectAgent{
		cfg:      cfg,
		deps:     deps,
		monitors: make(map[model.QueryID]*agentMonitor),
	}, nil
}

// agentMonitor is the object's local copy of one installed query monitor.
type agentMonitor struct {
	epoch        uint32
	qpos         geo.Point
	qvel         geo.Vector
	at           model.Tick
	answerRadius float64
	radius       float64
	rangeMode    bool
	inside       bool
	// Influence frontier advertised with the install (zero: none — use
	// the θ drift rule). The object's movement threshold is derived per
	// tick as its slack to the frontier, |d(lastReport) − frontier|, so
	// it needs no storage and re-anchors automatically on every report.
	frontier float64
	band     float64

	lastReport geo.Point
	// lastSentAt is when this monitor last transmitted anything; inside
	// objects re-affirm membership once per horizon if silent, which
	// heals a membership report lost (or outrun by epochs) in flight.
	lastSentAt model.Tick
}

// MonitorCount reports how many query monitors this agent currently
// holds.
func (a *ObjectAgent) MonitorCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.monitors)
}

// HandleServerMessage implements transport.ClientHandler.
func (a *ObjectAgent) HandleServerMessage(msg protocol.Message) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch v := msg.(type) {
	case protocol.ProbeRequest:
		if p := a.deps.Pos(); v.Region.Contains(p) {
			now := a.deps.Now()
			a.deps.Side.Uplink(protocol.ProbeReply{
				Query: v.Query, Seq: v.Seq, Object: a.deps.ID, Pos: p,
				At: now,
			})
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvReportSent,
					Query: v.Query, Object: a.deps.ID, Kind: protocol.KindProbeReply, Seq: v.Seq})
			}
		}
	case protocol.MonitorInstall:
		a.handleInstall(v, 0, 0)
	case protocol.InfluenceInstall:
		a.handleInstall(v.Install, v.Frontier, v.Band)
	case protocol.MonitorCancel:
		if mon, ok := a.monitors[v.Query]; ok && v.Epoch >= mon.epoch {
			a.drop(v.Query)
		}
	}
}

func (a *ObjectAgent) handleInstall(v protocol.MonitorInstall, frontier, band float64) {
	prev, had := a.monitors[v.Query]
	if had && v.Epoch < prev.epoch {
		return // stale rebroadcast
	}
	p := a.deps.Pos()
	d := p.Dist(v.QueryPos)
	now := a.deps.Now()
	if d > v.Radius {
		// The install reached us (cell-granular broadcast covers more
		// than the region) but we are outside the monitoring region. On
		// a refresh install the server kept its inside set, so if it
		// believed we were an answer member we must correct it before
		// forgetting the query.
		if v.Refresh && had && prev.inside {
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvBoundaryCrossed,
					Query: v.Query, Object: a.deps.ID, Kind: protocol.KindExitReport, Value: d})
			}
		}
		a.drop(v.Query)
		return
	}
	side := d <= v.AnswerRadius
	reported := false
	if v.Refresh {
		// Report only the *change* of side relative to our previous
		// state; the server's inside set was carried over, so this keeps
		// it exact by induction. An inside member that has been silent
		// for a full horizon re-affirms its membership — idempotent at
		// the server, and it heals an enter-report that was lost or
		// outrun by reinstall epochs in flight.
		affirm := side && had && prev.inside &&
			now-prev.lastSentAt >= model.Tick(a.cfg.HorizonTicks)
		switch {
		case side && (!(had && prev.inside) || affirm):
			a.deps.Side.Uplink(protocol.EnterReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			reported = true
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvBoundaryCrossed,
					Query: v.Query, Object: a.deps.ID, Kind: protocol.KindEnterReport, Value: d})
			}
		case !side && had && prev.inside:
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			reported = true
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvBoundaryCrossed,
					Query: v.Query, Object: a.deps.ID, Kind: protocol.KindExitReport, Value: d})
			}
		}
		// Influence correction: a refresh advertising a frontier re-tests
		// the server's (possibly drift-stale) copy of our position against
		// it. If our true side of F disagrees with what the server's copy
		// implies, or our accumulated drift exceeds the slack to F, the
		// server's ranking around the new frontier cannot be trusted —
		// correct it with a fresh MoveReport. Freshly-reported objects
		// (drift 0, consistent side) stay silent, so each correction wave
		// strictly shrinks the stale set and the tick converges.
		if frontier > 0 && !v.RangeMode && side && had && prev.inside && !reported {
			dSrv := prev.lastReport.Dist(v.QueryPos)
			drift := p.Dist(prev.lastReport)
			if (d <= frontier) != (dSrv <= frontier) || drift > math.Abs(dSrv-frontier) {
				a.deps.Side.Uplink(protocol.MoveReport{MemberReport: protocol.MemberReport{
					Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
				}})
				reported = true
				if a.deps.Trace != nil {
					emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvReportSent,
						Query: v.Query, Object: a.deps.ID, Kind: protocol.KindMoveReport, Value: drift})
				}
			}
		}
	}
	// lastReport must track what the *server* knows about us. After a
	// full probe the server rebuilt its state from our reply at the
	// current position, and any report above carried the current
	// position too; but a silent refresh carried nothing, so the
	// server's copy is still our previous report — keep baselining
	// against it or a drift accumulated before this install would never
	// be transmitted.
	last := p
	sentAt := now
	if v.Refresh && had && !reported {
		last = prev.lastReport
		sentAt = prev.lastSentAt
	}
	if !had {
		a.order = append(a.order, v.Query)
		sort.Slice(a.order, func(i, j int) bool { return a.order[i] < a.order[j] })
	}
	a.monitors[v.Query] = &agentMonitor{
		epoch:        v.Epoch,
		qpos:         v.QueryPos,
		qvel:         v.QueryVel,
		at:           v.At,
		answerRadius: v.AnswerRadius,
		radius:       v.Radius,
		rangeMode:    v.RangeMode,
		inside:       side,
		frontier:     frontier,
		band:         band,
		lastReport:   last,
		lastSentAt:   sentAt,
	}
}

func (a *ObjectAgent) drop(q model.QueryID) {
	if _, ok := a.monitors[q]; !ok {
		return
	}
	delete(a.monitors, q)
	for i, id := range a.order {
		if id == q {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// Tick evaluates every installed monitor against the object's current
// position and transmits crossing/leave/move events.
func (a *ObjectAgent) Tick(now model.Tick) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.monitors) == 0 {
		return
	}
	p := a.deps.Pos()
	dt := a.deps.DT
	theta := a.cfg.ThetaInside
	var dropped []model.QueryID
	for _, q := range a.order {
		mon := a.monitors[q]
		qhat := geo.DeadReckon(mon.qpos, mon.qvel, float64(now-mon.at)*dt)
		d := p.Dist(qhat)
		if d > mon.radius {
			// Only answer-circle members must announce leaving — the
			// server tracks membership through them. Annulus objects
			// drop silently; their stale candidate entries are pruned at
			// the next refresh.
			if mon.inside {
				a.deps.Side.Uplink(protocol.LeaveReport{MemberReport: protocol.MemberReport{
					Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
				}})
				if a.deps.Trace != nil {
					emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvReportSent,
						Query: q, Object: a.deps.ID, Kind: protocol.KindLeaveReport, Value: d})
				}
			}
			dropped = append(dropped, q)
			continue
		}
		side := d <= mon.answerRadius
		switch {
		case side && !mon.inside:
			a.deps.Side.Uplink(protocol.EnterReport{MemberReport: protocol.MemberReport{
				Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			mon.inside = true
			mon.lastReport = p
			mon.lastSentAt = now
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvBoundaryCrossed,
					Query: q, Object: a.deps.ID, Kind: protocol.KindEnterReport, Value: d})
			}
		case !side && mon.inside:
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			mon.inside = false
			mon.lastReport = p
			mon.lastSentAt = now
			if a.deps.Trace != nil {
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvBoundaryCrossed,
					Query: q, Object: a.deps.ID, Kind: protocol.KindExitReport, Value: d})
			}
		case side && !mon.rangeMode:
			drift := p.Dist(mon.lastReport)
			move := false
			if mon.frontier > 0 {
				// Influence rule: the server only needs to know our side of
				// the frontier F. While the drift stays under our slack to F
				// (|d(lastReport, q̂) − F|) the triangle inequality proves we
				// cannot have crossed it, so the report is suppressed; the
				// side test catches the boundary exactly.
				dSrv := mon.lastReport.Dist(qhat)
				move = (d <= mon.frontier) != (dSrv <= mon.frontier) ||
					drift > math.Abs(dSrv-mon.frontier)
			} else {
				move = drift > theta
			}
			if move {
				a.deps.Side.Uplink(protocol.MoveReport{MemberReport: protocol.MemberReport{
					Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
				}})
				mon.lastReport = p
				mon.lastSentAt = now
				if a.deps.Trace != nil {
					emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvReportSent,
						Query: q, Object: a.deps.ID, Kind: protocol.KindMoveReport, Value: drift})
				}
			} else if a.deps.Trace != nil {
				// The threshold just saved an uplink: the server's copy is
				// still close enough (θ rule) or provably on the same side
				// of the frontier (influence rule).
				emitAgent(a.deps.Trace, obs.Event{At: now, Type: obs.EvReportSuppressed,
					Query: q, Object: a.deps.ID, Kind: protocol.KindMoveReport, Value: drift})
			}
		}
	}
	for _, q := range dropped {
		a.drop(q)
	}
}

// QueryAgentDeps extends the client bindings with the focal device's
// velocity sensor.
type QueryAgentDeps struct {
	AgentDeps
	// Vel reads the client's own current velocity.
	Vel func() geo.Vector
}

// QueryAgent is the logic on the query's focal device: it registers the
// query, corrects the server's dead-reckoned track when it deviates, and
// receives answer updates.
//
// QueryAgent is safe for concurrent use.
type QueryAgent struct {
	cfg  Config
	spec model.QuerySpec
	deps QueryAgentDeps

	mu         sync.Mutex
	registered bool
	lastPos    geo.Point
	lastVel    geo.Vector
	lastAt     model.Tick
	answer     model.Answer
	// Answer-stream sequencing state: the last applied sequence number,
	// whether any answer has been applied at all, and the pending
	// answer-resync request (if one is in flight, when it was sent).
	answerSeq     uint32
	haveAnswer    bool
	resyncPending bool
	resyncSentAt  model.Tick
	// trackStale is set when a full AnswerUpdate echoes a server-side
	// query-position estimate that deviates from the advertised track:
	// proof that a QueryMove uplink was lost. The next Tick re-advertises
	// the track unconditionally.
	trackStale bool
	// OnAnswer, when set, is called (under the agent lock) with each
	// received answer update.
	OnAnswer func(model.Answer)
}

// NewQueryAgent returns a focal-client agent for the given query spec.
func NewQueryAgent(cfg Config, spec model.QuerySpec, deps QueryAgentDeps) (*QueryAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &QueryAgent{cfg: cfg, spec: spec, deps: deps}, nil
}

// Tick registers the query on first call, then corrects the advertised
// track whenever the true position deviates beyond the threshold.
func (qc *QueryAgent) Tick(now model.Tick) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	pos, vel := qc.deps.Pos(), qc.deps.Vel()
	if !qc.registered {
		qc.deps.Side.Uplink(protocol.QueryRegister{
			Query: qc.spec.ID,
			K:     uint32(qc.spec.K),
			Range: qc.spec.Range,
			Pos:   pos,
			Vel:   vel,
			At:    now,
		})
		qc.registered = true
		qc.lastPos, qc.lastVel, qc.lastAt = pos, vel, now
		return
	}
	expect := geo.DeadReckon(qc.lastPos, qc.lastVel, float64(now-qc.lastAt)*qc.deps.DT)
	if pos.Dist(expect) > qc.cfg.QueryDeviation+trackEpsilon || qc.trackStale {
		qc.deps.Side.Uplink(protocol.QueryMove{
			Query: qc.spec.ID,
			Pos:   pos,
			Vel:   vel,
			At:    now,
		})
		qc.lastPos, qc.lastVel, qc.lastAt = pos, vel, now
		qc.trackStale = false
	}
	// A resync request travels the same lossy medium as the messages it
	// repairs; retry once per round trip until a full update lands.
	if qc.resyncPending && now-qc.resyncSentAt >= qc.resyncRetryGap() {
		qc.sendResync(now)
	}
}

// resyncRetryGap is how long a resync request may stay unanswered before
// it is retried: one full round trip, and at least one tick.
func (qc *QueryAgent) resyncRetryGap() model.Tick {
	gap := model.Tick(2*qc.deps.LatencyTicks + 1)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// sendResync uplinks an answer-resync request. Caller holds the lock.
func (qc *QueryAgent) sendResync(now model.Tick) {
	qc.deps.Side.Uplink(protocol.AnswerResync{
		Query:   qc.spec.ID,
		LastSeq: qc.answerSeq,
		At:      now,
	})
	qc.resyncPending = true
	qc.resyncSentAt = now
	if qc.deps.Trace != nil {
		emitAgent(qc.deps.Trace, obs.Event{At: now, Type: obs.EvResyncRequested,
			Query: qc.spec.ID, Seq: qc.answerSeq})
	}
}

// Deregister removes the continuous query from the server and discards
// the local answer state, so a later re-registration of the same spec
// cannot report the previous registration's neighbors.
func (qc *QueryAgent) Deregister() {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	qc.deps.Side.Uplink(protocol.QueryDeregister{Query: qc.spec.ID})
	qc.registered = false
	qc.answer = model.Answer{}
	qc.answerSeq = 0
	qc.haveAnswer = false
	qc.resyncPending = false
}

// seqNewer reports whether a is newer than b in wrapping 32-bit sequence
// space (serial-number arithmetic).
func seqNewer(a, b uint32) bool { return a != b && a-b < 1<<31 }

// checkTrackEcho compares the server's echoed query-position estimate
// against the advertised track. A deviation beyond the tracking
// threshold proves the server missed a QueryMove: the client updated its
// baseline on send, so a lost uplink would otherwise leave the two sides
// silently diverged until the next natural velocity change. Answers
// generated before the latest advertisement could have reached the
// server are skipped — those were legitimately computed against the
// previous track. Caller holds the lock.
func (qc *QueryAgent) checkTrackEcho(v protocol.AnswerUpdate) {
	if !qc.registered || v.At < qc.lastAt+model.Tick(qc.deps.LatencyTicks) {
		return
	}
	expect := geo.DeadReckon(qc.lastPos, qc.lastVel, float64(v.At-qc.lastAt)*qc.deps.DT)
	if v.QPos.Dist(expect) > qc.cfg.QueryDeviation+trackEpsilon {
		qc.trackStale = true
	}
}

// HandleServerMessage implements transport.ClientHandler.
func (qc *QueryAgent) HandleServerMessage(msg protocol.Message) {
	switch v := msg.(type) {
	case protocol.AnswerUpdate:
		if v.Query != qc.spec.ID {
			return
		}
		qc.mu.Lock()
		defer qc.mu.Unlock()
		qc.checkTrackEcho(v)
		// A full update is self-contained: accept any sequence newer than
		// the last applied one, ignore stale or duplicated copies.
		if qc.haveAnswer && !seqNewer(v.Seq, qc.answerSeq) {
			return
		}
		// Copy: the decoded slice may be shared with transport buffers or
		// later mutated by the caller; agent state must own its storage.
		ns := make([]model.Neighbor, len(v.Neighbors))
		copy(ns, v.Neighbors)
		qc.answer = model.Answer{Query: v.Query, At: v.At, Neighbors: ns}
		qc.answerSeq = v.Seq
		qc.haveAnswer = true
		qc.resyncPending = false
		if qc.OnAnswer != nil {
			qc.OnAnswer(qc.answer)
		}
	case protocol.AnswerDelta:
		if v.Query != qc.spec.ID {
			return
		}
		qc.mu.Lock()
		defer qc.mu.Unlock()
		// A delta applies only to the state it was computed against: its
		// sequence must be exactly one past the last applied one. Anything
		// older is a duplicate (ignored); anything else is a gap — a lost
		// or reordered answer message — and the local answer can no longer
		// be trusted, so ask the server for a full re-baseline instead of
		// silently diverging until the next ResyncTicks probe.
		if qc.haveAnswer && !seqNewer(v.Seq, qc.answerSeq) {
			return
		}
		if !qc.haveAnswer || v.Seq != qc.answerSeq+1 {
			if !qc.resyncPending {
				qc.sendResync(qc.deps.Now())
			}
			return
		}
		drop := make(map[model.ObjectID]bool, len(v.Removed)+len(v.Added))
		for _, id := range v.Removed {
			drop[id] = true
		}
		// An added id that is somehow already present is replaced.
		for _, n := range v.Added {
			drop[n.ID] = true
		}
		ns := make([]model.Neighbor, 0, len(qc.answer.Neighbors)+len(v.Added))
		for _, n := range qc.answer.Neighbors {
			if !drop[n.ID] {
				ns = append(ns, n)
			}
		}
		ns = append(ns, v.Added...)
		model.SortNeighbors(ns)
		qc.answer = model.Answer{Query: v.Query, At: v.At, Neighbors: ns}
		qc.answerSeq = v.Seq
		if qc.OnAnswer != nil {
			qc.OnAnswer(qc.answer)
		}
	}
}

// Answer returns the latest answer received from the server. The
// neighbor slice is a copy; mutating it cannot corrupt agent state.
func (qc *QueryAgent) Answer() model.Answer {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	out := qc.answer
	if len(out.Neighbors) > 0 {
		ns := make([]model.Neighbor, len(out.Neighbors))
		copy(ns, out.Neighbors)
		out.Neighbors = ns
	}
	return out
}
