package core

import (
	"sort"
	"sync"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// trackEpsilon absorbs float-summation noise when a client compares its
// true position against a dead-reckoned track: iterated per-tick motion
// and one-shot extrapolation differ by ~1e-12 m, which must not count as
// a deviation (it would re-trigger the track-correction path every tick).
// One micrometer is far below any physically meaningful threshold.
const trackEpsilon = 1e-6

// AgentDeps are the environment bindings of a client-side state machine:
// how it reads its own position (a local sensor — free), how it transmits
// (metered), and what time it is.
type AgentDeps struct {
	ID   model.ObjectID
	Side transport.ClientSide
	Now  func() model.Tick
	// Pos reads the client's own current position.
	Pos func() geo.Point
	// DT is the duration of one tick in seconds.
	DT float64
}

// ObjectAgent is the logic running on one moving data object: it answers
// probes, keeps the monitors installed on it, and transmits only on the
// events the protocol defines.
//
// ObjectAgent is safe for concurrent use (the TCP client invokes
// HandleServerMessage from its receive loop while a ticker drives Tick).
type ObjectAgent struct {
	cfg  Config
	deps AgentDeps

	mu       sync.Mutex
	monitors map[model.QueryID]*agentMonitor
	order    []model.QueryID // sorted, for deterministic send order
}

// NewObjectAgent returns an object-side agent.
func NewObjectAgent(cfg Config, deps AgentDeps) (*ObjectAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ObjectAgent{
		cfg:      cfg,
		deps:     deps,
		monitors: make(map[model.QueryID]*agentMonitor),
	}, nil
}

// agentMonitor is the object's local copy of one installed query monitor.
type agentMonitor struct {
	epoch        uint32
	qpos         geo.Point
	qvel         geo.Vector
	at           model.Tick
	answerRadius float64
	radius       float64
	rangeMode    bool
	inside       bool
	lastReport   geo.Point
	// lastSentAt is when this monitor last transmitted anything; inside
	// objects re-affirm membership once per horizon if silent, which
	// heals a membership report lost (or outrun by epochs) in flight.
	lastSentAt model.Tick
}

// MonitorCount reports how many query monitors this agent currently
// holds.
func (a *ObjectAgent) MonitorCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.monitors)
}

// HandleServerMessage implements transport.ClientHandler.
func (a *ObjectAgent) HandleServerMessage(msg protocol.Message) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch v := msg.(type) {
	case protocol.ProbeRequest:
		if p := a.deps.Pos(); v.Region.Contains(p) {
			a.deps.Side.Uplink(protocol.ProbeReply{
				Query: v.Query, Seq: v.Seq, Object: a.deps.ID, Pos: p,
				At: a.deps.Now(),
			})
		}
	case protocol.MonitorInstall:
		a.handleInstall(v)
	case protocol.MonitorCancel:
		if mon, ok := a.monitors[v.Query]; ok && v.Epoch >= mon.epoch {
			a.drop(v.Query)
		}
	}
}

func (a *ObjectAgent) handleInstall(v protocol.MonitorInstall) {
	prev, had := a.monitors[v.Query]
	if had && v.Epoch < prev.epoch {
		return // stale rebroadcast
	}
	p := a.deps.Pos()
	d := p.Dist(v.QueryPos)
	now := a.deps.Now()
	if d > v.Radius {
		// The install reached us (cell-granular broadcast covers more
		// than the region) but we are outside the monitoring region. On
		// a refresh install the server kept its inside set, so if it
		// believed we were an answer member we must correct it before
		// forgetting the query.
		if v.Refresh && had && prev.inside {
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
		}
		a.drop(v.Query)
		return
	}
	side := d <= v.AnswerRadius
	reported := false
	if v.Refresh {
		// Report only the *change* of side relative to our previous
		// state; the server's inside set was carried over, so this keeps
		// it exact by induction. An inside member that has been silent
		// for a full horizon re-affirms its membership — idempotent at
		// the server, and it heals an enter-report that was lost or
		// outrun by reinstall epochs in flight.
		affirm := side && had && prev.inside &&
			now-prev.lastSentAt >= model.Tick(a.cfg.HorizonTicks)
		switch {
		case side && (!(had && prev.inside) || affirm):
			a.deps.Side.Uplink(protocol.EnterReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			reported = true
		case !side && had && prev.inside:
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: v.Query, Epoch: v.Epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			reported = true
		}
	}
	// lastReport must track what the *server* knows about us. After a
	// full probe the server rebuilt its state from our reply at the
	// current position, and any report above carried the current
	// position too; but a silent refresh carried nothing, so the
	// server's copy is still our previous report — keep baselining
	// against it or a drift accumulated before this install would never
	// be transmitted.
	last := p
	sentAt := now
	if v.Refresh && had && !reported {
		last = prev.lastReport
		sentAt = prev.lastSentAt
	}
	if !had {
		a.order = append(a.order, v.Query)
		sort.Slice(a.order, func(i, j int) bool { return a.order[i] < a.order[j] })
	}
	a.monitors[v.Query] = &agentMonitor{
		epoch:        v.Epoch,
		qpos:         v.QueryPos,
		qvel:         v.QueryVel,
		at:           v.At,
		answerRadius: v.AnswerRadius,
		radius:       v.Radius,
		rangeMode:    v.RangeMode,
		inside:       side,
		lastReport:   last,
		lastSentAt:   sentAt,
	}
}

func (a *ObjectAgent) drop(q model.QueryID) {
	if _, ok := a.monitors[q]; !ok {
		return
	}
	delete(a.monitors, q)
	for i, id := range a.order {
		if id == q {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// Tick evaluates every installed monitor against the object's current
// position and transmits crossing/leave/move events.
func (a *ObjectAgent) Tick(now model.Tick) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.monitors) == 0 {
		return
	}
	p := a.deps.Pos()
	dt := a.deps.DT
	theta := a.cfg.ThetaInside
	var dropped []model.QueryID
	for _, q := range a.order {
		mon := a.monitors[q]
		qhat := geo.DeadReckon(mon.qpos, mon.qvel, float64(now-mon.at)*dt)
		d := p.Dist(qhat)
		if d > mon.radius {
			// Only answer-circle members must announce leaving — the
			// server tracks membership through them. Annulus objects
			// drop silently; their stale candidate entries are pruned at
			// the next refresh.
			if mon.inside {
				a.deps.Side.Uplink(protocol.LeaveReport{MemberReport: protocol.MemberReport{
					Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
				}})
			}
			dropped = append(dropped, q)
			continue
		}
		side := d <= mon.answerRadius
		switch {
		case side && !mon.inside:
			a.deps.Side.Uplink(protocol.EnterReport{MemberReport: protocol.MemberReport{
				Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			mon.inside = true
			mon.lastReport = p
			mon.lastSentAt = now
		case !side && mon.inside:
			a.deps.Side.Uplink(protocol.ExitReport{MemberReport: protocol.MemberReport{
				Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			mon.inside = false
			mon.lastReport = p
			mon.lastSentAt = now
		case side && !mon.rangeMode && p.Dist(mon.lastReport) > theta:
			a.deps.Side.Uplink(protocol.MoveReport{MemberReport: protocol.MemberReport{
				Query: q, Epoch: mon.epoch, Object: a.deps.ID, Pos: p, At: now,
			}})
			mon.lastReport = p
			mon.lastSentAt = now
		}
	}
	for _, q := range dropped {
		a.drop(q)
	}
}

// QueryAgentDeps extends the client bindings with the focal device's
// velocity sensor.
type QueryAgentDeps struct {
	AgentDeps
	// Vel reads the client's own current velocity.
	Vel func() geo.Vector
}

// QueryAgent is the logic on the query's focal device: it registers the
// query, corrects the server's dead-reckoned track when it deviates, and
// receives answer updates.
//
// QueryAgent is safe for concurrent use.
type QueryAgent struct {
	cfg  Config
	spec model.QuerySpec
	deps QueryAgentDeps

	mu         sync.Mutex
	registered bool
	lastPos    geo.Point
	lastVel    geo.Vector
	lastAt     model.Tick
	answer     model.Answer
	// OnAnswer, when set, is called (under the agent lock) with each
	// received answer update.
	OnAnswer func(model.Answer)
}

// NewQueryAgent returns a focal-client agent for the given query spec.
func NewQueryAgent(cfg Config, spec model.QuerySpec, deps QueryAgentDeps) (*QueryAgent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &QueryAgent{cfg: cfg, spec: spec, deps: deps}, nil
}

// Tick registers the query on first call, then corrects the advertised
// track whenever the true position deviates beyond the threshold.
func (qc *QueryAgent) Tick(now model.Tick) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	pos, vel := qc.deps.Pos(), qc.deps.Vel()
	if !qc.registered {
		qc.deps.Side.Uplink(protocol.QueryRegister{
			Query: qc.spec.ID,
			K:     uint32(qc.spec.K),
			Range: qc.spec.Range,
			Pos:   pos,
			Vel:   vel,
			At:    now,
		})
		qc.registered = true
		qc.lastPos, qc.lastVel, qc.lastAt = pos, vel, now
		return
	}
	expect := geo.DeadReckon(qc.lastPos, qc.lastVel, float64(now-qc.lastAt)*qc.deps.DT)
	if pos.Dist(expect) > qc.cfg.QueryDeviation+trackEpsilon {
		qc.deps.Side.Uplink(protocol.QueryMove{
			Query: qc.spec.ID,
			Pos:   pos,
			Vel:   vel,
			At:    now,
		})
		qc.lastPos, qc.lastVel, qc.lastAt = pos, vel, now
	}
}

// Deregister removes the continuous query from the server.
func (qc *QueryAgent) Deregister() {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	qc.deps.Side.Uplink(protocol.QueryDeregister{Query: qc.spec.ID})
	qc.registered = false
}

// HandleServerMessage implements transport.ClientHandler.
func (qc *QueryAgent) HandleServerMessage(msg protocol.Message) {
	switch v := msg.(type) {
	case protocol.AnswerUpdate:
		if v.Query != qc.spec.ID {
			return
		}
		qc.mu.Lock()
		defer qc.mu.Unlock()
		qc.answer = model.Answer{Query: v.Query, At: v.At, Neighbors: v.Neighbors}
		if qc.OnAnswer != nil {
			qc.OnAnswer(qc.answer)
		}
	case protocol.AnswerDelta:
		if v.Query != qc.spec.ID {
			return
		}
		qc.mu.Lock()
		defer qc.mu.Unlock()
		drop := make(map[model.ObjectID]bool, len(v.Removed)+len(v.Added))
		for _, id := range v.Removed {
			drop[id] = true
		}
		// An added id that is somehow already present is replaced.
		for _, n := range v.Added {
			drop[n.ID] = true
		}
		ns := make([]model.Neighbor, 0, len(qc.answer.Neighbors)+len(v.Added))
		for _, n := range qc.answer.Neighbors {
			if !drop[n.ID] {
				ns = append(ns, n)
			}
		}
		ns = append(ns, v.Added...)
		model.SortNeighbors(ns)
		qc.answer = model.Answer{Query: v.Query, At: v.At, Neighbors: ns}
		if qc.OnAnswer != nil {
			qc.OnAnswer(qc.answer)
		}
	}
}

// Answer returns the latest answer received from the server.
func (qc *QueryAgent) Answer() model.Answer {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.answer
}
