package index

import (
	"math/rand"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

func TestNewKinds(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	for _, kind := range []string{KindGrid, KindRTree, ""} {
		idx, err := New(kind, world, 4, 4)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if idx == nil {
			t.Fatalf("%q: nil index", kind)
		}
	}
	if _, err := New("btree", world, 4, 4); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Both substrates must agree exactly on every operation over the same
// random stream — the interface contract, checked implementation against
// implementation.
func TestSubstratesAgree(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	g, err := New(KindGrid, world, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(KindRTree, world, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	live := map[model.ObjectID]bool{}
	nextID := model.ObjectID(1)
	randPt := func() geo.Point { return geo.Pt(rng.Float64()*1000, rng.Float64()*1000) }
	for step := 0; step < 6000; step++ {
		switch op := rng.Intn(10); {
		case op < 5:
			id := nextID
			nextID++
			p := randPt()
			if err := g.Insert(id, p); err != nil {
				t.Fatal(err)
			}
			if err := r.Insert(id, p); err != nil {
				t.Fatal(err)
			}
			live[id] = true
		case op < 8 && len(live) > 0:
			id := anyID(rng, live)
			p := randPt()
			if err := g.Update(id, p); err != nil {
				t.Fatal(err)
			}
			if err := r.Update(id, p); err != nil {
				t.Fatal(err)
			}
		case len(live) > 0:
			id := anyID(rng, live)
			if err := g.Remove(id); err != nil {
				t.Fatal(err)
			}
			if err := r.Remove(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		}
	}
	if g.Len() != r.Len() {
		t.Fatalf("sizes differ: %d vs %d", g.Len(), r.Len())
	}
	for trial := 0; trial < 200; trial++ {
		q := randPt()
		k := 1 + rng.Intn(20)
		gk, rk := g.KNN(q, k, nil, nil), r.KNN(q, k, nil, nil)
		if len(gk) != len(rk) {
			t.Fatalf("kNN lengths differ: %d vs %d", len(gk), len(rk))
		}
		for i := range gk {
			if gk[i].ID != rk[i].ID {
				t.Fatalf("kNN disagree at %d: %v vs %v", i, gk[i], rk[i])
			}
		}
		c := geo.Circle{Center: q, R: rng.Float64() * 150}
		gr, rr := g.Range(c, nil, nil), r.Range(c, nil, nil)
		if len(gr) != len(rr) {
			t.Fatalf("range lengths differ: %d vs %d", len(gr), len(rr))
		}
		for i := range gr {
			if gr[i].ID != rr[i].ID {
				t.Fatalf("range disagree at %d: %v vs %v", i, gr[i], rr[i])
			}
		}
	}
}

func anyID(rng *rand.Rand, live map[model.ObjectID]bool) model.ObjectID {
	ids := make([]model.ObjectID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids[rng.Intn(len(ids))]
}
