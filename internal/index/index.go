// Package index defines the common interface of the engine's spatial
// index substrates — the uniform grid (internal/grid) and the R-tree
// (internal/rtree) — so the centralized query servers can be ablated over
// the index choice (EXPERIMENTS.md fig14).
package index

import (
	"fmt"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
	"dmknn/internal/rtree"
)

// Spatial is an updatable point index with the two search operations the
// query servers need.
type Spatial interface {
	Insert(id model.ObjectID, p geo.Point) error
	Update(id model.ObjectID, p geo.Point) error
	Remove(id model.ObjectID) error
	Position(id model.ObjectID) (geo.Point, bool)
	Len() int
	// KNN returns the k nearest objects in ascending distance order,
	// ties by id; skip excludes ids. dst, if non-nil, is a scratch
	// slice the result is appended into (starting at dst[:0]) so hot
	// callers can amortize the result allocation; nil allocates.
	KNN(q geo.Point, k int, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor
	// Range returns every object inside the circle, ascending by
	// distance with ties by id. dst is a scratch slice as in KNN.
	Range(c geo.Circle, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor
	VisitAll(fn func(id model.ObjectID, p geo.Point) bool)
}

// Compile-time checks that both substrates satisfy the interface.
var (
	_ Spatial = (*grid.Grid)(nil)
	_ Spatial = (*rtree.Tree)(nil)
)

// Kind names accepted by New.
const (
	KindGrid  = "grid"
	KindRTree = "rtree"
)

// New constructs the named index over the world (the grid uses the given
// cell layout; the R-tree adapts to the data and ignores it).
func New(kind string, world geo.Rect, cols, rows int) (Spatial, error) {
	switch kind {
	case KindGrid, "":
		return grid.New(world, cols, rows), nil
	case KindRTree:
		return rtree.New(), nil
	default:
		return nil, fmt.Errorf("index: unknown kind %q", kind)
	}
}
