// Package trace records and replays moving-object trajectories. A trace
// fixes the exact motion of a population so that experiments can be
// re-run bit-identically later, shared between implementations, or
// driven from externally produced movement data (any per-tick position
// log converts to this format).
//
// Format: CSV with header "tick,id,x,y,vx,vy", rows sorted by tick then
// id, every object present at every tick from 0..T. The same format
// cmd/tracegen emits.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dmknn/internal/geo"
	"dmknn/internal/mobility"
	"dmknn/internal/model"
)

// Trace is a recorded population movement: positions and velocities of n
// objects over T+1 ticks (including tick 0).
type Trace struct {
	// frames[t][i] is object i+1's state at tick t.
	frames [][]model.ObjectState
}

// ErrMalformed reports an unreadable trace file.
var ErrMalformed = errors.New("trace: malformed trace")

// NumObjects returns the population size.
func (tr *Trace) NumObjects() int {
	if len(tr.frames) == 0 {
		return 0
	}
	return len(tr.frames[0])
}

// Ticks returns the number of recorded steps (frames minus one).
func (tr *Trace) Ticks() int {
	if len(tr.frames) == 0 {
		return 0
	}
	return len(tr.frames) - 1
}

// Frame returns the population state at tick t. The returned slice is
// shared; callers must not mutate it.
func (tr *Trace) Frame(t int) []model.ObjectState { return tr.frames[t] }

// Record runs a mobility model for the given population and horizon and
// captures every frame.
func Record(m mobility.Model, n, ticks int, dt float64) *Trace {
	states := m.Init(n)
	tr := &Trace{frames: make([][]model.ObjectState, 0, ticks+1)}
	tr.frames = append(tr.frames, cloneStates(states))
	for t := 0; t < ticks; t++ {
		m.Step(states, dt)
		tr.frames = append(tr.frames, cloneStates(states))
	}
	return tr
}

func cloneStates(s []model.ObjectState) []model.ObjectState {
	out := make([]model.ObjectState, len(s))
	copy(out, s)
	return out
}

// WriteCSV serializes the trace in the tracegen CSV format.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintln(bw, "tick,id,x,y,vx,vy"); err != nil {
		return err
	}
	for t, frame := range tr.frames {
		for _, s := range frame {
			if _, err := fmt.Fprintf(bw, "%d,%d,%g,%g,%g,%g\n",
				t, s.ID, s.Pos.X, s.Pos.Y, s.Vel.X, s.Vel.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace in the tracegen CSV format. Objects must be
// numbered 1..n and present in every tick; ticks must be contiguous from
// zero.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrMalformed)
	}
	if got := strings.TrimSpace(sc.Text()); got != "tick,id,x,y,vx,vy" {
		return nil, fmt.Errorf("%w: unexpected header %q", ErrMalformed, got)
	}
	tr := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("%w: line %d has %d fields", ErrMalformed, line, len(fields))
		}
		tick, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d tick: %v", ErrMalformed, line, err)
		}
		id64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d id: %v", ErrMalformed, line, err)
		}
		var vals [4]float64
		for i := 0; i < 4; i++ {
			vals[i], err = strconv.ParseFloat(fields[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %d: %v", ErrMalformed, line, 2+i, err)
			}
		}
		if tick == len(tr.frames) {
			tr.frames = append(tr.frames, nil)
		} else if tick != len(tr.frames)-1 {
			return nil, fmt.Errorf("%w: line %d tick %d out of order", ErrMalformed, line, tick)
		}
		st := model.ObjectState{
			ID:  model.ObjectID(id64),
			Pos: geo.Pt(vals[0], vals[1]),
			Vel: geo.Vec(vals[2], vals[3]),
		}
		frame := tr.frames[tick]
		if int(st.ID) != len(frame)+1 {
			return nil, fmt.Errorf("%w: line %d object %d out of order (want %d)",
				ErrMalformed, line, st.ID, len(frame)+1)
		}
		tr.frames[tick] = append(frame, st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.frames) == 0 {
		return nil, fmt.Errorf("%w: no frames", ErrMalformed)
	}
	n := len(tr.frames[0])
	for t, frame := range tr.frames {
		if len(frame) != n {
			return nil, fmt.Errorf("%w: tick %d has %d objects, want %d", ErrMalformed, t, len(frame), n)
		}
	}
	return tr, nil
}

// Replay is a mobility.Model that plays a recorded trace back. After the
// trace ends the population freezes in its final frame, so longer
// simulations degrade predictably instead of failing.
type Replay struct {
	trace *Trace
	tick  int
}

// NewReplay returns a replaying model over tr.
func NewReplay(tr *Trace) *Replay { return &Replay{trace: tr} }

// Name implements mobility.Model.
func (r *Replay) Name() string { return "trace-replay" }

// Init implements mobility.Model. n must not exceed the trace population;
// a smaller n replays the first n objects.
func (r *Replay) Init(n int) []model.ObjectState {
	if n > r.trace.NumObjects() {
		panic(fmt.Sprintf("trace: replay of %d objects from a %d-object trace",
			n, r.trace.NumObjects()))
	}
	r.tick = 0
	return cloneStates(r.trace.frames[0][:n])
}

// Step implements mobility.Model; dt is ignored (the trace fixes the
// cadence).
func (r *Replay) Step(states []model.ObjectState, dt float64) {
	if r.tick < r.trace.Ticks() {
		r.tick++
	}
	frame := r.trace.frames[r.tick]
	for i := range states {
		states[i] = frame[i]
	}
}

var _ mobility.Model = (*Replay)(nil)
