package trace_test

import (
	"bytes"
	"testing"

	"dmknn/internal/baseline"
	"dmknn/internal/core"
	"dmknn/internal/mobility"
	"dmknn/internal/sim"
	"dmknn/internal/trace"
	"dmknn/internal/workload"
)

// replayConfig builds a sim config whose populations replay recorded
// traces instead of live mobility models.
func replayConfig(t *testing.T, objTrace, qryTrace *trace.Trace) sim.Config {
	t.Helper()
	cfg := workload.Quick()
	cfg.NumObjects = objTrace.NumObjects()
	cfg.NumQueries = qryTrace.NumObjects()
	cfg.Ticks = objTrace.Ticks() - cfg.Warmup
	cfg.ObjectModel = func(int64) (mobility.Model, error) {
		return trace.NewReplay(objTrace), nil
	}
	cfg.QueryModel = func(int64) (mobility.Model, error) {
		return trace.NewReplay(qryTrace), nil
	}
	return cfg
}

// Recording a workload, serializing it through CSV, and replaying it must
// drive the engine identically: CP stays exact and two DKNN runs over the
// replay produce identical traffic.
func TestReplayDrivesEngine(t *testing.T) {
	base := workload.Quick()
	objModel, err := base.ObjectModel(5)
	if err != nil {
		t.Fatal(err)
	}
	qryModel, err := base.QueryModel(6)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 60
	objTrace := trace.Record(objModel, 300, horizon, base.DT)
	qryTrace := trace.Record(qryModel, 4, horizon, base.DT)

	// Round-trip the object trace through CSV to prove the serialized
	// form is equivalent.
	var buf bytes.Buffer
	if err := objTrace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	objTrace2, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := replayConfig(t, objTrace2, qryTrace)
	cpRes, err := sim.Run(cfg, baseline.NewCP())
	if err != nil {
		t.Fatal(err)
	}
	if ex := cpRes.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("CP on replayed trace exactness = %v", ex)
	}

	proto := core.DefaultConfig()
	proto.HorizonTicks = 8
	proto.MinProbeRadius = 100
	mkDKNN := func() *core.Method {
		m, err := core.New(proto)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	r1, err := sim.Run(replayConfig(t, objTrace2, qryTrace), mkDKNN())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(replayConfig(t, objTrace2, qryTrace), mkDKNN())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Traffic != r2.Traffic {
		t.Error("replayed DKNN runs diverged")
	}
	if ex := r1.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("DKNN on replayed trace exactness = %v", ex)
	}
}
