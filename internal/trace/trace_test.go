package trace

import (
	"bytes"
	"strings"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/mobility"
	"dmknn/internal/model"
)

func recordSample(t *testing.T, n, ticks int) *Trace {
	t.Helper()
	m, err := mobility.NewRandomWaypoint(mobility.Config{
		World:    geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)),
		MinSpeed: 2, MaxSpeed: 10, Seed: 5,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Record(m, n, ticks, 1)
}

func TestRecordShape(t *testing.T) {
	tr := recordSample(t, 7, 12)
	if tr.NumObjects() != 7 {
		t.Errorf("NumObjects = %d", tr.NumObjects())
	}
	if tr.Ticks() != 12 {
		t.Errorf("Ticks = %d", tr.Ticks())
	}
	if len(tr.Frame(0)) != 7 || len(tr.Frame(12)) != 7 {
		t.Error("frames wrong size")
	}
	// Frames are snapshots, not aliases: consecutive frames differ.
	same := 0
	for i := range tr.Frame(0) {
		if tr.Frame(0)[i].Pos == tr.Frame(12)[i].Pos {
			same++
		}
	}
	if same == 7 {
		t.Error("no motion recorded")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := recordSample(t, 5, 9)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObjects() != 5 || got.Ticks() != 9 {
		t.Fatalf("round trip shape: %d objects, %d ticks", got.NumObjects(), got.Ticks())
	}
	for tick := 0; tick <= 9; tick++ {
		want := tr.Frame(tick)
		have := got.Frame(tick)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("tick %d object %d: %+v != %+v", tick, i, have[i], want[i])
			}
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                               // empty
		"wrong,header\n",                 // header
		"tick,id,x,y,vx,vy\n1,1,0,0,0,0", // tick 1 before tick 0
		"tick,id,x,y,vx,vy\n0,2,0,0,0,0", // object 2 before 1
		"tick,id,x,y,vx,vy\n0,1,0,0,0",   // field count
		"tick,id,x,y,vx,vy\n0,x,0,0,0,0", // bad id
		"tick,id,x,y,vx,vy\n0,1,a,0,0,0", // bad float
		"tick,id,x,y,vx,vy\n0,1,0,0,0,0\n1,1,0,0,0,0\n1,2,0,0,0,0", // ragged frames
		"tick,id,x,y,vx,vy\n", // no frames
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReplayMatchesRecording(t *testing.T) {
	tr := recordSample(t, 6, 15)
	rp := NewReplay(tr)
	if rp.Name() == "" {
		t.Error("empty name")
	}
	states := rp.Init(6)
	for i := range states {
		if states[i] != tr.Frame(0)[i] {
			t.Fatalf("Init frame mismatch at %d", i)
		}
	}
	for tick := 1; tick <= 15; tick++ {
		rp.Step(states, 1)
		for i := range states {
			if states[i] != tr.Frame(tick)[i] {
				t.Fatalf("tick %d object %d mismatch", tick, i)
			}
		}
	}
	// Past the end: frozen, no panic.
	final := append([]model.ObjectState(nil), states...)
	rp.Step(states, 1)
	for i := range states {
		if states[i] != final[i] {
			t.Fatal("population moved past the end of the trace")
		}
	}
}

func TestReplaySubsetAndOversize(t *testing.T) {
	tr := recordSample(t, 6, 5)
	rp := NewReplay(tr)
	states := rp.Init(3)
	if len(states) != 3 {
		t.Fatalf("subset init = %d", len(states))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversize replay did not panic")
		}
	}()
	rp.Init(7)
}
