// Package sim is the slotted-time simulation engine the experiments run
// on. One tick is one evaluation interval of the continuous queries. Each
// tick the engine:
//
//  1. advances every object and query focal point with its mobility model
//     and refreshes the ground-truth index;
//  2. runs the method's client-side logic (object agents decide locally
//     whether to transmit) and flushes the network;
//  3. runs the method's server-side periodic logic and flushes again;
//  4. lets the method finalize multi-round exchanges (probe → install)
//     with a bounded number of additional flushes;
//  5. audits the method's maintained answers against brute-force ground
//     truth — fanning the queries out over Config.AuditWorkers goroutines
//     with deterministic chunk-ordered merging — and samples the per-tick
//     metric series. Motion (step 1) stays serial: mobility models draw
//     from a shared per-model RNG stream, so parallel stepping would make
//     trajectories schedule-dependent.
//
// The engine is method-agnostic: the distributed protocol (internal/core)
// and the centralized baselines (internal/baseline) implement Method and
// are measured under identical trajectories, identical network semantics,
// and an identical auditor.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/mobility"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/simnet"
)

// Method is one query-processing strategy under evaluation.
type Method interface {
	// Name identifies the method in experiment output.
	Name() string
	// Setup wires the method into the environment: attach server and
	// client handlers to env.Net and capture references. Called once,
	// before the first tick.
	Setup(env *Env) error
	// ClientTick runs the per-tick local logic of every client (object
	// agents and query focal clients). Sends become visible after the
	// engine's flush.
	ClientTick(now model.Tick)
	// ServerTick runs the server's periodic work, after this tick's
	// client uplinks have been delivered.
	ServerTick(now model.Tick)
	// Finalize completes multi-round exchanges begun this tick (e.g.
	// computing an answer from probe replies and broadcasting the monitor
	// install). The engine flushes after each call and calls again while
	// it returns true.
	Finalize(now model.Tick) bool
	// Answer returns the method's current maintained answer for q, as the
	// system would report it to the user right now.
	Answer(q model.QueryID) model.Answer
	// ServerTime returns the cumulative wall-clock time spent in
	// server-side processing (handlers plus periodic work).
	ServerTime() time.Duration
}

// ExtraReporter is optionally implemented by a Method to expose
// method-specific cumulative counters (e.g. a federation's inter-node
// link traffic and handoff counts) beyond what the shared network
// meters. The engine snapshots the counters at the warmup boundary and
// reports the measured-phase increase in Result.Extra.
type ExtraReporter interface {
	ExtraMetrics() map[string]float64
}

// QueryRuntime couples a query spec with the live kinematic state of its
// focal client.
type QueryRuntime struct {
	Spec  model.QuerySpec
	State model.ObjectState // State.ID is the focal client's network address
}

// Env is the environment a Method operates in. The engine owns and updates
// Objects and Queries in place each tick; methods keep the slices and read
// current state through them (this models each client knowing its own
// position locally — reading a position costs nothing, transmitting it is
// what the network meters).
type Env struct {
	Net      *simnet.Network
	Geometry grid.Geometry
	World    geo.Rect
	// DT is the duration of one tick in seconds of simulated time.
	DT float64
	// LatencyTicks is the network's one-way delivery delay, which the
	// server knows as a deployment parameter (it schedules probe-reply
	// deadlines from it).
	LatencyTicks int
	// Speed bounds, used by the distributed protocol to size safe slack.
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	Objects        []model.ObjectState
	Queries        []QueryRuntime
	// Trace, when non-nil, is the event sink methods wire into their
	// protocol state machines (and the network, via Net.SetTrace). The
	// engine composes it from Config.Trace plus its own histogram
	// observer when Config.Observe is set.
	Trace obs.Sink
}

// ObjectByID returns the live state of a data object. Object ids are
// 1..len(Objects).
func (e *Env) ObjectByID(id model.ObjectID) *model.ObjectState {
	return &e.Objects[int(id)-1]
}

// Config parameterizes one simulation run.
type Config struct {
	World      geo.Rect
	Cols, Rows int
	// NumObjects data objects move per ObjectModel; NumQueries focal
	// points move per QueryModel.
	NumObjects int
	NumQueries int
	K          int
	// QueryRange, when positive, makes every query a fixed-radius range
	// monitor instead of a kNN query.
	QueryRange float64
	// DT is seconds of simulated time per tick.
	DT float64
	// Speed bounds must match (or exceed) what the mobility models
	// produce; the distributed protocol's safety depends on them.
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	// Ticks to simulate after Warmup ticks (warmup traffic and accuracy
	// are excluded from the reported series).
	Ticks  int
	Warmup int
	// Network behavior.
	LatencyTicks  int
	UplinkLoss    float64
	DownlinkLoss  float64
	BroadcastLoss float64
	// Faults is the optional fault-injection matrix (burst loss, jitter,
	// duplication); the zero value leaves the network's behavior — and
	// its seeded loss stream — exactly as without it.
	Faults simnet.FaultConfig
	Seed   int64
	// ObjectModel and QueryModel construct the mobility models. They
	// receive the seed so trajectories are reproducible.
	ObjectModel func(seed int64) (mobility.Model, error)
	QueryModel  func(seed int64) (mobility.Model, error)
	// DisableAudit skips ground-truth maintenance and answer auditing
	// (used by pure-throughput benchmarks).
	DisableAudit bool
	// AuditWorkers bounds the goroutines the per-tick auditor fans the
	// queries out over (0 means runtime.GOMAXPROCS; 1 forces the serial
	// path). The audit result is bit-identical for every worker count:
	// queries are observed in fixed-size chunks whose accumulators are
	// merged in chunk order after the barrier, so neither scheduling nor
	// floating-point summation order depends on the worker count. Only
	// auditing parallelizes — motion stepping stays serial because the
	// mobility models draw from one shared per-model RNG stream (see
	// internal/mobility), and the protocol rounds are serial by the
	// slotted-time semantics.
	AuditWorkers int
	// Trace, when non-nil, receives every protocol lifecycle event the
	// method and network emit (see internal/obs). Chaos tests arm a
	// flight recorder here. Tracing must not change behavior: the event
	// stream is observation-only and draws no randomness.
	Trace obs.Sink
	// Observe enables the observability histograms in Result (answer
	// staleness, uplink inter-report gaps, per-tick server latency).
	// Off by default: the extra per-tick answer sampling is not free,
	// and golden experiments must not pay for it.
	Observe bool
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.World.Width() <= 0 || c.World.Height() <= 0:
		return fmt.Errorf("sim: degenerate world %v", c.World)
	case c.Cols <= 0 || c.Rows <= 0:
		return fmt.Errorf("sim: bad grid %dx%d", c.Cols, c.Rows)
	case c.NumObjects <= 0:
		return fmt.Errorf("sim: no objects")
	case c.NumQueries < 0:
		return fmt.Errorf("sim: negative query count")
	case c.K <= 0 && c.QueryRange <= 0:
		return fmt.Errorf("sim: non-positive k and no query range")
	case c.QueryRange < 0:
		return fmt.Errorf("sim: negative query range")
	case c.DT <= 0:
		return fmt.Errorf("sim: non-positive dt")
	case c.Ticks <= 0:
		return fmt.Errorf("sim: non-positive ticks")
	case c.Warmup < 0:
		return fmt.Errorf("sim: negative warmup")
	case c.ObjectModel == nil || c.QueryModel == nil:
		return fmt.Errorf("sim: mobility model constructors required")
	}
	return nil
}

// Result is the measured outcome of one run.
type Result struct {
	Method string
	Config Config
	// Per-tick series, excluding warmup.
	Uplink    metrics.Series
	Downlink  metrics.Series
	Broadcast metrics.Series
	ServerUS  metrics.Series // server processing, microseconds per tick
	// Audit of every (query, tick) answer after warmup.
	Audit metrics.Audit
	// Traffic accumulated after warmup.
	Traffic metrics.Counters
	// Extra holds the measured-phase increase of the method's
	// ExtraReporter counters; nil when the method reports none.
	Extra map[string]float64
	// Observability histograms, nil unless Config.Observe was set.
	// Staleness samples the age of every query's client-visible answer
	// (now − answer tick) once per measured tick; ReportGaps samples the
	// gap in ticks between consecutive uplink reports of one object;
	// ServerLatencyUS samples the server processing time per measured
	// tick in microseconds.
	Staleness       *metrics.Histogram
	ReportGaps      *metrics.Histogram
	ServerLatencyUS *metrics.Histogram
	// Elapsed is the wall-clock duration of the measured phase.
	Elapsed time.Duration
}

// UplinkPerTick returns the headline metric: mean uplink messages per
// tick after warmup.
func (r *Result) UplinkPerTick() float64 { return r.Uplink.Mean() }

// DownlinkPerTick returns mean downlink+broadcast transmissions per tick.
func (r *Result) DownlinkPerTick() float64 {
	return r.Downlink.Mean() + r.Broadcast.Mean()
}

// maxFinalizeRounds bounds the probe/install rounds a method may take in
// one tick before the engine declares a protocol bug. The batched ingest
// pipeline (internal/shard) defers each flush generation's responses to
// the next Finalize round, stretching a probe conversation that the
// synchronous server completes in k rounds across up to 2k, so the bound
// leaves headroom above the deepest cascade the property tests exercise.
const maxFinalizeRounds = 16

// Engine drives one (config, method) run.
type Engine struct {
	cfg     Config
	method  Method
	env     *Env
	net     *simnet.Network
	objMdl  mobility.Model
	qryMdl  mobility.Model
	queries []QueryRuntime
	truth   *grid.Grid
	now     model.Tick
	// qScratch is the reusable buffer the motion step stages query focal
	// states in (the query mobility model steps them as one population).
	qScratch []model.ObjectState
	// auditBufs holds one reusable ground-truth neighbor buffer per
	// audit worker, and chunkAudits one accumulator per query chunk;
	// both persist across ticks so the steady-state audit allocates
	// nothing.
	auditBufs   [][]model.Neighbor
	chunkAudits []metrics.Audit

	// Observability collectors (Config.Observe). The gap observer is fed
	// from the trace event stream, which federation nodes may emit from
	// parallel goroutines, so it carries its own lock; all histogram
	// samples are integer-valued ticks, keeping the accumulated sums
	// independent of arrival order.
	stale     *metrics.Histogram
	gaps      *metrics.Histogram
	servLatUS *metrics.Histogram
	gapMu     sync.Mutex
	gapLast   map[model.ObjectID]model.Tick
	observing bool
}

// NewEngine builds the environment for cfg and calls method.Setup.
func NewEngine(cfg Config, method Method) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	objMdl, err := cfg.ObjectModel(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("sim: object model: %w", err)
	}
	qryMdl, err := cfg.QueryModel(cfg.Seed + 0x9E3779B9)
	if err != nil {
		return nil, fmt.Errorf("sim: query model: %w", err)
	}
	geom := grid.NewGeometry(cfg.World, cfg.Cols, cfg.Rows)
	net := simnet.New(simnet.Config{
		Geometry:      geom,
		LatencyTicks:  cfg.LatencyTicks,
		UplinkLoss:    cfg.UplinkLoss,
		DownlinkLoss:  cfg.DownlinkLoss,
		BroadcastLoss: cfg.BroadcastLoss,
		Faults:        cfg.Faults,
		Seed:          cfg.Seed + 0x51ED2701,
	})

	objects := objMdl.Init(cfg.NumObjects)
	qStates := qryMdl.Init(cfg.NumQueries)
	queries := make([]QueryRuntime, cfg.NumQueries)
	for i := range queries {
		addr := model.ObjectID(cfg.NumObjects + 1 + i)
		qStates[i].ID = addr
		queries[i] = QueryRuntime{
			Spec: model.QuerySpec{
				ID:    model.QueryID(i + 1),
				K:     cfg.K,
				Range: cfg.QueryRange,
				Pos:   qStates[i].Pos,
				Vel:   qStates[i].Vel,
			},
			State: qStates[i],
		}
	}

	env := &Env{
		Net:            net,
		Geometry:       geom,
		World:          cfg.World,
		DT:             cfg.DT,
		LatencyTicks:   cfg.LatencyTicks,
		MaxObjectSpeed: cfg.MaxObjectSpeed,
		MaxQuerySpeed:  cfg.MaxQuerySpeed,
		Objects:        objects,
		Queries:        queries,
	}

	e := &Engine{
		cfg:    cfg,
		method: method,
		env:    env,
		net:    net,
		objMdl: objMdl,
		qryMdl: qryMdl,
	}

	// The network resolves broadcast audiences from live positions of
	// both data objects and query focal clients.
	net.SetPositionOracle(func(id model.ObjectID) (geo.Point, bool) {
		if n := int(id); n >= 1 && n <= len(env.Objects) {
			return env.Objects[n-1].Pos, true
		}
		qi := int(id) - len(env.Objects) - 1
		if qi >= 0 && qi < len(env.Queries) {
			return env.Queries[qi].State.Pos, true
		}
		return geo.Point{}, false
	})

	if !cfg.DisableAudit {
		e.truth = grid.New(cfg.World, cfg.Cols, cfg.Rows)
		for _, s := range objects {
			if err := e.truth.Insert(s.ID, s.Pos); err != nil {
				return nil, fmt.Errorf("sim: truth index: %w", err)
			}
		}
	}

	// Compose the trace sink the method sees: the caller's sink (flight
	// recorder, CLI trace) plus the engine's own histogram observer when
	// Observe is on.
	sink := cfg.Trace
	if cfg.Observe {
		e.stale = metrics.NewHistogram(metrics.TickBuckets()...)
		e.gaps = metrics.NewHistogram(metrics.TickBuckets()...)
		e.servLatUS = metrics.NewHistogram(metrics.LatencyBuckets()...)
		e.gapLast = make(map[model.ObjectID]model.Tick)
		sink = obs.Tee(sink, obs.SinkFunc(e.observeEvent))
	}
	env.Trace = sink
	net.SetTrace(sink)

	if err := method.Setup(env); err != nil {
		return nil, fmt.Errorf("sim: %s setup: %w", method.Name(), err)
	}
	return e, nil
}

// Env exposes the engine's environment (tests and harnesses use it).
func (e *Engine) Env() *Env { return e.env }

// Run simulates warmup + measured ticks and returns the result.
func (e *Engine) Run() (*Result, error) {
	res := &Result{Method: e.method.Name(), Config: e.cfg}
	total := e.cfg.Warmup + e.cfg.Ticks
	var (
		measuredStart time.Time
		baseTraffic   metrics.Counters
		baseExtra     map[string]float64
	)
	extra, _ := e.method.(ExtraReporter)
	for tick := 0; tick < total; tick++ {
		if tick == e.cfg.Warmup {
			measuredStart = time.Now()
			baseTraffic = e.net.Counters().Snapshot()
			if extra != nil {
				// Deep-copy the snapshot: the ExtraReporter contract does
				// not promise a fresh map, and a method handing out its
				// live counters (or a mid-run SetFaults swap mutating
				// them) must not move the warmup baseline under us.
				baseExtra = make(map[string]float64)
				for k, v := range extra.ExtraMetrics() {
					baseExtra[k] = v
				}
			}
			if e.cfg.Observe {
				e.setObserving(true)
			}
		}
		prevTraffic := e.net.Counters().Snapshot()
		prevServer := e.method.ServerTime()
		if err := e.step(); err != nil {
			return nil, err
		}
		if tick < e.cfg.Warmup {
			continue
		}
		d := e.net.Counters().Diff(prevTraffic)
		res.Uplink.Add(float64(d.Sent(metrics.Uplink)))
		res.Downlink.Add(float64(d.Sent(metrics.Downlink)))
		res.Broadcast.Add(float64(d.Sent(metrics.Broadcast)))
		tickUS := float64((e.method.ServerTime() - prevServer).Microseconds())
		res.ServerUS.Add(tickUS)
		if e.cfg.Observe {
			e.servLatUS.Observe(tickUS)
			// Answer staleness: the age of what each query's user sees
			// right now. A query that has no answer yet (At == 0 before
			// the first update) is not a staleness sample.
			for i := range e.env.Queries {
				if ans := e.method.Answer(e.env.Queries[i].Spec.ID); ans.At > 0 {
					e.stale.Observe(float64(e.now - ans.At))
				}
			}
		}
		if !e.cfg.DisableAudit {
			e.audit(res)
		}
	}
	res.Traffic = e.net.Counters().Diff(baseTraffic)
	res.Elapsed = time.Since(measuredStart)
	if extra != nil {
		end := extra.ExtraMetrics()
		res.Extra = make(map[string]float64, len(end))
		for k, v := range end {
			res.Extra[k] = v - baseExtra[k]
		}
	}
	if e.cfg.Observe {
		e.setObserving(false)
		res.Staleness = e.stale
		res.ReportGaps = e.gaps
		res.ServerLatencyUS = e.servLatUS
	}
	return res, nil
}

// setObserving flips the measured-phase gate of the trace-fed
// collectors (taken between ticks; the lock pairs it with observeEvent,
// which may run on method goroutines mid-tick).
func (e *Engine) setObserving(on bool) {
	e.gapMu.Lock()
	e.observing = on
	e.gapMu.Unlock()
}

// observeEvent feeds the inter-report gap histogram from the trace
// stream: every uplink report an object sends (event reports and
// boundary crossings alike) closes the gap opened by its previous one.
func (e *Engine) observeEvent(ev obs.Event) {
	if ev.Type != obs.EvReportSent && ev.Type != obs.EvBoundaryCrossed {
		return
	}
	e.gapMu.Lock()
	if e.observing {
		if prev, ok := e.gapLast[ev.Object]; ok {
			e.gaps.Observe(float64(ev.At - prev))
		}
	}
	e.gapLast[ev.Object] = ev.At
	e.gapMu.Unlock()
}

// Step advances the simulation by one tick without collecting series or
// auditing; tests and interactive harnesses drive the engine with it.
func (e *Engine) Step() error { return e.step() }

// Now returns the engine's current tick.
func (e *Engine) Now() model.Tick { return e.now }

// step advances the simulation by one tick.
//
// Motion is deliberately serial: each mobility model consumes a single
// shared RNG stream across its whole population, so stepping objects
// concurrently would make trajectories depend on scheduling. Only the
// audit at the end of a measured tick fans out (see audit).
func (e *Engine) step() error {
	e.now++
	dt := e.cfg.DT

	// 1. Motion.
	e.objMdl.Step(e.env.Objects, dt)
	if e.qScratch == nil {
		e.qScratch = make([]model.ObjectState, len(e.env.Queries))
	}
	qStates := e.qScratch
	for i := range e.env.Queries {
		qStates[i] = e.env.Queries[i].State
	}
	e.qryMdl.Step(qStates, dt)
	for i := range e.env.Queries {
		e.env.Queries[i].State = qStates[i]
	}
	if e.truth != nil {
		for _, s := range e.env.Objects {
			if err := e.truth.Update(s.ID, s.Pos); err != nil {
				return fmt.Errorf("sim: truth update: %w", err)
			}
		}
	}

	// 2..4. Protocol rounds.
	e.net.SetNow(e.now)
	e.method.ClientTick(e.now)
	e.net.Flush()
	e.method.ServerTick(e.now)
	e.net.Flush()
	for round := 0; e.method.Finalize(e.now); round++ {
		if round == maxFinalizeRounds {
			return fmt.Errorf("sim: %s did not quiesce at tick %d", e.method.Name(), e.now)
		}
		e.net.Flush()
	}
	return nil
}

// auditChunkSize is the number of consecutive queries one audit chunk
// covers. Chunk boundaries depend only on the query count — never on the
// worker count — so the chunk accumulators, merged in chunk order, yield
// bit-identical audit statistics no matter how many workers ran.
const auditChunkSize = 128

// audit compares every query's maintained answer against ground truth,
// fanning the queries out over cfg.AuditWorkers goroutines. The
// ground-truth index is only read here (motion already updated it), the
// methods' Answer accessors are read-only, and each worker reuses a
// private scratch buffer for the brute-force neighbor lists, so the
// steady-state audit is allocation-free and race-free. Per-chunk Audit
// accumulators are merged in chunk order after the barrier, which keeps
// the result deterministic (see auditChunkSize).
//
// Ties are honored: when several objects sit at exactly the k-th distance
// (common on lattice-like mobility), any of them is a correct k-th
// neighbor, so an answer that differs from the truth's deterministic
// tie-break only among tie-distance objects is audited as exact.
func (e *Engine) audit(res *Result) {
	n := len(e.env.Queries)
	if n == 0 {
		return
	}
	chunks := (n + auditChunkSize - 1) / auditChunkSize
	workers := e.cfg.AuditWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	if len(e.chunkAudits) < chunks {
		e.chunkAudits = make([]metrics.Audit, chunks)
	}
	if len(e.auditBufs) < workers {
		e.auditBufs = append(e.auditBufs, make([][]model.Neighbor, workers-len(e.auditBufs))...)
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			e.auditChunk(c, &e.chunkAudits[c], &e.auditBufs[0])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					c := int(next.Add(1)) - 1
					if c >= chunks {
						return
					}
					e.auditChunk(c, &e.chunkAudits[c], &e.auditBufs[w])
				}
			}(w)
		}
		wg.Wait()
	}
	for c := 0; c < chunks; c++ {
		res.Audit.Merge(&e.chunkAudits[c])
		e.chunkAudits[c].Reset()
	}
}

// auditChunk audits queries [c*auditChunkSize, (c+1)*auditChunkSize) into
// the chunk's private accumulator, reusing buf for ground-truth results.
func (e *Engine) auditChunk(c int, a *metrics.Audit, buf *[]model.Neighbor) {
	lo := c * auditChunkSize
	hi := lo + auditChunkSize
	if hi > len(e.env.Queries) {
		hi = len(e.env.Queries)
	}
	for i := lo; i < hi; i++ {
		q := &e.env.Queries[i]
		var truthNs []model.Neighbor
		if q.Spec.IsRange() {
			truthNs = e.truth.Range(geo.Circle{Center: q.State.Pos, R: q.Spec.Range}, nil, (*buf)[:0])
		} else {
			truthNs = e.truth.KNN(q.State.Pos, q.Spec.K, nil, (*buf)[:0])
		}
		if cap(truthNs) > cap(*buf) {
			*buf = truthNs
		}
		truth := model.Answer{Query: q.Spec.ID, At: e.now, Neighbors: truthNs}
		got := e.method.Answer(q.Spec.ID)
		if !model.SameMembers(got, truth) && e.tieEquivalent(got, truth, q.State.Pos) {
			got = truth
		}
		a.Observe(got, truth)
	}
}

// tieEquivalent reports whether got is a valid kNN answer differing from
// truth only in the choice among objects tied (within float tolerance) at
// the k-th distance.
func (e *Engine) tieEquivalent(got, truth model.Answer, q geo.Point) bool {
	if len(got.Neighbors) != len(truth.Neighbors) {
		return false
	}
	dk := truth.KthDist()
	tol := 1e-6 + dk*1e-9
	truthSet := truth.IDSet()
	for _, n := range got.Neighbors {
		if truthSet[n.ID] {
			continue
		}
		p, ok := e.truth.Position(n.ID)
		if !ok {
			return false
		}
		if d := p.Dist(q); d > dk+tol {
			return false
		}
	}
	return true
}

// Run is the convenience entry point: build an engine for (cfg, method)
// and run it.
func Run(cfg Config, method Method) (*Result, error) {
	e, err := NewEngine(cfg, method)
	if err != nil {
		return nil, err
	}
	return e.Run()
}
