package sim

import "testing"

// benchAuditEngine builds an engine with a populated truth index, large
// enough that the audit loop dominates.
func benchAuditEngine(b *testing.B, queries int) *Engine {
	b.Helper()
	cfg := testConfig()
	cfg.NumObjects = 2000
	cfg.NumQueries = queries
	cfg.K = 10
	cfg.Cols, cfg.Rows = 32, 32
	eng, err := NewEngine(cfg, &nullMethod{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Step(); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkAuditTick measures one full audit pass (every query checked
// against brute-force ground truth) — the per-tick cost the scratch-buffer
// reuse and the per-query parallelism target.
func BenchmarkAuditTick(b *testing.B) {
	eng := benchAuditEngine(b, 64)
	res := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.audit(res)
	}
}
