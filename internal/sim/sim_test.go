package sim

import (
	"errors"
	"testing"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/mobility"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

func testConfig() Config {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	factory := func(seed int64) (mobility.Model, error) {
		return mobility.NewRandomWaypoint(mobility.Config{
			World: world, MinSpeed: 2, MaxSpeed: 10, Seed: seed,
		}, 0)
	}
	return Config{
		World:          world,
		Cols:           8,
		Rows:           8,
		NumObjects:     50,
		NumQueries:     2,
		K:              3,
		DT:             1,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  10,
		Ticks:          20,
		Warmup:         2,
		Seed:           7,
		ObjectModel:    factory,
		QueryModel:     factory,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.World = geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 1)) },
		func(c *Config) { c.Cols = 0 },
		func(c *Config) { c.Rows = -1 },
		func(c *Config) { c.NumObjects = 0 },
		func(c *Config) { c.NumQueries = -1 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.DT = 0 },
		func(c *Config) { c.Ticks = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.ObjectModel = nil },
		func(c *Config) { c.QueryModel = nil },
	}
	for i, mut := range mutations {
		cfg := testConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := NewEngine(cfg, &nullMethod{}); err == nil {
			t.Errorf("mutation %d: NewEngine accepted bad config", i)
		}
	}
}

// nullMethod does nothing: the engine must still run motion, truth
// maintenance, and auditing around it.
type nullMethod struct{ env *Env }

func (n *nullMethod) Name() string              { return "null" }
func (n *nullMethod) Setup(env *Env) error      { n.env = env; return nil }
func (n *nullMethod) ClientTick(model.Tick)     {}
func (n *nullMethod) ServerTick(model.Tick)     {}
func (n *nullMethod) Finalize(model.Tick) bool  { return false }
func (n *nullMethod) ServerTime() time.Duration { return 0 }
func (n *nullMethod) Answer(q model.QueryID) model.Answer {
	return model.Answer{Query: q}
}

func TestEngineRunsNullMethod(t *testing.T) {
	cfg := testConfig()
	res, err := Run(cfg, &nullMethod{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "null" {
		t.Errorf("method name %q", res.Method)
	}
	if res.Uplink.Len() != cfg.Ticks {
		t.Errorf("series length %d, want %d", res.Uplink.Len(), cfg.Ticks)
	}
	// A method that answers nothing has zero recall (k truth members
	// exist) and zero traffic.
	if res.Audit.MeanRecall() != 0 {
		t.Errorf("null method recall = %v", res.Audit.MeanRecall())
	}
	if res.UplinkPerTick() != 0 || res.DownlinkPerTick() != 0 {
		t.Error("null method produced traffic")
	}
	if res.Audit.Evaluations() != cfg.Ticks*cfg.NumQueries {
		t.Errorf("evaluations = %d, want %d", res.Audit.Evaluations(), cfg.Ticks*cfg.NumQueries)
	}
}

// setupErrMethod fails setup; the engine must propagate the error.
type setupErrMethod struct{ nullMethod }

var errSetup = errors.New("boom")

func (s *setupErrMethod) Setup(*Env) error { return s.err() }
func (s *setupErrMethod) err() error       { return errSetup }

func TestSetupErrorPropagates(t *testing.T) {
	if _, err := NewEngine(testConfig(), &setupErrMethod{}); !errors.Is(err, errSetup) {
		t.Fatalf("err = %v, want wrapped errSetup", err)
	}
}

// stuckMethod never finishes finalizing; the engine must abort with an
// error instead of spinning.
type stuckMethod struct{ nullMethod }

func (s *stuckMethod) Finalize(model.Tick) bool { return true }

func TestFinalizeLoopGuard(t *testing.T) {
	cfg := testConfig()
	eng, err := NewEngine(cfg, &stuckMethod{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("expected quiescence error")
	}
}

func TestEnvAccessors(t *testing.T) {
	cfg := testConfig()
	m := &nullMethod{}
	eng, err := NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	if len(env.Objects) != cfg.NumObjects || len(env.Queries) != cfg.NumQueries {
		t.Fatal("env population wrong")
	}
	if got := env.ObjectByID(1); got.ID != 1 {
		t.Fatal("ObjectByID broken")
	}
	// Query focal addresses follow the object id space.
	if env.Queries[0].State.ID != model.ObjectID(cfg.NumObjects+1) {
		t.Errorf("query 0 address = %d", env.Queries[0].State.ID)
	}
	if env.Queries[1].State.ID != model.ObjectID(cfg.NumObjects+2) {
		t.Errorf("query 1 address = %d", env.Queries[1].State.ID)
	}
	// Query ids are 1-based and ks match.
	if env.Queries[0].Spec.ID != 1 || env.Queries[0].Spec.K != cfg.K {
		t.Errorf("query spec = %+v", env.Queries[0].Spec)
	}
}

func TestStepAdvancesMotionAndClock(t *testing.T) {
	cfg := testConfig()
	eng, err := NewEngine(cfg, &nullMethod{})
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	before := make([]geo.Point, len(env.Objects))
	for i := range env.Objects {
		before[i] = env.Objects[i].Pos
	}
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 1 {
		t.Errorf("Now = %d", eng.Now())
	}
	moved := 0
	for i := range env.Objects {
		if env.Objects[i].Pos != before[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no object moved")
	}
	// The network clock follows the engine.
	if env.Net.Now() != 1 {
		t.Errorf("network now = %d", env.Net.Now())
	}
}

// The broadcast position oracle must resolve data objects and query focal
// clients, and nothing else.
func TestPositionOracleCoverage(t *testing.T) {
	cfg := testConfig()
	m := &nullMethod{}
	eng, err := NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	// Install a client handler so broadcast delivery can be observed.
	heard := 0
	for id := model.ObjectID(1); id <= model.ObjectID(cfg.NumObjects+cfg.NumQueries); id++ {
		env.Net.AttachClient(id, clientFunc(func(protocol.Message) { heard++ }))
	}
	env.Net.SetNow(1)
	env.Net.ServerSide().Broadcast(geo.Circle{Center: env.World.Center(), R: 1e6},
		protocol.MonitorCancel{Query: 1})
	env.Net.Flush()
	if heard != cfg.NumObjects+cfg.NumQueries {
		t.Errorf("whole-world broadcast heard by %d, want %d",
			heard, cfg.NumObjects+cfg.NumQueries)
	}
}

type clientFunc func(protocol.Message)

func (f clientFunc) HandleServerMessage(m protocol.Message) { f(m) }

func TestDisableAudit(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAudit = true
	res, err := Run(cfg, &nullMethod{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit.Evaluations() != 0 {
		t.Error("audit ran despite DisableAudit")
	}
}

// answerMethod returns a fixed answer for auditing tests.
type answerMethod struct {
	nullMethod
	answers map[model.QueryID]model.Answer
}

func (m *answerMethod) Answer(q model.QueryID) model.Answer { return m.answers[q] }

// The auditor accepts any valid kNN set under distance ties: swapping a
// member for an equidistant non-member is exact; swapping for a farther
// one is not.
func TestAuditTieEquivalence(t *testing.T) {
	cfg := testConfig()
	cfg.NumObjects = 4
	cfg.NumQueries = 1
	cfg.K = 2
	cfg.Ticks = 1
	cfg.Warmup = 0
	// Stationary everything: objects pinned by a zero-speed model.
	factory := func(seed int64) (mobility.Model, error) {
		return mobility.NewRandomDirection(mobility.Config{
			World: cfg.World, MinSpeed: 0, MaxSpeed: 0, Seed: seed,
		}, 10)
	}
	cfg.ObjectModel = factory
	cfg.QueryModel = factory

	m := &answerMethod{answers: map[model.QueryID]model.Answer{}}
	eng, err := NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	// Place objects at controlled distances from the query point.
	q := env.Queries[0].State.Pos
	place := func(id model.ObjectID, dx, dy float64) {
		p := geo.Pt(q.X+dx, q.Y+dy)
		p = cfg.World.Clamp(p)
		env.Objects[int(id)-1].Pos = p
	}
	// Two at distance 10 (tie for rank 2..3), one at 5, one far.
	place(1, 5, 0)
	place(2, 10, 0)
	place(3, 0, 10)
	place(4, 100, 100)

	run := func(ids ...model.ObjectID) *Result {
		ns := make([]model.Neighbor, len(ids))
		for i, id := range ids {
			ns[i] = model.Neighbor{ID: id, Dist: 1} // distances irrelevant to membership audit
		}
		m.answers[1] = model.Answer{Query: 1, Neighbors: ns}
		e2, err := NewEngine(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		env2 := e2.Env()
		q2 := env2.Queries[0].State.Pos
		for i, off := range [][2]float64{{5, 0}, {10, 0}, {0, 10}, {100, 100}} {
			env2.Objects[i].Pos = cfg.World.Clamp(geo.Pt(q2.X+off[0], q2.Y+off[1]))
		}
		res, err := e2.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Truth top-2 = {1, 2} (tie between 2 and 3 broken by id).
	if res := run(1, 2); res.Audit.Exactness() != 1 {
		t.Errorf("canonical answer not exact")
	}
	// Tie-equivalent alternative {1, 3} must audit as exact.
	if res := run(1, 3); res.Audit.Exactness() != 1 {
		t.Errorf("tie-equivalent answer rejected")
	}
	// A genuinely worse member must not.
	if res := run(1, 4); res.Audit.Exactness() != 0 {
		t.Errorf("wrong answer accepted")
	}
	// Wrong cardinality must not.
	if res := run(1); res.Audit.Exactness() != 0 {
		t.Errorf("short answer accepted")
	}
}

func TestRunPropagatesStepErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := Run(cfg, &stuckMethod{}); err == nil {
		t.Fatal("Run swallowed a quiescence error")
	}
}

// The parallel auditor must produce bit-identical audit statistics for
// every worker count: chunk boundaries depend only on the query count and
// the chunk accumulators are merged in chunk order. The config uses more
// queries than one audit chunk so several chunks are actually in flight.
func TestAuditWorkersDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.NumObjects = 300
	cfg.NumQueries = auditChunkSize*2 + 17 // spans 3 chunks, last one ragged
	cfg.Ticks = 6
	cfg.Warmup = 1

	results := make([]*Result, 0, 3)
	for _, workers := range []int{1, 4, 8} {
		c := cfg
		c.AuditWorkers = workers
		res, err := Run(c, &nullMethod{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	base := results[0]
	for i, res := range results[1:] {
		if res.Audit != base.Audit {
			t.Errorf("audit stats differ at case %d: %+v vs %+v", i+1, res.Audit, base.Audit)
		}
		if res.Audit.MeanRecall() != base.Audit.MeanRecall() ||
			res.Audit.Exactness() != base.Audit.Exactness() ||
			res.Audit.MeanRadiusError() != base.Audit.MeanRadiusError() {
			t.Errorf("derived audit metrics differ at case %d", i+1)
		}
	}
}

// Range-monitor queries go down the truth.Range audit path; it must
// parallelize identically.
func TestAuditWorkersDeterministicRange(t *testing.T) {
	cfg := testConfig()
	cfg.K = 0
	cfg.QueryRange = 120
	cfg.NumQueries = auditChunkSize + 9
	cfg.Ticks = 4
	cfg.Warmup = 1

	c1 := cfg
	c1.AuditWorkers = 1
	one, err := Run(c1, &nullMethod{})
	if err != nil {
		t.Fatal(err)
	}
	c8 := cfg
	c8.AuditWorkers = 8
	eight, err := Run(c8, &nullMethod{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Audit != eight.Audit {
		t.Errorf("range audit differs: %+v vs %+v", one.Audit, eight.Audit)
	}
}
