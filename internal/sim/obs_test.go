package sim

import (
	"testing"

	"dmknn/internal/model"
	"dmknn/internal/obs"
)

// liveMapMethod is an ExtraReporter that hands out its LIVE counter map —
// the laziest legal implementation. The engine must deep-copy its warmup
// snapshot, or the baseline moves with the counters and every Extra
// metric collapses to zero.
type liveMapMethod struct {
	nullMethod
	counters map[string]float64
}

func (m *liveMapMethod) Name() string { return "live-map" }
func (m *liveMapMethod) ServerTick(model.Tick) {
	if m.counters == nil {
		m.counters = map[string]float64{}
	}
	m.counters["ticks"]++
}
func (m *liveMapMethod) ExtraMetrics() map[string]float64 {
	if m.counters == nil {
		m.counters = map[string]float64{}
	}
	return m.counters // deliberately not a copy
}

// Satellite regression test: the warmup ExtraMetrics snapshot must be a
// deep copy. Before the fix, a method returning its live map (or a
// mid-run fault reconfiguration mutating a shared one) aliased the
// baseline, so end-minus-base reported zero for every counter.
func TestExtraReporterLiveMapSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.Warmup = 5
	cfg.Ticks = 10
	m := &liveMapMethod{}
	res, err := Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Extra["ticks"]; got != float64(cfg.Ticks) {
		t.Fatalf("Extra[ticks] = %v, want %d (measured-phase increase; 0 means the baseline aliased the live map)",
			got, cfg.Ticks)
	}
}

// tracingMethod emits one uplink report per tick for a fixed object and
// answers every query with a fixed two-tick lag, so the engine-side
// histogram collectors have exactly predictable inputs.
type tracingMethod struct {
	nullMethod
	lastTick model.Tick
}

func (m *tracingMethod) Name() string { return "tracing" }
func (m *tracingMethod) ClientTick(now model.Tick) {
	m.lastTick = now
	if m.env.Trace != nil {
		m.env.Trace.Record(obs.Event{At: now, Type: obs.EvReportSent, Node: -1, Dir: -1, Object: 1})
	}
}
func (m *tracingMethod) Answer(q model.QueryID) model.Answer {
	at := m.lastTick - 2
	if at < 0 {
		at = 0
	}
	return model.Answer{Query: q, At: at}
}

// The engine's Observe mode must collect all three histograms with the
// documented semantics: staleness = now − answer.At per query per
// measured tick, report gaps = inter-report tick deltas for the measured
// phase only, and one server-latency sample per measured tick.
func TestObserveHistograms(t *testing.T) {
	cfg := testConfig()
	cfg.Warmup = 5
	cfg.Ticks = 10
	cfg.DisableAudit = true
	cfg.Observe = true
	res, err := Run(cfg, &tracingMethod{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Staleness == nil || res.ReportGaps == nil || res.ServerLatencyUS == nil {
		t.Fatal("observed run returned nil histograms")
	}
	wantStale := uint64(cfg.Ticks * cfg.NumQueries)
	if got := res.Staleness.Count(); got != wantStale {
		t.Errorf("staleness samples = %d, want %d", got, wantStale)
	}
	if p100 := res.Staleness.Quantile(1.0); p100 != 2 {
		t.Errorf("staleness p100 = %v, want 2 (fixed two-tick answer lag)", p100)
	}
	// One report per tick → every measured inter-report gap is exactly 1,
	// and only measured-phase gaps are counted.
	if got := res.ReportGaps.Count(); got != uint64(cfg.Ticks) {
		t.Errorf("gap samples = %d, want %d", got, cfg.Ticks)
	}
	if p100 := res.ReportGaps.Quantile(1.0); p100 != 1 {
		t.Errorf("gap p100 = %v, want 1", p100)
	}
	if got := res.ServerLatencyUS.Count(); got != uint64(cfg.Ticks) {
		t.Errorf("server latency samples = %d, want %d", got, cfg.Ticks)
	}
}

// Observe off: the histograms stay nil and no trace sink is synthesized.
func TestObserveOffNilHistograms(t *testing.T) {
	cfg := testConfig()
	cfg.DisableAudit = true
	m := &tracingMethod{}
	res, err := Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Staleness != nil || res.ReportGaps != nil || res.ServerLatencyUS != nil {
		t.Error("unobserved run returned histograms")
	}
	if m.env.Trace != nil {
		t.Error("engine synthesized a trace sink with tracing and observation off")
	}
}
