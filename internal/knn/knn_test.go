package knn

import (
	"math/rand"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
)

func randomStates(rng *rand.Rand, n int) []model.ObjectState {
	states := make([]model.ObjectState, n)
	for i := range states {
		states[i] = model.ObjectState{
			ID:  model.ObjectID(i + 1),
			Pos: geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
		}
	}
	return states
}

func TestBruteForceSimple(t *testing.T) {
	states := []model.ObjectState{
		{ID: 1, Pos: geo.Pt(10, 0)},
		{ID: 2, Pos: geo.Pt(5, 0)},
		{ID: 3, Pos: geo.Pt(20, 0)},
	}
	got := BruteForce(states, geo.Pt(0, 0), 2, nil)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("BruteForce = %v", got)
	}
	if got[0].Dist != 5 || got[1].Dist != 10 {
		t.Fatalf("distances = %v", got)
	}
}

func TestBruteForceEdges(t *testing.T) {
	if got := BruteForce(nil, geo.Pt(0, 0), 3, nil); got != nil {
		t.Fatalf("empty states: %v", got)
	}
	states := randomStates(rand.New(rand.NewSource(1)), 5)
	if got := BruteForce(states, geo.Pt(0, 0), 0, nil); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	if got := BruteForce(states, geo.Pt(0, 0), 100, nil); len(got) != 5 {
		t.Fatalf("k>n returned %d", len(got))
	}
	skip := map[model.ObjectID]bool{states[0].ID: true}
	got := BruteForce(states, states[0].Pos, 5, skip)
	for _, n := range got {
		if n.ID == states[0].ID {
			t.Fatal("skip set ignored")
		}
	}
}

// Cross-validate the grid kNN against brute force on identical data: the
// two independent implementations must agree exactly.
func TestGridAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	states := randomStates(rng, 3000)
	g := grid.New(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 20, 20)
	for _, s := range states {
		if err := g.Insert(s.ID, s.Pos); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 300; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(40)
		want := BruteForce(states, q, k, nil)
		got := g.KNN(q, k, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("len mismatch: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d (k=%d): pos %d grid=%v brute=%v", trial, k, i, got[i], want[i])
			}
		}
	}
}

func TestCandidateSetBasics(t *testing.T) {
	c := NewCandidateSet()
	if c.Len() != 0 || c.Has(1) {
		t.Fatal("new set not empty")
	}
	c.Set(1, geo.Pt(1, 1))
	c.Set(2, geo.Pt(2, 2))
	c.Set(1, geo.Pt(3, 3)) // update
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if p, ok := c.Position(1); !ok || p != geo.Pt(3, 3) {
		t.Fatalf("Position(1) = %v %v", p, ok)
	}
	c.Remove(1)
	c.Remove(99) // no-op
	if c.Has(1) || c.Len() != 1 {
		t.Fatal("Remove failed")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestCandidateSetKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	states := randomStates(rng, 500)
	c := NewCandidateSet()
	for _, s := range states {
		c.Set(s.ID, s.Pos)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(20)
		want := BruteForce(states, q, k, nil)
		got := c.KNN(q, k)
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d pos %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	if got := c.KNN(geo.Pt(0, 0), 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
	empty := NewCandidateSet()
	if got := empty.KNN(geo.Pt(0, 0), 3); got != nil {
		t.Fatal("empty set should be nil")
	}
}

func TestCountWithin(t *testing.T) {
	c := NewCandidateSet()
	c.Set(1, geo.Pt(0, 0))
	c.Set(2, geo.Pt(3, 4))  // dist 5
	c.Set(3, geo.Pt(10, 0)) // dist 10
	circle := geo.Circle{Center: geo.Pt(0, 0), R: 5}
	if got := c.CountWithin(circle); got != 2 {
		t.Fatalf("CountWithin = %d, want 2 (boundary inclusive)", got)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	c := NewCandidateSet()
	for i := model.ObjectID(1); i <= 10; i++ {
		c.Set(i, geo.Pt(float64(i), 0))
	}
	n := 0
	c.Visit(func(model.ObjectID, geo.Point) bool {
		n++
		return n < 4
	})
	if n != 4 {
		t.Fatalf("Visit early stop saw %d", n)
	}
}

func BenchmarkBruteForce20k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	states := randomStates(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(states, geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 10, nil)
	}
}
