// Package knn provides the query-evaluation primitives layered on top of
// the spatial index: a brute-force oracle (the correctness reference for
// every other evaluator and the auditor's ground truth), and the small
// candidate-set evaluator the distributed server maintains per query.
package knn

import (
	"dmknn/internal/container/pq"
	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// BruteForce returns the k nearest states to q in ascending distance
// order, ties broken by id. skip, if non-nil, excludes ids. It is O(n log
// k) and allocation-light; correctness is self-evident, which is why it
// anchors the property tests.
func BruteForce(states []model.ObjectState, q geo.Point, k int, skip map[model.ObjectID]bool) []model.Neighbor {
	if k <= 0 || len(states) == 0 {
		return nil
	}
	best := pq.NewBoundedMax[model.ObjectID](k)
	for i := range states {
		s := &states[i]
		if skip != nil && skip[s.ID] {
			continue
		}
		best.Offer(s.Pos.Dist(q), s.ID)
	}
	dists, ids := best.Drain()
	out := make([]model.Neighbor, len(ids))
	for i := range ids {
		out[i] = model.Neighbor{ID: ids[i], Dist: dists[i]}
	}
	model.SortNeighbors(out)
	return out
}

// CandidateSet is the distributed server's per-query working set: the last
// reported positions of the objects currently known to be relevant to one
// query. It supports the two operations the monitor needs — kNN among
// candidates, and counting candidates within a circle (to decide whether
// the answer can still be complete).
type CandidateSet struct {
	pos map[model.ObjectID]geo.Point
}

// NewCandidateSet returns an empty candidate set.
func NewCandidateSet() *CandidateSet {
	return &CandidateSet{pos: make(map[model.ObjectID]geo.Point)}
}

// Len returns the number of candidates.
func (c *CandidateSet) Len() int { return len(c.pos) }

// Set records (or updates) a candidate's last reported position.
func (c *CandidateSet) Set(id model.ObjectID, p geo.Point) { c.pos[id] = p }

// Remove forgets a candidate. Removing an absent id is a no-op.
func (c *CandidateSet) Remove(id model.ObjectID) { delete(c.pos, id) }

// Has reports whether id is a candidate.
func (c *CandidateSet) Has(id model.ObjectID) bool {
	_, ok := c.pos[id]
	return ok
}

// Position returns the recorded position of id.
func (c *CandidateSet) Position(id model.ObjectID) (geo.Point, bool) {
	p, ok := c.pos[id]
	return p, ok
}

// Clear removes all candidates.
func (c *CandidateSet) Clear() {
	clear(c.pos)
}

// KNN returns the k nearest candidates to q, ascending by distance with
// ties broken by id.
func (c *CandidateSet) KNN(q geo.Point, k int) []model.Neighbor {
	if k <= 0 || len(c.pos) == 0 {
		return nil
	}
	best := pq.NewBoundedMax[model.ObjectID](k)
	for id, p := range c.pos {
		best.Offer(p.Dist(q), id)
	}
	dists, ids := best.Drain()
	out := make([]model.Neighbor, len(ids))
	for i := range ids {
		out[i] = model.Neighbor{ID: ids[i], Dist: dists[i]}
	}
	model.SortNeighbors(out)
	return out
}

// CountWithin returns how many candidates lie inside the circle.
func (c *CandidateSet) CountWithin(circle geo.Circle) int {
	n := 0
	for _, p := range c.pos {
		if circle.Contains(p) {
			n++
		}
	}
	return n
}

// Visit calls fn for every candidate; iteration order is unspecified.
func (c *CandidateSet) Visit(fn func(id model.ObjectID, p geo.Point) bool) {
	for id, p := range c.pos {
		if !fn(id, p) {
			return
		}
	}
}
