package mobility

import (
	"math"
	"sort"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

func cfg(seed int64, vmin, vmax float64) Config {
	return Config{
		World:    geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)),
		MinSpeed: vmin,
		MaxSpeed: vmax,
		Seed:     seed,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{World: geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 10)), MaxSpeed: 1},
		{World: geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), MinSpeed: -1, MaxSpeed: 1},
		{World: geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), MinSpeed: 5, MaxSpeed: 1},
	}
	for i, c := range bad {
		if _, err := NewRandomWaypoint(c, 0); err == nil {
			t.Errorf("case %d: NewRandomWaypoint accepted bad config", i)
		}
		if _, err := NewRandomDirection(c, 10); err == nil {
			t.Errorf("case %d: NewRandomDirection accepted bad config", i)
		}
		if _, err := NewManhattan(c, 100, 0.5); err == nil {
			t.Errorf("case %d: NewManhattan accepted bad config", i)
		}
	}
	if _, err := NewRandomWaypoint(cfg(1, 1, 2), -1); err == nil {
		t.Error("negative pause accepted")
	}
	if _, err := NewRandomDirection(cfg(1, 1, 2), 0); err == nil {
		t.Error("zero mean leg accepted")
	}
	if _, err := NewManhattan(cfg(1, 1, 2), 0, 0.5); err == nil {
		t.Error("zero block accepted")
	}
	if _, err := NewManhattan(cfg(1, 1, 2), 100, 1.5); err == nil {
		t.Error("turn probability > 1 accepted")
	}
}

// checkModel runs generic invariants shared by all models: objects stay in
// the world, ids are 1..n, speeds respect the configured bound, and the
// trajectory is deterministic for a fixed seed.
func checkModel(t *testing.T, mk func(seed int64) Model, vmax float64) {
	t.Helper()
	m := mk(42)
	const n = 200
	states := m.Init(n)
	if len(states) != n {
		t.Fatalf("Init returned %d states", len(states))
	}
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	for i, s := range states {
		if s.ID != model.ObjectID(i+1) {
			t.Fatalf("state %d has id %d", i, s.ID)
		}
		if !world.Contains(s.Pos) {
			t.Fatalf("initial position %v outside world", s.Pos)
		}
	}
	const dt = 1.0
	for step := 0; step < 300; step++ {
		prev := make([]geo.Point, n)
		for i := range states {
			prev[i] = states[i].Pos
		}
		m.Step(states, dt)
		for i := range states {
			if !world.Contains(states[i].Pos) {
				t.Fatalf("step %d: object %d at %v escaped world (%s)",
					step, states[i].ID, states[i].Pos, m.Name())
			}
			moved := prev[i].Dist(states[i].Pos)
			if moved > vmax*dt+1e-6 {
				t.Fatalf("step %d: object %d moved %v > vmax*dt=%v (%s)",
					step, states[i].ID, moved, vmax*dt, m.Name())
			}
			if sp := states[i].Vel.Len(); sp > vmax+1e-6 {
				t.Fatalf("speed %v exceeds vmax %v (%s)", sp, vmax, m.Name())
			}
		}
	}
	// Determinism: same seed, same trajectory.
	m2 := mk(42)
	s2 := m2.Init(n)
	for step := 0; step < 50; step++ {
		m2.Step(s2, dt)
	}
	m3 := mk(42)
	s3 := m3.Init(n)
	for step := 0; step < 50; step++ {
		m3.Step(s3, dt)
	}
	for i := range s2 {
		if s2[i].Pos != s3[i].Pos {
			t.Fatalf("non-deterministic trajectory at object %d: %v vs %v (%s)",
				i, s2[i].Pos, s3[i].Pos, m2.Name())
		}
	}
	// Different seeds should diverge (overwhelmingly likely).
	m4 := mk(43)
	s4 := m4.Init(n)
	same := 0
	for i := range s4 {
		if s4[i].Pos == s3[i].Pos {
			same++
		}
	}
	if same == n {
		t.Fatalf("different seeds produced identical placements (%s)", m4.Name())
	}
}

func TestRandomWaypointInvariants(t *testing.T) {
	checkModel(t, func(seed int64) Model {
		m, err := NewRandomWaypoint(cfg(seed, 5, 20), 0)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 20)
}

func TestRandomWaypointWithPause(t *testing.T) {
	checkModel(t, func(seed int64) Model {
		m, err := NewRandomWaypoint(cfg(seed, 5, 20), 3)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 20)
}

func TestRandomDirectionInvariants(t *testing.T) {
	checkModel(t, func(seed int64) Model {
		m, err := NewRandomDirection(cfg(seed, 5, 20), 15)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 20)
}

func TestManhattanInvariants(t *testing.T) {
	checkModel(t, func(seed int64) Model {
		m, err := NewManhattan(cfg(seed, 5, 20), 100, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 20)
}

func TestRandomWaypointReachesDestinations(t *testing.T) {
	m, err := NewRandomWaypoint(cfg(7, 10, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	states := m.Init(1)
	// Track that the object changes direction at least once over a long
	// horizon (i.e., it reaches waypoints and retargets).
	initial := states[0].Vel
	changed := false
	for step := 0; step < 2000; step++ {
		m.Step(states, 1)
		if states[0].Vel != initial && states[0].Vel.Len() > 0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("object never retargeted over 2000 steps")
	}
}

func TestManhattanStaysOnRoads(t *testing.T) {
	m, err := NewManhattan(cfg(3, 10, 10), 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	states := m.Init(100)
	onRoad := func(p geo.Point) bool {
		offX := math.Mod(p.X, 100)
		offY := math.Mod(p.Y, 100)
		const eps = 1e-6
		return offX < eps || 100-offX < eps || offY < eps || 100-offY < eps
	}
	for i, s := range states {
		if !onRoad(s.Pos) {
			t.Fatalf("initial position %v of object %d is off-road", s.Pos, i)
		}
	}
	for step := 0; step < 500; step++ {
		m.Step(states, 1)
		for i, s := range states {
			if !onRoad(s.Pos) {
				t.Fatalf("step %d: object %d at %v is off-road", step, i, s.Pos)
			}
		}
	}
}

func TestZeroSpeedRange(t *testing.T) {
	// vmin == vmax == 0: objects never move, but models must not hang.
	m, err := NewRandomDirection(cfg(1, 0, 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	states := m.Init(10)
	before := make([]geo.Point, len(states))
	for i := range states {
		before[i] = states[i].Pos
	}
	for step := 0; step < 10; step++ {
		m.Step(states, 1)
	}
	for i := range states {
		if states[i].Pos != before[i] {
			t.Fatalf("zero-speed object %d moved", i)
		}
	}
}

func TestModelNames(t *testing.T) {
	w, _ := NewRandomWaypoint(cfg(1, 1, 2), 0)
	d, _ := NewRandomDirection(cfg(1, 1, 2), 10)
	mh, _ := NewManhattan(cfg(1, 1, 2), 100, 0.5)
	for _, m := range []Model{w, d, mh} {
		if m.Name() == "" {
			t.Error("empty model name")
		}
	}
}

func TestHotspotInvariants(t *testing.T) {
	checkModel(t, func(seed int64) Model {
		m, err := NewHotspot(cfg(seed, 5, 20), 4, 50, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}, 20)
}

func TestHotspotValidation(t *testing.T) {
	good := cfg(1, 1, 2)
	if _, err := NewHotspot(good, 0, 50, 0.2); err == nil {
		t.Error("zero hotspots accepted")
	}
	if _, err := NewHotspot(good, 3, 0, 0.2); err == nil {
		t.Error("zero spread accepted")
	}
	if _, err := NewHotspot(good, 3, 50, 1.5); err == nil {
		t.Error("background > 1 accepted")
	}
	if _, err := NewHotspot(cfg(1, 5, 1), 3, 50, 0.2); err == nil {
		t.Error("bad speed range accepted")
	}
}

// The point of the model: the population must actually be skewed — the
// densest tenth of the world should hold far more than a tenth of the
// objects.
func TestHotspotIsActuallySkewed(t *testing.T) {
	m, err := NewHotspot(cfg(9, 5, 20), 3, 40, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	states := m.Init(n)
	for i := 0; i < 200; i++ {
		m.Step(states, 1)
	}
	// Count objects per 10x10 bucket and take the top decile of buckets.
	counts := map[[2]int]int{}
	for _, s := range states {
		counts[[2]int{int(s.Pos.X / 100), int(s.Pos.Y / 100)}]++
	}
	all := make([]int, 0, 100)
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := 0
	for i := 0; i < len(all) && i < 10; i++ {
		top += all[i]
	}
	if frac := float64(top) / n; frac < 0.4 {
		t.Errorf("top-decile buckets hold only %.0f%% of objects — not skewed", frac*100)
	}
	// Uniform waypoint for contrast must be well below that.
	u, err := NewRandomWaypoint(cfg(9, 5, 20), 0)
	if err != nil {
		t.Fatal(err)
	}
	us := u.Init(n)
	for i := 0; i < 200; i++ {
		u.Step(us, 1)
	}
	counts = map[[2]int]int{}
	for _, s := range us {
		counts[[2]int{int(s.Pos.X / 100), int(s.Pos.Y / 100)}]++
	}
	all = all[:0]
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	utop := 0
	for i := 0; i < len(all) && i < 10; i++ {
		utop += all[i]
	}
	if float64(utop)/n > float64(top)/n {
		t.Error("uniform population more skewed than hotspot population")
	}
}
