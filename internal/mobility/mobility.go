// Package mobility generates synthetic movement for the data objects and
// query focal points. It stands in for the proprietary road-network trace
// generators (Brinkhoff-style) used by the original evaluation: the three
// models below expose the same knobs the paper's experiments sweep —
// population size, maximum speed, and turn behavior — which is what the
// communication-cost results depend on.
//
// Models:
//
//   - RandomWaypoint: pick a destination uniformly, travel to it at a
//     uniform speed in [vmin, vmax], pause, repeat. The classic mobile-
//     computing workload.
//   - RandomDirection: pick a heading and a speed, travel until a timer
//     expires or the border reflects the object.
//   - Manhattan: objects move along the edges of a uniform road grid,
//     turning at intersections with configurable probability — a cheap
//     synthetic substitute for road-network traces.
//
// All models are deterministic given a seed, so experiments are exactly
// reproducible and every method in a comparison sees the identical object
// trajectories.
//
// Because every model draws from a single per-model RNG stream shared by
// all objects, Step must advance the whole population serially: splitting
// the objects across goroutines would reorder the draws and change the
// trajectories. The simulation loop therefore keeps motion stepping
// single-threaded and parallelizes elsewhere (see internal/sim).
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// Model evolves a population of moving objects in discrete time steps.
// Implementations own any per-object bookkeeping (waypoints, timers, road
// positions) indexed alongside the state slice they were initialized with.
type Model interface {
	// Init places n objects in the world and returns their initial
	// kinematic states. Object ids are 1..n.
	Init(n int) []model.ObjectState
	// Step advances every state by dt time units, in place.
	Step(states []model.ObjectState, dt float64)
	// Name identifies the model in experiment output.
	Name() string
}

// Config carries the knobs shared by all models.
type Config struct {
	World    geo.Rect
	MinSpeed float64 // m/s; must be >= 0
	MaxSpeed float64 // m/s; must be >= MinSpeed
	Seed     int64
}

func (c Config) validate() error {
	if c.World.Width() <= 0 || c.World.Height() <= 0 {
		return fmt.Errorf("mobility: degenerate world %v", c.World)
	}
	if c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed {
		return fmt.Errorf("mobility: bad speed range [%v, %v]", c.MinSpeed, c.MaxSpeed)
	}
	return nil
}

func (c Config) speed(rng *rand.Rand) float64 {
	if c.MaxSpeed == c.MinSpeed {
		return c.MaxSpeed
	}
	return c.MinSpeed + rng.Float64()*(c.MaxSpeed-c.MinSpeed)
}

func (c Config) point(rng *rand.Rand) geo.Point {
	return geo.Pt(
		c.World.Min.X+rng.Float64()*c.World.Width(),
		c.World.Min.Y+rng.Float64()*c.World.Height(),
	)
}

// ---------------------------------------------------------------------------
// Random waypoint

// RandomWaypoint implements the random-waypoint model.
type RandomWaypoint struct {
	cfg   Config
	rng   *rand.Rand
	Pause float64 // pause duration at each waypoint, time units
	state []waypointState
}

type waypointState struct {
	dest     geo.Point
	pauseRem float64
}

// NewRandomWaypoint returns a random-waypoint model. pause is the dwell
// time at each reached waypoint (0 for continuous motion).
func NewRandomWaypoint(cfg Config, pause float64) (*RandomWaypoint, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pause < 0 {
		return nil, fmt.Errorf("mobility: negative pause %v", pause)
	}
	return &RandomWaypoint{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), Pause: pause}, nil
}

// Name implements Model.
func (m *RandomWaypoint) Name() string { return "random-waypoint" }

// Init implements Model.
func (m *RandomWaypoint) Init(n int) []model.ObjectState {
	states := make([]model.ObjectState, n)
	m.state = make([]waypointState, n)
	for i := range states {
		pos := m.cfg.point(m.rng)
		states[i] = model.ObjectState{ID: model.ObjectID(i + 1), Pos: pos}
		m.retarget(&states[i], &m.state[i])
	}
	return states
}

func (m *RandomWaypoint) retarget(s *model.ObjectState, w *waypointState) {
	w.dest = m.cfg.point(m.rng)
	speed := m.cfg.speed(m.rng)
	dir := geo.Vector(w.dest.Sub(s.Pos)).Norm()
	s.Vel = dir.Scale(speed)
}

// Step implements Model.
func (m *RandomWaypoint) Step(states []model.ObjectState, dt float64) {
	for i := range states {
		s, w := &states[i], &m.state[i]
		if w.pauseRem > 0 {
			w.pauseRem -= dt
			if w.pauseRem <= 0 {
				m.retarget(s, w)
			} else {
				s.Vel = geo.Vec(0, 0)
				continue
			}
		}
		remaining := s.Pos.Dist(w.dest)
		travel := s.Vel.Len() * dt
		if travel >= remaining {
			// Arrive exactly, then pause or retarget.
			s.Pos = w.dest
			if m.Pause > 0 {
				w.pauseRem = m.Pause
				s.Vel = geo.Vec(0, 0)
			} else {
				m.retarget(s, w)
			}
			continue
		}
		s.Pos = geo.DeadReckon(s.Pos, s.Vel, dt)
	}
}

// ---------------------------------------------------------------------------
// Random direction

// RandomDirection implements the random-direction model with border
// reflection.
type RandomDirection struct {
	cfg     Config
	rng     *rand.Rand
	MeanLeg float64 // mean leg duration before picking a new heading
	state   []directionState
}

type directionState struct {
	legRem float64
}

// NewRandomDirection returns a random-direction model. meanLeg is the mean
// duration of a straight leg (exponentially distributed).
func NewRandomDirection(cfg Config, meanLeg float64) (*RandomDirection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if meanLeg <= 0 {
		return nil, fmt.Errorf("mobility: non-positive mean leg %v", meanLeg)
	}
	return &RandomDirection{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), MeanLeg: meanLeg}, nil
}

// Name implements Model.
func (m *RandomDirection) Name() string { return "random-direction" }

// Init implements Model.
func (m *RandomDirection) Init(n int) []model.ObjectState {
	states := make([]model.ObjectState, n)
	m.state = make([]directionState, n)
	for i := range states {
		states[i] = model.ObjectState{ID: model.ObjectID(i + 1), Pos: m.cfg.point(m.rng)}
		m.turn(&states[i], &m.state[i])
	}
	return states
}

func (m *RandomDirection) turn(s *model.ObjectState, d *directionState) {
	theta := m.rng.Float64() * 2 * math.Pi
	speed := m.cfg.speed(m.rng)
	s.Vel = geo.Vec(math.Cos(theta), math.Sin(theta)).Scale(speed)
	d.legRem = m.rng.ExpFloat64() * m.MeanLeg
}

// Step implements Model.
func (m *RandomDirection) Step(states []model.ObjectState, dt float64) {
	for i := range states {
		s, d := &states[i], &m.state[i]
		d.legRem -= dt
		if d.legRem <= 0 {
			m.turn(s, d)
		}
		p := geo.DeadReckon(s.Pos, s.Vel, dt)
		s.Pos, s.Vel = geo.ReflectInto(p, s.Vel, m.cfg.World)
	}
}

// ---------------------------------------------------------------------------
// Manhattan road grid

// Manhattan moves objects along the edges of a uniform road grid with
// blocks of the given size; at each intersection the object continues
// straight with probability 1-TurnProb, else turns left or right with
// equal probability.
type Manhattan struct {
	cfg      Config
	rng      *rand.Rand
	Block    float64 // road spacing, meters
	TurnProb float64
	state    []manhattanState
}

type manhattanState struct {
	// heading is a unit axis vector: one of (±1,0), (0,±1).
	heading geo.Vector
	speed   float64
	// distance remaining to the next intersection along heading.
	toNext float64
}

// NewManhattan returns a Manhattan road-grid model.
func NewManhattan(cfg Config, block, turnProb float64) (*Manhattan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if block <= 0 {
		return nil, fmt.Errorf("mobility: non-positive block %v", block)
	}
	if turnProb < 0 || turnProb > 1 {
		return nil, fmt.Errorf("mobility: turn probability %v outside [0,1]", turnProb)
	}
	return &Manhattan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), Block: block, TurnProb: turnProb}, nil
}

// Name implements Model.
func (m *Manhattan) Name() string { return "manhattan" }

var headings = []geo.Vector{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}

// Init implements Model.
func (m *Manhattan) Init(n int) []model.ObjectState {
	states := make([]model.ObjectState, n)
	m.state = make([]manhattanState, n)
	for i := range states {
		// Snap a random point onto the road network: keep one coordinate,
		// snap the other to the nearest road line.
		p := m.cfg.point(m.rng)
		if m.rng.Intn(2) == 0 {
			p.Y = m.snap(p.Y, m.cfg.World.Min.Y)
		} else {
			p.X = m.snap(p.X, m.cfg.World.Min.X)
		}
		h := headings[m.rng.Intn(len(headings))]
		// Heading must run along the road the object is on.
		onHorizontal := math.Mod(p.Y-m.cfg.World.Min.Y, m.Block) == 0
		if onHorizontal && h.X == 0 {
			h = headings[m.rng.Intn(2)] // force ±x
		} else if !onHorizontal && h.Y == 0 {
			h = headings[2+m.rng.Intn(2)] // force ±y
		}
		st := &m.state[i]
		st.heading = h
		st.speed = m.cfg.speed(m.rng)
		st.toNext = m.distToNextIntersection(p, h)
		states[i] = model.ObjectState{ID: model.ObjectID(i + 1), Pos: p, Vel: h.Scale(st.speed)}
	}
	return states
}

func (m *Manhattan) snap(v, min float64) float64 {
	return min + math.Round((v-min)/m.Block)*m.Block
}

func (m *Manhattan) distToNextIntersection(p geo.Point, h geo.Vector) float64 {
	var along, min float64
	if h.X != 0 {
		along, min = p.X, m.cfg.World.Min.X
	} else {
		along, min = p.Y, m.cfg.World.Min.Y
	}
	off := math.Mod(along-min, m.Block)
	if off < 0 {
		off += m.Block
	}
	if h.X > 0 || h.Y > 0 {
		d := m.Block - off
		if d == 0 {
			d = m.Block
		}
		return d
	}
	if off == 0 {
		return m.Block
	}
	return off
}

// Step implements Model.
func (m *Manhattan) Step(states []model.ObjectState, dt float64) {
	for i := range states {
		s, st := &states[i], &m.state[i]
		travel := st.speed * dt
		for travel > 0 {
			if travel < st.toNext {
				s.Pos = s.Pos.Add(st.heading.Scale(travel))
				st.toNext -= travel
				break
			}
			// Reach the intersection, maybe turn.
			s.Pos = s.Pos.Add(st.heading.Scale(st.toNext))
			travel -= st.toNext
			st.heading = m.chooseHeading(s.Pos, st.heading)
			st.toNext = m.distToNextIntersection(s.Pos, st.heading)
		}
		// Guard against float drift accumulating past the border.
		s.Pos = m.cfg.World.Clamp(s.Pos)
		s.Vel = st.heading.Scale(st.speed)
	}
}

func (m *Manhattan) chooseHeading(p geo.Point, h geo.Vector) geo.Vector {
	if m.rng.Float64() < m.TurnProb {
		// Turn left or right: swap axes.
		if h.X != 0 {
			if m.rng.Intn(2) == 0 {
				h = geo.Vec(0, 1)
			} else {
				h = geo.Vec(0, -1)
			}
		} else {
			if m.rng.Intn(2) == 0 {
				h = geo.Vec(1, 0)
			} else {
				h = geo.Vec(-1, 0)
			}
		}
	}
	// Border handling: if continuing would exit the world, u-turn.
	next := p.Add(h.Scale(m.Block))
	if !m.cfg.World.Contains(next) {
		h = h.Scale(-1)
	}
	return h
}
