package mobility

import (
	"fmt"
	"math/rand"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// Hotspot implements a skewed random-waypoint model: destinations are
// drawn from Gaussian clusters around a fixed set of hotspot centers
// (with a small uniform background), producing the dense-downtown /
// sparse-suburb population shape that stresses uniform spatial indexes.
// Everything else matches RandomWaypoint.
type Hotspot struct {
	cfg     Config
	rng     *rand.Rand
	centers []geo.Point
	// Spread is the Gaussian σ of each cluster, meters.
	Spread float64
	// Background is the probability of a uniform destination instead of
	// a cluster one.
	Background float64
	state      []waypointState
}

// NewHotspot returns a hotspot model with n cluster centers placed
// uniformly at construction (fixed thereafter), Gaussian spread σ, and
// the given uniform-background probability.
func NewHotspot(cfg Config, nCenters int, spread, background float64) (*Hotspot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if nCenters <= 0 {
		return nil, fmt.Errorf("mobility: need at least one hotspot, got %d", nCenters)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("mobility: non-positive spread %v", spread)
	}
	if background < 0 || background > 1 {
		return nil, fmt.Errorf("mobility: background probability %v outside [0,1]", background)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]geo.Point, nCenters)
	for i := range centers {
		centers[i] = cfg.point(rng)
	}
	return &Hotspot{
		cfg:        cfg,
		rng:        rng,
		centers:    centers,
		Spread:     spread,
		Background: background,
	}, nil
}

// Name implements Model.
func (m *Hotspot) Name() string { return "hotspot" }

// destination draws a skewed waypoint.
func (m *Hotspot) destination() geo.Point {
	if m.rng.Float64() < m.Background {
		return m.cfg.point(m.rng)
	}
	c := m.centers[m.rng.Intn(len(m.centers))]
	p := geo.Pt(
		c.X+m.rng.NormFloat64()*m.Spread,
		c.Y+m.rng.NormFloat64()*m.Spread,
	)
	return m.cfg.World.Clamp(p)
}

// Init implements Model: objects start at skewed destinations.
func (m *Hotspot) Init(n int) []model.ObjectState {
	states := make([]model.ObjectState, n)
	m.state = make([]waypointState, n)
	for i := range states {
		states[i] = model.ObjectState{ID: model.ObjectID(i + 1), Pos: m.destination()}
		m.retarget(&states[i], &m.state[i])
	}
	return states
}

func (m *Hotspot) retarget(s *model.ObjectState, w *waypointState) {
	w.dest = m.destination()
	speed := m.cfg.speed(m.rng)
	dir := geo.Vector(w.dest.Sub(s.Pos)).Norm()
	s.Vel = dir.Scale(speed)
}

// Step implements Model (identical leg mechanics to RandomWaypoint,
// without pausing).
func (m *Hotspot) Step(states []model.ObjectState, dt float64) {
	for i := range states {
		s, w := &states[i], &m.state[i]
		remaining := s.Pos.Dist(w.dest)
		travel := s.Vel.Len() * dt
		if travel >= remaining {
			s.Pos = w.dest
			m.retarget(s, w)
			continue
		}
		s.Pos = geo.DeadReckon(s.Pos, s.Vel, dt)
	}
}

var _ Model = (*Hotspot)(nil)
