package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dmknn/internal/obs"
	"dmknn/internal/workload"
)

// The golden-table invariant: refactors of the simulation medium and the
// server hot paths must leave every zero-fault experiment table (and the
// deterministic faulted fig18, which uses burst loss but neither jitter
// nor duplication) byte-identical. The files under testdata/golden were
// produced by the pre-refactor linear fan-out and full-queue-partition
// network; regenerate deliberately with
//
//	go test ./internal/exp -run TestGoldenTables -update-golden
//
// only when an intentional behavior change is being made.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current implementation")

// goldenProfile pins a small deterministic slice of the evaluation grid.
// It must never change: the goldens lock the rendered output bit-for-bit.
func goldenProfile() Profile {
	p := SmokeProfile()
	p.Base.Ticks = 20
	p.Base.Warmup = 5
	p.Base.NumObjects = 250
	p.Base.NumQueries = 4
	p.Ns = []int{150, 300}
	p.Ks = []int{1, 5}
	p.Qs = []int{1, 8}
	p.Losses = []float64{0, 0.05}
	p.BurstLosses = []float64{0, 0.10}
	p.Mobilities = []string{workload.ModelWaypoint, workload.ModelManhattan}
	return p
}

// goldenExperiments picks the experiments whose tables exercise the
// broadcast fan-out, the delivery queue, and both answer paths (full and
// delta): population scaling, query scaling (many concurrent regions),
// independent loss, bursty loss with delta answers, and mobility.
// Wall-clock experiments are excluded — their values are not
// deterministic.
func goldenExperiments(p Profile) []*Experiment {
	return []*Experiment{
		p.Fig5ObjectScaling(),
		p.Fig11QueryScaling(),
		p.Fig17LossRobustness(),
		p.Fig18BurstLoss(),
		p.Table4Mobility(),
	}
}

func TestGoldenTables(t *testing.T) {
	p := goldenProfile()
	for _, e := range goldenExperiments(p) {
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got := tbl.Render() + "\n" + tbl.CSV()
		path := filepath.Join("testdata", "golden", e.ID+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-golden): %v", e.ID, err)
		}
		if got != string(want) {
			t.Errorf("%s: table differs from golden\n--- got\n%s\n--- want\n%s", e.ID, got, want)
		}
	}
}

// The observability layer must be a pure tap: attaching a trace sink and
// turning on histogram collection draws no randomness and reorders no
// protocol step, so every golden table stays byte-identical with tracing
// enabled. This is the tracing-correctness contract — a tracer that
// perturbs the run it observes is worse than none.
func TestGoldenTablesUnchangedByTracing(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens being rewritten")
	}
	p := goldenProfile()
	rec := obs.NewRecorder(0)
	for _, e := range goldenExperiments(p) {
		for i := range e.Points {
			e.Points[i].Config.Trace = rec
			e.Points[i].Config.Observe = true
		}
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got := tbl.Render() + "\n" + tbl.CSV()
		want, err := os.ReadFile(filepath.Join("testdata", "golden", e.ID+".golden"))
		if err != nil {
			t.Fatalf("%s: missing golden: %v", e.ID, err)
		}
		if got != string(want) {
			t.Errorf("%s: tracing perturbed the table\n--- got\n%s\n--- want\n%s", e.ID, got, want)
		}
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no events — tracing was not actually wired")
	}
	for _, ev := range []obs.EventType{obs.EvProbe, obs.EvInstalled, obs.EvReportSent, obs.EvNetDeliver} {
		if rec.Count(ev) == 0 {
			t.Errorf("no %s events recorded", ev)
		}
	}
}
