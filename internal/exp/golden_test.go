package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dmknn/internal/workload"
)

// The golden-table invariant: refactors of the simulation medium and the
// server hot paths must leave every zero-fault experiment table (and the
// deterministic faulted fig18, which uses burst loss but neither jitter
// nor duplication) byte-identical. The files under testdata/golden were
// produced by the pre-refactor linear fan-out and full-queue-partition
// network; regenerate deliberately with
//
//	go test ./internal/exp -run TestGoldenTables -update-golden
//
// only when an intentional behavior change is being made.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current implementation")

// goldenProfile pins a small deterministic slice of the evaluation grid.
// It must never change: the goldens lock the rendered output bit-for-bit.
func goldenProfile() Profile {
	p := SmokeProfile()
	p.Base.Ticks = 20
	p.Base.Warmup = 5
	p.Base.NumObjects = 250
	p.Base.NumQueries = 4
	p.Ns = []int{150, 300}
	p.Ks = []int{1, 5}
	p.Qs = []int{1, 8}
	p.Losses = []float64{0, 0.05}
	p.BurstLosses = []float64{0, 0.10}
	p.Mobilities = []string{workload.ModelWaypoint, workload.ModelManhattan}
	return p
}

// goldenExperiments picks the experiments whose tables exercise the
// broadcast fan-out, the delivery queue, and both answer paths (full and
// delta): population scaling, query scaling (many concurrent regions),
// independent loss, bursty loss with delta answers, and mobility.
// Wall-clock experiments are excluded — their values are not
// deterministic.
func goldenExperiments(p Profile) []*Experiment {
	return []*Experiment{
		p.Fig5ObjectScaling(),
		p.Fig11QueryScaling(),
		p.Fig17LossRobustness(),
		p.Fig18BurstLoss(),
		p.Table4Mobility(),
	}
}

func TestGoldenTables(t *testing.T) {
	p := goldenProfile()
	for _, e := range goldenExperiments(p) {
		tbl, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		got := tbl.Render() + "\n" + tbl.CSV()
		path := filepath.Join("testdata", "golden", e.ID+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-golden): %v", e.ID, err)
		}
		if got != string(want) {
			t.Errorf("%s: table differs from golden\n--- got\n%s\n--- want\n%s", e.ID, got, want)
		}
	}
}
