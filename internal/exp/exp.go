// Package exp is the experiment harness: it enumerates the reconstructed
// evaluation grid from DESIGN.md (figures 5-12, tables 2-4), runs every
// (method × sweep-point) cell on the simulation engine, and renders the
// result tables that EXPERIMENTS.md records.
//
// Two profiles exist: the paper-scale Full profile (tens of thousands of
// objects, hundreds of ticks — minutes of wall clock) used by
// cmd/dknn-bench, and the Smoke profile used by the repository benchmarks
// so that `go test -bench` exercises every experiment quickly.
package exp

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dmknn/internal/balance"
	"dmknn/internal/baseline"
	"dmknn/internal/cluster"
	"dmknn/internal/core"
	"dmknn/internal/metrics"
	"dmknn/internal/shard"
	"dmknn/internal/sim"
	"dmknn/internal/simnet"
	"dmknn/internal/workload"
)

// MethodSpec names a method and knows how to build a fresh instance (a
// sim.Method is single-use: it holds per-run state).
type MethodSpec struct {
	Name  string
	Build func() (sim.Method, error)
}

// DKNN returns the distributed method spec with the given protocol
// configuration.
func DKNN(cfg core.Config) MethodSpec {
	return MethodSpec{Name: "DKNN", Build: func() (sim.Method, error) { return core.New(cfg) }}
}

// DKNNInfluence returns the DKNN spec with influence-driven safe regions
// switched on: installs advertise frontier thresholds and in-boundary
// objects suppress reports that cannot change the answer.
func DKNNInfluence(cfg core.Config) MethodSpec {
	cfg.Influence = true
	return MethodSpec{Name: "DKNN-INF", Build: func() (sim.Method, error) { return core.New(cfg) }}
}

// CP returns the centralized-periodic baseline spec.
func CP() MethodSpec {
	return MethodSpec{Name: "CP", Build: func() (sim.Method, error) { return baseline.NewCP(), nil }}
}

// CI returns the centralized-incremental baseline spec with threshold tau.
func CI(tau float64) MethodSpec {
	return MethodSpec{
		Name:  fmt.Sprintf("CI(τ=%g)", tau),
		Build: func() (sim.Method, error) { return baseline.NewCI(tau) },
	}
}

// CB returns the centralized predictive dead-reckoning baseline spec with
// threshold tau.
func CB(tau float64) MethodSpec {
	return MethodSpec{
		Name:  fmt.Sprintf("CB(τ=%g)", tau),
		Build: func() (sim.Method, error) { return baseline.NewCB(tau) },
	}
}

// Metric extracts one scalar from a run result.
type Metric struct {
	Name string
	Fn   func(*sim.Result) float64
}

// The metrics the evaluation reports.
var (
	MetricUplink = Metric{"uplink/tick", func(r *sim.Result) float64 { return r.UplinkPerTick() }}
	MetricDown   = Metric{"down+bcast/tick", func(r *sim.Result) float64 { return r.DownlinkPerTick() }}
	MetricServer = Metric{"server µs/tick", func(r *sim.Result) float64 { return r.ServerUS.Mean() }}
	MetricExact  = Metric{"exactness", func(r *sim.Result) float64 { return r.Audit.Exactness() }}
	MetricRecall = Metric{"mean recall", func(r *sim.Result) float64 { return r.Audit.MeanRecall() }}
	MetricRadErr = Metric{"radius err", func(r *sim.Result) float64 { return r.Audit.MeanRadiusError() }}
	// MetricLink and MetricHandoff read the federation counters a
	// clustered method exposes through sim.ExtraReporter; both are zero
	// for single-server methods.
	MetricLink = Metric{"link msgs/tick", func(r *sim.Result) float64 {
		return r.Extra["link_sent"] / float64(r.Config.Ticks)
	}}
	MetricHandoff = Metric{"handoffs", func(r *sim.Result) float64 {
		return r.Extra["object_handoffs"] + r.Extra["query_handoffs"]
	}}
	// MetricLoadCV is the coefficient of variation (stddev/mean) of the
	// federation nodes' measured-phase busy time, read from the per-node
	// counters a clustered method exports — 0 means a perfectly even
	// load, and 0 for single-server methods.
	MetricLoadCV = Metric{"load cv", func(r *sim.Result) float64 {
		var busy []float64
		for i := 0; ; i++ {
			v, ok := r.Extra[fmt.Sprintf("node%d_busy_us", i)]
			if !ok {
				break
			}
			busy = append(busy, v)
		}
		if len(busy) < 2 {
			return 0
		}
		var mean float64
		for _, v := range busy {
			mean += v
		}
		mean /= float64(len(busy))
		if mean == 0 {
			return 0
		}
		var ss float64
		for _, v := range busy {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss/float64(len(busy))) / mean
	}}
	// MetricMoves counts the balancer's applied column moves (0 for
	// static partitions).
	MetricMoves = Metric{"col moves", func(r *sim.Result) float64 {
		return r.Extra["column_moves"]
	}}
	// The staleness and report-gap metrics read the observability
	// histograms a run collects when its config sets Observe; they are
	// zero when observation is off. Quantiles come from fixed histogram
	// bucket bounds, so the rendered tables stay deterministic.
	MetricStaleP50  = Metric{"stale p50", histQuantile(staleHist, 0.50)}
	MetricStaleP90  = Metric{"stale p90", histQuantile(staleHist, 0.90)}
	MetricStaleP99  = Metric{"stale p99", histQuantile(staleHist, 0.99)}
	MetricStaleMean = Metric{"stale mean", func(r *sim.Result) float64 {
		if r.Staleness == nil {
			return 0
		}
		return r.Staleness.Mean()
	}}
	MetricGapP90 = Metric{"report gap p90", histQuantile(gapHist, 0.90)}
	// MetricServLatP99 is the tail of the per-tick server processing
	// time distribution (microseconds) — the latency view of the shard
	// scaling story, where the mean (MetricServer) can hide stalls.
	MetricServLatP99 = Metric{"server p99 µs", histQuantile(servLatHist, 0.99)}
)

func staleHist(r *sim.Result) *metrics.Histogram   { return r.Staleness }
func gapHist(r *sim.Result) *metrics.Histogram     { return r.ReportGaps }
func servLatHist(r *sim.Result) *metrics.Histogram { return r.ServerLatencyUS }

// histQuantile builds a metric function reading quantile p of one of a
// result's observability histograms.
func histQuantile(get func(*sim.Result) *metrics.Histogram, p float64) func(*sim.Result) float64 {
	return func(r *sim.Result) float64 {
		h := get(r)
		if h == nil {
			return 0
		}
		return h.Quantile(p)
	}
}

// Point is one x-axis value of a sweep: a label and the fully built
// simulation configuration for it.
type Point struct {
	Label  string
	Config sim.Config
}

// Experiment is one figure or table: a sweep crossed with methods and
// metrics.
type Experiment struct {
	ID      string // e.g. "fig5"
	Title   string
	XLabel  string
	Points  []Point
	Methods []MethodSpec
	Metrics []Metric
	// Seeds > 1 repeats every cell with distinct workload seeds and
	// reports the mean, which removes single-trajectory noise from the
	// tables.
	Seeds int
	// Workers bounds the worker pool the (method × point × seed) cells
	// run on: 0 means runtime.GOMAXPROCS, 1 runs the cells inline.
	// Every cell is an independent sim.Run with its own seeded RNGs, so
	// the rendered table is byte-identical for every worker count.
	Workers int
	// Serial forces the cells to run one at a time regardless of
	// Workers. Experiments that report wall-clock quantities
	// (sim.Result.ServerUS, Elapsed) declare it so sibling runs on
	// other cores cannot perturb their timings.
	Serial bool
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string // method×metric column headers
	Rows    []Row
}

// Row is one sweep point's measurements.
type Row struct {
	Label  string
	Values []float64
}

// Run executes every (point × method × seed) cell of the experiment on a
// bounded worker pool and aggregates the results in enumeration order.
// Each cell is a fully independent sim.Run — it builds its own method
// instance and derives its own config seed — so the returned table is
// byte-identical to a sequential execution for every worker count.
// Serial experiments (and Workers == 1) keep the cells strictly
// sequential so wall-clock metrics are not perturbed by sibling runs.
func (e *Experiment) Run() (*Table, error) {
	t := &Table{ID: e.ID, Title: e.Title, XLabel: e.XLabel}
	for _, m := range e.Methods {
		for _, metric := range e.Metrics {
			if len(e.Metrics) == 1 {
				t.Columns = append(t.Columns, m.Name)
			} else {
				t.Columns = append(t.Columns, m.Name+" "+metric.Name)
			}
		}
	}
	seeds := e.Seeds
	if seeds < 1 {
		seeds = 1
	}

	// Cell ci = ((pi × methods) + mi) × seeds + rep.
	nM := len(e.Methods)
	cells := len(e.Points) * nM * seeds
	values := make([][]float64, cells) // metric values per cell
	errs := make([]error, cells)
	var failed atomic.Bool
	runCell := func(ci int) {
		rep := ci % seeds
		mi := ci / seeds % nM
		pi := ci / seeds / nM
		m, pt := e.Methods[mi], e.Points[pi]
		method, err := m.Build()
		if err != nil {
			errs[ci] = fmt.Errorf("exp %s: build %s: %w", e.ID, m.Name, err)
			failed.Store(true)
			return
		}
		cfg := pt.Config
		cfg.Seed += int64(rep) * 1000003
		res, err := sim.Run(cfg, method)
		if err != nil {
			errs[ci] = fmt.Errorf("exp %s: run %s @ %s: %w", e.ID, m.Name, pt.Label, err)
			failed.Store(true)
			return
		}
		vals := make([]float64, len(e.Metrics))
		for i, metric := range e.Metrics {
			vals[i] = metric.Fn(res)
		}
		values[ci] = vals
	}

	if workers := e.workers(cells); workers <= 1 {
		for ci := 0; ci < cells && !failed.Load(); ci++ {
			runCell(ci)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= cells || failed.Load() {
						return
					}
					runCell(ci)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Aggregate in enumeration order: mean over seeds per (point, method).
	ci := 0
	for pi := range e.Points {
		row := Row{Label: e.Points[pi].Label}
		for mi := 0; mi < nM; mi++ {
			sums := make([]float64, len(e.Metrics))
			for rep := 0; rep < seeds; rep++ {
				for i, v := range values[ci] {
					sums[i] += v
				}
				ci++
			}
			for i := range sums {
				row.Values = append(row.Values, sums[i]/float64(seeds))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// workers resolves the effective worker-pool size for this experiment.
func (e *Experiment) workers(cells int) int {
	if e.Serial {
		return 1
	}
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	return w
}

// Render formats the table as fixed-width text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %16.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown formats the table as a GitHub-flavored markdown table. Pipes
// in labels and method names (e.g. a method named "A|B") are escaped so
// they cannot break the cell structure.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |", mdEscape(t.XLabel))
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", mdEscape(c))
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", mdEscape(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %.2f |", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// mdEscape neutralizes characters that would break a markdown table
// cell: pipes are backslash-escaped and newlines become spaces.
func mdEscape(s string) string {
	if !strings.ContainsAny(s, "|\n") {
		return s
	}
	s = strings.ReplaceAll(s, "|", `\|`)
	return strings.ReplaceAll(s, "\n", " ")
}

// CSV formats the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Column returns the values of the named column in row order.
func (t *Table) Column(name string) ([]float64, bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[idx]
	}
	return out, true
}

// Profile selects the sweep values and the base configuration for a
// suite. Full is the paper-scale grid; Smoke shrinks it so the whole
// suite runs in seconds.
type Profile struct {
	Base  sim.Config
	Proto core.Config
	CITau float64
	// Workers is the worker-pool size Suite stamps onto every
	// experiment (0 = runtime.GOMAXPROCS). Experiments that measure
	// wall-clock quantities declare Serial and ignore it.
	Workers int
	// CBTau, when positive, adds the predictive dead-reckoning baseline
	// to every comparison (an extension beyond the paper's own two
	// baselines).
	CBTau float64
	Ns    []int
	// LargeNs are the fig19 large-population points. They run audit-free
	// with a short horizon, so they can reach populations (100k+) far
	// beyond what the audited sweeps afford.
	LargeNs    []int
	Ks         []int
	ObjSpeeds  []float64
	QrySpeeds  []float64
	Qs         []int
	Horizons   []int
	Taus       []float64
	Thetas     []float64
	Mobilities []string
	Grids      []int
	Shards     []int
	// Nodes are the federation sizes of the fig20 cluster-scaling sweep
	// (internal/cluster: one spatial partition per node).
	Nodes  []int
	Losses []float64
	// BurstLosses are stationary Gilbert–Elliott loss rates for the
	// burst-loss sweep (fig18); BurstLen is the mean burst length in
	// delivery attempts.
	BurstLosses []float64
	BurstLen    float64
}

// FullProfile is the paper-scale evaluation grid from DESIGN.md §5.
func FullProfile() Profile {
	return Profile{
		Base:        workload.Default(),
		Proto:       core.DefaultConfig(),
		CITau:       50,
		Ns:          []int{5000, 10000, 20000, 40000, 80000},
		LargeNs:     []int{25000, 50000, 100000, 1000000},
		Ks:          []int{1, 5, 10, 20, 50},
		ObjSpeeds:   []float64{5, 10, 20, 40},
		QrySpeeds:   []float64{0, 5, 20, 40},
		Qs:          []int{1, 16, 64, 256, 1024},
		Horizons:    []int{5, 10, 20, 40, 80},
		Taus:        []float64{10, 50, 100, 250},
		Thetas:      []float64{0, 10, 25, 50},
		Mobilities:  []string{workload.ModelWaypoint, workload.ModelDirection, workload.ModelManhattan},
		Grids:       []int{16, 32, 64, 128},
		Shards:      []int{1, 2, 4, 8},
		Nodes:       []int{1, 2, 4, 8},
		Losses:      []float64{0, 0.01, 0.02, 0.05, 0.10},
		BurstLosses: []float64{0, 0.05, 0.10, 0.20, 0.30},
		BurstLen:    8,
	}
}

// SmokeProfile is the same experiment structure at unit-test scale.
func SmokeProfile() Profile {
	base := workload.Quick()
	base.Ticks = 40
	proto := core.DefaultConfig()
	proto.HorizonTicks = 8
	proto.MinProbeRadius = 100
	return Profile{
		Base:        base,
		Proto:       proto,
		CITau:       20,
		CBTau:       20,
		Ns:          []int{300, 600, 1200},
		LargeNs:     []int{10000, 30000, 100000},
		Ks:          []int{1, 5, 10},
		ObjSpeeds:   []float64{5, 10, 20},
		QrySpeeds:   []float64{0, 10, 20},
		Qs:          []int{1, 8, 32},
		Horizons:    []int{4, 8, 16},
		Taus:        []float64{10, 50},
		Thetas:      []float64{0, 10, 50},
		Mobilities:  []string{workload.ModelWaypoint, workload.ModelDirection, workload.ModelManhattan},
		Grids:       []int{8, 16, 32},
		Shards:      []int{1, 4},
		Nodes:       []int{1, 2, 4, 8},
		Losses:      []float64{0, 0.05},
		BurstLosses: []float64{0, 0.10},
		BurstLen:    4,
	}
}

func (p Profile) methods() []MethodSpec {
	ms := []MethodSpec{CP(), CI(p.CITau)}
	if p.CBTau > 0 {
		ms = append(ms, CB(p.CBTau))
	}
	return append(ms, DKNN(p.Proto))
}

// Suite builds every experiment in the reconstructed evaluation, with
// p.Workers stamped onto each one (Serial experiments keep their
// sequential execution regardless).
func Suite(p Profile) []*Experiment {
	es := []*Experiment{
		p.Fig5ObjectScaling(),
		p.Fig6VaryK(),
		p.Fig7ObjectSpeed(),
		p.Fig8QuerySpeed(),
		p.Fig9Downlink(),
		p.Fig10ServerCPU(),
		p.Fig11QueryScaling(),
		p.Fig12SlackAblation(),
		p.Fig13GridResolution(),
		p.Fig14IndexAblation(),
		p.Fig15Skew(),
		p.Fig16ShardScaling(),
		p.Fig17LossRobustness(),
		p.Fig18BurstLoss(),
		p.Fig19LargeScale(),
		p.Fig20ClusterScaling(),
		p.Fig21Staleness(),
		p.Fig22AdaptiveBalance(),
		p.Fig24InfluenceUplink(),
		p.Table3Accuracy(),
		p.Table4Mobility(),
	}
	for _, e := range es {
		e.Workers = p.Workers
	}
	return es
}

// Fig5ObjectScaling: uplink/tick vs object population.
func (p Profile) Fig5ObjectScaling() *Experiment {
	e := &Experiment{
		ID: "fig5", Title: "Uplink messages per tick vs number of objects",
		XLabel: "N", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	for _, n := range p.Ns {
		e.Points = append(e.Points, Point{fmt.Sprint(n), workload.WithObjects(p.Base, n)})
	}
	return e
}

// Fig6VaryK: uplink/tick vs k.
func (p Profile) Fig6VaryK() *Experiment {
	e := &Experiment{
		ID: "fig6", Title: "Uplink messages per tick vs k",
		XLabel: "k", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	for _, k := range p.Ks {
		e.Points = append(e.Points, Point{fmt.Sprint(k), workload.WithK(p.Base, k)})
	}
	return e
}

// Fig7ObjectSpeed: uplink/tick vs maximum object speed.
func (p Profile) Fig7ObjectSpeed() *Experiment {
	e := &Experiment{
		ID: "fig7", Title: "Uplink messages per tick vs object speed",
		XLabel: "Vobj (m/s)", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	for _, v := range p.ObjSpeeds {
		e.Points = append(e.Points, Point{fmt.Sprint(v), workload.WithObjectSpeed(p.Base, v)})
	}
	return e
}

// Fig8QuerySpeed: uplink/tick vs maximum query speed.
func (p Profile) Fig8QuerySpeed() *Experiment {
	e := &Experiment{
		ID: "fig8", Title: "Uplink messages per tick vs query speed",
		XLabel: "Vqry (m/s)", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	for _, v := range p.QrySpeeds {
		e.Points = append(e.Points, Point{fmt.Sprint(v), workload.WithQuerySpeed(p.Base, v)})
	}
	return e
}

// Fig9Downlink: downlink+broadcast transmissions vs object population.
func (p Profile) Fig9Downlink() *Experiment {
	e := &Experiment{
		ID: "fig9", Title: "Downlink+broadcast transmissions per tick vs number of objects",
		XLabel: "N", Methods: p.methods(), Metrics: []Metric{MetricDown},
	}
	for _, n := range p.Ns {
		e.Points = append(e.Points, Point{fmt.Sprint(n), workload.WithObjects(p.Base, n)})
	}
	return e
}

// Fig10ServerCPU: server processing time vs object population.
func (p Profile) Fig10ServerCPU() *Experiment {
	e := &Experiment{
		ID: "fig10", Title: "Server processing time per tick vs number of objects",
		XLabel: "N", Methods: p.methods(), Metrics: []Metric{MetricServer},
		// Wall-clock metric: parallel sibling cells would contend for
		// cores and distort it.
		Serial: true,
	}
	for _, n := range p.Ns {
		e.Points = append(e.Points, Point{fmt.Sprint(n), workload.WithObjects(p.Base, n)})
	}
	return e
}

// Fig11QueryScaling: uplink/tick vs number of concurrent queries.
func (p Profile) Fig11QueryScaling() *Experiment {
	e := &Experiment{
		ID: "fig11", Title: "Uplink messages per tick vs number of queries",
		XLabel: "Q", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	for _, q := range p.Qs {
		e.Points = append(e.Points, Point{fmt.Sprint(q), workload.WithQueries(p.Base, q)})
	}
	return e
}

// Fig12SlackAblation: DKNN uplink and broadcast vs the horizon H.
func (p Profile) Fig12SlackAblation() *Experiment {
	e := &Experiment{
		ID: "fig12", Title: "DKNN cost vs reinstall horizon H (ablation)",
		XLabel: "H (ticks)", Metrics: []Metric{MetricUplink, MetricDown},
	}
	// Horizon varies the *method*, not the workload: encode each H as a
	// method column over a single workload point.
	for _, h := range p.Horizons {
		proto := p.Proto
		proto.HorizonTicks = h
		e.Methods = append(e.Methods, MethodSpec{
			Name:  fmt.Sprintf("DKNN(H=%d)", h),
			Build: func() (sim.Method, error) { return core.New(proto) },
		})
	}
	e.Points = []Point{{"default", p.Base}}
	return e
}

// Fig13GridResolution: sensitivity of cost to the grid cell size — an
// ablation beyond the paper's grid: finer cells shrink broadcast waste
// but add server index work.
func (p Profile) Fig13GridResolution() *Experiment {
	e := &Experiment{
		ID: "fig13", Title: "Cost vs grid resolution (ablation)",
		XLabel:  "grid",
		Methods: []MethodSpec{CP(), DKNN(p.Proto)},
		Metrics: []Metric{MetricUplink, MetricDown, MetricServer},
		Serial:  true, // reports MetricServer (wall-clock)
	}
	base := p.Base
	for _, g := range p.Grids {
		cfg := base
		cfg.Cols, cfg.Rows = g, g
		e.Points = append(e.Points, Point{fmt.Sprintf("%dx%d", g, g), cfg})
	}
	return e
}

// Fig14IndexAblation: the centralized server's cost on the two spatial
// index substrates (uniform grid vs R-tree) as the population scales — an
// ablation beyond the paper's grid.
func (p Profile) Fig14IndexAblation() *Experiment {
	mkCP := func(kind string) MethodSpec {
		return MethodSpec{
			Name:  "CP[" + kind + "]",
			Build: func() (sim.Method, error) { return baseline.NewCPWithIndex(kind) },
		}
	}
	e := &Experiment{
		ID: "fig14", Title: "Server index substrate: grid vs R-tree (ablation)",
		XLabel:  "N",
		Methods: []MethodSpec{mkCP("grid"), mkCP("rtree")},
		Metrics: []Metric{MetricServer, MetricExact},
		Serial:  true, // reports MetricServer (wall-clock)
	}
	for _, n := range p.Ns {
		e.Points = append(e.Points, Point{fmt.Sprint(n), workload.WithObjects(p.Base, n)})
	}
	return e
}

// Fig15Skew: uniform vs hotspot-clustered populations — skew stresses the
// grid-based servers (dense cells) while the distributed protocol's
// regions simply shrink where density is high.
func (p Profile) Fig15Skew() *Experiment {
	mkCP := func(kind string) MethodSpec {
		return MethodSpec{
			Name:  "CP[" + kind + "]",
			Build: func() (sim.Method, error) { return baseline.NewCPWithIndex(kind) },
		}
	}
	e := &Experiment{
		ID: "fig15", Title: "Population skew: uniform vs hotspot clusters (ablation)",
		XLabel:  "population",
		Methods: []MethodSpec{mkCP("grid"), mkCP("rtree"), DKNN(p.Proto)},
		Metrics: []Metric{MetricUplink, MetricServer},
		Serial:  true, // reports MetricServer (wall-clock)
	}
	for _, kind := range []string{workload.ModelWaypoint, workload.ModelHotspot} {
		cfg, err := workload.WithMobility(p.Base, kind)
		if err != nil {
			continue
		}
		e.Points = append(e.Points, Point{kind, cfg})
	}
	return e
}

// Fig16ShardScaling: the server's per-tick critical path as queries are
// partitioned over parallel shards — the "scalable distributed
// processing" extension. The wireless traffic is provably unchanged
// (tested); only the server interior parallelizes.
func (p Profile) Fig16ShardScaling() *Experiment {
	mkShard := func(n int) MethodSpec {
		return MethodSpec{
			Name:  fmt.Sprintf("DKNN[%d shards]", n),
			Build: func() (sim.Method, error) { return shard.NewMethod(n, p.Proto) },
		}
	}
	e := &Experiment{
		ID: "fig16", Title: "Server critical path vs shard count (ablation)",
		XLabel:  "Q",
		Metrics: []Metric{MetricServer, MetricExact},
		// Wall-clock metric, and the sharded server already runs its
		// shards on parallel goroutines inside each cell.
		Serial: true,
	}
	for _, n := range p.Shards {
		e.Methods = append(e.Methods, mkShard(n))
	}
	// Heavier query loads show the parallel speedup.
	qs := p.Qs
	if len(qs) > 3 {
		qs = qs[len(qs)-3:]
	}
	for _, q := range qs {
		e.Points = append(e.Points, Point{fmt.Sprint(q), workload.WithQueries(p.Base, q)})
	}
	return e
}

// Fig17LossRobustness: answer quality under independent message loss on
// all three directions — graceful degradation, not failure. DKNN runs
// with a resync period (the lossy-deployment configuration).
func (p Profile) Fig17LossRobustness() *Experiment {
	proto := p.Proto
	proto.ResyncTicks = 3 * proto.HorizonTicks
	e := &Experiment{
		ID: "fig17", Title: "Answer quality vs message loss (all directions)",
		XLabel:  "loss",
		Methods: []MethodSpec{CI(p.CITau), DKNN(proto)},
		Metrics: []Metric{MetricRecall, MetricUplink},
	}
	for _, loss := range p.Losses {
		cfg := p.Base
		cfg.UplinkLoss = loss
		cfg.DownlinkLoss = loss
		cfg.BroadcastLoss = loss
		e.Points = append(e.Points, Point{fmt.Sprintf("%.0f%%", loss*100), cfg})
	}
	return e
}

// Fig18BurstLoss: answer quality and uplink cost under bursty
// (Gilbert–Elliott) loss on all three directions. DKNN runs the full
// lossy-deployment configuration — delta answers over the sequenced
// stream, client-driven answer-resync, and a periodic resync probe — so
// the sweep measures exactly the recovery machinery this protocol adds
// over independent loss (fig17).
func (p Profile) Fig18BurstLoss() *Experiment {
	proto := p.Proto
	proto.ResyncTicks = 3 * proto.HorizonTicks
	proto.DeltaAnswers = true
	e := &Experiment{
		ID: "fig18", Title: "Answer quality vs bursty loss (Gilbert–Elliott, all directions)",
		XLabel:  "loss",
		Methods: []MethodSpec{CI(p.CITau), DKNN(proto)},
		Metrics: []Metric{MetricRecall, MetricUplink},
	}
	for _, loss := range p.BurstLosses {
		cfg := p.Base
		ge := simnet.BurstLoss(loss, p.BurstLen)
		cfg.Faults = simnet.FaultConfig{UplinkGE: ge, DownlinkGE: ge, BroadcastGE: ge}
		e.Points = append(e.Points, Point{fmt.Sprintf("%.0f%%", loss*100), cfg})
	}
	return e
}

// Fig19LargeScale: per-tick traffic and server wall-clock at populations
// far beyond the paper's sweeps, up to one million objects — feasible
// since the simulated medium resolves broadcast audiences through the
// per-cell client index instead of scanning the whole population per
// message, and since the batched shard pipeline (internal/shard) drains
// a tick's arrivals shard-parallel. Alongside the single-server DKNN the
// sweep runs the batched pipeline at every profile shard count, so the
// server columns show the shard scaling directly at each N; observation
// is on, so the p99 column reads the per-tick server latency histogram,
// not just the mean. Auditing is disabled (maintaining ground truth at
// these populations would dominate the runtime; answer quality at scale
// is covered by table3) and each point runs a short horizon: the
// steady-state per-tick costs are what scale with N, not the duration.
func (p Profile) Fig19LargeScale() *Experiment {
	mkBatched := func(n int) MethodSpec {
		return MethodSpec{
			Name:  fmt.Sprintf("DKNN[%d shards, batched]", n),
			Build: func() (sim.Method, error) { return shard.NewBatchedMethod(n, p.Proto) },
		}
	}
	e := &Experiment{
		ID: "fig19", Title: "Large-population scaling: traffic and server time (audit-free)",
		XLabel:  "N",
		Methods: []MethodSpec{CI(p.CITau), DKNN(p.Proto)},
		Metrics: []Metric{MetricUplink, MetricDown, MetricServer, MetricServLatP99},
		Serial:  true, // reports MetricServer (wall-clock)
	}
	for _, n := range p.Shards {
		e.Methods = append(e.Methods, mkBatched(n))
	}
	for _, n := range p.LargeNs {
		cfg := workload.WithObjects(p.Base, n)
		cfg.Ticks = 12
		cfg.Warmup = 3
		cfg.DisableAudit = true
		cfg.Observe = true
		e.Points = append(e.Points, Point{fmt.Sprint(n), cfg})
	}
	return e
}

// Fig20ClusterScaling: the spatially partitioned federation
// (internal/cluster) as the node count grows — per-node server time
// falls with the partition while the inter-node link and the boundary
// handoffs are the price paid for it. The link is ideal (zero latency,
// no loss), so the answers stay exact at every node count: the
// exactness column is the invariant, the other columns are the
// scaling story.
func (p Profile) Fig20ClusterScaling() *Experiment {
	mkCluster := func(n int) MethodSpec {
		return MethodSpec{
			Name: fmt.Sprintf("DKNN[%d nodes]", n),
			Build: func() (sim.Method, error) {
				return cluster.NewMethod(n, p.Proto, cluster.LinkConfig{})
			},
		}
	}
	e := &Experiment{
		ID: "fig20", Title: "Federation scaling: per-node server time, link traffic, handoffs",
		XLabel:  "N",
		Metrics: []Metric{MetricServer, MetricLink, MetricHandoff, MetricExact},
		// Wall-clock metric, and the nodes already tick on parallel
		// goroutines inside each cell.
		Serial: true,
	}
	for _, n := range p.Nodes {
		e.Methods = append(e.Methods, mkCluster(n))
	}
	for _, n := range p.Ns {
		e.Points = append(e.Points, Point{fmt.Sprint(n), workload.WithObjects(p.Base, n)})
	}
	return e
}

// Fig21Staleness: the client-observed answer staleness distribution as
// message loss grows — the observability layer's histograms turned into
// a sweep. Every measured tick samples now − answer.At per query (how
// old the answer the user currently sees is), and the uplink
// inter-report gap histogram is fed from the trace stream; the reported
// quantiles are histogram bucket bounds over integer tick samples, so
// the table is deterministic. The recall column (fig17) says how often
// the answer is right; this one says how long it takes to become right
// again after loss knocks it stale. DKNN runs the lossy-deployment
// configuration. Single-server only: under loss the federation's
// parallel node ticks enqueue sends in scheduler order, which permutes
// the loss RNG draws — a lossy federation run is not reproducible, so
// it has no place in a rendered table.
func (p Profile) Fig21Staleness() *Experiment {
	proto := p.Proto
	proto.ResyncTicks = 3 * proto.HorizonTicks
	e := &Experiment{
		ID: "fig21", Title: "Answer staleness and report-gap distributions vs message loss",
		XLabel:  "loss",
		Methods: []MethodSpec{DKNN(proto), DKNNInfluence(proto)},
		Metrics: []Metric{MetricStaleP50, MetricStaleP90, MetricStaleP99, MetricStaleMean, MetricGapP90},
	}
	for _, loss := range p.Losses {
		cfg := p.Base
		cfg.UplinkLoss = loss
		cfg.DownlinkLoss = loss
		cfg.BroadcastLoss = loss
		cfg.Observe = true
		e.Points = append(e.Points, Point{fmt.Sprintf("%.0f%%", loss*100), cfg})
	}
	return e
}

// Fig22AdaptiveBalance: adaptive partitioning (internal/balance) against
// the static even split under hotspot-clustered skew, for each
// federation size. The static strips leave the hotspot node doing nearly
// all the work; the balancer shifts boundary columns toward it, so the
// load-CV column (stddev/mean of per-node busy time) and the server p99
// tail should both fall — while the exactness column pins the migration
// invariant: every audited answer stays exact on the very ticks columns
// move. The link is ideal (zero latency, no loss), matching fig20.
func (p Profile) Fig22AdaptiveBalance() *Experiment {
	bcfg := balance.Config{IntervalTicks: 8, MinGain: 0.02}
	mkStatic := func(n int) MethodSpec {
		return MethodSpec{
			Name: fmt.Sprintf("static[%d nodes]", n),
			Build: func() (sim.Method, error) {
				return cluster.NewMethod(n, p.Proto, cluster.LinkConfig{})
			},
		}
	}
	mkAdaptive := func(n int) MethodSpec {
		return MethodSpec{
			Name: fmt.Sprintf("adaptive[%d nodes]", n),
			Build: func() (sim.Method, error) {
				return cluster.NewAdaptiveMethod(n, p.Proto, cluster.LinkConfig{}, bcfg)
			},
		}
	}
	e := &Experiment{
		ID: "fig22", Title: "Adaptive partitioning under hotspot skew: load balance vs static strips",
		XLabel:  "workload",
		Metrics: []Metric{MetricLoadCV, MetricServLatP99, MetricMoves, MetricExact},
		// Wall-clock metrics (busy time, latency tail), and the nodes
		// already tick on parallel goroutines inside each cell.
		Serial: true,
	}
	for _, n := range p.Nodes {
		if n < 2 {
			continue // a single node is trivially balanced
		}
		e.Methods = append(e.Methods, mkStatic(n), mkAdaptive(n))
	}
	if cfg, err := workload.WithMobility(p.Base, workload.ModelHotspot); err == nil {
		cfg.Observe = true
		e.Points = append(e.Points, Point{workload.ModelHotspot, cfg})
	}
	return e
}

// Fig24InfluenceUplink: the payoff of influence-driven safe regions —
// uplink traffic per tick at equal recall, against the fixed-horizon
// DKNN across object populations on the clean channel. Both columns run
// provably exact (the recall columns pin 1.00), so the uplink delta is
// pure savings: reports whose suppression the advertised frontier
// threshold guaranteed could not change any answer. Observation is on,
// so the staleness quantile shows the flip side of the bargain — how old
// the positions backing an answer may grow while that guarantee holds.
func (p Profile) Fig24InfluenceUplink() *Experiment {
	e := &Experiment{
		ID: "fig24", Title: "Influence thresholds: uplink per tick at equal recall",
		XLabel:  "N",
		Methods: []MethodSpec{DKNN(p.Proto), DKNNInfluence(p.Proto)},
		Metrics: []Metric{MetricUplink, MetricRecall, MetricStaleP90, MetricGapP90},
	}
	for _, n := range p.Ns {
		cfg := workload.WithObjects(p.Base, n)
		cfg.Observe = true
		e.Points = append(e.Points, Point{fmt.Sprint(n), cfg})
	}
	return e
}

// Table2Breakdown is rendered separately (it needs the counter table, not
// a scalar metric); see RunTable2.
func (p Profile) RunTable2() (string, error) {
	var b strings.Builder
	b.WriteString("table2 — Message breakdown by kind and direction (default workload)\n\n")
	for _, m := range p.methods() {
		method, err := m.Build()
		if err != nil {
			return "", err
		}
		res, err := sim.Run(p.Base, method)
		if err != nil {
			return "", fmt.Errorf("table2: %s: %w", m.Name, err)
		}
		fmt.Fprintf(&b, "--- %s ---\n%s\n", m.Name, res.Traffic.BreakdownTable())
	}
	return b.String(), nil
}

// Table3Accuracy: answer quality and uplink cost across the approximation
// knobs (CI τ sweep and DKNN θ sweep).
func (p Profile) Table3Accuracy() *Experiment {
	e := &Experiment{
		ID: "table3", Title: "Accuracy/cost tradeoff: CI τ sweep and DKNN θ sweep",
		XLabel:  "config",
		Metrics: []Metric{MetricUplink, MetricExact, MetricRecall, MetricRadErr},
	}
	for _, tau := range p.Taus {
		e.Methods = append(e.Methods, CI(tau))
	}
	for _, theta := range p.Thetas {
		proto := p.Proto
		proto.ThetaInside = theta
		e.Methods = append(e.Methods, MethodSpec{
			Name:  fmt.Sprintf("DKNN(θ=%g)", theta),
			Build: func() (sim.Method, error) { return core.New(proto) },
		})
	}
	e.Points = []Point{{"default", p.Base}}
	return e
}

// Table4Mobility: uplink/tick under each mobility model.
func (p Profile) Table4Mobility() *Experiment {
	e := &Experiment{
		ID: "table4", Title: "Uplink messages per tick per mobility model",
		XLabel: "model", Methods: p.methods(), Metrics: []Metric{MetricUplink},
	}
	kinds := append([]string(nil), p.Mobilities...)
	sort.Strings(kinds)
	for _, kind := range kinds {
		cfg, err := workload.WithMobility(p.Base, kind)
		if err != nil {
			continue
		}
		e.Points = append(e.Points, Point{kind, cfg})
	}
	return e
}
