package exp

import (
	"strings"
	"testing"

	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

// tiny returns a profile small enough for unit tests: two points per
// sweep, a handful of ticks.
func tiny() Profile {
	p := SmokeProfile()
	p.Base.Ticks = 15
	p.Base.Warmup = 5
	p.Base.NumObjects = 200
	p.Base.NumQueries = 2
	p.Ns = []int{150, 300}
	p.Ks = []int{1, 5}
	p.ObjSpeeds = []float64{5, 10}
	p.QrySpeeds = []float64{0, 10}
	p.Qs = []int{1, 4}
	p.Horizons = []int{4, 8}
	p.Taus = []float64{20}
	p.Thetas = []float64{0, 20}
	p.Mobilities = []string{workload.ModelWaypoint}
	p.Grids = []int{8, 16}
	p.Shards = []int{1, 2}
	p.Nodes = []int{1, 2}
	p.Losses = []float64{0, 0.05}
	return p
}

func TestSuiteStructure(t *testing.T) {
	suite := Suite(tiny())
	if len(suite) != 21 {
		t.Fatalf("suite has %d experiments, want 21", len(suite))
	}
	seen := map[string]bool{}
	for _, e := range suite {
		if e.ID == "" || e.Title == "" || e.XLabel == "" {
			t.Errorf("experiment %q lacks metadata", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Points) == 0 || len(e.Methods) == 0 || len(e.Metrics) == 0 {
			t.Errorf("experiment %q is empty", e.ID)
		}
		for _, pt := range e.Points {
			if err := pt.Config.Validate(); err != nil {
				t.Errorf("experiment %q point %q: %v", e.ID, pt.Label, err)
			}
		}
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig24", "table3", "table4"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestFig5RunAndShape(t *testing.T) {
	p := tiny()
	tbl, err := p.Fig5ObjectScaling().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.Ns) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	cp, ok := tbl.Column("CP")
	if !ok {
		t.Fatalf("no CP column in %v", tbl.Columns)
	}
	dknn, ok := tbl.Column("DKNN")
	if !ok {
		t.Fatalf("no DKNN column in %v", tbl.Columns)
	}
	// Shape assertions from the paper: CP grows ~linearly with N, DKNN
	// stays below it and grows sublinearly.
	if cp[1] < cp[0]*1.8 {
		t.Errorf("CP not linear in N: %v", cp)
	}
	if dknn[1] >= cp[1] {
		t.Errorf("DKNN (%v) should be below CP (%v)", dknn, cp)
	}
	ratio := dknn[1] / dknn[0]
	if ratio > 1.8 {
		t.Errorf("DKNN grew %vx for 2x objects", ratio)
	}
}

// Fig19 runs audit-free with a short horizon; at test scale it must
// produce one row per LargeNs point with sane (positive-traffic) cells.
func TestFig19RunAndShape(t *testing.T) {
	p := tiny()
	p.LargeNs = []int{400, 800}
	tbl, err := p.Fig19LargeScale().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.LargeNs) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(p.LargeNs))
	}
	up, ok := tbl.Column("DKNN uplink/tick")
	if !ok {
		t.Fatalf("no DKNN uplink column in %v", tbl.Columns)
	}
	for i, v := range up {
		if v <= 0 {
			t.Errorf("row %d: DKNN uplink/tick = %v, want > 0", i, v)
		}
	}
}

// Fig21 turns the observability histograms into a sweep: every point
// runs with Observe set, so the staleness columns must be populated
// (zero-loss staleness is bounded by the protocol, not absent) and the
// rendered table must be deterministic across repeat runs.
func TestFig21RunShapeAndDeterminism(t *testing.T) {
	p := tiny()
	e := p.Fig21Staleness()
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.Losses) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(p.Losses))
	}
	for _, pt := range e.Points {
		if !pt.Config.Observe {
			t.Fatalf("point %q does not observe", pt.Label)
		}
	}
	gap, ok := tbl.Column("DKNN report gap p90")
	if !ok {
		t.Fatalf("no report-gap column in %v", tbl.Columns)
	}
	for i, v := range gap {
		if v <= 0 {
			t.Errorf("row %d: report gap p90 = %v, want > 0", i, v)
		}
	}
	if _, ok := tbl.Column("DKNN stale p99"); !ok {
		t.Fatalf("no staleness column in %v", tbl.Columns)
	}
	again, err := p.Fig21Staleness().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.CSV() != again.CSV() {
		t.Errorf("fig21 not deterministic:\n%s\n---\n%s", tbl.CSV(), again.CSV())
	}
}

// Fig24 is the influence-mode payoff table: at test scale both columns
// must hold recall 1.00 on the clean channel while the influence column
// spends strictly less uplink than fixed-horizon DKNN at every
// population — and the table must be deterministic across repeat runs.
func TestFig24RunShapeAndDeterminism(t *testing.T) {
	p := tiny()
	e := p.Fig24InfluenceUplink()
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(p.Ns) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(p.Ns))
	}
	for _, pt := range e.Points {
		if !pt.Config.Observe {
			t.Fatalf("point %q does not observe", pt.Label)
		}
	}
	base, ok := tbl.Column("DKNN uplink/tick")
	if !ok {
		t.Fatalf("no DKNN uplink column in %v", tbl.Columns)
	}
	inf, ok := tbl.Column("DKNN-INF uplink/tick")
	if !ok {
		t.Fatalf("no DKNN-INF uplink column in %v", tbl.Columns)
	}
	for i := range base {
		if inf[i] >= base[i] {
			t.Errorf("row %d: influence uplink %v not below fixed-horizon %v", i, inf[i], base[i])
		}
	}
	for _, col := range []string{"DKNN mean recall", "DKNN-INF mean recall"} {
		rec, ok := tbl.Column(col)
		if !ok {
			t.Fatalf("no %q column in %v", col, tbl.Columns)
		}
		for i, v := range rec {
			if v != 1.0 {
				t.Errorf("row %d: %s = %v, want 1.00 — not an equal-recall comparison", i, col, v)
			}
		}
	}
	again, err := p.Fig24InfluenceUplink().Run()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.CSV() != again.CSV() {
		t.Errorf("fig24 not deterministic:\n%s\n---\n%s", tbl.CSV(), again.CSV())
	}
}

// Fig22 compares static and adaptive partitioning under hotspot skew:
// at test scale the adaptive federation must actually move columns, both
// variants must stay exact (the migration-safety invariant rendered as a
// table column), and the static one must never move anything.
func TestFig22RunAndShape(t *testing.T) {
	p := tiny()
	p.Nodes = []int{1, 4} // 1 is skipped: a single node cannot rebalance
	p.Base.Ticks = 60
	tbl, err := p.Fig22AdaptiveBalance().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tbl.Rows))
	}
	for _, name := range []string{"static[4 nodes] exactness", "adaptive[4 nodes] exactness"} {
		vals, ok := tbl.Column(name)
		if !ok {
			t.Fatalf("no %q column in %v", name, tbl.Columns)
		}
		if vals[0] != 1.0 {
			t.Errorf("%s = %v, want 1.00", name, vals[0])
		}
	}
	staticMoves, ok := tbl.Column("static[4 nodes] col moves")
	if !ok {
		t.Fatalf("no static col-moves column in %v", tbl.Columns)
	}
	if staticMoves[0] != 0 {
		t.Errorf("static federation moved %v columns", staticMoves[0])
	}
	adaptiveMoves, ok := tbl.Column("adaptive[4 nodes] col moves")
	if !ok {
		t.Fatalf("no adaptive col-moves column in %v", tbl.Columns)
	}
	if adaptiveMoves[0] <= 0 {
		t.Errorf("adaptive federation moved %v columns, want > 0", adaptiveMoves[0])
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "figX", Title: "demo", XLabel: "N",
		Columns: []string{"CP", "DKNN"},
		Rows: []Row{
			{Label: "100", Values: []float64{100.5, 10.25}},
			{Label: "200", Values: []float64{200, 11}},
		},
	}
	text := tbl.Render()
	for _, want := range []string{"figX", "demo", "CP", "DKNN", "100.50", "11.00"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q:\n%s", want, text)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### figX", "| N |", "| 100 |", "|---|---|---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	if _, ok := tbl.Column("nope"); ok {
		t.Error("Column found a nonexistent column")
	}
}

func TestRunTable2(t *testing.T) {
	p := tiny()
	out, err := p.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CP", "DKNN", "location-report", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestTable3HasAccuracyColumns(t *testing.T) {
	p := tiny()
	tbl, err := p.Table3Accuracy().Run()
	if err != nil {
		t.Fatal(err)
	}
	// θ=0 DKNN must be exact.
	vals, ok := tbl.Column("DKNN(θ=0) exactness")
	if !ok {
		t.Fatalf("no exactness column: %v", tbl.Columns)
	}
	if vals[0] != 1.0 {
		t.Errorf("DKNN θ=0 exactness = %v", vals[0])
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	e := &Experiment{
		ID: "bad", Title: "bad", XLabel: "x",
		Points:  []Point{{"p", tiny().Base}},
		Methods: []MethodSpec{{Name: "broken", Build: func() (sim.Method, error) { return nil, errBoom }}},
		Metrics: []Metric{MetricUplink},
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("build error swallowed")
	}
}

var errBoom = &boomErr{}

type boomErr struct{}

func (*boomErr) Error() string { return "boom" }

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID: "figX", Title: "demo", XLabel: "N,comma",
		Columns: []string{"CP", `DK"NN`},
		Rows: []Row{
			{Label: "100", Values: []float64{100.5, 10.25}},
		},
	}
	csv := tbl.CSV()
	want := "\"N,comma\",CP,\"DK\"\"NN\"\n100,100.5,10.25\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

// CSV escaping: commas and quotes in method names and row labels must be
// quoted per RFC 4180, and embedded newlines kept inside quotes.
func TestTableCSVEscaping(t *testing.T) {
	tbl := &Table{
		ID: "figY", Title: "escape", XLabel: "x",
		Columns: []string{`CI(τ=50), strict`, "plain", "multi\nline"},
		Rows: []Row{
			{Label: `say "hi"`, Values: []float64{1, 2, 3}},
			{Label: "a,b", Values: []float64{4, 5, 6}},
		},
	}
	csv := tbl.CSV()
	want := "x,\"CI(τ=50), strict\",plain,\"multi\nline\"\n" +
		"\"say \"\"hi\"\"\",1,2,3\n" +
		"\"a,b\",4,5,6\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

// Markdown escaping: a pipe in a method name or label must not open a
// spurious cell; newlines must not break the row.
func TestTableMarkdownEscaping(t *testing.T) {
	tbl := &Table{
		ID: "figZ", Title: "escape", XLabel: "a|b",
		Columns: []string{"CP|strict", "DKNN"},
		Rows: []Row{
			{Label: "x|y", Values: []float64{1, 2}},
			{Label: "two\nlines", Values: []float64{3, 4}},
		},
	}
	md := tbl.Markdown()
	for _, want := range []string{`| a\|b |`, `| CP\|strict |`, `| x\|y |`, "| two lines |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	// Every row must have exactly columns+1 pipes... i.e. the unescaped
	// pipe count per line is fixed.
	for _, line := range strings.Split(strings.TrimSpace(md), "\n")[2:] {
		bare := strings.Count(strings.ReplaceAll(line, `\|`, ""), "|")
		if bare != len(tbl.Columns)+2 {
			t.Errorf("row %q has %d cell separators, want %d", line, bare, len(tbl.Columns)+2)
		}
	}
}

// Build and run errors must surface from the parallel pool too.
func TestBuildErrorsPropagateParallel(t *testing.T) {
	e := &Experiment{
		ID: "bad", Title: "bad", XLabel: "x",
		Points:  []Point{{"p", tiny().Base}, {"q", tiny().Base}},
		Methods: []MethodSpec{{Name: "broken", Build: func() (sim.Method, error) { return nil, errBoom }}},
		Metrics: []Metric{MetricUplink},
		Workers: 4,
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("build error swallowed by parallel runner")
	}
}

// The parallel runner must be invisible in the output: for every
// experiment in the suite, the rendered tables at Workers 1 and
// Workers 8 are byte-identical (each cell is an independent seeded
// run, and aggregation happens in enumeration order).
func TestParallelRunDeterministic(t *testing.T) {
	p := tiny()
	for i, build := range []func() *Experiment{
		p.Fig5ObjectScaling,  // single metric, multi-method
		p.Fig12SlackAblation, // methods encode the sweep
		p.Table3Accuracy,     // multi-metric columns
		p.Fig17LossRobustness,
	} {
		e := build()
		e.Seeds = 2
		e.Workers = 1
		seq, err := e.Run()
		if err != nil {
			t.Fatalf("case %d serial: %v", i, err)
		}
		e.Workers = 8
		par, err := e.Run()
		if err != nil {
			t.Fatalf("case %d parallel: %v", i, err)
		}
		if seq.Render() != par.Render() {
			t.Errorf("case %d (%s): parallel Render differs\n--- workers=1\n%s--- workers=8\n%s",
				i, e.ID, seq.Render(), par.Render())
		}
		if seq.CSV() != par.CSV() {
			t.Errorf("case %d (%s): parallel CSV differs", i, e.ID)
		}
	}
}

// Timing-sensitive experiments must declare Serial so the pool cannot
// perturb their wall-clock metrics, and Suite must stamp the profile's
// worker knob onto everything else.
func TestSerialExperimentsAndWorkerStamp(t *testing.T) {
	p := tiny()
	p.Workers = 3
	serialIDs := map[string]bool{
		"fig10": true, "fig13": true, "fig14": true, "fig15": true, "fig16": true,
		"fig19": true, "fig20": true, "fig22": true,
	}
	for _, e := range Suite(p) {
		if e.Serial != serialIDs[e.ID] {
			t.Errorf("%s: Serial = %v, want %v", e.ID, e.Serial, serialIDs[e.ID])
		}
		if e.Workers != 3 {
			t.Errorf("%s: Workers = %d, want 3", e.ID, e.Workers)
		}
		if !e.Serial {
			// No parallel experiment may report the wall-clock server
			// metric — that is exactly what Serial protects.
			for _, m := range e.Metrics {
				if m.Name == MetricServer.Name {
					t.Errorf("%s: parallel experiment reports %s", e.ID, m.Name)
				}
			}
		}
	}
}

// A worker pool far larger than the cell count must degrade gracefully.
func TestWorkersExceedCells(t *testing.T) {
	p := tiny()
	e := p.Fig6VaryK()
	e.Points = e.Points[:1]
	e.Workers = 64
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Seeds > 1 averages over distinct workloads: the averaged value lies
// within the range of the individual runs, and single-seed equals the
// plain run.
func TestSeedsAveraging(t *testing.T) {
	p := tiny()
	e := p.Fig6VaryK()
	e.Points = e.Points[:1]
	e.Methods = e.Methods[:1] // CP only: exact N+Q regardless of seed
	one, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	e.Seeds = 3
	avg, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// CP's uplink is N+Q for every seed, so the mean equals the single run.
	if one.Rows[0].Values[0] != avg.Rows[0].Values[0] {
		t.Errorf("CP mean %v != single %v", avg.Rows[0].Values[0], one.Rows[0].Values[0])
	}
}
