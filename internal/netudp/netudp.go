// Package netudp carries the protocol over UDP datagrams — the transport
// that most closely matches the paper's wireless medium: connectionless,
// unordered, and lossy. The DKNN state machines tolerate all three by
// design (epochs, membership affirmations, horizon refreshes, probe
// fallbacks), so nothing above the transport changes.
//
// Wire format, one message per datagram:
//
//	4 bytes client id (LE) | payload = protocol.Encode(msg)
//
// The client id prefix identifies the sender on uplinks and is echoed on
// downlinks (clients ignore it). The server learns each client's UDP
// address from its most recent datagram and expires silent clients after
// a liveness window, which doubles as the medium's disconnect signal.
package netudp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// maxDatagram bounds a datagram payload.
const maxDatagram = 64 << 10

// Server is the UDP endpoint the clients talk to.
type Server struct {
	conn *net.UDPConn
	geom grid.Geometry
	// liveness is how long a client stays addressable after its last
	// datagram.
	liveness time.Duration

	mu      sync.Mutex
	clients map[model.ObjectID]clientAddr
	handler transport.ServerHandler
	metered metrics.Counters
	closed  bool

	wg sync.WaitGroup
}

type clientAddr struct {
	addr *net.UDPAddr
	seen time.Time
}

// Listen binds a UDP server. liveness is the silent-client expiry window
// (0 defaults to one minute).
func Listen(addr string, geom grid.Geometry, liveness time.Duration) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netudp: resolve: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netudp: listen: %w", err)
	}
	if liveness == 0 {
		liveness = time.Minute
	}
	return &Server{
		conn:     conn,
		geom:     geom,
		liveness: liveness,
		clients:  make(map[model.ObjectID]clientAddr),
	}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// AttachHandler installs the uplink consumer.
func (s *Server) AttachHandler(h transport.ServerHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// Counters returns a snapshot of the traffic counters.
func (s *Server) Counters() metrics.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metered.Snapshot()
}

// ClientCount returns the number of live (non-expired) client addresses.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	now := time.Now()
	for _, c := range s.clients {
		if now.Sub(c.seen) <= s.liveness {
			n++
		}
	}
	return n
}

// Serve reads datagrams until Close. It returns nil after Close.
func (s *Server) Serve() error {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if n < 5 {
			continue // runt datagram
		}
		id := model.ObjectID(binary.LittleEndian.Uint32(buf[:4]))
		msg, err := protocol.Decode(buf[4:n])
		if err != nil {
			continue // garbled datagram: the medium is allowed to mangle
		}
		s.mu.Lock()
		s.clients[id] = clientAddr{addr: from, seen: time.Now()}
		h := s.handler
		s.metered.RecordSend(metrics.Uplink, msg.Kind(), n)
		s.metered.RecordDeliver(metrics.Uplink)
		s.mu.Unlock()
		if h != nil {
			h.HandleUplink(id, msg)
		}
	}
}

// ExpireSilent drops clients that have not transmitted within the
// liveness window, notifying a DisconnectHandler if the attached handler
// implements one. Deployments call it periodically.
func (s *Server) ExpireSilent() int {
	s.mu.Lock()
	now := time.Now()
	var gone []model.ObjectID
	for id, c := range s.clients {
		if now.Sub(c.seen) > s.liveness {
			gone = append(gone, id)
			delete(s.clients, id)
		}
	}
	h := s.handler
	s.mu.Unlock()
	if dh, ok := h.(transport.DisconnectHandler); ok {
		for _, id := range gone {
			dh.HandleClientGone(id)
		}
	}
	return len(gone)
}

// Close shuts the socket down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// Side returns the sending surface for the query-processing logic.
func (s *Server) Side() transport.ServerSide { return udpServerSide{s} }

type udpServerSide struct{ s *Server }

func (u udpServerSide) send(to model.ObjectID, addr *net.UDPAddr, m protocol.Message) error {
	payload := make([]byte, 4, 4+protocol.EncodedSize(m))
	binary.LittleEndian.PutUint32(payload[:4], uint32(to))
	payload = protocol.Encode(payload, m)
	_, err := u.s.conn.WriteToUDP(payload, addr)
	return err
}

// Downlink implements transport.ServerSide.
func (u udpServerSide) Downlink(to model.ObjectID, m protocol.Message) {
	s := u.s
	s.mu.Lock()
	c, ok := s.clients[to]
	live := ok && time.Since(c.seen) <= s.liveness
	s.metered.RecordSend(metrics.Downlink, m.Kind(), protocol.EncodedSize(m))
	s.mu.Unlock()
	if !live {
		s.mu.Lock()
		s.metered.RecordDrop(metrics.Downlink)
		s.mu.Unlock()
		return
	}
	if err := u.send(to, c.addr, m); err != nil {
		s.mu.Lock()
		s.metered.RecordDrop(metrics.Downlink)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.metered.RecordDeliver(metrics.Downlink)
	s.mu.Unlock()
}

// Broadcast implements transport.ServerSide: fan out to every live
// client, accounting one transmission per intersecting cell (the shared
// wireless cost model).
func (u udpServerSide) Broadcast(region geo.Circle, m protocol.Message) {
	s := u.s
	cells := len(s.geom.CellsIntersecting(region))
	if cells == 0 {
		return
	}
	s.mu.Lock()
	size := protocol.EncodedSize(m)
	for i := 0; i < cells; i++ {
		s.metered.RecordSend(metrics.Broadcast, m.Kind(), size)
	}
	now := time.Now()
	type target struct {
		id   model.ObjectID
		addr *net.UDPAddr
	}
	targets := make([]target, 0, len(s.clients))
	for id, c := range s.clients {
		if now.Sub(c.seen) <= s.liveness {
			targets = append(targets, target{id, c.addr})
		}
	}
	s.mu.Unlock()
	for _, t := range targets {
		if err := u.send(t.id, t.addr, m); err != nil {
			s.mu.Lock()
			s.metered.RecordDrop(metrics.Broadcast)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.metered.RecordDeliver(metrics.Broadcast)
		s.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Client

// Client is one mobile endpoint's UDP socket.
type Client struct {
	id   model.ObjectID
	conn *net.UDPConn
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

// Dial opens a client socket toward the server and starts dispatching
// received datagrams to h. UDP is connectionless: "dialing" only fixes
// the peer address; the server learns of this client when it first
// transmits.
func Dial(addr string, id model.ObjectID, h transport.ClientHandler) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netudp: resolve: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("netudp: dial: %w", err)
	}
	cl := &Client{id: id, conn: conn, done: make(chan struct{})}
	go cl.readLoop(h)
	return cl, nil
}

func (cl *Client) readLoop(h transport.ClientHandler) {
	defer close(cl.done)
	buf := make([]byte, maxDatagram)
	for {
		n, err := cl.conn.Read(buf)
		if err != nil {
			return
		}
		if n < 5 {
			continue
		}
		msg, err := protocol.Decode(buf[4:n])
		if err != nil {
			continue
		}
		if h != nil {
			h.HandleServerMessage(msg)
		}
	}
}

// Uplink implements transport.ClientSide. Datagram sends are
// fire-and-forget; errors are ignored (the protocol tolerates loss).
func (cl *Client) Uplink(m protocol.Message) {
	payload := make([]byte, 4, 4+protocol.EncodedSize(m))
	binary.LittleEndian.PutUint32(payload[:4], uint32(cl.id))
	payload = protocol.Encode(payload, m)
	_, _ = cl.conn.Write(payload)
}

// Close shuts the socket down and waits for the read loop to exit.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
	err := cl.conn.Close()
	<-cl.done
	return err
}

var _ transport.ClientSide = (*Client)(nil)
