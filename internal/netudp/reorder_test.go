package netudp

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// rawDatagram builds one uplink datagram by hand: id prefix + payload.
func rawDatagram(id model.ObjectID, m protocol.Message) []byte {
	buf := make([]byte, 4, 4+protocol.EncodedSize(m))
	binary.LittleEndian.PutUint32(buf, uint32(id))
	return protocol.Encode(buf, m)
}

// Satellite property test: the UDP uplink path under the medium's real
// failure modes — reordering, drops, duplication, interleaved garbage.
// Whatever permuted, thinned, polluted sequence arrives, the server must
// deliver exactly the surviving well-formed datagrams (each intact, with
// the right sender), meter them, and let nothing malformed through.
func TestUplinkReorderDropDuplicateProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := startServer(t, time.Minute)
			col := &collector{}
			s.AttachHandler(col)

			conn, err := net.Dial("udp", s.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			// The valid population: distinct (sender, tick) pairs so every
			// delivery is attributable to exactly one sent datagram.
			const nValid = 48
			type sent struct {
				id  model.ObjectID
				msg protocol.LocationReport
			}
			var population []sent
			var wire [][]byte
			for i := 0; i < nValid; i++ {
				sd := sent{
					id: model.ObjectID(1 + rng.Intn(8)),
					msg: protocol.LocationReport{
						Object: model.ObjectID(1 + rng.Intn(8)),
						Pos:    geo.Pt(rng.Float64()*1000, rng.Float64()*1000),
						At:     model.Tick(i), // unique per datagram
					},
				}
				population = append(population, sd)
				wire = append(wire, rawDatagram(sd.id, sd.msg))
			}

			// Thin (drop ~25%), duplicate (~15%), then shuffle: the arrival
			// schedule a lossy reordering medium would produce.
			type expect struct {
				id model.ObjectID
				at model.Tick
			}
			want := map[expect]int{}
			var schedule [][]byte
			for i, d := range wire {
				if rng.Float64() < 0.25 {
					continue // dropped in flight
				}
				n := 1
				if rng.Float64() < 0.15 {
					n = 2 // duplicated in flight
				}
				for j := 0; j < n; j++ {
					schedule = append(schedule, d)
				}
				want[expect{population[i].id, population[i].msg.At}] += n
			}
			// Pollution: runts and garbled payloads the server must skip.
			// The flip hits the kind byte — the one corruption the codec is
			// guaranteed to detect (fixed-width fields have no checksum).
			schedule = append(schedule, []byte{1, 2, 3})
			garbled := rawDatagram(99, protocol.LocationReport{Object: 99, At: 999})
			garbled[4] ^= 0xFF
			schedule = append(schedule, garbled[:4+rng.Intn(3)], garbled)
			rng.Shuffle(len(schedule), func(i, j int) {
				schedule[i], schedule[j] = schedule[j], schedule[i]
			})

			wantTotal := 0
			for _, n := range want {
				wantTotal += n
			}
			for _, d := range schedule {
				if _, err := conn.Write(d); err != nil {
					t.Fatal(err)
				}
			}

			waitFor(t, "all surviving datagrams", func() bool { return col.count() >= wantTotal })
			// Let any straggler (or wrongly accepted garbage) surface.
			time.Sleep(20 * time.Millisecond)

			col.mu.Lock()
			got := map[expect]int{}
			for i, m := range col.msgs {
				lr, ok := m.(protocol.LocationReport)
				if !ok {
					t.Fatalf("delivered %T, sent only LocationReports", m)
				}
				if lr.At == 999 {
					t.Fatal("garbled datagram decoded and delivered")
				}
				got[expect{col.froms[i], lr.At}]++
			}
			col.mu.Unlock()
			if len(got) != len(want) {
				t.Fatalf("delivered %d distinct datagrams, want %d", len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("datagram %+v delivered %d times, want %d", k, got[k], n)
				}
			}
			if c := s.Counters(); c.Delivered(metrics.Uplink) != uint64(wantTotal) {
				t.Errorf("metered %d uplink deliveries, want %d", c.Delivered(metrics.Uplink), wantTotal)
			}
		})
	}
}
