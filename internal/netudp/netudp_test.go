package netudp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

func testGeom() grid.Geometry {
	return grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 10, 10)
}

func startServer(t *testing.T, liveness time.Duration) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", testGeom(), liveness)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close() })
	return s
}

type collector struct {
	mu    sync.Mutex
	msgs  []protocol.Message
	froms []model.ObjectID
}

func (c *collector) HandleUplink(from model.ObjectID, m protocol.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	c.froms = append(c.froms, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestUplinkAndAddressLearning(t *testing.T) {
	s := startServer(t, time.Minute)
	col := &collector{}
	s.AttachHandler(col)
	cl, err := Dial(s.Addr().String(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	msg := protocol.LocationReport{Object: 9, Pos: geo.Pt(1, 2), At: 3}
	cl.Uplink(msg)
	waitFor(t, "uplink", func() bool { return col.count() == 1 })
	col.mu.Lock()
	if col.froms[0] != 9 {
		t.Errorf("from = %d", col.froms[0])
	}
	if got := col.msgs[0].(protocol.LocationReport); got != msg {
		t.Errorf("got %#v", got)
	}
	col.mu.Unlock()
	if s.ClientCount() != 1 {
		t.Errorf("ClientCount = %d", s.ClientCount())
	}
	c := s.Counters()
	if c.Sent(metrics.Uplink) != 1 {
		t.Error("uplink not metered")
	}
}

type clientCollector struct {
	n atomic.Int64
}

func (c *clientCollector) HandleServerMessage(protocol.Message) { c.n.Add(1) }

func TestDownlinkAndBroadcast(t *testing.T) {
	s := startServer(t, time.Minute)
	s.AttachHandler(&collector{})
	c1, c2 := &clientCollector{}, &clientCollector{}
	cl1, err := Dial(s.Addr().String(), 1, c1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := Dial(s.Addr().String(), 2, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	// The server can only address clients it has heard from.
	cl1.Uplink(protocol.QueryDeregister{Query: 1})
	cl2.Uplink(protocol.QueryDeregister{Query: 1})
	waitFor(t, "both known", func() bool { return s.ClientCount() == 2 })

	s.Side().Downlink(1, protocol.AnswerUpdate{Query: 5, At: 1})
	waitFor(t, "downlink", func() bool { return c1.n.Load() == 1 })
	if c2.n.Load() != 0 {
		t.Error("downlink leaked")
	}
	s.Side().Broadcast(geo.Circle{Center: geo.Pt(500, 500), R: 100}, protocol.MonitorCancel{Query: 5, Epoch: 1})
	waitFor(t, "broadcast", func() bool { return c1.n.Load() == 2 && c2.n.Load() == 1 })

	// Downlink to an unknown client is dropped.
	s.Side().Downlink(99, protocol.AnswerUpdate{Query: 5})
	c := s.Counters()
	if c.Dropped(metrics.Downlink) != 1 {
		t.Error("unknown-client downlink not dropped")
	}
}

func TestExpireSilentNotifiesDisconnect(t *testing.T) {
	s := startServer(t, 50*time.Millisecond)
	var gone atomic.Int64
	s.AttachHandler(&goneHandler{gone: &gone})
	cl, err := Dial(s.Addr().String(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Uplink(protocol.QueryDeregister{Query: 1})
	waitFor(t, "known", func() bool { return s.ClientCount() == 1 })
	time.Sleep(80 * time.Millisecond)
	if s.ClientCount() != 0 {
		t.Error("silent client still counted live")
	}
	if n := s.ExpireSilent(); n != 1 {
		t.Fatalf("ExpireSilent = %d", n)
	}
	if gone.Load() != 7 {
		t.Fatalf("disconnect handler saw %d", gone.Load())
	}
	// Idempotent.
	if n := s.ExpireSilent(); n != 0 {
		t.Fatalf("second ExpireSilent = %d", n)
	}
}

type goneHandler struct {
	collector
	gone *atomic.Int64
}

func (g *goneHandler) HandleClientGone(id model.ObjectID) { g.gone.Store(int64(id)) }

func TestGarbledDatagramsIgnored(t *testing.T) {
	s := startServer(t, time.Minute)
	col := &collector{}
	s.AttachHandler(col)
	cl, err := Dial(s.Addr().String(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Runts and garbage through the same socket.
	cl.conn.Write([]byte{1})
	cl.conn.Write([]byte{1, 2, 3, 4, 0xFF, 0xFF})
	cl.Uplink(protocol.QueryDeregister{Query: 1})
	waitFor(t, "valid message", func() bool { return col.count() == 1 })
	if col.count() != 1 {
		t.Errorf("garbled datagrams delivered: %d", col.count())
	}
}

// The full DKNN protocol over real UDP: a stationary query over two
// objects, with agents ticking on a controllable clock.
func TestDKNNOverUDP(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	s := startServer(t, time.Minute)

	var tick atomic.Int64
	now := func() model.Tick { return model.Tick(tick.Load()) }
	cfg := core.Config{HorizonTicks: 8, MinProbeRadius: 100, AnswerSlack: 1}.WithWorldDefault(world)
	srv, err := core.NewServer(cfg, core.ServerDeps{
		Side: s.Side(), Now: now, DT: 1,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachHandler(srv)

	positions := map[model.ObjectID]geo.Point{1: geo.Pt(500, 510), 2: geo.Pt(500, 530)}
	agents := map[model.ObjectID]*core.ObjectAgent{}
	for id, p := range positions {
		p := p
		var agent *core.ObjectAgent
		cl, err := Dial(s.Addr().String(), id, transport.ClientHandlerFunc(func(m protocol.Message) {
			agent.HandleServerMessage(m)
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		agent, err = core.NewObjectAgent(cfg, core.AgentDeps{
			ID: id, Side: cl, Now: now,
			Pos: func() geo.Point { return p }, DT: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = agent
		// Announce so the server learns the address before any probe.
		cl.Uplink(protocol.LocationReport{Object: id, Pos: p, At: 0})
	}
	var qa *core.QueryAgent
	qcl, err := Dial(s.Addr().String(), 100, transport.ClientHandlerFunc(func(m protocol.Message) {
		qa.HandleServerMessage(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer qcl.Close()
	qa, err = core.NewQueryAgent(cfg, model.QuerySpec{ID: 1, K: 2, Pos: geo.Pt(500, 500)},
		core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID: 100, Side: qcl, Now: now,
				Pos: func() geo.Point { return geo.Pt(500, 500) }, DT: 1,
			},
			Vel: func() geo.Vector { return geo.Vec(0, 0) },
		})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "addresses learned", func() bool { return s.ClientCount() == 2 })

	settle := func() { time.Sleep(30 * time.Millisecond) }
	for i := 0; i < 6; i++ {
		tick.Add(1)
		qa.Tick(now())
		for _, a := range agents {
			a.Tick(now())
		}
		settle()
		srv.Tick(now())
		settle()
		for j := 0; j < 4 && srv.Finalize(now()); j++ {
			settle()
		}
		if a := qa.Answer(); len(a.Neighbors) == 2 {
			if a.Neighbors[0].ID != 1 || a.Neighbors[1].ID != 2 {
				t.Fatalf("answer = %v", a.Neighbors)
			}
			return
		}
	}
	t.Fatalf("no complete answer over UDP; server view %v", srv.Answer(1))
}
