package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte strings to the decoder: it must never
// panic, and anything it accepts must re-encode to the identical bytes
// (a canonical-form round trip).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, m)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical encoding:\n in  %x\n out %x", data, re)
		}
	})
}
