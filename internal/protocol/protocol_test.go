package protocol

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// sampleMessages returns one representative of every message kind, with
// non-trivial field values so byte-order bugs can't hide behind zeros.
func sampleMessages() []Message {
	return []Message{
		LocationReport{Object: 7, Pos: geo.Pt(1.5, -2.25), Vel: geo.Vec(0.5, 9), At: 42},
		ProbeRequest{Query: 3, Seq: 9, Region: geo.Circle{Center: geo.Pt(10, 20), R: 55.5}, At: 1},
		ProbeReply{Query: 3, Seq: 9, Object: 12, Pos: geo.Pt(-1, -2), At: 2},
		MonitorInstall{Query: 5, Epoch: 2, QueryPos: geo.Pt(100, 200), QueryVel: geo.Vec(-3, 4),
			AnswerRadius: 75.25, Radius: 150.5, At: 17},
		MonitorInstall{Query: 6, Epoch: 3, Refresh: true, QueryPos: geo.Pt(1, 2), QueryVel: geo.Vec(0, 0),
			AnswerRadius: 10, Radius: 20, At: 18},
		InfluenceInstall{Install: MonitorInstall{Query: 7, Epoch: 4, QueryPos: geo.Pt(50, 60),
			QueryVel: geo.Vec(1, -1), AnswerRadius: 80, Radius: 120, At: 19},
			Frontier: 64.25, Band: 5.5},
		InfluenceInstall{Install: MonitorInstall{Query: 7, Epoch: 5, Refresh: true,
			QueryPos: geo.Pt(51, 59), AnswerRadius: 82, Radius: 121, At: 20}}, // no valid frontier
		MonitorCancel{Query: 5, Epoch: 2},
		EnterReport{MemberReport{Query: 5, Epoch: 2, Object: 99, Pos: geo.Pt(7, 8), At: 18}},
		ExitReport{MemberReport{Query: 5, Epoch: 2, Object: 98, Pos: geo.Pt(9, 10), At: 19}},
		LeaveReport{MemberReport{Query: 5, Epoch: 3, Object: 97, Pos: geo.Pt(11, 12), At: 20}},
		MoveReport{MemberReport{Query: 5, Epoch: 3, Object: 96, Pos: geo.Pt(13, 14), At: 21}},
		QueryRegister{Query: 8, K: 10, Pos: geo.Pt(500, 500), Vel: geo.Vec(1, 1), At: 0},
		QueryRegister{Query: 9, Range: 250.5, Pos: geo.Pt(10, 10), At: 1},
		MonitorInstall{Query: 9, Epoch: 1, RangeMode: true, QueryPos: geo.Pt(10, 10),
			AnswerRadius: 250.5, Radius: 400, At: 1},
		QueryMove{Query: 8, Pos: geo.Pt(510, 505), Vel: geo.Vec(2, 0), At: 30},
		QueryDeregister{Query: 8},
		AnswerUpdate{Query: 8, Seq: 12, At: 31, QPos: geo.Pt(512, 504),
			Neighbors: []model.Neighbor{
				{ID: 4, Dist: 12.5}, {ID: 9, Dist: 13.75}, {ID: 1, Dist: 99},
			}},
		AnswerUpdate{Query: 9, Seq: 1, At: 32}, // empty answer
		AnswerDelta{Query: 9, Seq: 13, At: 33,
			Added:   []model.Neighbor{{ID: 5, Dist: 7.5}},
			Removed: []model.ObjectID{3, 4}},
		AnswerDelta{Query: 10, Seq: 2, At: 34}, // empty delta
		AnswerResync{Query: 9, LastSeq: 13, At: 35},
		NodeForward{Home: 2, Version: 5, Region: geo.Circle{Center: geo.Pt(300, 400), R: 120.5},
			Inner: ProbeRequest{Query: 3, Seq: 9, Region: geo.Circle{Center: geo.Pt(300, 400), R: 120.5}, At: 36}},
		NodeForward{Home: 0, Region: geo.Circle{Center: geo.Pt(1, 2), R: 3},
			Inner: MonitorInstall{Query: 5, Epoch: 4, QueryPos: geo.Pt(1, 2), QueryVel: geo.Vec(0.5, -0.5),
				AnswerRadius: 2, Radius: 3, At: 37}},
		NodeForward{Home: 7, Region: geo.Circle{Center: geo.Pt(9, 9), R: -1},
			Inner: MonitorCancel{Query: 5, Epoch: 4}},
		NodeForward{Home: 3, Version: 6, Region: geo.Circle{Center: geo.Pt(50, 60), R: 120},
			Inner: InfluenceInstall{Install: MonitorInstall{Query: 7, Epoch: 4,
				QueryPos: geo.Pt(50, 60), QueryVel: geo.Vec(1, -1),
				AnswerRadius: 80, Radius: 120, At: 19},
				Frontier: 64.25, Band: 5.5}},
		NodeRelay{Origin: 42, Hops: 1,
			Inner: EnterReport{MemberReport{Query: 5, Epoch: 4, Object: 42, Pos: geo.Pt(5, 6), At: 38}}},
		NodeRelay{Origin: 43, Hops: 3, Version: 2,
			Inner: QueryMove{Query: 8, Pos: geo.Pt(511, 506), Vel: geo.Vec(2, 1), At: 39}},
		NodeDeliver{To: 44, Version: 3,
			Inner: AnswerUpdate{Query: 8, Seq: 14, At: 40, QPos: geo.Pt(513, 505),
				Neighbors: []model.Neighbor{{ID: 4, Dist: 11.25}}}},
		ObjectHandoff{Object: 45, Pos: geo.Pt(640, 320), Vel: geo.Vec(-1.5, 2.5), At: 41,
			Aware: []AwareEntry{{Query: 5, Home: 1}, {Query: 8, Home: 3}}},
		ObjectHandoff{Object: 46, Pos: geo.Pt(0, 0), Vel: geo.Vec(0, 0), At: 42}, // no awareness
		QueryHandoff{Query: 8, K: 4, Addr: 1001, QPos: geo.Pt(515, 505), QVel: geo.Vec(2, 0), QAt: 43,
			Epoch: 6, Installed: true, AnswerRadius: 80.5, Radius: 161, InstalledAt: 40,
			PrevRegion: geo.Circle{Center: geo.Pt(510, 505), R: 150}, AnswerSeq: 15, LastProbeAt: 12,
			Frontier: 70.5, Band: 4.75,
			Candidates: []CandidateRecord{{ID: 4, Pos: geo.Pt(520, 500)}, {ID: 9, Pos: geo.Pt(500, 510)}},
			Inside:     []model.ObjectID{4, 9},
			Sent:       []model.ObjectID{4, 9},
			Spread:     []uint16{0, 2}},
		QueryHandoff{Query: 12, K: 1, Range: 90.5, Addr: 1002, QPos: geo.Pt(1, 1), QAt: 44,
			Epoch: 1, AnswerRadius: 90.5, Radius: 140}, // probing-era handoff: empty state
		QueryHandoffAck{Query: 8},
		NodeClientGone{Object: 45},
		PeerHello{Node: 2, Nodes: 4, Version: 6, At: 46},
		PeerHeartbeat{Node: 3, At: 47},
		NodeRedirect{Node: 1, Addr: "127.0.0.1:7708"},
		NodeRedirect{Node: 0, Addr: ""}, // address-less redirect (peer known to client)
		NodeLoad{Node: 1, Version: 6, Population: 250, Queries: 12, BusyUS: 123456789, At: 48},
		PartitionUpdate{Version: 7, Owners: []uint16{0, 0, 0, 1, 2, 2, 3, 3}},
		PartitionUpdate{Version: 1}, // ownerless update (rejected by appliers, wire-legal)
		PartitionAck{Node: 2, Version: 7},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Encode(nil, m)
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: Decode error: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v round trip:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Encode(nil, m)
		if got := EncodedSize(m); got != len(buf) {
			t.Errorf("%v: EncodedSize = %d, Encode produced %d bytes", m.Kind(), got, len(buf))
		}
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := Encode(prefix, QueryDeregister{Query: 1})
	if len(buf) != 2+EncodedSize(QueryDeregister{Query: 1}) {
		t.Fatalf("Encode did not append: len %d", len(buf))
	}
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatal("Encode clobbered prefix")
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Encode(nil, m)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("%v: truncation to %d bytes decoded successfully", m.Kind(), cut)
			}
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	buf := Encode(nil, MonitorCancel{Query: 1, Epoch: 1})
	buf = append(buf, 0x00)
	if _, err := Decode(buf); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	_, err := Decode([]byte{0xFF, 0, 0, 0, 0})
	if !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty buffer err = %v, want ErrTruncated", err)
	}
	if _, err := Decode([]byte{0}); err == nil {
		t.Fatal("kind 0 accepted")
	}
}

// Envelope kinds must reject inner kinds outside their allow-list: a
// NodeForward may only carry broadcasts, a NodeRelay only uplinks, a
// NodeDeliver only answers. In particular an envelope nested in an
// envelope is invalid, which bounds decode recursion at depth two.
func TestDecodeNestedKindRestrictions(t *testing.T) {
	bad := []Message{
		NodeForward{Home: 1, Region: geo.Circle{Center: geo.Pt(1, 2), R: 3},
			Inner: QueryDeregister{Query: 5}},
		NodeForward{Home: 1, Region: geo.Circle{Center: geo.Pt(1, 2), R: 3},
			Inner: NodeForward{Home: 2, Region: geo.Circle{Center: geo.Pt(1, 2), R: 3},
				Inner: MonitorCancel{Query: 5, Epoch: 1}}},
		NodeRelay{Origin: 7, Hops: 1, Inner: AnswerUpdate{Query: 5, Seq: 1, At: 2}},
		NodeRelay{Origin: 7, Hops: 1, Inner: NodeRelay{Origin: 8, Hops: 2,
			Inner: QueryDeregister{Query: 5}}},
		NodeDeliver{To: 7, Inner: MonitorCancel{Query: 5, Epoch: 1}},
	}
	for _, m := range bad {
		if _, err := Decode(Encode(nil, m)); err == nil {
			t.Errorf("%v with inner %v decoded successfully", m.Kind(), innerKind(m))
		}
	}
}

func innerKind(m Message) Kind {
	switch v := m.(type) {
	case NodeForward:
		return v.Inner.Kind()
	case NodeRelay:
		return v.Inner.Kind()
	case NodeDeliver:
		return v.Inner.Kind()
	}
	return 0
}

func TestAnswerUpdateLargeAnswer(t *testing.T) {
	ns := make([]model.Neighbor, 1000)
	for i := range ns {
		ns[i] = model.Neighbor{ID: model.ObjectID(i + 1), Dist: float64(i) * 1.5}
	}
	m := AnswerUpdate{Query: 1, At: 5, Neighbors: ns}
	got, err := Decode(Encode(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("large answer round trip mismatch")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" || k.String()[0] == 'k' && k.String() != kindNames[k] {
			t.Errorf("kind %d has bad name %q", k, k.String())
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func TestKindsCoversAllSamples(t *testing.T) {
	have := map[Kind]bool{}
	for _, m := range sampleMessages() {
		have[m.Kind()] = true
	}
	for _, k := range Kinds() {
		if !have[k] {
			t.Errorf("no sample message for kind %v; extend sampleMessages", k)
		}
	}
}

func TestMonitorInstallRegion(t *testing.T) {
	m := MonitorInstall{QueryPos: geo.Pt(5, 6), Radius: 7}
	r := m.Region()
	if r.Center != geo.Pt(5, 6) || r.R != 7 {
		t.Fatalf("Region = %v", r)
	}
	ii := InfluenceInstall{Install: m, Frontier: 3}
	if ii.Region() != r {
		t.Fatalf("InfluenceInstall.Region = %v, want %v", ii.Region(), r)
	}
}

// A NaN, infinite, or negative threshold must be rejected at decode —
// on an object agent it would silently disable (or permanently force)
// reporting. The check runs for the bare install, the same install
// nested in a NodeForward, and the handoff thresholds on the peer wire.
func TestDecodeBadThreshold(t *testing.T) {
	install := MonitorInstall{Query: 7, Epoch: 4, QueryPos: geo.Pt(50, 60),
		AnswerRadius: 80, Radius: 120, At: 19}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1}
	for _, v := range bad {
		for _, m := range []Message{
			InfluenceInstall{Install: install, Frontier: v, Band: 1},
			InfluenceInstall{Install: install, Frontier: 64, Band: v},
			NodeForward{Home: 1, Region: install.Region(),
				Inner: InfluenceInstall{Install: install, Frontier: v}},
			QueryHandoff{Query: 8, K: 4, Addr: 1001, Frontier: v},
			QueryHandoff{Query: 8, K: 4, Addr: 1001, Frontier: 70, Band: v},
		} {
			_, err := Decode(Encode(nil, m))
			if !errors.Is(err, ErrBadThreshold) {
				t.Errorf("%v with threshold %v: err = %v, want ErrBadThreshold",
					m.Kind(), v, err)
			}
		}
	}
}

// Fuzz-ish robustness: random buffers never panic and either decode to a
// valid kind or error.
func TestDecodeRandomBuffersNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		rng.Read(buf)
		m, err := Decode(buf)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}
}

func BenchmarkEncodeLocationReport(b *testing.B) {
	m := LocationReport{Object: 7, Pos: geo.Pt(1, 2), Vel: geo.Vec(3, 4), At: 42}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecodeLocationReport(b *testing.B) {
	buf := Encode(nil, LocationReport{Object: 7, Pos: geo.Pt(1, 2), Vel: geo.Vec(3, 4), At: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
