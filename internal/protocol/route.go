package protocol

import "dmknn/internal/model"

// QueryOf returns the query id a message pertains to, when it carries
// one. Every message of the query protocol proper — registration and
// track maintenance, probe traffic, membership reports, installs,
// cancels, and the answer stream — names its query, which is what makes
// exact query-id routing (internal/shard) and per-query send ordering
// possible. Kinds outside the per-query protocol (LocationReport
// keepalives, the federation's node-to-node envelopes) return false.
func QueryOf(m Message) (model.QueryID, bool) {
	switch v := m.(type) {
	case QueryRegister:
		return v.Query, true
	case QueryMove:
		return v.Query, true
	case QueryDeregister:
		return v.Query, true
	case ProbeRequest:
		return v.Query, true
	case ProbeReply:
		return v.Query, true
	case MonitorInstall:
		return v.Query, true
	case InfluenceInstall:
		return v.Install.Query, true
	case MonitorCancel:
		return v.Query, true
	case EnterReport:
		return v.Query, true
	case ExitReport:
		return v.Query, true
	case LeaveReport:
		return v.Query, true
	case MoveReport:
		return v.Query, true
	case AnswerUpdate:
		return v.Query, true
	case AnswerDelta:
		return v.Query, true
	case AnswerResync:
		return v.Query, true
	default:
		return 0, false
	}
}
