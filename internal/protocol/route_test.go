package protocol

import (
	"testing"

	"dmknn/internal/model"
)

// Every message of the per-query protocol must expose its query id
// through QueryOf; kinds outside it must report false so routers drop
// them rather than misroute to shard 0.
func TestQueryOf(t *testing.T) {
	const q = model.QueryID(42)
	carriers := []Message{
		QueryRegister{Query: q},
		QueryMove{Query: q},
		QueryDeregister{Query: q},
		ProbeRequest{Query: q},
		ProbeReply{Query: q},
		MonitorInstall{Query: q},
		InfluenceInstall{Install: MonitorInstall{Query: q}},
		MonitorCancel{Query: q},
		EnterReport{MemberReport{Query: q}},
		ExitReport{MemberReport{Query: q}},
		LeaveReport{MemberReport{Query: q}},
		MoveReport{MemberReport{Query: q}},
		AnswerUpdate{Query: q},
		AnswerDelta{Query: q},
		AnswerResync{Query: q},
	}
	for _, m := range carriers {
		got, ok := QueryOf(m)
		if !ok {
			t.Errorf("QueryOf(%v): no query id, want %d", m.Kind(), q)
			continue
		}
		if got != q {
			t.Errorf("QueryOf(%v) = %d, want %d", m.Kind(), got, q)
		}
	}

	if got, ok := QueryOf(LocationReport{Object: 7}); ok {
		t.Errorf("QueryOf(location-report) = %d, true; want false", got)
	}
	if got, ok := QueryOf(nil); ok {
		t.Errorf("QueryOf(nil) = %d, true; want false", got)
	}
}
