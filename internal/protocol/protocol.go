// Package protocol defines the message taxonomy exchanged between the
// server and the moving clients, together with a compact binary codec.
//
// The same message set serves both the metered in-memory network used by
// the experiments (internal/simnet) and the real TCP transport
// (internal/nettcp): experiments count and size exactly the messages a
// deployment would send.
//
// Directions:
//
//   - uplink: client → server unicast (the scarce wireless resource all
//     methods are compared on);
//   - downlink: server → one client unicast;
//   - broadcast: server → all clients inside a set of grid cells
//     (cell-granular wireless broadcast).
//
// Wire format: one kind byte followed by fixed-layout little-endian
// fields; AnswerUpdate carries a 16-bit count plus that many neighbor
// records. Encode never fails; Decode validates length and kind.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. The zero value is invalid so that a zeroed buffer never
// decodes successfully.
const (
	// KindLocationReport is a periodic or threshold-triggered position
	// report from an object (centralized baselines). Uplink.
	KindLocationReport Kind = iota + 1
	// KindProbeRequest asks every object inside a circle to reply with its
	// position (distributed bootstrap/fallback). Broadcast.
	KindProbeRequest
	// KindProbeReply answers a probe with the object's position. Uplink.
	KindProbeReply
	// KindMonitorInstall installs or refreshes a query monitor on all
	// objects inside the monitoring region. Broadcast.
	KindMonitorInstall
	// KindMonitorCancel removes a query monitor. Broadcast.
	KindMonitorCancel
	// KindEnterReport tells the server an aware object moved inside the
	// advertised answer radius. Uplink.
	KindEnterReport
	// KindExitReport tells the server an answer object moved outside the
	// advertised answer radius. Uplink.
	KindExitReport
	// KindLeaveReport tells the server an aware object left the monitoring
	// region and stopped monitoring. Uplink.
	KindLeaveReport
	// KindMoveReport refreshes the position of an object inside the
	// advertised answer circle after it drifted more than the in-circle
	// threshold from its last report. Uplink.
	KindMoveReport
	// KindQueryRegister registers a continuous kNN query. Uplink (from the
	// query's focal client).
	KindQueryRegister
	// KindQueryMove reports that the query focal point deviated from its
	// advertised track. Uplink.
	KindQueryMove
	// KindQueryDeregister removes a continuous query. Uplink.
	KindQueryDeregister
	// KindAnswerUpdate delivers a changed kNN answer to the query client.
	// Downlink.
	KindAnswerUpdate
	// KindAnswerDelta delivers an incremental answer change (positive and
	// negative updates) instead of the full answer. Downlink.
	KindAnswerDelta
	// KindAnswerResync asks the server for a full re-baselining
	// AnswerUpdate after the focal client detected a gap in the answer
	// sequence (a lost or reordered AnswerDelta). Uplink.
	KindAnswerResync

	// The remaining kinds travel on the inter-node link of a spatially
	// partitioned federation (internal/cluster), never over the radio.

	// KindNodeForward carries a broadcast (probe, install, cancel) from a
	// query's home node to a neighbor node whose region intersects the
	// broadcast region; the neighbor rebroadcasts it in its own cells.
	KindNodeForward
	// KindNodeRelay carries a client uplink from the node that received
	// it to the node that owns the addressed query.
	KindNodeRelay
	// KindNodeDeliver carries a downlink (answer) from a query's home
	// node to the node currently serving the focal client's region.
	KindNodeDeliver
	// KindObjectHandoff transfers an object that crossed a partition
	// boundary: its last reported kinematic state plus the per-query
	// awareness map used to purge remote monitor state on disconnect.
	KindObjectHandoff
	// KindQueryHandoff migrates a whole query monitor (candidate set,
	// inside set, epoch, answer sequence) to a new home node after the
	// focal client crossed a partition boundary.
	KindQueryHandoff
	// KindQueryHandoffAck confirms a QueryHandoff was applied, letting
	// the old home node drop its retry copy.
	KindQueryHandoffAck
	// KindNodeClientGone tells a node that relayed reports for a now
	// disconnected client to purge the client from its monitor state.
	KindNodeClientGone

	// The remaining kinds are the peer wire of a multi-process
	// federation: control frames exchanged on the node-to-node TCP
	// connections (and one downlink steering clients between nodes).

	// KindPeerHello opens a peer connection: it carries the sender's node
	// id and its view of the cluster size, so a misconfigured peer is
	// rejected at handshake time instead of corrupting routing later.
	KindPeerHello
	// KindPeerHeartbeat keeps an idle peer connection verifiably alive.
	// Each side sends one per cadence interval; missing several in a row
	// marks the peer down and tears the connection for a reconnect.
	KindPeerHeartbeat
	// KindNodeRedirect tells a client to reconnect to the node owning its
	// position (carried as that node's client listen address). Downlink.
	KindNodeRedirect

	// The remaining kinds belong to the adaptive partitioning plane
	// (internal/balance): load telemetry and partition map distribution.

	// KindNodeLoad reports one node's load sample (population, query
	// count, cumulative server busy time) to the balance coordinator.
	// Peer wire.
	KindNodeLoad
	// KindPartitionUpdate distributes a new partition map (version plus
	// the per-column owner array). It travels on the peer wire from the
	// coordinator to every node, and as a broadcast from a node to its
	// attached clients so they re-aim their supervise loops. Peer wire
	// and broadcast.
	KindPartitionUpdate
	// KindPartitionAck confirms a node applied a PartitionUpdate, letting
	// the coordinator stop retrying and unblock the next rebalance
	// decision. Peer wire.
	KindPartitionAck

	// KindInfluenceInstall is a MonitorInstall extended with the
	// influence-set frontier: a distance threshold F separating the
	// current k answers from the rest of the monitoring region, plus the
	// half-gap Band around it. Objects derive a private movement
	// threshold from F and suppress MoveReports while their motion
	// cannot change their side of the frontier. Sent instead of
	// KindMonitorInstall when the server runs in influence mode, so
	// influence-off deployments never see the kind. Broadcast.
	KindInfluenceInstall

	kindEnd // sentinel: all valid kinds are below this
)

var kindNames = map[Kind]string{
	KindLocationReport:   "location-report",
	KindProbeRequest:     "probe-request",
	KindProbeReply:       "probe-reply",
	KindMonitorInstall:   "monitor-install",
	KindMonitorCancel:    "monitor-cancel",
	KindEnterReport:      "enter-report",
	KindExitReport:       "exit-report",
	KindLeaveReport:      "leave-report",
	KindMoveReport:       "move-report",
	KindQueryRegister:    "query-register",
	KindQueryMove:        "query-move",
	KindQueryDeregister:  "query-deregister",
	KindAnswerUpdate:     "answer-update",
	KindAnswerDelta:      "answer-delta",
	KindAnswerResync:     "answer-resync",
	KindNodeForward:      "node-forward",
	KindNodeRelay:        "node-relay",
	KindNodeDeliver:      "node-deliver",
	KindObjectHandoff:    "object-handoff",
	KindQueryHandoff:     "query-handoff",
	KindQueryHandoffAck:  "query-handoff-ack",
	KindNodeClientGone:   "node-client-gone",
	KindPeerHello:        "peer-hello",
	KindPeerHeartbeat:    "peer-heartbeat",
	KindNodeRedirect:     "node-redirect",
	KindNodeLoad:         "node-load",
	KindPartitionUpdate:  "partition-update",
	KindPartitionAck:     "partition-ack",
	KindInfluenceInstall: "influence-install",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns every valid kind in ascending order, for metric tables.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindEnd)-1)
	for k := KindLocationReport; k < kindEnd; k++ {
		out = append(out, k)
	}
	return out
}

// Message is implemented by every protocol message.
type Message interface {
	Kind() Kind
}

// LocationReport carries one object position sample.
type LocationReport struct {
	Object model.ObjectID
	Pos    geo.Point
	Vel    geo.Vector
	At     model.Tick
}

// Kind implements Message.
func (LocationReport) Kind() Kind { return KindLocationReport }

// ProbeRequest asks objects inside Region to reply with their positions.
// Seq distinguishes probe rounds of the same query.
type ProbeRequest struct {
	Query  model.QueryID
	Seq    uint32
	Region geo.Circle
	At     model.Tick
}

// Kind implements Message.
func (ProbeRequest) Kind() Kind { return KindProbeRequest }

// ProbeReply answers a ProbeRequest.
type ProbeReply struct {
	Query  model.QueryID
	Seq    uint32
	Object model.ObjectID
	Pos    geo.Point
	At     model.Tick
}

// Kind implements Message.
func (ProbeReply) Kind() Kind { return KindProbeReply }

// MonitorInstall advertises a query to all objects inside the monitoring
// region. Epoch increases on every reinstall so stale state is discarded.
//
// Refresh distinguishes the two install flavors: after a full probe the
// server rebuilt its candidate state from replies, so objects baseline
// silently; on a refresh (no probe) each object must report any change of
// its inside/outside side relative to its previous monitor state, which
// keeps the server's membership knowledge exact without mass replies.
//
// RangeMode marks a fixed-radius range-monitoring query: membership
// *is* the answer, so in-boundary objects skip MoveReports entirely
// (their exact positions do not affect the result).
type MonitorInstall struct {
	Query        model.QueryID
	Epoch        uint32
	Refresh      bool
	RangeMode    bool
	QueryPos     geo.Point
	QueryVel     geo.Vector
	AnswerRadius float64 // advertised r_k (or the fixed range)
	Radius       float64 // monitoring region radius R >= r_k
	At           model.Tick
}

// Kind implements Message.
func (MonitorInstall) Kind() Kind { return KindMonitorInstall }

// Region returns the monitoring region the install covers.
func (m MonitorInstall) Region() geo.Circle {
	return geo.Circle{Center: m.QueryPos, R: m.Radius}
}

// InfluenceInstall is a MonitorInstall carrying the influence frontier.
//
// Frontier is the distance F from the query point that separates the k
// current answer objects (all strictly inside F) from every other
// candidate (all at or beyond F); Band is the half-width of the gap
// around F, kept for diagnostics and future per-annulus refinements. An
// object derives its private movement threshold as the distance from
// its last reported position's query distance to F: while its
// accumulated drift stays below that slack it provably cannot have
// crossed the frontier, so its MoveReports are pure noise and are
// suppressed. Frontier zero means "no valid frontier this epoch" and
// objects fall back to the fixed θ drift rule.
//
// Both fields must be finite and non-negative on the wire; Decode
// rejects NaN/Inf the way the server rejects non-finite register
// kinematics, so a corrupt threshold can never disable reporting.
type InfluenceInstall struct {
	Install  MonitorInstall
	Frontier float64
	Band     float64
}

// Kind implements Message.
func (InfluenceInstall) Kind() Kind { return KindInfluenceInstall }

// Region returns the monitoring region the install covers.
func (m InfluenceInstall) Region() geo.Circle { return m.Install.Region() }

// MonitorCancel tells objects to stop monitoring a query.
type MonitorCancel struct {
	Query model.QueryID
	Epoch uint32
}

// Kind implements Message.
func (MonitorCancel) Kind() Kind { return KindMonitorCancel }

// MemberReport is the shared layout of Enter/Exit/Leave reports.
type MemberReport struct {
	Query  model.QueryID
	Epoch  uint32
	Object model.ObjectID
	Pos    geo.Point
	At     model.Tick
}

// EnterReport: the object crossed inside the advertised answer radius.
type EnterReport struct{ MemberReport }

// Kind implements Message.
func (EnterReport) Kind() Kind { return KindEnterReport }

// ExitReport: an answer object crossed outside the advertised radius.
type ExitReport struct{ MemberReport }

// Kind implements Message.
func (ExitReport) Kind() Kind { return KindExitReport }

// LeaveReport: an aware object left the monitoring region entirely.
type LeaveReport struct{ MemberReport }

// Kind implements Message.
func (LeaveReport) Kind() Kind { return KindLeaveReport }

// MoveReport: an object inside the answer circle refreshed its position.
type MoveReport struct{ MemberReport }

// Kind implements Message.
func (MoveReport) Kind() Kind { return KindMoveReport }

// QueryRegister registers a continuous query at the server: a kNN query
// when Range is zero, otherwise a fixed-radius range-monitoring query
// (report all objects within Range meters of the moving focal point).
type QueryRegister struct {
	Query model.QueryID
	K     uint32
	Range float64
	Pos   geo.Point
	Vel   geo.Vector
	At    model.Tick
}

// Kind implements Message.
func (QueryRegister) Kind() Kind { return KindQueryRegister }

// QueryMove reports the query focal point's corrected position and
// velocity.
type QueryMove struct {
	Query model.QueryID
	Pos   geo.Point
	Vel   geo.Vector
	At    model.Tick
}

// Kind implements Message.
func (QueryMove) Kind() Kind { return KindQueryMove }

// QueryDeregister removes a continuous query.
type QueryDeregister struct {
	Query model.QueryID
}

// Kind implements Message.
func (QueryDeregister) Kind() Kind { return KindQueryDeregister }

// AnswerUpdate carries a complete current answer to the query client.
//
// Seq is the per-query answer sequence number: the server increments it
// on every answer message (full or delta) it downlinks for the query, so
// the focal client can detect lost, duplicated, and reordered answer
// messages. A full update is self-contained — the client accepts any Seq
// newer than the last one it applied and re-baselines from it.
//
// QPos echoes the server's dead-reckoned estimate of the query position
// at tick At. The focal client compares it against its own advertised
// track: a deviation beyond the tracking threshold proves the server
// missed a QueryMove (lost uplink), and the client re-advertises its
// track. When no uplink was lost the two estimates agree exactly, so the
// echo costs no extra traffic on a clean channel.
type AnswerUpdate struct {
	Query     model.QueryID
	Seq       uint32
	At        model.Tick
	QPos      geo.Point
	Neighbors []model.Neighbor
}

// Kind implements Message.
func (AnswerUpdate) Kind() Kind { return KindAnswerUpdate }

// AnswerDelta carries an incremental answer change: objects added to the
// answer (with distances) and objects removed. The client applies it to
// its last known answer; a full AnswerUpdate re-baselines.
//
// Seq shares the query's answer sequence with AnswerUpdate. A delta is
// only applicable when Seq is exactly one past the client's last applied
// sequence; any other value means the stream lost or reordered a message
// and the client must request a resync instead of applying it.
type AnswerDelta struct {
	Query   model.QueryID
	Seq     uint32
	At      model.Tick
	Added   []model.Neighbor
	Removed []model.ObjectID
}

// Kind implements Message.
func (AnswerDelta) Kind() Kind { return KindAnswerDelta }

// AnswerResync asks the server to re-baseline the query client with a
// full AnswerUpdate. The focal client sends it when the answer stream
// shows a sequence gap (a lost AnswerDelta) or when it restarts without
// state; LastSeq is the last sequence it applied (0 if none), which the
// server may use for diagnostics.
type AnswerResync struct {
	Query   model.QueryID
	LastSeq uint32
	At      model.Tick
}

// Kind implements Message.
func (AnswerResync) Kind() Kind { return KindAnswerResync }

// ---------------------------------------------------------------------------
// Inter-node messages (internal/cluster link)

// NodeForward wraps a broadcast for a neighbor node. Home identifies the
// sending node (the query's answer authority) so the receiver knows where
// to relay the reports the rebroadcast provokes. Region is the broadcast
// region as known at the home node — MonitorCancel does not carry one on
// the radio, so the envelope is authoritative for all three inner kinds.
// Version is the sender's partition map version at routing time; a
// receiver on a newer map treats the envelope as a stale-route hint
// rather than a routing error. Inner must be a ProbeRequest,
// MonitorInstall, or MonitorCancel.
type NodeForward struct {
	Home    uint16
	Version uint64
	Region  geo.Circle
	Inner   Message
}

// Kind implements Message.
func (NodeForward) Kind() Kind { return KindNodeForward }

// NodeRelay wraps a client uplink being forwarded between nodes. Origin
// is the client that sent it; Hops bounds forwarding chains so routing
// bugs cannot loop a message forever. Version is the sender's partition
// map version at routing time. Inner must be an uplink kind (probe
// reply, membership report, or query lifecycle message).
type NodeRelay struct {
	Origin  model.ObjectID
	Hops    uint8
	Version uint64
	Inner   Message
}

// Kind implements Message.
func (NodeRelay) Kind() Kind { return KindNodeRelay }

// NodeDeliver wraps a downlink for a client whose region belongs to
// another node. Version is the sender's partition map version at routing
// time. Inner must be an AnswerUpdate or AnswerDelta.
type NodeDeliver struct {
	To      model.ObjectID
	Version uint64
	Inner   Message
}

// Kind implements Message.
func (NodeDeliver) Kind() Kind { return KindNodeDeliver }

// AwareEntry records one query an object carries monitor state for,
// together with the node the object's reports for it were relayed to.
type AwareEntry struct {
	Query model.QueryID
	Home  uint16
}

// ObjectHandoff transfers ownership of an object that crossed a
// partition boundary. Pos/Vel/At are the object's last reported
// kinematics; Aware is the per-query awareness state the old node
// accumulated, which the new node needs to purge remote monitors when
// the client later disconnects.
type ObjectHandoff struct {
	Object model.ObjectID
	Pos    geo.Point
	Vel    geo.Vector
	At     model.Tick
	Aware  []AwareEntry
}

// Kind implements Message.
func (ObjectHandoff) Kind() Kind { return KindObjectHandoff }

// CandidateRecord is one (object, position) pair of a migrating
// monitor's candidate set.
type CandidateRecord struct {
	ID  model.ObjectID
	Pos geo.Point
}

// QueryHandoff migrates a query monitor to a new home node: the complete
// server-side state machine (core.MonitorState, flattened) plus Spread,
// the set of nodes the old home ever forwarded the query's broadcasts
// to, so the new home can reach them all on teardown.
type QueryHandoff struct {
	Query        model.QueryID
	K            uint32
	Range        float64
	Addr         model.ObjectID
	QPos         geo.Point
	QVel         geo.Vector
	QAt          model.Tick
	Epoch        uint32
	Installed    bool
	AnswerRadius float64
	Radius       float64
	InstalledAt  model.Tick
	PrevRegion   geo.Circle
	AnswerSeq    uint32
	LastProbeAt  model.Tick
	Frontier     float64
	Band         float64
	Candidates   []CandidateRecord
	Inside       []model.ObjectID
	Sent         []model.ObjectID
	Spread       []uint16
}

// Kind implements Message.
func (QueryHandoff) Kind() Kind { return KindQueryHandoff }

// QueryHandoffAck confirms a QueryHandoff was installed at the new home.
type QueryHandoffAck struct {
	Query model.QueryID
}

// Kind implements Message.
func (QueryHandoffAck) Kind() Kind { return KindQueryHandoffAck }

// NodeClientGone asks a node to purge all monitor state involving a
// disconnected client.
type NodeClientGone struct {
	Object model.ObjectID
}

// Kind implements Message.
func (NodeClientGone) Kind() Kind { return KindNodeClientGone }

// ---------------------------------------------------------------------------
// Peer wire (multi-process federation)

// PeerHello is the first frame on a node-to-node TCP connection, sent by
// the dialing side after the raw transport handshake. Node identifies the
// sender; Nodes is its configured cluster size, which the acceptor checks
// against its own so two differently-partitioned deployments cannot be
// cross-wired. Version is the sender's partition map version — the
// map-version handshake: a peer that reconnects with an older version is
// healed with a PartitionUpdate by the newer side. At is the sender's
// current tick, a coarse clock-skew sanity signal.
type PeerHello struct {
	Node    uint16
	Nodes   uint16
	Version uint64
	At      model.Tick
}

// Kind implements Message.
func (PeerHello) Kind() Kind { return KindPeerHello }

// PeerHeartbeat proves a peer connection alive between data frames. At is
// the sender's current tick.
type PeerHeartbeat struct {
	Node uint16
	At   model.Tick
}

// Kind implements Message.
func (PeerHeartbeat) Kind() Kind { return KindPeerHeartbeat }

// NodeRedirect steers a client to the federation node owning its
// position: Node is the owner's id and Addr its client listen address.
// The client dials Addr with the same client id (the reconnect replaces
// its old session) and the protocol state machines continue unchanged —
// any frame lost in the switchover is healed like ordinary loss.
type NodeRedirect struct {
	Node uint16
	Addr string
}

// Kind implements Message.
func (NodeRedirect) Kind() Kind { return KindNodeRedirect }

// ---------------------------------------------------------------------------
// Adaptive partitioning plane (internal/balance)

// NodeLoad is one node's load sample, sent to the balance coordinator
// each tick while adaptive partitioning is enabled. Population and
// Queries are instantaneous counts (attached clients, homed query
// monitors); BusyUS is the node's cumulative server busy time in
// microseconds since start, which the coordinator differences between
// decisions to get a per-window rate. Version is the sender's partition
// map version, so the coordinator only decides on samples that reflect
// the current map.
type NodeLoad struct {
	Node       uint16
	Version    uint64
	Population uint32
	Queries    uint32
	BusyUS     uint64
	At         model.Tick
}

// Kind implements Message.
func (NodeLoad) Kind() Kind { return KindNodeLoad }

// PartitionUpdate distributes a partition map: Version is the map's
// monotonically increasing version and Owners the per-column owner node
// ids (index = column). A receiver applies the map iff Version exceeds
// its current one, and always acknowledges, so retries are idempotent.
type PartitionUpdate struct {
	Version uint64
	Owners  []uint16
}

// Kind implements Message.
func (PartitionUpdate) Kind() Kind { return KindPartitionUpdate }

// PartitionAck confirms Node applied (or already had) the partition map
// with the given version.
type PartitionAck struct {
	Node    uint16
	Version uint64
}

// Kind implements Message.
func (PartitionAck) Kind() Kind { return KindPartitionAck }

// validForwardInner reports whether k may ride inside a NodeForward.
func validForwardInner(k Kind) bool {
	switch k {
	case KindProbeRequest, KindMonitorInstall, KindMonitorCancel,
		KindInfluenceInstall:
		return true
	}
	return false
}

// validRelayInner reports whether k may ride inside a NodeRelay.
func validRelayInner(k Kind) bool {
	switch k {
	case KindProbeReply, KindEnterReport, KindExitReport, KindLeaveReport,
		KindMoveReport, KindQueryRegister, KindQueryMove,
		KindQueryDeregister, KindAnswerResync:
		return true
	}
	return false
}

// validDeliverInner reports whether k may ride inside a NodeDeliver.
func validDeliverInner(k Kind) bool {
	return k == KindAnswerUpdate || k == KindAnswerDelta
}

// ---------------------------------------------------------------------------
// Codec

// ErrTruncated is returned by Decode when the buffer is shorter than the
// fixed layout of its kind requires.
var ErrTruncated = errors.New("protocol: truncated message")

// ErrUnknownKind is returned by Decode for an unrecognized kind byte.
var ErrUnknownKind = errors.New("protocol: unknown message kind")

// ErrBadThreshold is returned by Decode when an influence frontier or
// band field is NaN, infinite, or negative. A non-finite threshold would
// silently disable (or permanently force) reporting on every object that
// applied it, so the codec rejects it outright — the same defense the
// server applies to non-finite register kinematics.
var ErrBadThreshold = errors.New("protocol: non-finite or negative threshold")

// Encode serializes m, appending to dst (which may be nil) and returning
// the extended buffer.
func Encode(dst []byte, m Message) []byte {
	dst = append(dst, byte(m.Kind()))
	switch v := m.(type) {
	case LocationReport:
		dst = appendU32(dst, uint32(v.Object))
		dst = appendPoint(dst, v.Pos)
		dst = appendVec(dst, v.Vel)
		dst = appendTick(dst, v.At)
	case ProbeRequest:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Seq)
		dst = appendPoint(dst, v.Region.Center)
		dst = appendF64(dst, v.Region.R)
		dst = appendTick(dst, v.At)
	case ProbeReply:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Seq)
		dst = appendU32(dst, uint32(v.Object))
		dst = appendPoint(dst, v.Pos)
		dst = appendTick(dst, v.At)
	case MonitorInstall:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Epoch)
		dst = appendBool(dst, v.Refresh)
		dst = appendBool(dst, v.RangeMode)
		dst = appendPoint(dst, v.QueryPos)
		dst = appendVec(dst, v.QueryVel)
		dst = appendF64(dst, v.AnswerRadius)
		dst = appendF64(dst, v.Radius)
		dst = appendTick(dst, v.At)
	case InfluenceInstall:
		dst = appendU32(dst, uint32(v.Install.Query))
		dst = appendU32(dst, v.Install.Epoch)
		dst = appendBool(dst, v.Install.Refresh)
		dst = appendBool(dst, v.Install.RangeMode)
		dst = appendPoint(dst, v.Install.QueryPos)
		dst = appendVec(dst, v.Install.QueryVel)
		dst = appendF64(dst, v.Install.AnswerRadius)
		dst = appendF64(dst, v.Install.Radius)
		dst = appendTick(dst, v.Install.At)
		dst = appendF64(dst, v.Frontier)
		dst = appendF64(dst, v.Band)
	case MonitorCancel:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Epoch)
	case EnterReport:
		dst = appendMemberReport(dst, v.MemberReport)
	case ExitReport:
		dst = appendMemberReport(dst, v.MemberReport)
	case LeaveReport:
		dst = appendMemberReport(dst, v.MemberReport)
	case MoveReport:
		dst = appendMemberReport(dst, v.MemberReport)
	case QueryRegister:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.K)
		dst = appendF64(dst, v.Range)
		dst = appendPoint(dst, v.Pos)
		dst = appendVec(dst, v.Vel)
		dst = appendTick(dst, v.At)
	case QueryMove:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendPoint(dst, v.Pos)
		dst = appendVec(dst, v.Vel)
		dst = appendTick(dst, v.At)
	case QueryDeregister:
		dst = appendU32(dst, uint32(v.Query))
	case AnswerUpdate:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Seq)
		dst = appendTick(dst, v.At)
		dst = appendPoint(dst, v.QPos)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Neighbors)))
		for _, n := range v.Neighbors {
			dst = appendU32(dst, uint32(n.ID))
			dst = appendF64(dst, n.Dist)
		}
	case AnswerDelta:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.Seq)
		dst = appendTick(dst, v.At)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Added)))
		for _, n := range v.Added {
			dst = appendU32(dst, uint32(n.ID))
			dst = appendF64(dst, n.Dist)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Removed)))
		for _, id := range v.Removed {
			dst = appendU32(dst, uint32(id))
		}
	case AnswerResync:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.LastSeq)
		dst = appendTick(dst, v.At)
	case NodeForward:
		dst = appendU16(dst, v.Home)
		dst = appendU64(dst, v.Version)
		dst = appendPoint(dst, v.Region.Center)
		dst = appendF64(dst, v.Region.R)
		dst = Encode(dst, v.Inner) // nested: consumes the remainder
	case NodeRelay:
		dst = appendU32(dst, uint32(v.Origin))
		dst = append(dst, v.Hops)
		dst = appendU64(dst, v.Version)
		dst = Encode(dst, v.Inner)
	case NodeDeliver:
		dst = appendU32(dst, uint32(v.To))
		dst = appendU64(dst, v.Version)
		dst = Encode(dst, v.Inner)
	case ObjectHandoff:
		dst = appendU32(dst, uint32(v.Object))
		dst = appendPoint(dst, v.Pos)
		dst = appendVec(dst, v.Vel)
		dst = appendTick(dst, v.At)
		dst = appendU16(dst, uint16(len(v.Aware)))
		for _, a := range v.Aware {
			dst = appendU32(dst, uint32(a.Query))
			dst = appendU16(dst, a.Home)
		}
	case QueryHandoff:
		dst = appendU32(dst, uint32(v.Query))
		dst = appendU32(dst, v.K)
		dst = appendF64(dst, v.Range)
		dst = appendU32(dst, uint32(v.Addr))
		dst = appendPoint(dst, v.QPos)
		dst = appendVec(dst, v.QVel)
		dst = appendTick(dst, v.QAt)
		dst = appendU32(dst, v.Epoch)
		dst = appendBool(dst, v.Installed)
		dst = appendF64(dst, v.AnswerRadius)
		dst = appendF64(dst, v.Radius)
		dst = appendTick(dst, v.InstalledAt)
		dst = appendPoint(dst, v.PrevRegion.Center)
		dst = appendF64(dst, v.PrevRegion.R)
		dst = appendU32(dst, v.AnswerSeq)
		dst = appendTick(dst, v.LastProbeAt)
		dst = appendF64(dst, v.Frontier)
		dst = appendF64(dst, v.Band)
		dst = appendU32(dst, uint32(len(v.Candidates)))
		for _, c := range v.Candidates {
			dst = appendU32(dst, uint32(c.ID))
			dst = appendPoint(dst, c.Pos)
		}
		dst = appendU32(dst, uint32(len(v.Inside)))
		for _, id := range v.Inside {
			dst = appendU32(dst, uint32(id))
		}
		dst = appendU32(dst, uint32(len(v.Sent)))
		for _, id := range v.Sent {
			dst = appendU32(dst, uint32(id))
		}
		dst = appendU16(dst, uint16(len(v.Spread)))
		for _, n := range v.Spread {
			dst = appendU16(dst, n)
		}
	case QueryHandoffAck:
		dst = appendU32(dst, uint32(v.Query))
	case NodeClientGone:
		dst = appendU32(dst, uint32(v.Object))
	case PeerHello:
		dst = appendU16(dst, v.Node)
		dst = appendU16(dst, v.Nodes)
		dst = appendU64(dst, v.Version)
		dst = appendTick(dst, v.At)
	case PeerHeartbeat:
		dst = appendU16(dst, v.Node)
		dst = appendTick(dst, v.At)
	case NodeRedirect:
		dst = appendU16(dst, v.Node)
		dst = appendU16(dst, uint16(len(v.Addr)))
		dst = append(dst, v.Addr...)
	case NodeLoad:
		dst = appendU16(dst, v.Node)
		dst = appendU64(dst, v.Version)
		dst = appendU32(dst, v.Population)
		dst = appendU32(dst, v.Queries)
		dst = appendU64(dst, v.BusyUS)
		dst = appendTick(dst, v.At)
	case PartitionUpdate:
		dst = appendU64(dst, v.Version)
		dst = appendU16(dst, uint16(len(v.Owners)))
		for _, o := range v.Owners {
			dst = appendU16(dst, o)
		}
	case PartitionAck:
		dst = appendU16(dst, v.Node)
		dst = appendU64(dst, v.Version)
	default:
		panic(fmt.Sprintf("protocol: Encode of unknown type %T", m))
	}
	return dst
}

// EncodedSize returns the wire size of m in bytes.
func EncodedSize(m Message) int {
	// Small messages: encoding is cheap enough that sizing via Encode
	// would be acceptable, but the fixed layouts let us answer directly.
	switch v := m.(type) {
	case LocationReport:
		return 1 + 4 + 16 + 16 + 8
	case ProbeRequest:
		return 1 + 4 + 4 + 16 + 8 + 8
	case ProbeReply:
		return 1 + 4 + 4 + 4 + 16 + 8
	case MonitorInstall:
		return 1 + 4 + 4 + 1 + 1 + 16 + 16 + 8 + 8 + 8
	case InfluenceInstall:
		return 1 + 4 + 4 + 1 + 1 + 16 + 16 + 8 + 8 + 8 + 8 + 8
	case MonitorCancel:
		return 1 + 4 + 4
	case EnterReport, ExitReport, LeaveReport, MoveReport:
		return 1 + memberReportSize
	case QueryRegister:
		return 1 + 4 + 4 + 8 + 16 + 16 + 8
	case QueryMove:
		return 1 + 4 + 16 + 16 + 8
	case QueryDeregister:
		return 1 + 4
	case AnswerUpdate:
		return 1 + 4 + 4 + 8 + 16 + 2 + len(v.Neighbors)*12
	case AnswerDelta:
		return 1 + 4 + 4 + 8 + 2 + len(v.Added)*12 + 2 + len(v.Removed)*4
	case AnswerResync:
		return 1 + 4 + 4 + 8
	case NodeForward:
		return 1 + 2 + 8 + 16 + 8 + EncodedSize(v.Inner)
	case NodeRelay:
		return 1 + 4 + 1 + 8 + EncodedSize(v.Inner)
	case NodeDeliver:
		return 1 + 4 + 8 + EncodedSize(v.Inner)
	case ObjectHandoff:
		return 1 + 4 + 16 + 16 + 8 + 2 + len(v.Aware)*6
	case QueryHandoff:
		return 1 + 4 + 4 + 8 + 4 + 16 + 16 + 8 + 4 + 1 + 8 + 8 + 8 + 24 + 4 + 8 + 8 + 8 +
			4 + len(v.Candidates)*20 + 4 + len(v.Inside)*4 + 4 + len(v.Sent)*4 +
			2 + len(v.Spread)*2
	case QueryHandoffAck:
		return 1 + 4
	case NodeClientGone:
		return 1 + 4
	case PeerHello:
		return 1 + 2 + 2 + 8 + 8
	case PeerHeartbeat:
		return 1 + 2 + 8
	case NodeRedirect:
		return 1 + 2 + 2 + len(v.Addr)
	case NodeLoad:
		return 1 + 2 + 8 + 4 + 4 + 8 + 8
	case PartitionUpdate:
		return 1 + 8 + 2 + len(v.Owners)*2
	case PartitionAck:
		return 1 + 2 + 8
	default:
		panic(fmt.Sprintf("protocol: EncodedSize of unknown type %T", m))
	}
}

const memberReportSize = 4 + 4 + 4 + 16 + 8

// Decode parses one message from buf. The entire buffer must be consumed;
// trailing bytes are an error, which catches framing bugs early.
func Decode(buf []byte) (Message, error) {
	if len(buf) < 1 {
		return nil, ErrTruncated
	}
	k := Kind(buf[0])
	r := reader{buf: buf[1:]}
	var m Message
	switch k {
	case KindLocationReport:
		m = LocationReport{
			Object: model.ObjectID(r.u32()),
			Pos:    r.point(),
			Vel:    r.vec(),
			At:     r.tick(),
		}
	case KindProbeRequest:
		m = ProbeRequest{
			Query:  model.QueryID(r.u32()),
			Seq:    r.u32(),
			Region: geo.Circle{Center: r.point(), R: r.f64()},
			At:     r.tick(),
		}
	case KindProbeReply:
		m = ProbeReply{
			Query:  model.QueryID(r.u32()),
			Seq:    r.u32(),
			Object: model.ObjectID(r.u32()),
			Pos:    r.point(),
			At:     r.tick(),
		}
	case KindMonitorInstall:
		m = MonitorInstall{
			Query:        model.QueryID(r.u32()),
			Epoch:        r.u32(),
			Refresh:      r.bool(),
			RangeMode:    r.bool(),
			QueryPos:     r.point(),
			QueryVel:     r.vec(),
			AnswerRadius: r.f64(),
			Radius:       r.f64(),
			At:           r.tick(),
		}
	case KindInfluenceInstall:
		ii := InfluenceInstall{
			Install: MonitorInstall{
				Query:        model.QueryID(r.u32()),
				Epoch:        r.u32(),
				Refresh:      r.bool(),
				RangeMode:    r.bool(),
				QueryPos:     r.point(),
				QueryVel:     r.vec(),
				AnswerRadius: r.f64(),
				Radius:       r.f64(),
				At:           r.tick(),
			},
			Frontier: r.f64(),
			Band:     r.f64(),
		}
		if !r.failed && (!validThreshold(ii.Frontier) || !validThreshold(ii.Band)) {
			return nil, ErrBadThreshold
		}
		m = ii
	case KindMonitorCancel:
		m = MonitorCancel{
			Query: model.QueryID(r.u32()),
			Epoch: r.u32(),
		}
	case KindEnterReport:
		m = EnterReport{r.memberReport()}
	case KindExitReport:
		m = ExitReport{r.memberReport()}
	case KindLeaveReport:
		m = LeaveReport{r.memberReport()}
	case KindMoveReport:
		m = MoveReport{r.memberReport()}
	case KindQueryRegister:
		m = QueryRegister{
			Query: model.QueryID(r.u32()),
			K:     r.u32(),
			Range: r.f64(),
			Pos:   r.point(),
			Vel:   r.vec(),
			At:    r.tick(),
		}
	case KindQueryMove:
		m = QueryMove{
			Query: model.QueryID(r.u32()),
			Pos:   r.point(),
			Vel:   r.vec(),
			At:    r.tick(),
		}
	case KindQueryDeregister:
		m = QueryDeregister{Query: model.QueryID(r.u32())}
	case KindAnswerUpdate:
		au := AnswerUpdate{
			Query: model.QueryID(r.u32()),
			Seq:   r.u32(),
			At:    r.tick(),
			QPos:  r.point(),
		}
		n := int(r.u16())
		if !r.failed && n > 0 {
			au.Neighbors = make([]model.Neighbor, 0, n)
			for i := 0; i < n; i++ {
				au.Neighbors = append(au.Neighbors, model.Neighbor{
					ID:   model.ObjectID(r.u32()),
					Dist: r.f64(),
				})
			}
		}
		m = au
	case KindAnswerDelta:
		ad := AnswerDelta{
			Query: model.QueryID(r.u32()),
			Seq:   r.u32(),
			At:    r.tick(),
		}
		na := int(r.u16())
		if !r.failed && na > 0 {
			ad.Added = make([]model.Neighbor, 0, na)
			for i := 0; i < na; i++ {
				ad.Added = append(ad.Added, model.Neighbor{
					ID:   model.ObjectID(r.u32()),
					Dist: r.f64(),
				})
			}
		}
		nr := int(r.u16())
		if !r.failed && nr > 0 {
			ad.Removed = make([]model.ObjectID, 0, nr)
			for i := 0; i < nr; i++ {
				ad.Removed = append(ad.Removed, model.ObjectID(r.u32()))
			}
		}
		m = ad
	case KindAnswerResync:
		m = AnswerResync{
			Query:   model.QueryID(r.u32()),
			LastSeq: r.u32(),
			At:      r.tick(),
		}
	case KindNodeForward:
		nf := NodeForward{
			Home:    r.u16(),
			Version: r.u64(),
			Region:  geo.Circle{Center: r.point(), R: r.f64()},
		}
		nf.Inner = r.nested(validForwardInner)
		m = nf
	case KindNodeRelay:
		nr := NodeRelay{
			Origin:  model.ObjectID(r.u32()),
			Hops:    r.u8(),
			Version: r.u64(),
		}
		nr.Inner = r.nested(validRelayInner)
		m = nr
	case KindNodeDeliver:
		nd := NodeDeliver{To: model.ObjectID(r.u32()), Version: r.u64()}
		nd.Inner = r.nested(validDeliverInner)
		m = nd
	case KindObjectHandoff:
		oh := ObjectHandoff{
			Object: model.ObjectID(r.u32()),
			Pos:    r.point(),
			Vel:    r.vec(),
			At:     r.tick(),
		}
		n := int(r.u16())
		if !r.failed && n > 0 {
			oh.Aware = make([]AwareEntry, 0, n)
			for i := 0; i < n; i++ {
				oh.Aware = append(oh.Aware, AwareEntry{
					Query: model.QueryID(r.u32()),
					Home:  r.u16(),
				})
			}
		}
		m = oh
	case KindQueryHandoff:
		qh := QueryHandoff{
			Query:        model.QueryID(r.u32()),
			K:            r.u32(),
			Range:        r.f64(),
			Addr:         model.ObjectID(r.u32()),
			QPos:         r.point(),
			QVel:         r.vec(),
			QAt:          r.tick(),
			Epoch:        r.u32(),
			Installed:    r.bool(),
			AnswerRadius: r.f64(),
			Radius:       r.f64(),
			InstalledAt:  r.tick(),
			PrevRegion:   geo.Circle{Center: r.point(), R: r.f64()},
			AnswerSeq:    r.u32(),
			LastProbeAt:  r.tick(),
			Frontier:     r.f64(),
			Band:         r.f64(),
		}
		if !r.failed && (!validThreshold(qh.Frontier) || !validThreshold(qh.Band)) {
			return nil, ErrBadThreshold
		}
		if nc := r.count32(20); nc > 0 {
			qh.Candidates = make([]CandidateRecord, 0, nc)
			for i := 0; i < nc; i++ {
				qh.Candidates = append(qh.Candidates, CandidateRecord{
					ID:  model.ObjectID(r.u32()),
					Pos: r.point(),
				})
			}
		}
		if ni := r.count32(4); ni > 0 {
			qh.Inside = make([]model.ObjectID, 0, ni)
			for i := 0; i < ni; i++ {
				qh.Inside = append(qh.Inside, model.ObjectID(r.u32()))
			}
		}
		if ns := r.count32(4); ns > 0 {
			qh.Sent = make([]model.ObjectID, 0, ns)
			for i := 0; i < ns; i++ {
				qh.Sent = append(qh.Sent, model.ObjectID(r.u32()))
			}
		}
		nsp := int(r.u16())
		if !r.failed && nsp > 0 {
			qh.Spread = make([]uint16, 0, nsp)
			for i := 0; i < nsp; i++ {
				qh.Spread = append(qh.Spread, r.u16())
			}
		}
		m = qh
	case KindQueryHandoffAck:
		m = QueryHandoffAck{Query: model.QueryID(r.u32())}
	case KindNodeClientGone:
		m = NodeClientGone{Object: model.ObjectID(r.u32())}
	case KindPeerHello:
		m = PeerHello{Node: r.u16(), Nodes: r.u16(), Version: r.u64(), At: r.tick()}
	case KindPeerHeartbeat:
		m = PeerHeartbeat{Node: r.u16(), At: r.tick()}
	case KindNodeRedirect:
		m = NodeRedirect{Node: r.u16(), Addr: r.str()}
	case KindNodeLoad:
		m = NodeLoad{
			Node:       r.u16(),
			Version:    r.u64(),
			Population: r.u32(),
			Queries:    r.u32(),
			BusyUS:     r.u64(),
			At:         r.tick(),
		}
	case KindPartitionUpdate:
		pu := PartitionUpdate{Version: r.u64()}
		n := int(r.u16())
		if !r.failed && n > 0 {
			pu.Owners = make([]uint16, 0, n)
			for i := 0; i < n; i++ {
				pu.Owners = append(pu.Owners, r.u16())
			}
		}
		m = pu
	case KindPartitionAck:
		m = PartitionAck{Node: r.u16(), Version: r.u64()}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
	if r.failed {
		if r.err != nil {
			return nil, r.err
		}
		return nil, ErrTruncated
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after %v", len(r.buf), k)
	}
	return m, nil
}

// reader consumes little-endian fields, latching failure on underflow so
// call sites stay linear. err carries a more specific decode error than
// the default ErrTruncated when one is known (a nested message's own
// decode failure).
type reader struct {
	buf    []byte
	failed bool
	err    error
}

func (r *reader) take(n int) []byte {
	if r.failed || len(r.buf) < n {
		r.failed = true
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *reader) tick() model.Tick {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return model.Tick(binary.LittleEndian.Uint64(b))
}

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	// Strict: only 0 and 1 are valid bool encodings, so every accepted
	// message has exactly one byte representation.
	if b[0] > 1 {
		r.failed = true
		return false
	}
	return b[0] == 1
}

// str reads a u16 length prefix and that many bytes as a string.
func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// validThreshold reports whether v is usable as an influence frontier or
// band: finite and non-negative.
func validThreshold(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// count32 reads a u32 element count and rejects values that could not
// possibly fit in the remaining buffer (given recordSize bytes per
// element), so a corrupt count cannot drive a huge allocation.
func (r *reader) count32(recordSize int) int {
	n := int(r.u32())
	if r.failed {
		return 0
	}
	if n*recordSize > len(r.buf) {
		r.failed = true
		return 0
	}
	return n
}

// nested consumes the remainder of the buffer as one embedded message.
// The inner kind is validated *before* recursing, and every valid inner
// kind is a leaf, so decoding depth is bounded at two. The recursive
// Decode enforces full consumption, which keeps nested framing
// canonical: the envelope ends exactly where the inner message does.
func (r *reader) nested(valid func(Kind) bool) Message {
	if r.failed {
		return nil
	}
	if len(r.buf) == 0 || !valid(Kind(r.buf[0])) {
		r.failed = true
		return nil
	}
	b := r.buf
	r.buf = nil
	in, err := Decode(b)
	if err != nil {
		r.failed = true
		r.err = err
		return nil
	}
	return in
}

func (r *reader) point() geo.Point { return geo.Pt(r.f64(), r.f64()) }

func (r *reader) vec() geo.Vector { return geo.Vec(r.f64(), r.f64()) }

func (r *reader) memberReport() MemberReport {
	return MemberReport{
		Query:  model.QueryID(r.u32()),
		Epoch:  r.u32(),
		Object: model.ObjectID(r.u32()),
		Pos:    r.point(),
		At:     r.tick(),
	}
}

func appendU16(dst []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(dst, v)
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendTick(dst []byte, t model.Tick) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(t))
}

func appendPoint(dst []byte, p geo.Point) []byte {
	dst = appendF64(dst, p.X)
	return appendF64(dst, p.Y)
}

func appendVec(dst []byte, v geo.Vector) []byte {
	dst = appendF64(dst, v.X)
	return appendF64(dst, v.Y)
}

func appendMemberReport(dst []byte, m MemberReport) []byte {
	dst = appendU32(dst, uint32(m.Query))
	dst = appendU32(dst, m.Epoch)
	dst = appendU32(dst, uint32(m.Object))
	dst = appendPoint(dst, m.Pos)
	return appendTick(dst, m.At)
}
