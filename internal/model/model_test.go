package model

import (
	"testing"

	"dmknn/internal/geo"
)

func TestAnswerHelpers(t *testing.T) {
	a := Answer{Query: 1, At: 5, Neighbors: []Neighbor{
		{ID: 3, Dist: 1}, {ID: 7, Dist: 2}, {ID: 2, Dist: 4},
	}}
	if got := a.IDs(); len(got) != 3 || got[0] != 3 || got[2] != 2 {
		t.Errorf("IDs = %v", got)
	}
	set := a.IDSet()
	if !set[3] || !set[7] || !set[2] || set[1] {
		t.Errorf("IDSet = %v", set)
	}
	if a.KthDist() != 4 {
		t.Errorf("KthDist = %v", a.KthDist())
	}
	var empty Answer
	if empty.KthDist() != 0 {
		t.Error("empty KthDist should be 0")
	}
	if len(empty.IDs()) != 0 || len(empty.IDSet()) != 0 {
		t.Error("empty answer helpers")
	}
}

func TestSortNeighbors(t *testing.T) {
	ns := []Neighbor{{ID: 5, Dist: 2}, {ID: 1, Dist: 2}, {ID: 9, Dist: 1}}
	SortNeighbors(ns)
	if ns[0].ID != 9 || ns[1].ID != 1 || ns[2].ID != 5 {
		t.Errorf("sorted = %v (want distance order, ties by id)", ns)
	}
}

func TestSameMembers(t *testing.T) {
	a := Answer{Neighbors: []Neighbor{{ID: 1, Dist: 1}, {ID: 2, Dist: 2}}}
	b := Answer{Neighbors: []Neighbor{{ID: 2, Dist: 9}, {ID: 1, Dist: 8}}}
	c := Answer{Neighbors: []Neighbor{{ID: 1, Dist: 1}, {ID: 3, Dist: 2}}}
	d := Answer{Neighbors: []Neighbor{{ID: 1, Dist: 1}}}
	if !SameMembers(a, b) {
		t.Error("order and distances must not matter")
	}
	if SameMembers(a, c) {
		t.Error("different members equal")
	}
	if SameMembers(a, d) {
		t.Error("different sizes equal")
	}
	if !SameMembers(Answer{}, Answer{}) {
		t.Error("empty answers should match")
	}
}

func TestQuerySpecValidate(t *testing.T) {
	ok := QuerySpec{ID: 1, K: 5, Pos: geo.Pt(1, 2)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := QuerySpec{ID: 1, K: 0}
	if bad.Validate() == nil {
		t.Error("k=0 accepted")
	}
}

func TestNeighborString(t *testing.T) {
	if (Neighbor{ID: 3, Dist: 1.5}).String() == "" {
		t.Error("empty neighbor string")
	}
}
