// Package model defines the identifier and result types shared by every
// layer of the engine: object and query identifiers, discrete simulation
// time, and the neighbor/answer value types exchanged between the spatial
// index, the query processors, and the wire protocol.
//
// It is a leaf package: it may depend on internal/geo only, so that index,
// protocol, and simulation packages can all share these types without
// import cycles.
package model

import (
	"cmp"
	"fmt"
	"slices"

	"dmknn/internal/geo"
)

// ObjectID identifies a moving data object (e.g. one vehicle).
type ObjectID uint32

// QueryID identifies a registered continuous kNN query.
type QueryID uint32

// NoObject is the zero ObjectID, reserved to mean "none".
const NoObject ObjectID = 0

// Tick is a discrete simulation timestamp. One tick is one evaluation
// interval of the continuous queries (Δt seconds of simulated time).
type Tick int64

// Neighbor is one element of a kNN result: an object and its distance from
// the query point at evaluation time.
type Neighbor struct {
	ID   ObjectID
	Dist float64
}

// String implements fmt.Stringer.
func (n Neighbor) String() string { return fmt.Sprintf("%d@%.2f", n.ID, n.Dist) }

// Answer is the result of one evaluation of a kNN query: the k nearest
// objects in non-decreasing distance order. An Answer with fewer than k
// members means fewer than k objects exist (or, for a distributed method
// mid-recovery, that the answer is temporarily incomplete).
type Answer struct {
	Query     QueryID
	At        Tick
	Neighbors []Neighbor
}

// IDs returns the member object ids in answer order.
func (a Answer) IDs() []ObjectID {
	ids := make([]ObjectID, len(a.Neighbors))
	for i, n := range a.Neighbors {
		ids[i] = n.ID
	}
	return ids
}

// IDSet returns the member object ids as a set.
func (a Answer) IDSet() map[ObjectID]bool {
	s := make(map[ObjectID]bool, len(a.Neighbors))
	for _, n := range a.Neighbors {
		s[n.ID] = true
	}
	return s
}

// KthDist returns the distance of the farthest member, or 0 for an empty
// answer. For a complete answer this is the answer radius r_k.
func (a Answer) KthDist() float64 {
	if len(a.Neighbors) == 0 {
		return 0
	}
	return a.Neighbors[len(a.Neighbors)-1].Dist
}

// SortNeighbors orders ns by distance, breaking ties by object id so that
// results are deterministic across methods and runs.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		if c := cmp.Compare(a.Dist, b.Dist); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// SameMembers reports whether two answers contain exactly the same object
// ids, ignoring order and distances.
func SameMembers(a, b Answer) bool {
	if len(a.Neighbors) != len(b.Neighbors) {
		return false
	}
	set := a.IDSet()
	for _, n := range b.Neighbors {
		if !set[n.ID] {
			return false
		}
	}
	return true
}

// ObjectState is the kinematic state of one moving object: its position and
// current velocity. Mobility models evolve it; query processors read it.
type ObjectState struct {
	ID  ObjectID
	Pos geo.Point
	Vel geo.Vector
}

// QuerySpec describes one continuous query to register: a kNN query when
// Range is zero (the K nearest objects), otherwise a fixed-radius range
// monitoring query (all objects within Range meters); plus the initial
// kinematic state of the query point (focal object).
type QuerySpec struct {
	ID    QueryID
	K     int
	Range float64
	Pos   geo.Point
	Vel   geo.Vector
}

// IsRange reports whether the spec is a range-monitoring query.
func (q QuerySpec) IsRange() bool { return q.Range > 0 }

// Validate reports a descriptive error when the spec is unusable.
func (q QuerySpec) Validate() error {
	if q.Range < 0 {
		return fmt.Errorf("model: query %d has negative range %v", q.ID, q.Range)
	}
	if q.K <= 0 && q.Range == 0 {
		return fmt.Errorf("model: query %d has non-positive k=%d and no range", q.ID, q.K)
	}
	return nil
}
