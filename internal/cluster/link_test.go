package cluster

import (
	"testing"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

func TestLinkConfigValidate(t *testing.T) {
	for _, cfg := range []LinkConfig{
		{LatencyTicks: -1},
		{Loss: -0.1},
		{Loss: 1.0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			cfg.validate()
		}()
	}
}

// The conservation invariant of the link metering: once the queue is
// drained, every sent message was either delivered or dropped.
func TestLinkConservationUnderLossAndLatency(t *testing.T) {
	now := model.Tick(0)
	l := NewMemLink(LinkConfig{LatencyTicks: 2, Loss: 0.3, Seed: 7}, func() model.Tick { return now })
	delivered := 0
	l.OnDeliver(func(from, to int, m protocol.Message) {
		delivered++
		// Handoff-churn shape: some deliveries trigger a reply.
		if delivered%3 == 0 {
			l.Send(to, from, protocol.QueryHandoffAck{Query: 1})
		}
	})
	for tick := 0; tick < 50; tick++ {
		now = model.Tick(tick)
		for i := 0; i < 8; i++ {
			l.Send(i%4, (i+1)%4, protocol.NodeClientGone{Object: model.ObjectID(i)})
		}
		l.Flush()
	}
	// Drain: advance past the latency horizon until nothing is pending.
	for l.PendingCount() > 0 {
		now++
		l.Flush()
	}
	s := l.Stats()
	if s.Sent != s.Delivered+s.Dropped {
		t.Fatalf("conservation violated: sent %d != delivered %d + dropped %d",
			s.Sent, s.Delivered, s.Dropped)
	}
	if s.Dropped == 0 || s.Delivered == 0 {
		t.Fatalf("degenerate run: delivered %d, dropped %d", s.Delivered, s.Dropped)
	}
	if s.SentBytes == 0 {
		t.Fatal("no bytes metered")
	}
	if uint64(delivered) != s.Delivered {
		t.Fatalf("handler saw %d deliveries, stats say %d", delivered, s.Delivered)
	}
}

// Latency is honored exactly: a message becomes deliverable only once
// the clock reaches send-tick + LatencyTicks.
func TestLinkLatency(t *testing.T) {
	now := model.Tick(10)
	l := NewMemLink(LinkConfig{LatencyTicks: 3}, func() model.Tick { return now })
	got := 0
	l.OnDeliver(func(from, to int, m protocol.Message) { got++ })
	l.Send(0, 1, protocol.QueryHandoffAck{Query: 1})
	for ; now < 13; now++ {
		if l.Flush() != 0 {
			t.Fatalf("delivered at tick %d, due at 13", now)
		}
	}
	if l.Flush() != 1 || got != 1 {
		t.Fatal("message not delivered at its due tick")
	}
}

// Zero-latency conversations complete within one Flush.
func TestLinkSameTickConversation(t *testing.T) {
	now := model.Tick(5)
	l := NewMemLink(LinkConfig{}, func() model.Tick { return now })
	var seen []protocol.Kind
	l.OnDeliver(func(from, to int, m protocol.Message) {
		seen = append(seen, m.Kind())
		if _, ok := m.(protocol.QueryHandoff); ok {
			l.Send(to, from, protocol.QueryHandoffAck{Query: 1})
		}
	})
	l.Send(0, 1, protocol.QueryHandoff{Query: 1, K: 1})
	if n := l.Flush(); n != 2 {
		t.Fatalf("flush delivered %d messages, want request+reply", n)
	}
	if len(seen) != 2 || seen[0] != protocol.KindQueryHandoff || seen[1] != protocol.KindQueryHandoffAck {
		t.Fatalf("wrong delivery order: %v", seen)
	}
}

// Identical seeds draw identical loss patterns.
func TestLinkDeterministicLoss(t *testing.T) {
	run := func() LinkStats {
		now := model.Tick(0)
		l := NewMemLink(LinkConfig{Loss: 0.4, Seed: 42}, func() model.Tick { return now })
		l.OnDeliver(func(from, to int, m protocol.Message) {})
		for tick := 0; tick < 30; tick++ {
			now = model.Tick(tick)
			for i := 0; i < 5; i++ {
				l.Send(0, 1, protocol.NodeClientGone{Object: model.ObjectID(i)})
			}
			l.Flush()
		}
		return l.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
}
