package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmknn/internal/balance"
	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
	"dmknn/internal/nettcp"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// redirectClient is a minimal redirect-following client side, standing
// in for the deployment shell's fedConn: on NodeRedirect it re-dials the
// named node and swaps the live connection, so a migrated monitor's new
// home can reach the client on its own radio.
type redirectClient struct {
	mu sync.Mutex
	id model.ObjectID
	cl *nettcp.Client
	h  func(protocol.Message)
}

func (rc *redirectClient) Uplink(m protocol.Message) {
	rc.mu.Lock()
	cl := rc.cl
	rc.mu.Unlock()
	if cl != nil {
		cl.Uplink(m)
	}
}

func (rc *redirectClient) handle(msg protocol.Message) {
	if v, ok := msg.(protocol.NodeRedirect); ok {
		nc, err := nettcp.Dial(v.Addr, rc.id, transport.ClientHandlerFunc(rc.handle))
		if err != nil {
			return
		}
		rc.mu.Lock()
		old := rc.cl
		rc.cl = nc
		rc.mu.Unlock()
		if old != nil {
			// Async: Close waits for the read loop this handler may be
			// running on.
			go old.Close()
		}
		return
	}
	rc.h(msg)
}

func (rc *redirectClient) Close() {
	rc.mu.Lock()
	cl := rc.cl
	rc.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// Two Members over real TCP links with the balancer on: a population
// hotspot at node 0 (six clients vs four) makes the coordinator hand
// boundary column 4 to node 1, which migrates the focal monitor living
// in that column. The answer must stay exact before, across, and after
// the move, including an object that then teleports into the moved
// column — its enter report has to traverse the rebalanced ownership
// (install forwarded to node 0's radio, report relayed to the monitor's
// new home on node 1).
func TestMemberAdaptiveBalanceLiveMigration(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	geom := grid.NewGeometry(world, 10, 10)
	part, err := NewPartition(geom, 2)
	if err != nil {
		t.Fatal(err)
	}

	var tickNow atomic.Int64
	now := func() model.Tick { return model.Tick(tickNow.Load()) }

	cfg := core.Config{
		HorizonTicks:   8,
		MinProbeRadius: 150,
		AnswerSlack:    1,
	}.WithWorldDefault(world)

	peerAddrs := reservePorts(t, 2)
	radios := make([]*nettcp.Server, 2)
	links := make([]*TCPLink, 2)
	members := make([]*Member, 2)
	clientAddrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		rd, err := nettcp.Listen("127.0.0.1:0", geom)
		if err != nil {
			t.Fatal(err)
		}
		go rd.Serve()
		t.Cleanup(func() { rd.Close() })
		radios[i] = rd
		clientAddrs[i] = rd.Addr().String()
	}
	for i := 0; i < 2; i++ {
		l, err := NewTCPLink(TCPConfig{
			Node:           i,
			Addrs:          peerAddrs,
			Heartbeat:      50 * time.Millisecond,
			DialBackoffMin: 10 * time.Millisecond,
			Now:            now,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		links[i] = l
		mb, err := NewMember(part, i, cfg, MemberDeps{
			Link:           l,
			Radio:          r(radios, i),
			ClientAddrs:    clientAddrs,
			Now:            now,
			DT:             1,
			MaxObjectSpeed: 10,
			MaxQuerySpeed:  0,
			LatencyTicks:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = mb
		radios[i].AttachHandler(mb)
	}
	waitCond(t, 5*time.Second, "peer link up", func() bool {
		return links[0].PeerUp(1) && links[1].PeerUp(0)
	})

	// The static boundary is x=500 (node 0 owns columns 0-4). A node's
	// population is the clients that have *spoken* to it, so every object
	// sits inside the focal's probe region (MinProbeRadius 150 around
	// (450,500)) and replies to the initial probe: six clients attach at
	// node 0 (objects 1-5 and the query), four at node 1. With the
	// balancer weighing population only, the first decision moves column
	// 4 (x in [400,500)) to node 1 with relative gain 2/15 ≈ 0.13; the
	// next-best move (column 3) gains only 1/12 < MinGain=0.1, so the map
	// deterministically settles at version 1 with a 4/6 column split.
	var posMu sync.Mutex
	positions := map[model.ObjectID]geo.Point{
		1: geo.Pt(430, 500), // d=20 from the focal — in the k=2 answer
		2: geo.Pt(470, 520), // d≈28 — in the answer, inside column 4
		3: geo.Pt(390, 480), // d≈63, column 3
		4: geo.Pt(350, 550), // d≈112, column 3
		5: geo.Pt(340, 420), // d≈136, column 3
		6: geo.Pt(530, 500), // node 1, d=80; teleports into the answer later
		7: geo.Pt(520, 550), // d≈86, column 5
		8: geo.Pt(560, 460), // d≈117, column 5
		9: geo.Pt(575, 540), // d≈131, column 5
	}
	readPos := func(id model.ObjectID) func() geo.Point {
		return func() geo.Point {
			posMu.Lock()
			defer posMu.Unlock()
			return positions[id]
		}
	}
	nodeFor := func(id model.ObjectID) int {
		posMu.Lock()
		defer posMu.Unlock()
		return part.NodeOf(positions[id])
	}

	agents := map[model.ObjectID]*core.ObjectAgent{}
	for id := model.ObjectID(1); id <= 9; id++ {
		var agent *core.ObjectAgent
		cl, err := nettcp.Dial(clientAddrs[nodeFor(id)], id, transport.ClientHandlerFunc(func(msg protocol.Message) {
			agent.HandleServerMessage(msg)
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		agent, err = core.NewObjectAgent(cfg, core.AgentDeps{
			ID: id, Side: cl, Now: now, Pos: readPos(id), DT: 1, LatencyTicks: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = agent
	}

	// The query follows redirects: after its monitor migrates, the new
	// home redirects the client so answers flow from the node that owns
	// the focal — exactly the deployment shell's client behavior.
	focal := geo.Pt(450, 500)
	var qa *core.QueryAgent
	rq := &redirectClient{id: 100, h: func(msg protocol.Message) { qa.HandleServerMessage(msg) }}
	qcl, err := nettcp.Dial(clientAddrs[0], 100, transport.ClientHandlerFunc(rq.handle))
	if err != nil {
		t.Fatal(err)
	}
	rq.cl = qcl
	defer rq.Close()
	qa, err = core.NewQueryAgent(cfg, model.QuerySpec{ID: 1, K: 2, Pos: focal},
		core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID: 100, Side: rq, Now: now,
				Pos: func() geo.Point { return focal },
				DT:  1, LatencyTicks: 2,
			},
			Vel: func() geo.Vector { return geo.Vec(0, 0) },
		})
	if err != nil {
		t.Fatal(err)
	}

	settle := func() { time.Sleep(40 * time.Millisecond) }
	step := func() {
		tickNow.Add(1)
		n := now()
		qa.Tick(n)
		for id := model.ObjectID(1); id <= 9; id++ {
			agents[id].Tick(n)
		}
		settle()
		for _, mb := range members {
			mb.Tick(n)
		}
		settle()
		for r := 0; r < 6; r++ {
			act := false
			for _, mb := range members {
				act = mb.Finalize(n) || act
			}
			settle()
			if !act {
				break
			}
		}
	}
	waitAnswer := func(what string, timeout time.Duration, want ...model.ObjectID) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			step()
			a := qa.Answer()
			ids := a.IDSet()
			ok := len(a.Neighbors) == len(want)
			for _, id := range want {
				ok = ok && ids[id]
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: answer = %v, want %v", what, a.Neighbors, want)
			}
		}
	}

	// Converge under the static map first, so the monitor is homed at
	// node 0 when the move strands it — the migration must ship live
	// monitor state, not re-register a fresh query.
	waitAnswer("static map", 10*time.Second, 1, 2)
	if members[0].LocalQueries() != 1 {
		t.Fatalf("query homed at node %v, want 0", members[1].LocalQueries())
	}
	if v := members[0].PartitionVersion(); v != 0 {
		t.Fatalf("pre-balance partition version = %d, want 0", v)
	}

	bcfg := balance.Config{IntervalTicks: 3, MinGain: 0.1, PopWeight: 1}
	for _, mb := range members {
		mb.EnableBalancer(bcfg)
	}

	// The coordinator needs a fresh NodeLoad from node 1 before it can
	// decide; the move then distributes as a versioned PartitionUpdate
	// both nodes apply.
	waitCond(t, 15*time.Second, "column move to commit on both nodes", func() bool {
		step()
		return members[0].PartitionVersion() == 1 && members[1].PartitionVersion() == 1
	})
	if oc0, oc1 := members[0].OwnedColumns(), members[1].OwnedColumns(); oc0 != 4 || oc1 != 6 {
		t.Errorf("owned columns = %d/%d, want 4/6", oc0, oc1)
	}
	bs := members[0].BalancerStats()
	if bs.Decisions == 0 || bs.Moves != 1 {
		t.Errorf("coordinator balancer stats = %+v, want exactly 1 move", bs)
	}
	if bs1 := members[1].BalancerStats(); bs1.Moves != 0 {
		t.Errorf("non-coordinator balancer stats = %+v, want zero", bs1)
	}
	for i, mb := range members {
		if cm := mb.Stats().ColumnMoves; cm != 1 {
			t.Errorf("node %d ColumnMoves = %d, want 1", i, cm)
		}
	}
	np := members[1].Partition()
	if np.Version() != 1 || np.NodeOf(focal) != 1 {
		t.Errorf("post-move map: version=%d owner(focal)=%d, want 1/1", np.Version(), np.NodeOf(focal))
	}

	// The focal sits in the moved column, so the monitor migrates to
	// node 1 through the query-handoff path; the answer keeps flowing to
	// the query client still attached at node 0 and stays exact.
	waitCond(t, 15*time.Second, "monitor to migrate to node 1", func() bool {
		step()
		return members[1].LocalQueries() == 1 && members[0].LocalQueries() == 0
	})
	waitAnswer("across the migration", 15*time.Second, 1, 2)
	if a := members[1].Answer(1); len(a.Neighbors) != 2 {
		t.Errorf("migrated monitor's answer = %v, want 2 neighbors", a.Neighbors)
	}

	// Object 2 moves within the moved column, keeping its distance to the
	// focal: the answer must not change, but the report — attached at
	// node 0, positioned in node 1's new strip — must hand the object off
	// across the rebalanced boundary.
	posMu.Lock()
	positions[2] = geo.Pt(430, 480)
	posMu.Unlock()
	waitCond(t, 15*time.Second, "object handoff across the moved boundary", func() bool {
		step()
		return members[0].Stats().ObjectHandoffs >= 1
	})
	waitAnswer("after in-column movement", 15*time.Second, 1, 2)

	// A stale peer hello (a node that rejoined at version 0) must be
	// pushed the current map; the re-send is idempotent at node 1, which
	// acks without applying.
	members[0].handlePeerHello(1, 0)
	waitAnswer("after stale-hello map push", 10*time.Second, 1, 2)
	if v := members[1].PartitionVersion(); v != 1 {
		t.Errorf("partition version after duplicate update = %d, want 1", v)
	}

	// Movement across the rebalanced boundary: object 6 (attached at
	// node 1, already holding the monitor) teleports next to the focal,
	// into the column node 1 now owns. Its enter report is served by the
	// monitor's new home and the answer — delivered cross-node to the
	// query still attached at node 0 — flips to {1,6}, evicting object 2.
	posMu.Lock()
	positions[6] = geo.Pt(460, 480)
	posMu.Unlock()
	waitAnswer("after teleport into moved column", 20*time.Second, 1, 6)

	if members[0].Redirects() == 0 {
		t.Error("no redirect issued for the handed-off object")
	}
	// The query's redirect detached it from node 0 (its attach entry at
	// node 1 reappears on its next uplink, which a stationary query may
	// never send); the nine objects stay attached where they dialed.
	if a0, a1 := members[0].AttachedCount(), members[1].AttachedCount(); a0 != 5 || a1 < 4 {
		t.Errorf("attached clients = %d/%d, want 5 at node 0 and >=4 at node 1", a0, a1)
	}
	if members[0].Node() != 0 || members[1].Node() != 1 {
		t.Error("Node() accessor mismatch")
	}
	if members[1].Server() == nil || members[1].QueryCount() != 1 {
		t.Errorf("node 1 QueryCount = %d, want 1", members[1].QueryCount())
	}
	if members[1].BusyTime() <= 0 {
		t.Error("node 1 reports zero busy time despite hosting the monitor")
	}
	if links[0].Addr() == nil {
		t.Error("link reports no bound address")
	}
	if n := links[0].Flush(); n != 0 {
		t.Errorf("push-driven link flushed %d messages, want 0", n)
	}
}
