package cluster

import (
	"testing"

	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

// seqAdvanced reports whether b is a newer answer sequence than a under
// the protocol's wraparound comparison (mirrors core's seqNewer).
func seqAdvanced(a, b uint32) bool { return int32(b-a) > 0 }

// Satellite: the handoff-race soak. A focal client drifting across a
// strip boundary migrates its monitor (query handoff) while the objects
// it monitors cross the same boundary (object handoffs) — the two
// mechanisms race at the same seam. The invariant under an ideal link:
// the client-facing answer sequence for every query only ever advances,
// across any number of migrations, and the answers stay exact. The
// flight recorder is the witness: it captures every answer send and both
// handoff kinds, and dumps the protocol history if the soak fails.
func TestSoakQueryHandoffRacesObjectHandoff(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 240
	rec := obs.NewRecorder(1 << 18)
	cfg.Trace = rec
	obs.DumpOnFailure(t, rec)

	m := mustMethod(t, 2, proto(), LinkConfig{})
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Errorf("exactness = %v under handoff churn", ex)
	}
	st := m.Cluster().Stats()
	if st.ObjectHandoffs == 0 || st.QueryHandoffs == 0 {
		t.Fatalf("soak exercised no race: %+v", st)
	}
	if rec.Count(obs.EvHandoffAcked) == 0 {
		t.Error("no handoff was ever acked")
	}

	// Answer-sequence continuity per query, across migrations: every
	// answer the federation sends carries a seq strictly newer than the
	// previous one for that query (an ideal link resends nothing).
	lastSeq := map[model.QueryID]uint32{}
	answers := 0
	migrated := map[model.QueryID]bool{}
	objHandoffTicks := map[model.Tick]bool{}
	racedTicks := 0
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvAnswerFull, obs.EvAnswerDelta:
			answers++
			if prev, ok := lastSeq[ev.Query]; ok && !seqAdvanced(prev, ev.Seq) {
				t.Fatalf("answer seq regressed for query %d: %d after %d (t=%d)",
					ev.Query, ev.Seq, prev, ev.At)
			}
			lastSeq[ev.Query] = ev.Seq
		case obs.EvQueryHandoffBegun:
			migrated[ev.Query] = true
		case obs.EvObjectHandoffBegun:
			objHandoffTicks[ev.At] = true
		}
	}
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvQueryHandoffBegun && objHandoffTicks[ev.At] {
			racedTicks++
		}
	}
	if answers == 0 {
		t.Fatal("trace recorded no answers")
	}
	if len(migrated) == 0 {
		t.Fatal("no query ever migrated")
	}
	if racedTicks == 0 {
		t.Error("no tick saw a query handoff and an object handoff together; the race never happened")
	}
	for q := range migrated {
		if _, ok := lastSeq[q]; !ok {
			t.Errorf("query %d migrated but no answer was ever traced for it", q)
		}
	}
	t.Logf("soak: %d answers, %d migrated queries, %d object handoffs, %d same-tick races",
		answers, len(migrated), st.ObjectHandoffs, racedTicks)
}
