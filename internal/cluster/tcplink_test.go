package cluster

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// reservePorts picks n distinct loopback addresses by binding and
// releasing listeners; the dial loops' backoff absorbs the tiny window
// in which another process could steal one.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func testTCPConfig(node int, addrs []string) TCPConfig {
	return TCPConfig{
		Node:           node,
		Addrs:          addrs,
		Heartbeat:      50 * time.Millisecond,
		DialBackoffMin: 10 * time.Millisecond,
		DialBackoffMax: 100 * time.Millisecond,
	}
}

// linkRecorder collects deliveries thread-safely.
type linkRecorder struct {
	mu   sync.Mutex
	msgs []protocol.Message
	from []int
}

func (r *linkRecorder) handle(from, to int, m protocol.Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, m)
	r.from = append(r.from, from)
}

func (r *linkRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestTCPLinkFullMesh(t *testing.T) {
	const n = 3
	addrs := reservePorts(t, n)
	links := make([]*TCPLink, n)
	recs := make([]*linkRecorder, n)
	for i := 0; i < n; i++ {
		l, err := NewTCPLink(testTCPConfig(i, addrs))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		links[i] = l
		recs[i] = &linkRecorder{}
		l.OnDeliver(recs[i].handle)
	}
	for i, l := range links {
		waitCond(t, 5*time.Second, fmt.Sprintf("node %d mesh", i), func() bool {
			return l.ConnectedCount() == n-1
		})
	}

	// Every ordered pair exchanges one distinct message.
	sent := 0
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			links[from].Send(from, to, protocol.NodeClientGone{
				Object: model.ObjectID(from*10 + to),
			})
			sent++
		}
	}
	for to := 0; to < n; to++ {
		to := to
		waitCond(t, 5*time.Second, fmt.Sprintf("node %d deliveries", to), func() bool {
			return recs[to].count() == n-1
		})
		recs[to].mu.Lock()
		for i, m := range recs[to].msgs {
			from := recs[to].from[i]
			want := model.ObjectID(from*10 + to)
			if g, ok := m.(protocol.NodeClientGone); !ok || g.Object != want {
				t.Errorf("node %d delivery %d: got %#v from %d, want object %d", to, i, m, from, want)
			}
		}
		recs[to].mu.Unlock()
	}

	// A structured federation message round-trips intact.
	fw := protocol.NodeForward{
		Home:   1,
		Region: geo.Circle{Center: geo.Pt(10, 20), R: 30},
		Inner:  protocol.MonitorInstall{Query: 7, Epoch: 2, QueryPos: geo.Pt(10, 20), Radius: 30},
	}
	links[1].Send(1, 0, fw)
	waitCond(t, 5*time.Second, "forward delivery", func() bool { return recs[0].count() == n })
	recs[0].mu.Lock()
	last := recs[0].msgs[len(recs[0].msgs)-1]
	recs[0].mu.Unlock()
	got, ok := last.(protocol.NodeForward)
	if !ok || got.Home != fw.Home || got.Region != fw.Region {
		t.Fatalf("forward = %#v, want %#v", last, fw)
	}
	if inner, ok := got.Inner.(protocol.MonitorInstall); !ok || inner.Query != 7 || inner.Epoch != 2 {
		t.Fatalf("forward inner = %#v", got.Inner)
	}

	st := links[0].Stats()
	if st.Sent != uint64(n-1) || st.Delivered != uint64(n-1) || st.Dropped != 0 {
		t.Errorf("node 0 stats = %+v", st)
	}
}

// A killed peer is detected, sends to it are metered drops, and a
// restarted peer on the same address is redialed and serves again.
func TestTCPLinkReconnectAfterPeerDeath(t *testing.T) {
	addrs := reservePorts(t, 2)
	l0, err := NewTCPLink(testTCPConfig(0, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer l0.Close()
	rec0 := &linkRecorder{}
	l0.OnDeliver(rec0.handle)

	l1, err := NewTCPLink(testTCPConfig(1, addrs))
	if err != nil {
		t.Fatal(err)
	}
	rec1 := &linkRecorder{}
	l1.OnDeliver(rec1.handle)
	waitCond(t, 5*time.Second, "pair up", func() bool {
		return l0.PeerUp(1) && l1.PeerUp(0)
	})

	// Kill node 1 entirely.
	l1.Close()
	waitCond(t, 5*time.Second, "death detected", func() bool { return !l0.PeerUp(1) })
	l0.Send(0, 1, protocol.NodeClientGone{Object: 5})
	st := l0.Stats()
	if st.Dropped == 0 {
		t.Error("send to dead peer not metered as drop")
	}

	// Restart node 1 on the same address; node 0's dial loop reconnects.
	l1b, err := NewTCPLink(testTCPConfig(1, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer l1b.Close()
	rec1b := &linkRecorder{}
	l1b.OnDeliver(rec1b.handle)
	waitCond(t, 10*time.Second, "reconnect", func() bool { return l0.PeerUp(1) })
	l0.Send(0, 1, protocol.NodeClientGone{Object: 6})
	waitCond(t, 5*time.Second, "post-reconnect delivery", func() bool { return rec1b.count() == 1 })
}

// A connection that is not a valid peer (wrong opening frame, wrong
// cluster size, or an id that violates the lower-dials-higher policy)
// never becomes a session.
func TestTCPLinkRejectsBadHello(t *testing.T) {
	addrs := reservePorts(t, 2)
	// Only node 1 runs; we impersonate node 0 (and invalid ids) at it.
	l1, err := NewTCPLink(testTCPConfig(1, addrs))
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()

	try := func(hello protocol.Message) error {
		c, err := net.Dial("tcp", addrs[1])
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := writePeerFrame(c, hello, time.Second); err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = readPeerFrame(c)
		return err
	}

	// Wrong cluster size: rejected (connection closed, no hello reply).
	if err := try(protocol.PeerHello{Node: 0, Nodes: 9}); err == nil {
		t.Error("wrong cluster size accepted")
	}
	// Higher id dialing a lower one violates the dial policy.
	if err := try(protocol.PeerHello{Node: 1, Nodes: 2}); err == nil {
		t.Error("self-id hello accepted")
	}
	// A non-hello opening frame is rejected.
	if err := try(protocol.NodeClientGone{Object: 1}); err == nil {
		t.Error("non-hello opening frame accepted")
	}
	// The real node 0 is accepted.
	if err := try(protocol.PeerHello{Node: 0, Nodes: 2}); err != nil {
		t.Errorf("valid hello rejected: %v", err)
	}
}
