package cluster

import (
	"fmt"
	"testing"

	"dmknn/internal/balance"
	"dmknn/internal/workload"

	"dmknn/internal/sim"
)

// The migration-safety invariant of adaptive partitioning: with the
// balancer enabled under a skewed (hotspot) workload, the partition map
// actually moves — and every audited answer on every tick, including the
// ticks a column migration is in flight, stays exact. Clients must not be
// able to tell the map changed.
func TestAdaptiveClusterStaysExactUnderHotspot(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			cfg, err := workload.WithMobility(workload.Quick(), workload.ModelHotspot)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Ticks = 120
			m, err := NewAdaptiveMethod(nodes, proto(), LinkConfig{}, balance.Config{
				IntervalTicks: 8,
				MinGain:       0.02,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit.Evaluations() == 0 {
				t.Fatal("no audited answers")
			}
			if ex := res.Audit.Exactness(); ex != 1.0 {
				t.Fatalf("exactness = %v (recall mean %v, worst %v) — adaptive partitioning broke the invariant",
					ex, res.Audit.MeanRecall(), res.Audit.WorstRecall())
			}
			st := m.Cluster().Stats()
			if st.ColumnMoves == 0 {
				t.Fatal("hotspot run never moved a column — balancer inert")
			}
			if got := m.Cluster().Partition().Version(); got != st.ColumnMoves {
				t.Errorf("partition version %d != column moves %d", got, st.ColumnMoves)
			}
			bs := m.Cluster().BalancerStats()
			if bs.Moves != st.ColumnMoves {
				t.Errorf("balancer moves %d != applied moves %d", bs.Moves, st.ColumnMoves)
			}
			if bs.Decisions < bs.Moves {
				t.Errorf("decisions %d < moves %d", bs.Decisions, bs.Moves)
			}
			// The shared ref tracks the installed map.
			if rv := m.Cluster().PartitionRef().Load().Version(); rv != m.Cluster().Partition().Version() {
				t.Errorf("partition ref at version %d, cluster at %d", rv, m.Cluster().Partition().Version())
			}
		})
	}
}

// With the balancer disabled nothing changes: the map stays at version 0
// and no columns move, so the static federation is bit-for-bit the
// pre-balancer one.
func TestStaticClusterNeverMovesColumns(t *testing.T) {
	cfg, err := workload.WithMobility(workload.Quick(), workload.ModelHotspot)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ticks = 60
	m := mustMethod(t, 4, proto(), LinkConfig{})
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("exactness = %v", ex)
	}
	if st := m.Cluster().Stats(); st.ColumnMoves != 0 {
		t.Errorf("static cluster moved %d columns", st.ColumnMoves)
	}
	if v := m.Cluster().Partition().Version(); v != 0 {
		t.Errorf("static cluster at partition version %d", v)
	}
}
