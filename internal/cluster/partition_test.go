package cluster

import (
	"slices"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
)

// Edge-case coverage for the partition math that TestPartitionMath's
// interior sweeps do not reach: degenerate node counts, exact strip
// boundaries, out-of-world points, and multi-strip broadcast straddles —
// plus the MoveColumn/PartitionFromOwners surface the balancer drives.

func partGeom() grid.Geometry {
	return grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 16, 16)
}

func TestNewPartitionRejectsDegenerateNodeCounts(t *testing.T) {
	geom := partGeom()
	if _, err := NewPartition(geom, 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewPartition(geom, -3); err == nil {
		t.Error("negative node count accepted")
	}
	// More nodes than columns: some node would own no cells, so no
	// restricted broadcast could ever reach its clients.
	if _, err := NewPartition(geom, 17); err == nil {
		t.Error("17 nodes over 16 columns accepted")
	}
	if p, err := NewPartition(geom, 16); err != nil || p.Nodes() != 16 {
		t.Errorf("one-column-per-node partition rejected: %v", err)
	}
}

func TestNodeOfExactStripBoundaries(t *testing.T) {
	geom := partGeom()
	p, err := NewPartition(geom, 4) // strips at x = 0, 250, 500, 750
	if err != nil {
		t.Fatal(err)
	}
	// A point exactly on a strip boundary belongs to the right strip:
	// NodeOf must agree with CellOf's half-open cell intervals so
	// ownership and broadcast clipping never disagree.
	for i, x := range []float64{0, 250, 500, 750} {
		pt := geo.Pt(x, 500)
		if got := p.NodeOf(pt); got != i {
			t.Errorf("NodeOf(%v) = %d, want %d", pt, got, i)
		}
		if got, want := p.NodeOf(pt), p.CellOwner(geom.CellOf(pt)); got != want {
			t.Errorf("NodeOf(%v) = %d disagrees with CellOwner %d", pt, got, want)
		}
	}
	// The world's right edge clamps into the last column, not out of range.
	if got := p.NodeOf(geo.Pt(1000, 500)); got != 3 {
		t.Errorf("NodeOf(right edge) = %d, want 3", got)
	}
}

func TestNodeOfOutOfWorldPoints(t *testing.T) {
	p, err := NewPartition(partGeom(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pt   geo.Point
		want int
	}{
		{geo.Pt(-500, 500), 0}, // west of the world → leftmost strip
		{geo.Pt(2000, 500), 3}, // east of the world → rightmost strip
		{geo.Pt(300, -100), 1}, // north/south overflow keeps the x strip
		{geo.Pt(300, 5000), 1},
		{geo.Pt(-1, -1), 0}, // corner overflow
		{geo.Pt(10000, 10000), 3},
	}
	for _, c := range cases {
		if got := p.NodeOf(c.pt); got != c.want {
			t.Errorf("NodeOf(%v) = %d, want %d", c.pt, got, c.want)
		}
	}
}

func TestVisitIntersectingThreeStripStraddle(t *testing.T) {
	p, err := NewPartition(partGeom(), 4) // 250-wide strips
	if err != nil {
		t.Fatal(err)
	}
	// A circle centered in strip 1 wide enough to poke into strips 0 and
	// 2 but not 3.
	region := geo.Circle{Center: geo.Pt(375, 500), R: 200}
	var got []int
	p.VisitIntersecting(region, func(n int) { got = append(got, n) })
	if want := []int{0, 1, 2}; !slices.Equal(got, want) {
		t.Errorf("VisitIntersecting(%v) = %v, want %v", region, got, want)
	}
	// Degenerate regions visit nothing.
	p.VisitIntersecting(geo.Circle{Center: geo.Pt(375, 500), R: -1}, func(n int) {
		t.Errorf("negative-radius region visited node %d", n)
	})
}

func TestMoveColumnShiftsBoundary(t *testing.T) {
	geom := partGeom()
	p, err := NewPartition(geom, 4) // columns 0-3, 4-7, 8-11, 12-15
	if err != nil {
		t.Fatal(err)
	}
	if p.Version() != 0 {
		t.Fatalf("fresh partition version = %d", p.Version())
	}
	np, err := p.MoveColumn(3, 1) // node 0's right boundary column → node 1
	if err != nil {
		t.Fatal(err)
	}
	if np.Version() != 1 {
		t.Fatalf("version after move = %d, want 1", np.Version())
	}
	if got := np.CellOwner(grid.Cell{Col: 3, Row: 0}); got != 1 {
		t.Fatalf("column 3 owned by %d after move, want 1", got)
	}
	// The original partition is untouched (copy-on-write).
	if got := p.CellOwner(grid.Cell{Col: 3, Row: 0}); got != 0 {
		t.Fatalf("MoveColumn mutated the source partition (column 3 → %d)", got)
	}
	// Regions follow the columns: the 0/1 boundary moved from 250 to 187.5.
	if np.Region(0).Max.X != np.Region(1).Min.X {
		t.Fatalf("gap between strips after move: %v vs %v", np.Region(0), np.Region(1))
	}
	if np.Region(0).Max.X >= p.Region(0).Max.X {
		t.Fatalf("strip 0 did not shrink: %v", np.Region(0))
	}
	// NodeOf follows: a point in column 3 now belongs to node 1.
	if got := np.NodeOf(geo.Pt(230, 500)); got != 1 {
		t.Fatalf("NodeOf(column 3) = %d after move, want 1", got)
	}
	// Strips still tile the world.
	if np.Region(0).Min.X != 0 || np.Region(3).Max.X != 1000 {
		t.Fatal("strips no longer span the world after move")
	}
}

func TestMoveColumnRejectsIllegalMoves(t *testing.T) {
	p, err := NewPartition(partGeom(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.MoveColumn(-1, 1); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := p.MoveColumn(16, 1); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := p.MoveColumn(3, 4); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := p.MoveColumn(3, 0); err == nil {
		t.Error("no-op move accepted")
	}
	// Column 3 (node 0) is not adjacent to node 2's strip.
	if _, err := p.MoveColumn(3, 2); err == nil {
		t.Error("non-adjacent move accepted")
	}
	// An interior column may not move even to the adjacent node: strips
	// must stay contiguous.
	if _, err := p.MoveColumn(2, 1); err == nil {
		t.Error("interior-column move accepted")
	}
	// A single-column strip may not give up its last column.
	single, err := NewPartition(partGeom(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.MoveColumn(5, 6); err == nil {
		t.Error("last-column move accepted")
	}
}

func TestPartitionFromOwnersRoundTrip(t *testing.T) {
	geom := partGeom()
	p, err := NewPartition(geom, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Walk a few moves, rebuild from the owner array at each step, and
	// check the rebuilt partition matches the moved one everywhere.
	for _, mv := range []struct{ col, to int }{{3, 1}, {7, 2}, {3, 0}} {
		np, err := p.MoveColumn(mv.col, mv.to)
		if err != nil {
			t.Fatalf("MoveColumn(%d,%d): %v", mv.col, mv.to, err)
		}
		rebuilt, err := PartitionFromOwners(geom, np.Owners(), np.Nodes(), np.Version())
		if err != nil {
			t.Fatalf("PartitionFromOwners after (%d,%d): %v", mv.col, mv.to, err)
		}
		if rebuilt.Version() != np.Version() {
			t.Fatalf("rebuilt version %d != %d", rebuilt.Version(), np.Version())
		}
		if !slices.Equal(rebuilt.Owners(), np.Owners()) {
			t.Fatal("rebuilt owners differ")
		}
		for i := 0; i < np.Nodes(); i++ {
			if rebuilt.Region(i) != np.Region(i) {
				t.Fatalf("rebuilt region %d = %v, want %v", i, rebuilt.Region(i), np.Region(i))
			}
		}
		p = np
	}
}

func TestPartitionFromOwnersRejectsCorruptMaps(t *testing.T) {
	geom := partGeom()
	bad := [][]int{
		{0, 0, 1, 1}, // wrong length
		nil,          // empty
		{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 0}, // non-contiguous
		{1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2, 3, 3, 3, 3}, // strips out of node order
		{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}, // node 3 owns nothing
		{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 4, 4, 4, 4}, // owner out of range
	}
	for _, owners := range bad {
		if _, err := PartitionFromOwners(geom, owners, 4, 1); err == nil {
			t.Errorf("corrupt owner array %v accepted", owners)
		}
	}
	if _, err := PartitionFromOwners(geom, evenOwners16(4), 0, 1); err == nil {
		t.Error("zero node count accepted")
	}
}

// evenOwners16 mirrors NewPartition's even division over 16 columns.
func evenOwners16(nodes int) []int {
	owners := make([]int, 16)
	base, rem := 16/nodes, 16%nodes
	col := 0
	for i := 0; i < nodes; i++ {
		w := base
		if i < rem {
			w++
		}
		for j := 0; j < w; j++ {
			owners[col+j] = i
		}
		col += w
	}
	return owners
}
