package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// TCPConfig parameterizes a TCPLink, the inter-node transport of a
// multi-process federation.
type TCPConfig struct {
	// Node is this process's node id.
	Node int
	// Addrs holds every node's peer listen address, indexed by node id;
	// Addrs[Node] is the address this link listens on (":0" picks a free
	// port). len(Addrs) is the cluster size.
	Addrs []string
	// Heartbeat is the keepalive cadence on an idle peer connection; a
	// peer silent for 3 heartbeats is declared dead and redialed.
	// Defaults to DefaultHeartbeat.
	Heartbeat time.Duration
	// DialBackoffMin/Max bound the reconnect backoff (exponential,
	// doubling from Min to Max). Default 50ms..2s.
	DialBackoffMin time.Duration
	DialBackoffMax time.Duration
	// WriteTimeout bounds each frame write, like nettcp's: a peer whose
	// reader stalled fails the write and is redialed instead of blocking
	// the federation's send path. Defaults to DefaultPeerWriteTimeout.
	WriteTimeout time.Duration
	// Now supplies the tick stamped into PeerHello frames (diagnostic
	// only). Nil means tick zero.
	Now func() model.Tick
}

// Peer-wire liveness defaults.
const (
	DefaultHeartbeat        = 500 * time.Millisecond
	DefaultPeerWriteTimeout = 5 * time.Second
)

func (c TCPConfig) withDefaults() TCPConfig {
	if c.Heartbeat == 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.DialBackoffMin == 0 {
		c.DialBackoffMin = 50 * time.Millisecond
	}
	if c.DialBackoffMax == 0 {
		c.DialBackoffMax = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultPeerWriteTimeout
	}
	return c
}

// maxPeerFrame bounds a peer frame payload. Query handoffs carry whole
// monitor state machines, so the bound is the same generous one nettcp
// uses for the client wire.
const maxPeerFrame = 1 << 20

// TCPLink carries inter-node messages over real TCP connections, one per
// peer pair: the lower-numbered node dials, the higher-numbered accepts,
// so exactly one connection exists per pair and a simultaneous-open race
// cannot happen. Connections open with a PeerHello exchange validating
// node id and cluster size, stay alive under PeerHeartbeat keepalives,
// and redial with exponential backoff when they drop.
//
// Unlike MemLink there is no queue: Send writes the frame immediately
// (delivery is push-driven from the peer's read goroutine), a send to a
// disconnected peer is a metered drop — the federation protocol tolerates
// loss by design, healing through handoff retry and periodic reinstalls —
// and Flush is a no-op returning 0.
//
// Send and the delivery callback run on arbitrary goroutines; the
// consumer must be safe for concurrent use (Member serializes internally).
type TCPLink struct {
	cfg     TCPConfig
	ln      net.Listener
	deliver func(from, to int, m protocol.Message)

	mu      sync.Mutex
	peers   []*peerConn // indexed by node id; [self] unused
	stats   LinkStats
	closed  bool
	version func() uint64                  // stamped into outgoing hellos
	onHello func(peer int, version uint64) // observes peer hello versions

	wg sync.WaitGroup
}

// peerConn is the live session to one peer, nil conn when down.
type peerConn struct {
	mu   sync.Mutex // serializes writes and conn replacement
	conn net.Conn
}

// NewTCPLink binds the node's peer listener and starts the accept and
// dial loops. The delivery handler must be installed with OnDeliver
// before any peer traffic can arrive — in practice, before peers are up;
// frames arriving earlier are metered as drops.
func NewTCPLink(cfg TCPConfig) (*TCPLink, error) {
	cfg = cfg.withDefaults()
	n := len(cfg.Addrs)
	if n < 1 {
		return nil, fmt.Errorf("cluster: tcp link needs at least one address")
	}
	if cfg.Node < 0 || cfg.Node >= n {
		return nil, fmt.Errorf("cluster: tcp link node %d outside [0,%d)", cfg.Node, n)
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Node])
	if err != nil {
		return nil, fmt.Errorf("cluster: tcp link listen: %w", err)
	}
	l := &TCPLink{cfg: cfg, ln: ln}
	l.peers = make([]*peerConn, n)
	for i := range l.peers {
		l.peers[i] = &peerConn{}
	}
	l.wg.Add(1)
	go l.acceptLoop()
	for peer := cfg.Node + 1; peer < n; peer++ {
		l.wg.Add(1)
		go l.dialLoop(peer)
	}
	return l, nil
}

// Addr returns the bound peer listen address (useful with ":0").
func (l *TCPLink) Addr() net.Addr { return l.ln.Addr() }

// OnDeliver installs the delivery handler, called from peer read
// goroutines.
func (l *TCPLink) OnDeliver(fn func(from, to int, m protocol.Message)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.deliver = fn
}

// SetVersion installs the supplier whose value is stamped into outgoing
// PeerHello frames (the partition map version in a balance-enabled
// federation). Nil leaves hellos at version 0.
func (l *TCPLink) SetVersion(fn func() uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version = fn
}

// OnHello installs an observer of peer hello versions, invoked from
// session goroutines once a handshake completes (after the session is
// live, so the observer may send to the peer) and for every in-session
// PeerHello frame. A balance-enabled Member uses it to push the current
// partition map to peers that handshake with a stale version.
func (l *TCPLink) OnHello(fn func(peer int, version uint64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onHello = fn
}

func (l *TCPLink) notifyHello(peer int, version uint64) {
	l.mu.Lock()
	fn := l.onHello
	l.mu.Unlock()
	if fn != nil {
		fn(peer, version)
	}
}

// Send implements Link: write the frame to the peer's live connection,
// or meter a drop if the peer is down. Loss is survivable by protocol
// design; liveness is restored by the dial loop.
func (l *TCPLink) Send(from, to int, m protocol.Message) {
	l.mu.Lock()
	l.stats.Sent++
	l.stats.SentBytes += uint64(protocol.EncodedSize(m))
	l.mu.Unlock()
	if to < 0 || to >= len(l.peers) || to == l.cfg.Node {
		l.drop()
		return
	}
	if err := l.peers[to].write(m, l.cfg.WriteTimeout); err != nil {
		l.drop()
		return
	}
	l.mu.Lock()
	l.stats.Delivered++
	l.mu.Unlock()
}

// Flush implements Link. Delivery is push-driven by the peer read
// goroutines, so there is never anything queued to flush.
func (l *TCPLink) Flush() int { return 0 }

// Stats implements Link.
func (l *TCPLink) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// PeerUp reports whether the session to a peer is currently established.
func (l *TCPLink) PeerUp(peer int) bool {
	if peer < 0 || peer >= len(l.peers) || peer == l.cfg.Node {
		return false
	}
	p := l.peers[peer]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn != nil
}

// ConnectedCount returns how many peer sessions are established.
func (l *TCPLink) ConnectedCount() int {
	n := 0
	for i := range l.peers {
		if l.PeerUp(i) {
			n++
		}
	}
	return n
}

// Close stops the listener, tears down every peer session, and waits for
// the loops to exit.
func (l *TCPLink) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	err := l.ln.Close()
	for i, p := range l.peers {
		if i == l.cfg.Node {
			continue
		}
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	l.wg.Wait()
	return err
}

func (l *TCPLink) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

func (l *TCPLink) drop() {
	l.mu.Lock()
	l.stats.Dropped++
	l.mu.Unlock()
}

func (l *TCPLink) hello() protocol.PeerHello {
	var at model.Tick
	if l.cfg.Now != nil {
		at = l.cfg.Now()
	}
	h := protocol.PeerHello{Node: uint16(l.cfg.Node), Nodes: uint16(len(l.cfg.Addrs)), At: at}
	l.mu.Lock()
	ver := l.version
	l.mu.Unlock()
	if ver != nil {
		h.Version = ver()
	}
	return h
}

// ---------------------------------------------------------------------------
// Connection establishment

// acceptLoop serves the listener: each accepted connection must open with
// a valid PeerHello from a lower-numbered node (the dial policy), is
// answered with our own hello, and becomes that peer's session.
func (l *TCPLink) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return // Close shut the listener
		}
		l.wg.Add(1)
		go func(c net.Conn) {
			defer l.wg.Done()
			peer, ver, err := l.acceptHandshake(c)
			if err != nil {
				c.Close()
				return
			}
			l.runSession(peer, ver, c)
		}(c)
	}
}

func (l *TCPLink) acceptHandshake(c net.Conn) (int, uint64, error) {
	c.SetReadDeadline(time.Now().Add(3 * l.cfg.Heartbeat))
	m, err := readPeerFrame(c)
	if err != nil {
		return 0, 0, err
	}
	c.SetReadDeadline(time.Time{})
	hello, ok := m.(protocol.PeerHello)
	if !ok {
		return 0, 0, fmt.Errorf("cluster: peer opened with %v, want peer-hello", m.Kind())
	}
	peer := int(hello.Node)
	if int(hello.Nodes) != len(l.cfg.Addrs) || peer >= l.cfg.Node || peer < 0 {
		return 0, 0, fmt.Errorf("cluster: bad peer hello node=%d nodes=%d", hello.Node, hello.Nodes)
	}
	if err := writePeerFrame(c, l.hello(), l.cfg.WriteTimeout); err != nil {
		return 0, 0, err
	}
	return peer, hello.Version, nil
}

// dialLoop keeps the session to a higher-numbered peer alive: dial,
// handshake, serve until the connection dies, back off, redial.
func (l *TCPLink) dialLoop(peer int) {
	defer l.wg.Done()
	backoff := l.cfg.DialBackoffMin
	for !l.isClosed() {
		c, ver, err := l.dialHandshake(peer)
		if err != nil {
			time.Sleep(backoff)
			if backoff *= 2; backoff > l.cfg.DialBackoffMax {
				backoff = l.cfg.DialBackoffMax
			}
			continue
		}
		backoff = l.cfg.DialBackoffMin
		l.runSession(peer, ver, c)
	}
}

func (l *TCPLink) dialHandshake(peer int) (net.Conn, uint64, error) {
	c, err := net.DialTimeout("tcp", l.cfg.Addrs[peer], 3*l.cfg.Heartbeat)
	if err != nil {
		return nil, 0, err
	}
	if err := writePeerFrame(c, l.hello(), l.cfg.WriteTimeout); err != nil {
		c.Close()
		return nil, 0, err
	}
	c.SetReadDeadline(time.Now().Add(3 * l.cfg.Heartbeat))
	m, err := readPeerFrame(c)
	if err != nil {
		c.Close()
		return nil, 0, err
	}
	c.SetReadDeadline(time.Time{})
	hello, ok := m.(protocol.PeerHello)
	if !ok || int(hello.Node) != peer || int(hello.Nodes) != len(l.cfg.Addrs) {
		c.Close()
		return nil, 0, fmt.Errorf("cluster: bad hello reply from peer %d: %#v", peer, m)
	}
	return c, hello.Version, nil
}

// runSession installs c as the peer's live connection, pumps heartbeats,
// and reads frames until the connection dies; a read silent for three
// heartbeat intervals counts as death. Returns after tearing the session
// down (the dial loop redials; the accept loop waits for the peer to).
func (l *TCPLink) runSession(peer int, ver uint64, c net.Conn) {
	p := l.peers[peer]
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close() // a reconnect replaces the previous session
	}
	p.conn = c
	p.mu.Unlock()

	// Surface the handshake's map version only once the session is live,
	// so the observer can answer over the link it was notified on.
	l.notifyHello(peer, ver)

	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(l.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var at model.Tick
				if l.cfg.Now != nil {
					at = l.cfg.Now()
				}
				if p.write(protocol.PeerHeartbeat{Node: uint16(l.cfg.Node), At: at}, l.cfg.WriteTimeout) != nil {
					return
				}
			}
		}
	}()

	for {
		c.SetReadDeadline(time.Now().Add(3 * l.cfg.Heartbeat))
		m, err := readPeerFrame(c)
		if err != nil {
			break
		}
		switch v := m.(type) {
		case protocol.PeerHeartbeat:
			continue // liveness only; the deadline reset is the effect
		case protocol.PeerHello:
			l.notifyHello(peer, v.Version) // in-session version refresh
			continue
		}
		l.mu.Lock()
		fn := l.deliver
		l.mu.Unlock()
		if fn != nil {
			fn(peer, l.cfg.Node, m)
		} else {
			l.drop()
		}
	}
	close(stop)
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
	c.Close()
	hb.Wait()
}

// write sends one frame on the peer's live connection under its write
// mutex and deadline; a dead or stalled session closes and errors.
func (p *peerConn) write(m protocol.Message, timeout time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		return fmt.Errorf("cluster: peer down")
	}
	p.conn.SetWriteDeadline(time.Now().Add(timeout))
	err := writePeerFrame(p.conn, m, 0) // deadline already set
	p.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		p.conn.Close()
		p.conn = nil
	}
	return err
}

// ---------------------------------------------------------------------------
// Framing (nettcp's length-prefixed layout, shared by both wires)

func writePeerFrame(w net.Conn, m protocol.Message, timeout time.Duration) error {
	if timeout > 0 {
		w.SetWriteDeadline(time.Now().Add(timeout))
		defer w.SetWriteDeadline(time.Time{})
	}
	payload := protocol.Encode(nil, m)
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

func readPeerFrame(r io.Reader) (protocol.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxPeerFrame {
		return nil, fmt.Errorf("cluster: peer frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return protocol.Decode(payload)
}

var _ Link = (*TCPLink)(nil)
