package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
	"dmknn/internal/nettcp"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Two Members in one process, stitched over real TCP links and real
// nettcp radios: a query homed at node 0 whose monitoring region spans
// the strip boundary must see the object attached to node 1 — the
// install crosses as a NodeForward, the object's reports relay back, and
// the answer is exact.
func TestMemberCrossStripExactness(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	geom := grid.NewGeometry(world, 10, 10)
	part, err := NewPartition(geom, 2)
	if err != nil {
		t.Fatal(err)
	}

	var tickNow atomic.Int64
	now := func() model.Tick { return model.Tick(tickNow.Load()) }

	cfg := core.Config{
		HorizonTicks:   8,
		MinProbeRadius: 150,
		AnswerSlack:    1,
	}.WithWorldDefault(world)

	peerAddrs := reservePorts(t, 2)
	radios := make([]*nettcp.Server, 2)
	links := make([]*TCPLink, 2)
	members := make([]*Member, 2)
	clientAddrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		r, err := nettcp.Listen("127.0.0.1:0", geom)
		if err != nil {
			t.Fatal(err)
		}
		go r.Serve()
		t.Cleanup(func() { r.Close() })
		radios[i] = r
		clientAddrs[i] = r.Addr().String()
	}
	for i := 0; i < 2; i++ {
		l, err := NewTCPLink(TCPConfig{
			Node:           i,
			Addrs:          peerAddrs,
			Heartbeat:      50 * time.Millisecond,
			DialBackoffMin: 10 * time.Millisecond,
			Now:            now,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		links[i] = l
		mb, err := NewMember(part, i, cfg, MemberDeps{
			Link:           l,
			Radio:          r(radios, i),
			ClientAddrs:    clientAddrs,
			Now:            now,
			DT:             1,
			MaxObjectSpeed: 10,
			MaxQuerySpeed:  0,
			LatencyTicks:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		members[i] = mb
		radios[i].AttachHandler(mb)
	}
	waitCond(t, 5*time.Second, "peer link up", func() bool {
		return links[0].PeerUp(1) && links[1].PeerUp(0)
	})

	// The boundary is x=500. Node 0 owns [0,500), node 1 [500,1000).
	// Focal query at (450,500); objects at 430 (node 0), 470 (node 0),
	// 530 (node 1). k=2 with the nearest being 470 and 430... distances:
	// |450-430|=20, |450-470|=20, |450-530|=80. Make the cross-strip
	// object one of the two nearest: objects at (430,500), (530,500),
	// (700,500): distances 20, 80, 250 → k=2 answer is {430-obj, 530-obj},
	// and the 530 object lives in node 1's strip.
	var posMu sync.Mutex
	positions := map[model.ObjectID]geo.Point{
		1: geo.Pt(430, 500),
		2: geo.Pt(530, 500),
		3: geo.Pt(700, 500),
	}
	readPos := func(id model.ObjectID) func() geo.Point {
		return func() geo.Point {
			posMu.Lock()
			defer posMu.Unlock()
			return positions[id]
		}
	}
	nodeFor := func(id model.ObjectID) int {
		posMu.Lock()
		defer posMu.Unlock()
		return part.NodeOf(positions[id])
	}

	agents := map[model.ObjectID]*core.ObjectAgent{}
	for id := model.ObjectID(1); id <= 3; id++ {
		var agent *core.ObjectAgent
		cl, err := nettcp.Dial(clientAddrs[nodeFor(id)], id, transport.ClientHandlerFunc(func(msg protocol.Message) {
			agent.HandleServerMessage(msg)
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		agent, err = core.NewObjectAgent(cfg, core.AgentDeps{
			ID: id, Side: cl, Now: now, Pos: readPos(id), DT: 1, LatencyTicks: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = agent
	}

	var qa *core.QueryAgent
	qcl, err := nettcp.Dial(clientAddrs[0], 100, transport.ClientHandlerFunc(func(msg protocol.Message) {
		qa.HandleServerMessage(msg)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer qcl.Close()
	qa, err = core.NewQueryAgent(cfg, model.QuerySpec{ID: 1, K: 2, Pos: geo.Pt(450, 500)},
		core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID: 100, Side: qcl, Now: now,
				Pos: func() geo.Point { return geo.Pt(450, 500) },
				DT:  1, LatencyTicks: 2,
			},
			Vel: func() geo.Vector { return geo.Vec(0, 0) },
		})
	if err != nil {
		t.Fatal(err)
	}

	settle := func() { time.Sleep(40 * time.Millisecond) }
	step := func() {
		tickNow.Add(1)
		n := now()
		qa.Tick(n)
		for id := model.ObjectID(1); id <= 3; id++ {
			agents[id].Tick(n)
		}
		settle()
		for _, mb := range members {
			mb.Tick(n)
		}
		settle()
		for r := 0; r < 6; r++ {
			act := false
			for _, mb := range members {
				act = mb.Finalize(n) || act
			}
			settle()
			if !act {
				break
			}
		}
	}

	var a model.Answer
	deadline0 := time.Now().Add(10 * time.Second)
	for {
		step()
		a = qa.Answer()
		if len(a.Neighbors) == 2 && a.IDSet()[1] && a.IDSet()[2] {
			break
		}
		if time.Now().After(deadline0) {
			t.Fatalf("answer = %v, want objects {1,2} (2 lives across the strip boundary)", a.Neighbors)
		}
	}
	if members[0].LocalQueries() != 1 {
		t.Errorf("query not homed at node 0")
	}

	// Cross-strip traffic actually flowed on the link.
	st := links[0].Stats()
	if st.Sent == 0 {
		t.Error("no link traffic despite a boundary-spanning region")
	}

	// Object 2 leaves the answer: move it far away within node 1's strip;
	// membership must flip to {1,3}.
	posMu.Lock()
	positions[2] = geo.Pt(980, 980)
	posMu.Unlock()
	deadline := time.Now().Add(15 * time.Second)
	for {
		step()
		a = qa.Answer()
		if len(a.Neighbors) == 2 && a.IDSet()[1] && a.IDSet()[3] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-move answer = %v, want {1,3}", a.Neighbors)
		}
	}
}

func r(radios []*nettcp.Server, i int) transport.ServerSide { return radios[i].Side() }
