package cluster

import (
	"fmt"
	"sort"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/sim"
	"dmknn/internal/simnet"
	"dmknn/internal/workload"
)

// chaosProto enables the machinery a lossy federation needs to heal:
// delta answers (so desync is possible at all) and a resync period that
// bounds how long any divergence survives.
func chaosProto() core.Config {
	c := proto()
	c.DeltaAnswers = true
	c.ResyncTicks = 12
	return c
}

// assertClientAnswersExact checks every query's client-visible answer
// against brute-force ground truth, honoring ties at the k-th distance
// (same check as the core package's chaos suite).
func assertClientAnswersExact(t *testing.T, env *sim.Env, m *Method, tag string) {
	t.Helper()
	ds := make([]float64, len(env.Objects))
	for _, q := range env.Queries {
		got := m.Answer(q.Spec.ID)
		k := q.Spec.K
		if len(got.Neighbors) != k {
			t.Fatalf("%s: query %d has %d members, want %d",
				tag, q.Spec.ID, len(got.Neighbors), k)
		}
		for i := range env.Objects {
			ds[i] = env.Objects[i].Pos.Dist(q.State.Pos)
		}
		sort.Float64s(ds)
		dk := ds[k-1]
		tol := 1e-6 + dk*1e-9
		seen := make(map[model.ObjectID]bool, k)
		for _, nb := range got.Neighbors {
			if seen[nb.ID] {
				t.Fatalf("%s: query %d reports object %d twice", tag, q.Spec.ID, nb.ID)
			}
			seen[nb.ID] = true
			if d := env.ObjectByID(nb.ID).Pos.Dist(q.State.Pos); d > dk+tol {
				t.Fatalf("%s: query %d reports object %d at %.3f > k-th distance %.3f",
					tag, q.Spec.ID, nb.ID, d, dk)
			}
		}
	}
}

// The federation chaos soak: inter-node link loss combined with radio
// burst loss while objects and queries keep crossing node boundaries.
// Once every fault clears, the answers must re-converge to exact — the
// retried handoffs and periodic resyncs must heal whatever the loss
// destroyed — and the link metering must conserve messages throughout.
func TestClusterChaosReconvergence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.Quick()
			cfg.Seed = seed
			cfg.NumObjects = 300
			cfg.NumQueries = 4
			cfg.LatencyTicks = 0 // exactness is only defined under same-tick delivery
			cfg.DisableAudit = true

			// Flight recorder: a failed reconvergence dumps the handoff
			// and answer history instead of a bare assertion.
			rec := obs.NewRecorder(0)
			cfg.Trace = rec
			obs.DumpOnFailure(t, rec)

			pc := chaosProto()
			m := mustMethod(t, 2, pc, LinkConfig{Loss: 0.35, Seed: seed})
			eng, err := sim.NewEngine(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			env := eng.Env()
			step := func(n int) {
				for i := 0; i < n; i++ {
					if err := eng.Step(); err != nil {
						t.Fatalf("seed%d: %v", seed, err)
					}
				}
			}

			// The loss starts at tick 0, so establishment already fights
			// it; soak long enough for boundary churn under faults.
			burst := simnet.BurstLoss(0.30, 4)
			env.Net.SetFaults(simnet.FaultConfig{
				UplinkGE: burst, DownlinkGE: burst, BroadcastGE: burst,
			})
			step(50)

			// Heal everything.
			env.Net.SetFaults(simnet.FaultConfig{})
			m.Link().SetLoss(0)
			heal := 2*pc.ResyncTicks + 3
			step(heal)

			for i := 0; i < 5; i++ {
				step(1)
				assertClientAnswersExact(t, env, m, fmt.Sprintf("post-heal+%d", i))
			}

			// Conservation held across the whole lossy run.
			s := m.Link().Stats()
			if s.Sent != s.Delivered+s.Dropped+uint64(m.Link().PendingCount()) {
				t.Fatalf("link conservation violated: %+v, pending %d",
					s, m.Link().PendingCount())
			}
			if s.Dropped == 0 {
				t.Fatal("link never dropped; chaos phase exercised nothing")
			}
			// The churn must have actually crossed boundaries for this
			// soak to mean anything.
			if st := m.Cluster().Stats(); st.ObjectHandoffs == 0 {
				t.Fatal("no object handoffs during the chaos soak")
			}
		})
	}
}
