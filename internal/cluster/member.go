package cluster

import (
	"math"
	"slices"
	"sync"
	"time"

	"dmknn/internal/balance"
	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// MemberDeps wires a Member to its environment.
type MemberDeps struct {
	// Link carries inter-node messages (a TCPLink in a real deployment).
	// The Member installs itself as the delivery handler.
	Link Link
	// Radio is the node's client-facing send surface (the nettcp/netudp
	// server side). Broadcasts reach only the clients attached to THIS
	// node, which is why attachment must converge to the position owner
	// (see NodeRedirect below).
	Radio transport.ServerSide
	// ClientAddrs holds every node's client listen address, indexed by
	// node id; NodeRedirect downlinks carry them to steer mis-attached
	// clients to their position's owner.
	ClientAddrs []string
	// Now is the shared clock (wall-derived; the processes of one
	// federation must be clock-synchronized to a fraction of a tick).
	Now func() model.Tick
	// The remaining fields mirror core.ServerDeps. LatencyTicks must
	// budget the radio round trip plus one link hop (2 in a deployment).
	DT             float64
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	LatencyTicks   int
	// Trace, when non-nil, receives lifecycle events stamped with this
	// node's id. Must be safe for concurrent use.
	Trace obs.Sink
}

// Member is ONE node of a multi-process federation: the counterpart of
// the in-process Cluster when every node runs in its own process and the
// home/attachment maps can no longer be shared memory. It owns a
// core.Server for its strip of the partition and stitches it to the
// other nodes over the Link with the same protocol kinds 16–22 the
// in-process federation proved out, plus NodeRedirect on the client wire.
//
// The fundamental difference from Cluster: a TCP radio is not
// positional. A wireless broadcast reaches whatever is physically inside
// the cells; a nettcp broadcast reaches whatever is CONNECTED. So a
// client must stay attached to the node owning its position, and three
// mechanisms converge it there:
//
//   - clients of a federation derive the owner from the static partition
//     and dial it directly (and re-dial when their own movement crosses a
//     strip boundary, flushing a final report on the old connection so
//     the old node hands their state off before the disconnect);
//   - any uplink whose kinematics place the sender in another node's
//     strip triggers an ObjectHandoff to the owner plus a NodeRedirect
//     downlink carrying the owner's client address;
//   - a query monitor that migrates (QueryHandoff) redirects its focal
//     client to the new home in the same breath.
//
// A disconnect purges client state only when this node still believes it
// is the client's home; a redirect-induced disconnect (home already
// flipped) purges nothing, so live state is never destroyed by routine
// re-attachment.
//
// All state transitions run under one mutex: radio uplinks, link
// deliveries, and the tick loop serialize through it, and the inner
// server's send callbacks (memberSide) run while it is held. Sends
// themselves (radio, link) are non-blocking-by-deadline, so the lock is
// never held indefinitely.
type Member struct {
	part Partition
	id   int
	cfg  core.Config
	deps MemberDeps

	mu     sync.Mutex
	server *core.Server

	// attach marks clients currently connected to this node's radio.
	attach map[model.ObjectID]bool
	// home is this node's belief of which node serves each known client.
	home map[model.ObjectID]int
	// local/remote/spread/aware/awareByQ/pending mirror the in-process
	// node's routing state (see cluster.go); the semantics are identical.
	local    map[model.QueryID]bool
	remote   map[model.QueryID]int
	spread   map[model.QueryID]map[int]bool
	aware    map[model.ObjectID]map[model.QueryID]int
	awareByQ map[model.QueryID]map[model.ObjectID]bool
	pending  map[model.QueryID]*pendingHandoff

	stats     Stats
	redirects uint64

	// Adaptive partitioning. Every balance-enabled node reports its load
	// to the coordinator and applies the versioned maps it distributes;
	// the decision engine and replication bookkeeping live only on the
	// coordinator (node 0).
	balanceOn    bool
	bal          *balance.Balancer
	busyBase     time.Duration    // own busy time at the last decision window
	peerLoads    []nodeLoadSample // coordinator: latest NodeLoad per node
	peerBusyBase []uint64         // coordinator: cumulative busy-µs at window start
	pendingPart  *pendingPartition
}

// coordinatorNode is the member that runs the balance decision engine.
const coordinatorNode = 0

// nodeLoadSample is the coordinator's record of one peer's latest
// NodeLoad report (BusyUS cumulative; the coordinator windows it).
type nodeLoadSample struct {
	seen    bool
	version uint64
	pop     int
	queries int
	busyUS  uint64
}

// pendingPartition is an unacked map distribution: the coordinator
// retries the PartitionUpdate to every silent peer and makes no further
// decision until all have confirmed, so moves are strictly serialized
// across the federation.
type pendingPartition struct {
	version uint64
	update  protocol.PartitionUpdate
	acked   []bool
	sentAt  model.Tick
}

// NewMember builds node id of the partition's federation and installs it
// as the link's delivery consumer. The caller attaches it as the radio's
// server handler and drives Tick/Finalize.
func NewMember(part Partition, id int, cfg core.Config, deps MemberDeps) (*Member, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Member{
		part:     part,
		id:       id,
		cfg:      cfg,
		deps:     deps,
		attach:   make(map[model.ObjectID]bool),
		home:     make(map[model.ObjectID]int),
		local:    make(map[model.QueryID]bool),
		remote:   make(map[model.QueryID]int),
		spread:   make(map[model.QueryID]map[int]bool),
		aware:    make(map[model.ObjectID]map[model.QueryID]int),
		awareByQ: make(map[model.QueryID]map[model.ObjectID]bool),
		pending:  make(map[model.QueryID]*pendingHandoff),
	}
	srv, err := core.NewServer(cfg, core.ServerDeps{
		Side:           memberSide{m},
		Now:            deps.Now,
		DT:             deps.DT,
		MaxObjectSpeed: deps.MaxObjectSpeed,
		MaxQuerySpeed:  deps.MaxQuerySpeed,
		LatencyTicks:   deps.LatencyTicks,
		Trace:          obs.WithNode(deps.Trace, int16(id)),
	})
	if err != nil {
		return nil, err
	}
	m.server = srv
	if ol, ok := deps.Link.(interface {
		OnDeliver(func(from, to int, m protocol.Message))
	}); ok {
		ol.OnDeliver(m.HandleLink)
	}
	return m, nil
}

// Node returns this member's node id.
func (m *Member) Node() int { return m.id }

// Partition returns the spatial decomposition (this node's current
// belief when the balancer is enabled).
func (m *Member) Partition() Partition {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.part
}

// EnableBalancer turns on adaptive partitioning for this member. Every
// enabled node reports NodeLoad to the coordinator and stamps its map
// version into peer hellos (so a rejoining stale node is pushed the
// current map); the coordinator additionally runs the decision engine
// and distributes versioned PartitionUpdates, acked by every peer before
// the next move. Call before serving.
func (m *Member) EnableBalancer(cfg balance.Config) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.balanceOn = true
	if m.id == coordinatorNode {
		m.bal = balance.New(cfg)
		m.peerLoads = make([]nodeLoadSample, m.part.Nodes())
		m.peerBusyBase = make([]uint64, m.part.Nodes())
	}
	if vl, ok := m.deps.Link.(interface{ SetVersion(func() uint64) }); ok {
		vl.SetVersion(m.PartitionVersion)
	}
	if hl, ok := m.deps.Link.(interface {
		OnHello(func(peer int, version uint64))
	}); ok {
		hl.OnHello(m.handlePeerHello)
	}
}

// PartitionVersion returns the version of this node's current map.
func (m *Member) PartitionVersion() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.part.Version()
}

// OwnedColumns returns how many grid-cell columns this node's strip
// currently spans.
func (m *Member) OwnedColumns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, o := range m.part.colOwner {
		if o == m.id {
			n++
		}
	}
	return n
}

// BalancerStats returns the decision engine's counters (all zero on
// non-coordinator nodes and when the balancer is disabled).
func (m *Member) BalancerStats() balance.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bal == nil {
		return balance.Stats{}
	}
	return m.bal.Stats()
}

// Server returns the inner core server (for inspection).
func (m *Member) Server() *core.Server { return m.server }

// Stats returns the federation event counters.
func (m *Member) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Redirects returns how many NodeRedirect downlinks this node has sent.
func (m *Member) Redirects() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.redirects
}

// AttachedCount returns the number of clients attached to this node.
func (m *Member) AttachedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.attach)
}

// LocalQueries returns how many query monitors are homed at this node.
func (m *Member) LocalQueries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.local)
}

func (m *Member) now() model.Tick { return m.deps.Now() }

func (m *Member) emit(e obs.Event) {
	if m.deps.Trace == nil {
		return
	}
	e.At = m.now()
	e.Node = int16(m.id)
	e.Dir = -1
	m.deps.Trace.Record(e)
}

// ---------------------------------------------------------------------------
// serverCore surface (what the deployment shell drives)

// Tick advances the node one step: retry and initiate query migrations,
// then run the inner server's tick. Link traffic needs no flushing — the
// TCP link delivers push-style from its read goroutines.
func (m *Member) Tick(now model.Tick) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.balanceOn {
		if m.id == coordinatorNode {
			m.rebalance(now)
		} else {
			// Report cumulative load to the coordinator; it windows the
			// busy time between decisions.
			m.deps.Link.Send(m.id, coordinatorNode, protocol.NodeLoad{
				Node:       uint16(m.id),
				Version:    m.part.Version(),
				Population: uint32(len(m.attach)),
				Queries:    uint32(len(m.local)),
				BusyUS:     uint64(m.server.BusyTime().Microseconds()),
				At:         now,
			})
		}
	}
	m.migrateQueries(now)
	m.server.Tick(now)
}

// Finalize settles intra-tick probe conversations.
func (m *Member) Finalize(now model.Tick) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.server.Finalize(now)
}

// Answer returns the inner server's current answer for a local query.
func (m *Member) Answer(q model.QueryID) model.Answer { return m.server.Answer(q) }

// QueryCount returns the number of locally homed queries.
func (m *Member) QueryCount() int { return m.server.QueryCount() }

// BusyTime returns the inner server's cumulative tick-processing time.
func (m *Member) BusyTime() time.Duration { return m.server.BusyTime() }

// ---------------------------------------------------------------------------
// Radio uplink handling

// HandleUplink implements transport.ServerHandler for this node's radio:
// every frame from an attached client enters the federation here.
func (m *Member) HandleUplink(from model.ObjectID, msg protocol.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attach[from] = true
	if _, known := m.home[from]; !known {
		m.home[from] = m.id
	}
	m.routeUplink(from, msg, 0, true)
}

// routeUplink processes one client uplink at this node, forwarded hops
// times so far; attached marks frames that arrived on this node's own
// radio (only those may trigger handoff/redirect — a relayed frame's
// sender belongs to another node's radio).
func (m *Member) routeUplink(from model.ObjectID, msg protocol.Message, hops int, attached bool) {
	// Boundary detection, as in the in-process cluster: the sender's own
	// report proves it belongs to another strip. Hand its state off and
	// steer its connection there, but still process the report here — the
	// report that crossed the boundary is never lost.
	if pos, vel, at, ok := uplinkKinematics(msg); ok && attached && m.home[from] == m.id {
		if owner := m.part.NodeOf(pos); owner != m.id {
			m.handoffObject(from, owner, pos, vel, at)
			m.redirect(from, owner)
		}
	}
	if reg, ok := msg.(protocol.QueryRegister); ok {
		owner := m.part.NodeOf(reg.Pos)
		if owner != m.id {
			if hops < maxRelayHops {
				m.relay(owner, from, msg, hops)
			}
			if attached {
				m.home[from] = owner
				m.redirect(from, owner)
			}
			return
		}
		m.server.HandleUplink(from, msg)
		if m.server.HasQuery(reg.Query) {
			m.local[reg.Query] = true
		}
		return
	}
	q, ok := uplinkQuery(msg)
	if !ok {
		// Query-less kinds (LocationReport) only matter for the boundary
		// detection above; the server drops them like the single server.
		m.server.HandleUplink(from, msg)
		return
	}
	switch home, known := m.remote[q]; {
	case m.local[q]:
		m.server.HandleUplink(from, msg)
		if _, gone := msg.(protocol.QueryDeregister); gone {
			m.finishTeardown(q)
		}
	case known:
		if hops >= maxRelayHops {
			m.stats.RelayDrops++
			m.emit(obs.Event{Type: obs.EvRelayDropped, Query: q, Object: from, Kind: msg.Kind()})
			return
		}
		m.relay(home, from, msg, hops)
		if attached && m.home[from] == m.id {
			m.noteAware(from, q, home, msg)
		}
	default:
		// Unknown query: the node owning the reported position (or its
		// remote table) knows more.
		if pos, _, _, ok := uplinkKinematics(msg); ok && hops < maxRelayHops {
			if owner := m.part.NodeOf(pos); owner != m.id {
				m.relay(owner, from, msg, hops)
				return
			}
		}
		m.stats.RelayDrops++
		m.emit(obs.Event{Type: obs.EvRelayDropped, Query: q, Object: from, Kind: msg.Kind()})
	}
}

func (m *Member) relay(to int, origin model.ObjectID, msg protocol.Message, hops int) {
	m.deps.Link.Send(m.id, to, protocol.NodeRelay{
		Origin:  origin,
		Hops:    uint8(hops + 1),
		Version: m.part.Version(),
		Inner:   msg,
	})
}

// redirect steers an attached client to the node owning its position.
// The client reconnects there; the disconnect this causes here finds
// home != self and purges nothing.
func (m *Member) redirect(id model.ObjectID, to int) {
	if to < 0 || to >= len(m.deps.ClientAddrs) || m.deps.ClientAddrs[to] == "" {
		return
	}
	m.redirects++
	m.deps.Radio.Downlink(id, protocol.NodeRedirect{
		Node: uint16(to),
		Addr: m.deps.ClientAddrs[to],
	})
}

// ---------------------------------------------------------------------------
// Awareness bookkeeping (same semantics as the in-process node's)

func (m *Member) noteAware(id model.ObjectID, q model.QueryID, home int, msg protocol.Message) {
	switch msg.(type) {
	case protocol.EnterReport, protocol.ExitReport, protocol.MoveReport:
		m.setAware(id, q, home)
	case protocol.LeaveReport:
		m.clearAware(id, q)
	}
}

func (m *Member) setAware(id model.ObjectID, q model.QueryID, home int) {
	mm := m.aware[id]
	if mm == nil {
		mm = make(map[model.QueryID]int)
		m.aware[id] = mm
	}
	mm[q] = home
	r := m.awareByQ[q]
	if r == nil {
		r = make(map[model.ObjectID]bool)
		m.awareByQ[q] = r
	}
	r[id] = true
}

func (m *Member) clearAware(id model.ObjectID, q model.QueryID) {
	if mm := m.aware[id]; mm != nil {
		delete(mm, q)
		if len(mm) == 0 {
			delete(m.aware, id)
		}
	}
	if r := m.awareByQ[q]; r != nil {
		delete(r, id)
		if len(r) == 0 {
			delete(m.awareByQ, q)
		}
	}
}

func (m *Member) purgeQuery(q model.QueryID) {
	delete(m.remote, q)
	for id := range m.awareByQ[q] {
		if mm := m.aware[id]; mm != nil {
			delete(mm, q)
			if len(mm) == 0 {
				delete(m.aware, id)
			}
		}
	}
	delete(m.awareByQ, q)
}

func (m *Member) finishTeardown(q model.QueryID) {
	if m.server.HasQuery(q) {
		return
	}
	for _, peer := range sortedNodes(m.spread[q]) {
		m.deps.Link.Send(m.id, peer, protocol.NodeForward{
			Home:    uint16(m.id),
			Version: m.part.Version(),
			Region:  geo.Circle{R: -1},
			Inner:   protocol.MonitorCancel{Query: q},
		})
	}
	delete(m.spread, q)
	delete(m.local, q)
	delete(m.pending, q)
	m.purgeQuery(q)
}

// ---------------------------------------------------------------------------
// Object handoff

func (m *Member) handoffObject(id model.ObjectID, to int, pos geo.Point, vel geo.Vector, at model.Tick) {
	m.home[id] = to
	m.stats.ObjectHandoffs++
	m.emit(obs.Event{Type: obs.EvObjectHandoffBegun, Object: id, Value: float64(to)})
	oh := protocol.ObjectHandoff{Object: id, Pos: pos, Vel: vel, At: at}
	for q, home := range m.aware[id] {
		oh.Aware = append(oh.Aware, protocol.AwareEntry{Query: q, Home: uint16(home)})
	}
	for _, q := range m.server.QueriesInvolving(id) {
		if _, dup := m.aware[id][q]; !dup {
			oh.Aware = append(oh.Aware, protocol.AwareEntry{Query: q, Home: uint16(m.id)})
		}
	}
	slices.SortFunc(oh.Aware, func(a, b protocol.AwareEntry) int {
		return int(a.Query) - int(b.Query)
	})
	if mm := m.aware[id]; mm != nil {
		for q := range mm {
			m.clearAware(id, q)
		}
	}
	m.deps.Link.Send(m.id, to, oh)
}

func (m *Member) handleObjectHandoff(v protocol.ObjectHandoff) {
	// The sender routed by the object's reported position, which this
	// node owns: adopt the client. If it has already moved on, its next
	// report triggers the next hop of the chain.
	m.home[v.Object] = m.id
	for _, a := range v.Aware {
		if int(a.Home) == m.id && m.local[a.Query] {
			continue // resolves through the local table, not a relay
		}
		m.setAware(v.Object, a.Query, int(a.Home))
	}
}

// ---------------------------------------------------------------------------
// Adaptive partitioning (coordinator decision + replicated application)

// rebalance runs on the coordinator each tick (under the mutex). A
// pending map distribution blocks further decisions — moves serialize
// across the federation — and is retried to every silent peer; otherwise,
// once the interval elapses and every peer has reported a load sample on
// the current map, the engine may propose one column move, which is
// applied locally and distributed as a versioned PartitionUpdate.
func (m *Member) rebalance(now model.Tick) {
	if pp := m.pendingPart; pp != nil {
		if now-pp.sentAt >= 1 {
			pp.sentAt = now
			for peer, acked := range pp.acked {
				if !acked && peer != m.id {
					m.deps.Link.Send(m.id, peer, pp.update)
				}
			}
		}
		return
	}
	if !m.bal.Due(now) {
		return
	}
	loads := make([]balance.Load, m.part.Nodes())
	for i := range loads {
		if i == m.id {
			busy := uint64(m.server.BusyTime().Microseconds())
			loads[i] = balance.Load{
				Population: len(m.attach),
				Queries:    len(m.local),
				BusyUS:     busy - uint64(m.busyBase.Microseconds()),
			}
			continue
		}
		s := m.peerLoads[i]
		if !s.seen || s.version != m.part.Version() {
			return // wait until every peer has reported on this map
		}
		loads[i] = balance.Load{
			Population: s.pop,
			Queries:    s.queries,
			BusyUS:     s.busyUS - m.peerBusyBase[i],
		}
	}
	mv, ok := m.bal.Decide(now, m.part.Owners(), loads)
	// Restart the busy-time windows whether or not a move was proposed.
	m.busyBase = m.server.BusyTime()
	for i := range m.peerLoads {
		if m.peerLoads[i].seen {
			m.peerBusyBase[i] = m.peerLoads[i].busyUS
		}
	}
	if !ok {
		return
	}
	np, err := m.part.MoveColumn(mv.Col, mv.To)
	if err != nil {
		return // defense in depth; the balancer only proposes legal moves
	}
	upd := protocol.PartitionUpdate{Version: np.Version(), Owners: ownersToWire(np.Owners())}
	pp := &pendingPartition{
		version: np.Version(),
		update:  upd,
		acked:   make([]bool, np.Nodes()),
		sentAt:  now,
	}
	pp.acked[m.id] = true
	m.pendingPart = pp
	m.applyPartition(np, now)
	for peer := 0; peer < np.Nodes(); peer++ {
		if peer != m.id {
			m.deps.Link.Send(m.id, peer, upd)
		}
	}
}

// applyPartition installs a newer map on this node: routing flips to the
// new strips, the monitors the change stranded bulk-migrate through the
// ordinary retried query-handoff path, and attached clients hear the new
// map so they re-derive their dial targets (a client that misses the
// broadcast is healed by NodeRedirect on its next report).
func (m *Member) applyPartition(np Partition, now model.Tick) {
	m.part = np
	m.stats.ColumnMoves++
	m.emit(obs.Event{Type: obs.EvColumnMoved, Seq: uint32(np.Version())})
	exported := m.server.ExportMonitorsWhere(now, func(q model.QueryID, est geo.Point) bool {
		return m.part.NodeOf(est) != m.id
	})
	for _, ex := range exported {
		m.shipMonitor(ex.State, m.part.NodeOf(ex.Est), now)
	}
	m.deps.Radio.Broadcast(worldCircle(m.part.geom.Bounds()), protocol.PartitionUpdate{
		Version: np.Version(),
		Owners:  ownersToWire(np.Owners()),
	})
}

// handlePartitionUpdate applies a distributed map if it is newer than
// this node's, and always acks — duplicates and stale retries must stop
// the coordinator's retry loop even when nothing applies.
func (m *Member) handlePartitionUpdate(from int, v protocol.PartitionUpdate) {
	if v.Version > m.part.Version() {
		owners := make([]int, len(v.Owners))
		for i, o := range v.Owners {
			owners[i] = int(o)
		}
		if np, err := PartitionFromOwners(m.part.geom, owners, m.part.Nodes(), v.Version); err == nil {
			m.applyPartition(np, m.now())
		}
	}
	m.deps.Link.Send(m.id, from, protocol.PartitionAck{Node: uint16(m.id), Version: v.Version})
}

// handlePeerHello is the stale-map healer: a peer handshake carrying an
// older map version (a node that restarted or missed updates while
// partitioned away) is pushed the current map directly.
func (m *Member) handlePeerHello(peer int, version uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.balanceOn || version >= m.part.Version() {
		return
	}
	m.deps.Link.Send(m.id, peer, protocol.PartitionUpdate{
		Version: m.part.Version(),
		Owners:  ownersToWire(m.part.Owners()),
	})
}

// ownersToWire converts an owner array to its PartitionUpdate form.
func ownersToWire(owners []int) []uint16 {
	out := make([]uint16, len(owners))
	for i, o := range owners {
		out[i] = uint16(o)
	}
	return out
}

// worldCircle returns a circle covering the whole world, for broadcasts
// that must reach every attached client.
func worldCircle(b geo.Rect) geo.Circle {
	return geo.Circle{
		Center: geo.Pt((b.Min.X+b.Max.X)/2, (b.Min.Y+b.Max.Y)/2),
		R:      math.Hypot(b.Max.X-b.Min.X, b.Max.Y-b.Min.Y) / 2,
	}
}

// ---------------------------------------------------------------------------
// Query migration

// migrateQueries runs in the tick's serial phase: any local query whose
// dead-reckoned focal track left this strip is exported and shipped to
// the owner, the focal client is redirected there, and unacked exports
// are retried. The retry gap is in ticks of real time; one tick covers a
// loopback round trip many times over.
func (m *Member) migrateQueries(now model.Tick) {
	for _, q := range sortedQueries(m.local) {
		est, ok := m.server.QueryEstimate(q, now)
		if !ok {
			delete(m.local, q)
			continue
		}
		dest := m.part.NodeOf(est)
		if dest == m.id {
			continue
		}
		st, ok := m.server.ExportMonitor(q)
		if !ok {
			continue // probe in flight; retry next tick
		}
		m.shipMonitor(st, dest, now)
	}
	for _, q := range sortedPending(m.pending) {
		p := m.pending[q]
		if now-p.sentAt >= 1 {
			p.sentAt = now
			m.deps.Link.Send(m.id, p.to, p.msg)
		}
	}
}

// shipMonitor sends an exported monitor snapshot to its new home node,
// installs the retry and relay bookkeeping, and steers the focal client
// there. The per-tick migration scan and a partition change's bulk
// migration share it.
func (m *Member) shipMonitor(st core.MonitorState, dest int, now model.Tick) {
	q := st.Query
	qh := st.ExportState()
	for _, peer := range sortedNodes(m.spread[q]) {
		if peer != dest {
			qh.Spread = append(qh.Spread, uint16(peer))
		}
	}
	delete(m.local, q)
	delete(m.spread, q)
	// Late reports still arrive here; relay them onward like any other
	// remote query.
	m.remote[q] = dest
	m.home[st.Addr] = dest
	m.pending[q] = &pendingHandoff{to: dest, msg: qh, sentAt: now}
	m.deps.Link.Send(m.id, dest, qh)
	m.stats.QueryHandoffs++
	m.emit(obs.Event{Type: obs.EvQueryHandoffBegun, Query: q, Seq: qh.AnswerSeq, Value: float64(dest)})
	if m.attach[st.Addr] {
		m.redirect(st.Addr, dest)
	}
}

func (m *Member) handleQueryHandoff(from int, v protocol.QueryHandoff) {
	q := v.Query
	if m.local[q] {
		// Duplicate of a handoff already applied (retry after a lost
		// ack). Re-affirm the focal client's home before acking: a
		// handoff flap in the other direction may have left it stale,
		// and the sender's retry proves it believes the query lives
		// here now.
		m.home[v.Addr] = m.id
		m.deps.Link.Send(m.id, from, protocol.QueryHandoffAck{Query: q})
		return
	}
	m.server.ImportMonitor(core.ImportState(v), m.now())
	if m.server.HasQuery(q) {
		m.purgeQuery(q)
		m.local[q] = true
		m.home[v.Addr] = m.id
		sp := m.spread[q]
		if sp == nil {
			sp = make(map[int]bool)
			m.spread[q] = sp
		}
		for _, peer := range v.Spread {
			if int(peer) != m.id {
				sp[int(peer)] = true
			}
		}
		sp[from] = true
	}
	m.deps.Link.Send(m.id, from, protocol.QueryHandoffAck{Query: q})
}

// ---------------------------------------------------------------------------
// Link delivery

// HandleLink consumes inter-node messages; NewMember installs it as the
// link's delivery handler, and the TCP link invokes it from peer read
// goroutines.
func (m *Member) HandleLink(from, to int, msg protocol.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch v := msg.(type) {
	case protocol.NodeForward:
		m.handleForward(from, v)
	case protocol.NodeRelay:
		m.routeUplink(v.Origin, v.Inner, int(v.Hops), false)
	case protocol.NodeDeliver:
		// Hand the payload to this node's radio regardless of the attach
		// set: on connection-oriented media the client may hold a live
		// connection without having uplinked yet, and a truly absent
		// client is metered as a transport drop. What a NodeDeliver must
		// never do is forward AGAIN on this node's own home belief — that
		// is what risks ping-pong between nodes with diverged beliefs —
		// so it goes straight to the radio, not through memberSide.
		m.deps.Radio.Downlink(v.To, v.Inner)
	case protocol.ObjectHandoff:
		m.handleObjectHandoff(v)
	case protocol.QueryHandoff:
		m.handleQueryHandoff(from, v)
	case protocol.QueryHandoffAck:
		if _, waiting := m.pending[v.Query]; waiting {
			m.emit(obs.Event{Type: obs.EvHandoffAcked, Query: v.Query})
		}
		delete(m.pending, v.Query)
	case protocol.NodeClientGone:
		m.server.HandleClientGone(v.Object)
		for q := range cloneQuerySet(m.aware[v.Object]) {
			m.clearAware(v.Object, q)
		}
	case protocol.NodeLoad:
		if m.bal != nil && int(v.Node) < len(m.peerLoads) && int(v.Node) != m.id {
			m.peerLoads[v.Node] = nodeLoadSample{
				seen:    true,
				version: v.Version,
				pop:     int(v.Population),
				queries: int(v.Queries),
				busyUS:  v.BusyUS,
			}
		}
	case protocol.PartitionUpdate:
		m.handlePartitionUpdate(from, v)
	case protocol.PartitionAck:
		if pp := m.pendingPart; pp != nil && v.Version == pp.version && int(v.Node) < len(pp.acked) {
			pp.acked[v.Node] = true
			done := true
			for _, a := range pp.acked {
				done = done && a
			}
			if done {
				m.pendingPart = nil
			}
		}
	}
}

// handleForward applies a peer's broadcast: learn (or forget) the remote
// query's home, then rebroadcast to this node's attached clients. The
// client-side state machines filter by the region carried in the
// message, exactly as for a local broadcast.
func (m *Member) handleForward(from int, v protocol.NodeForward) {
	switch inner := v.Inner.(type) {
	case protocol.ProbeRequest:
		if !m.local[inner.Query] {
			m.remote[inner.Query] = from
		}
	case protocol.MonitorInstall:
		if !m.local[inner.Query] {
			m.remote[inner.Query] = from
		}
	case protocol.InfluenceInstall:
		if !m.local[inner.Install.Query] {
			m.remote[inner.Install.Query] = from
		}
	case protocol.MonitorCancel:
		m.purgeQuery(inner.Query)
	default:
		return // decode layer prevents this; defense in depth
	}
	if v.Region.R >= 0 {
		m.deps.Radio.Broadcast(v.Region, v.Inner)
	}
}

// ---------------------------------------------------------------------------
// Disconnect handling

// HandleClientAttached implements transport.AttachHandler for this
// node's radio: a completed handshake is ground truth that the client is
// reachable here, so it enters the attach set immediately — before any
// uplink. Query clients in particular can hold a connection for their
// whole lifetime without sending another frame; were attachment
// uplink-driven only, unicast deliveries (answers, redirects) addressed
// to them would be refused as "not attached" while the radio holds a
// perfectly live connection.
//
// The handshake greeting also pushes the current partition map when it
// has evolved. A client can dial with an arbitrarily stale routing
// belief (it missed update broadcasts while detached, or teleported
// while silent); if it picked the wrong node it hears no install traffic
// there and, sending nothing, would never be redirected — the greeting
// is the heal that lets its next dial decision aim correctly.
func (m *Member) HandleClientAttached(id model.ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attach[id] = true
	if !m.balanceOn || m.part.Version() == 0 {
		return
	}
	m.deps.Radio.Downlink(id, protocol.PartitionUpdate{
		Version: m.part.Version(),
		Owners:  ownersToWire(m.part.Owners()),
	})
}

// HandleClientGone implements transport.DisconnectHandler for this
// node's radio. The crucial federation rule: purge only when this node
// still believes it is the client's home. A disconnect caused by a
// redirect or handoff (home already flipped to the owner) must destroy
// nothing — the client is alive and re-attaching elsewhere.
func (m *Member) HandleClientGone(id model.ObjectID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.attach, id)
	if m.home[id] != m.id {
		return
	}
	delete(m.home, id)
	homes := make(map[int]bool)
	for _, home := range m.aware[id] {
		homes[home] = true
	}
	m.server.HandleClientGone(id)
	for _, q := range sortedQueries(m.local) {
		if !m.server.HasQuery(q) {
			m.finishTeardown(q)
		}
	}
	for q := range cloneQuerySet(m.aware[id]) {
		m.clearAware(id, q)
	}
	for _, home := range sortedNodes(homes) {
		if home == m.id {
			continue
		}
		m.deps.Link.Send(m.id, home, protocol.NodeClientGone{Object: id})
	}
}

// ---------------------------------------------------------------------------
// The server's send surface

// memberSide is the transport.ServerSide the inner core.Server sends
// through. It runs only while the Member's mutex is held (every entry
// into the server holds it), so it reads the routing state directly.
type memberSide struct{ m *Member }

func (s memberSide) Downlink(to model.ObjectID, msg protocol.Message) {
	m := s.m
	if m.attach[to] {
		m.deps.Radio.Downlink(to, msg)
		return
	}
	if home, ok := m.home[to]; ok && home != m.id {
		m.deps.Link.Send(m.id, home, protocol.NodeDeliver{To: to, Version: m.part.Version(), Inner: msg})
		return
	}
	// Not attached and no better belief: send on the radio anyway (the
	// transport meters it as a drop if the client is truly absent).
	m.deps.Radio.Downlink(to, msg)
}

func (s memberSide) Broadcast(region geo.Circle, msg protocol.Message) {
	m := s.m
	m.deps.Radio.Broadcast(region, msg)
	q, cancel, ok := broadcastQuery(msg)
	if !ok {
		return
	}
	var targets []int
	m.part.VisitIntersecting(region, func(peer int) {
		if peer != m.id {
			targets = append(targets, peer)
		}
	})
	if cancel {
		for _, peer := range sortedNodes(m.spread[q]) {
			if peer != m.id && !slices.Contains(targets, peer) {
				targets = append(targets, peer)
			}
		}
		slices.Sort(targets)
		delete(m.spread, q)
	}
	for _, peer := range targets {
		m.deps.Link.Send(m.id, peer, protocol.NodeForward{
			Home:    uint16(m.id),
			Version: m.part.Version(),
			Region:  region,
			Inner:   msg,
		})
		if !cancel {
			sp := m.spread[q]
			if sp == nil {
				sp = make(map[int]bool)
				m.spread[q] = sp
			}
			sp[peer] = true
		}
	}
}

var (
	_ transport.ServerHandler     = (*Member)(nil)
	_ transport.DisconnectHandler = (*Member)(nil)
	_ transport.AttachHandler     = (*Member)(nil)
)
