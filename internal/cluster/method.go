package cluster

import (
	"fmt"
	"time"

	"dmknn/internal/balance"
	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
	"dmknn/internal/sim"
	"dmknn/internal/transport"
)

// Method plugs the federation into the simulation engine. The client
// side is identical to the single-server DKNN method — the clients
// cannot tell how many nodes serve them; only the server's interior
// (partition, link, per-node servers) differs.
type Method struct {
	cfg      core.Config
	n        int
	linkCfg  LinkConfig
	adaptive bool
	balCfg   balance.Config
	cluster  *Cluster
	link     *MemLink
	agents   []*core.ObjectAgent
	qcs      []*core.QueryAgent
}

var _ sim.Method = (*Method)(nil)
var _ sim.ExtraReporter = (*Method)(nil)

// NewMethod returns a DKNN method served by a federation of n nodes
// connected by an in-memory link with the given latency/loss profile.
func NewMethod(n int, cfg core.Config, linkCfg LinkConfig) (*Method, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node count %d", n)
	}
	linkCfg.validate()
	return &Method{cfg: cfg, n: n, linkCfg: linkCfg}, nil
}

// NewAdaptiveMethod returns the federation method with the load balancer
// enabled: the partition starts even and evolves under bcfg as the
// workload skews.
func NewAdaptiveMethod(n int, cfg core.Config, linkCfg LinkConfig, bcfg balance.Config) (*Method, error) {
	m, err := NewMethod(n, cfg, linkCfg)
	if err != nil {
		return nil, err
	}
	m.adaptive = true
	m.balCfg = bcfg
	return m, nil
}

// Name implements sim.Method.
func (m *Method) Name() string {
	if m.adaptive {
		return "dknn-cluster-adaptive"
	}
	return "dknn-cluster"
}

// Setup implements sim.Method.
func (m *Method) Setup(env *sim.Env) error {
	m.cfg = m.cfg.WithWorldDefault(env.World)
	part, err := NewPartition(env.Geometry, m.n)
	if err != nil {
		return err
	}
	m.link = NewMemLink(m.linkCfg, env.Net.Now)
	// A cross-boundary exchange pays radio latency plus link latency;
	// both servers and clients size their reply deadlines from the total.
	latency := env.LatencyTicks + m.linkCfg.LatencyTicks
	// The radio cell filters read the partition through the shared ref,
	// not a captured value, so a balancer-driven column move retargets
	// every node's broadcast surface the instant the map is installed.
	ref := NewPartitionRef(part)
	cl, err := New(part, m.cfg, Deps{
		Link: m.link,
		Radio: func(node int) transport.ServerSide {
			return env.Net.RestrictedServerSide(func(c grid.Cell) bool {
				return ref.Load().CellOwner(c) == node
			})
		},
		Now:            env.Net.Now,
		DT:             env.DT,
		MaxObjectSpeed: env.MaxObjectSpeed,
		MaxQuerySpeed:  env.MaxQuerySpeed,
		LatencyTicks:   latency,
		Trace:          env.Trace,
		PartRef:        ref,
	})
	if err != nil {
		return err
	}
	if m.adaptive {
		cl.EnableBalancer(m.balCfg)
	}
	m.cluster = cl
	m.link.OnDeliver(cl.HandleLink)
	env.Net.AttachServer(cl)

	for i := range env.Objects {
		cl.SeedHome(env.Objects[i].ID, env.Objects[i].Pos)
	}
	for i := range env.Queries {
		cl.SeedHome(env.Queries[i].State.ID, env.Queries[i].State.Pos)
	}

	m.agents = make([]*core.ObjectAgent, len(env.Objects))
	for i := range m.agents {
		id := model.ObjectID(i + 1)
		idx := i
		agent, err := core.NewObjectAgent(m.cfg, core.AgentDeps{
			ID:           id,
			Side:         env.Net.ClientSide(id),
			Now:          env.Net.Now,
			Pos:          func() geo.Point { return env.Objects[idx].Pos },
			DT:           env.DT,
			LatencyTicks: latency,
			Trace:        env.Trace,
		})
		if err != nil {
			return err
		}
		m.agents[i] = agent
		env.Net.AttachClient(id, agent)
	}
	m.qcs = make([]*core.QueryAgent, len(env.Queries))
	for i := range m.qcs {
		idx := i
		addr := env.Queries[i].State.ID
		qa, err := core.NewQueryAgent(m.cfg, env.Queries[i].Spec, core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID:           addr,
				Side:         env.Net.ClientSide(addr),
				Now:          env.Net.Now,
				Pos:          func() geo.Point { return env.Queries[idx].State.Pos },
				DT:           env.DT,
				LatencyTicks: latency,
				Trace:        env.Trace,
			},
			Vel: func() geo.Vector { return env.Queries[idx].State.Vel },
		})
		if err != nil {
			return err
		}
		m.qcs[i] = qa
		env.Net.AttachClient(addr, qa)
	}
	return nil
}

// Cluster exposes the federation (tests and harnesses inspect it).
func (m *Method) Cluster() *Cluster { return m.cluster }

// Link exposes the inter-node link.
func (m *Method) Link() *MemLink { return m.link }

// ClientTick implements sim.Method.
func (m *Method) ClientTick(now model.Tick) {
	for _, qc := range m.qcs {
		qc.Tick(now)
	}
	for _, a := range m.agents {
		a.Tick(now)
	}
}

// ServerTick implements sim.Method.
func (m *Method) ServerTick(now model.Tick) { m.cluster.Tick(now) }

// Finalize implements sim.Method.
func (m *Method) Finalize(now model.Tick) bool { return m.cluster.Finalize(now) }

// Answer implements sim.Method (the focal client's view).
func (m *Method) Answer(q model.QueryID) model.Answer {
	qi := int(q) - 1
	if qi < 0 || qi >= len(m.qcs) {
		return model.Answer{Query: q}
	}
	return m.qcs[qi].Answer()
}

// ServerTime implements sim.Method: the nodes tick in parallel, so the
// federation's server time is the critical path — the busiest node.
func (m *Method) ServerTime() time.Duration {
	var max time.Duration
	for i := 0; i < m.n; i++ {
		if d := m.cluster.Node(i).BusyTime(); d > max {
			max = d
		}
	}
	return max
}

// ExtraMetrics implements sim.ExtraReporter with the federation-level
// cumulative counters: link traffic, handoff events, balancer moves, and
// each node's cumulative busy time (the engine diffs these over the
// measured phase, so experiments can derive per-node load imbalance).
func (m *Method) ExtraMetrics() map[string]float64 {
	ls := m.link.Stats()
	cs := m.cluster.Stats()
	out := map[string]float64{
		"link_sent":       float64(ls.Sent),
		"link_delivered":  float64(ls.Delivered),
		"link_dropped":    float64(ls.Dropped),
		"link_bytes":      float64(ls.SentBytes),
		"object_handoffs": float64(cs.ObjectHandoffs),
		"query_handoffs":  float64(cs.QueryHandoffs),
		"relay_drops":     float64(cs.RelayDrops),
		"column_moves":    float64(cs.ColumnMoves),
	}
	for i := 0; i < m.n; i++ {
		out[fmt.Sprintf("node%d_busy_us", i)] = float64(m.cluster.Node(i).BusyTime().Microseconds())
	}
	return out
}
