// Package cluster federates the DKNN server across spatial partitions:
// the world is statically divided into per-node regions (vertical strips
// of whole grid-cell columns), each node runs its own core.Server owning
// the objects and focal queries currently inside its region, and nodes
// coordinate over a metered inter-node Link.
//
// Three mechanisms keep the federation exact:
//
//   - Cross-boundary monitors: when a query's monitoring region
//     intersects a neighbor node's strip, the home node forwards the
//     broadcast (probe, install, cancel) over the link (NodeForward) and
//     the neighbor rebroadcasts it restricted to its own cells. The
//     neighbor remembers the query's home and relays the Enter/Exit/
//     Leave/Move reports it receives back to it (NodeRelay); the home
//     node remains the single answer authority.
//   - Object handoff: a client whose report places it in another node's
//     strip is transferred (ObjectHandoff: kinematics plus the per-query
//     awareness map) and its uplink routing flips to the new owner, so
//     no report is lost and no uplink is ever double-counted.
//   - Query handoff: when a focal client's advertised track leaves its
//     home strip, the whole monitor state machine (epoch, candidate and
//     inside sets, answer sequence) migrates over the link
//     (QueryHandoff, retried until acked) and the new home re-baselines
//     the client through the resync path — the answer sequence
//     continues, so the client never observes the migration.
//
// With one node the federation is wire-identical to the single server:
// the restricted broadcast covers every cell and no link traffic exists.
// Because each grid cell is owned by exactly one node, the aggregate
// radio metering of a multi-node broadcast (local clip plus forwarded
// rebroadcasts) also equals the single server's, which keeps the
// client-observable protocol unchanged at any node count.
package cluster

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/balance"
	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// maxRelayHops bounds uplink forwarding chains between nodes. Two hops
// cover every legitimate route (receiving node → object's position node
// → query's home node); the slack absorbs a handoff racing a relay.
const maxRelayHops = 4

// Partition is the spatial decomposition: contiguous strips of whole
// grid-cell columns, one strip per node, covering the world. Cell
// granularity makes restricted broadcasts exact — every cell is owned by
// exactly one node, so clipped rebroadcasts neither overlap nor leave
// gaps.
//
// A partition value is immutable; the balancer evolves the map through
// MoveColumn, which returns a new value with the version incremented.
// Strips stay contiguous and in ascending node order because MoveColumn
// only shifts boundary columns between adjacent strips.
type Partition struct {
	geom     grid.Geometry
	regions  []geo.Rect
	colOwner []int
	version  uint64
}

// NewPartition divides the geometry's columns over nodes as evenly as
// possible (leading strips take the remainder).
func NewPartition(geom grid.Geometry, nodes int) (Partition, error) {
	cols, _ := geom.Dims()
	if nodes < 1 {
		return Partition{}, fmt.Errorf("cluster: need at least one node, got %d", nodes)
	}
	if nodes > cols {
		return Partition{}, fmt.Errorf("cluster: %d nodes exceed the grid's %d columns", nodes, cols)
	}
	p := Partition{
		geom:     geom,
		regions:  make([]geo.Rect, nodes),
		colOwner: make([]int, cols),
	}
	b := geom.Bounds()
	cellW := b.Width() / float64(cols)
	base, rem := cols/nodes, cols%nodes
	col := 0
	for i := 0; i < nodes; i++ {
		w := base
		if i < rem {
			w++
		}
		for j := 0; j < w; j++ {
			p.colOwner[col+j] = i
		}
		x0 := b.Min.X + float64(col)*cellW
		x1 := b.Min.X + float64(col+w)*cellW
		if i == nodes-1 {
			x1 = b.Max.X // absorb float rounding at the world edge
		}
		p.regions[i] = geo.NewRect(geo.Pt(x0, b.Min.Y), geo.Pt(x1, b.Max.Y))
		col += w
	}
	return p, nil
}

// Nodes returns the node count.
func (p Partition) Nodes() int { return len(p.regions) }

// Version returns the map version: 0 for a freshly divided partition,
// incremented by every MoveColumn. Versions order maps totally, so
// replicated holders converge on the highest one they have seen.
func (p Partition) Version() uint64 { return p.version }

// Owners returns a copy of the per-column owner array (index = column),
// the wire representation a PartitionUpdate distributes.
func (p Partition) Owners() []int {
	return slices.Clone(p.colOwner)
}

// MoveColumn returns a new partition (version incremented) with column
// col reassigned to node to. Strips must stay contiguous, so col must be
// a boundary column of its current strip adjacent to to's strip, and the
// donor must keep at least one column.
func (p Partition) MoveColumn(col, to int) (Partition, error) {
	cols := len(p.colOwner)
	if col < 0 || col >= cols {
		return Partition{}, fmt.Errorf("cluster: column %d outside [0,%d)", col, cols)
	}
	if to < 0 || to >= len(p.regions) {
		return Partition{}, fmt.Errorf("cluster: node %d outside [0,%d)", to, len(p.regions))
	}
	from := p.colOwner[col]
	if from == to {
		return Partition{}, fmt.Errorf("cluster: column %d already owned by node %d", col, to)
	}
	adjacent := (col > 0 && p.colOwner[col-1] == to) ||
		(col < cols-1 && p.colOwner[col+1] == to)
	if !adjacent {
		return Partition{}, fmt.Errorf("cluster: node %d's strip is not adjacent to column %d", to, col)
	}
	donorCols := 0
	for _, o := range p.colOwner {
		if o == from {
			donorCols++
		}
	}
	if donorCols <= 1 {
		return Partition{}, fmt.Errorf("cluster: node %d cannot give up its last column", from)
	}
	owners := slices.Clone(p.colOwner)
	owners[col] = to
	np := Partition{
		geom:     p.geom,
		regions:  regionsFromOwners(p.geom, owners, len(p.regions)),
		colOwner: owners,
		version:  p.version + 1,
	}
	return np, nil
}

// PartitionFromOwners reconstructs a partition from a distributed owner
// array and version (the PartitionUpdate payload). The array must assign
// every column, give each of the nodes at least one column, and keep
// strips contiguous in ascending node order — everything MoveColumn
// preserves — so a corrupt or crafted update cannot install an
// inconsistent map.
func PartitionFromOwners(geom grid.Geometry, owners []int, nodes int, version uint64) (Partition, error) {
	cols, _ := geom.Dims()
	if len(owners) != cols {
		return Partition{}, fmt.Errorf("cluster: owner array covers %d of %d columns", len(owners), cols)
	}
	if nodes < 1 || nodes > cols {
		return Partition{}, fmt.Errorf("cluster: node count %d outside [1,%d]", nodes, cols)
	}
	next := 0
	for c, o := range owners {
		switch {
		case o == next-1: // still inside the current strip
		case o == next && next < nodes: // first column of the next strip
			next++
		default:
			return Partition{}, fmt.Errorf("cluster: owner array not contiguous ascending at column %d (node %d)", c, o)
		}
	}
	if next != nodes {
		return Partition{}, fmt.Errorf("cluster: owner array covers %d of %d nodes", next, nodes)
	}
	return Partition{
		geom:     geom,
		regions:  regionsFromOwners(geom, owners, nodes),
		colOwner: slices.Clone(owners),
		version:  version,
	}, nil
}

// regionsFromOwners recomputes per-node strip rectangles from a
// contiguous ascending owner array.
func regionsFromOwners(geom grid.Geometry, owners []int, nodes int) []geo.Rect {
	cols := len(owners)
	b := geom.Bounds()
	cellW := b.Width() / float64(cols)
	regions := make([]geo.Rect, nodes)
	first := make([]int, nodes)
	last := make([]int, nodes)
	for i := range first {
		first[i] = -1
	}
	for c, o := range owners {
		if first[o] < 0 {
			first[o] = c
		}
		last[o] = c
	}
	for i := 0; i < nodes; i++ {
		x0 := b.Min.X + float64(first[i])*cellW
		x1 := b.Min.X + float64(last[i]+1)*cellW
		if last[i] == cols-1 {
			x1 = b.Max.X // absorb float rounding at the world edge
		}
		regions[i] = geo.NewRect(geo.Pt(x0, b.Min.Y), geo.Pt(x1, b.Max.Y))
	}
	return regions
}

// Region returns node i's strip.
func (p Partition) Region(i int) geo.Rect { return p.regions[i] }

// CellOwner returns the node owning a grid cell; restricted radio
// surfaces filter on it.
func (p Partition) CellOwner(c grid.Cell) int { return p.colOwner[c.Col] }

// NodeOf returns the node owning the point. It goes through CellOf —
// which clamps out-of-world points to border cells — so ownership always
// agrees with the cell-level broadcast clipping.
func (p Partition) NodeOf(pt geo.Point) int {
	return p.colOwner[p.geom.CellOf(pt).Col]
}

// VisitIntersecting calls fn once for each node owning at least one grid
// cell intersecting the region, in ascending node order. The node set
// exactly tiles the broadcast's cell coverage, so forwarding to these
// nodes (and letting each clip to its own cells) reproduces an
// unrestricted broadcast.
func (p Partition) VisitIntersecting(region geo.Circle, fn func(node int)) {
	if region.R < 0 {
		return
	}
	seen := make([]bool, len(p.regions))
	p.geom.VisitCellsIntersecting(region, func(c grid.Cell) bool {
		seen[p.colOwner[c.Col]] = true
		return true
	})
	for i, s := range seen {
		if s {
			fn(i)
		}
	}
}

// Stats counts federation-level events.
type Stats struct {
	// ObjectHandoffs and QueryHandoffs count boundary migrations
	// (retries of an unacked query handoff are not re-counted).
	ObjectHandoffs uint64
	QueryHandoffs  uint64
	// RelayDrops counts uplinks no node could route: the addressed query
	// was unknown everywhere reachable, or a forwarding chain exceeded
	// its hop budget.
	RelayDrops uint64
	// ColumnMoves counts balancer-driven partition changes (zero with
	// the balancer disabled).
	ColumnMoves uint64
}

// PartitionRef is a shared, atomically swappable view of the current
// partition. Radio cell filters capture it instead of a partition value,
// so a balancer-driven map change retargets every node's restricted
// broadcast surface at the instant the cluster installs the new map —
// clipping and forwarding always read the same map, which is what keeps
// rebroadcasts exactly tiling the world mid-migration.
type PartitionRef struct {
	p atomic.Pointer[Partition]
}

// NewPartitionRef returns a ref holding p.
func NewPartitionRef(p Partition) *PartitionRef {
	r := &PartitionRef{}
	r.store(p)
	return r
}

// Load returns the current partition. Partition values are immutable,
// so the returned value stays internally consistent however long the
// caller holds it.
func (r *PartitionRef) Load() Partition { return *r.p.Load() }

func (r *PartitionRef) store(p Partition) { r.p.Store(&p) }

// Deps wires a Cluster to its environment.
type Deps struct {
	// Link carries inter-node messages.
	Link Link
	// Radio builds node i's restricted radio surface (e.g. a
	// simnet.RestrictedServerSide over the node's cell filter).
	Radio func(node int) transport.ServerSide
	// Now is the shared clock.
	Now func() model.Tick
	// The remaining fields mirror core.ServerDeps and are passed through
	// to every node's server. LatencyTicks must include the link latency
	// on top of the radio latency: a cross-boundary probe pays both, and
	// the servers schedule reply deadlines from this bound.
	DT             float64
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	LatencyTicks   int
	// Trace, when non-nil, receives federation lifecycle events (handoffs,
	// relay drops) and — stamped with the node id — every per-node server's
	// protocol events. Node servers tick on parallel goroutines, so the
	// sink must be safe for concurrent use.
	Trace obs.Sink
	// PartRef, when non-nil, is the shared partition view the radio cell
	// filters read; the cluster keeps it in sync as the balancer moves
	// columns. New creates one when nil (callers that never enable the
	// balancer need not care).
	PartRef *PartitionRef
}

// Cluster is the federation: the partition, the per-node servers, and
// the routing state that stitches them together. It implements
// transport.ServerHandler (and DisconnectHandler) as the single uplink
// surface of the whole federation — the simulated radio does not know
// which node a cell belongs to; the cluster routes by each client's home
// node, which follows the client across boundaries via object handoff.
type Cluster struct {
	part  Partition
	cfg   core.Config
	deps  Deps
	nodes []*node

	// home maps each client (object or focal query address) to the node
	// currently serving it. Updated at handoff initiation so routing
	// flips atomically with the decision, never trailing a lossy link.
	home map[model.ObjectID]int

	// sendMu serializes the send surfaces (radio and link) under the
	// parallel per-node server ticks, like shard.lockedSide. The serial
	// phases take it too — uncontended — so every send path is uniform.
	sendMu sync.Mutex

	// ref mirrors part for the radio cell filters; swapped together with
	// part when the balancer moves a column.
	ref *PartitionRef

	// bal, when non-nil, drives adaptive partitioning from the serial
	// tick phase. balBusyBase holds each node's cumulative busy time at
	// the last decision, so loads are per-window rates.
	bal         *balance.Balancer
	balBusyBase []time.Duration

	stats Stats
}

// node is one federation member: a core.Server plus the cross-boundary
// bookkeeping. All node maps are touched only by the owning node's
// server callbacks (under sendMu) or by the cluster's serial phases.
type node struct {
	c      *Cluster
	id     int
	server *core.Server
	radio  transport.ServerSide // restricted to this node's cells

	// local marks queries homed here (this node runs their monitors).
	local map[model.QueryID]bool
	// remote maps queries whose broadcasts this node rebroadcast to the
	// home node to relay reports to. Entries persist until an explicit
	// cancel: a Leave report can arrive long after the region stopped
	// intersecting this strip, and it must still find its way home.
	remote map[model.QueryID]int
	// spread tracks, per local query, every node a broadcast was ever
	// forwarded to, so teardown (cancel, disconnect, migration) reaches
	// all of them even when the current region no longer intersects.
	spread map[model.QueryID]map[int]bool
	// aware tracks, per client homed here, the remote queries its
	// reports were relayed for (query → home node): the state an object
	// handoff transfers, and the purge list when the client disconnects.
	aware map[model.ObjectID]map[model.QueryID]int
	// awareByQ is the reverse index of aware, for cancel-time purging.
	awareByQ map[model.QueryID]map[model.ObjectID]bool
	// pending holds exported-but-unacked query handoffs for retry; a
	// lossy link must not be able to destroy a monitor state machine.
	pending map[model.QueryID]*pendingHandoff
}

type pendingHandoff struct {
	to     int
	msg    protocol.QueryHandoff
	sentAt model.Tick
}

// New builds a federation over the partition. Deps.Link and Deps.Radio
// must be set; the caller attaches the returned cluster as the radio's
// server handler and installs Cluster.HandleLink as the link's delivery
// handler.
func New(part Partition, cfg core.Config, deps Deps) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		part: part,
		cfg:  cfg,
		deps: deps,
		home: make(map[model.ObjectID]int),
		ref:  deps.PartRef,
	}
	if c.ref == nil {
		c.ref = NewPartitionRef(part)
	} else {
		c.ref.store(part)
	}
	c.nodes = make([]*node, part.Nodes())
	for i := range c.nodes {
		n := &node{
			c:        c,
			id:       i,
			radio:    deps.Radio(i),
			local:    make(map[model.QueryID]bool),
			remote:   make(map[model.QueryID]int),
			spread:   make(map[model.QueryID]map[int]bool),
			aware:    make(map[model.ObjectID]map[model.QueryID]int),
			awareByQ: make(map[model.QueryID]map[model.ObjectID]bool),
			pending:  make(map[model.QueryID]*pendingHandoff),
		}
		srv, err := core.NewServer(cfg, core.ServerDeps{
			Side:           nodeSide{n},
			Now:            deps.Now,
			DT:             deps.DT,
			MaxObjectSpeed: deps.MaxObjectSpeed,
			MaxQuerySpeed:  deps.MaxQuerySpeed,
			LatencyTicks:   deps.LatencyTicks,
			Trace:          obs.WithNode(deps.Trace, int16(i)),
		})
		if err != nil {
			return nil, err
		}
		n.server = srv
		c.nodes[i] = n
	}
	return c, nil
}

// Partition returns the spatial decomposition (the current map when the
// balancer is enabled).
func (c *Cluster) Partition() Partition { return c.part }

// PartitionRef returns the shared partition view; it tracks
// balancer-driven map changes, so radio cell filters built over it stay
// aligned with the cluster's routing.
func (c *Cluster) PartitionRef() *PartitionRef { return c.ref }

// EnableBalancer turns on adaptive partitioning: every tick's serial
// phase consults the balancer and, when it proposes a column move,
// installs the versioned new map and bulk-migrates the monitors the move
// stranded. Call before the first Tick.
func (c *Cluster) EnableBalancer(cfg balance.Config) {
	c.bal = balance.New(cfg)
}

// BalancerStats returns the balancer's activity counters (zero when the
// balancer was never enabled).
func (c *Cluster) BalancerStats() balance.Stats {
	if c.bal == nil {
		return balance.Stats{}
	}
	return c.bal.Stats()
}

// Node returns node i's server (for inspection).
func (c *Cluster) Node(i int) *core.Server { return c.nodes[i].server }

// Stats returns the federation event counters.
func (c *Cluster) Stats() Stats { return c.stats }

// SeedHome records a client's initial home node from its position,
// before any uplink exists to infer it from.
func (c *Cluster) SeedHome(id model.ObjectID, pos geo.Point) {
	c.home[id] = c.part.NodeOf(pos)
}

// HomeOf returns the node currently serving the client.
func (c *Cluster) HomeOf(id model.ObjectID) int { return c.homeOf(id) }

func (c *Cluster) homeOf(id model.ObjectID) int {
	if h, ok := c.home[id]; ok {
		return h
	}
	return 0
}

func (c *Cluster) now() model.Tick { return c.deps.Now() }

// emit records one federation-level event stamped with the acting node.
// All call sites run in the serial phases (uplink routing, link delivery,
// migration scan), never inside the parallel server ticks.
func (c *Cluster) emit(node int, e obs.Event) {
	e.At = c.now()
	e.Node = int16(node)
	e.Dir = -1
	c.deps.Trace.Record(e)
}

// sendLink sends one inter-node message from a serial phase (uplink
// handling, link delivery, migration scan). Node server callbacks that
// already hold sendMu use c.deps.Link.Send directly instead.
func (c *Cluster) sendLink(from, to int, m protocol.Message) {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.deps.Link.Send(from, to, m)
}

// ---------------------------------------------------------------------------
// Radio uplink routing

// HandleUplink implements transport.ServerHandler: radio uplinks enter
// the federation at the sender's home node.
func (c *Cluster) HandleUplink(from model.ObjectID, msg protocol.Message) {
	c.nodes[c.homeOf(from)].handleUplink(from, msg, 0)
}

// handleUplink processes one client uplink at this node, forwarded hops
// times so far.
func (n *node) handleUplink(from model.ObjectID, msg protocol.Message, hops int) {
	c := n.c
	// Boundary detection: the client's own report proves it left this
	// node's strip — migrate its connection before processing, so the
	// very report that crossed the boundary is still handled here (no
	// report lost) while everything after routes to the new owner.
	if pos, vel, at, ok := uplinkKinematics(msg); ok && c.homeOf(from) == n.id {
		if owner := c.part.NodeOf(pos); owner != n.id {
			n.handoffObject(from, owner, pos, vel, at)
		}
	}
	if reg, ok := msg.(protocol.QueryRegister); ok {
		// Registrations anchor at the node owning the focal position.
		owner := c.part.NodeOf(reg.Pos)
		if owner != n.id && hops < maxRelayHops {
			c.relay(n.id, owner, from, msg, hops)
			return
		}
		n.server.HandleUplink(from, msg)
		if n.server.HasQuery(reg.Query) {
			n.local[reg.Query] = true
		}
		return
	}
	q, ok := uplinkQuery(msg)
	if !ok {
		// Query-less kinds (LocationReport) are not part of this
		// protocol; the local server drops them like the single server.
		n.server.HandleUplink(from, msg)
		return
	}
	switch home, known := n.remote[q]; {
	case n.local[q]:
		n.server.HandleUplink(from, msg)
		if _, gone := msg.(protocol.QueryDeregister); gone {
			n.finishTeardown(q)
		}
	case known:
		if hops >= maxRelayHops {
			c.stats.RelayDrops++
			if c.deps.Trace != nil {
				c.emit(n.id, obs.Event{Type: obs.EvRelayDropped, Query: q, Object: from, Kind: msg.Kind()})
			}
			return
		}
		c.relay(n.id, home, from, msg, hops)
		if c.homeOf(from) == n.id {
			n.noteAware(from, q, home, msg)
		}
	default:
		// Unknown query: if the report itself names a position in
		// another strip, that node (or its remote table) knows more.
		if pos, _, _, ok := uplinkKinematics(msg); ok && hops < maxRelayHops {
			if owner := c.part.NodeOf(pos); owner != n.id {
				c.relay(n.id, owner, from, msg, hops)
				return
			}
		}
		c.stats.RelayDrops++
		if c.deps.Trace != nil {
			c.emit(n.id, obs.Event{Type: obs.EvRelayDropped, Query: q, Object: from, Kind: msg.Kind()})
		}
	}
}

// relay forwards a client uplink to another node.
func (c *Cluster) relay(from, to int, origin model.ObjectID, msg protocol.Message, hops int) {
	c.sendLink(from, to, protocol.NodeRelay{
		Origin:  origin,
		Hops:    uint8(hops + 1),
		Version: c.part.Version(),
		Inner:   msg,
	})
}

// noteAware updates the awareness map from a relayed membership report:
// Enter/Exit/Move prove the object carries monitor state for q, Leave
// proves it dropped it.
func (n *node) noteAware(id model.ObjectID, q model.QueryID, home int, msg protocol.Message) {
	switch msg.(type) {
	case protocol.EnterReport, protocol.ExitReport, protocol.MoveReport:
		n.setAware(id, q, home)
	case protocol.LeaveReport:
		n.clearAware(id, q)
	}
}

func (n *node) setAware(id model.ObjectID, q model.QueryID, home int) {
	m := n.aware[id]
	if m == nil {
		m = make(map[model.QueryID]int)
		n.aware[id] = m
	}
	m[q] = home
	r := n.awareByQ[q]
	if r == nil {
		r = make(map[model.ObjectID]bool)
		n.awareByQ[q] = r
	}
	r[id] = true
}

func (n *node) clearAware(id model.ObjectID, q model.QueryID) {
	if m := n.aware[id]; m != nil {
		delete(m, q)
		if len(m) == 0 {
			delete(n.aware, id)
		}
	}
	if r := n.awareByQ[q]; r != nil {
		delete(r, id)
		if len(r) == 0 {
			delete(n.awareByQ, q)
		}
	}
}

// purgeQuery drops every trace of a remote query at this node.
func (n *node) purgeQuery(q model.QueryID) {
	delete(n.remote, q)
	for id := range n.awareByQ[q] {
		if m := n.aware[id]; m != nil {
			delete(m, q)
			if len(m) == 0 {
				delete(n.aware, id)
			}
		}
	}
	delete(n.awareByQ, q)
}

// finishTeardown completes a local query's removal after the server
// handled its deregister. An installed monitor already broadcast a
// MonitorCancel through nodeSide, which reached every spread node; a
// query deregistered mid-bootstrap (probing, never installed) broadcast
// nothing, so its probe-forward recipients are purged explicitly with a
// state-only cancel (negative region radius: nothing to rebroadcast).
func (n *node) finishTeardown(q model.QueryID) {
	if n.server.HasQuery(q) {
		return
	}
	for _, peer := range sortedNodes(n.spread[q]) {
		n.c.sendLink(n.id, peer, protocol.NodeForward{
			Home:    uint16(n.id),
			Version: n.c.part.Version(),
			Region:  geo.Circle{R: -1},
			Inner:   protocol.MonitorCancel{Query: q},
		})
	}
	delete(n.spread, q)
	delete(n.local, q)
	delete(n.pending, q)
	// Awareness entries for q may survive from an era when this node
	// relayed for it as a remote (before the monitor migrated here).
	n.purgeQuery(q)
}

// ---------------------------------------------------------------------------
// Object handoff

// handoffObject migrates a client's connection to the node owning pos:
// the home map flips immediately (so routing is consistent even if the
// state transfer is lost) and the accumulated awareness state travels in
// an ObjectHandoff message.
func (n *node) handoffObject(id model.ObjectID, to int, pos geo.Point, vel geo.Vector, at model.Tick) {
	c := n.c
	c.home[id] = to
	c.stats.ObjectHandoffs++
	if c.deps.Trace != nil {
		c.emit(n.id, obs.Event{Type: obs.EvObjectHandoffBegun, Object: id, Value: float64(to)})
	}
	oh := protocol.ObjectHandoff{Object: id, Pos: pos, Vel: vel, At: at}
	// Awareness accumulated from relays, plus the local queries whose
	// monitors currently involve the object — their home is this node.
	for q, home := range n.aware[id] {
		oh.Aware = append(oh.Aware, protocol.AwareEntry{Query: q, Home: uint16(home)})
	}
	for _, q := range n.server.QueriesInvolving(id) {
		if _, dup := n.aware[id][q]; !dup {
			oh.Aware = append(oh.Aware, protocol.AwareEntry{Query: q, Home: uint16(n.id)})
		}
	}
	slices.SortFunc(oh.Aware, func(a, b protocol.AwareEntry) int {
		return int(a.Query) - int(b.Query)
	})
	// The old copy is gone: the new owner curates it from here.
	if m := n.aware[id]; m != nil {
		for q := range m {
			n.clearAware(id, q)
		}
	}
	c.sendLink(n.id, to, oh)
}

func (n *node) handleObjectHandoff(v protocol.ObjectHandoff) {
	c := n.c
	// The client may have moved on while this transfer was in flight
	// (chained handoff): pass the state along to its current home. The
	// home map is globally consistent, so this terminates in one step.
	if cur := c.homeOf(v.Object); cur != n.id {
		c.sendLink(n.id, cur, v)
		return
	}
	for _, a := range v.Aware {
		home := int(a.Home)
		if home == n.id {
			// The query was homed at the sender... or this node. Either
			// way a relay for it resolves through local/remote lookup;
			// record only true remotes.
			if !n.local[a.Query] {
				n.setAware(v.Object, a.Query, home)
			}
			continue
		}
		n.setAware(v.Object, a.Query, home)
	}
}

// ---------------------------------------------------------------------------
// Query handoff (migration scan)

// migrateQueries runs in the serial phase of every tick: any local query
// whose dead-reckoned focal track left this node's strip is exported and
// shipped to the new owner; unacked exports are retried.
func (c *Cluster) migrateQueries(now model.Tick) {
	retryGap := model.Tick(1)
	if l, ok := c.deps.Link.(*MemLink); ok {
		retryGap = model.Tick(2*l.cfg.LatencyTicks + 1)
	}
	for _, n := range c.nodes {
		for _, q := range sortedQueries(n.local) {
			est, ok := n.server.QueryEstimate(q, now)
			if !ok {
				delete(n.local, q)
				continue
			}
			dest := c.part.NodeOf(est)
			if dest == n.id {
				continue
			}
			st, ok := n.server.ExportMonitor(q)
			if !ok {
				continue // probe in flight; retry next tick
			}
			n.shipMonitor(st, dest, now)
		}
		for _, q := range sortedPending(n.pending) {
			p := n.pending[q]
			if now-p.sentAt >= retryGap {
				p.sentAt = now
				c.sendLink(n.id, p.to, p.msg)
			}
		}
	}
}

// shipMonitor sends an exported monitor snapshot to its new home node and
// installs the retry and relay bookkeeping. The per-tick migration scan
// and the balancer's bulk column migration share it, so both paths give a
// migrated monitor identical lossy-link protection.
func (n *node) shipMonitor(st core.MonitorState, dest int, now model.Tick) {
	c := n.c
	q := st.Query
	qh := st.ExportState()
	for _, peer := range sortedNodes(n.spread[q]) {
		if peer != dest {
			qh.Spread = append(qh.Spread, uint16(peer))
		}
	}
	delete(n.local, q)
	delete(n.spread, q)
	// Late reports for q still arrive here (aware objects in this strip
	// keep reporting to their own home node — this one); relay them
	// onward like any other remote query.
	n.remote[q] = dest
	c.home[st.Addr] = dest
	n.pending[q] = &pendingHandoff{to: dest, msg: qh, sentAt: now}
	c.sendLink(n.id, dest, qh)
	c.stats.QueryHandoffs++
	if c.deps.Trace != nil {
		c.emit(n.id, obs.Event{Type: obs.EvQueryHandoffBegun, Query: q, Seq: qh.AnswerSeq, Value: float64(dest)})
	}
}

func (n *node) handleQueryHandoff(from int, v protocol.QueryHandoff) {
	c := n.c
	q := v.Query
	if n.local[q] {
		// Duplicate delivery (retry raced the ack): just ack again.
		c.sendLink(n.id, from, protocol.QueryHandoffAck{Query: q})
		return
	}
	n.server.ImportMonitor(core.ImportState(v), c.now())
	if n.server.HasQuery(q) {
		// Drop the remote-era routing and awareness for q: its reports
		// are handled locally now, and QueriesInvolving supersedes the
		// relay bookkeeping.
		n.purgeQuery(q)
		n.local[q] = true
		sp := n.spread[q]
		if sp == nil {
			sp = make(map[int]bool)
			n.spread[q] = sp
		}
		for _, peer := range v.Spread {
			if int(peer) != n.id {
				sp[int(peer)] = true
			}
		}
		// The old home keeps relaying late reports; it must also hear
		// the eventual teardown.
		sp[from] = true
	}
	// Ack even a rejected (insane) snapshot so the sender stops
	// retrying a message that will never apply.
	c.sendLink(n.id, from, protocol.QueryHandoffAck{Query: q})
}

// ---------------------------------------------------------------------------
// Adaptive partitioning

// rebalance runs the balancer in the serial phase: sample per-node loads
// over the decision window, ask for a column move, install the versioned
// new map, and bulk-migrate the monitors the move stranded. Objects need
// no sweep — each re-homes lazily on its next uplink through the ordinary
// boundary-detection path, and until then its old home relays for it.
func (c *Cluster) rebalance(now model.Tick) {
	if !c.bal.Due(now) {
		return
	}
	if c.balBusyBase == nil {
		c.balBusyBase = make([]time.Duration, len(c.nodes))
	}
	pop := make([]int, len(c.nodes))
	for _, h := range c.home {
		pop[h]++
	}
	loads := make([]balance.Load, len(c.nodes))
	busy := make([]time.Duration, len(c.nodes))
	for i, n := range c.nodes {
		busy[i] = n.server.BusyTime()
		loads[i] = balance.Load{
			Population: pop[i],
			Queries:    len(n.local),
			BusyUS:     uint64((busy[i] - c.balBusyBase[i]).Microseconds()),
		}
	}
	mv, ok := c.bal.Decide(now, c.part.Owners(), loads)
	copy(c.balBusyBase, busy) // start the next sample window either way
	if !ok {
		return
	}
	np, err := c.part.MoveColumn(mv.Col, mv.To)
	if err != nil {
		return // defense in depth; the balancer only proposes legal moves
	}
	c.setPartition(np)
	c.stats.ColumnMoves++
	if c.deps.Trace != nil {
		c.emit(mv.From, obs.Event{Type: obs.EvColumnMoved, Seq: uint32(np.Version()), Value: float64(mv.To)})
	}
	c.migrateOutOfStrip(now)
}

// setPartition installs a new partition map. The cluster's own copy and
// the shared ref the radio cell filters read swap together under sendMu,
// so no broadcast can clip against one map and forward against another.
func (c *Cluster) setPartition(p Partition) {
	c.sendMu.Lock()
	c.part = p
	c.ref.store(p)
	c.sendMu.Unlock()
}

// migrateOutOfStrip bulk-exports every monitor a partition change left
// outside its node's strip and ships each to its new owner through the
// ordinary query-handoff machinery — retried until acked, re-baselined on
// import — so a column move is exactly as safe as a focal client walking
// across the old boundary.
func (c *Cluster) migrateOutOfStrip(now model.Tick) {
	for _, n := range c.nodes {
		exported := n.server.ExportMonitorsWhere(now, func(q model.QueryID, est geo.Point) bool {
			return c.part.NodeOf(est) != n.id
		})
		for _, ex := range exported {
			n.shipMonitor(ex.State, c.part.NodeOf(ex.Est), now)
		}
	}
}

// ---------------------------------------------------------------------------
// Link delivery

// HandleLink consumes inter-node messages; install it as the Link's
// delivery handler.
func (c *Cluster) HandleLink(from, to int, m protocol.Message) {
	n := c.nodes[to]
	switch v := m.(type) {
	case protocol.NodeForward:
		n.handleForward(from, v)
	case protocol.NodeRelay:
		n.handleUplink(v.Origin, v.Inner, int(v.Hops))
	case protocol.NodeDeliver:
		c.sendMu.Lock()
		n.radio.Downlink(v.To, v.Inner)
		c.sendMu.Unlock()
	case protocol.ObjectHandoff:
		n.handleObjectHandoff(v)
	case protocol.QueryHandoff:
		n.handleQueryHandoff(from, v)
	case protocol.QueryHandoffAck:
		if _, waiting := n.pending[v.Query]; waiting && c.deps.Trace != nil {
			c.emit(to, obs.Event{Type: obs.EvHandoffAcked, Query: v.Query})
		}
		delete(n.pending, v.Query)
	case protocol.NodeClientGone:
		n.server.HandleClientGone(v.Object)
		for q := range cloneQuerySet(n.aware[v.Object]) {
			n.clearAware(v.Object, q)
		}
	}
}

// handleForward applies a neighbor's broadcast: learn (or forget) the
// query's home for report relaying, then rebroadcast clipped to this
// node's cells. A negative region radius marks a state-only teardown
// with nothing to rebroadcast.
func (n *node) handleForward(from int, v protocol.NodeForward) {
	switch inner := v.Inner.(type) {
	case protocol.ProbeRequest:
		if !n.local[inner.Query] {
			n.remote[inner.Query] = from
		}
	case protocol.MonitorInstall:
		if !n.local[inner.Query] {
			n.remote[inner.Query] = from
		}
	case protocol.InfluenceInstall:
		if !n.local[inner.Install.Query] {
			n.remote[inner.Install.Query] = from
		}
	case protocol.MonitorCancel:
		n.purgeQuery(inner.Query)
	default:
		return // decode layer prevents this; defense in depth
	}
	if v.Region.R >= 0 {
		c := n.c
		c.sendMu.Lock()
		n.radio.Broadcast(v.Region, v.Inner)
		c.sendMu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Disconnect purging

// HandleClientGone implements transport.DisconnectHandler: the home node
// purges its own monitors, and every node that ever homed one of the
// client's remote queries is told to purge too — the distributed
// equivalent of the single server's disconnect-purge guarantee.
func (c *Cluster) HandleClientGone(id model.ObjectID) {
	n := c.nodes[c.homeOf(id)]
	homes := make(map[int]bool)
	for _, home := range n.aware[id] {
		homes[home] = true
	}
	n.server.HandleClientGone(id)
	// If id was a focal client, its queries just deregistered without a
	// radio uplink; complete their federation teardown.
	for _, q := range sortedQueries(n.local) {
		if !n.server.HasQuery(q) {
			n.finishTeardown(q)
		}
	}
	for q := range cloneQuerySet(n.aware[id]) {
		n.clearAware(id, q)
	}
	for _, home := range sortedNodes(homes) {
		if home == n.id {
			continue
		}
		c.sendLink(n.id, home, protocol.NodeClientGone{Object: id})
	}
}

// ---------------------------------------------------------------------------
// Tick driving

// Tick advances the federation one step: deliver due link messages
// (their handlers may touch any node — still the serial phase), migrate
// boundary-crossing queries, run every node's server tick in parallel,
// then deliver the link traffic those ticks produced.
func (c *Cluster) Tick(now model.Tick) {
	c.deps.Link.Flush()
	if c.bal != nil {
		c.rebalance(now)
	}
	c.migrateQueries(now)
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.server.Tick(now)
		}(n)
	}
	wg.Wait()
	c.deps.Link.Flush()
}

// Finalize settles intra-tick conversations: link deliveries may feed
// node servers, whose Finalize may conclude probes and send again. It
// reports whether anything moved, so the driving engine knows to flush
// the radio and call again.
func (c *Cluster) Finalize(now model.Tick) bool {
	act := c.deps.Link.Flush() > 0
	results := make([]bool, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			results[i] = n.server.Finalize(now)
		}(i, n)
	}
	wg.Wait()
	for _, r := range results {
		act = act || r
	}
	if c.deps.Link.Flush() > 0 {
		act = true
	}
	return act
}

// ---------------------------------------------------------------------------
// The per-node radio surface

// nodeSide is the transport.ServerSide each node's core.Server sends
// through: downlinks route to the client's current home node, broadcasts
// clip to the node's own cells and forward across the link to every
// other node whose strip the region touches. It locks the cluster's send
// mutex for the whole operation because server ticks run in parallel.
type nodeSide struct{ n *node }

func (s nodeSide) Downlink(to model.ObjectID, m protocol.Message) {
	n, c := s.n, s.n.c
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if home := c.homeOf(to); home != n.id {
		c.deps.Link.Send(n.id, home, protocol.NodeDeliver{To: to, Version: c.part.Version(), Inner: m})
		return
	}
	n.radio.Downlink(to, m)
}

func (s nodeSide) Broadcast(region geo.Circle, m protocol.Message) {
	n, c := s.n, s.n.c
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	n.radio.Broadcast(region, m)
	q, cancel, ok := broadcastQuery(m)
	if !ok {
		return
	}
	var targets []int
	c.part.VisitIntersecting(region, func(peer int) {
		if peer != n.id {
			targets = append(targets, peer)
		}
	})
	if cancel {
		// A cancel must reach every node that ever saw the query, not
		// just the ones the final region touches.
		for _, peer := range sortedNodes(n.spread[q]) {
			if peer != n.id && !slices.Contains(targets, peer) {
				targets = append(targets, peer)
			}
		}
		slices.Sort(targets)
		delete(n.spread, q)
	}
	for _, peer := range targets {
		c.deps.Link.Send(n.id, peer, protocol.NodeForward{
			Home:    uint16(n.id),
			Version: c.part.Version(),
			Region:  region,
			Inner:   m,
		})
		if !cancel {
			sp := n.spread[q]
			if sp == nil {
				sp = make(map[int]bool)
				n.spread[q] = sp
			}
			sp[peer] = true
		}
	}
}

// ---------------------------------------------------------------------------
// Message introspection helpers

// uplinkKinematics extracts the position (and, where carried, velocity)
// a client uplink reports, for boundary detection.
func uplinkKinematics(m protocol.Message) (geo.Point, geo.Vector, model.Tick, bool) {
	switch v := m.(type) {
	case protocol.LocationReport:
		return v.Pos, v.Vel, v.At, true
	case protocol.ProbeReply:
		return v.Pos, geo.Vector{}, v.At, true
	case protocol.EnterReport:
		return v.Pos, geo.Vector{}, v.At, true
	case protocol.ExitReport:
		return v.Pos, geo.Vector{}, v.At, true
	case protocol.LeaveReport:
		return v.Pos, geo.Vector{}, v.At, true
	case protocol.MoveReport:
		return v.Pos, geo.Vector{}, v.At, true
	case protocol.QueryRegister:
		return v.Pos, v.Vel, v.At, true
	case protocol.QueryMove:
		return v.Pos, v.Vel, v.At, true
	}
	return geo.Point{}, geo.Vector{}, 0, false
}

// uplinkQuery extracts the query id an uplink addresses.
func uplinkQuery(m protocol.Message) (model.QueryID, bool) {
	switch v := m.(type) {
	case protocol.ProbeReply:
		return v.Query, true
	case protocol.EnterReport:
		return v.Query, true
	case protocol.ExitReport:
		return v.Query, true
	case protocol.LeaveReport:
		return v.Query, true
	case protocol.MoveReport:
		return v.Query, true
	case protocol.QueryRegister:
		return v.Query, true
	case protocol.QueryMove:
		return v.Query, true
	case protocol.QueryDeregister:
		return v.Query, true
	case protocol.AnswerResync:
		return v.Query, true
	}
	return 0, false
}

// broadcastQuery extracts the query id a broadcast concerns and whether
// it is a teardown.
func broadcastQuery(m protocol.Message) (q model.QueryID, cancel, ok bool) {
	switch v := m.(type) {
	case protocol.ProbeRequest:
		return v.Query, false, true
	case protocol.MonitorInstall:
		return v.Query, false, true
	case protocol.InfluenceInstall:
		return v.Install.Query, false, true
	case protocol.MonitorCancel:
		return v.Query, true, true
	}
	return 0, false, false
}

func sortedQueries(set map[model.QueryID]bool) []model.QueryID {
	if len(set) == 0 {
		return nil
	}
	out := make([]model.QueryID, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	slices.Sort(out)
	return out
}

func sortedPending(m map[model.QueryID]*pendingHandoff) []model.QueryID {
	if len(m) == 0 {
		return nil
	}
	out := make([]model.QueryID, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	slices.Sort(out)
	return out
}

func sortedNodes(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

func cloneQuerySet(m map[model.QueryID]int) map[model.QueryID]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[model.QueryID]bool, len(m))
	for q := range m {
		out[q] = true
	}
	return out
}
