package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

// influenceProto is the cluster test protocol with frontier-threshold
// suppression switched on.
func influenceProto() core.Config {
	cfg := proto()
	cfg.Influence = true
	return cfg
}

// The federation invariant under influence mode: exactness 1.0 at every
// node count on the ideal network, with real query handoffs migrating
// live frontier state between strips. If a migrated threshold were
// dropped or corrupted, the suppressed objects' silence would strand
// stale members in the new home's answers and break exactness.
func TestInfluenceClusterExactness(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			cfg := workload.Quick()
			cfg.Ticks = 120
			m := mustMethod(t, nodes, influenceProto(), LinkConfig{})
			res, err := sim.Run(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			if ex := res.Audit.Exactness(); ex != 1.0 {
				t.Fatalf("exactness = %v under influence mode with %d nodes", ex, nodes)
			}
			if nodes > 1 {
				if m.Cluster().Stats().QueryHandoffs == 0 {
					t.Error("no query handoffs in 120 ticks — the migration path was never exercised")
				}
				// The handoffs moved real thresholds: some home must now
				// hold a monitor with a live frontier.
				live := 0
				for i := range cfg.NumQueries {
					q := model.QueryID(i + 1)
					for n := 0; n < nodes; n++ {
						if st, ok := m.Cluster().Node(n).ExportMonitor(q); ok && st.Frontier > 0 {
							live++
						}
					}
				}
				if live == 0 {
					t.Error("no monitor holds a live frontier after the run")
				}
			}
		})
	}
}

// recordSide / agentSide are minimal transport fakes for driving core
// servers and object agents directly, with every hop explicit.
type recordSide struct {
	broadcasts []struct {
		region geo.Circle
		msg    protocol.Message
	}
	downlinks []protocol.Message
}

func (r *recordSide) Broadcast(region geo.Circle, m protocol.Message) {
	r.broadcasts = append(r.broadcasts, struct {
		region geo.Circle
		msg    protocol.Message
	}{region, m})
}
func (r *recordSide) Downlink(to model.ObjectID, m protocol.Message) {
	r.downlinks = append(r.downlinks, m)
}

type agentSide struct{ ups []protocol.Message }

func (a *agentSide) Uplink(m protocol.Message) { a.ups = append(a.ups, m) }

// The mid-suppression handoff property: a monitor exported from one
// strip's server, carried through the wire codec, and imported at
// another strip's server neither loses nor duplicates the suppressed
// objects' next report. The agents never learn about the migration —
// their thresholds keep suppressing across it, the snapshot's epoch and
// frontier let the new home accept the eventual report first try, and
// no spurious correction report is ever solicited.
func TestInfluenceHandoffMidSuppression(t *testing.T) {
	cfg := core.Config{HorizonTicks: 10, MinProbeRadius: 100, AnswerSlack: 2, Influence: true}
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	now := model.Tick(1)
	nowFn := func() model.Tick { return now }

	newServer := func(side *recordSide) *core.Server {
		srv, err := core.NewServer(cfg.WithWorldDefault(world), core.ServerDeps{
			Side: side, Now: nowFn, DT: 1, MaxObjectSpeed: 10, MaxQuerySpeed: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	sideA, sideB := &recordSide{}, &recordSide{}
	srvA, srvB := newServer(sideA), newServer(sideB)

	// Three data objects around the focal point at (500,500); k=2.
	pos := map[model.ObjectID]geo.Point{
		1: geo.Pt(510, 500), 2: geo.Pt(530, 500), 3: geo.Pt(560, 500),
	}
	agents := map[model.ObjectID]*core.ObjectAgent{}
	ups := map[model.ObjectID]*agentSide{}
	for id := model.ObjectID(1); id <= 3; id++ {
		id := id
		side := &agentSide{}
		ups[id] = side
		a, err := core.NewObjectAgent(cfg, core.AgentDeps{
			ID: id, Side: side, Now: nowFn,
			Pos: func() geo.Point { return pos[id] }, DT: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = a
	}

	// flush pumps server broadcasts to the agents (cell-granular
	// broadcast approximated by region containment) and agent uplinks
	// back to the server until the exchange quiesces.
	seenB := map[*recordSide]int{}
	seenU := map[model.ObjectID]int{}
	totalUplinks := 0
	flush := func(side *recordSide, srv *core.Server) {
		for {
			progress := false
			for ; seenB[side] < len(side.broadcasts); seenB[side]++ {
				b := side.broadcasts[seenB[side]]
				if b.region.R < 0 {
					continue // state-only teardown, no radio traffic
				}
				for id, a := range agents {
					if b.region.Contains(pos[id]) {
						a.HandleServerMessage(b.msg)
					}
				}
				progress = true
			}
			for id, side := range ups {
				for ; seenU[id] < len(side.ups); seenU[id]++ {
					srv.HandleUplink(id, side.ups[seenU[id]])
					totalUplinks++
				}
			}
			if !progress && !srv.Finalize(now) {
				return
			}
		}
	}

	// Establish the monitor at server A.
	srvA.HandleUplink(500, protocol.QueryRegister{Query: 1, K: 2, Pos: geo.Pt(500, 500), At: now})
	srvA.Tick(now)
	flush(sideA, srvA)
	var inst protocol.InfluenceInstall
	found := false
	for _, b := range sideA.broadcasts {
		if v, ok := b.msg.(protocol.InfluenceInstall); ok {
			inst, found = v, true
		}
	}
	if !found {
		t.Fatal("influence-mode server installed without an InfluenceInstall")
	}
	if inst.Frontier <= 0 {
		t.Fatalf("install advertises no frontier: %+v", inst)
	}

	// Suppressed drift at A: motion small enough to stay on-side and
	// within the advertised slack must produce zero uplinks.
	now = 2
	for id := range pos {
		pos[id] = geo.Pt(pos[id].X+1, pos[id].Y)
	}
	before := totalUplinks
	srvA.Tick(now)
	for _, a := range agents {
		a.Tick(now)
	}
	flush(sideA, srvA)
	if totalUplinks != before {
		t.Fatalf("suppressed phase sent %d uplinks", totalUplinks-before)
	}

	// Handoff mid-suppression: export at A, cross the wire codec, import
	// at B. The snapshot must be codec-transparent, frontier included.
	st, ok := srvA.ExportMonitor(1)
	if !ok {
		t.Fatal("export refused")
	}
	if st.Frontier != inst.Frontier || st.Band != inst.Band {
		t.Fatalf("exported frontier %v/%v, advertised %v/%v",
			st.Frontier, st.Band, inst.Frontier, inst.Band)
	}
	buf := protocol.Encode(nil, st.ExportState())
	m, err := protocol.Decode(buf)
	if err != nil {
		t.Fatalf("handoff decode: %v", err)
	}
	st2 := core.ImportState(m.(protocol.QueryHandoff))
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("handoff not codec-transparent:\n got %+v\nwant %+v", st2, st)
	}
	srvB.ImportMonitor(st2, now)
	if !srvB.HasQuery(1) {
		t.Fatal("import did not register the query at B")
	}

	// Still suppressed after the handoff: the agents heard nothing, the
	// migration must not solicit a duplicate of their withheld report.
	now = 3
	for id := range pos {
		pos[id] = geo.Pt(pos[id].X+1, pos[id].Y)
	}
	before = totalUplinks
	srvB.Tick(now)
	for _, a := range agents {
		a.Tick(now)
	}
	flush(sideB, srvB)
	if totalUplinks != before {
		t.Fatalf("post-handoff suppressed phase sent %d uplinks", totalUplinks-before)
	}

	// The next real report: object 3 dives inside the frontier. Exactly
	// one MoveReport must reach B — not lost (the migrated epoch and
	// frontier make it apply first try, flipping the answer) and not
	// duplicated.
	now = 4
	pos[3] = geo.Pt(505, 500)
	before = totalUplinks
	srvB.Tick(now)
	for _, a := range agents {
		a.Tick(now)
	}
	flush(sideB, srvB)
	moved := ups[3].ups
	if len(moved) == 0 {
		t.Fatal("frontier crossing produced no report — the next report was lost")
	}
	if _, ok := moved[len(moved)-1].(protocol.MoveReport); !ok {
		t.Fatalf("frontier crossing sent %T, want MoveReport", moved[len(moved)-1])
	}
	if n := totalUplinks - before; n != 1 {
		t.Fatalf("frontier crossing sent %d uplinks, want exactly 1", n)
	}
	ans := srvB.Answer(1)
	want := map[model.ObjectID]bool{1: true, 3: true}
	if len(ans.Neighbors) != 2 || !want[ans.Neighbors[0].ID] || !want[ans.Neighbors[1].ID] {
		t.Fatalf("post-handoff answer %v, want objects 1 and 3", ans.Neighbors)
	}
}
