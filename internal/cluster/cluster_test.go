package cluster

import (
	"fmt"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

// proto scales the protocol parameters to the Quick world, like the core
// package's tests do.
func proto() core.Config {
	cfg := core.DefaultConfig()
	cfg.HorizonTicks = 8
	cfg.MinProbeRadius = 100
	return cfg
}

func mustMethod(t *testing.T, nodes int, cfg core.Config, link LinkConfig) *Method {
	t.Helper()
	m, err := NewMethod(nodes, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPartitionMath(t *testing.T) {
	geom := grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 16, 16)
	for _, nodes := range []int{1, 2, 3, 4, 5, 8, 16} {
		p, err := NewPartition(geom, nodes)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		// The strips tile the world left to right.
		if p.Region(0).Min.X != 0 || p.Region(nodes-1).Max.X != 1000 {
			t.Fatalf("nodes=%d: strips do not span the world", nodes)
		}
		for i := 1; i < nodes; i++ {
			if p.Region(i).Min.X != p.Region(i-1).Max.X {
				t.Fatalf("nodes=%d: gap between strip %d and %d", nodes, i-1, i)
			}
		}
		// Point ownership agrees with cell ownership everywhere.
		for x := 5.0; x < 1000; x += 62.5 {
			pt := geo.Pt(x, 500)
			if got, want := p.NodeOf(pt), p.CellOwner(geom.CellOf(pt)); got != want {
				t.Fatalf("nodes=%d: NodeOf(%v)=%d, CellOwner=%d", nodes, pt, got, want)
			}
		}
		// VisitIntersecting covers exactly the owners of intersecting cells.
		region := geo.Circle{Center: geo.Pt(500, 500), R: 180}
		want := map[int]bool{}
		geom.VisitCellsIntersecting(region, func(c grid.Cell) bool {
			want[p.CellOwner(c)] = true
			return true
		})
		var got []int
		p.VisitIntersecting(region, func(n int) { got = append(got, n) })
		if len(got) != len(want) {
			t.Fatalf("nodes=%d: VisitIntersecting returned %v, want owners %v", nodes, got, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("nodes=%d: VisitIntersecting out of order: %v", nodes, got)
			}
		}
		for _, n := range got {
			if !want[n] {
				t.Fatalf("nodes=%d: VisitIntersecting visited non-owner %d", nodes, n)
			}
		}
		// A state-only teardown region visits nothing.
		p.VisitIntersecting(geo.Circle{R: -1}, func(int) { t.Fatal("visited for R<0") })
	}
	if _, err := NewPartition(geom, 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewPartition(geom, 17); err == nil {
		t.Error("more nodes than columns accepted")
	}
}

// The exactness invariant must hold at every node count under the ideal
// network (zero latency, no loss, θ = 0): partitioning the server is
// invisible to the clients.
func TestClusterExactnessInvariant(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			cfg := workload.Quick()
			cfg.Ticks = 60
			m := mustMethod(t, nodes, proto(), LinkConfig{})
			res, err := sim.Run(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			if res.Audit.Evaluations() == 0 {
				t.Fatal("no audited answers")
			}
			if ex := res.Audit.Exactness(); ex != 1.0 {
				t.Fatalf("exactness = %v (recall mean %v, worst %v) — federation broke the invariant",
					ex, res.Audit.MeanRecall(), res.Audit.WorstRecall())
			}
			if nodes > 1 {
				if res.Extra["link_sent"] == 0 {
					t.Error("multi-node run produced no inter-node traffic")
				}
				s := m.Link().Stats()
				if s.Sent != s.Delivered+s.Dropped {
					t.Errorf("link conservation violated: %+v", s)
				}
			} else if res.Extra["link_sent"] != 0 {
				t.Errorf("single-node run used the link: %v messages", res.Extra["link_sent"])
			}
		})
	}
}

// With one node the federation is wire-identical to the plain DKNN
// method: same per-direction traffic, no link usage, no handoffs.
func TestSingleNodeWireIdentity(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	single, err := core.New(proto())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.Run(cfg, single)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMethod(t, 1, proto(), LinkConfig{})
	r2, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range metrics.Directions() {
		if r1.Traffic.Sent(d) != r2.Traffic.Sent(d) {
			t.Errorf("%v sent differs: single %d, cluster(1) %d",
				d, r1.Traffic.Sent(d), r2.Traffic.Sent(d))
		}
		if r1.Traffic.SentBytes(d) != r2.Traffic.SentBytes(d) {
			t.Errorf("%v bytes differ: single %d, cluster(1) %d",
				d, r1.Traffic.SentBytes(d), r2.Traffic.SentBytes(d))
		}
	}
	if s := m.Link().Stats(); s.Sent != 0 {
		t.Errorf("single-node cluster sent %d link messages", s.Sent)
	}
	if st := m.Cluster().Stats(); st.ObjectHandoffs != 0 || st.QueryHandoffs != 0 {
		t.Errorf("single-node cluster recorded handoffs: %+v", st)
	}
}

// Tracing is a pure tap on the federation too: with a flight recorder
// attached and histogram collection on, a traced single-server run and a
// traced one-node cluster run both stay wire-identical to the untraced
// single-server run — and the recorder actually saw the protocol, with
// the cluster's events stamped by node.
func TestSingleNodeWireIdentityWithTracing(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	baseline, err := core.New(proto())
	if err != nil {
		t.Fatal(err)
	}
	r0, err := sim.Run(cfg, baseline)
	if err != nil {
		t.Fatal(err)
	}

	singleRec := obs.NewRecorder(0)
	tcfg := cfg
	tcfg.Trace = singleRec
	tcfg.Observe = true
	single, err := core.New(proto())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.Run(tcfg, single)
	if err != nil {
		t.Fatal(err)
	}

	clusterRec := obs.NewRecorder(0)
	ccfg := cfg
	ccfg.Trace = clusterRec
	ccfg.Observe = true
	m := mustMethod(t, 1, proto(), LinkConfig{})
	r2, err := sim.Run(ccfg, m)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range metrics.Directions() {
		if r0.Traffic.Sent(d) != r1.Traffic.Sent(d) || r0.Traffic.SentBytes(d) != r1.Traffic.SentBytes(d) {
			t.Errorf("%v: tracing perturbed the single server (sent %d→%d)",
				d, r0.Traffic.Sent(d), r1.Traffic.Sent(d))
		}
		if r0.Traffic.Sent(d) != r2.Traffic.Sent(d) || r0.Traffic.SentBytes(d) != r2.Traffic.SentBytes(d) {
			t.Errorf("%v: tracing perturbed the cluster (sent %d→%d)",
				d, r0.Traffic.Sent(d), r2.Traffic.Sent(d))
		}
	}
	if singleRec.Total() == 0 || clusterRec.Total() == 0 {
		t.Fatalf("recorders empty: single %d, cluster %d", singleRec.Total(), clusterRec.Total())
	}
	if r1.Staleness == nil || r1.Staleness.Count() == 0 {
		t.Error("observed run collected no staleness samples")
	}
	// Single-server events carry no node; the cluster's server events are
	// stamped with the (only) node id.
	for _, ev := range singleRec.Events() {
		if ev.Node >= 0 {
			t.Fatalf("single-server event carries node id: %v", ev)
		}
	}
	if clusterRec.Count(obs.EvProbe) == 0 {
		t.Error("cluster trace recorded no probes")
	}
	// The ring retains only the tail of the run, but the node's server
	// keeps emitting (installs, answers) throughout — some retained event
	// must carry the node stamp.
	stamped := false
	for _, ev := range clusterRec.Events() {
		if ev.Node == 0 {
			stamped = true
			break
		}
	}
	if !stamped {
		t.Error("no node-stamped event in the cluster trace")
	}
}

// Boundary crossings actually exercise both handoff mechanisms on the
// Quick workload, and a migrated query is homed at exactly one node.
func TestClusterHandoffsOccur(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 120
	m := mustMethod(t, 2, proto(), LinkConfig{})
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Cluster().Stats()
	if st.ObjectHandoffs == 0 {
		t.Error("no object handoffs in 120 ticks of waypoint motion")
	}
	if st.QueryHandoffs == 0 {
		t.Error("no query handoffs in 120 ticks of waypoint motion")
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Errorf("exactness = %v under handoff churn", ex)
	}
	cl := m.Cluster()
	for i := range cfg.NumQueries {
		q := model.QueryID(i + 1)
		homes := 0
		for n := 0; n < 2; n++ {
			if cl.Node(n).HasQuery(q) {
				homes++
			}
		}
		if homes != 1 {
			t.Errorf("query %d homed at %d nodes, want exactly 1", q, homes)
		}
	}
}

// Satellite: removing a client on its home node tears the state down
// federation-wide — no monitor state, relay routes, or awareness entries
// referencing its queries survive on any node, and the aware objects'
// client-side monitors are cancelled.
func TestClientGonePurgesFederation(t *testing.T) {
	cfg := workload.Quick()
	cfg.NumQueries = 1
	m := mustMethod(t, 2, proto(), LinkConfig{})
	eng, err := sim.NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cl := m.Cluster()
	q := model.QueryID(1)
	addr := model.ObjectID(cfg.NumObjects + 1)
	if !cl.Node(0).HasQuery(q) && !cl.Node(1).HasQuery(q) {
		t.Fatal("query never registered")
	}
	// The Quick world is 1 km wide with ~300 m monitoring regions, so a
	// cross-boundary install is all but guaranteed; require it so the
	// teardown below actually has remote state to purge.
	spread := false
	for _, n := range cl.nodes {
		if len(n.remote) > 0 || len(n.spread[q]) > 0 {
			spread = true
		}
	}
	if !spread {
		t.Fatal("monitor never crossed the boundary; purge test is vacuous")
	}

	cl.HandleClientGone(addr)
	// Let the cancel broadcasts and link teardown drain.
	for i := 0; i < 3; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range cl.nodes {
		if n.server.HasQuery(q) {
			t.Errorf("node %d still has the monitor", i)
		}
		if _, routed := n.remote[q]; routed || n.local[q] {
			t.Errorf("node %d still routes query %d", i, q)
		}
		if len(n.spread[q]) > 0 {
			t.Errorf("node %d still tracks spread for query %d", i, q)
		}
		if len(n.awareByQ[q]) > 0 {
			t.Errorf("node %d still tracks aware objects for query %d", i, q)
		}
	}
	for i, a := range m.agents {
		if a.MonitorCount() != 0 {
			t.Errorf("object %d still holds a monitor after federation-wide teardown", i+1)
		}
	}
}

// A lossy link may not destroy a migrating monitor: the handoff retries
// until acked, and the answers stay exact once the loss clears.
func TestQueryHandoffSurvivesLinkLoss(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60
	cfg.DisableAudit = true
	pc := proto()
	pc.ResyncTicks = 12
	m := mustMethod(t, 2, pc, LinkConfig{Loss: 0.5, Seed: 3})
	eng, err := sim.NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cluster().Stats().QueryHandoffs == 0 {
		t.Skip("no migration attempted under this seed; nothing to stress")
	}
	// Every query must still be homed somewhere (a lost handoff is
	// retried, never abandoned), exactly once.
	for i := range cfg.NumQueries {
		q := model.QueryID(i + 1)
		homes := 0
		for n := 0; n < 2; n++ {
			if m.Cluster().Node(n).HasQuery(q) {
				homes++
			}
		}
		if homes != 1 {
			t.Errorf("query %d homed at %d nodes under link loss", q, homes)
		}
	}
	m.Link().SetLoss(0)
	for i := 0; i < 40; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Link().Stats()
	if s.Sent != s.Delivered+s.Dropped+uint64(m.Link().PendingCount()) {
		t.Errorf("link conservation violated: %+v pending %d", s, m.Link().PendingCount())
	}
	if s.Dropped == 0 {
		t.Error("loss phase dropped nothing; test exercised no fault")
	}
}
