package cluster

import (
	"fmt"
	"math/rand"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// Link is the inter-node transport of a federation. Like the radio
// surfaces in internal/transport, Send does not return an error: the
// cluster protocol tolerates loss (handoffs are retried until acked,
// relays are healed by the periodic resync probes), so delivery failure
// is a metered event of the medium. Flush delivers every due message,
// including messages enqueued by the deliveries themselves, and returns
// how many were delivered.
type Link interface {
	Send(from, to int, m protocol.Message)
	Flush() int
	Stats() LinkStats
}

// LinkConfig parameterizes the in-memory link.
type LinkConfig struct {
	// LatencyTicks delays every message by a whole number of ticks
	// (0: same-tick delivery, the ideal backplane).
	LatencyTicks int
	// Loss drops each message independently with this probability,
	// in [0, 1).
	Loss float64
	// Seed feeds the loss generator; runs with the same seed draw the
	// same loss pattern.
	Seed int64
}

func (c LinkConfig) validate() {
	if c.LatencyTicks < 0 {
		panic("cluster: negative link latency")
	}
	if c.Loss < 0 || c.Loss >= 1 {
		panic(fmt.Sprintf("cluster: link loss %v outside [0,1)", c.Loss))
	}
}

// LinkStats counts link activity. Conservation invariant: after a full
// drain (no pending messages), Sent == Delivered + Dropped.
type LinkStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	SentBytes uint64
}

// memEnvelope is one queued inter-node message.
type memEnvelope struct {
	due      model.Tick
	from, to int
	msg      protocol.Message
}

// MemLink is the in-memory Link: a latency/loss-modeled queue in the
// style of internal/simnet, scoped to node-to-node envelopes. It is not
// safe for concurrent use; the cluster serializes Send under its send
// mutex and drives Flush from the serial phases of the tick.
type MemLink struct {
	cfg     LinkConfig
	now     func() model.Tick
	rng     *rand.Rand
	deliver func(from, to int, m protocol.Message)
	queue   []memEnvelope
	stats   LinkStats
}

// maxLinkFlushRounds bounds same-tick delivery cascades (a delivery's
// handler may send again at zero latency); a protocol that converses
// this long in one tick is livelocked.
const maxLinkFlushRounds = 64

// NewMemLink builds an in-memory link. now supplies the cluster clock;
// the delivery handler is installed later with OnDeliver (the cluster
// that consumes the link is constructed after it).
func NewMemLink(cfg LinkConfig, now func() model.Tick) *MemLink {
	cfg.validate()
	return &MemLink{
		cfg: cfg,
		now: now,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// OnDeliver installs the delivery handler.
func (l *MemLink) OnDeliver(fn func(from, to int, m protocol.Message)) { l.deliver = fn }

// Send implements Link.
func (l *MemLink) Send(from, to int, m protocol.Message) {
	l.stats.Sent++
	l.stats.SentBytes += uint64(protocol.EncodedSize(m))
	l.queue = append(l.queue, memEnvelope{
		due:  l.now() + model.Tick(l.cfg.LatencyTicks),
		from: from,
		to:   to,
		msg:  m,
	})
}

// Flush implements Link: it delivers (or drops) every message due at or
// before the current tick, in send order, looping until a round moves
// nothing — so zero-latency request/response conversations complete
// within one Flush, like the simulated radio's.
func (l *MemLink) Flush() int {
	delivered := 0
	for round := 0; ; round++ {
		if round >= maxLinkFlushRounds {
			panic("cluster: link flush did not quiesce")
		}
		now := l.now()
		pending := l.queue
		l.queue = nil
		var due []memEnvelope
		for _, e := range pending {
			if e.due <= now {
				due = append(due, e)
			} else {
				l.queue = append(l.queue, e)
			}
		}
		if len(due) == 0 {
			break
		}
		for _, e := range due {
			if p := l.cfg.Loss; p > 0 && l.rng.Float64() < p {
				l.stats.Dropped++
				continue
			}
			l.stats.Delivered++
			delivered++
			l.deliver(e.from, e.to, e.msg)
		}
	}
	return delivered
}

// SetLoss changes the drop probability mid-run (chaos tests inject a
// lossy phase and then heal the link).
func (l *MemLink) SetLoss(p float64) {
	c := l.cfg
	c.Loss = p
	c.validate()
	l.cfg.Loss = p
}

// Stats implements Link.
func (l *MemLink) Stats() LinkStats { return l.stats }

// PendingCount returns the number of queued, undelivered messages.
func (l *MemLink) PendingCount() int { return len(l.queue) }
