package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/knn"
	"dmknn/internal/model"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if got := tr.KNN(geo.Pt(0, 0), 3, nil, nil); got != nil {
		t.Fatalf("empty kNN = %v", got)
	}
	if got := tr.Range(geo.Circle{Center: geo.Pt(0, 0), R: 10}, nil, nil); got != nil {
		t.Fatalf("empty range = %v", got)
	}
	if _, ok := tr.Position(1); ok {
		t.Fatal("position in empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRemoveErrors(t *testing.T) {
	tr := New()
	if err := tr.Insert(1, geo.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, geo.Pt(2, 2)); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := tr.Remove(9); err == nil {
		t.Fatal("absent remove accepted")
	}
	if err := tr.Update(9, geo.Pt(0, 0)); err == nil {
		t.Fatal("absent update accepted")
	}
	if err := tr.Remove(1); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("size after remove")
	}
}

func TestBasicKNNAndRange(t *testing.T) {
	tr := New()
	for i := 1; i <= 100; i++ {
		if err := tr.Insert(model.ObjectID(i), geo.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.KNN(geo.Pt(0, 0), 3, nil, nil)
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("kNN = %v", got)
	}
	got = tr.Range(geo.Circle{Center: geo.Pt(50, 0), R: 2.5}, nil, nil)
	if len(got) != 5 {
		t.Fatalf("range |%v| = %d, want 5", got, len(got))
	}
	// Skip set.
	got = tr.KNN(geo.Pt(0, 0), 2, map[model.ObjectID]bool{1: true}, nil)
	if got[0].ID != 2 {
		t.Fatalf("skip ignored: %v", got)
	}
}

// The long random-operation stream: the tree must match a reference map
// and the brute-force oracle at every checkpoint, and its structural
// invariants must hold.
func TestRandomOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := New()
	ref := map[model.ObjectID]geo.Point{}
	nextID := model.ObjectID(1)
	randPt := func() geo.Point {
		return geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	pickID := func() model.ObjectID {
		ids := make([]model.ObjectID, 0, len(ref))
		for id := range ref {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids[rng.Intn(len(ids))]
	}

	for step := 0; step < 12000; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			id := nextID
			nextID++
			p := randPt()
			if err := tr.Insert(id, p); err != nil {
				t.Fatal(err)
			}
			ref[id] = p
		case op < 8 && len(ref) > 0:
			id := pickID()
			var p geo.Point
			if rng.Intn(2) == 0 {
				// Small move (fast path candidate).
				p = ref[id]
				p.X += rng.Float64()*10 - 5
				p.Y += rng.Float64()*10 - 5
			} else {
				p = randPt()
			}
			if err := tr.Update(id, p); err != nil {
				t.Fatal(err)
			}
			ref[id] = p
		case len(ref) > 0:
			id := pickID()
			if err := tr.Remove(id); err != nil {
				t.Fatal(err)
			}
			delete(ref, id)
		}
		if step%1000 == 999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("size %d != ref %d", tr.Len(), len(ref))
	}

	// Content equality.
	states := make([]model.ObjectState, 0, len(ref))
	for id, p := range ref {
		states = append(states, model.ObjectState{ID: id, Pos: p})
		got, ok := tr.Position(id)
		if !ok || got != p {
			t.Fatalf("Position(%d) = %v %v, want %v", id, got, ok, p)
		}
	}
	seen := 0
	tr.VisitAll(func(id model.ObjectID, p geo.Point) bool {
		seen++
		if ref[id] != p {
			t.Fatalf("VisitAll: %d at %v, ref %v", id, p, ref[id])
		}
		return true
	})
	if seen != len(ref) {
		t.Fatalf("VisitAll saw %d, want %d", seen, len(ref))
	}

	// kNN and range equivalence against brute force.
	for trial := 0; trial < 150; trial++ {
		q := randPt()
		k := 1 + rng.Intn(25)
		want := knn.BruteForce(states, q, k, nil)
		got := tr.KNN(q, k, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("kNN len %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d k=%d pos %d: %v vs %v", trial, k, i, got[i], want[i])
			}
		}
		c := geo.Circle{Center: q, R: rng.Float64() * 200}
		gotR := tr.Range(c, nil, nil)
		wantR := bruteRange(states, c)
		if len(gotR) != len(wantR) {
			t.Fatalf("range len %d vs %d", len(gotR), len(wantR))
		}
		for i := range gotR {
			if gotR[i].ID != wantR[i].ID {
				t.Fatalf("range pos %d: %v vs %v", i, gotR[i], wantR[i])
			}
		}
	}
}

func bruteRange(states []model.ObjectState, c geo.Circle) []model.Neighbor {
	var out []model.Neighbor
	for _, s := range states {
		if d := s.Pos.Dist(c.Center); d <= c.R {
			out = append(out, model.Neighbor{ID: s.ID, Dist: d})
		}
	}
	model.SortNeighbors(out)
	return out
}

// Skewed data is the R-tree's reason to exist: everything in one corner
// must still give correct answers and a balanced structure.
func TestSkewedCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	states := make([]model.ObjectState, 0, 3000)
	for i := 1; i <= 3000; i++ {
		p := geo.Pt(rng.Float64()*10, rng.Float64()*10) // 10m corner of a km world
		if err := tr.Insert(model.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
		states = append(states, model.ObjectState{ID: model.ObjectID(i), Pos: p})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geo.Pt(500, 500)
	want := knn.BruteForce(states, q, 10, nil)
	got := tr.KNN(q, 10, nil, nil)
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("skewed kNN pos %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDrainToEmptyAndReuse(t *testing.T) {
	tr := New()
	for i := 1; i <= 500; i++ {
		if err := tr.Insert(model.ObjectID(i), geo.Pt(float64(i%37), float64(i%53))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 500; i++ {
		if err := tr.Remove(model.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reusable after draining.
	if err := tr.Insert(1, geo.Pt(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := tr.KNN(geo.Pt(0, 0), 1, nil, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("post-drain kNN = %v", got)
	}
}

func TestVisitAllEarlyStop(t *testing.T) {
	tr := New()
	for i := 1; i <= 100; i++ {
		if err := tr.Insert(model.ObjectID(i), geo.Pt(float64(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	tr.VisitAll(func(model.ObjectID, geo.Point) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop saw %d", n)
	}
}

func BenchmarkRTreeUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	tr := New()
	const n = 20000
	pts := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geo.Pt(rng.Float64()*10000, rng.Float64()*10000)
		if err := tr.Insert(model.ObjectID(i+1), pts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		p := pts[j]
		p.X += rng.Float64()*40 - 20
		p.Y += rng.Float64()*40 - 20
		pts[j] = p
		if err := tr.Update(model.ObjectID(j+1), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTreeKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	tr := New()
	const n = 20000
	for i := 0; i < n; i++ {
		if err := tr.Insert(model.ObjectID(i+1), geo.Pt(rng.Float64()*10000, rng.Float64()*10000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(geo.Pt(rng.Float64()*10000, rng.Float64()*10000), 10, nil, nil)
	}
}

// A reused scratch slice must yield the same results as fresh allocation
// and recycle the backing array when its capacity suffices.
func TestScratchReuse(t *testing.T) {
	tr := New()
	for i := 1; i <= 60; i++ {
		if err := tr.Insert(model.ObjectID(i), geo.Pt(float64(i*7%100), float64(i*13%100))); err != nil {
			t.Fatal(err)
		}
	}
	q := geo.Pt(50, 50)
	fresh := tr.KNN(q, 8, nil, nil)
	scratch := make([]model.Neighbor, 0, 16)
	reused := tr.KNN(q, 8, nil, scratch)
	if len(fresh) != len(reused) {
		t.Fatalf("scratch KNN len %d vs %d", len(reused), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("scratch KNN differs at %d: %v vs %v", i, reused[i], fresh[i])
		}
	}
	if &scratch[:1][0] != &reused[:1][0] {
		t.Error("KNN did not reuse the scratch backing array")
	}
	c := geo.Circle{Center: q, R: 25}
	freshR := tr.Range(c, nil, nil)
	reusedR := tr.Range(c, nil, reused[:0])
	if len(freshR) != len(reusedR) {
		t.Fatalf("scratch Range len %d vs %d", len(reusedR), len(freshR))
	}
	for i := range freshR {
		if freshR[i] != reusedR[i] {
			t.Fatalf("scratch Range differs at %d", i)
		}
	}
}
