// Package rtree implements an in-memory R-tree over moving point
// objects — the second spatial index substrate of the engine, alongside
// the uniform grid. Continuous-query servers in the literature are built
// on either structure; having both lets the evaluation ablate the index
// choice (EXPERIMENTS.md fig14) and gives library users an index that
// adapts to skewed populations, where a uniform grid degenerates.
//
// The implementation is a classic quadratic-split R-tree specialized to
// points:
//
//   - entries are (id, point); leaf and internal nodes hold up to
//     maxEntries children and split quadratically on overflow;
//   - deletion uses the standard condense-tree reinsertion;
//   - Update is delete+insert, with a fast path when the point stays
//     inside its current leaf's bounding box;
//   - KNN is best-first search over node MBRs with a bounded top-k
//     accumulator; Range collects subtrees intersecting the circle.
//
// The tree is not safe for concurrent mutation, matching the grid's
// contract; read-only searches may run concurrently between mutations.
package rtree

import (
	"fmt"
	"math"

	"dmknn/internal/container/pq"
	"dmknn/internal/geo"
	"dmknn/internal/model"
)

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5 // 40% fill, the common choice
)

// node is a tree node: a leaf holds points, an internal node holds
// children. Both store the minimum bounding rectangle of their content.
type node struct {
	mbr      geo.Rect
	leaf     bool
	parent   *node
	children []*node          // internal nodes
	ids      []model.ObjectID // leaves
	pts      []geo.Point      // leaves, parallel to ids
}

// Tree is an R-tree over point objects.
type Tree struct {
	root    *node
	objects map[model.ObjectID]*node // leaf currently holding each object
	size    int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{
		root:    &node{leaf: true, mbr: emptyRect()},
		objects: make(map[model.ObjectID]*node),
	}
}

func emptyRect() geo.Rect {
	return geo.Rect{
		Min: geo.Pt(math.Inf(1), math.Inf(1)),
		Max: geo.Pt(math.Inf(-1), math.Inf(-1)),
	}
}

func rectOf(p geo.Point) geo.Rect { return geo.Rect{Min: p, Max: p} }

func union(a, b geo.Rect) geo.Rect {
	return geo.Rect{
		Min: geo.Pt(math.Min(a.Min.X, b.Min.X), math.Min(a.Min.Y, b.Min.Y)),
		Max: geo.Pt(math.Max(a.Max.X, b.Max.X), math.Max(a.Max.Y, b.Max.Y)),
	}
}

func area(r geo.Rect) float64 {
	w, h := r.Max.X-r.Min.X, r.Max.Y-r.Min.Y
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// enlargement returns how much r must grow to cover p.
func enlargement(r geo.Rect, p geo.Point) float64 {
	return area(union(r, rectOf(p))) - area(r)
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Position returns the indexed position of id.
func (t *Tree) Position(id model.ObjectID) (geo.Point, bool) {
	leaf, ok := t.objects[id]
	if !ok {
		return geo.Point{}, false
	}
	for i, lid := range leaf.ids {
		if lid == id {
			return leaf.pts[i], true
		}
	}
	// The objects map and the leaf disagree: a structural bug.
	panic(fmt.Sprintf("rtree: object %d missing from its leaf", id))
}

// Insert adds an object at position p. Inserting a present id is an
// error; use Update to move objects.
func (t *Tree) Insert(id model.ObjectID, p geo.Point) error {
	if _, ok := t.objects[id]; ok {
		return fmt.Errorf("rtree: object %d already present", id)
	}
	t.insert(id, p)
	t.size++
	return nil
}

func (t *Tree) insert(id model.ObjectID, p geo.Point) {
	leaf := t.chooseLeaf(t.root, p)
	leaf.ids = append(leaf.ids, id)
	leaf.pts = append(leaf.pts, p)
	t.objects[id] = leaf
	t.extend(leaf, rectOf(p))
	if len(leaf.ids) > maxEntries {
		t.splitLeaf(leaf)
	}
}

// chooseLeaf descends to the leaf needing least enlargement.
func (t *Tree) chooseLeaf(n *node, p geo.Point) *node {
	for !n.leaf {
		var best *node
		bestGrow, bestArea := math.Inf(1), math.Inf(1)
		for _, c := range n.children {
			g := enlargement(c.mbr, p)
			a := area(c.mbr)
			if g < bestGrow || (g == bestGrow && a < bestArea) {
				best, bestGrow, bestArea = c, g, a
			}
		}
		n = best
	}
	return n
}

// extend grows MBRs from n to the root to cover r.
func (t *Tree) extend(n *node, r geo.Rect) {
	for ; n != nil; n = n.parent {
		n.mbr = union(n.mbr, r)
	}
}

// splitLeaf performs a quadratic split of an overflowing leaf and
// propagates upward.
func (t *Tree) splitLeaf(leaf *node) {
	ids, pts := leaf.ids, leaf.pts
	seedA, seedB := quadraticSeedsPts(pts)

	a := &node{leaf: true, mbr: rectOf(pts[seedA])}
	b := &node{leaf: true, mbr: rectOf(pts[seedB])}
	a.ids = append(a.ids, ids[seedA])
	a.pts = append(a.pts, pts[seedA])
	b.ids = append(b.ids, ids[seedB])
	b.pts = append(b.pts, pts[seedB])

	assign := func(n *node, id model.ObjectID, p geo.Point) {
		n.ids = append(n.ids, id)
		n.pts = append(n.pts, p)
		n.mbr = union(n.mbr, rectOf(p))
	}
	remaining := len(ids) - 2
	for i := range ids {
		if i == seedA || i == seedB {
			continue
		}
		// Force balance so both halves reach minEntries.
		switch {
		case len(a.ids)+remaining == minEntries:
			assign(a, ids[i], pts[i])
		case len(b.ids)+remaining == minEntries:
			assign(b, ids[i], pts[i])
		default:
			ga := enlargement(a.mbr, pts[i])
			gb := enlargement(b.mbr, pts[i])
			if ga < gb || (ga == gb && area(a.mbr) <= area(b.mbr)) {
				assign(a, ids[i], pts[i])
			} else {
				assign(b, ids[i], pts[i])
			}
		}
		remaining--
	}
	for i, id := range a.ids {
		t.objects[id] = a
		_ = i
	}
	for _, id := range b.ids {
		t.objects[id] = b
	}
	t.replaceWithPair(leaf, a, b)
}

// splitInternal quadratic-splits an overflowing internal node.
func (t *Tree) splitInternal(n *node) {
	cs := n.children
	seedA, seedB := quadraticSeedsRects(cs)

	a := &node{mbr: cs[seedA].mbr}
	b := &node{mbr: cs[seedB].mbr}
	a.children = append(a.children, cs[seedA])
	b.children = append(b.children, cs[seedB])

	assign := func(dst *node, c *node) {
		dst.children = append(dst.children, c)
		dst.mbr = union(dst.mbr, c.mbr)
	}
	remaining := len(cs) - 2
	for i, c := range cs {
		if i == seedA || i == seedB {
			continue
		}
		switch {
		case len(a.children)+remaining == minEntries:
			assign(a, c)
		case len(b.children)+remaining == minEntries:
			assign(b, c)
		default:
			ga := area(union(a.mbr, c.mbr)) - area(a.mbr)
			gb := area(union(b.mbr, c.mbr)) - area(b.mbr)
			if ga < gb || (ga == gb && area(a.mbr) <= area(b.mbr)) {
				assign(a, c)
			} else {
				assign(b, c)
			}
		}
		remaining--
	}
	for _, c := range a.children {
		c.parent = a
	}
	for _, c := range b.children {
		c.parent = b
	}
	t.replaceWithPair(n, a, b)
}

// replaceWithPair substitutes old with nodes a and b in old's parent,
// growing the tree when old was the root, and splits upward as needed.
func (t *Tree) replaceWithPair(old, a, b *node) {
	parent := old.parent
	if parent == nil {
		root := &node{mbr: union(a.mbr, b.mbr), children: []*node{a, b}}
		a.parent, b.parent = root, root
		t.root = root
		return
	}
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = a
			break
		}
	}
	parent.children = append(parent.children, b)
	a.parent, b.parent = parent, parent
	parent.mbr = union(parent.mbr, union(a.mbr, b.mbr))
	if len(parent.children) > maxEntries {
		t.splitInternal(parent)
	}
}

// quadraticSeedsPts picks the two points wasting the most area together.
func quadraticSeedsPts(pts []geo.Point) (int, int) {
	worst, si, sj := -1.0, 0, 1
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			d := area(union(rectOf(pts[i]), rectOf(pts[j])))
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

// quadraticSeedsRects picks the two child rects wasting the most area.
func quadraticSeedsRects(cs []*node) (int, int) {
	worst, si, sj := math.Inf(-1), 0, 1
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			d := area(union(cs[i].mbr, cs[j].mbr)) - area(cs[i].mbr) - area(cs[j].mbr)
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	return si, sj
}

// Remove deletes an object. Removing an absent id is an error.
func (t *Tree) Remove(id model.ObjectID) error {
	leaf, ok := t.objects[id]
	if !ok {
		return fmt.Errorf("rtree: object %d not present", id)
	}
	t.removeFromLeaf(leaf, id)
	t.size--
	return nil
}

func (t *Tree) removeFromLeaf(leaf *node, id model.ObjectID) {
	for i, lid := range leaf.ids {
		if lid == id {
			last := len(leaf.ids) - 1
			leaf.ids[i] = leaf.ids[last]
			leaf.pts[i] = leaf.pts[last]
			leaf.ids = leaf.ids[:last]
			leaf.pts = leaf.pts[:last]
			break
		}
	}
	delete(t.objects, id)
	t.condense(leaf)
}

// condense handles underflow after a removal: underfull nodes are removed
// from the tree and their entries reinserted; MBRs are tightened on the
// path to the root.
func (t *Tree) condense(n *node) {
	var orphanIDs []model.ObjectID
	var orphanPts []geo.Point
	var orphanNodes []*node

	for n.parent != nil {
		parent := n.parent
		under := false
		if n.leaf {
			under = len(n.ids) < minEntries
		} else {
			under = len(n.children) < minEntries
		}
		if under {
			// Unlink n and queue its content for reinsertion.
			for i, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:i], parent.children[i+1:]...)
					break
				}
			}
			if n.leaf {
				orphanIDs = append(orphanIDs, n.ids...)
				orphanPts = append(orphanPts, n.pts...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		} else {
			n.mbr = tighten(n)
		}
		n = parent
	}
	t.root.mbr = tighten(t.root)

	// Shrink a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true, mbr: emptyRect()}
	}

	// Reinsert orphaned points.
	for i, id := range orphanIDs {
		t.insert(id, orphanPts[i])
	}
	// Reinsert orphaned subtrees leaf-by-leaf (rare; simple and correct).
	for _, sub := range orphanNodes {
		collectLeaves(sub, func(leaf *node) {
			for i, id := range leaf.ids {
				t.insert(id, leaf.pts[i])
			}
		})
	}
}

func collectLeaves(n *node, fn func(*node)) {
	if n.leaf {
		fn(n)
		return
	}
	for _, c := range n.children {
		collectLeaves(c, fn)
	}
}

// tighten recomputes a node's MBR from its content.
func tighten(n *node) geo.Rect {
	r := emptyRect()
	if n.leaf {
		for _, p := range n.pts {
			r = union(r, rectOf(p))
		}
		return r
	}
	for _, c := range n.children {
		r = union(r, c.mbr)
	}
	return r
}

// Update moves an existing object to position p.
func (t *Tree) Update(id model.ObjectID, p geo.Point) error {
	leaf, ok := t.objects[id]
	if !ok {
		return fmt.Errorf("rtree: object %d not present", id)
	}
	// Fast path: the point stays inside its leaf's MBR — no structure
	// changes, which makes high-frequency small moves cheap.
	if leaf.mbr.Contains(p) {
		for i, lid := range leaf.ids {
			if lid == id {
				leaf.pts[i] = p
				return nil
			}
		}
	}
	t.removeFromLeaf(leaf, id)
	t.insert(id, p)
	return nil
}

// KNN returns the k nearest objects to q in ascending distance order,
// ties broken by id. skip, if non-nil, excludes ids. dst, if non-nil, is
// a scratch slice the result is appended into (starting at dst[:0]),
// so hot callers can amortize the result allocation; pass nil to
// allocate a fresh slice.
func (t *Tree) KNN(q geo.Point, k int, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	best := pq.NewBoundedMax[model.ObjectID](k)
	frontier := pq.NewMin[*node](32)
	frontier.Push(t.root.mbr.MinDist(q), t.root)
	for frontier.Len() > 0 {
		d, n := frontier.Pop()
		if best.Full() && d > best.Worst() {
			break
		}
		if n.leaf {
			for i, id := range n.ids {
				if skip != nil && skip[id] {
					continue
				}
				best.Offer(n.pts[i].Dist(q), id)
			}
			continue
		}
		for _, c := range n.children {
			md := c.mbr.MinDist(q)
			if !best.Full() || md <= best.Worst() {
				frontier.Push(md, c)
			}
		}
	}
	dists, ids := best.Drain()
	out := dst[:0]
	for i := range ids {
		out = append(out, model.Neighbor{ID: ids[i], Dist: dists[i]})
	}
	model.SortNeighbors(out)
	return out
}

// Range returns every object within the circle, ascending by distance
// with ties broken by id. dst, if non-nil, is a scratch slice the result
// is appended into (starting at dst[:0]); pass nil to allocate.
func (t *Tree) Range(c geo.Circle, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor {
	if c.R < 0 || t.size == 0 {
		return nil
	}
	out := dst[:0]
	rsq := c.R * c.R
	var walk func(n *node)
	walk = func(n *node) {
		if n.mbr.MinDistSq(c.Center) > rsq {
			return
		}
		if n.leaf {
			for i, id := range n.ids {
				if skip != nil && skip[id] {
					continue
				}
				if dsq := n.pts[i].DistSq(c.Center); dsq <= rsq {
					out = append(out, model.Neighbor{ID: id, Dist: math.Sqrt(dsq)})
				}
			}
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(t.root)
	model.SortNeighbors(out)
	return out
}

// VisitAll calls fn for every indexed object; iteration order is
// unspecified. If fn returns false the visit stops early.
func (t *Tree) VisitAll(fn func(id model.ObjectID, p geo.Point) bool) {
	stop := false
	var walk func(n *node)
	walk = func(n *node) {
		if stop {
			return
		}
		if n.leaf {
			for i, id := range n.ids {
				if !fn(id, n.pts[i]) {
					stop = true
					return
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// CheckInvariants validates the structural invariants (tests use it):
// every node's MBR covers its content, leaves hold between minEntries and
// maxEntries entries (root excepted), parents link correctly, and the
// object map agrees with leaf content.
func (t *Tree) CheckInvariants() error {
	count := 0
	var walk func(n *node, depth int) (int, error)
	walk = func(n *node, depth int) (int, error) {
		if n.leaf {
			if n != t.root && (len(n.ids) < minEntries || len(n.ids) > maxEntries) {
				return 0, fmt.Errorf("rtree: leaf fill %d outside [%d,%d]", len(n.ids), minEntries, maxEntries)
			}
			for i, p := range n.pts {
				if !n.mbr.Contains(p) {
					return 0, fmt.Errorf("rtree: point %v outside leaf mbr %v", p, n.mbr)
				}
				if t.objects[n.ids[i]] != n {
					return 0, fmt.Errorf("rtree: object map stale for %d", n.ids[i])
				}
			}
			count += len(n.ids)
			return depth, nil
		}
		if n != t.root && (len(n.children) < minEntries || len(n.children) > maxEntries) {
			return 0, fmt.Errorf("rtree: node fill %d outside [%d,%d]", len(n.children), minEntries, maxEntries)
		}
		if len(n.children) == 0 {
			return 0, fmt.Errorf("rtree: empty internal node")
		}
		leafDepth := -1
		for _, c := range n.children {
			if c.parent != n {
				return 0, fmt.Errorf("rtree: broken parent link")
			}
			if !(n.mbr.Contains(c.mbr.Min) && n.mbr.Contains(c.mbr.Max)) {
				return 0, fmt.Errorf("rtree: child mbr %v escapes parent %v", c.mbr, n.mbr)
			}
			d, err := walk(c, depth+1)
			if err != nil {
				return 0, err
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if leafDepth != d {
				return 0, fmt.Errorf("rtree: unbalanced leaves at depths %d and %d", leafDepth, d)
			}
		}
		return leafDepth, nil
	}
	if _, err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d entries reachable", t.size, count)
	}
	if count != len(t.objects) {
		return fmt.Errorf("rtree: object map has %d, tree has %d", len(t.objects), count)
	}
	return nil
}
