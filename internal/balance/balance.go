// Package balance decides when a spatially partitioned federation should
// move a grid-cell column between adjacent nodes to even out load.
//
// The decision engine is deliberately pure: callers feed it the current
// per-column owner array and a per-node load sample, and it returns at
// most one column move. Applying the move — versioning the partition
// map, distributing it, migrating monitors and objects — is the
// cluster's job (internal/cluster); keeping the engine free of transport
// and server state makes every policy branch unit-testable.
//
// Policy: each node's load score is a weighted sum of its shares of the
// cluster's total server busy time and total population. The balancer
// scans every adjacent strip pair and evaluates shifting one boundary
// column from the heavier to the lighter side, estimating the shifted
// load as the donor's score spread uniformly over its columns. A move is
// proposed only if it strictly shrinks the pair's maximum score by at
// least MinGain (relative), which, together with the decision interval,
// prevents oscillation: under an unchanged load estimate, moving the
// column straight back could only raise the pair maximum it just
// lowered, so it can never clear the gain bar.
package balance

import "dmknn/internal/model"

// Load is one node's load sample over the current decision window.
type Load struct {
	// Population counts the clients the node currently serves (objects
	// homed or attached there).
	Population int
	// Queries counts the query monitors homed at the node.
	Queries int
	// BusyUS is the node's server busy time over the window, microseconds.
	BusyUS uint64
}

// Config tunes the balancer. Zero values select the defaults.
type Config struct {
	// IntervalTicks is the minimum number of ticks between decisions
	// (default 16). Load samples are windowed to the same cadence, so a
	// longer interval trades reaction speed for steadier estimates.
	IntervalTicks int
	// MinGain is the minimum relative reduction of the hotter node's
	// score a move must promise (default 0.05).
	MinGain float64
	// BusyWeight and PopWeight weigh the busy-time and population shares
	// in the load score (both default 1; set explicitly to use one
	// signal exclusively — the zero value of the *whole* config keeps
	// the defaults, a config with one weight set uses it as given).
	BusyWeight float64
	PopWeight  float64
}

func (c Config) withDefaults() Config {
	if c.IntervalTicks <= 0 {
		c.IntervalTicks = 16
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.BusyWeight == 0 && c.PopWeight == 0 {
		c.BusyWeight, c.PopWeight = 1, 1
	}
	return c
}

// Move is one proposed rebalance step: reassign column Col from node
// From to node To. Col is always a boundary column of From's strip
// adjacent to To's strip, so applying it keeps strips contiguous.
type Move struct {
	Col, From, To int
}

// Stats counts balancer activity.
type Stats struct {
	// Decisions counts evaluation rounds (interval boundaries reached
	// with a full load sample).
	Decisions uint64
	// Moves counts proposed column moves; Splits are the subset shed by
	// a donor holding more columns than the receiver (a hot wide strip
	// thinning), Merges the rest (a cold strip absorbing work from an
	// equal-or-narrower neighbor).
	Moves  uint64
	Splits uint64
	Merges uint64
}

// Balancer is the stateful decision engine: it holds the cadence clock
// and activity counters. Not safe for concurrent use; callers invoke it
// from their serial tick phase.
type Balancer struct {
	cfg       Config
	lastEval  model.Tick
	evaluated bool
	stats     Stats
}

// New returns a balancer with cfg's zero values defaulted.
func New(cfg Config) *Balancer {
	return &Balancer{cfg: cfg}
}

// Stats returns the activity counters.
func (b *Balancer) Stats() Stats { return b.stats }

// Due reports whether a decision interval has elapsed, without consuming
// it. Callers use it to skip load-sample collection between decisions.
func (b *Balancer) Due(now model.Tick) bool {
	return !b.evaluated || now-b.lastEval >= model.Tick(b.cfg.IntervalTicks)
}

// Decide evaluates one rebalance decision. owners is the per-column
// owner array (contiguous ascending strips); loads holds one sample per
// node. It returns at most one move — the adjacent-pair boundary-column
// shift with the best estimated gain — or false when no move clears
// MinGain or the decision interval has not elapsed.
func (b *Balancer) Decide(now model.Tick, owners []int, loads []Load) (Move, bool) {
	if !b.Due(now) {
		return Move{}, false
	}
	b.lastEval = now
	b.evaluated = true
	b.stats.Decisions++

	cfg := b.cfg.withDefaults()
	scores := b.scores(loads)
	if scores == nil {
		return Move{}, false
	}

	// Per-node strip extents and widths.
	nodes := len(loads)
	first := make([]int, nodes)
	last := make([]int, nodes)
	width := make([]int, nodes)
	for i := range first {
		first[i] = -1
	}
	for c, o := range owners {
		if o < 0 || o >= nodes {
			return Move{}, false
		}
		if first[o] < 0 {
			first[o] = c
		}
		last[o] = c
		width[o]++
	}
	for _, w := range width {
		if w == 0 {
			return Move{}, false
		}
	}

	best, bestGain := Move{}, 0.0
	for hi := 0; hi < nodes-1; hi++ {
		lo := hi + 1
		// Evaluate both directions across the strip boundary; only the
		// heavy→light one can gain, but computing both keeps the policy
		// symmetric by construction.
		for _, cand := range [2]Move{
			{Col: last[hi], From: hi, To: lo},
			{Col: first[lo], From: lo, To: hi},
		} {
			if width[cand.From] <= 1 {
				continue // a node never gives up its last column
			}
			share := scores[cand.From] / float64(width[cand.From])
			oldMax := max(scores[cand.From], scores[cand.To])
			newMax := max(scores[cand.From]-share, scores[cand.To]+share)
			gain := (oldMax - newMax) / oldMax
			if gain > bestGain {
				best, bestGain = cand, gain
			}
		}
	}
	if bestGain < cfg.MinGain {
		return Move{}, false
	}
	b.stats.Moves++
	if width[best.From] > width[best.To] {
		b.stats.Splits++
	} else {
		b.stats.Merges++
	}
	return best, true
}

// scores computes the per-node load score, or nil when the sample
// carries no signal at all (all totals zero).
func (b *Balancer) scores(loads []Load) []float64 {
	cfg := b.cfg.withDefaults()
	var totBusy, totPop float64
	for _, l := range loads {
		totBusy += float64(l.BusyUS)
		totPop += float64(l.Population)
	}
	if (totBusy == 0 || cfg.BusyWeight == 0) && (totPop == 0 || cfg.PopWeight == 0) {
		return nil
	}
	out := make([]float64, len(loads))
	for i, l := range loads {
		if totBusy > 0 {
			out[i] += cfg.BusyWeight * float64(l.BusyUS) / totBusy
		}
		if totPop > 0 {
			out[i] += cfg.PopWeight * float64(l.Population) / totPop
		}
	}
	return out
}
