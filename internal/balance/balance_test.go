package balance

import (
	"testing"

	"dmknn/internal/model"
)

// evenOwners builds the NewPartition-style owner array: cols divided
// over nodes as evenly as possible, leading strips take the remainder.
func evenOwners(cols, nodes int) []int {
	owners := make([]int, cols)
	base, rem := cols/nodes, cols%nodes
	col := 0
	for i := 0; i < nodes; i++ {
		w := base
		if i < rem {
			w++
		}
		for j := 0; j < w; j++ {
			owners[col+j] = i
		}
		col += w
	}
	return owners
}

func TestHotNodeShedsBoundaryColumn(t *testing.T) {
	b := New(Config{})
	owners := evenOwners(16, 4) // 4 columns each
	loads := []Load{
		{Population: 800, BusyUS: 8000},
		{Population: 50, BusyUS: 500},
		{Population: 50, BusyUS: 500},
		{Population: 100, BusyUS: 1000},
	}
	mv, ok := b.Decide(0, owners, loads)
	if !ok {
		t.Fatal("no move proposed for a 8:1 hot node")
	}
	if mv.From != 0 || mv.To != 1 {
		t.Fatalf("move %+v, want node 0 shedding to node 1", mv)
	}
	if mv.Col != 3 {
		t.Fatalf("move %+v, want node 0's boundary column 3", mv)
	}
	st := b.Stats()
	if st.Decisions != 1 || st.Moves != 1 {
		t.Fatalf("stats %+v, want 1 decision, 1 move", st)
	}
}

func TestHotMiddleNodeShedsToAdjacent(t *testing.T) {
	b := New(Config{})
	owners := evenOwners(16, 4)
	loads := []Load{
		{Population: 50, BusyUS: 500},
		{Population: 800, BusyUS: 8000},
		{Population: 50, BusyUS: 500},
		{Population: 50, BusyUS: 500},
	}
	mv, ok := b.Decide(0, owners, loads)
	if !ok {
		t.Fatal("no move proposed")
	}
	if mv.From != 1 {
		t.Fatalf("move %+v, want donor 1", mv)
	}
	if mv.To != 0 && mv.To != 2 {
		t.Fatalf("move %+v, want an adjacent receiver", mv)
	}
	if mv.Col != 4 && mv.Col != 7 {
		t.Fatalf("move %+v, want a boundary column of strip 1 ({4,7})", mv)
	}
}

func TestBalancedLoadNoMove(t *testing.T) {
	b := New(Config{})
	owners := evenOwners(16, 4)
	loads := []Load{
		{Population: 100, BusyUS: 1000},
		{Population: 100, BusyUS: 1000},
		{Population: 100, BusyUS: 1000},
		{Population: 100, BusyUS: 1000},
	}
	if mv, ok := b.Decide(0, owners, loads); ok {
		t.Fatalf("balanced load produced move %+v", mv)
	}
	if st := b.Stats(); st.Decisions != 1 || st.Moves != 0 {
		t.Fatalf("stats %+v, want 1 decision, 0 moves", st)
	}
}

func TestZeroLoadNoMove(t *testing.T) {
	b := New(Config{})
	if mv, ok := b.Decide(0, evenOwners(8, 2), make([]Load, 2)); ok {
		t.Fatalf("zero load produced move %+v", mv)
	}
}

func TestIntervalGatesDecisions(t *testing.T) {
	b := New(Config{IntervalTicks: 10})
	owners := evenOwners(8, 2)
	hot := []Load{{Population: 900}, {Population: 100}}
	if _, ok := b.Decide(0, owners, hot); !ok {
		t.Fatal("first decision gated")
	}
	for now := model.Tick(1); now < 10; now++ {
		if b.Due(now) {
			t.Fatalf("Due(%d) = true inside the interval", now)
		}
		if _, ok := b.Decide(now, owners, hot); ok {
			t.Fatalf("decision at tick %d inside the interval", now)
		}
	}
	if !b.Due(10) {
		t.Fatal("Due(10) = false at the interval boundary")
	}
	if _, ok := b.Decide(10, owners, hot); !ok {
		t.Fatal("decision gated at the interval boundary")
	}
	if st := b.Stats(); st.Decisions != 2 {
		t.Fatalf("decisions = %d, want 2 (gated calls do not count)", st.Decisions)
	}
}

func TestDonorKeepsLastColumn(t *testing.T) {
	b := New(Config{})
	owners := []int{0, 1, 1, 1} // node 0 holds a single hot column
	loads := []Load{{Population: 1000}, {Population: 10}}
	if mv, ok := b.Decide(0, owners, loads); ok {
		t.Fatalf("single-column donor shed its strip: %+v", mv)
	}
}

func TestMinGainSuppressesMarginalMoves(t *testing.T) {
	b := New(Config{MinGain: 0.5})
	owners := evenOwners(8, 2)
	loads := []Load{{Population: 550}, {Population: 450}}
	if mv, ok := b.Decide(0, owners, loads); ok {
		t.Fatalf("marginal imbalance cleared MinGain 0.5: %+v", mv)
	}
}

func TestSplitAndMergeCounters(t *testing.T) {
	b := New(Config{IntervalTicks: 1})
	// Wide hot strip sheds to a narrow neighbor: a split.
	if _, ok := b.Decide(0, []int{0, 0, 0, 1}, []Load{{Population: 900}, {Population: 100}}); !ok {
		t.Fatal("wide hot strip did not shed")
	}
	// Narrow hot strip sheds to a wide neighbor: a merge.
	if _, ok := b.Decide(1, []int{0, 0, 1, 1, 1, 1}, []Load{{Population: 900}, {Population: 100}}); !ok {
		t.Fatal("narrow hot strip did not shed")
	}
	st := b.Stats()
	if st.Splits != 1 || st.Merges != 1 {
		t.Fatalf("stats %+v, want 1 split and 1 merge", st)
	}
}

func TestBusyWeightOnlyIgnoresPopulation(t *testing.T) {
	b := New(Config{BusyWeight: 1})
	owners := evenOwners(8, 2)
	// Population says node 1 is hot, busy time says balanced: a
	// busy-only config must not move.
	loads := []Load{{Population: 100, BusyUS: 1000}, {Population: 900, BusyUS: 1000}}
	if mv, ok := b.Decide(0, owners, loads); ok {
		t.Fatalf("busy-only balancer moved on population skew: %+v", mv)
	}
}

func TestPopWeightOnlyIgnoresBusy(t *testing.T) {
	b := New(Config{PopWeight: 1})
	owners := evenOwners(8, 2)
	loads := []Load{{Population: 500, BusyUS: 9000}, {Population: 500, BusyUS: 1000}}
	if mv, ok := b.Decide(0, owners, loads); ok {
		t.Fatalf("population-only balancer moved on busy skew: %+v", mv)
	}
}

func TestMalformedOwnersNoMove(t *testing.T) {
	b := New(Config{IntervalTicks: 1})
	hot := []Load{{Population: 900}, {Population: 100}}
	if _, ok := b.Decide(0, []int{0, 0, 5, 0}, hot); ok {
		t.Fatal("out-of-range owner accepted")
	}
	if _, ok := b.Decide(1, []int{0, 0, 0, 0}, hot); ok {
		t.Fatal("node with no columns accepted")
	}
}

func TestNoImmediateBounceBack(t *testing.T) {
	// After a move, re-deciding on the same (proportionally shifted)
	// loads must not move the column back: the oscillation guard.
	b := New(Config{IntervalTicks: 1})
	owners := evenOwners(16, 2)
	loads := []Load{{Population: 700}, {Population: 300}}
	mv, ok := b.Decide(0, owners, loads)
	if !ok {
		t.Fatal("no initial move")
	}
	owners[mv.Col] = mv.To
	shifted := 700 / 8
	loads = []Load{{Population: 700 - shifted}, {Population: 300 + shifted}}
	if mv2, ok := b.Decide(1, owners, loads); ok && mv2.Col == mv.Col && mv2.To == mv.From {
		t.Fatalf("column %d bounced straight back", mv.Col)
	}
}
