package grid

import (
	"math/rand"
	"sort"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/model"
)

func world() geo.Rect { return geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)) }

func TestNewPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { New(world(), 0, 4) },
		func() { New(world(), 4, -1) },
		func() { New(geo.NewRect(geo.Pt(0, 0), geo.Pt(0, 100)), 4, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCellOfClampsOutside(t *testing.T) {
	g := New(world(), 10, 10)
	if c := g.CellOf(geo.Pt(-5, 500)); c != (Cell{0, 5}) {
		t.Errorf("left overshoot -> %v", c)
	}
	if c := g.CellOf(geo.Pt(1500, 1500)); c != (Cell{9, 9}) {
		t.Errorf("topright overshoot -> %v", c)
	}
	if c := g.CellOf(geo.Pt(1000, 1000)); c != (Cell{9, 9}) {
		t.Errorf("max corner -> %v", c)
	}
	if c := g.CellOf(geo.Pt(0, 0)); c != (Cell{0, 0}) {
		t.Errorf("min corner -> %v", c)
	}
}

func TestCellRectTilesWorld(t *testing.T) {
	g := New(world(), 8, 5)
	var area float64
	for row := 0; row < 5; row++ {
		for col := 0; col < 8; col++ {
			area += g.CellRect(Cell{col, row}).Area()
		}
	}
	if diff := area - world().Area(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cells area %v != world area %v", area, world().Area())
	}
	// Every point maps to the cell whose rect contains it.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		p := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		c := g.CellOf(p)
		if !g.CellRect(c).Contains(p) {
			t.Fatalf("point %v not inside its cell %v rect %v", p, c, g.CellRect(c))
		}
	}
}

func TestInsertUpdateRemove(t *testing.T) {
	g := New(world(), 4, 4)
	if err := g.Insert(1, geo.Pt(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(1, geo.Pt(20, 20)); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if p, ok := g.Position(1); !ok || p != geo.Pt(10, 10) {
		t.Fatalf("Position = %v %v", p, ok)
	}
	// Same-cell update.
	if err := g.Update(1, geo.Pt(20, 20)); err != nil {
		t.Fatal(err)
	}
	// Cross-cell update.
	if err := g.Update(1, geo.Pt(900, 900)); err != nil {
		t.Fatal(err)
	}
	if p, _ := g.Position(1); p != geo.Pt(900, 900) {
		t.Fatalf("after update Position = %v", p)
	}
	if got := g.CellObjects(g.CellOf(geo.Pt(20, 20))); len(got) != 0 {
		t.Fatalf("old cell still holds %v", got)
	}
	if err := g.Update(99, geo.Pt(1, 1)); err == nil {
		t.Fatal("update of absent id should fail")
	}
	if err := g.Remove(99); err == nil {
		t.Fatal("remove of absent id should fail")
	}
	if err := g.Remove(1); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	if _, ok := g.Position(1); ok {
		t.Fatal("Position of removed id should be absent")
	}
}

// referenceIndex is the trivially correct map-based index the grid is
// property-tested against.
type referenceIndex map[model.ObjectID]geo.Point

func (r referenceIndex) knn(p geo.Point, k int) []model.Neighbor {
	all := make([]model.Neighbor, 0, len(r))
	for id, pos := range r {
		all = append(all, model.Neighbor{ID: id, Dist: pos.Dist(p)})
	}
	model.SortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func (r referenceIndex) rangeQ(c geo.Circle) []model.Neighbor {
	var out []model.Neighbor
	for id, pos := range r {
		if d := pos.Dist(c.Center); d <= c.R {
			out = append(out, model.Neighbor{ID: id, Dist: d})
		}
	}
	model.SortNeighbors(out)
	return out
}

func TestGridMatchesReferenceUnderRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New(world(), 16, 16)
	ref := referenceIndex{}
	nextID := model.ObjectID(1)
	randPoint := func() geo.Point {
		return geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			id := nextID
			nextID++
			p := randPoint()
			if err := g.Insert(id, p); err != nil {
				t.Fatal(err)
			}
			ref[id] = p
		case op < 8: // update a random live object
			if len(ref) == 0 {
				continue
			}
			id := randomKey(rng, ref)
			p := randPoint()
			if err := g.Update(id, p); err != nil {
				t.Fatal(err)
			}
			ref[id] = p
		default: // remove
			if len(ref) == 0 {
				continue
			}
			id := randomKey(rng, ref)
			if err := g.Remove(id); err != nil {
				t.Fatal(err)
			}
			delete(ref, id)
		}
	}
	if g.Len() != len(ref) {
		t.Fatalf("Len %d != reference %d", g.Len(), len(ref))
	}
	// Full content equality.
	count := 0
	g.VisitAll(func(id model.ObjectID, p geo.Point) bool {
		count++
		if ref[id] != p {
			t.Fatalf("object %d at %v, reference says %v", id, p, ref[id])
		}
		return true
	})
	if count != len(ref) {
		t.Fatalf("VisitAll saw %d, want %d", count, len(ref))
	}
	// kNN equivalence at random query points and ks.
	for q := 0; q < 200; q++ {
		p := randPoint()
		k := 1 + rng.Intn(25)
		got := g.KNN(p, k, nil, nil)
		want := ref.knn(p, k)
		if !neighborsEqual(got, want) {
			t.Fatalf("KNN(%v, %d):\n got %v\nwant %v", p, k, got, want)
		}
	}
	// Range equivalence.
	for q := 0; q < 200; q++ {
		c := geo.Circle{Center: randPoint(), R: rng.Float64() * 300}
		got := g.Range(c, nil, nil)
		want := ref.rangeQ(c)
		if !neighborsEqual(got, want) {
			t.Fatalf("Range(%v):\n got %d results\nwant %d", c, len(got), len(want))
		}
	}
}

func randomKey(rng *rand.Rand, m referenceIndex) model.ObjectID {
	ids := make([]model.ObjectID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

func neighborsEqual(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
		if d := a[i].Dist - b[i].Dist; d > 1e-9 || d < -1e-9 {
			return false
		}
	}
	return true
}

func TestKNNEdgeCases(t *testing.T) {
	g := New(world(), 8, 8)
	if got := g.KNN(geo.Pt(1, 1), 3, nil, nil); got != nil {
		t.Fatalf("empty grid kNN = %v", got)
	}
	if got := g.KNN(geo.Pt(1, 1), 0, nil, nil); got != nil {
		t.Fatalf("k=0 kNN = %v", got)
	}
	for i := model.ObjectID(1); i <= 3; i++ {
		if err := g.Insert(i, geo.Pt(float64(i)*100, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := g.KNN(geo.Pt(0, 0), 10, nil, nil)
	if len(got) != 3 {
		t.Fatalf("k larger than population: %v", got)
	}
	if got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("order wrong: %v", got)
	}
}

func TestKNNSkipSet(t *testing.T) {
	g := New(world(), 8, 8)
	for i := model.ObjectID(1); i <= 5; i++ {
		if err := g.Insert(i, geo.Pt(float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := g.KNN(geo.Pt(0, 0), 2, map[model.ObjectID]bool{1: true, 2: true}, nil)
	if len(got) != 2 || got[0].ID != 3 || got[1].ID != 4 {
		t.Fatalf("skip set ignored: %v", got)
	}
}

func TestRangeEdgeCases(t *testing.T) {
	g := New(world(), 8, 8)
	if err := g.Insert(1, geo.Pt(100, 100)); err != nil {
		t.Fatal(err)
	}
	if got := g.Range(geo.Circle{Center: geo.Pt(0, 0), R: -1}, nil, nil); got != nil {
		t.Fatalf("negative radius range = %v", got)
	}
	// Boundary-inclusive.
	got := g.Range(geo.Circle{Center: geo.Pt(100, 0), R: 100}, nil, nil)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("boundary object missed: %v", got)
	}
	got = g.Range(geo.Circle{Center: geo.Pt(100, 0), R: 99.999}, nil, nil)
	if len(got) != 0 {
		t.Fatalf("object outside included: %v", got)
	}
	// Skip set.
	got = g.Range(geo.Circle{Center: geo.Pt(100, 100), R: 10}, map[model.ObjectID]bool{1: true}, nil)
	if len(got) != 0 {
		t.Fatalf("skip set ignored: %v", got)
	}
}

func TestVisitCellsByMinDistOrderAndCoverage(t *testing.T) {
	g := New(world(), 12, 7)
	from := geo.Pt(333, 777)
	var last float64 = -1
	seen := map[Cell]bool{}
	g.VisitCellsByMinDist(from, func(c Cell, d float64) bool {
		if d < last {
			t.Fatalf("min-dist order violated: %v after %v", d, last)
		}
		last = d
		if seen[c] {
			t.Fatalf("cell %v visited twice", c)
		}
		seen[c] = true
		if want := g.CellRect(c).MinDist(from); want != d {
			t.Fatalf("reported dist %v != computed %v", d, want)
		}
		return true
	})
	if len(seen) != 12*7 {
		t.Fatalf("visited %d cells, want %d", len(seen), 12*7)
	}
}

func TestVisitCellsEarlyStop(t *testing.T) {
	g := New(world(), 10, 10)
	n := 0
	g.VisitCellsByMinDist(geo.Pt(500, 500), func(c Cell, d float64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCellsIntersecting(t *testing.T) {
	g := New(world(), 10, 10) // 100x100 cells
	// Tiny circle strictly inside one cell.
	cells := g.CellsIntersecting(geo.Circle{Center: geo.Pt(150, 150), R: 10})
	if len(cells) != 1 || cells[0] != (Cell{1, 1}) {
		t.Fatalf("tiny circle -> %v", cells)
	}
	// Circle centered on a cell corner touches 4 cells.
	cells = g.CellsIntersecting(geo.Circle{Center: geo.Pt(200, 200), R: 10})
	if len(cells) != 4 {
		t.Fatalf("corner circle -> %v", cells)
	}
	// Negative radius intersects nothing.
	if got := g.CellsIntersecting(geo.Circle{Center: geo.Pt(0, 0), R: -1}); got != nil {
		t.Fatalf("negative radius -> %v", got)
	}
	// Every returned cell really intersects; every omitted cell doesn't.
	c := geo.Circle{Center: geo.Pt(430, 611), R: 140}
	inSet := map[Cell]bool{}
	for _, cell := range g.CellsIntersecting(c) {
		inSet[cell] = true
		if !c.IntersectsRect(g.CellRect(cell)) {
			t.Fatalf("returned cell %v does not intersect", cell)
		}
	}
	for row := 0; row < 10; row++ {
		for col := 0; col < 10; col++ {
			cell := Cell{col, row}
			if !inSet[cell] && c.IntersectsRect(g.CellRect(cell)) {
				t.Fatalf("cell %v intersects but was omitted", cell)
			}
		}
	}
}

func TestVisitAllEarlyStop(t *testing.T) {
	g := New(world(), 4, 4)
	for i := model.ObjectID(1); i <= 10; i++ {
		if err := g.Insert(i, geo.Pt(float64(i)*10, float64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	g.VisitAll(func(model.ObjectID, geo.Point) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("VisitAll early stop saw %d", n)
	}
}

func BenchmarkGridUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := New(world(), 64, 64)
	const n = 20000
	pts := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		if err := g.Insert(model.ObjectID(i+1), pts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		p := pts[j]
		p.X += rng.Float64()*4 - 2
		p.Y += rng.Float64()*4 - 2
		p = world().Clamp(p)
		pts[j] = p
		if err := g.Update(model.ObjectID(j+1), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	g := New(world(), 64, 64)
	const n = 20000
	for i := 0; i < n; i++ {
		if err := g.Insert(model.ObjectID(i+1), geo.Pt(rng.Float64()*1000, rng.Float64()*1000)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNN(geo.Pt(rng.Float64()*1000, rng.Float64()*1000), 10, nil, nil)
	}
}

// A reused scratch slice must yield the same results as fresh
// allocation, be recycled in place when capacity suffices, and never be
// required (nil dst always works).
func TestKNNRangeScratchReuse(t *testing.T) {
	g := New(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 4, 4)
	for i := 1; i <= 50; i++ {
		if err := g.Insert(model.ObjectID(i), geo.Pt(float64(i*2%100), float64(i*3%100))); err != nil {
			t.Fatal(err)
		}
	}
	q := geo.Pt(50, 50)
	fresh := g.KNN(q, 10, nil, nil)
	scratch := make([]model.Neighbor, 0, 32)
	reused := g.KNN(q, 10, nil, scratch)
	if !neighborsEqual(fresh, reused) {
		t.Fatalf("scratch KNN differs: %v vs %v", reused, fresh)
	}
	if &scratch[:1][0] != &reused[:1][0] {
		t.Error("KNN did not reuse the scratch backing array")
	}
	c := geo.Circle{Center: q, R: 30}
	freshR := g.Range(c, nil, nil)
	reusedR := g.Range(c, nil, reused[:0])
	if !neighborsEqual(freshR, reusedR) {
		t.Fatalf("scratch Range differs: %v vs %v", reusedR, freshR)
	}
	// Repeated calls with the grown buffer must not allocate the result
	// slice; the per-call search state (frontier heap, seen bitmap, sort
	// closure) stays — it cannot live on the Grid because searches run
	// concurrently. The nil-dst path pays at least one extra allocation.
	buf := reusedR
	withScratch := testing.AllocsPerRun(50, func() {
		buf = g.Range(c, nil, buf[:0])
	})
	withNil := testing.AllocsPerRun(50, func() {
		_ = g.Range(c, nil, nil)
	})
	if withScratch >= withNil {
		t.Errorf("scratch path allocates %v per call, nil path %v", withScratch, withNil)
	}
}

// VisitCellsIntersecting must enumerate exactly the CellsIntersecting set
// in the same order, honor early stop, and allocate nothing.
func TestVisitCellsIntersectingMatchesSlice(t *testing.T) {
	g := NewGeometry(world(), 10, 10)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		c := geo.Circle{
			Center: geo.Pt(rng.Float64()*1200-100, rng.Float64()*1200-100),
			R:      rng.Float64()*400 - 10, // sometimes negative
		}
		want := g.CellsIntersecting(c)
		var got []Cell
		g.VisitCellsIntersecting(c, func(cell Cell) bool {
			got = append(got, cell)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: visited %d cells, slice has %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cell %d = %v, want %v (order must match)", trial, i, got[i], want[i])
			}
		}
	}

	// Early stop.
	seen := 0
	g.VisitCellsIntersecting(geo.Circle{Center: geo.Pt(500, 500), R: 400}, func(Cell) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop visited %d cells, want 3", seen)
	}

	// The visitor is the allocation-free hot path of the broadcast medium.
	c := geo.Circle{Center: geo.Pt(500, 500), R: 250}
	n := 0
	if allocs := testing.AllocsPerRun(50, func() {
		g.VisitCellsIntersecting(c, func(Cell) bool { n++; return true })
	}); allocs != 0 {
		t.Errorf("VisitCellsIntersecting allocates %v per call", allocs)
	}
}

// CellIndex must be the dense row-major index consistent with CellRect
// tiling and stay inside [0, NumCells).
func TestCellIndexDense(t *testing.T) {
	g := NewGeometry(world(), 7, 5)
	seen := make([]bool, g.NumCells())
	cols, rows := g.Dims()
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			idx := g.CellIndex(Cell{col, row})
			if idx < 0 || idx >= g.NumCells() {
				t.Fatalf("CellIndex(%d,%d) = %d out of range", col, row, idx)
			}
			if seen[idx] {
				t.Fatalf("CellIndex(%d,%d) = %d collides", col, row, idx)
			}
			seen[idx] = true
		}
	}
}
