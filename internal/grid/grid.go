// Package grid implements a uniform in-memory grid index over moving
// objects, the standard server-side structure in the continuous
// spatio-temporal query literature (SINA, SEA-CNN, CPM, YPK-CNN all build
// on one). The world rectangle is divided into cols × rows equal cells;
// each cell holds the objects currently inside it; updates move objects
// between cells in O(1).
//
// Search entry points:
//
//   - KNN: best-first expansion of cells ordered by minimum distance to
//     the query point (conceptual-partitioning style), provably visiting
//     no cell whose min distance exceeds the k-th candidate distance.
//   - Range: all objects inside a circle.
//   - VisitCellsByMinDist: the raw ordered-cell iterator, used by the
//     distributed protocol to address cell-granular broadcasts in
//     expanding rings.
//
// The index is not safe for concurrent mutation, but any number of
// read-only searches (KNN, Range, VisitCellsByMinDist, Position) may run
// concurrently as long as no Insert/Update/Remove is in flight; the
// simulation engine's parallel auditor and the TCP server both rely on
// that (see their docs).
package grid

import (
	"fmt"
	"math"

	"dmknn/internal/container/pq"
	"dmknn/internal/geo"
	"dmknn/internal/model"
)

// Cell addresses one grid cell by column and row.
type Cell struct {
	Col, Row int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("cell(%d,%d)", c.Col, c.Row) }

// Geometry is the cell layout of a uniform grid: the world rectangle
// divided into cols × rows equal cells. It is separate from the index so
// that components that only need cell addressing — notably the simulated
// wireless network, which resolves cell-granular broadcasts — can share
// the exact layout without holding object state.
type Geometry struct {
	bounds     geo.Rect
	cols, rows int
	cellW      float64
	cellH      float64
}

// NewGeometry returns the cell layout for the given world and dimensions.
// It panics on degenerate input, since a grid with zero extent is a
// programming error, not a runtime condition.
func NewGeometry(bounds geo.Rect, cols, rows int) Geometry {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %dx%d", cols, rows))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate bounds %v", bounds))
	}
	return Geometry{
		bounds: bounds,
		cols:   cols,
		rows:   rows,
		cellW:  bounds.Width() / float64(cols),
		cellH:  bounds.Height() / float64(rows),
	}
}

// Bounds returns the world rectangle the grid covers.
func (g Geometry) Bounds() geo.Rect { return g.bounds }

// Dims returns the number of columns and rows.
func (g Geometry) Dims() (cols, rows int) { return g.cols, g.rows }

// NumCells returns cols × rows.
func (g Geometry) NumCells() int { return g.cols * g.rows }

// CellOf returns the cell containing p. Points outside the bounds are
// clamped to the border cells, so the grid tolerates small numeric
// overshoot from mobility models.
func (g Geometry) CellOf(p geo.Point) Cell {
	col := int((p.X - g.bounds.Min.X) / g.cellW)
	row := int((p.Y - g.bounds.Min.Y) / g.cellH)
	if col < 0 {
		col = 0
	} else if col >= g.cols {
		col = g.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= g.rows {
		row = g.rows - 1
	}
	return Cell{col, row}
}

// CellRect returns the rectangle covered by cell c.
func (g Geometry) CellRect(c Cell) geo.Rect {
	minX := g.bounds.Min.X + float64(c.Col)*g.cellW
	minY := g.bounds.Min.Y + float64(c.Row)*g.cellH
	return geo.Rect{
		Min: geo.Pt(minX, minY),
		Max: geo.Pt(minX+g.cellW, minY+g.cellH),
	}
}

// VisitCellsIntersecting calls visit for every cell whose rectangle
// intersects the circle, in row-major order (the same order
// CellsIntersecting returns), stopping early when visit returns false.
// It allocates nothing: the simulated network iterates broadcast cell
// unions with it on every send and every delivery.
func (g Geometry) VisitCellsIntersecting(c geo.Circle, visit func(Cell) bool) {
	if c.R < 0 {
		return
	}
	br := c.BoundingRect()
	lo := g.CellOf(br.Min)
	hi := g.CellOf(br.Max)
	for row := lo.Row; row <= hi.Row; row++ {
		for col := lo.Col; col <= hi.Col; col++ {
			cell := Cell{col, row}
			if c.IntersectsRect(g.CellRect(cell)) && !visit(cell) {
				return
			}
		}
	}
}

// CellsIntersecting returns every cell whose rectangle intersects the
// circle. The distributed server uses it to address monitor-install
// broadcasts; callers on a hot path should prefer VisitCellsIntersecting,
// which does not allocate the result slice.
func (g Geometry) CellsIntersecting(c geo.Circle) []Cell {
	var out []Cell
	g.VisitCellsIntersecting(c, func(cell Cell) bool {
		out = append(out, cell)
		return true
	})
	return out
}

// CellIndex returns the dense row-major index of cell c in [0, NumCells).
// Components that keep per-cell state in a flat slice (the simulated
// network's client index, the grid's own object buckets) address it with
// this.
func (g Geometry) CellIndex(c Cell) int { return c.Row*g.cols + c.Col }

type entry struct {
	pos  geo.Point
	cell Cell
	// index of this object inside its cell's slice, for O(1) removal.
	slot int
}

// Grid is a uniform grid index over point objects.
type Grid struct {
	Geometry
	cells   [][]model.ObjectID // cells[row*cols+col] = object ids inside
	objects map[model.ObjectID]*entry
}

// New creates a grid index over the world rectangle with the given number
// of columns and rows. It panics if the geometry is degenerate, since a
// grid with zero extent is a programming error, not a runtime condition.
func New(bounds geo.Rect, cols, rows int) *Grid {
	geom := NewGeometry(bounds, cols, rows)
	return &Grid{
		Geometry: geom,
		cells:    make([][]model.ObjectID, geom.NumCells()),
		objects:  make(map[model.ObjectID]*entry),
	}
}

// Len returns the number of indexed objects.
func (g *Grid) Len() int { return len(g.objects) }

// Insert adds an object at position p. Inserting an id that is already
// present is an error; use Update to move objects.
func (g *Grid) Insert(id model.ObjectID, p geo.Point) error {
	if _, ok := g.objects[id]; ok {
		return fmt.Errorf("grid: object %d already present", id)
	}
	c := g.CellOf(p)
	idx := c.Row*g.cols + c.Col
	g.cells[idx] = append(g.cells[idx], id)
	g.objects[id] = &entry{pos: p, cell: c, slot: len(g.cells[idx]) - 1}
	return nil
}

// Update moves an existing object to position p. Updating an absent id is
// an error.
func (g *Grid) Update(id model.ObjectID, p geo.Point) error {
	e, ok := g.objects[id]
	if !ok {
		return fmt.Errorf("grid: object %d not present", id)
	}
	nc := g.CellOf(p)
	if nc == e.cell {
		e.pos = p
		return nil
	}
	g.removeFromCell(id, e)
	idx := nc.Row*g.cols + nc.Col
	g.cells[idx] = append(g.cells[idx], id)
	e.pos = p
	e.cell = nc
	e.slot = len(g.cells[idx]) - 1
	return nil
}

// Remove deletes an object from the index. Removing an absent id is an
// error.
func (g *Grid) Remove(id model.ObjectID) error {
	e, ok := g.objects[id]
	if !ok {
		return fmt.Errorf("grid: object %d not present", id)
	}
	g.removeFromCell(id, e)
	delete(g.objects, id)
	return nil
}

// Position returns the indexed position of id.
func (g *Grid) Position(id model.ObjectID) (geo.Point, bool) {
	e, ok := g.objects[id]
	if !ok {
		return geo.Point{}, false
	}
	return e.pos, true
}

// removeFromCell unlinks id from its current cell using swap-with-last.
func (g *Grid) removeFromCell(id model.ObjectID, e *entry) {
	idx := e.cell.Row*g.cols + e.cell.Col
	cell := g.cells[idx]
	last := len(cell) - 1
	if e.slot != last {
		moved := cell[last]
		cell[e.slot] = moved
		g.objects[moved].slot = e.slot
	}
	g.cells[idx] = cell[:last]
}

// CellObjects returns the ids currently inside cell c. The returned slice
// is the grid's internal storage: callers must not retain or mutate it.
func (g *Grid) CellObjects(c Cell) []model.ObjectID {
	return g.cells[c.Row*g.cols+c.Col]
}

// VisitAll calls fn for every indexed object. Iteration order is
// unspecified. If fn returns false the visit stops early.
func (g *Grid) VisitAll(fn func(id model.ObjectID, p geo.Point) bool) {
	for id, e := range g.objects {
		if !fn(id, e.pos) {
			return
		}
	}
}

// VisitCellsByMinDist visits cells in non-decreasing order of their
// minimum distance to p, calling visit with the cell and that distance.
// The visit stops when visit returns false or all cells were seen.
//
// This is the best-first frontier used by both the centralized kNN and the
// probe-ring broadcasts of the distributed protocol.
func (g *Grid) VisitCellsByMinDist(p geo.Point, visit func(c Cell, minDist float64) bool) {
	start := g.CellOf(p)
	h := pq.NewMin[Cell](64)
	seen := make([]bool, g.cols*g.rows)
	push := func(c Cell) {
		if c.Col < 0 || c.Col >= g.cols || c.Row < 0 || c.Row >= g.rows {
			return
		}
		idx := c.Row*g.cols + c.Col
		if seen[idx] {
			return
		}
		seen[idx] = true
		h.Push(g.CellRect(c).MinDist(p), c)
	}
	push(start)
	for h.Len() > 0 {
		d, c := h.Pop()
		if !visit(c, d) {
			return
		}
		push(Cell{c.Col - 1, c.Row})
		push(Cell{c.Col + 1, c.Row})
		push(Cell{c.Col, c.Row - 1})
		push(Cell{c.Col, c.Row + 1})
		// Diagonal neighbors are reachable through laterals with equal or
		// smaller min distance, so 4-connectivity suffices for ordering;
		// we still push them to guarantee full coverage on early rings.
		push(Cell{c.Col - 1, c.Row - 1})
		push(Cell{c.Col + 1, c.Row - 1})
		push(Cell{c.Col - 1, c.Row + 1})
		push(Cell{c.Col + 1, c.Row + 1})
	}
}

// KNN returns the k nearest objects to p in ascending distance order
// (ties broken by id). Fewer than k results means the index holds fewer
// than k objects. The skip set, if non-nil, excludes specific ids (used to
// exclude a query's own focal object).
//
// dst, if non-nil, is a scratch slice the result is appended into
// (starting at dst[:0]), letting hot callers — the auditor evaluates
// every query every tick — amortize the result allocation across calls.
// Pass nil to allocate a fresh slice.
func (g *Grid) KNN(p geo.Point, k int, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor {
	if k <= 0 || len(g.objects) == 0 {
		return nil
	}
	best := pq.NewBoundedMax[model.ObjectID](k)
	g.VisitCellsByMinDist(p, func(c Cell, minDist float64) bool {
		if best.Full() && minDist > best.Worst() {
			return false // no remaining cell can improve the answer
		}
		for _, id := range g.CellObjects(c) {
			if skip != nil && skip[id] {
				continue
			}
			best.Offer(g.objects[id].pos.Dist(p), id)
		}
		return true
	})
	dists, ids := best.Drain()
	out := dst[:0]
	for i := range ids {
		out = append(out, model.Neighbor{ID: ids[i], Dist: dists[i]})
	}
	stabilize(out)
	return out
}

// Range returns every object within the circle, in ascending distance
// order with ties broken by id. dst, if non-nil, is a scratch slice the
// result is appended into (starting at dst[:0]); pass nil to allocate.
func (g *Grid) Range(c geo.Circle, skip map[model.ObjectID]bool, dst []model.Neighbor) []model.Neighbor {
	if c.R < 0 || len(g.objects) == 0 {
		return nil
	}
	out := dst[:0]
	rsq := c.R * c.R
	g.VisitCellsByMinDist(c.Center, func(cell Cell, minDist float64) bool {
		if minDist > c.R {
			return false
		}
		for _, id := range g.CellObjects(cell) {
			if skip != nil && skip[id] {
				continue
			}
			if dsq := g.objects[id].pos.DistSq(c.Center); dsq <= rsq {
				out = append(out, model.Neighbor{ID: id, Dist: math.Sqrt(dsq)})
			}
		}
		return true
	})
	model.SortNeighbors(out)
	return out
}

// stabilize re-sorts equal-distance runs by id so the result is fully
// deterministic. The input is already distance-sorted by Drain.
func stabilize(ns []model.Neighbor) {
	model.SortNeighbors(ns)
}
