// Package transport defines the sending surfaces the protocol logic is
// written against, decoupling the query-processing state machines in
// internal/core and internal/baseline from the medium that carries their
// messages.
//
// Two media implement these interfaces:
//
//   - internal/simnet: the metered in-memory network the experiments run
//     on, with configurable latency and loss;
//   - internal/nettcp: a real length-prefixed TCP transport for
//     deployments.
//
// Send methods do not return errors: the protocol state machines are
// designed to tolerate message loss (that is the point of the epoch and
// fallback machinery), so delivery failure is a metered event of the
// medium, not a control-flow branch of the protocol.
package transport

import (
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// ServerSide is the sending surface available to a query server.
type ServerSide interface {
	// Downlink sends one unicast message to a specific client.
	Downlink(to model.ObjectID, m protocol.Message)
	// Broadcast sends a message to every client inside the grid cells
	// intersecting the region.
	Broadcast(region geo.Circle, m protocol.Message)
}

// BroadcastItem is one region-scoped message inside a broadcast batch.
type BroadcastItem struct {
	Region geo.Circle
	Msg    protocol.Message
}

// BatchServerSide is optionally implemented by a ServerSide whose medium
// can accept a whole tick's broadcasts in one call. Semantically
// BroadcastBatch(items) is exactly the loop
//
//	for _, it := range items { side.Broadcast(it.Region, it.Msg) }
//
// — same per-item metering, same recipients, same delivery order — but
// the medium may share per-cell audience work across the items instead
// of redoing it per call. Callers must treat the items slice as borrowed:
// the medium copies what it keeps before returning.
type BatchServerSide interface {
	BroadcastBatch(items []BroadcastItem)
}

// ClientSide is the sending surface available to one mobile client.
type ClientSide interface {
	// Uplink sends one unicast message to the server.
	Uplink(m protocol.Message)
}

// ServerHandler consumes uplinks at the server.
type ServerHandler interface {
	HandleUplink(from model.ObjectID, m protocol.Message)
}

// DisconnectHandler is optionally implemented by a ServerHandler on
// connection-oriented media: the transport reports that a client is gone
// (connection closed or replaced) so the server can purge its state —
// e.g. drop the object from answers, or tear down the queries of a
// vanished focal client. Wireless-style media never call it.
type DisconnectHandler interface {
	HandleClientGone(id model.ObjectID)
}

// AttachHandler is optionally implemented by a ServerHandler on
// connection-oriented media: the transport reports that a client has
// completed its handshake, so the server can greet it — e.g. push the
// current partition map to a client whose routing belief may be stale
// from before it (re)connected. Wireless-style media never call it.
type AttachHandler interface {
	HandleClientAttached(id model.ObjectID)
}

// ClientHandler consumes downlinks and broadcasts at one client.
type ClientHandler interface {
	HandleServerMessage(m protocol.Message)
}

// ServerHandlerFunc adapts a function to ServerHandler.
type ServerHandlerFunc func(from model.ObjectID, m protocol.Message)

// HandleUplink implements ServerHandler.
func (f ServerHandlerFunc) HandleUplink(from model.ObjectID, m protocol.Message) { f(from, m) }

// ClientHandlerFunc adapts a function to ClientHandler.
type ClientHandlerFunc func(m protocol.Message)

// HandleServerMessage implements ClientHandler.
func (f ClientHandlerFunc) HandleServerMessage(m protocol.Message) { f(m) }
