package nettcp

import (
	"sync/atomic"
	"testing"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

type goneRec struct {
	collector
	gone atomic.Int64
}

func (g *goneRec) HandleClientGone(id model.ObjectID) { g.gone.Store(int64(id)) }

func TestDisconnectNotification(t *testing.T) {
	s := startServer(t)
	rec := &goneRec{}
	s.AttachHandler(rec)
	cl, err := Dial(s.Addr().String(), 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "connect", func() bool { return s.ClientCount() == 1 })
	cl.Uplink(protocol.QueryDeregister{Query: 1})
	waitFor(t, "uplink", func() bool { return rec.count() == 1 })
	cl.Close()
	waitFor(t, "gone", func() bool { return rec.gone.Load() == 77 })
}
