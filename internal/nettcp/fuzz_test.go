package nettcp

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/protocol"
)

// frameBytes encodes m as one wire frame (length prefix + payload).
func frameBytes(tb testing.TB, m protocol.Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame hammers the TCP frame decoder with arbitrary bytes: a
// hostile or corrupted peer controls this input completely, so the
// decoder must never panic, never allocate beyond maxFrame, and anything
// it does accept must survive a re-encode/re-decode round trip.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames spanning the message zoo.
	f.Add(frameBytes(f, protocol.LocationReport{Object: 9, Pos: geo.Pt(1, 2), At: 3}))
	f.Add(frameBytes(f, protocol.QueryRegister{Query: 1, K: 5, Pos: geo.Pt(10, 20), At: 7}))
	f.Add(frameBytes(f, protocol.AnswerUpdate{Query: 1, Seq: 42, At: 9}))
	f.Add(frameBytes(f, protocol.ProbeRequest{
		Query: 3, Seq: 2, Region: geo.Circle{Center: geo.Pt(5, 5), R: 50}, At: 4,
	}))
	// Malformed shapes the decoder must reject cleanly.
	f.Add([]byte{})                            // empty stream
	f.Add([]byte{1, 0})                        // truncated length prefix
	f.Add([]byte{0, 0, 0, 0})                  // zero-length frame
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3}) // absurd length prefix
	short := frameBytes(f, protocol.LocationReport{Object: 1})
	f.Add(short[:len(short)-2]) // truncated payload
	over := make([]byte, 4, 16)
	binary.LittleEndian.PutUint32(over, maxFrame+1)
	f.Add(append(over, 0xEE, 0xEE)) // length just past the cap
	garb := frameBytes(f, protocol.LocationReport{Object: 2, Pos: geo.Pt(3, 4)})
	garb[7] ^= 0xFF
	f.Add(garb) // bit-flipped payload

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		// Accepted frames must be canonical: re-encoding the decoded
		// message and decoding it again yields the same wire bytes.
		// (Bytes, not structs: NaN payload floats are legal on the wire
		// but NaN != NaN under DeepEqual.)
		first := frameBytes(t, msg)
		redone, err := readFrame(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v (msg %#v)", err, msg)
		}
		if again := frameBytes(t, redone); !bytes.Equal(again, first) {
			t.Fatalf("frame round trip diverged:\n got %x\nwant %x", again, first)
		}
	})
}
