package nettcp

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

func startServerCfg(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := ListenConfig("127.0.0.1:0", testGeom(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close() })
	return s
}

// goneCounter counts every ClientGone event (goneRec only records the
// latest id, which can't distinguish zero events from one).
type goneCounter struct {
	collector
	gone atomic.Int64
}

func (g *goneCounter) HandleClientGone(model.ObjectID) { g.gone.Add(1) }

// rawHandshake dials the server without the Client wrapper so the test
// fully controls when (whether) the connection reads.
func rawHandshake(t *testing.T, addr string, id model.ObjectID) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte{'D', 'K', 'N', 'N', version, 0, 0, 0, 0}
	hello[5] = byte(id)
	if _, err := c.Write(hello); err != nil {
		t.Fatal(err)
	}
	return c
}

func waitForLong(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// Regression test for the head-of-line-blocking write path: a client
// that handshakes and then never reads fills its TCP window; before the
// write deadline existed, the next broadcast to it blocked forever while
// holding the connection's write mutex, stalling the whole fan-out. With
// the fix the write fails at the deadline, the stalled client is evicted
// as a ClientGone, and healthy clients keep receiving.
func TestStalledReaderEvictedNotBlocking(t *testing.T) {
	s := startServerCfg(t, Config{WriteTimeout: 300 * time.Millisecond})
	rec := &goneCounter{}
	s.AttachHandler(rec)

	stalled := rawHandshake(t, s.Addr().String(), 13)
	defer stalled.Close()
	// Shrink the stalled side's receive buffer so its window fills after
	// a handful of frames instead of megabytes of kernel autotuning.
	if tc, ok := stalled.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	healthy := &clientCollector{}
	cl, err := Dial(s.Addr().String(), 14, healthy)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "both connected", func() bool { return s.ClientCount() == 2 })

	// Large frames fill the stalled connection's socket buffers in a few
	// writes regardless of the kernel's defaults.
	big := protocol.NodeRedirect{Node: 1, Addr: strings.Repeat("x", 60_000)}
	region := geo.Circle{Center: geo.Pt(500, 500), R: 50}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Each blocked write costs at most one WriteTimeout; after the
		// eviction the remaining broadcasts flow freely. Pre-fix, the
		// first blocked write never returns and this goroutine hangs.
		for i := 0; i < 400 && s.ClientCount() == 2; i++ {
			s.Side().Broadcast(region, big)
		}
	}()

	waitForLong(t, 20*time.Second, "stalled client evicted", func() bool {
		return s.ClientCount() == 1 && rec.gone.Load() == 1
	})
	<-done
	cnt := s.Counters()
	if cnt.Evictions() == 0 {
		t.Error("eviction not metered")
	}

	// The fan-out is unblocked: the healthy client still receives.
	before := healthy.count()
	s.Side().Broadcast(region, protocol.MonitorCancel{Query: 3, Epoch: 1})
	waitFor(t, "healthy client still served", func() bool { return healthy.count() > before })
}

// A connection that presents no handshake bytes is cut at the handshake
// deadline — and the eviction is metered — instead of pinning its serve
// goroutine forever.
func TestHandshakeTimeout(t *testing.T) {
	s := startServerCfg(t, Config{HandshakeTimeout: 100 * time.Millisecond})
	s.AttachHandler(&collector{})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send nothing. The server must close the connection at the deadline.
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server kept a silent connection open past the handshake deadline")
	}
	waitFor(t, "eviction metered", func() bool {
		cnt := s.Counters()
		return cnt.Evictions() == 1
	})
	if s.ClientCount() != 0 {
		t.Fatal("silent connection registered as client")
	}
}

// The reconnect-replaces-session path (serveConn closes the old conn on
// a duplicate id): the replaced session must emit no spurious gone event,
// and frames sent after the replacement must reach only the new session —
// never interleave onto the old connection.
func TestReconnectReplacementIsolation(t *testing.T) {
	s := startServer(t)
	rec := &goneCounter{}
	s.AttachHandler(rec)

	old := rawHandshake(t, s.Addr().String(), 21)
	defer old.Close()
	waitFor(t, "first session", func() bool { return s.ClientCount() == 1 })

	repl := &clientCollector{}
	cl, err := Dial(s.Addr().String(), 21, repl)
	if err != nil {
		t.Fatal(err)
	}
	// The replacement closes the old conn server-side; its read observes
	// EOF without any frames, and — critically — no gone event fires, so
	// a handler never purges the still-live client state.
	old.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := old.Read(make([]byte, 4)); err == nil {
		t.Fatalf("old session received %d bytes after replacement", n)
	}
	waitFor(t, "exactly one session", func() bool { return s.ClientCount() == 1 })
	if g := rec.gone.Load(); g != 0 {
		t.Fatalf("replacement emitted %d spurious gone event(s)", g)
	}

	// Post-replacement downlinks land on the new session, in order.
	for i := 1; i <= 3; i++ {
		s.Side().Downlink(21, protocol.AnswerUpdate{Query: model.QueryID(i), At: model.Tick(i)})
	}
	waitFor(t, "new session frames", func() bool { return repl.count() == 3 })
	repl.mu.Lock()
	for i, m := range repl.msgs {
		if au, ok := m.(protocol.AnswerUpdate); !ok || au.Query != model.QueryID(i+1) {
			t.Errorf("frame %d = %#v, want AnswerUpdate{Query:%d}", i, m, i+1)
		}
	}
	repl.mu.Unlock()

	// A real disconnect of the live session still notifies.
	cl.Close()
	waitFor(t, "real gone event", func() bool { return rec.gone.Load() == 1 })
}

// ReapIdle evicts connections with no inbound traffic past the idle
// bound, via the normal gone path, and meters the evictions.
func TestReapIdle(t *testing.T) {
	s := startServer(t)
	rec := &goneCounter{}
	s.AttachHandler(rec)

	idle, err := Dial(s.Addr().String(), 31, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	busy, err := Dial(s.Addr().String(), 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	waitFor(t, "both connected", func() bool { return s.ClientCount() == 2 })

	time.Sleep(60 * time.Millisecond)
	busy.Uplink(protocol.QueryDeregister{Query: 1})
	waitFor(t, "busy uplink seen", func() bool { return rec.count() == 1 })

	if n := s.ReapIdle(40 * time.Millisecond); n != 1 {
		t.Fatalf("ReapIdle = %d, want 1", n)
	}
	waitFor(t, "idle client gone", func() bool {
		return s.ClientCount() == 1 && rec.gone.Load() == 1
	})
	cnt := s.Counters()
	if got := cnt.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The idle client's read loop observed the close.
	select {
	case <-idle.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("reaped client's read loop never exited")
	}
}
