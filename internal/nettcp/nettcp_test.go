package nettcp

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

func testGeom() grid.Geometry {
	return grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 10, 10)
}

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", testGeom())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close() })
	return s
}

// collector records uplinks thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []protocol.Message
	from []model.ObjectID
}

func (c *collector) HandleUplink(from model.ObjectID, m protocol.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// clientCollector records downlinks/broadcasts thread-safely.
type clientCollector struct {
	mu   sync.Mutex
	msgs []protocol.Message
}

func (c *clientCollector) HandleServerMessage(m protocol.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *clientCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestUplinkRoundTrip(t *testing.T) {
	s := startServer(t)
	col := &collector{}
	s.AttachHandler(col)

	cl, err := Dial(s.Addr().String(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	msg := protocol.LocationReport{Object: 42, Pos: geo.Pt(3, 4), Vel: geo.Vec(1, 0), At: 7}
	cl.Uplink(msg)
	waitFor(t, "uplink delivery", func() bool { return col.count() == 1 })
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.from[0] != 42 {
		t.Errorf("from = %d", col.from[0])
	}
	if got, ok := col.msgs[0].(protocol.LocationReport); !ok || got != msg {
		t.Errorf("got %#v", col.msgs[0])
	}
	c := s.Counters()
	if c.Sent(metrics.Uplink) != 1 || c.Delivered(metrics.Uplink) != 1 {
		t.Error("uplink counters wrong")
	}
}

func TestDownlinkAndBroadcast(t *testing.T) {
	s := startServer(t)
	s.AttachHandler(transport.ServerHandlerFunc(func(model.ObjectID, protocol.Message) {}))

	c1, c2 := &clientCollector{}, &clientCollector{}
	cl1, err := Dial(s.Addr().String(), 1, c1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	cl2, err := Dial(s.Addr().String(), 2, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	waitFor(t, "both clients registered", func() bool { return s.ClientCount() == 2 })

	s.Side().Downlink(1, protocol.AnswerUpdate{Query: 9, At: 1})
	waitFor(t, "downlink", func() bool { return c1.count() == 1 })
	if c2.count() != 0 {
		t.Error("downlink leaked to another client")
	}

	region := geo.Circle{Center: geo.Pt(500, 500), R: 120}
	s.Side().Broadcast(region, protocol.MonitorCancel{Query: 9, Epoch: 1})
	waitFor(t, "broadcast", func() bool { return c1.count() == 2 && c2.count() == 1 })

	cnt := s.Counters()
	wantCells := uint64(len(testGeom().CellsIntersecting(region)))
	if got := cnt.Sent(metrics.Broadcast); got != wantCells {
		t.Errorf("broadcast transmissions = %d, want %d (cell-accounted)", got, wantCells)
	}
	if cnt.Sent(metrics.Downlink) != 1 {
		t.Error("downlink count")
	}
}

func TestDownlinkToAbsentClientIsDropped(t *testing.T) {
	s := startServer(t)
	s.Side().Downlink(99, protocol.AnswerUpdate{Query: 1})
	c := s.Counters()
	if c.Dropped(metrics.Downlink) != 1 {
		t.Errorf("dropped = %d", c.Dropped(metrics.Downlink))
	}
}

func TestBadHandshakeRejected(t *testing.T) {
	s := startServer(t)
	// Dial raw and send garbage.
	cl, err := Dial(s.Addr().String(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "good client", func() bool { return s.ClientCount() == 1 })
	// A raw connection with a wrong magic never becomes a client.
	raw, err := Dial(s.Addr().String(), 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw.Close()
	// Bad magic path: craft via net.Dial directly is covered by sending
	// a wrong version through a second Dial variant; simulate by writing
	// garbage with the exported API being bypassed is intentionally not
	// possible, so assert the good-path count only.
	if s.ClientCount() < 1 {
		t.Error("client lost")
	}
}

func TestReconnectReplacesSession(t *testing.T) {
	s := startServer(t)
	s.AttachHandler(&collector{})
	c1, err := Dial(s.Addr().String(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first session", func() bool { return s.ClientCount() == 1 })
	c2, err := Dial(s.Addr().String(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Still exactly one registered client for id 7.
	waitFor(t, "replacement", func() bool { return s.ClientCount() == 1 })
	c1.Close()
	time.Sleep(10 * time.Millisecond)
	if s.ClientCount() != 1 {
		t.Error("closing the stale session must not unregister the new one")
	}
}

// End-to-end: the DKNN protocol state machines running over real TCP.
// A stationary query watches three moving objects; ticks are driven
// manually with settling delays between the protocol phases.
func TestDKNNOverTCP(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	s := startServer(t)

	var tickNow atomic.Int64
	now := func() model.Tick { return model.Tick(tickNow.Load()) }

	cfg := core.Config{
		HorizonTicks:   8,
		MinProbeRadius: 100,
		AnswerSlack:    1,
	}.WithWorldDefault(world)

	srv, err := core.NewServer(cfg, core.ServerDeps{
		Side:           s.Side(),
		Now:            now,
		DT:             1,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  0,
		LatencyTicks:   0,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachHandler(srv)

	// Three objects; positions mutated under a lock between ticks.
	var posMu sync.Mutex
	positions := map[model.ObjectID]geo.Point{
		1: geo.Pt(500, 510),
		2: geo.Pt(500, 530),
		3: geo.Pt(500, 560),
	}
	readPos := func(id model.ObjectID) func() geo.Point {
		return func() geo.Point {
			posMu.Lock()
			defer posMu.Unlock()
			return positions[id]
		}
	}
	agents := map[model.ObjectID]*core.ObjectAgent{}
	for id := model.ObjectID(1); id <= 3; id++ {
		var agent *core.ObjectAgent
		cl, err := Dial(s.Addr().String(), id, transport.ClientHandlerFunc(func(m protocol.Message) {
			agent.HandleServerMessage(m)
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		agent, err = core.NewObjectAgent(cfg, core.AgentDeps{
			ID: id, Side: cl, Now: now, Pos: readPos(id), DT: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[id] = agent
	}

	// Query focal client at (500,500) asking for k=2.
	var qa *core.QueryAgent
	qcl, err := Dial(s.Addr().String(), 100, transport.ClientHandlerFunc(func(m protocol.Message) {
		qa.HandleServerMessage(m)
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer qcl.Close()
	qa, err = core.NewQueryAgent(cfg, model.QuerySpec{ID: 1, K: 2, Pos: geo.Pt(500, 500)},
		core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID: 100, Side: qcl, Now: now,
				Pos: func() geo.Point { return geo.Pt(500, 500) },
				DT:  1,
			},
			Vel: func() geo.Vector { return geo.Vec(0, 0) },
		})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all clients connected", func() bool { return s.ClientCount() == 4 })

	settle := func() { time.Sleep(30 * time.Millisecond) }
	step := func() {
		tickNow.Add(1)
		qa.Tick(now())
		for id := model.ObjectID(1); id <= 3; id++ {
			agents[id].Tick(now())
		}
		settle()
		srv.Tick(now())
		settle()
		for i := 0; i < 4 && srv.Finalize(now()); i++ {
			settle()
		}
		settle()
	}

	step() // registers the query, probes, installs
	waitFor(t, "initial answer", func() bool {
		a := qa.Answer()
		return len(a.Neighbors) == 2
	})
	a := qa.Answer()
	if a.Neighbors[0].ID != 1 || a.Neighbors[1].ID != 2 {
		t.Fatalf("initial answer = %v, want objects 1,2", a.Neighbors)
	}

	// Move object 3 closest; membership must flip to {3, 1}.
	posMu.Lock()
	positions[3] = geo.Pt(500, 505)
	posMu.Unlock()
	step()
	waitFor(t, "updated answer", func() bool {
		a := qa.Answer()
		return len(a.Neighbors) == 2 && a.IDSet()[3]
	})
	a = qa.Answer()
	if !a.IDSet()[3] || !a.IDSet()[1] {
		t.Fatalf("post-move answer = %v, want {3,1}", a.Neighbors)
	}

	// Traffic flowed on the real socket.
	c := s.Counters()
	if c.Sent(metrics.Uplink) == 0 || c.Sent(metrics.Broadcast) == 0 || c.Sent(metrics.Downlink) == 0 {
		t.Errorf("expected traffic in all directions: %+v up=%d down=%d bcast=%d",
			c, c.Sent(metrics.Uplink), c.Sent(metrics.Downlink), c.Sent(metrics.Broadcast))
	}
}

// A raw connection with a wrong magic must be rejected and never counted
// as a client.
func TestRawBadMagicRejected(t *testing.T) {
	s := startServer(t)
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{'X', 'X', 'X', 'X', 1, 0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection; a read observes EOF.
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server kept a bad-magic connection open")
	}
	if s.ClientCount() != 0 {
		t.Fatal("bad-magic connection registered as client")
	}
}

// An oversized frame kills the connection instead of allocating.
func TestOversizedFrameRejected(t *testing.T) {
	s := startServer(t)
	s.AttachHandler(&collector{})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := append([]byte{'D', 'K', 'N', 'N', 1}, 9, 0, 0, 0)
	if _, err := c.Write(hello); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool { return s.ClientCount() == 1 })
	// Declare a 100 MB frame.
	if _, err := c.Write([]byte{0, 0, 0x40, 0x06}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "disconnect", func() bool { return s.ClientCount() == 0 })
}

// A wrong protocol version in the handshake is rejected.
func TestWrongVersionRejected(t *testing.T) {
	s := startServer(t)
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{'D', 'K', 'N', 'N', 99, 1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server kept a wrong-version connection open")
	}
	if s.ClientCount() != 0 {
		t.Fatal("wrong-version connection registered")
	}
}

// A connection torn down by the SERVER latches an error on the client;
// an intentional client Close does not (closing is not a failure), and
// sends after either never panic.
func TestUplinkErrorSemantics(t *testing.T) {
	s := startServer(t)
	s.AttachHandler(&collector{})
	cl, err := Dial(s.Addr().String(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Err() != nil {
		t.Fatalf("fresh client has error %v", cl.Err())
	}
	// Kill the server side; subsequent uplinks fail and latch the error.
	waitFor(t, "registered", func() bool { return s.ClientCount() == 1 })
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for cl.Err() == nil {
		cl.Uplink(protocol.QueryDeregister{Query: 1})
		if time.Now().After(deadline) {
			t.Fatal("Err() never latched after server death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.Close()

	// Intentional close on a healthy connection stays error-free.
	s2 := startServer(t)
	s2.AttachHandler(&collector{})
	cl2, err := Dial(s2.Addr().String(), 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl2.Close()
	cl2.Uplink(protocol.QueryDeregister{Query: 1}) // must not panic
	if cl2.Err() != nil {
		t.Fatalf("intentional close produced error %v", cl2.Err())
	}
}
