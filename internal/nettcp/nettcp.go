// Package nettcp carries the protocol over real TCP connections, turning
// the library into a deployable system: the same Server/ObjectAgent/
// QueryAgent state machines from internal/core run unchanged on both the
// metered simulation network and this transport.
//
// Wire format, per connection:
//
//	handshake (client → server, once):
//	    4 bytes magic "DKNN" | 1 byte version | 4 bytes client id (LE)
//	then, both directions, length-prefixed frames:
//	    4 bytes payload length (LE) | payload = protocol.Encode(msg)
//
// Broadcast semantics: a wireless cell broadcast has no TCP equivalent,
// so the server fans the frame out to every connected client and lets
// the client-side state machines filter by the region carried in the
// message (probes and installs carry their regions; agents outside
// simply ignore them). Accounting still records one transmission per
// intersecting grid cell, exactly like the simulated medium, so traffic
// metrics are comparable.
package nettcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

var (
	magic = [4]byte{'D', 'K', 'N', 'N'}
	// version of the wire protocol.
	version byte = 1
)

// maxFrame bounds a frame payload; anything larger is a protocol error.
const maxFrame = 1 << 20

// ErrBadHandshake reports a connection that did not start with the
// expected magic/version.
var ErrBadHandshake = errors.New("nettcp: bad handshake")

// Config tunes the server's liveness behavior. The zero value takes the
// defaults below.
type Config struct {
	// WriteTimeout bounds every frame write to one client. A connection
	// whose reader has stalled (full TCP window, dead peer behind a
	// half-open socket) fails the write at the deadline and is evicted,
	// instead of head-of-line-blocking every broadcast fan-out behind it.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds how long a fresh connection may take to
	// present its handshake bytes; a connection that sends nothing is
	// closed at the deadline instead of pinning its goroutine forever.
	HandshakeTimeout time.Duration
}

// Liveness defaults.
const (
	DefaultWriteTimeout     = 5 * time.Second
	DefaultHandshakeTimeout = 3 * time.Second
)

func (c Config) withDefaults() Config {
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return c
}

func writeFrame(w io.Writer, m protocol.Message) error {
	payload := protocol.Encode(nil, m)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (protocol.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("nettcp: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return protocol.Decode(payload)
}

// ---------------------------------------------------------------------------
// Server

// Server accepts client connections and bridges them to a
// transport.ServerHandler. Its Side() implements transport.ServerSide for
// the query-processing logic.
type Server struct {
	ln   net.Listener
	geom grid.Geometry
	cfg  Config

	mu      sync.Mutex
	conns   map[model.ObjectID]*serverConn
	handler transport.ServerHandler
	metered metrics.Counters
	closed  bool

	wg sync.WaitGroup
}

type serverConn struct {
	id       model.ObjectID
	c        net.Conn
	wm       sync.Mutex   // serializes frame writes
	lastSeen atomic.Int64 // unix nanos of the last frame read (or handshake)
}

// Listen starts a server on addr ("host:port"; ":0" picks a free port)
// with default liveness settings. geom defines the broadcast cell layout
// used for traffic accounting.
func Listen(addr string, geom grid.Geometry) (*Server, error) {
	return ListenConfig(addr, geom, Config{})
}

// ListenConfig starts a server with explicit liveness settings.
func ListenConfig(addr string, geom grid.Geometry, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen: %w", err)
	}
	return &Server{
		ln:    ln,
		geom:  geom,
		cfg:   cfg.withDefaults(),
		conns: make(map[model.ObjectID]*serverConn),
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// AttachHandler installs the uplink consumer. It must be set before
// Serve.
func (s *Server) AttachHandler(h transport.ServerHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// Counters returns a snapshot of the traffic counters.
func (s *Server) Counters() metrics.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metered.Snapshot()
}

// ClientCount returns the number of connected clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Serve accepts connections until Close. It returns nil after Close,
// other listener errors otherwise.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Close stops accepting, closes every client connection, and waits for
// the per-connection readers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for _, sc := range s.conns {
		sc.c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	id, err := s.handshake(c)
	if err != nil {
		// A connection that presented nothing until the deadline pinned
		// this goroutine for the whole timeout; meter the eviction so
		// operators can see dial-and-stall behavior (port scans, broken
		// clients) distinctly from protocol garbage.
		if isTimeout(err) {
			s.mu.Lock()
			s.metered.RecordEviction()
			s.mu.Unlock()
		}
		c.Close()
		return
	}
	sc := &serverConn{id: id, c: c}
	sc.lastSeen.Store(time.Now().UnixNano())
	s.mu.Lock()
	if old, ok := s.conns[id]; ok {
		old.c.Close() // a reconnect replaces the previous session
	}
	s.conns[id] = sc
	ah := s.handler
	s.mu.Unlock()
	if a, ok := ah.(transport.AttachHandler); ok {
		a.HandleClientAttached(id)
	}

	defer func() {
		c.Close()
		s.mu.Lock()
		gone := false
		if s.conns[id] == sc {
			delete(s.conns, id)
			gone = true
		}
		h := s.handler
		s.mu.Unlock()
		// Notify only when the client has no live session left (a
		// reconnect replaces the old conn without a gone event).
		if gone {
			if dh, ok := h.(transport.DisconnectHandler); ok {
				dh.HandleClientGone(id)
			}
		}
	}()

	for {
		msg, err := readFrame(c)
		if err != nil {
			return
		}
		sc.lastSeen.Store(time.Now().UnixNano())
		s.mu.Lock()
		h := s.handler
		s.metered.RecordSend(metrics.Uplink, msg.Kind(), protocol.EncodedSize(msg))
		s.metered.RecordDeliver(metrics.Uplink)
		s.mu.Unlock()
		if h != nil {
			h.HandleUplink(id, msg)
		}
	}
}

// handshake reads the fixed 9-byte client hello under the handshake
// deadline, so a connection that sends nothing cannot pin its goroutine
// indefinitely. The deadline is cleared before returning; the steady
// state read loop has no read deadline (clients are legitimately silent
// for long stretches).
func (s *Server) handshake(c net.Conn) (model.ObjectID, error) {
	c.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	defer c.SetReadDeadline(time.Time{})
	var buf [9]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		return 0, err
	}
	if [4]byte(buf[:4]) != magic || buf[4] != version {
		return 0, ErrBadHandshake
	}
	return model.ObjectID(binary.LittleEndian.Uint32(buf[5:9])), nil
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ReapIdle closes every client connection whose last inbound frame is
// older than maxIdle, returning how many were evicted. The read loops
// observe the close and emit the usual ClientGone notifications, so the
// attached handler purges reaped clients exactly like disconnected ones.
// Deployments with legitimately silent clients should size maxIdle well
// above the protocol's reporting horizon, or not call this at all.
func (s *Server) ReapIdle(maxIdle time.Duration) int {
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	s.mu.Lock()
	var victims []*serverConn
	for _, sc := range s.conns {
		if sc.lastSeen.Load() < cutoff {
			victims = append(victims, sc)
		}
	}
	for range victims {
		s.metered.RecordEviction()
	}
	s.mu.Unlock()
	for _, sc := range victims {
		sc.c.Close()
	}
	return len(victims)
}

// Side returns the sending surface for the query-processing logic.
func (s *Server) Side() transport.ServerSide { return tcpServerSide{s} }

type tcpServerSide struct{ s *Server }

// Downlink implements transport.ServerSide.
func (t tcpServerSide) Downlink(to model.ObjectID, m protocol.Message) {
	s := t.s
	s.mu.Lock()
	sc, ok := s.conns[to]
	s.metered.RecordSend(metrics.Downlink, m.Kind(), protocol.EncodedSize(m))
	if !ok {
		s.metered.RecordDrop(metrics.Downlink)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	if err := t.write(sc, m); err != nil {
		s.mu.Lock()
		s.metered.RecordDrop(metrics.Downlink)
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.metered.RecordDeliver(metrics.Downlink)
	s.mu.Unlock()
}

// Broadcast implements transport.ServerSide: fan out to every client,
// accounting one transmission per intersecting cell (the wireless cost
// model shared with the simulation).
func (t tcpServerSide) Broadcast(region geo.Circle, m protocol.Message) {
	s := t.s
	cells := len(s.geom.CellsIntersecting(region))
	if cells == 0 {
		return
	}
	s.mu.Lock()
	size := protocol.EncodedSize(m)
	for i := 0; i < cells; i++ {
		s.metered.RecordSend(metrics.Broadcast, m.Kind(), size)
	}
	targets := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		targets = append(targets, sc)
	}
	s.mu.Unlock()
	for _, sc := range targets {
		if err := t.write(sc, m); err != nil {
			s.mu.Lock()
			s.metered.RecordDrop(metrics.Broadcast)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.metered.RecordDeliver(metrics.Broadcast)
		s.mu.Unlock()
	}
}

// write sends one frame under the connection's write mutex with the
// configured write deadline. A client whose reader has stalled (full TCP
// window) fails the write at the deadline; the connection is closed so
// the read loop exits and the normal gone path purges the client —
// without the deadline one stalled client would hold wm forever and
// head-of-line-block every broadcast fan-out behind it.
func (t tcpServerSide) write(sc *serverConn, m protocol.Message) error {
	sc.wm.Lock()
	defer sc.wm.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(t.s.cfg.WriteTimeout))
	err := writeFrame(sc.c, m)
	sc.c.SetWriteDeadline(time.Time{})
	if err != nil {
		if isTimeout(err) {
			t.s.mu.Lock()
			t.s.metered.RecordEviction()
			t.s.mu.Unlock()
		}
		sc.c.Close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Client

// Client is one mobile endpoint's connection to the server. Its Uplink
// method implements transport.ClientSide; received frames are dispatched
// to the handler from a dedicated goroutine.
type Client struct {
	id model.ObjectID
	c  net.Conn
	wm sync.Mutex

	mu     sync.Mutex
	closed bool
	err    error
	done   chan struct{}
}

// Dial connects to the server at addr, performs the handshake, and
// starts dispatching received messages to h.
func Dial(addr string, id model.ObjectID, h transport.ClientHandler) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettcp: dial: %w", err)
	}
	var buf [9]byte
	copy(buf[:4], magic[:])
	buf[4] = version
	binary.LittleEndian.PutUint32(buf[5:9], uint32(id))
	if _, err := c.Write(buf[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("nettcp: handshake: %w", err)
	}
	cl := &Client{id: id, c: c, done: make(chan struct{})}
	go cl.readLoop(h)
	return cl, nil
}

func (cl *Client) readLoop(h transport.ClientHandler) {
	defer close(cl.done)
	for {
		msg, err := readFrame(cl.c)
		if err != nil {
			cl.mu.Lock()
			if !cl.closed {
				cl.err = err
			}
			cl.mu.Unlock()
			return
		}
		if h != nil {
			h.HandleServerMessage(msg)
		}
	}
}

// Uplink implements transport.ClientSide. Write errors latch into Err and
// close the connection; the protocol state machines tolerate loss, so the
// send surface stays error-free.
func (cl *Client) Uplink(m protocol.Message) {
	cl.wm.Lock()
	err := writeFrame(cl.c, m)
	cl.wm.Unlock()
	if err != nil {
		cl.mu.Lock()
		if !cl.closed && cl.err == nil {
			cl.err = err
		}
		cl.mu.Unlock()
		cl.c.Close()
	}
}

// Done is closed when the read loop exits — after the server closed the
// connection, a transport error, or Close. Reconnect loops select on it.
func (cl *Client) Done() <-chan struct{} { return cl.done }

// Err returns the first transport error observed, if any.
func (cl *Client) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.err
}

// Close shuts the connection down and waits for the read loop to exit.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
	err := cl.c.Close()
	<-cl.done
	return err
}

var _ transport.ClientSide = (*Client)(nil)
