package simnet

import (
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

func testConfig() Config {
	return Config{
		Geometry: grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 10, 10),
	}
}

// recorder collects delivered messages.
type recorder struct {
	uplinks []protocol.Message
	froms   []model.ObjectID
	msgs    []protocol.Message
}

func (r *recorder) HandleUplink(from model.ObjectID, m protocol.Message) {
	r.froms = append(r.froms, from)
	r.uplinks = append(r.uplinks, m)
}

func (r *recorder) HandleServerMessage(m protocol.Message) {
	r.msgs = append(r.msgs, m)
}

func TestUplinkDelivery(t *testing.T) {
	n := New(testConfig())
	rec := &recorder{}
	n.AttachServer(rec)
	msg := protocol.LocationReport{Object: 5, Pos: geo.Pt(1, 2), At: 0}
	n.ClientSide(5).Uplink(msg)
	if got := n.Flush(); got != 1 {
		t.Fatalf("Flush delivered %d", got)
	}
	if len(rec.uplinks) != 1 || rec.froms[0] != 5 {
		t.Fatalf("server got %v from %v", rec.uplinks, rec.froms)
	}
	c := n.Counters()
	if c.Sent(metrics.Uplink) != 1 || c.Delivered(metrics.Uplink) != 1 {
		t.Fatal("uplink counters wrong")
	}
	if c.SentBytes(metrics.Uplink) != uint64(protocol.EncodedSize(msg)) {
		t.Fatal("uplink bytes wrong")
	}
}

func TestUplinkWithoutServerIsDropped(t *testing.T) {
	n := New(testConfig())
	n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
	if got := n.Flush(); got != 0 {
		t.Fatalf("delivered %d with no server", got)
	}
	if n.Counters().Dropped(metrics.Uplink) != 1 {
		t.Fatal("drop not counted")
	}
}

func TestDownlinkDelivery(t *testing.T) {
	n := New(testConfig())
	rec := &recorder{}
	n.AttachClient(7, rec)
	n.ServerSide().Downlink(7, protocol.AnswerUpdate{Query: 1, At: 2})
	n.ServerSide().Downlink(8, protocol.AnswerUpdate{Query: 1, At: 2}) // absent client
	if got := n.Flush(); got != 1 {
		t.Fatalf("Flush delivered %d", got)
	}
	if len(rec.msgs) != 1 {
		t.Fatalf("client got %d messages", len(rec.msgs))
	}
	c := n.Counters()
	if c.Sent(metrics.Downlink) != 2 || c.Delivered(metrics.Downlink) != 1 || c.Dropped(metrics.Downlink) != 1 {
		t.Fatal("downlink counters wrong")
	}
}

func TestBroadcastAudienceAndAccounting(t *testing.T) {
	n := New(testConfig())
	pos := map[model.ObjectID]geo.Point{
		1: geo.Pt(50, 50),   // inside region cell
		2: geo.Pt(150, 50),  // neighboring cell also intersecting
		3: geo.Pt(950, 950), // far away
	}
	n.SetPositionOracle(func(id model.ObjectID) (geo.Point, bool) {
		p, ok := pos[id]
		return p, ok
	})
	recs := map[model.ObjectID]*recorder{}
	for id := range pos {
		recs[id] = &recorder{}
		n.AttachClient(id, recs[id])
	}
	// Circle centered at (100,50) r=60 covers cells (0,0) and (1,0).
	region := geo.Circle{Center: geo.Pt(100, 50), R: 60}
	wantCells := len(testConfig().Geometry.CellsIntersecting(region))
	if wantCells < 2 {
		t.Fatalf("test setup: region covers %d cells", wantCells)
	}
	n.ServerSide().Broadcast(region, protocol.MonitorCancel{Query: 9})
	if got := n.Flush(); got != 2 {
		t.Fatalf("broadcast reached %d clients, want 2", got)
	}
	if len(recs[1].msgs) != 1 || len(recs[2].msgs) != 1 || len(recs[3].msgs) != 0 {
		t.Fatal("wrong audience")
	}
	if got := n.Counters().Sent(metrics.Broadcast); got != uint64(wantCells) {
		t.Fatalf("broadcast transmissions = %d, want %d (one per cell)", got, wantCells)
	}
}

func TestBroadcastEmptyRegion(t *testing.T) {
	n := New(testConfig())
	n.SetPositionOracle(func(model.ObjectID) (geo.Point, bool) { return geo.Point{}, false })
	n.ServerSide().Broadcast(geo.Circle{Center: geo.Pt(0, 0), R: -1}, protocol.MonitorCancel{Query: 1})
	if n.Flush() != 0 {
		t.Fatal("negative-radius broadcast delivered")
	}
	if n.Counters().Sent(metrics.Broadcast) != 0 {
		t.Fatal("empty broadcast counted")
	}
}

func TestLatency(t *testing.T) {
	cfg := testConfig()
	cfg.LatencyTicks = 2
	n := New(cfg)
	rec := &recorder{}
	n.AttachServer(rec)
	n.SetNow(10)
	n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
	if n.Flush() != 0 {
		t.Fatal("message delivered before due tick")
	}
	if n.PendingCount() != 1 {
		t.Fatal("message lost from queue")
	}
	n.SetNow(11)
	if n.Flush() != 0 {
		t.Fatal("delivered one tick early")
	}
	n.SetNow(12)
	if n.Flush() != 1 {
		t.Fatal("not delivered at due tick")
	}
}

// cascadeServer responds to each uplink with a downlink, which the client
// consumes silently: a two-round cascade Flush must fully drain.
type cascadeServer struct {
	side transport.ServerSide
	n    int
}

func (s *cascadeServer) HandleUplink(from model.ObjectID, m protocol.Message) {
	s.n++
	s.side.Downlink(from, protocol.AnswerUpdate{Query: 1})
}

func TestFlushDrainsHandlerCascades(t *testing.T) {
	n := New(testConfig())
	srv := &cascadeServer{side: n.ServerSide()}
	n.AttachServer(srv)
	rec := &recorder{}
	n.AttachClient(3, rec)
	n.ClientSide(3).Uplink(protocol.QueryDeregister{Query: 1})
	delivered := n.Flush()
	if delivered != 2 {
		t.Fatalf("Flush delivered %d, want 2 (uplink + response)", delivered)
	}
	if len(rec.msgs) != 1 {
		t.Fatal("client never saw the cascaded downlink")
	}
	if n.PendingCount() != 0 {
		t.Fatal("queue not drained")
	}
}

// livelockServer responds to every downlink-triggering uplink forever via
// a client that re-uplinks, to verify the cascade guard trips.
type pingClient struct {
	side transport.ClientSide
}

func (c *pingClient) HandleServerMessage(m protocol.Message) {
	c.side.Uplink(protocol.QueryDeregister{Query: 1})
}

func TestFlushPanicsOnLivelock(t *testing.T) {
	n := New(testConfig())
	srv := &cascadeServer{side: n.ServerSide()}
	n.AttachServer(srv)
	pc := &pingClient{side: n.ClientSide(4)}
	n.AttachClient(4, pc)
	n.ClientSide(4).Uplink(protocol.QueryDeregister{Query: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic")
		}
	}()
	n.Flush()
}

func TestLossIsAppliedAndCounted(t *testing.T) {
	cfg := testConfig()
	cfg.UplinkLoss = 0.5
	cfg.Seed = 1
	n := New(cfg)
	rec := &recorder{}
	n.AttachServer(rec)
	const total = 1000
	for i := 0; i < total; i++ {
		n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
	}
	delivered := n.Flush()
	c := n.Counters()
	if delivered+int(c.Dropped(metrics.Uplink)) != total {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, c.Dropped(metrics.Uplink), total)
	}
	if delivered < total/4 || delivered > 3*total/4 {
		t.Fatalf("implausible delivery count %d for 50%% loss", delivered)
	}
	// Determinism: same seed gives same outcome.
	n2 := New(cfg)
	n2.AttachServer(&recorder{})
	for i := 0; i < total; i++ {
		n2.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
	}
	if d2 := n2.Flush(); d2 != delivered {
		t.Fatalf("same seed delivered %d vs %d", d2, delivered)
	}
}

func TestDetachClient(t *testing.T) {
	n := New(testConfig())
	rec := &recorder{}
	n.AttachClient(1, rec)
	n.DetachClient(1)
	n.DetachClient(1) // idempotent
	n.ServerSide().Downlink(1, protocol.QueryDeregister{Query: 1})
	if n.Flush() != 0 {
		t.Fatal("delivered to detached client")
	}
}

func TestConfigValidationPanics(t *testing.T) {
	bad := []Config{
		{Geometry: testConfig().Geometry, LatencyTicks: -1},
		{Geometry: testConfig().Geometry, UplinkLoss: 1.0},
		{Geometry: testConfig().Geometry, DownlinkLoss: -0.1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHandlerFuncAdapters(t *testing.T) {
	n := New(testConfig())
	var gotFrom model.ObjectID
	n.AttachServer(transport.ServerHandlerFunc(func(from model.ObjectID, m protocol.Message) {
		gotFrom = from
	}))
	var clientGot protocol.Message
	n.AttachClient(2, transport.ClientHandlerFunc(func(m protocol.Message) {
		clientGot = m
	}))
	n.ClientSide(2).Uplink(protocol.QueryDeregister{Query: 3})
	n.ServerSide().Downlink(2, protocol.MonitorCancel{Query: 3})
	n.Flush()
	if gotFrom != 2 {
		t.Fatal("ServerHandlerFunc not invoked")
	}
	if _, ok := clientGot.(protocol.MonitorCancel); !ok {
		t.Fatal("ClientHandlerFunc not invoked")
	}
}
