package simnet

import (
	"fmt"
	"math/rand"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// The batched-broadcast equivalence invariant: handing a tick's
// broadcasts to BroadcastBatch must be indistinguishable on the wire
// from the per-item Broadcast loop — identical per-client delivery
// sequences, counters, and consumption of both loss generators — under
// random positions, churn, down clients, plain loss, and burst loss.
// Jitter and duplication are deliberately excluded: a batch shares one
// enqueue-time fault draw where the loop draws per item (see
// BroadcastBatch), which is exactly why the shard property tests scope
// them out too.
func TestBroadcastBatchMatchesSequential(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{
				Geometry:      grid.NewGeometry(world, 16, 16),
				LatencyTicks:  1,
				BroadcastLoss: 0.2,
				Seed:          seed,
				Faults: FaultConfig{
					BroadcastGE: BurstLoss(0.15, 3),
				},
			}
			script := rand.New(rand.NewSource(seed * 104729))
			randPt := func() geo.Point {
				return geo.Pt(script.Float64()*1000, script.Float64()*1000)
			}

			a := newFanoutWorld(cfg, false) // batched sends
			b := newFanoutWorld(cfg, false) // sequential sends
			batcher := a.net.ServerSide().(transport.BatchServerSide)
			nextID := model.ObjectID(1)
			for i := 0; i < 60; i++ {
				p := randPt()
				a.attach(nextID, p)
				b.attach(nextID, p)
				nextID++
			}

			var items []transport.BroadcastItem
			for tick := model.Tick(1); tick <= 50; tick++ {
				for id := range a.pos {
					if script.Intn(2) == 0 {
						p := randPt()
						a.pos[id] = p
						b.pos[id] = p
					}
				}
				if script.Intn(4) == 0 {
					p := randPt()
					a.attach(nextID, p)
					b.attach(nextID, p)
					nextID++
				}
				if script.Intn(3) == 0 {
					id := model.ObjectID(script.Intn(int(nextID)) + 1)
					down := script.Intn(2) == 0
					a.net.SetClientDown(id, down)
					b.net.SetClientDown(id, down)
				}
				// One batch of 0–4 broadcasts with varied, overlapping
				// coverage, including degenerate regions covering no cells.
				items = items[:0]
				for j := script.Intn(5); j > 0; j-- {
					r := script.Float64()*300 - 10
					c := geo.Circle{Center: randPt(), R: r}
					tag := protocol.AnswerUpdate{Query: model.QueryID(tick*100 + model.Tick(j))}
					items = append(items, transport.BroadcastItem{Region: c, Msg: tag})
				}
				batcher.BroadcastBatch(items)
				for _, it := range items {
					b.net.ServerSide().Broadcast(it.Region, it.Msg)
				}
				a.net.SetNow(tick)
				b.net.SetNow(tick)
				if da, db := a.net.Flush(), b.net.Flush(); da != db {
					t.Fatalf("tick %d: delivered %d (batched) vs %d (sequential)", tick, da, db)
				}
			}
			a.net.SetNow(60)
			b.net.SetNow(60)
			a.net.Flush()
			b.net.Flush()

			ca, cb := a.net.Counters(), b.net.Counters()
			for _, dir := range metrics.Directions() {
				if ca.Sent(dir) != cb.Sent(dir) || ca.SentBytes(dir) != cb.SentBytes(dir) ||
					ca.Delivered(dir) != cb.Delivered(dir) || ca.Dropped(dir) != cb.Dropped(dir) {
					t.Errorf("dir %v: counters differ: sent %d/%d bytes %d/%d delivered %d/%d dropped %d/%d",
						dir, ca.Sent(dir), cb.Sent(dir), ca.SentBytes(dir), cb.SentBytes(dir),
						ca.Delivered(dir), cb.Delivered(dir), ca.Dropped(dir), cb.Dropped(dir))
				}
			}
			for id, ra := range a.clients {
				rb := b.clients[id]
				if len(ra.seen) != len(rb.seen) {
					t.Fatalf("client %d: heard %d broadcasts (batched) vs %d (sequential)", id, len(ra.seen), len(rb.seen))
				}
				for i := range ra.seen {
					if ra.seen[i] != rb.seen[i] {
						t.Fatalf("client %d: delivery %d is %d (batched) vs %d (sequential)", id, i, ra.seen[i], rb.seen[i])
					}
				}
			}
			ba, fa := a.net.RNGBurn()
			bb, fb := b.net.RNGBurn()
			if ba != bb {
				t.Error("base loss RNG streams diverged")
			}
			if fa != fb {
				t.Error("fault RNG streams diverged")
			}
		})
	}
}

// The merged gather must also agree with the linear reference fan-out
// when the batch entry delivers on a linear-fanout network.
func TestBroadcastBatchLinearReference(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	cfg := Config{
		Geometry:      grid.NewGeometry(world, 16, 16),
		BroadcastLoss: 0.1,
		Seed:          7,
	}
	script := rand.New(rand.NewSource(42))
	a := newFanoutWorld(cfg, false)
	b := newFanoutWorld(cfg, true)
	for id := model.ObjectID(1); id <= 80; id++ {
		p := geo.Pt(script.Float64()*1000, script.Float64()*1000)
		a.attach(id, p)
		b.attach(id, p)
	}
	for tick := model.Tick(1); tick <= 20; tick++ {
		items := []transport.BroadcastItem{
			{Region: geo.Circle{Center: geo.Pt(script.Float64()*1000, script.Float64()*1000), R: 200},
				Msg: protocol.AnswerUpdate{Query: model.QueryID(2 * tick)}},
			{Region: geo.Circle{Center: geo.Pt(script.Float64()*1000, script.Float64()*1000), R: 350},
				Msg: protocol.AnswerUpdate{Query: model.QueryID(2*tick + 1)}},
		}
		a.net.ServerSide().(transport.BatchServerSide).BroadcastBatch(items)
		b.net.ServerSide().(transport.BatchServerSide).BroadcastBatch(items)
		a.net.SetNow(tick)
		b.net.SetNow(tick)
		a.net.Flush()
		b.net.Flush()
	}
	for id, ra := range a.clients {
		rb := b.clients[id]
		if len(ra.seen) != len(rb.seen) {
			t.Fatalf("client %d: heard %d (indexed) vs %d (linear)", id, len(ra.seen), len(rb.seen))
		}
		for i := range ra.seen {
			if ra.seen[i] != rb.seen[i] {
				t.Fatalf("client %d: delivery %d differs", id, i)
			}
		}
	}
	ba, fa := a.net.RNGBurn()
	bb, fb := b.net.RNGBurn()
	if ba != bb || fa != fb {
		t.Error("RNG streams diverged between indexed-batch and linear-batch paths")
	}
}
