package simnet

import (
	"sort"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// The Gilbert–Elliott channel's long-run loss fraction must match the
// rate BurstLoss was solved for, losses must actually cluster into
// bursts, and the process must be deterministic under a fixed seed.
func TestBurstLossRateBurstinessAndDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		cfg := testConfig()
		cfg.Seed = seed
		cfg.Faults = FaultConfig{UplinkGE: BurstLoss(0.3, 8)}
		n := New(cfg)
		n.AttachServer(&recorder{})
		const total = 20000
		outcomes := make([]bool, total) // true = dropped
		for i := 0; i < total; i++ {
			n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
			outcomes[i] = n.Flush() == 0
		}
		c := n.Counters()
		if c.Sent(metrics.Uplink) != c.Delivered(metrics.Uplink)+c.Dropped(metrics.Uplink) {
			t.Fatal("conservation violated under burst loss")
		}
		return outcomes
	}

	out := run(7)
	dropped := 0
	for _, d := range out {
		if d {
			dropped++
		}
	}
	rate := float64(dropped) / float64(len(out))
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("stationary loss rate %.3f, want ≈0.30", rate)
	}

	// Burstiness: mean run length of consecutive drops should be near the
	// configured mean burst length (8), far above the ≈1.43 an independent
	// 30% loss would produce.
	runs, runLen := 0, 0
	var total int
	for _, d := range out {
		if d {
			runLen++
		} else if runLen > 0 {
			runs++
			total += runLen
			runLen = 0
		}
	}
	if runLen > 0 {
		runs++
		total += runLen
	}
	mean := float64(total) / float64(runs)
	if mean < 4 {
		t.Errorf("mean drop-burst length %.2f; losses are not bursty", mean)
	}

	// Determinism: identical seed, identical loss pattern.
	out2 := run(7)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("burst loss not deterministic at message %d", i)
		}
	}
}

// Per-message jitter must reorder messages across ticks (breaking FIFO)
// while keeping every delivery within [latency, latency+jitter] and
// losing nothing.
func TestJitterReordersWithoutLoss(t *testing.T) {
	cfg := testConfig()
	cfg.LatencyTicks = 1
	cfg.Seed = 3
	cfg.Faults = FaultConfig{JitterTicks: 3}
	n := New(cfg)
	rec := &recorder{}
	n.AttachClient(9, rec)

	const total = 50
	n.SetNow(1)
	for i := 0; i < total; i++ {
		n.ServerSide().Downlink(9, protocol.AnswerUpdate{Query: 1, Seq: uint32(i), At: 1})
	}
	if n.Flush() != 0 {
		t.Fatal("delivered before the base latency elapsed")
	}
	for tick := model.Tick(2); tick <= 5; tick++ {
		n.SetNow(tick)
		n.Flush()
	}
	if len(rec.msgs) != total {
		t.Fatalf("jitter lost messages: %d/%d delivered", len(rec.msgs), total)
	}
	order := make([]int, total)
	for i, m := range rec.msgs {
		order[i] = int(m.(protocol.AnswerUpdate).Seq)
	}
	if sort.IntsAreSorted(order) {
		t.Fatal("jitter preserved FIFO order over 50 messages")
	}
	seen := make(map[int]bool, total)
	for _, s := range order {
		if seen[s] {
			t.Fatalf("message %d delivered twice without a duplication fault", s)
		}
		seen[s] = true
	}
}

// Duplication enqueues uncounted extra copies; conservation becomes
// sent + duplicated == delivered + dropped.
func TestDuplicationConservation(t *testing.T) {
	cfg := testConfig()
	cfg.UplinkLoss = 0.2
	cfg.Seed = 11
	cfg.Faults = FaultConfig{DuplicateProb: 0.3, UplinkGE: BurstLoss(0.1, 4)}
	n := New(cfg)
	n.AttachServer(&recorder{})
	const total = 5000
	for i := 0; i < total; i++ {
		n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
	}
	n.Flush()
	c := n.Counters()
	if c.Sent(metrics.Uplink) != total {
		t.Fatalf("duplicated copies were counted as sends: %d", c.Sent(metrics.Uplink))
	}
	dups := n.Duplicated(metrics.Uplink)
	if dups == 0 {
		t.Fatal("duplication fault enabled but nothing duplicated")
	}
	if float64(dups) < 0.2*total || float64(dups) > 0.4*total {
		t.Errorf("duplicated %d of %d, want ≈30%%", dups, total)
	}
	if c.Sent(metrics.Uplink)+dups != c.Delivered(metrics.Uplink)+c.Dropped(metrics.Uplink) {
		t.Fatalf("sent %d + duplicated %d != delivered %d + dropped %d",
			c.Sent(metrics.Uplink), dups, c.Delivered(metrics.Uplink), c.Dropped(metrics.Uplink))
	}
}

// A down client neither sends nor receives: its traffic is dropped and
// counted, and bringing it back up restores delivery with no re-attach.
func TestClientDownChurn(t *testing.T) {
	n := New(testConfig())
	srv := &recorder{}
	rec := &recorder{}
	n.AttachServer(srv)
	n.AttachClient(4, rec)
	n.SetPositionOracle(func(model.ObjectID) (geo.Point, bool) { return geo.Pt(50, 50), true })

	n.SetClientDown(4, true)
	n.ClientSide(4).Uplink(protocol.QueryDeregister{Query: 1})
	n.ServerSide().Downlink(4, protocol.AnswerUpdate{Query: 1})
	n.ServerSide().Broadcast(geo.Circle{Center: geo.Pt(50, 50), R: 10}, protocol.MonitorCancel{Query: 1})
	if n.Flush() != 0 {
		t.Fatal("down client exchanged traffic")
	}
	c := n.Counters()
	if c.Dropped(metrics.Uplink) != 1 || c.Dropped(metrics.Downlink) != 1 || c.Dropped(metrics.Broadcast) != 1 {
		t.Fatalf("down-client drops not counted: up=%d down=%d bc=%d",
			c.Dropped(metrics.Uplink), c.Dropped(metrics.Downlink), c.Dropped(metrics.Broadcast))
	}

	n.SetClientDown(4, false)
	n.ClientSide(4).Uplink(protocol.QueryDeregister{Query: 1})
	n.ServerSide().Downlink(4, protocol.AnswerUpdate{Query: 1})
	if n.Flush() != 2 {
		t.Fatal("revived client still cut off")
	}
	if len(srv.uplinks) != 1 || len(rec.msgs) != 1 {
		t.Fatal("revived client's traffic not delivered")
	}
}

// SetFaults mid-run: faults can be switched on and cleared between
// flushes, modeling a chaos phase inside one deterministic run.
func TestSetFaultsMidRun(t *testing.T) {
	n := New(testConfig())
	n.AttachServer(&recorder{})
	send := func() bool {
		n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
		return n.Flush() == 1
	}
	if !send() {
		t.Fatal("clean network dropped a message")
	}
	// good state never loses and always transitions to bad, which always
	// loses and (almost) never recovers: deterministic after one attempt.
	n.SetFaults(FaultConfig{UplinkGE: GEChannel{PGoodBad: 1, PBadGood: 1e-12, LossBad: 1}})
	if !send() {
		t.Fatal("first attempt starts in the good state and must deliver")
	}
	for i := 0; i < 5; i++ {
		if send() {
			t.Fatal("bad state delivered")
		}
	}
	n.SetFaults(FaultConfig{})
	if !send() {
		t.Fatal("clearing faults did not restore delivery")
	}
}

// Regression: a handler that detaches another client during a broadcast
// fan-out must not crash the delivery loop; the detached client's
// transmission is a drop.
func TestDetachFromInsideBroadcastHandler(t *testing.T) {
	n := New(testConfig())
	n.SetPositionOracle(func(model.ObjectID) (geo.Point, bool) { return geo.Pt(50, 50), true })
	other := &recorder{}
	// Client 1 is visited first (ids are fanned out in sorted order) and
	// detaches client 2 from inside its handler.
	n.AttachClient(1, transport.ClientHandlerFunc(func(protocol.Message) {
		n.DetachClient(2)
	}))
	n.AttachClient(2, other)

	delivered := func() int {
		n.ServerSide().Broadcast(geo.Circle{Center: geo.Pt(50, 50), R: 10}, protocol.MonitorCancel{Query: 1})
		return n.Flush()
	}()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (client 2 detached mid-fanout)", delivered)
	}
	if len(other.msgs) != 0 {
		t.Fatal("detached client still received the broadcast")
	}
	if n.Counters().Dropped(metrics.Broadcast) != 1 {
		t.Fatalf("mid-fanout detach not counted as a drop: %d", n.Counters().Dropped(metrics.Broadcast))
	}

	// Self-detach during fan-out is equally safe.
	n2 := New(testConfig())
	n2.SetPositionOracle(func(model.ObjectID) (geo.Point, bool) { return geo.Pt(50, 50), true })
	n2.AttachClient(3, transport.ClientHandlerFunc(func(protocol.Message) {
		n2.DetachClient(3)
	}))
	n2.ServerSide().Broadcast(geo.Circle{Center: geo.Pt(50, 50), R: 10}, protocol.MonitorCancel{Query: 1})
	if got := n2.Flush(); got != 1 {
		t.Fatalf("self-detaching client: delivered %d, want 1", got)
	}
}

// Invalid fault matrices are refused loudly at construction (and via
// SetFaults), and the BurstLoss constructor rejects unusable parameters.
func TestFaultConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	geom := testConfig().Geometry
	mustPanic("probability > 1", func() {
		New(Config{Geometry: geom, Faults: FaultConfig{UplinkGE: GEChannel{PGoodBad: 1.5, PBadGood: 1}}})
	})
	mustPanic("absorbing bad state", func() {
		New(Config{Geometry: geom, Faults: FaultConfig{DownlinkGE: GEChannel{PGoodBad: 0.1, LossBad: 1}}})
	})
	mustPanic("negative jitter", func() {
		New(Config{Geometry: geom, Faults: FaultConfig{JitterTicks: -1}})
	})
	mustPanic("duplicate prob 1", func() {
		New(Config{Geometry: geom, Faults: FaultConfig{DuplicateProb: 1}})
	})
	mustPanic("SetFaults validates too", func() {
		New(Config{Geometry: geom}).SetFaults(FaultConfig{DuplicateProb: -0.1})
	})
	mustPanic("burst rate 1", func() { BurstLoss(1, 4) })
	mustPanic("burst length < 1", func() { BurstLoss(0.3, 0.5) })
	if BurstLoss(0, 4).enabled() {
		t.Error("zero-rate burst channel should be disabled")
	}
	if !BurstLoss(0.3, 4).enabled() {
		t.Error("nonzero-rate burst channel should be enabled")
	}
}

// The fault generator is separate from the base loss generator: enabling
// a fault on one direction must not perturb the seeded loss pattern on
// another.
func TestFaultsDoNotPerturbBaseLossStream(t *testing.T) {
	outcomes := func(faults FaultConfig) []bool {
		cfg := testConfig()
		cfg.UplinkLoss = 0.3
		cfg.Seed = 5
		cfg.Faults = faults
		n := New(cfg)
		n.AttachServer(&recorder{})
		out := make([]bool, 2000)
		for i := range out {
			n.ClientSide(1).Uplink(protocol.QueryDeregister{Query: 1})
			out[i] = n.Flush() == 1
		}
		return out
	}
	clean := outcomes(FaultConfig{})
	// Downlink-only faults draw from the fault generator; the uplink loss
	// pattern must be bit-identical.
	faulted := outcomes(FaultConfig{DownlinkGE: BurstLoss(0.5, 4), JitterTicks: 0})
	for i := range clean {
		if clean[i] != faulted[i] {
			t.Fatalf("base loss stream perturbed at message %d", i)
		}
	}
}
