// Package simnet is the in-memory wireless network the experiments run
// on. It implements the transport interfaces with exact message metering:
// every uplink, downlink, and per-cell broadcast transmission is counted
// and sized with the real wire codec, so simulated traffic equals what the
// TCP deployment would send.
//
// Semantics:
//
//   - Time is the simulation tick; messages sent at tick t become
//     deliverable at t + LatencyTicks (0 = same tick).
//   - Flush delivers all due messages in FIFO order, including messages
//     enqueued by handlers during the flush, until the network is
//     quiescent. The protocol state machines guarantee quiescence; a
//     round limit turns a violation into a loud failure.
//   - Broadcasts are cell-granular: a region broadcast is accounted as
//     one transmission per intersecting grid cell, and is heard by every
//     client whose current position lies in one of those cells.
//   - Loss is independent per recipient with configurable probability per
//     direction, from a seeded generator: runs are reproducible.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Config parameterizes the network.
type Config struct {
	// Geometry is the broadcast cell layout (shared with the server's
	// index in practice, but only the layout is shared).
	Geometry grid.Geometry
	// LatencyTicks delays delivery by this many ticks. 0 means messages
	// sent during a tick are delivered by that tick's Flush.
	LatencyTicks int
	// Loss probabilities per direction, in [0, 1).
	UplinkLoss    float64
	DownlinkLoss  float64
	BroadcastLoss float64
	// Seed drives the loss process.
	Seed int64
}

type queued struct {
	due    model.Tick
	dir    metrics.Direction
	from   model.ObjectID // uplink sender
	to     model.ObjectID // downlink recipient
	region geo.Circle     // broadcast coverage
	msg    protocol.Message
}

// Network is the simulated medium. It is not safe for concurrent use; the
// simulation engine drives it from one goroutine.
type Network struct {
	cfg      Config
	counters metrics.Counters
	rng      *rand.Rand
	now      model.Tick

	server  transport.ServerHandler
	clients map[model.ObjectID]transport.ClientHandler
	ids     []model.ObjectID // sorted client ids, for deterministic fan-out
	idsDirt bool

	positions func(model.ObjectID) (geo.Point, bool)

	queue []queued
}

// New returns a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LatencyTicks < 0 {
		panic("simnet: negative latency")
	}
	for _, p := range []float64{cfg.UplinkLoss, cfg.DownlinkLoss, cfg.BroadcastLoss} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("simnet: loss probability %v outside [0,1)", p))
		}
	}
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		clients: make(map[model.ObjectID]transport.ClientHandler),
	}
}

// Counters returns the live traffic counters.
func (n *Network) Counters() *metrics.Counters { return &n.counters }

// AttachServer installs the server-side uplink handler.
func (n *Network) AttachServer(h transport.ServerHandler) { n.server = h }

// AttachClient registers a client endpoint. Re-attaching an id replaces
// its handler.
func (n *Network) AttachClient(id model.ObjectID, h transport.ClientHandler) {
	if _, exists := n.clients[id]; !exists {
		n.idsDirt = true
	}
	n.clients[id] = h
}

// DetachClient removes a client endpoint; in-flight messages to it will be
// dropped (and counted as such).
func (n *Network) DetachClient(id model.ObjectID) {
	if _, exists := n.clients[id]; exists {
		delete(n.clients, id)
		n.idsDirt = true
	}
}

// SetPositionOracle installs the function the network uses to resolve
// broadcast recipients. The oracle must reflect current client positions
// at Flush time.
func (n *Network) SetPositionOracle(fn func(model.ObjectID) (geo.Point, bool)) {
	n.positions = fn
}

// SetNow advances the network clock. Flush delivers messages due at or
// before this tick.
func (n *Network) SetNow(t model.Tick) { n.now = t }

// Now returns the network clock.
func (n *Network) Now() model.Tick { return n.now }

// ServerSide returns the sending surface for the server.
func (n *Network) ServerSide() transport.ServerSide { return serverSide{n} }

// ClientSide returns the sending surface for client id.
func (n *Network) ClientSide(id model.ObjectID) transport.ClientSide {
	return clientSide{n, id}
}

type serverSide struct{ n *Network }

func (s serverSide) Downlink(to model.ObjectID, m protocol.Message) {
	n := s.n
	n.counters.RecordSend(metrics.Downlink, m.Kind(), protocol.EncodedSize(m))
	n.queue = append(n.queue, queued{
		due: n.now + model.Tick(n.cfg.LatencyTicks),
		dir: metrics.Downlink, to: to, msg: m,
	})
}

func (s serverSide) Broadcast(region geo.Circle, m protocol.Message) {
	n := s.n
	cells := n.cfg.Geometry.CellsIntersecting(region)
	size := protocol.EncodedSize(m)
	// One cell-level transmission per covered cell.
	for range cells {
		n.counters.RecordSend(metrics.Broadcast, m.Kind(), size)
	}
	if len(cells) == 0 {
		return
	}
	n.queue = append(n.queue, queued{
		due: n.now + model.Tick(n.cfg.LatencyTicks),
		dir: metrics.Broadcast, region: region, msg: m,
	})
}

type clientSide struct {
	n  *Network
	id model.ObjectID
}

func (c clientSide) Uplink(m protocol.Message) {
	n := c.n
	n.counters.RecordSend(metrics.Uplink, m.Kind(), protocol.EncodedSize(m))
	n.queue = append(n.queue, queued{
		due: n.now + model.Tick(n.cfg.LatencyTicks),
		dir: metrics.Uplink, from: c.id, msg: m,
	})
}

// maxFlushRounds bounds handler-triggered cascades within one Flush. A
// correct protocol quiesces in a handful of rounds; hitting the limit is a
// protocol bug and panics loudly rather than livelocking the experiment.
const maxFlushRounds = 64

// Flush delivers every due message, including messages enqueued by
// handlers during this flush that are also due, and returns the number of
// deliveries performed (excluding drops).
func (n *Network) Flush() int {
	delivered := 0
	for round := 0; ; round++ {
		if round == maxFlushRounds {
			panic("simnet: message cascade did not quiesce; protocol livelock")
		}
		// Partition the queue into due-now and later.
		var due []queued
		rest := n.queue[:0]
		for _, q := range n.queue {
			if q.due <= n.now {
				due = append(due, q)
			} else {
				rest = append(rest, q)
			}
		}
		n.queue = rest
		if len(due) == 0 {
			return delivered
		}
		for _, q := range due {
			delivered += n.deliver(q)
		}
	}
}

// PendingCount returns the number of queued (not yet delivered) entries;
// broadcasts count once regardless of audience size.
func (n *Network) PendingCount() int { return len(n.queue) }

func (n *Network) deliver(q queued) int {
	switch q.dir {
	case metrics.Uplink:
		if n.server == nil || n.lose(n.cfg.UplinkLoss) {
			n.counters.RecordDrop(metrics.Uplink)
			return 0
		}
		n.counters.RecordDeliver(metrics.Uplink)
		n.server.HandleUplink(q.from, q.msg)
		return 1
	case metrics.Downlink:
		h, ok := n.clients[q.to]
		if !ok || n.lose(n.cfg.DownlinkLoss) {
			n.counters.RecordDrop(metrics.Downlink)
			return 0
		}
		n.counters.RecordDeliver(metrics.Downlink)
		h.HandleServerMessage(q.msg)
		return 1
	case metrics.Broadcast:
		return n.deliverBroadcast(q)
	default:
		panic("simnet: unknown direction")
	}
}

func (n *Network) deliverBroadcast(q queued) int {
	if n.positions == nil {
		panic("simnet: broadcast without a position oracle")
	}
	cells := n.cfg.Geometry.CellsIntersecting(q.region)
	inCell := make(map[grid.Cell]bool, len(cells))
	for _, c := range cells {
		inCell[c] = true
	}
	delivered := 0
	for _, id := range n.sortedIDs() {
		pos, ok := n.positions(id)
		if !ok || !inCell[n.cfg.Geometry.CellOf(pos)] {
			continue
		}
		if n.lose(n.cfg.BroadcastLoss) {
			n.counters.RecordDrop(metrics.Broadcast)
			continue
		}
		n.counters.RecordDeliver(metrics.Broadcast)
		n.clients[id].HandleServerMessage(q.msg)
		delivered++
	}
	return delivered
}

func (n *Network) lose(p float64) bool {
	return p > 0 && n.rng.Float64() < p
}

func (n *Network) sortedIDs() []model.ObjectID {
	if n.idsDirt {
		n.ids = n.ids[:0]
		for id := range n.clients {
			n.ids = append(n.ids, id)
		}
		sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
		n.idsDirt = false
	}
	return n.ids
}
