// Package simnet is the in-memory wireless network the experiments run
// on. It implements the transport interfaces with exact message metering:
// every uplink, downlink, and per-cell broadcast transmission is counted
// and sized with the real wire codec, so simulated traffic equals what the
// TCP deployment would send.
//
// Semantics:
//
//   - Time is the simulation tick; messages sent at tick t become
//     deliverable at t + LatencyTicks (0 = same tick).
//   - Flush delivers all due messages in FIFO order, including messages
//     enqueued by handlers during the flush, until the network is
//     quiescent. The protocol state machines guarantee quiescence; a
//     round limit turns a violation into a loud failure.
//   - Broadcasts are cell-granular: a region broadcast is accounted as
//     one transmission per intersecting grid cell, and is heard by every
//     client whose current position lies in one of those cells.
//   - Loss is independent per recipient with configurable probability per
//     direction, from a seeded generator: runs are reproducible.
//   - Faults (optional) compose on top of the independent loss: burst loss
//     from a Gilbert–Elliott channel per direction, per-message latency
//     jitter (which breaks FIFO ordering across ticks), message
//     duplication, and client down/up churn. All fault processes draw from
//     a second seeded generator, so a zero FaultConfig leaves the base
//     loss stream — and therefore every pre-existing experiment —
//     bit-for-bit unchanged.
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Config parameterizes the network.
type Config struct {
	// Geometry is the broadcast cell layout (shared with the server's
	// index in practice, but only the layout is shared).
	Geometry grid.Geometry
	// LatencyTicks delays delivery by this many ticks. 0 means messages
	// sent during a tick are delivered by that tick's Flush.
	LatencyTicks int
	// Loss probabilities per direction, in [0, 1).
	UplinkLoss    float64
	DownlinkLoss  float64
	BroadcastLoss float64
	// Seed drives the loss process.
	Seed int64
	// Faults composes the optional fault-injection matrix. The zero value
	// disables every fault and leaves the base loss stream untouched.
	Faults FaultConfig
}

// GEChannel is a two-state Gilbert–Elliott burst-loss channel. The chain
// advances once per delivery attempt on its direction: the attempt is
// lost with the current state's loss probability, then the state
// transitions. The zero value is a disabled channel.
type GEChannel struct {
	// PGoodBad is the per-attempt probability of moving good → bad.
	PGoodBad float64
	// PBadGood is the per-attempt probability of moving bad → good; its
	// reciprocal is the mean burst length in attempts.
	PBadGood float64
	// LossGood and LossBad are the per-attempt loss probabilities in each
	// state (typically LossGood ≈ 0, LossBad ≈ 1).
	LossGood float64
	LossBad  float64
}

func (g GEChannel) enabled() bool { return g != GEChannel{} }

func (g GEChannel) validate(name string) {
	for _, p := range []float64{g.PGoodBad, g.PBadGood, g.LossGood, g.LossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("simnet: %s GE probability %v outside [0,1]", name, p))
		}
	}
	if g.enabled() && g.PBadGood == 0 && g.PGoodBad > 0 {
		panic(fmt.Sprintf("simnet: %s GE channel can enter the bad state but never leave it", name))
	}
}

// BurstLoss returns a Gilbert–Elliott channel with the given stationary
// loss rate (in [0,1)) and mean burst length (in delivery attempts,
// >= 1): the bad state always loses, the good state never does, and the
// transition probabilities are solved so the long-run fraction of
// attempts spent bad equals rate.
func BurstLoss(rate, meanBurst float64) GEChannel {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("simnet: burst loss rate %v outside [0,1)", rate))
	}
	if meanBurst < 1 {
		panic(fmt.Sprintf("simnet: mean burst length %v < 1", meanBurst))
	}
	if rate == 0 {
		return GEChannel{}
	}
	pBG := 1 / meanBurst
	return GEChannel{
		PGoodBad: pBG * rate / (1 - rate),
		PBadGood: pBG,
		LossBad:  1,
	}
}

// FaultConfig composes the fault-injection matrix. Every process draws
// from the fault generator only when enabled, so any subset can be
// switched on without perturbing the others (or the base loss stream).
type FaultConfig struct {
	// Per-direction Gilbert–Elliott burst loss, applied on top of the
	// independent per-message loss probabilities.
	UplinkGE    GEChannel
	DownlinkGE  GEChannel
	BroadcastGE GEChannel
	// JitterTicks adds a uniform extra delay in [0, JitterTicks] ticks to
	// each queued message independently, breaking FIFO ordering.
	JitterTicks int
	// DuplicateProb enqueues a second copy of a message with this
	// probability, in [0,1). The copy jitters independently and is not
	// counted as a send; Network.Duplicated exposes the count so
	// conservation checks can account for it.
	DuplicateProb float64
}

func (f FaultConfig) validate() {
	f.UplinkGE.validate("uplink")
	f.DownlinkGE.validate("downlink")
	f.BroadcastGE.validate("broadcast")
	if f.JitterTicks < 0 {
		panic("simnet: negative jitter")
	}
	if f.DuplicateProb < 0 || f.DuplicateProb >= 1 {
		panic(fmt.Sprintf("simnet: duplicate probability %v outside [0,1)", f.DuplicateProb))
	}
}

type queued struct {
	due    model.Tick
	dir    metrics.Direction
	from   model.ObjectID // uplink sender
	to     model.ObjectID // downlink recipient
	region geo.Circle     // broadcast coverage
	msg    protocol.Message
}

// Network is the simulated medium. It is not safe for concurrent use; the
// simulation engine drives it from one goroutine.
type Network struct {
	cfg      Config
	counters metrics.Counters
	rng      *rand.Rand
	now      model.Tick

	// Fault state. frng is a second generator so fault processes never
	// perturb the base loss stream; geBad tracks the Gilbert–Elliott state
	// per direction; down marks crashed clients; dups counts duplicated
	// queue entries per direction.
	frng  *rand.Rand
	geBad [3]bool
	down  map[model.ObjectID]bool
	dups  [3]uint64

	server  transport.ServerHandler
	clients map[model.ObjectID]transport.ClientHandler
	ids     []model.ObjectID // sorted client ids, for deterministic fan-out
	idsDirt bool

	positions func(model.ObjectID) (geo.Point, bool)

	queue []queued
}

// New returns a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LatencyTicks < 0 {
		panic("simnet: negative latency")
	}
	for _, p := range []float64{cfg.UplinkLoss, cfg.DownlinkLoss, cfg.BroadcastLoss} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("simnet: loss probability %v outside [0,1)", p))
		}
	}
	cfg.Faults.validate()
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		frng:    rand.New(rand.NewSource(cfg.Seed ^ faultSeedMix)),
		down:    make(map[model.ObjectID]bool),
		clients: make(map[model.ObjectID]transport.ClientHandler),
	}
}

// faultSeedMix decorrelates the fault generator from the base loss
// generator when both derive from the same configured seed.
const faultSeedMix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64

// SetFaults replaces the fault matrix mid-run (e.g. a chaos phase that
// starts and later clears). Gilbert–Elliott channel state and the fault
// generator are preserved across calls so re-enabling resumes the same
// deterministic process.
func (n *Network) SetFaults(f FaultConfig) {
	f.validate()
	n.cfg.Faults = f
}

// SetClientDown marks a client as crashed (or back up). Messages to or
// from a down client are dropped at delivery time and counted as drops;
// the attach state is untouched, so bringing the client back up restores
// delivery without re-registration.
func (n *Network) SetClientDown(id model.ObjectID, isDown bool) {
	if isDown {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Duplicated returns how many extra copies the duplication fault enqueued
// in the given direction. Conservation under duplication is
// sent + duplicated == delivered + dropped for unicast directions.
func (n *Network) Duplicated(dir metrics.Direction) uint64 { return n.dups[dir] }

// Counters returns the live traffic counters.
func (n *Network) Counters() *metrics.Counters { return &n.counters }

// AttachServer installs the server-side uplink handler.
func (n *Network) AttachServer(h transport.ServerHandler) { n.server = h }

// AttachClient registers a client endpoint. Re-attaching an id replaces
// its handler.
func (n *Network) AttachClient(id model.ObjectID, h transport.ClientHandler) {
	if _, exists := n.clients[id]; !exists {
		n.idsDirt = true
	}
	n.clients[id] = h
}

// DetachClient removes a client endpoint; in-flight messages to it will be
// dropped (and counted as such).
func (n *Network) DetachClient(id model.ObjectID) {
	if _, exists := n.clients[id]; exists {
		delete(n.clients, id)
		n.idsDirt = true
	}
}

// SetPositionOracle installs the function the network uses to resolve
// broadcast recipients. The oracle must reflect current client positions
// at Flush time.
func (n *Network) SetPositionOracle(fn func(model.ObjectID) (geo.Point, bool)) {
	n.positions = fn
}

// SetNow advances the network clock. Flush delivers messages due at or
// before this tick.
func (n *Network) SetNow(t model.Tick) { n.now = t }

// Now returns the network clock.
func (n *Network) Now() model.Tick { return n.now }

// ServerSide returns the sending surface for the server.
func (n *Network) ServerSide() transport.ServerSide { return serverSide{n} }

// ClientSide returns the sending surface for client id.
func (n *Network) ClientSide(id model.ObjectID) transport.ClientSide {
	return clientSide{n, id}
}

type serverSide struct{ n *Network }

func (s serverSide) Downlink(to model.ObjectID, m protocol.Message) {
	n := s.n
	n.counters.RecordSend(metrics.Downlink, m.Kind(), protocol.EncodedSize(m))
	n.enqueue(queued{dir: metrics.Downlink, to: to, msg: m})
}

func (s serverSide) Broadcast(region geo.Circle, m protocol.Message) {
	n := s.n
	cells := n.cfg.Geometry.CellsIntersecting(region)
	size := protocol.EncodedSize(m)
	// One cell-level transmission per covered cell.
	for range cells {
		n.counters.RecordSend(metrics.Broadcast, m.Kind(), size)
	}
	if len(cells) == 0 {
		return
	}
	n.enqueue(queued{dir: metrics.Broadcast, region: region, msg: m})
}

type clientSide struct {
	n  *Network
	id model.ObjectID
}

func (c clientSide) Uplink(m protocol.Message) {
	n := c.n
	n.counters.RecordSend(metrics.Uplink, m.Kind(), protocol.EncodedSize(m))
	n.enqueue(queued{dir: metrics.Uplink, from: c.id, msg: m})
}

// enqueue stamps the due tick (base latency plus optional jitter) and
// appends q, plus an independently jittered copy when the duplication
// fault fires. Fault draws happen only when the respective fault is
// enabled, keeping zero-fault runs bit-identical to the pre-fault
// network.
func (n *Network) enqueue(q queued) {
	q.due = n.dueTick()
	n.queue = append(n.queue, q)
	if p := n.cfg.Faults.DuplicateProb; p > 0 && n.frng.Float64() < p {
		d := q
		d.due = n.dueTick()
		n.queue = append(n.queue, d)
		n.dups[q.dir]++
	}
}

func (n *Network) dueTick() model.Tick {
	due := n.now + model.Tick(n.cfg.LatencyTicks)
	if j := n.cfg.Faults.JitterTicks; j > 0 {
		due += model.Tick(n.frng.Intn(j + 1))
	}
	return due
}

// maxFlushRounds bounds handler-triggered cascades within one Flush. A
// correct protocol quiesces in a handful of rounds; hitting the limit is a
// protocol bug and panics loudly rather than livelocking the experiment.
const maxFlushRounds = 64

// Flush delivers every due message, including messages enqueued by
// handlers during this flush that are also due, and returns the number of
// deliveries performed (excluding drops).
func (n *Network) Flush() int {
	delivered := 0
	for round := 0; ; round++ {
		if round == maxFlushRounds {
			panic("simnet: message cascade did not quiesce; protocol livelock")
		}
		// Partition the queue into due-now and later.
		var due []queued
		rest := n.queue[:0]
		for _, q := range n.queue {
			if q.due <= n.now {
				due = append(due, q)
			} else {
				rest = append(rest, q)
			}
		}
		n.queue = rest
		if len(due) == 0 {
			return delivered
		}
		for _, q := range due {
			delivered += n.deliver(q)
		}
	}
}

// PendingCount returns the number of queued (not yet delivered) entries;
// broadcasts count once regardless of audience size.
func (n *Network) PendingCount() int { return len(n.queue) }

func (n *Network) deliver(q queued) int {
	switch q.dir {
	case metrics.Uplink:
		if n.server == nil || n.down[q.from] || n.lose(n.cfg.UplinkLoss) || n.geLose(metrics.Uplink) {
			n.counters.RecordDrop(metrics.Uplink)
			return 0
		}
		n.counters.RecordDeliver(metrics.Uplink)
		n.server.HandleUplink(q.from, q.msg)
		return 1
	case metrics.Downlink:
		h, ok := n.clients[q.to]
		if !ok || n.down[q.to] || n.lose(n.cfg.DownlinkLoss) || n.geLose(metrics.Downlink) {
			n.counters.RecordDrop(metrics.Downlink)
			return 0
		}
		n.counters.RecordDeliver(metrics.Downlink)
		h.HandleServerMessage(q.msg)
		return 1
	case metrics.Broadcast:
		return n.deliverBroadcast(q)
	default:
		panic("simnet: unknown direction")
	}
}

func (n *Network) deliverBroadcast(q queued) int {
	if n.positions == nil {
		panic("simnet: broadcast without a position oracle")
	}
	cells := n.cfg.Geometry.CellsIntersecting(q.region)
	inCell := make(map[grid.Cell]bool, len(cells))
	for _, c := range cells {
		inCell[c] = true
	}
	delivered := 0
	for _, id := range n.sortedIDs() {
		pos, posOK := n.positions(id)
		if !posOK || !inCell[n.cfg.Geometry.CellOf(pos)] {
			continue
		}
		// Re-check membership per recipient: a handler earlier in this
		// fan-out may have detached this client (sortedIDs is a snapshot —
		// DetachClient marks it dirty but the slice we range over is
		// already bound), in which case the transmission is a drop, not a
		// nil-interface call.
		h, ok := n.clients[id]
		if !ok {
			n.counters.RecordDrop(metrics.Broadcast)
			continue
		}
		if n.down[id] || n.lose(n.cfg.BroadcastLoss) || n.geLose(metrics.Broadcast) {
			n.counters.RecordDrop(metrics.Broadcast)
			continue
		}
		n.counters.RecordDeliver(metrics.Broadcast)
		h.HandleServerMessage(q.msg)
		delivered++
	}
	return delivered
}

func (n *Network) lose(p float64) bool {
	return p > 0 && n.rng.Float64() < p
}

// geLose advances the direction's Gilbert–Elliott chain one delivery
// attempt and reports whether the attempt is lost. Disabled channels
// consume no randomness.
func (n *Network) geLose(dir metrics.Direction) bool {
	var g GEChannel
	switch dir {
	case metrics.Uplink:
		g = n.cfg.Faults.UplinkGE
	case metrics.Downlink:
		g = n.cfg.Faults.DownlinkGE
	case metrics.Broadcast:
		g = n.cfg.Faults.BroadcastGE
	}
	if !g.enabled() {
		return false
	}
	p := g.LossGood
	if n.geBad[dir] {
		p = g.LossBad
	}
	lost := p > 0 && n.frng.Float64() < p
	if n.geBad[dir] {
		if g.PBadGood > 0 && n.frng.Float64() < g.PBadGood {
			n.geBad[dir] = false
		}
	} else {
		if g.PGoodBad > 0 && n.frng.Float64() < g.PGoodBad {
			n.geBad[dir] = true
		}
	}
	return lost
}

func (n *Network) sortedIDs() []model.ObjectID {
	if n.idsDirt {
		n.ids = n.ids[:0]
		for id := range n.clients {
			n.ids = append(n.ids, id)
		}
		sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
		n.idsDirt = false
	}
	return n.ids
}
