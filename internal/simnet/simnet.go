// Package simnet is the in-memory wireless network the experiments run
// on. It implements the transport interfaces with exact message metering:
// every uplink, downlink, and per-cell broadcast transmission is counted
// and sized with the real wire codec, so simulated traffic equals what the
// TCP deployment would send.
//
// Semantics:
//
//   - Time is the simulation tick; messages sent at tick t become
//     deliverable at t + LatencyTicks (0 = same tick).
//   - Flush delivers all due messages in FIFO order, including messages
//     enqueued by handlers during the flush, until the network is
//     quiescent. The protocol state machines guarantee quiescence; a
//     round limit turns a violation into a loud failure. Internally the
//     queue is a ring of per-tick buckets, so a flush round touches only
//     the messages that are actually due; without jitter, due ticks are
//     monotone in enqueue order and bucket order equals global FIFO
//     bit-for-bit. With jitter enabled, delivery runs in due-tick order
//     (FIFO within a tick) — jitter breaks FIFO by design.
//   - Broadcasts are cell-granular: a region broadcast is accounted as
//     one transmission per intersecting grid cell, and is heard by every
//     client whose current position lies in one of those cells. The
//     audience is resolved from an incrementally maintained per-cell
//     client index, so delivery cost scales with the region's population,
//     not the network's.
//   - Loss is independent per recipient with configurable probability per
//     direction, from a seeded generator: runs are reproducible.
//   - Faults (optional) compose on top of the independent loss: burst loss
//     from a Gilbert–Elliott channel per direction, per-message latency
//     jitter (which breaks FIFO ordering across ticks), message
//     duplication, and client down/up churn. All fault processes draw from
//     a second seeded generator, so a zero FaultConfig leaves the base
//     loss stream — and therefore every pre-existing experiment —
//     bit-for-bit unchanged.
package simnet

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Config parameterizes the network.
type Config struct {
	// Geometry is the broadcast cell layout (shared with the server's
	// index in practice, but only the layout is shared).
	Geometry grid.Geometry
	// LatencyTicks delays delivery by this many ticks. 0 means messages
	// sent during a tick are delivered by that tick's Flush.
	LatencyTicks int
	// Loss probabilities per direction, in [0, 1).
	UplinkLoss    float64
	DownlinkLoss  float64
	BroadcastLoss float64
	// Seed drives the loss process.
	Seed int64
	// Faults composes the optional fault-injection matrix. The zero value
	// disables every fault and leaves the base loss stream untouched.
	Faults FaultConfig
}

// GEChannel is a two-state Gilbert–Elliott burst-loss channel. The chain
// advances once per delivery attempt on its direction: the attempt is
// lost with the current state's loss probability, then the state
// transitions. The zero value is a disabled channel.
type GEChannel struct {
	// PGoodBad is the per-attempt probability of moving good → bad.
	PGoodBad float64
	// PBadGood is the per-attempt probability of moving bad → good; its
	// reciprocal is the mean burst length in attempts.
	PBadGood float64
	// LossGood and LossBad are the per-attempt loss probabilities in each
	// state (typically LossGood ≈ 0, LossBad ≈ 1).
	LossGood float64
	LossBad  float64
}

func (g GEChannel) enabled() bool { return g != GEChannel{} }

func (g GEChannel) validate(name string) {
	for _, p := range []float64{g.PGoodBad, g.PBadGood, g.LossGood, g.LossBad} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("simnet: %s GE probability %v outside [0,1]", name, p))
		}
	}
	if g.enabled() && g.PBadGood == 0 && g.PGoodBad > 0 {
		panic(fmt.Sprintf("simnet: %s GE channel can enter the bad state but never leave it", name))
	}
}

// BurstLoss returns a Gilbert–Elliott channel with the given stationary
// loss rate (in [0,1)) and mean burst length (in delivery attempts,
// >= 1): the bad state always loses, the good state never does, and the
// transition probabilities are solved so the long-run fraction of
// attempts spent bad equals rate.
func BurstLoss(rate, meanBurst float64) GEChannel {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("simnet: burst loss rate %v outside [0,1)", rate))
	}
	if meanBurst < 1 {
		panic(fmt.Sprintf("simnet: mean burst length %v < 1", meanBurst))
	}
	if rate == 0 {
		return GEChannel{}
	}
	pBG := 1 / meanBurst
	return GEChannel{
		PGoodBad: pBG * rate / (1 - rate),
		PBadGood: pBG,
		LossBad:  1,
	}
}

// FaultConfig composes the fault-injection matrix. Every process draws
// from the fault generator only when enabled, so any subset can be
// switched on without perturbing the others (or the base loss stream).
type FaultConfig struct {
	// Per-direction Gilbert–Elliott burst loss, applied on top of the
	// independent per-message loss probabilities.
	UplinkGE    GEChannel
	DownlinkGE  GEChannel
	BroadcastGE GEChannel
	// JitterTicks adds a uniform extra delay in [0, JitterTicks] ticks to
	// each queued message independently, breaking FIFO ordering.
	JitterTicks int
	// DuplicateProb enqueues a second copy of a message with this
	// probability, in [0,1). The copy jitters independently and is not
	// counted as a send; Network.Duplicated exposes the count so
	// conservation checks can account for it.
	DuplicateProb float64
}

func (f FaultConfig) validate() {
	f.UplinkGE.validate("uplink")
	f.DownlinkGE.validate("downlink")
	f.BroadcastGE.validate("broadcast")
	if f.JitterTicks < 0 {
		panic("simnet: negative jitter")
	}
	if f.DuplicateProb < 0 || f.DuplicateProb >= 1 {
		panic(fmt.Sprintf("simnet: duplicate probability %v outside [0,1)", f.DuplicateProb))
	}
}

type queued struct {
	due    model.Tick
	dir    metrics.Direction
	from   model.ObjectID // uplink sender
	to     model.ObjectID // downlink recipient
	region geo.Circle     // broadcast coverage
	// filter restricts a broadcast to the cells it accepts (nil: all
	// cells). A federated deployment gives each node a filter selecting
	// the cells it owns, so a node's broadcast only reaches its own
	// region and sibling nodes cover the rest of the circle.
	filter func(grid.Cell) bool
	msg    protocol.Message
	// batch, when non-nil, makes this entry a broadcast batch: one queue
	// entry carrying a drain's worth of region broadcasts that deliver
	// back-to-back in item order (see BroadcastBatch in batch.go). dir is
	// Broadcast and region/msg are unused.
	batch []transport.BroadcastItem
}

// cellRef records where a client currently sits in the cell index: the
// dense cell slot it occupies and its position within that slot's slice
// (for O(1) swap-with-last removal). A client the position oracle cannot
// place has located == false and sits in no cell.
type cellRef struct {
	idx     int
	slot    int
	located bool
}

// Network is the simulated medium. It is not safe for concurrent use; the
// simulation engine drives it from one goroutine.
type Network struct {
	cfg      Config
	counters metrics.Counters
	rng      *rand.Rand
	now      model.Tick

	// Fault state. frng is a second generator so fault processes never
	// perturb the base loss stream; geBad tracks the Gilbert–Elliott state
	// per direction; down marks crashed clients; dups counts duplicated
	// queue entries per direction.
	frng  *rand.Rand
	geBad [3]bool
	down  map[model.ObjectID]bool
	dups  [3]uint64

	server  transport.ServerHandler
	clients map[model.ObjectID]transport.ClientHandler
	ids     []model.ObjectID // sorted client ids, for the linear fan-out
	idsDirt bool

	positions func(model.ObjectID) (geo.Point, bool)

	// Delivery queue: a ring of per-tick buckets keyed by due tick. Every
	// pending due lies in [bucketLow, bucketHigh) and that span never
	// exceeds len(buckets) — the ring grows before two live ticks could
	// alias one slot — so a flush round touches only the buckets that are
	// actually due instead of re-partitioning the whole queue. bucketLow
	// is a lower bound (it lags after drains), which is safe: slots
	// between it and the true minimum are empty.
	buckets    [][]queued
	bucketLow  model.Tick
	bucketHigh model.Tick
	pending    int
	dueScratch []queued

	// Cell-indexed broadcast audience: cellIDs[Geometry.CellIndex(c)]
	// holds the attached clients whose last resolved position lies in
	// cell c, so a region broadcast visits only the clients of its
	// intersecting cells. The index is refreshed from the position oracle
	// at most once per Flush — lazily, when the first broadcast delivers —
	// and maintained incrementally through attach/detach. recipients is
	// the per-broadcast scratch the audience is gathered and sorted into.
	cellIDs    [][]model.ObjectID
	cellPos    map[model.ObjectID]cellRef
	indexFresh bool
	recipients []model.ObjectID

	// Memoized per-cell sorted audiences for the batched broadcast path:
	// cellSorted[i] records that cellSortCache[i] currently equals
	// cellIDs[i] sorted by id. The two index mutators (placeClient,
	// removeFromCell) clear the bit, so a valid snapshot survives across
	// flushes while the cell's membership is stable and a batch touching
	// the same cell k times sorts it once instead of k times. mergeLists
	// is the gather scratch holding the snapshots of one region's cells.
	cellSorted    []bool
	cellSortCache [][]model.ObjectID
	mergeLists    [][]model.ObjectID

	// linearFanout forces the original Θ(clients) reference fan-out. The
	// equivalence property test and the fan-out benchmark run it side by
	// side with the indexed path; both consume the loss generators
	// identically.
	linearFanout bool

	// trace, when non-nil, receives a net-level event per send, per
	// delivery, and per drop. Tracing draws no randomness and never
	// touches the loss generators, so an armed trace cannot perturb a
	// seeded run.
	trace obs.Sink
}

// New returns a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.LatencyTicks < 0 {
		panic("simnet: negative latency")
	}
	for _, p := range []float64{cfg.UplinkLoss, cfg.DownlinkLoss, cfg.BroadcastLoss} {
		if p < 0 || p >= 1 {
			panic(fmt.Sprintf("simnet: loss probability %v outside [0,1)", p))
		}
	}
	cfg.Faults.validate()
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		frng:    rand.New(rand.NewSource(cfg.Seed ^ faultSeedMix)),
		down:    make(map[model.ObjectID]bool),
		clients: make(map[model.ObjectID]transport.ClientHandler),
		buckets: make([][]queued, ringSize(cfg.LatencyTicks+cfg.Faults.JitterTicks+2)),
		cellIDs: make([][]model.ObjectID, cfg.Geometry.NumCells()),
		cellPos: make(map[model.ObjectID]cellRef),

		cellSorted:    make([]bool, cfg.Geometry.NumCells()),
		cellSortCache: make([][]model.ObjectID, cfg.Geometry.NumCells()),
	}
}

// ringSize rounds the wanted bucket count up to a power of two (masking
// replaces the modulo on the delivery hot path), with a small floor.
func ringSize(want int) int {
	size := 8
	for size < want {
		size *= 2
	}
	return size
}

// faultSeedMix decorrelates the fault generator from the base loss
// generator when both derive from the same configured seed.
const faultSeedMix = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64

// SetFaults replaces the fault matrix mid-run (e.g. a chaos phase that
// starts and later clears). Gilbert–Elliott channel state and the fault
// generator are preserved across calls so re-enabling resumes the same
// deterministic process.
func (n *Network) SetFaults(f FaultConfig) {
	f.validate()
	n.cfg.Faults = f
}

// SetClientDown marks a client as crashed (or back up). Messages to or
// from a down client are dropped at delivery time and counted as drops;
// the attach state is untouched, so bringing the client back up restores
// delivery without re-registration.
func (n *Network) SetClientDown(id model.ObjectID, isDown bool) {
	if isDown {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Duplicated returns how many extra copies the duplication fault enqueued
// in the given direction. Conservation under duplication is
// sent + duplicated == delivered + dropped for unicast directions.
func (n *Network) Duplicated(dir metrics.Direction) uint64 { return n.dups[dir] }

// Counters returns the live traffic counters.
func (n *Network) Counters() *metrics.Counters { return &n.counters }

// SetTrace installs (or, with nil, removes) the net-level event sink.
func (n *Network) SetTrace(s obs.Sink) { n.trace = s }

// emit records one net-level event; callers guard with n.trace != nil.
func (n *Network) emit(t obs.EventType, dir metrics.Direction, id model.ObjectID, k protocol.Kind) {
	n.trace.Record(obs.Event{At: n.now, Type: t, Node: -1, Dir: int8(dir), Object: id, Kind: k})
}

// AttachServer installs the server-side uplink handler.
func (n *Network) AttachServer(h transport.ServerHandler) { n.server = h }

// AttachClient registers a client endpoint. Re-attaching an id replaces
// its handler.
func (n *Network) AttachClient(id model.ObjectID, h transport.ClientHandler) {
	if _, exists := n.clients[id]; !exists {
		n.idsDirt = true
		n.cellPos[id] = cellRef{}
		if n.indexFresh {
			// Mid-flush attach: the index is live for the current Flush;
			// place the newcomer now so later broadcasts in the same flush
			// see it, exactly as the linear scan would.
			n.placeClient(id)
		}
	}
	n.clients[id] = h
}

// DetachClient removes a client endpoint; in-flight messages to it will be
// dropped (and counted as such).
func (n *Network) DetachClient(id model.ObjectID) {
	if _, exists := n.clients[id]; exists {
		delete(n.clients, id)
		n.idsDirt = true
		if ref := n.cellPos[id]; ref.located {
			n.removeFromCell(id, ref)
		}
		delete(n.cellPos, id)
	}
}

// SetPositionOracle installs the function the network uses to resolve
// broadcast recipients. The oracle must reflect current client positions
// at Flush time and must not change while a Flush is in progress: the
// network resolves each client's cell once per flush and fans broadcasts
// out from that snapshot.
func (n *Network) SetPositionOracle(fn func(model.ObjectID) (geo.Point, bool)) {
	n.positions = fn
}

// SetNow advances the network clock. Flush delivers messages due at or
// before this tick.
func (n *Network) SetNow(t model.Tick) { n.now = t }

// Now returns the network clock.
func (n *Network) Now() model.Tick { return n.now }

// ServerSide returns the sending surface for the server.
func (n *Network) ServerSide() transport.ServerSide { return serverSide{n: n} }

// RestrictedServerSide returns a server sending surface whose broadcasts
// cover only the cells the filter accepts: transmissions are metered for
// and delivered in accepted cells alone. Downlinks are unaffected. When
// several surfaces with disjoint filters partition the grid — one per
// federation node — their aggregate metering and coverage for a given
// region equal one unrestricted broadcast of it.
func (n *Network) RestrictedServerSide(filter func(grid.Cell) bool) transport.ServerSide {
	return serverSide{n: n, filter: filter}
}

// ClientSide returns the sending surface for client id.
func (n *Network) ClientSide(id model.ObjectID) transport.ClientSide {
	return clientSide{n, id}
}

type serverSide struct {
	n      *Network
	filter func(grid.Cell) bool // nil: broadcasts cover every cell
}

func (s serverSide) Downlink(to model.ObjectID, m protocol.Message) {
	n := s.n
	n.counters.RecordSend(metrics.Downlink, m.Kind(), protocol.EncodedSize(m))
	if n.trace != nil {
		n.emit(obs.EvNetSend, metrics.Downlink, to, m.Kind())
	}
	n.enqueue(queued{dir: metrics.Downlink, to: to, msg: m})
}

func (s serverSide) Broadcast(region geo.Circle, m protocol.Message) {
	n := s.n
	size := protocol.EncodedSize(m)
	cells := 0
	n.cfg.Geometry.VisitCellsIntersecting(region, func(c grid.Cell) bool {
		if s.filter == nil || s.filter(c) {
			cells++
		}
		return true
	})
	// One cell-level transmission per covered cell.
	for i := 0; i < cells; i++ {
		n.counters.RecordSend(metrics.Broadcast, m.Kind(), size)
	}
	if cells == 0 {
		return
	}
	if n.trace != nil {
		n.emit(obs.EvNetSend, metrics.Broadcast, 0, m.Kind())
	}
	n.enqueue(queued{dir: metrics.Broadcast, region: region, filter: s.filter, msg: m})
}

type clientSide struct {
	n  *Network
	id model.ObjectID
}

func (c clientSide) Uplink(m protocol.Message) {
	n := c.n
	n.counters.RecordSend(metrics.Uplink, m.Kind(), protocol.EncodedSize(m))
	if n.trace != nil {
		n.emit(obs.EvNetSend, metrics.Uplink, c.id, m.Kind())
	}
	n.enqueue(queued{dir: metrics.Uplink, from: c.id, msg: m})
}

// enqueue stamps the due tick (base latency plus optional jitter) and
// buckets q, plus an independently jittered copy when the duplication
// fault fires. Fault draws happen only when the respective fault is
// enabled, keeping zero-fault runs bit-identical to the pre-fault
// network.
func (n *Network) enqueue(q queued) {
	q.due = n.dueTick()
	n.push(q)
	if p := n.cfg.Faults.DuplicateProb; p > 0 && n.frng.Float64() < p {
		d := q
		d.due = n.dueTick()
		n.push(d)
		n.dups[q.dir]++
	}
}

func (n *Network) dueTick() model.Tick {
	due := n.now + model.Tick(n.cfg.LatencyTicks)
	if j := n.cfg.Faults.JitterTicks; j > 0 {
		due += model.Tick(n.frng.Intn(j + 1))
	}
	return due
}

// push appends q to its due tick's bucket, growing the ring first if the
// pending due span would no longer fit.
func (n *Network) push(q queued) {
	if n.pending == 0 {
		n.bucketLow, n.bucketHigh = q.due, q.due+1
	} else {
		if q.due < n.bucketLow {
			n.bucketLow = q.due
		}
		if q.due >= n.bucketHigh {
			n.bucketHigh = q.due + 1
		}
	}
	if span := int(n.bucketHigh - n.bucketLow); span > len(n.buckets) {
		n.growBuckets(span)
	}
	idx := int(q.due) & (len(n.buckets) - 1)
	n.buckets[idx] = append(n.buckets[idx], q)
	n.pending++
}

// growBuckets doubles the ring until span due ticks fit and rehomes the
// pending entries. A bucket holds exactly one due tick (the span
// invariant held before the grow), so moving each bucket wholesale
// preserves FIFO order within every tick.
func (n *Network) growBuckets(span int) {
	old := n.buckets
	n.buckets = make([][]queued, ringSize(span))
	mask := len(n.buckets) - 1
	for _, b := range old {
		if len(b) == 0 {
			continue
		}
		idx := int(b[0].due) & mask
		n.buckets[idx] = append(n.buckets[idx], b...)
	}
}

// maxFlushRounds bounds handler-triggered cascades within one Flush. A
// correct protocol quiesces in a handful of rounds; hitting the limit is a
// protocol bug and panics loudly rather than livelocking the experiment.
const maxFlushRounds = 64

// Flush delivers every due message, including messages enqueued by
// handlers during this flush that are also due, and returns the number of
// deliveries performed (excluding drops).
func (n *Network) Flush() int {
	// Client positions may have changed since the last flush; the cell
	// index is re-resolved from the oracle at most once per Flush, on the
	// first broadcast delivery (see refreshCellIndex).
	n.indexFresh = false
	delivered := 0
	for round := 0; ; round++ {
		if round == maxFlushRounds {
			panic("simnet: message cascade did not quiesce; protocol livelock")
		}
		due := n.takeDue()
		if len(due) == 0 {
			return delivered
		}
		for i := range due {
			delivered += n.deliver(due[i])
		}
	}
}

// takeDue drains every bucket due at or before now into the reusable
// scratch slice, in due-tick order (FIFO within a tick). The scan starts
// at bucketLow and stops as soon as the pending count hits zero, so it
// visits at most the live span of the ring.
func (n *Network) takeDue() []queued {
	out := n.dueScratch[:0]
	if n.pending > 0 && n.bucketLow <= n.now {
		mask := len(n.buckets) - 1
		for t := n.bucketLow; t <= n.now && n.pending > 0; t++ {
			idx := int(t) & mask
			if b := n.buckets[idx]; len(b) > 0 {
				out = append(out, b...)
				n.pending -= len(b)
				n.buckets[idx] = b[:0]
			}
		}
		n.bucketLow = n.now + 1
		if n.pending == 0 {
			n.bucketHigh = n.bucketLow
		}
	}
	n.dueScratch = out
	return out
}

// PendingCount returns the number of queued (not yet delivered) entries;
// broadcasts count once regardless of audience size.
func (n *Network) PendingCount() int { return n.pending }

func (n *Network) deliver(q queued) int {
	switch q.dir {
	case metrics.Uplink:
		if n.server == nil || n.down[q.from] || n.lose(n.cfg.UplinkLoss) || n.geLose(metrics.Uplink) {
			n.counters.RecordDrop(metrics.Uplink)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Uplink, q.from, q.msg.Kind())
			}
			return 0
		}
		n.counters.RecordDeliver(metrics.Uplink)
		if n.trace != nil {
			n.emit(obs.EvNetDeliver, metrics.Uplink, q.from, q.msg.Kind())
		}
		n.server.HandleUplink(q.from, q.msg)
		return 1
	case metrics.Downlink:
		h, ok := n.clients[q.to]
		if !ok || n.down[q.to] || n.lose(n.cfg.DownlinkLoss) || n.geLose(metrics.Downlink) {
			n.counters.RecordDrop(metrics.Downlink)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Downlink, q.to, q.msg.Kind())
			}
			return 0
		}
		n.counters.RecordDeliver(metrics.Downlink)
		if n.trace != nil {
			n.emit(obs.EvNetDeliver, metrics.Downlink, q.to, q.msg.Kind())
		}
		h.HandleServerMessage(q.msg)
		return 1
	case metrics.Broadcast:
		if q.batch != nil {
			return n.deliverBroadcastBatch(q)
		}
		return n.deliverBroadcast(q)
	default:
		panic("simnet: unknown direction")
	}
}

// deliverBroadcast fans q out to every client whose cell intersects the
// region. The audience comes from the per-cell index — only the region's
// cells are visited, so cost is output-sensitive — and is sorted by id so
// the fan-out order (and with it the per-recipient loss-RNG draw order)
// is bit-identical to the linear reference scan.
func (n *Network) deliverBroadcast(q queued) int {
	if n.positions == nil {
		panic("simnet: broadcast without a position oracle")
	}
	if n.linearFanout {
		return n.deliverBroadcastLinear(q.region, q.filter, q.msg)
	}
	n.refreshCellIndex()
	rec := n.recipients[:0]
	n.cfg.Geometry.VisitCellsIntersecting(q.region, func(c grid.Cell) bool {
		if q.filter == nil || q.filter(c) {
			rec = append(rec, n.cellIDs[n.cfg.Geometry.CellIndex(c)]...)
		}
		return true
	})
	slices.Sort(rec)
	n.recipients = rec
	return n.fanout(rec, q.msg)
}

// fanout transmits msg to the gathered, id-sorted audience, applying the
// per-recipient drop checks and loss draws in audience order.
func (n *Network) fanout(rec []model.ObjectID, msg protocol.Message) int {
	delivered := 0
	for _, id := range rec {
		// Re-check membership per recipient: a handler earlier in this
		// fan-out may have detached this client (the recipient list is a
		// snapshot — DetachClient unlinks the index entry but the slice we
		// range over is already gathered), in which case the transmission
		// is a drop, not a nil-interface call.
		h, ok := n.clients[id]
		if !ok {
			n.counters.RecordDrop(metrics.Broadcast)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Broadcast, id, msg.Kind())
			}
			continue
		}
		if n.down[id] || n.lose(n.cfg.BroadcastLoss) || n.geLose(metrics.Broadcast) {
			n.counters.RecordDrop(metrics.Broadcast)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Broadcast, id, msg.Kind())
			}
			continue
		}
		n.counters.RecordDeliver(metrics.Broadcast)
		if n.trace != nil {
			n.emit(obs.EvNetDeliver, metrics.Broadcast, id, msg.Kind())
		}
		h.HandleServerMessage(msg)
		delivered++
	}
	return delivered
}

// deliverBroadcastLinear is the original Θ(clients) fan-out: walk every
// attached client in id order and test its cell against the region. It is
// retained as the behavioral reference the indexed path must match
// bit-for-bit (recipients, counters, and RNG stream); tests and the
// fan-out benchmark select it via linearFanout.
func (n *Network) deliverBroadcastLinear(region geo.Circle, filter func(grid.Cell) bool, msg protocol.Message) int {
	cells := n.cfg.Geometry.CellsIntersecting(region)
	inCell := make(map[grid.Cell]bool, len(cells))
	for _, c := range cells {
		if filter == nil || filter(c) {
			inCell[c] = true
		}
	}
	delivered := 0
	for _, id := range n.sortedIDs() {
		pos, posOK := n.positions(id)
		if !posOK || !inCell[n.cfg.Geometry.CellOf(pos)] {
			continue
		}
		h, ok := n.clients[id]
		if !ok {
			n.counters.RecordDrop(metrics.Broadcast)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Broadcast, id, msg.Kind())
			}
			continue
		}
		if n.down[id] || n.lose(n.cfg.BroadcastLoss) || n.geLose(metrics.Broadcast) {
			n.counters.RecordDrop(metrics.Broadcast)
			if n.trace != nil {
				n.emit(obs.EvNetDrop, metrics.Broadcast, id, msg.Kind())
			}
			continue
		}
		n.counters.RecordDeliver(metrics.Broadcast)
		if n.trace != nil {
			n.emit(obs.EvNetDeliver, metrics.Broadcast, id, msg.Kind())
		}
		h.HandleServerMessage(msg)
		delivered++
	}
	return delivered
}

// refreshCellIndex re-resolves every attached client's cell through the
// position oracle, once per Flush. Clients the oracle cannot place leave
// the index. Placement is independent per client, so the map iteration
// order does not matter: per-broadcast audiences are sorted by id before
// fan-out.
func (n *Network) refreshCellIndex() {
	if n.indexFresh {
		return
	}
	n.indexFresh = true
	for id := range n.clients {
		n.placeClient(id)
	}
}

// placeClient moves id to the cell of its current oracle position, or out
// of the index when the oracle cannot place it.
func (n *Network) placeClient(id model.ObjectID) {
	ref := n.cellPos[id]
	var pos geo.Point
	ok := false
	if n.positions != nil {
		pos, ok = n.positions(id)
	}
	if !ok {
		if ref.located {
			n.removeFromCell(id, ref)
			n.cellPos[id] = cellRef{}
		}
		return
	}
	idx := n.cfg.Geometry.CellIndex(n.cfg.Geometry.CellOf(pos))
	if ref.located && ref.idx == idx {
		return
	}
	if ref.located {
		n.removeFromCell(id, ref)
	}
	n.cellIDs[idx] = append(n.cellIDs[idx], id)
	n.cellPos[id] = cellRef{idx: idx, slot: len(n.cellIDs[idx]) - 1, located: true}
	n.cellSorted[idx] = false
}

// removeFromCell unlinks id from its current cell using swap-with-last.
func (n *Network) removeFromCell(id model.ObjectID, ref cellRef) {
	cell := n.cellIDs[ref.idx]
	last := len(cell) - 1
	if ref.slot != last {
		moved := cell[last]
		cell[ref.slot] = moved
		mref := n.cellPos[moved]
		mref.slot = ref.slot
		n.cellPos[moved] = mref
	}
	n.cellIDs[ref.idx] = cell[:last]
	n.cellSorted[ref.idx] = false
}

func (n *Network) lose(p float64) bool {
	return p > 0 && n.rng.Float64() < p
}

// geLose advances the direction's Gilbert–Elliott chain one delivery
// attempt and reports whether the attempt is lost. Disabled channels
// consume no randomness.
func (n *Network) geLose(dir metrics.Direction) bool {
	var g GEChannel
	switch dir {
	case metrics.Uplink:
		g = n.cfg.Faults.UplinkGE
	case metrics.Downlink:
		g = n.cfg.Faults.DownlinkGE
	case metrics.Broadcast:
		g = n.cfg.Faults.BroadcastGE
	}
	if !g.enabled() {
		return false
	}
	p := g.LossGood
	if n.geBad[dir] {
		p = g.LossBad
	}
	lost := p > 0 && n.frng.Float64() < p
	if n.geBad[dir] {
		if g.PBadGood > 0 && n.frng.Float64() < g.PBadGood {
			n.geBad[dir] = false
		}
	} else {
		if g.PGoodBad > 0 && n.frng.Float64() < g.PGoodBad {
			n.geBad[dir] = true
		}
	}
	return lost
}

func (n *Network) sortedIDs() []model.ObjectID {
	if n.idsDirt {
		n.ids = n.ids[:0]
		for id := range n.clients {
			n.ids = append(n.ids, id)
		}
		sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
		n.idsDirt = false
	}
	return n.ids
}
