package simnet

import (
	"math/rand"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// Conservation invariant (DESIGN.md §7): for unicast directions, every
// sent message is eventually delivered or dropped, under random loss,
// latency, attach/detach churn, and flush timing.
func TestUnicastConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		cfg := testConfig()
		cfg.UplinkLoss = rng.Float64() * 0.5
		cfg.DownlinkLoss = rng.Float64() * 0.5
		cfg.LatencyTicks = rng.Intn(3)
		cfg.Seed = int64(trial)
		n := New(cfg)
		n.AttachServer(&recorder{})
		clients := []model.ObjectID{1, 2, 3, 4, 5}
		for _, id := range clients {
			n.AttachClient(id, &recorder{})
		}
		n.SetPositionOracle(func(model.ObjectID) (geo.Point, bool) {
			return geo.Pt(500, 500), true
		})

		for tick := model.Tick(1); tick <= 50; tick++ {
			n.SetNow(tick)
			for i := 0; i < rng.Intn(10); i++ {
				from := clients[rng.Intn(len(clients))]
				n.ClientSide(from).Uplink(protocol.QueryDeregister{Query: 1})
			}
			for i := 0; i < rng.Intn(10); i++ {
				// Some downlinks target an id that is never attached.
				to := model.ObjectID(rng.Intn(7) + 1)
				n.ServerSide().Downlink(to, protocol.AnswerUpdate{Query: 1, At: tick})
			}
			if rng.Intn(10) == 0 {
				n.DetachClient(clients[rng.Intn(len(clients))])
			}
			if rng.Intn(10) == 0 {
				id := clients[rng.Intn(len(clients))]
				n.AttachClient(id, &recorder{})
			}
			n.Flush()
		}
		// Drain anything still due.
		n.SetNow(1000)
		n.Flush()
		c := n.Counters()
		for _, d := range []metrics.Direction{metrics.Uplink, metrics.Downlink} {
			if c.Sent(d) != c.Delivered(d)+c.Dropped(d) {
				t.Fatalf("trial %d: %v sent %d != delivered %d + dropped %d",
					trial, d, c.Sent(d), c.Delivered(d), c.Dropped(d))
			}
		}
		if n.PendingCount() != 0 {
			t.Fatalf("trial %d: %d messages stuck in queue", trial, n.PendingCount())
		}
	}
}
