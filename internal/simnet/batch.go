package simnet

import (
	"slices"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// BroadcastBatch implements transport.BatchServerSide: it accepts a
// drain's worth of region broadcasts in one call. Metering, coverage,
// audience, fan-out order, and loss draws are identical to calling
// Broadcast once per item, with two deliberate queue-level deviations a
// batching caller accepts: the whole batch shares one jitter draw (every
// item arrives at the same tick) and one duplication draw (the fault
// duplicates the batch, not individual items). With those faults off the
// batch is byte-identical on the wire to the per-item loop — the
// property tests in internal/shard pin exactly that.
//
// The payoff over the loop is on the delivery side: the batch delivers
// back-to-back in one queue entry, so the medium can reuse each grid
// cell's sorted audience snapshot across every item that covers it
// (sortedCellView) — each cell is sorted once per drain instead of once
// per install.
func (s serverSide) BroadcastBatch(items []transport.BroadcastItem) {
	n := s.n
	// Meter exactly as the per-item loop would, dropping items whose
	// region covers no accepted cell, and keep the rest. The kept slice is
	// a copy: the queue retains it until delivery and the caller reuses
	// its scratch.
	var kept []transport.BroadcastItem
	for _, it := range items {
		size := protocol.EncodedSize(it.Msg)
		cells := 0
		n.cfg.Geometry.VisitCellsIntersecting(it.Region, func(c grid.Cell) bool {
			if s.filter == nil || s.filter(c) {
				cells++
			}
			return true
		})
		for i := 0; i < cells; i++ {
			n.counters.RecordSend(metrics.Broadcast, it.Msg.Kind(), size)
		}
		if cells == 0 {
			continue
		}
		if n.trace != nil {
			n.emit(obs.EvNetSend, metrics.Broadcast, 0, it.Msg.Kind())
		}
		kept = append(kept, it)
	}
	if len(kept) == 0 {
		return
	}
	n.enqueue(queued{dir: metrics.Broadcast, filter: s.filter, batch: kept})
}

// deliverBroadcastBatch fans each item of the batch out in item order.
// Per item the audience, its ordering, and the loss draws match the
// non-batched path exactly; the saving is that the merged gather reuses
// per-cell sorted snapshots across items.
func (n *Network) deliverBroadcastBatch(q queued) int {
	if n.positions == nil {
		panic("simnet: broadcast without a position oracle")
	}
	if n.linearFanout {
		delivered := 0
		for _, it := range q.batch {
			delivered += n.deliverBroadcastLinear(it.Region, q.filter, it.Msg)
		}
		return delivered
	}
	n.refreshCellIndex()
	delivered := 0
	for _, it := range q.batch {
		rec := n.gatherMerged(it.Region, q.filter)
		delivered += n.fanout(rec, it.Msg)
	}
	return delivered
}

// gatherMerged returns the id-sorted audience of the region as a merge
// of its cells' sorted snapshots. Each attached client sits in exactly
// one cell, so the snapshots are disjoint and the merge equals sorting
// the concatenation — the exact audience deliverBroadcast computes — at
// the cost of a linear head scan over the handful of cells a monitoring
// circle covers. The result lives in the recipients scratch until the
// next gather.
func (n *Network) gatherMerged(region geo.Circle, filter func(grid.Cell) bool) []model.ObjectID {
	lists := n.mergeLists[:0]
	n.cfg.Geometry.VisitCellsIntersecting(region, func(c grid.Cell) bool {
		if filter == nil || filter(c) {
			if ids := n.sortedCellView(n.cfg.Geometry.CellIndex(c)); len(ids) > 0 {
				lists = append(lists, ids)
			}
		}
		return true
	})
	n.mergeLists = lists
	rec := n.recipients[:0]
	switch len(lists) {
	case 0:
	case 1:
		rec = append(rec, lists[0]...)
	default:
		for {
			best := -1
			for li := range lists {
				if len(lists[li]) == 0 {
					continue
				}
				if best == -1 || lists[li][0] < lists[best][0] {
					best = li
				}
			}
			if best == -1 {
				break
			}
			rec = append(rec, lists[best][0])
			lists[best] = lists[best][1:]
		}
	}
	n.recipients = rec
	return rec
}

// sortedCellView returns cell idx's membership sorted by id, from the
// memoized snapshot when it is still valid. The snapshot is a copy —
// cellIDs order is load-bearing for swap-with-last removal, so it is
// never sorted in place — and stays valid across flushes until
// placeClient or removeFromCell touches the cell.
func (n *Network) sortedCellView(idx int) []model.ObjectID {
	if n.cellSorted[idx] {
		return n.cellSortCache[idx]
	}
	v := append(n.cellSortCache[idx][:0], n.cellIDs[idx]...)
	slices.Sort(v)
	n.cellSortCache[idx] = v
	n.cellSorted[idx] = true
	return v
}

// RNGBurn draws and returns one value from the base-loss generator and
// one from the fault generator. It exists for equivalence tests, which
// call it once at the end of two runs to assert both pairs of streams
// sit at the same position; the draws advance the streams, so production
// code must never call it.
func (n *Network) RNGBurn() (base, fault float64) {
	return n.rng.Float64(), n.frng.Float64()
}
