package simnet

import (
	"fmt"
	"math/rand"
	"testing"

	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// tagRec records the tag (Query field) of every broadcast it hears, so two
// networks' per-client delivery sequences can be compared exactly.
type tagRec struct{ seen []model.QueryID }

func (r *tagRec) HandleServerMessage(m protocol.Message) {
	if a, ok := m.(protocol.AnswerUpdate); ok {
		r.seen = append(r.seen, a.Query)
	}
}

// fanoutWorld drives one network through a scripted random scenario. The
// script is derived from its own generator (independent of the network's
// loss/fault generators), so two worlds built from the same script seed
// perform identical operations in identical order.
type fanoutWorld struct {
	net     *Network
	clients map[model.ObjectID]*tagRec
	pos     map[model.ObjectID]geo.Point
}

func newFanoutWorld(cfg Config, linear bool) *fanoutWorld {
	w := &fanoutWorld{
		net:     New(cfg),
		clients: make(map[model.ObjectID]*tagRec),
		pos:     make(map[model.ObjectID]geo.Point),
	}
	w.net.linearFanout = linear
	w.net.SetPositionOracle(func(id model.ObjectID) (geo.Point, bool) {
		p, ok := w.pos[id]
		return p, ok
	})
	return w
}

func (w *fanoutWorld) attach(id model.ObjectID, p geo.Point) {
	rec := &tagRec{}
	w.clients[id] = rec
	w.pos[id] = p
	w.net.AttachClient(id, rec)
}

// The tentpole equivalence invariant: the cell-indexed fan-out and the
// linear reference fan-out must be indistinguishable — identical
// per-client delivery sequences, identical counters per direction,
// identical duplication counts, and identical consumption of both the
// base-loss and fault RNG streams — under random positions, churn, down
// clients, loss, burst loss, jitter, and duplication.
func TestIndexedFanoutMatchesLinear(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := Config{
				Geometry:      grid.NewGeometry(world, 16, 16),
				LatencyTicks:  1,
				BroadcastLoss: 0.2,
				DownlinkLoss:  0.1,
				Seed:          seed,
				Faults: FaultConfig{
					BroadcastGE:   BurstLoss(0.15, 3),
					JitterTicks:   2,
					DuplicateProb: 0.25,
				},
			}
			script := rand.New(rand.NewSource(seed * 7919))
			randPt := func() geo.Point {
				return geo.Pt(script.Float64()*1000, script.Float64()*1000)
			}

			a := newFanoutWorld(cfg, false) // indexed (production) path
			b := newFanoutWorld(cfg, true)  // linear reference path
			nextID := model.ObjectID(1)
			for i := 0; i < 60; i++ {
				p := randPt()
				a.attach(nextID, p)
				b.attach(nextID, p)
				nextID++
			}

			for tick := model.Tick(1); tick <= 50; tick++ {
				// Move ~half the population.
				for id := range a.pos {
					if script.Intn(2) == 0 {
						p := randPt()
						a.pos[id] = p
						b.pos[id] = p
					}
				}
				// Churn: occasionally attach a newcomer or detach a victim.
				if script.Intn(4) == 0 {
					p := randPt()
					a.attach(nextID, p)
					b.attach(nextID, p)
					nextID++
				}
				if script.Intn(5) == 0 && nextID > 2 {
					victim := model.ObjectID(script.Intn(int(nextID)-1) + 1)
					a.net.DetachClient(victim)
					b.net.DetachClient(victim)
				}
				// Down/up churn (down ids may or may not be attached).
				if script.Intn(3) == 0 {
					id := model.ObjectID(script.Intn(int(nextID)) + 1)
					down := script.Intn(2) == 0
					a.net.SetClientDown(id, down)
					b.net.SetClientDown(id, down)
				}
				// One to three broadcasts with varied coverage, including
				// degenerate regions that cover no cells.
				for j := script.Intn(3) + 1; j > 0; j-- {
					r := script.Float64()*300 - 10
					c := geo.Circle{Center: randPt(), R: r}
					tag := protocol.AnswerUpdate{Query: model.QueryID(tick*100 + model.Tick(j))}
					a.net.ServerSide().Broadcast(c, tag)
					b.net.ServerSide().Broadcast(c, tag)
				}
				// A few downlinks keep the bucketed queue mixing directions.
				for j := script.Intn(2); j > 0; j-- {
					to := model.ObjectID(script.Intn(int(nextID)) + 1)
					a.net.ServerSide().Downlink(to, protocol.MonitorCancel{Query: 1})
					b.net.ServerSide().Downlink(to, protocol.MonitorCancel{Query: 1})
				}
				a.net.SetNow(tick)
				b.net.SetNow(tick)
				da, db := a.net.Flush(), b.net.Flush()
				if da != db {
					t.Fatalf("tick %d: delivered %d (indexed) vs %d (linear)", tick, da, db)
				}
				if pa, pb := a.net.PendingCount(), b.net.PendingCount(); pa != pb {
					t.Fatalf("tick %d: pending %d vs %d", tick, pa, pb)
				}
			}
			// Drain the in-flight tail.
			a.net.SetNow(60)
			b.net.SetNow(60)
			a.net.Flush()
			b.net.Flush()

			for _, dir := range []metrics.Direction{metrics.Uplink, metrics.Downlink, metrics.Broadcast} {
				ca, cb := a.net.Counters(), b.net.Counters()
				if ca.Sent(dir) != cb.Sent(dir) || ca.Delivered(dir) != cb.Delivered(dir) || ca.Dropped(dir) != cb.Dropped(dir) {
					t.Errorf("dir %d: counters differ: sent %d/%d delivered %d/%d dropped %d/%d",
						dir, ca.Sent(dir), cb.Sent(dir), ca.Delivered(dir), cb.Delivered(dir), ca.Dropped(dir), cb.Dropped(dir))
				}
				if a.net.Duplicated(dir) != b.net.Duplicated(dir) {
					t.Errorf("dir %d: duplicated %d vs %d", dir, a.net.Duplicated(dir), b.net.Duplicated(dir))
				}
			}
			for id, ra := range a.clients {
				rb := b.clients[id]
				if len(ra.seen) != len(rb.seen) {
					t.Fatalf("client %d: heard %d broadcasts (indexed) vs %d (linear)", id, len(ra.seen), len(rb.seen))
				}
				for i := range ra.seen {
					if ra.seen[i] != rb.seen[i] {
						t.Fatalf("client %d: delivery %d is %d (indexed) vs %d (linear)", id, i, ra.seen[i], rb.seen[i])
					}
				}
			}
			// Both generators of both networks must sit at the same stream
			// position: the next draw from each pair must agree.
			if a.net.rng.Float64() != b.net.rng.Float64() {
				t.Error("base loss RNG streams diverged")
			}
			if a.net.frng.Float64() != b.net.frng.Float64() {
				t.Error("fault RNG streams diverged")
			}
		})
	}
}

// The broadcast delivery path must be allocation-free in steady state:
// index refresh, audience gathering, sorting, bucket push/drain, and the
// per-recipient loss draws all reuse held storage.
func TestBroadcastDeliveryDoesNotAllocate(t *testing.T) {
	w := newFanoutWorld(Config{
		Geometry:      grid.NewGeometry(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 16, 16),
		BroadcastLoss: 0.1,
	}, false)
	rng := rand.New(rand.NewSource(42))
	for id := model.ObjectID(1); id <= 500; id++ {
		w.attach(id, geo.Pt(rng.Float64()*1000, rng.Float64()*1000))
	}
	var msg protocol.Message = protocol.MonitorCancel{Query: 7}
	region := geo.Circle{Center: geo.Pt(500, 500), R: 150}
	tick := model.Tick(0)
	cycle := func() {
		tick++
		w.net.SetNow(tick)
		w.net.ServerSide().Broadcast(region, msg)
		w.net.ServerSide().Broadcast(region, msg)
		w.net.Flush()
	}
	// Warm up scratch capacities, then demand zero steady-state allocs.
	for i := 0; i < 8; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("broadcast+flush cycle allocates %.1f times per run, want 0", avg)
	}
}

// BenchmarkBroadcastFanout measures a flush delivering a burst of
// fixed-radius region broadcasts against populations of 1k/10k/100k, on
// both the indexed (production) and linear (reference) paths. The indexed
// path pays one position re-resolution per client per flush plus work
// proportional to the regions' populations; the linear path scans every
// client once per broadcast.
func BenchmarkBroadcastFanout(b *testing.B) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000))
	const broadcastsPerFlush = 8
	for _, n := range []int{1000, 10000, 100000} {
		for _, mode := range []string{"indexed", "linear"} {
			b.Run(fmt.Sprintf("N=%d/%s", n, mode), func(b *testing.B) {
				w := newFanoutWorld(Config{
					Geometry: grid.NewGeometry(world, 64, 64),
				}, mode == "linear")
				rng := rand.New(rand.NewSource(1))
				for id := model.ObjectID(1); id <= model.ObjectID(n); id++ {
					w.attach(id, geo.Pt(rng.Float64()*10000, rng.Float64()*10000))
				}
				var msg protocol.Message = protocol.MonitorCancel{Query: 1}
				regions := make([]geo.Circle, broadcastsPerFlush)
				for i := range regions {
					regions[i] = geo.Circle{
						Center: geo.Pt(rng.Float64()*10000, rng.Float64()*10000),
						R:      250,
					}
				}
				tick := model.Tick(0)
				flushBurst := func() {
					tick++
					w.net.SetNow(tick)
					for _, r := range regions {
						w.net.ServerSide().Broadcast(r, msg)
					}
					w.net.Flush()
				}
				// Warm up so scratch growth is excluded from the steady state.
				for i := 0; i < 4; i++ {
					flushBurst()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					flushBurst()
				}
			})
		}
	}
}
