// Package baseline implements the centralized comparison methods the
// distributed protocol is evaluated against:
//
//   - CP (centralized periodic): every object uplinks its position every
//     tick; the server keeps a uniform grid index and recomputes every
//     query per tick with best-first kNN. Exact answers, Θ(N) uplinks per
//     tick regardless of the query load.
//
//   - CI (centralized incremental, position-drift threshold τ): an object
//     uplinks only after moving more than τ meters from its last reported
//     position; the server recomputes from the (τ-stale) index. Uplink
//     cost scales with N·speed/τ; answer position error is bounded by τ.
//
//   - CB (centralized predictive dead reckoning, threshold τ): an object
//     uplinks position+velocity and reports again only when its true
//     position deviates more than τ from the advertised straight-line
//     track; the server extrapolates every track each tick before
//     evaluating queries. Far fewer messages than CI for straight-moving
//     populations, at Θ(N) server work per tick — the classic
//     messages-vs-server-CPU tradeoff from the moving-object-database
//     literature.
//
// All run on the same transport, are driven by the same engine, and are
// audited by the same ground truth as the distributed method, so every
// reported difference is attributable to the protocol.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"dmknn/internal/geo"
	"dmknn/internal/index"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/transport"
)

// Mode selects the object reporting policy.
type Mode uint8

// Reporting policies.
const (
	// ModePeriodic: report every tick (CP).
	ModePeriodic Mode = iota
	// ModeDrift: report after moving more than τ from the last reported
	// position (CI).
	ModeDrift
	// ModePredict: report position+velocity when deviating more than τ
	// from the advertised straight-line track; the server extrapolates
	// (CB).
	ModePredict
)

// trackEpsilon absorbs float-summation noise between iterated per-tick
// motion and one-shot track extrapolation (see internal/core for the
// same constant and rationale).
const trackEpsilon = 1e-6

// Config selects the reporting policy.
type Config struct {
	Mode Mode
	// Threshold is the drift/deviation bound τ in meters (ModeDrift and
	// ModePredict).
	Threshold float64
	// QueryThreshold is the focal client's reporting threshold; the
	// query position is cheap to track precisely, so it defaults to 0
	// (report every tick it moved).
	QueryThreshold float64
	// Index selects the server's spatial index substrate: index.KindGrid
	// (default) or index.KindRTree.
	Index string
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Mode != ModePeriodic && c.Threshold <= 0 {
		return fmt.Errorf("baseline: threshold mode requires positive threshold, got %v", c.Threshold)
	}
	if c.Threshold < 0 || c.QueryThreshold < 0 {
		return fmt.Errorf("baseline: negative threshold")
	}
	return nil
}

// Method is a centralized strategy plugged into the simulation engine.
type Method struct {
	cfg  Config
	name string
	env  *sim.Env

	server *centralServer
	agents []reporterAgent
	qcs    []centralQueryClient

	serverTime time.Duration
}

var _ sim.Method = (*Method)(nil)

// NewCP returns the centralized-periodic baseline.
func NewCP() *Method {
	return &Method{cfg: Config{Mode: ModePeriodic}, name: "cp"}
}

// NewCPWithIndex returns the CP baseline on the named spatial index
// substrate (index.KindGrid or index.KindRTree), for the index ablation.
func NewCPWithIndex(kind string) (*Method, error) {
	if _, err := index.New(kind, geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 1, 1); err != nil {
		return nil, err
	}
	return &Method{cfg: Config{Mode: ModePeriodic, Index: kind}, name: "cp[" + kind + "]"}, nil
}

// NewCI returns the centralized-incremental baseline with drift threshold
// tau (meters).
func NewCI(tau float64) (*Method, error) {
	cfg := Config{Mode: ModeDrift, Threshold: tau}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Method{cfg: cfg, name: fmt.Sprintf("ci(τ=%g)", tau)}, nil
}

// NewCB returns the centralized predictive dead-reckoning baseline with
// track-deviation threshold tau (meters).
func NewCB(tau float64) (*Method, error) {
	cfg := Config{Mode: ModePredict, Threshold: tau}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Method{cfg: cfg, name: fmt.Sprintf("cb(τ=%g)", tau)}, nil
}

// Name implements sim.Method.
func (m *Method) Name() string { return m.name }

// Setup implements sim.Method.
func (m *Method) Setup(env *sim.Env) error {
	m.env = env
	srv, err := newCentralServer(m, env.Net.ServerSide())
	if err != nil {
		return err
	}
	m.server = srv
	env.Net.AttachServer(m.server)

	m.agents = make([]reporterAgent, len(env.Objects))
	for i := range m.agents {
		a := &m.agents[i]
		a.m = m
		a.id = model.ObjectID(i + 1)
		a.side = env.Net.ClientSide(a.id)
		env.Net.AttachClient(a.id, a)
	}
	m.qcs = make([]centralQueryClient, len(env.Queries))
	for i := range m.qcs {
		qc := &m.qcs[i]
		qc.m = m
		qc.idx = i
		qc.side = env.Net.ClientSide(env.Queries[i].State.ID)
		env.Net.AttachClient(env.Queries[i].State.ID, qc)
	}
	return nil
}

// ClientTick implements sim.Method.
func (m *Method) ClientTick(now model.Tick) {
	for i := range m.qcs {
		m.qcs[i].tick(now)
	}
	for i := range m.agents {
		m.agents[i].tick(now)
	}
}

// ServerTick implements sim.Method.
func (m *Method) ServerTick(now model.Tick) {
	defer m.track(time.Now())
	m.server.tick(now)
}

// Finalize implements sim.Method: centralized processing completes within
// ServerTick.
func (m *Method) Finalize(model.Tick) bool { return false }

// Answer implements sim.Method: the answer as visible at the query's
// focal client.
func (m *Method) Answer(q model.QueryID) model.Answer {
	qi := int(q) - 1
	if qi < 0 || qi >= len(m.qcs) {
		return model.Answer{Query: q}
	}
	return m.qcs[qi].answer
}

// ServerTime implements sim.Method.
func (m *Method) ServerTime() time.Duration { return m.serverTime }

func (m *Method) track(start time.Time) { m.serverTime += time.Since(start) }

// ---------------------------------------------------------------------------
// Client side

// reporterAgent implements the object-side reporting policy.
type reporterAgent struct {
	m    *Method
	id   model.ObjectID
	side transport.ClientSide

	reported bool
	lastPos  geo.Point
	lastVel  geo.Vector
	lastAt   model.Tick
}

func (a *reporterAgent) pos() geo.Point { return a.m.env.Objects[int(a.id)-1].Pos }

func (a *reporterAgent) tick(now model.Tick) {
	st := a.m.env.Objects[int(a.id)-1]
	var send bool
	switch {
	case a.m.cfg.Mode == ModePeriodic || !a.reported:
		send = true
	case a.m.cfg.Mode == ModeDrift:
		send = st.Pos.Dist(a.lastPos) > a.m.cfg.Threshold
	default: // ModePredict
		expect := geo.DeadReckon(a.lastPos, a.lastVel, float64(now-a.lastAt)*a.m.env.DT)
		send = st.Pos.Dist(expect) > a.m.cfg.Threshold+trackEpsilon
	}
	if !send {
		return
	}
	a.side.Uplink(protocol.LocationReport{Object: a.id, Pos: st.Pos, Vel: st.Vel, At: now})
	a.reported = true
	a.lastPos, a.lastVel, a.lastAt = st.Pos, st.Vel, now
}

// HandleServerMessage implements transport.ClientHandler; centralized
// objects receive nothing.
func (a *reporterAgent) HandleServerMessage(protocol.Message) {}

// centralQueryClient registers its query and streams its focal position.
type centralQueryClient struct {
	m    *Method
	idx  int
	side transport.ClientSide

	registered bool
	lastPos    geo.Point
	lastVel    geo.Vector
	lastAt     model.Tick

	answer model.Answer
}

func (qc *centralQueryClient) tick(now model.Tick) {
	rt := &qc.m.env.Queries[qc.idx]
	st := rt.State
	if !qc.registered {
		qc.side.Uplink(protocol.QueryRegister{
			Query: rt.Spec.ID, K: uint32(rt.Spec.K), Range: rt.Spec.Range,
			Pos: st.Pos, Vel: st.Vel, At: now,
		})
		qc.registered = true
		qc.lastPos, qc.lastVel, qc.lastAt = st.Pos, st.Vel, now
		return
	}
	// The focal position is precious: stream it every tick under the
	// periodic policy, else when it moved beyond the query threshold.
	if qc.m.cfg.Mode == ModePeriodic || st.Pos.Dist(qc.lastPos) > qc.m.cfg.QueryThreshold {
		qc.side.Uplink(protocol.QueryMove{Query: rt.Spec.ID, Pos: st.Pos, Vel: st.Vel, At: now})
		qc.lastPos, qc.lastVel, qc.lastAt = st.Pos, st.Vel, now
	}
}

// HandleServerMessage implements transport.ClientHandler.
func (qc *centralQueryClient) HandleServerMessage(msg protocol.Message) {
	if v, ok := msg.(protocol.AnswerUpdate); ok {
		qc.answer = model.Answer{Query: v.Query, At: v.At, Neighbors: v.Neighbors}
	}
}

// ---------------------------------------------------------------------------
// Server side

type centralQuery struct {
	spec model.QuerySpec
	addr model.ObjectID
	qpos geo.Point
	qvel geo.Vector
	qat  model.Tick
	sent map[model.ObjectID]bool
}

// track is the last reported kinematic state of one object, kept by the
// predictive server so it can extrapolate between reports.
type track struct {
	pos geo.Point
	vel geo.Vector
	at  model.Tick
}

// centralServer indexes location reports in a uniform grid and recomputes
// every query each tick. In ModePredict it additionally dead-reckons all
// known tracks into the index before evaluating.
type centralServer struct {
	m       *Method
	side    transport.ServerSide
	index   index.Spatial
	tracks  map[model.ObjectID]track
	queries map[model.QueryID]*centralQuery
	order   []model.QueryID
	// scratch is the reusable result buffer for index searches: the
	// per-tick evaluation copies what it sends, so the buffer can be
	// recycled across queries and ticks.
	scratch []model.Neighbor
}

func newCentralServer(m *Method, side transport.ServerSide) (*centralServer, error) {
	cols, rows := m.env.Geometry.Dims()
	idx, err := index.New(m.cfg.Index, m.env.World, cols, rows)
	if err != nil {
		return nil, err
	}
	return &centralServer{
		m:       m,
		side:    side,
		index:   idx,
		tracks:  make(map[model.ObjectID]track),
		queries: make(map[model.QueryID]*centralQuery),
	}, nil
}

// HandleUplink implements transport.ServerHandler.
func (s *centralServer) HandleUplink(from model.ObjectID, msg protocol.Message) {
	defer s.m.track(time.Now())
	switch v := msg.(type) {
	case protocol.LocationReport:
		if _, ok := s.index.Position(v.Object); ok {
			_ = s.index.Update(v.Object, v.Pos)
		} else {
			_ = s.index.Insert(v.Object, v.Pos)
		}
		if s.m.cfg.Mode == ModePredict {
			s.tracks[v.Object] = track{pos: v.Pos, vel: v.Vel, at: v.At}
		}
	case protocol.QueryRegister:
		if _, exists := s.queries[v.Query]; exists {
			return
		}
		s.queries[v.Query] = &centralQuery{
			spec: model.QuerySpec{ID: v.Query, K: int(v.K), Range: v.Range, Pos: v.Pos, Vel: v.Vel},
			addr: from,
			qpos: v.Pos, qvel: v.Vel, qat: v.At,
			sent: make(map[model.ObjectID]bool),
		}
		s.order = append(s.order, v.Query)
		sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	case protocol.QueryMove:
		if q, ok := s.queries[v.Query]; ok {
			q.qpos, q.qvel, q.qat = v.Pos, v.Vel, v.At
		}
	case protocol.QueryDeregister:
		if _, ok := s.queries[v.Query]; ok {
			delete(s.queries, v.Query)
			for i, id := range s.order {
				if id == v.Query {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
}

// HandleClientGone implements transport.DisconnectHandler: vanished
// objects leave the index; a vanished focal client takes its query down.
func (s *centralServer) HandleClientGone(id model.ObjectID) {
	defer s.m.track(time.Now())
	if _, ok := s.index.Position(id); ok {
		_ = s.index.Remove(id)
	}
	delete(s.tracks, id)
	for qid, q := range s.queries {
		if q.addr == id {
			delete(s.queries, qid)
			for i, o := range s.order {
				if o == qid {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
}

// tick reevaluates every query against the current index and downlinks
// answers whose membership changed. The predictive server first
// extrapolates every known track into the index — Θ(N) work per tick,
// the price of the message savings.
func (s *centralServer) tick(now model.Tick) {
	dt := s.m.env.DT
	if s.m.cfg.Mode == ModePredict {
		for id, tr := range s.tracks {
			p := s.m.env.World.Clamp(geo.DeadReckon(tr.pos, tr.vel, float64(now-tr.at)*dt))
			_ = s.index.Update(id, p)
		}
	}
	for _, qid := range s.order {
		q := s.queries[qid]
		qhat := geo.DeadReckon(q.qpos, q.qvel, float64(now-q.qat)*dt)
		var ns []model.Neighbor
		if q.spec.IsRange() {
			ns = s.index.Range(geo.Circle{Center: qhat, R: q.spec.Range}, nil, s.scratch[:0])
		} else {
			ns = s.index.KNN(qhat, q.spec.K, nil, s.scratch[:0])
		}
		if cap(ns) > cap(s.scratch) {
			s.scratch = ns
		}
		changed := len(ns) != len(q.sent)
		if !changed {
			for _, n := range ns {
				if !q.sent[n.ID] {
					changed = true
					break
				}
			}
		}
		if !changed {
			continue
		}
		clear(q.sent)
		for _, n := range ns {
			q.sent[n.ID] = true
		}
		out := make([]model.Neighbor, len(ns))
		copy(out, ns)
		s.side.Downlink(q.addr, protocol.AnswerUpdate{Query: qid, At: now, Neighbors: out})
	}
}
