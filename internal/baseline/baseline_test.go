package baseline

import (
	"strings"
	"testing"

	"dmknn/internal/metrics"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if _, err := NewCI(0); err == nil {
		t.Error("CI with zero threshold accepted")
	}
	if _, err := NewCI(-5); err == nil {
		t.Error("CI with negative threshold accepted")
	}
	if (Config{Mode: ModePeriodic, Threshold: -1}).Validate() == nil {
		t.Error("negative threshold accepted")
	}
	if (Config{Mode: ModePeriodic, QueryThreshold: -1}).Validate() == nil {
		t.Error("negative query threshold accepted")
	}
	if _, err := NewCB(0); err == nil {
		t.Error("CB with zero threshold accepted")
	}
}

func TestNames(t *testing.T) {
	if NewCP().Name() != "cp" {
		t.Error("CP name")
	}
	ci, err := NewCI(50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ci.Name(), "50") {
		t.Errorf("CI name %q should carry τ", ci.Name())
	}
	cb, err := NewCB(25)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cb.Name(), "25") {
		t.Errorf("CB name %q should carry τ", cb.Name())
	}
}

// CB reports on track deviation and the server extrapolates: for
// waypoint motion (long straight legs) it needs far fewer messages than
// CI at the same τ, with comparable accuracy.
func TestCBBeatsCIOnStraightMotion(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	ci, err := NewCI(20)
	if err != nil {
		t.Fatal(err)
	}
	ciRes, err := sim.Run(cfg, ci)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCB(20)
	if err != nil {
		t.Fatal(err)
	}
	cbRes, err := sim.Run(cfg, cb)
	if err != nil {
		t.Fatal(err)
	}
	if cbRes.UplinkPerTick() >= ciRes.UplinkPerTick()/2 {
		t.Errorf("CB (%.1f) should need far fewer uplinks than CI (%.1f) on straight legs",
			cbRes.UplinkPerTick(), ciRes.UplinkPerTick())
	}
	if rec := cbRes.Audit.MeanRecall(); rec < 0.9 {
		t.Errorf("CB recall = %.3f, want >= 0.9 (τ-bounded prediction error)", rec)
	}
}

// CP is the exact reference method: its client-visible answers must match
// ground truth at every tick, and its uplink volume is N + Q per tick.
func TestCPExactAndCostly(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60
	res, err := sim.Run(cfg, NewCP())
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("CP exactness = %v, want 1.0 (recall %v)", ex, res.Audit.MeanRecall())
	}
	want := float64(cfg.NumObjects + cfg.NumQueries)
	if up := res.UplinkPerTick(); up < want-1 || up > want+1 {
		t.Fatalf("CP uplink/tick = %v, want ~%v", up, want)
	}
	if res.Traffic.SentKind(metrics.Uplink, protocol.KindLocationReport) == 0 {
		t.Fatal("no location reports")
	}
}

// CI trades τ-bounded error for fewer uplinks; larger τ means fewer
// messages and lower accuracy, monotonically.
func TestCITradeoff(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60

	run := func(tau float64) (up float64, recall float64) {
		ci, err := NewCI(tau)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, ci)
		if err != nil {
			t.Fatal(err)
		}
		return res.UplinkPerTick(), res.Audit.MeanRecall()
	}

	upTight, recTight := run(10)
	upLoose, recLoose := run(100)
	if upLoose >= upTight {
		t.Errorf("τ=100 uplink %.1f should be below τ=10 uplink %.1f", upLoose, upTight)
	}
	if recLoose > recTight {
		t.Errorf("recall should degrade with τ: %.3f (τ=10) vs %.3f (τ=100)", recTight, recLoose)
	}
	if recTight < 0.9 {
		t.Errorf("τ=10 recall %.3f too low", recTight)
	}
	cp, err := sim.Run(cfg, NewCP())
	if err != nil {
		t.Fatal(err)
	}
	if upTight >= cp.UplinkPerTick() {
		t.Errorf("CI (%.1f) should beat CP (%.1f) on uplink", upTight, cp.UplinkPerTick())
	}
}

// The same trajectories drive every method (fixed seed), so answers from
// CP and the ground truth agree even as queries and objects both move —
// a regression guard for the engine's motion/order contract.
func TestCPDeterminism(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 30
	r1, err := sim.Run(cfg, NewCP())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(cfg, NewCP())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Traffic != r2.Traffic {
		t.Error("CP traffic not deterministic")
	}
}

func TestAnswerForUnknownQuery(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 5
	cfg.Warmup = 0
	m := NewCP()
	if _, err := sim.Run(cfg, m); err != nil {
		t.Fatal(err)
	}
	if a := m.Answer(999); len(a.Neighbors) != 0 {
		t.Errorf("unknown query answer = %v", a)
	}
}

// CP on the R-tree substrate is just as exact as on the grid.
func TestCPRTreeIndexExact(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 30
	m, err := NewCPWithIndex("rtree")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("CP[rtree] exactness = %v", ex)
	}
	if _, err := NewCPWithIndex("btree"); err == nil {
		t.Fatal("unknown index accepted")
	}
}

// Server-side hygiene paths of the centralized server: deregistration,
// query moves, duplicate registration, and disconnect purging.
func TestCentralServerLifecycle(t *testing.T) {
	cfg := workload.Quick()
	cfg.NumQueries = 2
	cfg.Ticks = 5
	cfg.Warmup = 0
	m := NewCP()
	eng, err := sim.NewEngine(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	env := eng.Env()
	for i := 0; i < 5; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Answer(1).Neighbors) != cfg.K {
		t.Fatalf("query 1 not answered: %v", m.Answer(1))
	}
	// Duplicate registration is ignored.
	addr1 := env.Queries[0].State.ID
	env.Net.ClientSide(addr1).Uplink(protocol.QueryRegister{Query: 1, K: 99})
	env.Net.Flush()
	// Deregister query 2 via its own client.
	addr2 := env.Queries[1].State.ID
	env.Net.ClientSide(addr2).Uplink(protocol.QueryDeregister{Query: 2})
	env.Net.Flush()
	// Deregistering an unknown query is a no-op.
	env.Net.ClientSide(addr2).Uplink(protocol.QueryDeregister{Query: 42})
	env.Net.Flush()
	// A vanished object leaves the index; a vanished focal client kills
	// its query.
	m.server.HandleClientGone(1)
	m.server.HandleClientGone(addr1)
	if _, ok := m.server.index.Position(1); ok {
		t.Error("vanished object still indexed")
	}
	if len(m.server.queries) != 0 {
		t.Errorf("%d queries survive after gone/deregister", len(m.server.queries))
	}
	// Reports from the reporter agents keep flowing without the queries.
	for i := 0; i < 3; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
}
