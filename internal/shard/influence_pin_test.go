package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/metrics"
	"dmknn/internal/sim"
	"dmknn/internal/simnet"
)

// wireDigest collapses a complete wire transcript — every send and
// delivery event with all its fields, the per-direction counters and
// byte totals, the final RNG stream positions, and the client-visible
// answers — into one hash. Two runs with equal digests are
// byte-identical on the client wire.
func wireDigest(w *wireRun) string {
	h := sha256.New()
	for _, e := range w.trace.events {
		fmt.Fprintf(h, "e|%d|%d|%d|%d|%d|%d|%d|%d|%g\n",
			e.At, e.Type, e.Node, e.Dir, e.Kind, e.Query, e.Object, e.Seq, e.Value)
	}
	for _, dir := range metrics.Directions() {
		fmt.Fprintf(h, "c|%d|%d|%d|%d|%d|%d\n", dir,
			w.counters.Sent(dir), w.counters.SentBytes(dir),
			w.counters.Delivered(dir), w.counters.Dropped(dir), w.dups[dir])
	}
	fmt.Fprintf(h, "rng|%g|%g\n", w.baseBurn, w.faultBurn)
	for _, a := range w.answers {
		fmt.Fprintf(h, "a|%d|%d", a.Query, a.At)
		for _, n := range a.Neighbors {
			fmt.Fprintf(h, "|%d:%g", n.ID, n.Dist)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// prePRWireDigests pins the client wire of the engine as it stood
// before influence-mode safe regions existed (commit "Adaptive
// partitioning: load-aware strip rebalancing with live migration"),
// captured by running wireDigest over the same scenarios at that
// commit. With Config.Influence left off, the engine must keep
// producing these transcripts byte for byte: same message sequences,
// same wire bytes, same loss draws, same answers.
var prePRWireDigests = map[string]string{
	"seed=1/clean-L0": "c51150dbe69a936ebd68c1bfc8666b80c27a2dccc9601c9ea1f54f4972542415",
	"seed=1/loss-L0":  "c629cef3fd9b7acf455b43349e50e5c5406110b92db1a808a32ba0c65a04b732",
	"seed=1/burst-L0": "c7243cd20148f7f452e27952606dda72be8a1ebe2cefd00291a3aa58ec96b078",
	"seed=1/delta-L0": "c109dbe587b99bbb5dc540b21c64b85f464cfa74f5099dc1264107f6887af8e4",
	"seed=2/clean-L0": "168a9510dc3a63780f7f88609df9985b060f8cfd92ae45f296f162ed096cadec",
	"seed=2/loss-L0":  "4deed45017ff0267347e71f47384e2476d75d65ba82d91e5f476cf0d0037718b",
	"seed=2/burst-L0": "b867c50fabeb70b2bb819da74b493985c5b70c9d7ae4e753d9913a3365148d43",
	"seed=2/delta-L0": "52afd3891108779a877e6d305a59a12be78444619548f61a61ea542675c61ce8",
	"seed=3/clean-L0": "2103065ff49db82bf8487b8e6543858a427c96b05d5bf866cf3c7eb485996369",
	"seed=3/loss-L0":  "9e96017d95d6c41b5a5b74c292d690d058cedc22dc762ab26632806ecedc98c0",
	"seed=3/burst-L0": "771e3f7d77897c64dfcae044da779482bf010c3df40a3f80dbc315dc59f06d22",
	"seed=3/delta-L0": "c38f4d4d7170d6d0ae453b5e6f0e3c087dc5f711461ebd0c037e1ce6d9d7715a",
	"seed=4/clean-L0": "2eed4e6a4b367fb586630affe1a77c00ac648039003f300606eaa4451dbe03cd",
	"seed=4/loss-L0":  "75f27dc755339e257fb04f9e2aa8bf9aeeaa21e178b838d18d7e124ae6f5aa8c",
	"seed=4/burst-L0": "adeb81e68bc8ea46525a6df42bd1788f1d222e77ced97f815e6d0ee75f7ad21d",
	"seed=4/delta-L0": "c76a242cf24f355a42692837d07081888b92e0698e280861e2095b364328fa81",
}

// The influence-off identity pin: with Influence off (the zero value),
// the single server reproduces the pre-influence wire transcript
// exactly — across clean, plain-loss, burst-loss, and delta-answer
// channels and 4 seeds — and the batched sharded pipeline still matches
// it event for event. Any unconditional change the influence path
// leaks into install timing, message sizing, or RNG consumption breaks
// a digest here before it can silently shift the goldens.
func TestInfluenceOffWireIdentity(t *testing.T) {
	base := proto()
	base.Influence = false
	delta := base
	delta.DeltaAnswers = true
	delta.ResyncTicks = 16

	type scenario struct {
		name  string
		proto core.Config
		mut   func(*sim.Config)
	}
	scenarios := []scenario{
		{name: "clean-L0", proto: base, mut: func(c *sim.Config) {}},
		{name: "loss-L0", proto: base, mut: func(c *sim.Config) {
			c.UplinkLoss = 0.08
			c.DownlinkLoss = 0.05
			c.BroadcastLoss = 0.12
		}},
		{name: "burst-L0", proto: base, mut: func(c *sim.Config) {
			c.UplinkLoss = 0.05
			c.Faults.BroadcastGE = simnet.BurstLoss(0.2, 4)
			c.Faults.UplinkGE = simnet.BurstLoss(0.1, 3)
		}},
		{name: "delta-L0", proto: delta, mut: func(c *sim.Config) {}},
	}

	const ticks = 45
	for seed := int64(1); seed <= 4; seed++ {
		for _, sc := range scenarios {
			sc := sc
			seed := seed
			key := fmt.Sprintf("seed=%d/%s", seed, sc.name)
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				cfg := propertyBase(seed)
				sc.mut(&cfg)
				sync := runWire(t, cfg, func() (sim.Method, error) { return core.New(sc.proto) }, ticks)
				if got, want := wireDigest(sync), prePRWireDigests[key]; got != want {
					t.Errorf("influence-off wire changed vs pre-influence pin:\n got  %s\n want %s", got, want)
				}
				batched := runWire(t, cfg, func() (sim.Method, error) {
					return NewBatchedMethod(2, sc.proto)
				}, ticks)
				compareWires(t, "influence-off/shards=2", true, sync, batched)
			})
		}
	}
}
