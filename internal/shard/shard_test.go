package shard

import (
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

func proto() core.Config {
	cfg := core.DefaultConfig()
	cfg.HorizonTicks = 8
	cfg.MinProbeRadius = 100
	return cfg
}

func TestNewValidation(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	if _, err := New(0, proto().WithWorldDefault(world), core.ServerDeps{}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewMethod(0, proto()); err == nil {
		t.Error("NewMethod accepted zero shards")
	}
	if _, err := NewMethod(4, core.Config{}); err == nil {
		t.Error("NewMethod accepted invalid protocol config")
	}
	s, err := New(4, proto().WithWorldDefault(world), core.ServerDeps{
		Now: func() model.Tick { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 {
		t.Errorf("NumShards = %d", s.NumShards())
	}
}

// The sharded server must be exact, just like the single server, and
// distribute queries across shards.
func TestShardedExactness(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60
	m, err := NewMethod(4, proto())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	if ex := res.Audit.Exactness(); ex != 1.0 {
		t.Fatalf("sharded exactness = %v (recall %v)", ex, res.Audit.MeanRecall())
	}
	if got := m.server.QueryCount(); got != cfg.NumQueries {
		t.Errorf("QueryCount = %d, want %d", got, cfg.NumQueries)
	}
	// With 8 queries over 4 shards, at least two shards must own queries.
	owners := 0
	for _, sh := range m.server.shards {
		if sh.QueryCount() > 0 {
			owners++
		}
	}
	if owners < 2 {
		t.Errorf("queries concentrated on %d shard(s)", owners)
	}
}

// Sharding is an interior change: the wireless traffic must be identical
// to the single-server method under the same trajectories.
func TestShardingDoesNotChangeTraffic(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 40

	single, err := core.New(proto())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.Run(cfg, single)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewMethod(3, proto())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(cfg, sharded)
	if err != nil {
		t.Fatal(err)
	}
	// Sends are deterministic per query state machine; shards only change
	// *interleaving*, which the per-direction totals are insensitive to.
	for _, d := range metrics.Directions() {
		if r1.Traffic.Sent(d) != r2.Traffic.Sent(d) {
			t.Errorf("%v traffic differs: %d vs %d",
				d, r1.Traffic.Sent(d), r2.Traffic.Sent(d))
		}
	}
}

func TestClientGoneFansToAllShards(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	now := model.Tick(1)
	side := &lockedSide{side: nullSide{}}
	s, err := New(3, proto().WithWorldDefault(world), core.ServerDeps{
		Side: side,
		Now:  func() model.Tick { return now },
		DT:   1, MaxObjectSpeed: 10, MaxQuerySpeed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Register three queries — they land on three different shards for
	// ids 1,2,3 with modulo routing.
	for q := model.QueryID(1); q <= 3; q++ {
		s.HandleUplink(model.ObjectID(900+q), protocol.QueryRegister{
			Query: q, K: 1, Pos: geo.Pt(500, 500), At: 1,
		})
	}
	if s.QueryCount() != 3 {
		t.Fatalf("QueryCount = %d", s.QueryCount())
	}
	// Focal client of query 2 vanishes: only that query dies.
	s.HandleClientGone(902)
	if s.QueryCount() != 2 {
		t.Fatalf("QueryCount after gone = %d, want 2", s.QueryCount())
	}
	if len(s.Answer(2).Neighbors) != 0 {
		t.Error("dead query still answers")
	}
	// Unknown-kind uplink is ignored.
	s.HandleUplink(1, protocol.LocationReport{Object: 1})
}

type nullSide struct{}

func (nullSide) Downlink(model.ObjectID, protocol.Message) {}
func (nullSide) Broadcast(geo.Circle, protocol.Message)    {}
