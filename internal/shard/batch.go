package shard

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Options selects the server's ingest discipline.
type Options struct {
	// Batched switches the server from synchronous ingest (HandleUplink
	// processes under the owning shard's lock before returning) to
	// batch-per-tick ingest: HandleUplink appends to a per-shard queue and
	// a Drain phase processes all queued arrivals shard-parallel. The
	// synchronous path is the oracle; the batched pipeline is proven
	// byte-identical to it on the client wire (see batch_property_test.go
	// and DESIGN.md).
	Batched bool
	// Workers bounds the worker pool Drain/Tick/Finalize run shards on in
	// batched mode. Zero means min(shards, GOMAXPROCS).
	Workers int
}

// ingestQueue is one shard's arrival buffer. Appends are serialized by
// the mutex (transport goroutines may enqueue concurrently); Drain swaps
// buf out under the same mutex, so processing never holds it.
type ingestQueue struct {
	mu   sync.Mutex
	buf  []core.Ingest
	proc []core.Ingest
}

// pendingSend is one deferred transmission captured by a shard's
// batchSide during a drain or tick, tagged with the ordering key that
// reconstructs the synchronous server's global send order.
type pendingSend struct {
	key       uint64
	broadcast bool
	to        model.ObjectID
	region    geo.Circle
	msg       protocol.Message
}

// batchSide is the ServerSide handed to one shard's core server in
// batched mode: sends are captured, not transmitted. The medium is only
// touched later by flushSends, on the driver goroutine, after the sends
// of all shards are merged back into arrival order. Each batchSide
// belongs to exactly one shard and a shard runs on one worker at a
// time, so no locking is needed.
//
// Two key regimes cover the two kinds of phases. During Drain, key is
// stamped per processed arrival with its global ingest sequence number
// (the before hook of core.HandleUplinkBatch), because the synchronous
// server emits sends in arrival order. During Tick/Finalize, byQuery is
// set and the key is the query id carried by the outgoing message,
// because the synchronous server iterates its queries in sorted id
// order and each query id lives on exactly one shard. The two regimes
// are never merged into one sort: flushSends runs once per phase.
type batchSide struct {
	key     uint64
	byQuery bool
	sends   []pendingSend
}

func (b *batchSide) sendKey(m protocol.Message) uint64 {
	if !b.byQuery {
		return b.key
	}
	if q, ok := protocol.QueryOf(m); ok {
		return uint64(uint32(q))
	}
	return 0
}

func (b *batchSide) Downlink(to model.ObjectID, m protocol.Message) {
	b.sends = append(b.sends, pendingSend{key: b.sendKey(m), to: to, msg: m})
}

func (b *batchSide) Broadcast(region geo.Circle, m protocol.Message) {
	b.sends = append(b.sends, pendingSend{key: b.sendKey(m), broadcast: true, region: region, msg: m})
}

// enqueue appends one arrival to the owning shard's queue. The sequence
// number is taken inside the queue lock so each queue's buffer order is
// seq-monotone even under concurrent transport goroutines.
func (s *Server) enqueue(q model.QueryID, from model.ObjectID, msg protocol.Message) {
	iq := &s.queues[int(uint32(q))%len(s.shards)]
	iq.mu.Lock()
	iq.buf = append(iq.buf, core.Ingest{Seq: s.seq.Add(1), From: from, Msg: msg})
	iq.mu.Unlock()
}

// enqueueGone appends a disconnect marker to every shard's queue: the
// vanished client may participate in queries of every shard, and the
// purge must hold its place in each shard's arrival order so a
// disconnect racing a drain is never lost (it lands either in the
// buffer being swapped out or in the fresh one — both get processed).
func (s *Server) enqueueGone(id model.ObjectID) {
	for i := range s.queues {
		iq := &s.queues[i]
		iq.mu.Lock()
		iq.buf = append(iq.buf, core.Ingest{Seq: s.seq.Add(1), From: id})
		iq.mu.Unlock()
	}
}

// Drain processes every queued arrival, shard-parallel on the bounded
// worker pool, then transmits the captured sends merged back into
// arrival order. It reports whether any arrival was processed. In
// synchronous mode it is a no-op, so drivers may call it
// unconditionally. Drain must run on the driver goroutine (the one that
// owns the medium); only the per-shard processing is parallel.
func (s *Server) Drain(now model.Tick) bool {
	if !s.opts.Batched {
		return false
	}
	any := false
	for i := range s.queues {
		iq := &s.queues[i]
		iq.mu.Lock()
		iq.buf, iq.proc = iq.proc[:0], iq.buf
		iq.mu.Unlock()
		if len(iq.proc) > 0 {
			any = true
		}
	}
	if !any {
		return false
	}
	s.parallelShards(func(i int, sh *core.Server) {
		side := s.sides[i]
		side.byQuery = false
		sh.HandleUplinkBatch(s.queues[i].proc, func(in core.Ingest) { side.key = in.Seq })
	})
	s.flushSends()
	return true
}

// flushSends merges the shards' captured sends into key order and
// transmits them on the real medium. The stable sort preserves each
// shard's emission order within a key, runs of adjacent broadcasts are
// handed to the medium as one batch when it supports that, and the time
// spent here is accounted as serialized driver work in BusyTime.
func (s *Server) flushSends() bool {
	merged := s.merged[:0]
	for _, side := range s.sides {
		merged = append(merged, side.sends...)
		side.sends = side.sends[:0]
	}
	s.merged = merged
	if len(merged) == 0 {
		return false
	}
	start := time.Now()
	slices.SortStableFunc(merged, func(a, b pendingSend) int { return cmp.Compare(a.key, b.key) })
	for i := 0; i < len(merged); {
		if !merged[i].broadcast {
			s.out.Downlink(merged[i].to, merged[i].msg)
			i++
			continue
		}
		j := i + 1
		for j < len(merged) && merged[j].broadcast {
			j++
		}
		if s.batchOut != nil && j-i > 1 {
			items := s.items[:0]
			for _, ps := range merged[i:j] {
				items = append(items, transport.BroadcastItem{Region: ps.region, Msg: ps.msg})
			}
			s.items = items
			s.batchOut.BroadcastBatch(items)
		} else {
			for _, ps := range merged[i:j] {
				s.out.Broadcast(ps.region, ps.msg)
			}
		}
		i = j
	}
	s.flushBusy += time.Since(start)
	return true
}

// parallelShards runs fn over every shard on at most s.workers
// goroutines, pulling shard indices from a shared counter.
func (s *Server) parallelShards(fn func(i int, sh *core.Server)) {
	w := s.workers
	if w > len(s.shards) {
		w = len(s.shards)
	}
	if w <= 1 || len(s.shards) == 1 {
		for i, sh := range s.shards {
			fn(i, sh)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					return
				}
				fn(i, s.shards[i])
			}
		}()
	}
	wg.Wait()
}

func defaultWorkers(n int) int {
	if p := runtime.GOMAXPROCS(0); p < n {
		return p
	}
	return n
}
