// Package shard scales the DKNN server across CPU cores: queries are
// partitioned over S independent core.Server instances ("shards"), each
// owning the complete monitor state of its query subset. Every protocol
// message after registration carries its query id, so routing is exact
// and shards share nothing; the per-tick maintenance work then runs in
// parallel.
//
// Two ingest disciplines are available (Options.Batched). The default
// synchronous mode processes each uplink under the owning shard's lock
// as it arrives. The batched mode turns HandleUplink into an enqueue
// onto a per-shard arrival queue and processes whole ticks of arrivals
// in a Drain phase, shard-parallel on a bounded worker pool, with the
// outgoing sends of all shards merged back into the synchronous server's
// global send order before they touch the medium. Both modes are
// byte-identical to the single-server DKNN on the client wire — the
// batched one by the ordering argument in DESIGN.md, pinned by the
// property tests in this package.
//
// This is the follow-up-literature "scalable distributed processing"
// extension: the wireless side of the protocol is unchanged (objects and
// query clients cannot tell they talk to a sharded server), only the
// server's interior is parallelized.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Server is a query-sharded DKNN server.
type Server struct {
	shards []*core.Server
	opts   Options

	// Batched-mode state (zero in synchronous mode). out is the real
	// medium; the core servers write to their shard's capture side
	// instead, and flushSends replays the merged sends onto out from the
	// driver goroutine. seq numbers arrivals globally so the merge can
	// reconstruct arrival order across queues.
	out      transport.ServerSide
	batchOut transport.BatchServerSide
	sides    []*batchSide
	queues   []ingestQueue
	seq      atomic.Uint64
	workers  int

	merged    []pendingSend
	items     []transport.BroadcastItem
	flushBusy time.Duration
}

// New builds a sharded server with n shards, all configured identically,
// in the default synchronous-ingest mode.
func New(n int, cfg core.Config, deps core.ServerDeps) (*Server, error) {
	return NewWithOptions(n, cfg, deps, Options{})
}

// NewWithOptions builds a sharded server with the given ingest options.
func NewWithOptions(n int, cfg core.Config, deps core.ServerDeps, opts Options) (*Server, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	s := &Server{shards: make([]*core.Server, n), opts: opts}
	if opts.Batched {
		if deps.Side == nil {
			return nil, fmt.Errorf("shard: batched mode needs a server side")
		}
		s.out = deps.Side
		s.batchOut, _ = deps.Side.(transport.BatchServerSide)
		s.sides = make([]*batchSide, n)
		s.queues = make([]ingestQueue, n)
		s.workers = opts.Workers
		if s.workers <= 0 {
			s.workers = defaultWorkers(n)
		}
	}
	for i := range s.shards {
		d := deps
		if opts.Batched {
			s.sides[i] = &batchSide{}
			d.Side = s.sides[i]
		}
		srv, err := core.NewServer(cfg, d)
		if err != nil {
			return nil, err
		}
		s.shards[i] = srv
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Batched reports whether the server runs the batched ingest pipeline.
func (s *Server) Batched() bool { return s.opts.Batched }

// shardFor routes a query id to its owning shard.
func (s *Server) shardFor(q model.QueryID) *core.Server {
	return s.shards[int(uint32(q))%len(s.shards)]
}

// HandleUplink implements transport.ServerHandler: messages route by the
// query id they carry; kinds without one (e.g. LocationReport) are
// dropped like the single server does. In batched mode this only
// enqueues — the message is processed at the next Drain.
func (s *Server) HandleUplink(from model.ObjectID, msg protocol.Message) {
	q, ok := protocol.QueryOf(msg)
	if !ok {
		return
	}
	if s.opts.Batched {
		s.enqueue(q, from, msg)
		return
	}
	s.shardFor(q).HandleUplink(from, msg)
}

// HandleClientGone implements transport.DisconnectHandler: a vanished
// client may participate in queries of every shard, so the purge fans
// out to all of them — in parallel in synchronous mode, and as a queued
// disconnect marker per shard in batched mode so the purge holds its
// place in each arrival order.
func (s *Server) HandleClientGone(id model.ObjectID) {
	if s.opts.Batched {
		s.enqueueGone(id)
		return
	}
	s.parallel(func(sh *core.Server) { sh.HandleClientGone(id) })
}

// Tick runs every shard's periodic work in parallel. In batched mode the
// captured sends are merged into sorted-query order — the synchronous
// server's Tick iteration order — and transmitted before returning; call
// Drain first to process the tick's arrivals.
func (s *Server) Tick(now model.Tick) {
	if s.opts.Batched {
		s.parallelShards(func(i int, sh *core.Server) {
			s.sides[i].byQuery = true
			sh.Tick(now)
		})
		s.flushSends()
		return
	}
	s.parallel(func(sh *core.Server) { sh.Tick(now) })
}

// Finalize runs every shard's probe conclusions in parallel; it reports
// whether any shard still has work. In batched mode it first drains the
// arrival queues (probe replies delivered since the last drain must be
// in state before rounds conclude) and transmits each phase's sends in
// the synchronous server's order.
func (s *Server) Finalize(now model.Tick) bool {
	if s.opts.Batched {
		drained := s.Drain(now)
		var concluded atomic.Bool
		s.parallelShards(func(i int, sh *core.Server) {
			s.sides[i].byQuery = true
			if sh.Finalize(now) {
				concluded.Store(true)
			}
		})
		s.flushSends()
		return drained || concluded.Load()
	}
	results := make([]bool, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *core.Server) {
			defer wg.Done()
			results[i] = sh.Finalize(now)
		}(i, sh)
	}
	wg.Wait()
	for _, r := range results {
		if r {
			return true
		}
	}
	return false
}

func (s *Server) parallel(fn func(*core.Server)) {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *core.Server) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// Answer returns the maintained answer for q from its owning shard.
func (s *Server) Answer(q model.QueryID) model.Answer {
	return s.shardFor(q).Answer(q)
}

// QueryCount returns the number of registered queries across all shards.
func (s *Server) QueryCount() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.QueryCount()
	}
	return total
}

// BusyTime returns the *maximum* per-shard processing time — the
// wall-clock critical path of the parallel server, which is what the
// scaling experiment measures — plus, in batched mode, the serialized
// driver time spent merging and transmitting sends.
func (s *Server) BusyTime() time.Duration {
	var max time.Duration
	for _, sh := range s.shards {
		if b := sh.BusyTime(); b > max {
			max = b
		}
	}
	return max + s.flushBusy
}

var (
	_ transport.ServerHandler     = (*Server)(nil)
	_ transport.DisconnectHandler = (*Server)(nil)
)
