// Package shard scales the DKNN server across CPU cores: queries are
// partitioned over S independent core.Server instances ("shards"), each
// owning the complete monitor state of its query subset. Every protocol
// message after registration carries its query id, so routing is exact
// and shards share nothing; the per-tick maintenance work then runs in
// parallel.
//
// This is the follow-up-literature "scalable distributed processing"
// extension: the wireless side of the protocol is unchanged (objects and
// query clients cannot tell they talk to a sharded server), only the
// server's interior is parallelized. Correctness is by construction —
// each query's state machine is byte-identical to the single-server one.
package shard

import (
	"fmt"
	"sync"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/transport"
)

// Server is a query-sharded DKNN server.
type Server struct {
	shards []*core.Server
}

// New builds a sharded server with n shards, all configured identically.
func New(n int, cfg core.Config, deps core.ServerDeps) (*Server, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	s := &Server{shards: make([]*core.Server, n)}
	for i := range s.shards {
		srv, err := core.NewServer(cfg, deps)
		if err != nil {
			return nil, err
		}
		s.shards[i] = srv
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// shardFor routes a query id to its owning shard.
func (s *Server) shardFor(q model.QueryID) *core.Server {
	return s.shards[int(uint32(q))%len(s.shards)]
}

// HandleUplink implements transport.ServerHandler: messages route by the
// query id they carry.
func (s *Server) HandleUplink(from model.ObjectID, msg protocol.Message) {
	switch v := msg.(type) {
	case protocol.QueryRegister:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.QueryMove:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.QueryDeregister:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.ProbeReply:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.EnterReport:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.ExitReport:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.LeaveReport:
		s.shardFor(v.Query).HandleUplink(from, msg)
	case protocol.MoveReport:
		s.shardFor(v.Query).HandleUplink(from, msg)
	default:
		// Kinds without a query id (e.g. LocationReport) are not part of
		// this protocol; drop like the single server does.
	}
}

// HandleClientGone implements transport.DisconnectHandler: a vanished
// client may participate in queries of every shard.
func (s *Server) HandleClientGone(id model.ObjectID) {
	for _, sh := range s.shards {
		sh.HandleClientGone(id)
	}
}

// Tick runs every shard's periodic work in parallel.
func (s *Server) Tick(now model.Tick) {
	s.parallel(func(sh *core.Server) { sh.Tick(now) })
}

// Finalize runs every shard's probe conclusions in parallel; it reports
// whether any shard still has work.
func (s *Server) Finalize(now model.Tick) bool {
	results := make([]bool, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *core.Server) {
			defer wg.Done()
			results[i] = sh.Finalize(now)
		}(i, sh)
	}
	wg.Wait()
	for _, r := range results {
		if r {
			return true
		}
	}
	return false
}

func (s *Server) parallel(fn func(*core.Server)) {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *core.Server) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// Answer returns the maintained answer for q from its owning shard.
func (s *Server) Answer(q model.QueryID) model.Answer {
	return s.shardFor(q).Answer(q)
}

// QueryCount returns the number of registered queries across all shards.
func (s *Server) QueryCount() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.QueryCount()
	}
	return total
}

// BusyTime returns the *maximum* per-shard processing time — the
// wall-clock critical path of the parallel server, which is what the
// scaling experiment measures.
func (s *Server) BusyTime() time.Duration {
	var max time.Duration
	for _, sh := range s.shards {
		if b := sh.BusyTime(); b > max {
			max = b
		}
	}
	return max
}

var (
	_ transport.ServerHandler     = (*Server)(nil)
	_ transport.DisconnectHandler = (*Server)(nil)
)
