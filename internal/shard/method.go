package shard

import (
	"fmt"
	"sync"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/transport"
)

// lockedSide serializes sends from concurrently ticking shards onto a
// medium that is not safe for concurrent use (the simulated network; the
// TCP transport would not need it).
type lockedSide struct {
	mu   sync.Mutex
	side transport.ServerSide
}

func (l *lockedSide) Downlink(to model.ObjectID, m protocol.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.side.Downlink(to, m)
}

func (l *lockedSide) Broadcast(region geo.Circle, m protocol.Message) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.side.Broadcast(region, m)
}

// Method plugs the sharded server into the simulation engine. The client
// side is identical to the single-server DKNN method; only the server's
// interior differs.
type Method struct {
	cfg    core.Config
	n      int
	opts   Options
	server *Server
	agents []*core.ObjectAgent
	qcs    []*core.QueryAgent
}

var _ sim.Method = (*Method)(nil)

// NewMethod returns a DKNN method whose server runs n shards with
// synchronous ingest.
func NewMethod(n int, cfg core.Config) (*Method, error) {
	return NewMethodWithOptions(n, cfg, Options{})
}

// NewBatchedMethod returns a DKNN method whose server runs n shards on
// the batched ingest pipeline (per-shard arrival queues drained once per
// tick, sends merged back into the synchronous order).
func NewBatchedMethod(n int, cfg core.Config) (*Method, error) {
	return NewMethodWithOptions(n, cfg, Options{Batched: true})
}

// NewMethodWithOptions returns a DKNN method whose server runs n shards
// with the given ingest options.
func NewMethodWithOptions(n int, cfg core.Config, opts Options) (*Method, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("shard: non-positive shard count %d", n)
	}
	return &Method{cfg: cfg, n: n, opts: opts}, nil
}

// Name implements sim.Method.
func (m *Method) Name() string {
	if m.opts.Batched {
		return "dknn-batched"
	}
	return "dknn-sharded"
}

// Setup implements sim.Method.
func (m *Method) Setup(env *sim.Env) error {
	m.cfg = m.cfg.WithWorldDefault(env.World)
	// In synchronous mode the shards send mid-tick from their own
	// goroutines, so the medium needs a serializing wrapper. In batched
	// mode the shards write to capture buffers and the medium is only
	// touched by flushSends on the engine goroutine, so the side is used
	// directly — which is also what lets the medium see whole-drain
	// broadcast batches.
	var side transport.ServerSide = env.Net.ServerSide()
	if !m.opts.Batched {
		side = &lockedSide{side: side}
	}
	srv, err := NewWithOptions(m.n, m.cfg, core.ServerDeps{
		Side:           side,
		Now:            env.Net.Now,
		DT:             env.DT,
		MaxObjectSpeed: env.MaxObjectSpeed,
		MaxQuerySpeed:  env.MaxQuerySpeed,
		LatencyTicks:   env.LatencyTicks,
	}, m.opts)
	if err != nil {
		return err
	}
	m.server = srv
	env.Net.AttachServer(srv)

	m.agents = make([]*core.ObjectAgent, len(env.Objects))
	for i := range m.agents {
		id := model.ObjectID(i + 1)
		idx := i
		agent, err := core.NewObjectAgent(m.cfg, core.AgentDeps{
			ID:           id,
			Side:         env.Net.ClientSide(id),
			Now:          env.Net.Now,
			Pos:          func() geo.Point { return env.Objects[idx].Pos },
			DT:           env.DT,
			LatencyTicks: env.LatencyTicks,
		})
		if err != nil {
			return err
		}
		m.agents[i] = agent
		env.Net.AttachClient(id, agent)
	}
	m.qcs = make([]*core.QueryAgent, len(env.Queries))
	for i := range m.qcs {
		idx := i
		addr := env.Queries[i].State.ID
		qa, err := core.NewQueryAgent(m.cfg, env.Queries[i].Spec, core.QueryAgentDeps{
			AgentDeps: core.AgentDeps{
				ID:           addr,
				Side:         env.Net.ClientSide(addr),
				Now:          env.Net.Now,
				Pos:          func() geo.Point { return env.Queries[idx].State.Pos },
				DT:           env.DT,
				LatencyTicks: env.LatencyTicks,
			},
			Vel: func() geo.Vector { return env.Queries[idx].State.Vel },
		})
		if err != nil {
			return err
		}
		m.qcs[i] = qa
		env.Net.AttachClient(addr, qa)
	}
	return nil
}

// ClientTick implements sim.Method.
func (m *Method) ClientTick(now model.Tick) {
	for _, qc := range m.qcs {
		qc.Tick(now)
	}
	for _, a := range m.agents {
		a.Tick(now)
	}
}

// ServerTick implements sim.Method: in batched mode the arrivals
// delivered since the last tick are drained first, exactly where the
// synchronous server would have processed them.
func (m *Method) ServerTick(now model.Tick) {
	m.server.Drain(now)
	m.server.Tick(now)
}

// Finalize implements sim.Method.
func (m *Method) Finalize(now model.Tick) bool { return m.server.Finalize(now) }

// Answer implements sim.Method (the focal client's view).
func (m *Method) Answer(q model.QueryID) model.Answer {
	qi := int(q) - 1
	if qi < 0 || qi >= len(m.qcs) {
		return model.Answer{Query: q}
	}
	return m.qcs[qi].Answer()
}

// ServerTime implements sim.Method: the parallel critical path.
func (m *Method) ServerTime() time.Duration { return m.server.BusyTime() }
