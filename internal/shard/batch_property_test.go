package shard

import (
	"fmt"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/obs"
	"dmknn/internal/sim"
	"dmknn/internal/simnet"
	"dmknn/internal/workload"
)

// wireTrace collects the network-level event stream of one run: every
// send, delivery, and drop the medium performs, in order. Protocol
// lifecycle events (Dir < 0) are excluded — the single server emits them
// and the sharded server does not, and in batched mode the shards would
// emit them from worker goroutines in nondeterministic relative order.
// The net events are emitted by the medium itself on the engine
// goroutine, so the stream is a deterministic, complete description of
// the client wire.
type wireTrace struct {
	events []obs.Event
}

func (w *wireTrace) Record(e obs.Event) {
	if e.Dir < 0 {
		return
	}
	w.events = append(w.events, e)
}

type wireRun struct {
	trace *wireTrace
	net   interface {
		RNGBurn() (float64, float64)
	}
	counters  *metrics.Counters
	dups      [3]uint64
	baseBurn  float64
	faultBurn float64
	answers   []model.Answer
}

// runWire drives a method through ticks steps of the engine and returns
// its complete wire transcript plus final RNG stream positions.
func runWire(t *testing.T, cfg sim.Config, mk func() (sim.Method, error), ticks int) *wireRun {
	t.Helper()
	w := &wireRun{trace: &wireTrace{}}
	cfg.Trace = w.trace
	method, err := mk()
	if err != nil {
		t.Fatalf("build method: %v", err)
	}
	eng, err := sim.NewEngine(cfg, method)
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	for i := 0; i < ticks; i++ {
		if err := eng.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	net := eng.Env().Net
	w.counters = net.Counters()
	for _, dir := range metrics.Directions() {
		w.dups[dir] = net.Duplicated(dir)
	}
	for q := model.QueryID(1); q <= model.QueryID(cfg.NumQueries); q++ {
		w.answers = append(w.answers, method.Answer(q))
	}
	w.baseBurn, w.faultBurn = net.RNGBurn()
	return w
}

// compareWires asserts two runs are equivalent on the wire. In strict
// mode (zero-latency scenarios) the send-event sequence and the
// delivery/drop-event sequence must each be byte-identical: with L=0 the
// flush cascade alternates pure uplink and pure downlink generations, so
// deferring the server's responses to the drain shifts phase boundaries
// without reordering a single transmission or delivery — and therefore
// without moving a single loss draw. With latency, one flush round mixes
// uplinks with reaction-triggering broadcasts and the synchronous server
// interleaves its responses among the clients' reactions, so the
// cross-direction interleaving legitimately differs; relaxed mode
// compares the per-direction subsequences instead (lossless scenarios
// only, since the loss generators draw across directions in interleaved
// order). Counters, final RNG stream positions, and client-visible
// answers must always match.
func compareWires(t *testing.T, label string, strict bool, want, got *wireRun) {
	t.Helper()
	if strict {
		compareStreams(t, label+"/sends", sel(want.trace.events, func(e obs.Event) bool { return e.Type == obs.EvNetSend }),
			sel(got.trace.events, func(e obs.Event) bool { return e.Type == obs.EvNetSend }))
		compareStreams(t, label+"/delivery", sel(want.trace.events, func(e obs.Event) bool { return e.Type != obs.EvNetSend }),
			sel(got.trace.events, func(e obs.Event) bool { return e.Type != obs.EvNetSend }))
	} else {
		for _, dir := range metrics.Directions() {
			d := int8(dir)
			compareStreams(t, fmt.Sprintf("%s/dir=%d/sends", label, dir),
				sel(want.trace.events, func(e obs.Event) bool { return e.Dir == d && e.Type == obs.EvNetSend }),
				sel(got.trace.events, func(e obs.Event) bool { return e.Dir == d && e.Type == obs.EvNetSend }))
			compareStreams(t, fmt.Sprintf("%s/dir=%d/delivery", label, dir),
				sel(want.trace.events, func(e obs.Event) bool { return e.Dir == d && e.Type != obs.EvNetSend }),
				sel(got.trace.events, func(e obs.Event) bool { return e.Dir == d && e.Type != obs.EvNetSend }))
		}
	}
	for _, dir := range metrics.Directions() {
		if want.counters.Sent(dir) != got.counters.Sent(dir) ||
			want.counters.SentBytes(dir) != got.counters.SentBytes(dir) ||
			want.counters.Delivered(dir) != got.counters.Delivered(dir) ||
			want.counters.Dropped(dir) != got.counters.Dropped(dir) {
			t.Errorf("%s: dir %v counters differ: sent %d/%d bytes %d/%d delivered %d/%d dropped %d/%d",
				label, dir,
				want.counters.Sent(dir), got.counters.Sent(dir),
				want.counters.SentBytes(dir), got.counters.SentBytes(dir),
				want.counters.Delivered(dir), got.counters.Delivered(dir),
				want.counters.Dropped(dir), got.counters.Dropped(dir))
		}
		if want.dups[dir] != got.dups[dir] {
			t.Errorf("%s: dir %v duplicated %d vs %d", label, dir, want.dups[dir], got.dups[dir])
		}
	}
	if want.baseBurn != got.baseBurn {
		t.Errorf("%s: base loss RNG streams diverged", label)
	}
	if want.faultBurn != got.faultBurn {
		t.Errorf("%s: fault RNG streams diverged", label)
	}
	for i := range want.answers {
		a, b := want.answers[i], got.answers[i]
		if a.Query != b.Query || a.At != b.At || len(a.Neighbors) != len(b.Neighbors) {
			t.Fatalf("%s: answer %d differs: %+v vs %+v", label, i, a, b)
		}
		for j := range a.Neighbors {
			if a.Neighbors[j] != b.Neighbors[j] {
				t.Fatalf("%s: answer %d neighbor %d differs", label, i, j)
			}
		}
	}
}

func sel(events []obs.Event, keep func(obs.Event) bool) []obs.Event {
	var out []obs.Event
	for _, e := range events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

func compareStreams(t *testing.T, label string, want, got []obs.Event) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		a, b := want[i], got[i]
		if a.At != b.At || a.Type != b.Type || a.Dir != b.Dir || a.Object != b.Object || a.Kind != b.Kind {
			t.Fatalf("%s: event %d differs:\n sync    %+v\n batched %+v", label, i, a, b)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: %d events (sync) vs %d (batched); first %d identical", label, len(want), len(got), n)
	}
}

func propertyBase(seed int64) sim.Config {
	cfg := workload.Quick()
	cfg.NumObjects = 300
	cfg.Seed = seed
	return cfg
}

// The tentpole equivalence property: the batched ingest pipeline — at
// shard counts 1, 2, and 8 — is byte-identical on the client wire to the
// synchronous single server, across 8 seeds and a matrix of network
// conditions: zero and one tick of latency, plain loss on every
// direction, Gilbert–Elliott burst loss, and delta answers. Sequences,
// counters, and RNG stream positions must all match.
//
// Jitter and duplication are deliberately out of scope: both draw
// faults at enqueue time, where a broadcast batch is one queue entry
// against the loop's many, and a jitter-delayed uplink's response is
// emitted at the next drain rather than mid-flush. Delta answers are
// paired with zero loss because a delta-sequence gap makes the client
// uplink an AnswerResync synchronously from its downlink handler — the
// one message the queued pipeline processes a phase later than the
// synchronous server. DESIGN.md gives the full ordering argument.
func TestBatchedPipelineWireIdentity(t *testing.T) {
	proto := proto()
	delta := proto
	delta.DeltaAnswers = true
	delta.ResyncTicks = 16

	type scenario struct {
		name   string
		strict bool
		proto  core.Config
		mut    func(*sim.Config)
	}
	scenarios := []scenario{
		{name: "clean-L0", strict: true, proto: proto, mut: func(c *sim.Config) {}},
		{name: "loss-L0", strict: true, proto: proto, mut: func(c *sim.Config) {
			c.UplinkLoss = 0.08
			c.DownlinkLoss = 0.05
			c.BroadcastLoss = 0.12
		}},
		{name: "burst-L0", strict: true, proto: proto, mut: func(c *sim.Config) {
			c.UplinkLoss = 0.05
			c.Faults.BroadcastGE = simnet.BurstLoss(0.2, 4)
			c.Faults.UplinkGE = simnet.BurstLoss(0.1, 3)
		}},
		{name: "delta-L0", strict: true, proto: delta, mut: func(c *sim.Config) {}},
		{name: "clean-L1", strict: false, proto: proto, mut: func(c *sim.Config) {
			c.LatencyTicks = 1
		}},
		{name: "delta-L2", strict: false, proto: delta, mut: func(c *sim.Config) {
			c.LatencyTicks = 2
		}},
	}

	const ticks = 45
	for seed := int64(1); seed <= 8; seed++ {
		for _, sc := range scenarios {
			sc := sc
			seed := seed
			t.Run(fmt.Sprintf("seed=%d/%s", seed, sc.name), func(t *testing.T) {
				t.Parallel()
				cfg := propertyBase(seed)
				sc.mut(&cfg)
				sync := runWire(t, cfg, func() (sim.Method, error) { return core.New(sc.proto) }, ticks)
				for _, shards := range []int{1, 2, 8} {
					batched := runWire(t, cfg, func() (sim.Method, error) {
						return NewBatchedMethod(shards, sc.proto)
					}, ticks)
					compareWires(t, fmt.Sprintf("shards=%d", shards), sc.strict, sync, batched)
				}
			})
		}
	}
}
