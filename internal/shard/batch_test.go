package shard

import (
	"fmt"
	"sync"
	"testing"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/protocol"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

func newBatchedForTest(t *testing.T, n int) *Server {
	t.Helper()
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	srv, err := NewWithOptions(n, proto().WithWorldDefault(world), core.ServerDeps{
		Side: nullSide{},
		Now:  func() model.Tick { return 1 },
		DT:   1, MaxObjectSpeed: 10, MaxQuerySpeed: 10,
	}, Options{Batched: true})
	if err != nil {
		t.Fatalf("NewWithOptions: %v", err)
	}
	return srv
}

// A disconnect enqueued between a registration and the drain must purge
// the query: the marker holds its place in each shard's arrival order.
func TestBatchedClientGoneOrderedWithinDrain(t *testing.T) {
	srv := newBatchedForTest(t, 3)
	for q := 1; q <= 3; q++ {
		srv.HandleUplink(model.ObjectID(900+q), protocol.QueryRegister{
			Query: model.QueryID(q), Pos: geo.Pt(100*float64(q), 100), K: 2, At: 1,
		})
	}
	// Disconnect query 2's focal client before anything is processed,
	// then register a query after the disconnect: arrival order says the
	// register of query 4 survives, query 2 does not.
	srv.HandleClientGone(902)
	srv.HandleUplink(904, protocol.QueryRegister{
		Query: 4, Pos: geo.Pt(400, 100), K: 2, At: 1,
	})
	if got := srv.QueryCount(); got != 0 {
		t.Fatalf("before drain: %d queries processed, want 0 (ingest is deferred)", got)
	}
	if !srv.Drain(1) {
		t.Fatal("Drain processed nothing")
	}
	if got := srv.QueryCount(); got != 3 {
		t.Fatalf("after drain: %d queries, want 3 (queries 1, 3, 4)", got)
	}
	if srv.Drain(1) {
		t.Fatal("second Drain should be empty")
	}
}

// A disconnect racing a concurrent drain must never be lost: whichever
// buffer it lands in (the one being swapped out or the fresh one), a
// subsequent drain applies it. Run with -race in CI.
func TestBatchedClientGoneDuringDrainNotLost(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		srv := newBatchedForTest(t, 4)
		for q := 1; q <= 8; q++ {
			srv.HandleUplink(model.ObjectID(900+q), protocol.QueryRegister{
				Query: model.QueryID(q), Pos: geo.Pt(100*float64(q), 100), K: 2, At: 1,
			})
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.HandleClientGone(903) // query 3's focal client
		}()
		srv.Drain(1)
		wg.Wait()
		srv.Drain(1) // applies the marker if it missed the first swap
		if got := srv.QueryCount(); got != 7 {
			t.Fatalf("trial %d: %d queries, want 7 (query 3 purged)", trial, got)
		}
	}
}

// Synchronous mode still fans a disconnect out to every shard (now in
// parallel); the behavior TestClientGoneFansToAllShards pins is
// unchanged.
func TestBatchedServerReportsMode(t *testing.T) {
	srv := newBatchedForTest(t, 2)
	if !srv.Batched() {
		t.Error("Batched() = false for batched server")
	}
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	plain, err := New(2, proto().WithWorldDefault(world), core.ServerDeps{
		Side: nullSide{},
		Now:  func() model.Tick { return 1 },
		DT:   1, MaxObjectSpeed: 10, MaxQuerySpeed: 10,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if plain.Batched() {
		t.Error("Batched() = true for synchronous server")
	}
	if plain.Drain(1) {
		t.Error("Drain on a synchronous server must be a no-op")
	}
}

// The batched pipeline must deliver the same exact answers as any other
// DKNN variant on a clean network.
func TestBatchedExactness(t *testing.T) {
	cfg := workload.Quick()
	cfg.Ticks = 60
	m, err := NewBatchedMethod(4, proto())
	if err != nil {
		t.Fatalf("NewBatchedMethod: %v", err)
	}
	res, err := sim.Run(cfg, m)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Audit.Exactness() < 1.0 {
		t.Errorf("batched exactness %.4f, want 1.0", res.Audit.Exactness())
	}
}

// BenchmarkBatchedPipeline exercises the full drain/merge/flush path end
// to end on a small workload; CI runs it with -benchtime=1x under -race
// so the queue and worker-pool code is raced on every push.
func BenchmarkBatchedPipeline(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := workload.Quick()
			cfg.Ticks = 20
			cfg.Warmup = 5
			cfg.DisableAudit = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := NewBatchedMethod(shards, proto())
				if err != nil {
					b.Fatalf("NewBatchedMethod: %v", err)
				}
				if _, err := sim.Run(cfg, m); err != nil {
					b.Fatalf("run: %v", err)
				}
			}
		})
	}
}
