// Package workload defines the experiment scenarios: named presets of the
// simulation configuration matching the reconstructed evaluation setup in
// DESIGN.md, plus the mobility-model factories the sweeps select from.
package workload

import (
	"fmt"

	"dmknn/internal/geo"
	"dmknn/internal/mobility"
	"dmknn/internal/sim"
)

// Mobility model kind names accepted by ModelFactory.
const (
	ModelWaypoint  = "waypoint"
	ModelDirection = "direction"
	ModelManhattan = "manhattan"
	ModelHotspot   = "hotspot"
)

// ModelFactory returns a seed-parameterized constructor for the named
// mobility model over the given world and speed range.
//
// Model-specific shape parameters are fixed to the evaluation defaults:
// no pause for waypoint, 15-tick mean legs for direction, 500 m blocks
// with 30% turn probability for manhattan, and for hotspot five Gaussian
// clusters with σ = world-width/40 plus a 10% uniform background.
func ModelFactory(kind string, world geo.Rect, vmin, vmax float64) (func(seed int64) (mobility.Model, error), error) {
	cfg := func(seed int64) mobility.Config {
		return mobility.Config{World: world, MinSpeed: vmin, MaxSpeed: vmax, Seed: seed}
	}
	switch kind {
	case ModelWaypoint:
		return func(seed int64) (mobility.Model, error) {
			return mobility.NewRandomWaypoint(cfg(seed), 0)
		}, nil
	case ModelDirection:
		return func(seed int64) (mobility.Model, error) {
			return mobility.NewRandomDirection(cfg(seed), 15)
		}, nil
	case ModelManhattan:
		return func(seed int64) (mobility.Model, error) {
			return mobility.NewManhattan(cfg(seed), 500, 0.3)
		}, nil
	case ModelHotspot:
		return func(seed int64) (mobility.Model, error) {
			return mobility.NewHotspot(cfg(seed), 5, world.Width()/40, 0.1)
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown mobility model %q", kind)
	}
}

// mustFactory is ModelFactory for the known-good built-in kinds.
func mustFactory(kind string, world geo.Rect, vmin, vmax float64) func(seed int64) (mobility.Model, error) {
	f, err := ModelFactory(kind, world, vmin, vmax)
	if err != nil {
		panic(err)
	}
	return f
}

// Default returns the headline experiment configuration from DESIGN.md:
// 10 km × 10 km world, 64×64 grid, 20 000 objects, 64 queries, k = 10,
// both populations random-waypoint at up to 20 m/s, 400 measured ticks
// after a 50-tick warmup.
func Default() sim.Config {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000))
	return sim.Config{
		World:          world,
		Cols:           64,
		Rows:           64,
		NumObjects:     20000,
		NumQueries:     64,
		K:              10,
		DT:             1,
		MaxObjectSpeed: 20,
		MaxQuerySpeed:  20,
		Ticks:          400,
		Warmup:         50,
		Seed:           1,
		ObjectModel:    mustFactory(ModelWaypoint, world, 5, 20),
		QueryModel:     mustFactory(ModelWaypoint, world, 5, 20),
	}
}

// Quick returns a small configuration suitable for unit tests, examples,
// and smoke benchmarks: 1 km × 1 km world, 16×16 grid, 600 objects, 8
// queries, k = 5, 120 measured ticks after a 10-tick warmup. Speeds are
// scaled down with the world so the safety slack stays a small fraction
// of it.
func Quick() sim.Config {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	return sim.Config{
		World:          world,
		Cols:           16,
		Rows:           16,
		NumObjects:     600,
		NumQueries:     8,
		K:              5,
		DT:             1,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  10,
		Ticks:          120,
		Warmup:         10,
		Seed:           1,
		ObjectModel:    mustFactory(ModelWaypoint, world, 2, 10),
		QueryModel:     mustFactory(ModelWaypoint, world, 2, 10),
	}
}

// WithObjects returns cfg resized to n objects.
func WithObjects(cfg sim.Config, n int) sim.Config {
	cfg.NumObjects = n
	return cfg
}

// WithQueries returns cfg resized to q queries.
func WithQueries(cfg sim.Config, q int) sim.Config {
	cfg.NumQueries = q
	return cfg
}

// WithK returns cfg with the kNN parameter set to k.
func WithK(cfg sim.Config, k int) sim.Config {
	cfg.K = k
	return cfg
}

// WithObjectSpeed returns cfg with the object speed range set to
// [vmax/4, vmax] and the protocol speed bound to vmax.
func WithObjectSpeed(cfg sim.Config, vmax float64) sim.Config {
	cfg.MaxObjectSpeed = vmax
	cfg.ObjectModel = mustFactory(ModelWaypoint, cfg.World, vmax/4, vmax)
	return cfg
}

// WithQuerySpeed returns cfg with the query speed range set to
// [vmax/4, vmax] (or pinned stationary for vmax == 0) and the protocol
// speed bound to vmax.
func WithQuerySpeed(cfg sim.Config, vmax float64) sim.Config {
	cfg.MaxQuerySpeed = vmax
	lo := vmax / 4
	cfg.QueryModel = mustFactory(ModelWaypoint, cfg.World, lo, vmax)
	return cfg
}

// WithMobility returns cfg with both populations using the named model.
func WithMobility(cfg sim.Config, kind string) (sim.Config, error) {
	of, err := ModelFactory(kind, cfg.World, cfg.MaxObjectSpeed/4, cfg.MaxObjectSpeed)
	if err != nil {
		return cfg, err
	}
	qf, err := ModelFactory(kind, cfg.World, cfg.MaxQuerySpeed/4, cfg.MaxQuerySpeed)
	if err != nil {
		return cfg, err
	}
	cfg.ObjectModel = of
	cfg.QueryModel = qf
	return cfg, nil
}
