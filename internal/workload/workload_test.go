package workload

import (
	"testing"

	"dmknn/internal/geo"
)

func TestPresetsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick invalid: %v", err)
	}
}

func TestModelFactoryKinds(t *testing.T) {
	world := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	for _, kind := range []string{ModelWaypoint, ModelDirection, ModelManhattan} {
		f, err := ModelFactory(kind, world, 1, 5)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		m, err := f(1)
		if err != nil {
			t.Fatalf("%s construct: %v", kind, err)
		}
		if m.Name() == "" {
			t.Errorf("%s: empty model name", kind)
		}
	}
	if _, err := ModelFactory("bogus", world, 1, 5); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBuilders(t *testing.T) {
	cfg := Quick()
	if got := WithObjects(cfg, 1234).NumObjects; got != 1234 {
		t.Errorf("WithObjects = %d", got)
	}
	if got := WithQueries(cfg, 99).NumQueries; got != 99 {
		t.Errorf("WithQueries = %d", got)
	}
	if got := WithK(cfg, 42).K; got != 42 {
		t.Errorf("WithK = %d", got)
	}
	sp := WithObjectSpeed(cfg, 40)
	if sp.MaxObjectSpeed != 40 {
		t.Errorf("WithObjectSpeed bound = %v", sp.MaxObjectSpeed)
	}
	if err := sp.Validate(); err != nil {
		t.Errorf("speed-modified config invalid: %v", err)
	}
	qs := WithQuerySpeed(cfg, 0)
	if qs.MaxQuerySpeed != 0 {
		t.Errorf("WithQuerySpeed bound = %v", qs.MaxQuerySpeed)
	}
	if err := qs.Validate(); err != nil {
		t.Errorf("stationary-query config invalid: %v", err)
	}
	mb, err := WithMobility(cfg, ModelManhattan)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(); err != nil {
		t.Errorf("mobility-modified config invalid: %v", err)
	}
	if _, err := WithMobility(cfg, "bogus"); err == nil {
		t.Error("bogus mobility accepted")
	}
	// Builders must not mutate the original.
	if cfg.NumObjects != Quick().NumObjects {
		t.Error("builder mutated input config")
	}
}

func TestModifiedConfigsConstructModels(t *testing.T) {
	cfg := WithObjectSpeed(Quick(), 40)
	m, err := cfg.ObjectModel(3)
	if err != nil {
		t.Fatal(err)
	}
	states := m.Init(10)
	if len(states) != 10 {
		t.Fatal("Init failed")
	}
}
