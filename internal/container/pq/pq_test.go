package pq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMinBasic(t *testing.T) {
	h := NewMin[string](4)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	if pri, val := h.Peek(); pri != 1 || val != "a" {
		t.Fatalf("Peek = %v %v", pri, val)
	}
	order := []string{"a", "b", "c"}
	for i, want := range order {
		pri, val := h.Pop()
		if val != want {
			t.Errorf("pop %d = %q (pri %v), want %q", i, val, pri, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty")
	}
}

func TestMinRandomOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewMin[int](0)
	const n = 2000
	pris := make([]float64, n)
	for i := range pris {
		pris[i] = rng.Float64() * 1000
		h.Push(pris[i], i)
	}
	sort.Float64s(pris)
	for i := 0; i < n; i++ {
		pri, _ := h.Pop()
		if pri != pris[i] {
			t.Fatalf("pop %d priority %v, want %v", i, pri, pris[i])
		}
	}
}

func TestMinDuplicatePriorities(t *testing.T) {
	h := NewMin[int](0)
	for i := 0; i < 10; i++ {
		h.Push(5, i)
	}
	h.Push(1, -1)
	if pri, val := h.Pop(); pri != 1 || val != -1 {
		t.Fatalf("expected unique min first, got %v %v", pri, val)
	}
	seen := map[int]bool{}
	for h.Len() > 0 {
		pri, val := h.Pop()
		if pri != 5 {
			t.Fatalf("unexpected priority %v", pri)
		}
		seen[val] = true
	}
	if len(seen) != 10 {
		t.Fatalf("lost values: %d distinct", len(seen))
	}
}

func TestMinReset(t *testing.T) {
	h := NewMin[int](0)
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(9, 9)
	if pri, v := h.Pop(); pri != 9 || v != 9 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestBoundedMaxKeepsKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(20)
		n := rng.Intn(200)
		h := NewBoundedMax[int](k)
		all := make([]float64, n)
		for i := 0; i < n; i++ {
			all[i] = rng.Float64() * 100
			h.Offer(all[i], i)
		}
		sort.Float64s(all)
		want := all
		if n > k {
			want = all[:k]
		}
		pris, vals := h.Drain()
		if len(pris) != len(want) || len(vals) != len(want) {
			t.Fatalf("drained %d, want %d", len(pris), len(want))
		}
		for i := range want {
			if pris[i] != want[i] {
				t.Fatalf("trial %d: drained[%d] = %v, want %v", trial, i, pris[i], want[i])
			}
		}
		if h.Len() != 0 {
			t.Fatal("Drain did not empty")
		}
	}
}

func TestBoundedMaxOfferSemantics(t *testing.T) {
	h := NewBoundedMax[string](2)
	if h.Full() {
		t.Fatal("empty accumulator reported full")
	}
	if !h.Offer(5, "a") || !h.Offer(3, "b") {
		t.Fatal("offers below capacity must be kept")
	}
	if !h.Full() {
		t.Fatal("should be full")
	}
	if h.Worst() != 5 {
		t.Fatalf("Worst = %v, want 5", h.Worst())
	}
	if h.Offer(7, "c") {
		t.Fatal("worse candidate kept")
	}
	if h.Offer(5, "d") {
		t.Fatal("equal candidate should be rejected (keeps first)")
	}
	if !h.Offer(1, "e") {
		t.Fatal("better candidate rejected")
	}
	if h.Worst() != 3 {
		t.Fatalf("Worst after eviction = %v, want 3", h.Worst())
	}
	_, vals := h.Drain()
	if vals[0] != "e" || vals[1] != "b" {
		t.Fatalf("Drain order = %v", vals)
	}
}

func TestBoundedMaxPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewBoundedMax[int](0)
}

func TestBoundedMaxReset(t *testing.T) {
	h := NewBoundedMax[int](3)
	h.Offer(1, 1)
	h.Reset()
	if h.Len() != 0 || h.Full() {
		t.Fatal("Reset failed")
	}
}

func BenchmarkBoundedMaxOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pris := make([]float64, 4096)
	for i := range pris {
		pris[i] = rng.Float64()
	}
	h := NewBoundedMax[int](16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Offer(pris[i&4095], i)
	}
}
