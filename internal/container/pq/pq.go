// Package pq provides small generic binary heaps used by the kNN search
// paths: a min-heap for best-first cell expansion ordered by minimum
// distance, and a bounded max-heap that maintains the current k nearest
// candidates.
//
// Both are deliberately simpler and faster for this workload than
// container/heap: no interface indirection, no interface{} boxing, and the
// bounded heap fuses the "push then pop if over capacity" sequence that
// dominates kNN inner loops.
package pq

// Min is a binary min-heap of items ordered by a float64 priority.
type Min[T any] struct {
	items []entry[T]
}

type entry[T any] struct {
	pri float64
	val T
}

// NewMin returns an empty min-heap with the given initial capacity.
func NewMin[T any](capacity int) *Min[T] {
	return &Min[T]{items: make([]entry[T], 0, capacity)}
}

// Len returns the number of items in the heap.
func (h *Min[T]) Len() int { return len(h.items) }

// Push adds val with the given priority.
func (h *Min[T]) Push(pri float64, val T) {
	h.items = append(h.items, entry[T]{pri, val})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the item with the smallest priority. It must not
// be called on an empty heap.
func (h *Min[T]) Pop() (float64, T) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top.pri, top.val
}

// Peek returns the smallest priority and its value without removing it. It
// must not be called on an empty heap.
func (h *Min[T]) Peek() (float64, T) {
	return h.items[0].pri, h.items[0].val
}

// Reset empties the heap, retaining capacity.
func (h *Min[T]) Reset() { h.items = h.items[:0] }

func (h *Min[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].pri <= h.items[i].pri {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Min[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].pri < h.items[smallest].pri {
			smallest = l
		}
		if r < n && h.items[r].pri < h.items[smallest].pri {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// BoundedMax is a max-heap holding at most K items: the K smallest
// priorities ever offered. It is the classic top-k accumulator for kNN:
// offer every candidate, and the heap keeps the k nearest.
type BoundedMax[T any] struct {
	k     int
	items []entry[T]
}

// NewBoundedMax returns a top-k accumulator for the k smallest priorities.
// k must be positive.
func NewBoundedMax[T any](k int) *BoundedMax[T] {
	if k <= 0 {
		panic("pq: BoundedMax requires k > 0")
	}
	return &BoundedMax[T]{k: k, items: make([]entry[T], 0, k)}
}

// Len returns the number of items currently held (<= k).
func (h *BoundedMax[T]) Len() int { return len(h.items) }

// Full reports whether the accumulator holds k items.
func (h *BoundedMax[T]) Full() bool { return len(h.items) == h.k }

// Worst returns the largest priority currently held (the k-th best so
// far). It must not be called on an empty accumulator.
func (h *BoundedMax[T]) Worst() float64 { return h.items[0].pri }

// Offer considers a candidate. It is accepted if the accumulator is not yet
// full or if pri improves on the current worst; in the latter case the
// worst is evicted. Returns whether the candidate was kept.
func (h *BoundedMax[T]) Offer(pri float64, val T) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, entry[T]{pri, val})
		h.up(len(h.items) - 1)
		return true
	}
	if pri >= h.items[0].pri {
		return false
	}
	h.items[0] = entry[T]{pri, val}
	h.down(0)
	return true
}

// Drain removes all items and returns them ordered by ascending priority.
// The accumulator is empty afterwards.
func (h *BoundedMax[T]) Drain() (pris []float64, vals []T) {
	n := len(h.items)
	pris = make([]float64, n)
	vals = make([]T, n)
	for i := n - 1; i >= 0; i-- {
		pris[i], vals[i] = h.popMax()
	}
	return pris, vals
}

// Reset empties the accumulator, retaining capacity.
func (h *BoundedMax[T]) Reset() { h.items = h.items[:0] }

func (h *BoundedMax[T]) popMax() (float64, T) {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top.pri, top.val
}

func (h *BoundedMax[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].pri >= h.items[i].pri {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *BoundedMax[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].pri > h.items[largest].pri {
			largest = l
		}
		if r < n && h.items[r].pri > h.items[largest].pri {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}
