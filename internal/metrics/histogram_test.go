package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0, 1, 1.5, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	_, counts := h.Buckets()
	// (-inf,1]=2  (1,2]=2  (2,4]=1  (4,8]=1  overflow=2
	want := []uint64{2, 2, 1, 1, 2}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2 (upper bound of the 4th sample's bucket)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want first bucket bound 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want observed max 100", got)
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v, want 100", h.Max())
	}
	if got := h.Mean(); got != (0+1+1.5+2+3+5+9+100)/8 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(TickBuckets()...)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramMergeMatchesSingleCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	whole := NewHistogram(TickBuckets()...)
	parts := []*Histogram{
		NewHistogram(TickBuckets()...),
		NewHistogram(TickBuckets()...),
		NewHistogram(TickBuckets()...),
	}
	for i := 0; i < 3000; i++ {
		v := rng.Float64() * 300
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := NewHistogram(TickBuckets()...)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merge diverged: count %d/%d max %v/%v",
			merged.Count(), whole.Count(), merged.Max(), whole.Max())
	}
	// Summation order differs between the split and whole collectors, so
	// the float sums agree only up to rounding; determinism comes from
	// merging in a fixed order, which reproduces the same rounding.
	if diff := math.Abs(merged.Sum() - whole.Sum()); diff > 1e-6*whole.Sum() {
		t.Fatalf("merge sum diverged: %v vs %v", merged.Sum(), whole.Sum())
	}
	_, mc := merged.Buckets()
	_, wc := whole.Buckets()
	for i := range mc {
		if mc[i] != wc[i] {
			t.Fatalf("bucket %d: merged %d, whole %d", i, mc[i], wc[i])
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if merged.Quantile(p) != whole.Quantile(p) {
			t.Fatalf("q%v: merged %v, whole %v", p, merged.Quantile(p), whole.Quantile(p))
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Observe(5)
	h.Observe(50)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset left state behind")
	}
	h.Observe(2)
	if h.Quantile(1) != 10 {
		t.Fatalf("post-reset quantile = %v, want 10", h.Quantile(1))
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {3, 2}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Merge across layouts did not panic")
		}
	}()
	NewHistogram(1, 2).Merge(NewHistogram(1, 2, 3))
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewHistogram(TickBuckets()...)
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(7) }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f objects/op, want 0", allocs)
	}
}
