// Package metrics meters the quantities the evaluation reports: message
// counts and bytes by direction and kind, server processing time, and
// answer quality against ground truth.
//
// The counters are plain structs the simulated network updates inline; the
// experiment harness snapshots them per tick to build the series behind
// each figure.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// Direction classifies a message by who pays for it on the wireless
// medium.
type Direction uint8

// Message directions.
const (
	Uplink Direction = iota // client → server unicast
	Downlink
	Broadcast
	numDirections
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Uplink:
		return "uplink"
	case Downlink:
		return "downlink"
	case Broadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("direction(%d)", uint8(d))
	}
}

// Directions lists all directions in presentation order.
func Directions() []Direction { return []Direction{Uplink, Downlink, Broadcast} }

// maxKind bounds the per-kind arrays; protocol kinds are small and dense.
const maxKind = 32

// Counters accumulates message traffic. The zero value is ready to use.
// Counters are not safe for concurrent use; the simulation is
// single-threaded per run and the TCP server wraps them in its own mutex.
type Counters struct {
	sent      [numDirections][maxKind]uint64
	sentBytes [numDirections][maxKind]uint64
	delivered [numDirections]uint64
	dropped   [numDirections]uint64
	evicted   uint64
}

// RecordSend notes that one message of the given kind and size was sent in
// the given direction. For broadcasts, "one message" is one cell-level
// transmission; a region broadcast covering c cells records c sends.
func (c *Counters) RecordSend(d Direction, k protocol.Kind, size int) {
	c.sent[d][k]++
	c.sentBytes[d][k] += uint64(size)
}

// RecordDeliver notes a successful delivery to one recipient.
func (c *Counters) RecordDeliver(d Direction) { c.delivered[d]++ }

// RecordDrop notes a message lost in transit.
func (c *Counters) RecordDrop(d Direction) { c.dropped[d]++ }

// RecordEviction notes a client connection the transport terminated for
// liveness reasons: a handshake that never completed, a stalled reader
// that head-of-line-blocked writes, or an idle session reaped by policy.
func (c *Counters) RecordEviction() { c.evicted++ }

// Evictions returns the number of liveness evictions recorded.
func (c *Counters) Evictions() uint64 { return c.evicted }

// Sent returns the number of messages sent in direction d (all kinds).
func (c *Counters) Sent(d Direction) uint64 {
	var total uint64
	for _, v := range c.sent[d] {
		total += v
	}
	return total
}

// SentKind returns the number of messages of kind k sent in direction d.
func (c *Counters) SentKind(d Direction, k protocol.Kind) uint64 {
	return c.sent[d][k]
}

// SentBytes returns the bytes sent in direction d (all kinds).
func (c *Counters) SentBytes(d Direction) uint64 {
	var total uint64
	for _, v := range c.sentBytes[d] {
		total += v
	}
	return total
}

// Delivered returns deliveries in direction d.
func (c *Counters) Delivered(d Direction) uint64 { return c.delivered[d] }

// Dropped returns drops in direction d.
func (c *Counters) Dropped(d Direction) uint64 { return c.dropped[d] }

// Snapshot returns a copy of the current counter state.
func (c *Counters) Snapshot() Counters { return *c }

// Diff returns the traffic accumulated between the older snapshot and c.
func (c *Counters) Diff(older Counters) Counters {
	var out Counters
	for d := Direction(0); d < numDirections; d++ {
		for k := 0; k < maxKind; k++ {
			out.sent[d][k] = c.sent[d][k] - older.sent[d][k]
			out.sentBytes[d][k] = c.sentBytes[d][k] - older.sentBytes[d][k]
		}
		out.delivered[d] = c.delivered[d] - older.delivered[d]
		out.dropped[d] = c.dropped[d] - older.dropped[d]
	}
	out.evicted = c.evicted - older.evicted
	return out
}

// BreakdownTable renders a per-kind, per-direction message table, omitting
// all-zero rows. It is the body of the "message breakdown" experiment
// table.
func (c *Counters) BreakdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %12s\n", "kind", "uplink", "downlink", "broadcast")
	for _, k := range protocol.Kinds() {
		u, dn, br := c.sent[Uplink][k], c.sent[Downlink][k], c.sent[Broadcast][k]
		if u == 0 && dn == 0 && br == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-18s %12d %12d %12d\n", k, u, dn, br)
	}
	fmt.Fprintf(&b, "%-18s %12d %12d %12d\n", "TOTAL",
		c.Sent(Uplink), c.Sent(Downlink), c.Sent(Broadcast))
	return b.String()
}

// ---------------------------------------------------------------------------
// Answer quality audit

// Audit accumulates per-tick answer quality against ground truth. The zero
// value is ready to use.
type Audit struct {
	evaluations  int
	exact        int
	sumPrecision float64
	sumRecall    float64
	sumRadiusErr float64 // relative error of the k-th distance
	worstRecall  float64
	initialized  bool
}

// Observe compares one produced answer with the ground truth for the same
// query and tick, and accumulates quality statistics.
func (a *Audit) Observe(got, truth model.Answer) {
	a.evaluations++
	gotSet := got.IDSet()
	truthSet := truth.IDSet()
	inter := 0
	for id := range gotSet {
		if truthSet[id] {
			inter++
		}
	}
	precision, recall := 1.0, 1.0
	if len(gotSet) > 0 {
		precision = float64(inter) / float64(len(gotSet))
	} else if len(truthSet) > 0 {
		precision = 0
	}
	if len(truthSet) > 0 {
		recall = float64(inter) / float64(len(truthSet))
	}
	if model.SameMembers(got, truth) {
		a.exact++
	}
	a.sumPrecision += precision
	a.sumRecall += recall
	if !a.initialized || recall < a.worstRecall {
		a.worstRecall = recall
		a.initialized = true
	}
	tk := truth.KthDist()
	if tk > 0 {
		a.sumRadiusErr += math.Abs(got.KthDist()-tk) / tk
	}
}

// Merge folds the observations accumulated in o into a, as if every
// answer o observed had been observed by a instead. It lets parallel
// audit workers accumulate into private Audits and combine them after
// their barrier; merging in a fixed (worker-count-independent) order
// keeps the floating-point sums deterministic.
func (a *Audit) Merge(o *Audit) {
	a.evaluations += o.evaluations
	a.exact += o.exact
	a.sumPrecision += o.sumPrecision
	a.sumRecall += o.sumRecall
	a.sumRadiusErr += o.sumRadiusErr
	if o.initialized && (!a.initialized || o.worstRecall < a.worstRecall) {
		a.worstRecall = o.worstRecall
		a.initialized = true
	}
}

// Reset returns the audit to its zero state so the accumulator can be
// reused without reallocating.
func (a *Audit) Reset() { *a = Audit{} }

// Evaluations returns how many answers were audited.
func (a *Audit) Evaluations() int { return a.evaluations }

// Exactness returns the fraction of audited answers whose membership
// exactly matched ground truth. It returns 1 for an empty audit.
func (a *Audit) Exactness() float64 {
	if a.evaluations == 0 {
		return 1
	}
	return float64(a.exact) / float64(a.evaluations)
}

// MeanPrecision returns the average precision over all audited answers.
func (a *Audit) MeanPrecision() float64 {
	if a.evaluations == 0 {
		return 1
	}
	return a.sumPrecision / float64(a.evaluations)
}

// MeanRecall returns the average recall over all audited answers.
func (a *Audit) MeanRecall() float64 {
	if a.evaluations == 0 {
		return 1
	}
	return a.sumRecall / float64(a.evaluations)
}

// WorstRecall returns the lowest per-answer recall seen (1 if none).
func (a *Audit) WorstRecall() float64 {
	if !a.initialized {
		return 1
	}
	return a.worstRecall
}

// MeanRadiusError returns the mean relative error of the k-th neighbor
// distance versus ground truth.
func (a *Audit) MeanRadiusError() float64 {
	if a.evaluations == 0 {
		return 0
	}
	return a.sumRadiusErr / float64(a.evaluations)
}

// ---------------------------------------------------------------------------
// Numeric series

// Series collects one scalar sample per tick and reports summary
// statistics; the experiment harness uses one per (metric, run).
type Series struct {
	values []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.values = append(s.values, v) }

// Merge appends every sample of o to s in order. Together with
// Audit.Merge it supports the merge-after-barrier pattern of parallel
// collectors: each worker fills a private series, and the owner merges
// them in a fixed order.
func (s *Series) Merge(o *Series) { s.values = append(s.values, o.values...) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	var max float64
	for i, v := range s.values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Values returns the underlying samples (not a copy).
func (s *Series) Values() []float64 { return s.values }

// ---------------------------------------------------------------------------
// Deterministic fixed-bucket histogram

// Histogram counts samples into fixed buckets so distribution summaries
// (quantiles, CDFs) stay byte-deterministic across runs and worker
// counts: only integer bucket counts and one float sum accumulate, and
// Merge in a fixed order reproduces the single-collector result exactly.
// Bucket i covers (bounds[i-1], bounds[i]]; a final implicit overflow
// bucket covers everything above the last bound.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1, last is overflow
	total  uint64
	sum    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket
// bounds. It panics on unsorted or empty bounds: bucket layouts are
// fixed at construction so that merging histograms is well-defined.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// TickBuckets is the shared bound set for tick-valued distributions
// (answer staleness, uplink inter-report gaps): fine steps near zero
// where the protocol should live, coarsening geometrically out to the
// resync horizon.
func TickBuckets() []float64 {
	return []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}
}

// LatencyBuckets is the shared bound set for per-tick server latency in
// microseconds.
func LatencyBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	i, j := 0, len(h.bounds)
	for i < j { // first bound >= v
		m := (i + j) / 2
		if h.bounds[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	h.counts[i]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound on the p-quantile (0 <= p <= 1): the
// upper bound of the bucket holding the p-th sample, or the observed
// maximum for the overflow bucket. Bucket bounds rather than
// interpolation keep the value exactly reproducible.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Buckets returns (bounds, counts) copies for rendering a CDF. The
// counts slice has one extra trailing overflow entry.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	c := make([]uint64, len(h.counts))
	copy(c, h.counts)
	return b, c
}

// Merge folds o into h. Both must share the same bucket layout; like
// Audit.Merge, merging private per-worker histograms in a fixed order
// keeps the result deterministic.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears every sample, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}
