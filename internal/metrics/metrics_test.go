package metrics

import (
	"strings"
	"testing"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.RecordSend(Uplink, protocol.KindLocationReport, 45)
	c.RecordSend(Uplink, protocol.KindLocationReport, 45)
	c.RecordSend(Downlink, protocol.KindAnswerUpdate, 100)
	c.RecordSend(Broadcast, protocol.KindMonitorInstall, 61)
	c.RecordDeliver(Uplink)
	c.RecordDrop(Uplink)

	if got := c.Sent(Uplink); got != 2 {
		t.Errorf("Sent(Uplink) = %d", got)
	}
	if got := c.SentKind(Uplink, protocol.KindLocationReport); got != 2 {
		t.Errorf("SentKind = %d", got)
	}
	if got := c.SentKind(Uplink, protocol.KindProbeReply); got != 0 {
		t.Errorf("unrelated kind = %d", got)
	}
	if got := c.SentBytes(Uplink); got != 90 {
		t.Errorf("SentBytes = %d", got)
	}
	if c.Sent(Downlink) != 1 || c.Sent(Broadcast) != 1 {
		t.Error("direction separation broken")
	}
	if c.Delivered(Uplink) != 1 || c.Dropped(Uplink) != 1 {
		t.Error("deliver/drop accounting broken")
	}
}

func TestCountersDiff(t *testing.T) {
	var c Counters
	c.RecordSend(Uplink, protocol.KindProbeReply, 10)
	snap := c.Snapshot()
	c.RecordSend(Uplink, protocol.KindProbeReply, 10)
	c.RecordSend(Downlink, protocol.KindAnswerUpdate, 20)
	c.RecordDeliver(Downlink)
	d := c.Diff(snap)
	if d.Sent(Uplink) != 1 || d.Sent(Downlink) != 1 {
		t.Errorf("diff sent: up=%d down=%d", d.Sent(Uplink), d.Sent(Downlink))
	}
	if d.SentBytes(Uplink) != 10 {
		t.Errorf("diff bytes = %d", d.SentBytes(Uplink))
	}
	if d.Delivered(Downlink) != 1 {
		t.Errorf("diff delivered = %d", d.Delivered(Downlink))
	}
	// Snapshot itself is unchanged by later records.
	if snap.Sent(Downlink) != 0 {
		t.Error("snapshot aliasing")
	}
}

func TestBreakdownTable(t *testing.T) {
	var c Counters
	c.RecordSend(Uplink, protocol.KindEnterReport, 37)
	c.RecordSend(Broadcast, protocol.KindMonitorInstall, 61)
	tbl := c.BreakdownTable()
	if !strings.Contains(tbl, "enter-report") || !strings.Contains(tbl, "monitor-install") {
		t.Errorf("table missing rows:\n%s", tbl)
	}
	if strings.Contains(tbl, "probe-reply") {
		t.Errorf("table contains all-zero row:\n%s", tbl)
	}
	if !strings.Contains(tbl, "TOTAL") {
		t.Errorf("table missing total:\n%s", tbl)
	}
}

func TestDirectionString(t *testing.T) {
	for _, d := range Directions() {
		if strings.HasPrefix(d.String(), "direction(") {
			t.Errorf("unnamed direction %d", d)
		}
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("fallback name wrong")
	}
}

func ans(ids ...model.ObjectID) model.Answer {
	ns := make([]model.Neighbor, len(ids))
	for i, id := range ids {
		ns[i] = model.Neighbor{ID: id, Dist: float64(i + 1)}
	}
	return model.Answer{Neighbors: ns}
}

func TestAuditExactMatch(t *testing.T) {
	var a Audit
	a.Observe(ans(1, 2, 3), ans(1, 2, 3))
	a.Observe(ans(3, 2, 1), ans(1, 2, 3)) // order-insensitive
	if a.Exactness() != 1 || a.MeanPrecision() != 1 || a.MeanRecall() != 1 {
		t.Errorf("exact answers scored: exact=%v p=%v r=%v",
			a.Exactness(), a.MeanPrecision(), a.MeanRecall())
	}
	if a.Evaluations() != 2 {
		t.Errorf("Evaluations = %d", a.Evaluations())
	}
	if a.WorstRecall() != 1 {
		t.Errorf("WorstRecall = %v", a.WorstRecall())
	}
}

func TestAuditPartialMatch(t *testing.T) {
	var a Audit
	a.Observe(ans(1, 2, 4), ans(1, 2, 3))
	if a.Exactness() != 0 {
		t.Error("partial answer counted as exact")
	}
	want := 2.0 / 3.0
	if p := a.MeanPrecision(); p < want-1e-9 || p > want+1e-9 {
		t.Errorf("precision = %v, want %v", p, want)
	}
	if r := a.MeanRecall(); r < want-1e-9 || r > want+1e-9 {
		t.Errorf("recall = %v, want %v", r, want)
	}
	if a.WorstRecall() > want+1e-9 {
		t.Errorf("worst recall = %v", a.WorstRecall())
	}
}

func TestAuditEmptyAnswers(t *testing.T) {
	var a Audit
	// Got nothing, truth nothing: vacuous success.
	a.Observe(model.Answer{}, model.Answer{})
	if a.Exactness() != 1 {
		t.Error("empty==empty should be exact")
	}
	// Got nothing, truth has members: recall 0.
	var b Audit
	b.Observe(model.Answer{}, ans(1))
	if b.MeanRecall() != 0 || b.Exactness() != 0 {
		t.Errorf("missing answer: recall=%v exact=%v", b.MeanRecall(), b.Exactness())
	}
	if b.MeanPrecision() != 0 {
		t.Errorf("empty-got precision should be 0 when truth nonempty, got %v", b.MeanPrecision())
	}
}

func TestAuditRadiusError(t *testing.T) {
	var a Audit
	got := model.Answer{Neighbors: []model.Neighbor{{ID: 1, Dist: 110}}}
	truth := model.Answer{Neighbors: []model.Neighbor{{ID: 1, Dist: 100}}}
	a.Observe(got, truth)
	if e := a.MeanRadiusError(); e < 0.0999 || e > 0.1001 {
		t.Errorf("radius error = %v, want 0.1", e)
	}
}

func TestAuditEmptyDefaults(t *testing.T) {
	var a Audit
	if a.Exactness() != 1 || a.MeanPrecision() != 1 || a.MeanRecall() != 1 ||
		a.WorstRecall() != 1 || a.MeanRadiusError() != 0 {
		t.Error("empty audit defaults wrong")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Error("empty series defaults")
	}
	for _, v := range []float64{2, 4, 9} {
		s.Add(v)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Max() != 9 {
		t.Errorf("Max = %v", s.Max())
	}
	if len(s.Values()) != 3 {
		t.Error("Values length")
	}
	// Max with negative values only.
	var n Series
	n.Add(-5)
	n.Add(-2)
	if n.Max() != -2 {
		t.Errorf("negative Max = %v", n.Max())
	}
}

// Merging chunked audits must equal observing the same answers into one
// accumulator: counts and sums add, worst recall takes the minimum over
// initialized chunks.
func TestAuditMerge(t *testing.T) {
	var whole Audit
	whole.Observe(ans(1, 2, 3), ans(1, 2, 3))
	whole.Observe(ans(1, 2, 4), ans(1, 2, 3))
	whole.Observe(model.Answer{}, ans(1))

	var c1, c2 Audit
	c1.Observe(ans(1, 2, 3), ans(1, 2, 3))
	c1.Observe(ans(1, 2, 4), ans(1, 2, 3))
	c2.Observe(model.Answer{}, ans(1))
	var merged Audit
	merged.Merge(&c1)
	merged.Merge(&c2)

	if merged != whole {
		t.Errorf("merged audit %+v != direct %+v", merged, whole)
	}
	if merged.WorstRecall() != 0 {
		t.Errorf("merged worst recall = %v, want 0 (from chunk 2)", merged.WorstRecall())
	}
}

// Merging an empty audit is a no-op and must not clobber worst recall.
func TestAuditMergeEmpty(t *testing.T) {
	var a, empty Audit
	a.Observe(ans(1, 2), ans(1, 3)) // recall 1/2
	before := a
	a.Merge(&empty)
	if a != before {
		t.Errorf("merging empty changed audit: %+v -> %+v", before, a)
	}
	// And empty.Merge(populated) adopts the populated stats.
	empty.Merge(&a)
	if empty != a {
		t.Errorf("empty.Merge: %+v != %+v", empty, a)
	}
}

func TestAuditReset(t *testing.T) {
	var a Audit
	a.Observe(ans(1), ans(2))
	a.Reset()
	if a != (Audit{}) {
		t.Errorf("Reset left state: %+v", a)
	}
}

func TestSeriesMerge(t *testing.T) {
	var a, b Series
	a.Add(1)
	a.Add(2)
	b.Add(3)
	a.Merge(&b)
	if a.Len() != 3 || a.Mean() != 2 || a.Max() != 3 {
		t.Errorf("merged series: len=%d mean=%v max=%v", a.Len(), a.Mean(), a.Max())
	}
	var empty Series
	a.Merge(&empty)
	if a.Len() != 3 {
		t.Error("merging empty series changed length")
	}
}

func TestEvictionCounter(t *testing.T) {
	var c Counters
	if c.Evictions() != 0 {
		t.Fatal("fresh counters report evictions")
	}
	c.RecordEviction()
	c.RecordEviction()
	if c.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions())
	}
	snap := c.Snapshot()
	c.RecordEviction()
	if d := c.Diff(snap); d.Evictions() != 1 {
		t.Fatalf("diff evictions = %d, want 1", d.Evictions())
	}
	if snap.Evictions() != 2 {
		t.Fatal("snapshot not isolated from later evictions")
	}
}
