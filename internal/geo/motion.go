package geo

import "math"

// DeadReckon returns the position reached from start after moving with
// constant velocity v for dt time units.
func DeadReckon(start Point, v Vector, dt float64) Point {
	return start.Add(v.Scale(dt))
}

// RelativeClosingTime returns the earliest non-negative time at which two
// points moving with constant velocities come within distance d of each
// other, and whether such a time exists. A result of 0 means they are
// already within d.
//
// The distributed monitor uses this to size safe regions: an object outside
// the monitoring circle cannot affect the answer before the closing time
// with the query's advertised track.
func RelativeClosingTime(p Point, vp Vector, q Point, vq Vector, d float64) (float64, bool) {
	// Work in the query's frame: relative position r(t) = r0 + vr*t,
	// find the least t >= 0 with |r(t)| <= d.
	r0 := p.Sub(q)
	vr := Vector(vp.Sub(vq))
	c := Vector(r0).LenSq() - d*d
	if c <= 0 {
		return 0, true
	}
	a := vr.LenSq()
	b := 2 * Vector(r0).Dot(vr)
	if a == 0 {
		// No relative motion and currently farther than d.
		return 0, false
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t := (-b - sq) / (2 * a)
	if t < 0 {
		t = (-b + sq) / (2 * a)
	}
	if t < 0 {
		return 0, false
	}
	return t, true
}

// EscapeTime returns the earliest time at which a point starting at p and
// moving at speed at most vmax can exit the disk c, assuming worst-case
// (straight outward) motion. If p is outside c the result is 0. If vmax is
// zero and p is inside, the point can never escape and ok is false.
func EscapeTime(p Point, vmax float64, c Circle) (t float64, ok bool) {
	d := c.Center.Dist(p)
	if d >= c.R {
		return 0, true
	}
	if vmax <= 0 {
		return 0, false
	}
	return (c.R - d) / vmax, true
}

// SafeRadius returns the slack to add to an answer radius so that, given
// maximum object speed vobj and maximum query speed vqry, no object outside
// the enlarged circle at install time can enter the true kNN within the
// next `horizon` time units. This is the monitoring-region sizing rule of
// the distributed protocol.
func SafeRadius(answerRadius, vobj, vqry, horizon float64) float64 {
	if answerRadius < 0 {
		answerRadius = 0
	}
	return answerRadius + (vobj+vqry)*horizon
}

// ReflectInto folds a point that has left rectangle r back inside by
// reflecting it across the violated boundary, flipping the matching
// velocity component. It is used by the mobility models to keep objects in
// the world; it handles overshoot larger than the world size by iterating.
func ReflectInto(p Point, v Vector, r Rect) (Point, Vector) {
	for i := 0; i < 64; i++ {
		moved := false
		if p.X < r.Min.X {
			p.X = 2*r.Min.X - p.X
			v.X = -v.X
			moved = true
		} else if p.X > r.Max.X {
			p.X = 2*r.Max.X - p.X
			v.X = -v.X
			moved = true
		}
		if p.Y < r.Min.Y {
			p.Y = 2*r.Min.Y - p.Y
			v.Y = -v.Y
			moved = true
		} else if p.Y > r.Max.Y {
			p.Y = 2*r.Max.Y - p.Y
			v.Y = -v.Y
			moved = true
		}
		if !moved {
			return p, v
		}
	}
	// Degenerate (e.g. zero-area rect with huge overshoot): clamp.
	return r.Clamp(p), v
}
