// Package geo provides the 2-D geometric primitives used throughout the
// moving-object query engine: points, vectors, axis-aligned rectangles,
// circles, and the distance predicates needed by grid-based kNN search and
// by the distributed monitoring protocol (minimum/maximum point-rectangle
// distances, circle-rectangle intersection, and motion intercept times).
//
// All coordinates are float64 meters in a world whose origin is the
// lower-left corner. The package is purely computational and allocation
// free on the hot paths.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Vector is a displacement or velocity in the plane. It shares its
// representation with Point but is kept as a distinct type so that
// positions and velocities cannot be confused in protocol structs.
type Vector struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Vec is shorthand for Vector{x, y}.
func Vec(x, y float64) Vector { return Vector{x, y} }

// Add returns p displaced by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It is the
// preferred comparator on hot paths because it avoids the square root.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p == q }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.X * s, v.Y * s} }

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.X + w.X, v.Y + w.Y} }

// Sub returns the component-wise difference v - w.
func (v Vector) Sub(w Vector) Vector { return Vector{v.X - w.X, v.Y - w.Y} }

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.X, v.Y) }

// LenSq returns the squared length of v.
func (v Vector) LenSq() float64 { return v.X*v.X + v.Y*v.Y }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vector) Norm() Vector {
	l := v.Len()
	if l == 0 {
		return v
	}
	return Vector{v.X / l, v.Y / l}
}

// Rect is an axis-aligned rectangle, closed on all sides. Min must be
// component-wise <= Max; NewRect normalizes arbitrary corners.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Clamp returns the point of r nearest to p; if p is inside r the result is
// p itself.
func (r Rect) Clamp(p Point) Point {
	return Point{clamp(p.X, r.Min.X, r.Max.X), clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero when p is inside r).
func (r Rect) MinDist(p Point) float64 {
	return p.Dist(r.Clamp(p))
}

// MinDistSq returns the squared minimum distance from p to r.
func (r Rect) MinDistSq(p Point) float64 {
	return p.DistSq(r.Clamp(p))
}

// MaxDist returns the maximum Euclidean distance from p to any point of r,
// i.e. the distance to the farthest corner.
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.Min.X), math.Abs(p.X-r.Max.X))
	dy := math.Max(math.Abs(p.Y-r.Min.Y), math.Abs(p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Circle is a disk: center plus radius. A negative radius denotes an empty
// circle; Contains and Intersects treat it as containing nothing.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies inside c (boundary inclusive).
func (c Circle) Contains(p Point) bool {
	if c.R < 0 {
		return false
	}
	return c.Center.DistSq(p) <= c.R*c.R
}

// IntersectsRect reports whether the disk intersects rectangle r.
func (c Circle) IntersectsRect(r Rect) bool {
	if c.R < 0 {
		return false
	}
	return r.MinDistSq(c.Center) <= c.R*c.R
}

// ContainsRect reports whether every point of r lies inside the disk.
func (c Circle) ContainsRect(r Rect) bool {
	if c.R < 0 {
		return false
	}
	return r.MaxDist(c.Center) <= c.R
}

// BoundingRect returns the smallest rectangle containing the disk.
func (c Circle) BoundingRect() Rect {
	return Rect{
		Min: Point{c.Center.X - c.R, c.Center.Y - c.R},
		Max: Point{c.Center.X + c.R, c.Center.Y + c.R},
	}
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle(%s, r=%.2f)", c.Center, c.R)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
