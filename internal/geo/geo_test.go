package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -3), Pt(0, 3), 6},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); !almostEq(got, c.want*c.want) {
			t.Errorf("DistSq(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vec(3, 4)
	if !almostEq(v.Len(), 5) {
		t.Errorf("Len = %v, want 5", v.Len())
	}
	if !almostEq(v.LenSq(), 25) {
		t.Errorf("LenSq = %v, want 25", v.LenSq())
	}
	n := v.Norm()
	if !almostEq(n.Len(), 1) {
		t.Errorf("Norm length = %v, want 1", n.Len())
	}
	if z := Vec(0, 0).Norm(); z != Vec(0, 0) {
		t.Errorf("Norm of zero = %v, want zero", z)
	}
	if got := v.Scale(2); got != Vec(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Add(Vec(1, -1)); got != Vec(4, 3) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(Vec(1, 1)); got != Vec(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(Vec(2, 1)); !almostEq(got, 10) {
		t.Errorf("Dot = %v, want 10", got)
	}
	if got := Pt(1, 2).Add(Vec(2, 3)); got != Pt(3, 5) {
		t.Errorf("Point.Add = %v", got)
	}
	if got := Pt(3, 5).Sub(Pt(1, 2)); got != Vec(2, 3) {
		t.Errorf("Point.Sub = %v", got)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(5, 1), Pt(2, 7))
	if r.Min != Pt(2, 1) || r.Max != Pt(5, 7) {
		t.Fatalf("NewRect = %v", r)
	}
	if !almostEq(r.Width(), 3) || !almostEq(r.Height(), 6) {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if !almostEq(r.Area(), 18) {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Center() != Pt(3.5, 4) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(10.001, 5), Pt(5, -1), Pt(5, 11)} {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	cases := []struct {
		s    Rect
		want bool
	}{
		{NewRect(Pt(5, 5), Pt(15, 15)), true},
		{NewRect(Pt(10, 10), Pt(20, 20)), true}, // touching corner counts
		{NewRect(Pt(11, 0), Pt(20, 10)), false},
		{NewRect(Pt(2, 2), Pt(3, 3)), true}, // fully inside
		{NewRect(Pt(-5, -5), Pt(20, 20)), true},
	}
	for _, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", r, c.s, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("intersection not symmetric for %v", c.s)
		}
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10))
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Pt(5, 5), 0, math.Hypot(5, 5)},
		{Pt(13, 4), 3, math.Hypot(13, 6)},
		{Pt(13, 14), 5, math.Hypot(13, 14)},
		{Pt(-3, 5), 3, math.Hypot(13, 5)},
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); !almostEq(got, c.min) {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.min)
		}
		if got := r.MinDistSq(c.p); !almostEq(got, c.min*c.min) {
			t.Errorf("MinDistSq(%v) = %v, want %v", c.p, got, c.min*c.min)
		}
		if got := r.MaxDist(c.p); !almostEq(got, c.max) {
			t.Errorf("MaxDist(%v) = %v, want %v", c.p, got, c.max)
		}
	}
}

// Property: for random rects and points, MinDist <= dist to center <= MaxDist.
func TestRectDistOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := NewRect(
			Pt(rng.Float64()*100-50, rng.Float64()*100-50),
			Pt(rng.Float64()*100-50, rng.Float64()*100-50),
		)
		p := Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		mind, maxd := r.MinDist(p), r.MaxDist(p)
		cd := p.Dist(r.Center())
		if mind > cd+1e-9 || cd > maxd+1e-9 {
			t.Fatalf("ordering violated: min=%v center=%v max=%v for %v %v", mind, cd, maxd, r, p)
		}
		if r.Contains(p) && mind != 0 {
			t.Fatalf("contained point has MinDist %v", mind)
		}
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Pt(0, 0), 5}
	if !c.Contains(Pt(3, 4)) {
		t.Error("boundary point should be contained")
	}
	if c.Contains(Pt(3.1, 4)) {
		t.Error("outside point contained")
	}
	if !c.IntersectsRect(NewRect(Pt(3, 3), Pt(10, 10))) {
		t.Error("rect with corner at distance sqrt(18) < 5 should intersect")
	}
	if c.IntersectsRect(NewRect(Pt(4, 4), Pt(10, 10))) {
		t.Error("rect at distance sqrt(32) > 5 should not intersect")
	}
	if !c.ContainsRect(NewRect(Pt(-1, -1), Pt(1, 1))) {
		t.Error("small centered rect should be contained")
	}
	if c.ContainsRect(NewRect(Pt(-4, -4), Pt(4, 4))) {
		t.Error("rect with corner outside should not be contained")
	}
	br := c.BoundingRect()
	if br.Min != Pt(-5, -5) || br.Max != Pt(5, 5) {
		t.Errorf("BoundingRect = %v", br)
	}
}

func TestEmptyCircle(t *testing.T) {
	c := Circle{Pt(0, 0), -1}
	if c.Contains(Pt(0, 0)) {
		t.Error("negative-radius circle contains nothing")
	}
	if c.IntersectsRect(NewRect(Pt(-1, -1), Pt(1, 1))) {
		t.Error("negative-radius circle intersects nothing")
	}
	if c.ContainsRect(NewRect(Pt(0, 0), Pt(0, 0))) {
		t.Error("negative-radius circle contains no rect")
	}
}

func TestDeadReckon(t *testing.T) {
	got := DeadReckon(Pt(1, 1), Vec(2, -1), 3)
	if got != Pt(7, -2) {
		t.Errorf("DeadReckon = %v", got)
	}
}

func TestRelativeClosingTime(t *testing.T) {
	// Head-on at combined speed 4, gap 10, threshold 2 -> closes 8 in 2s.
	tm, ok := RelativeClosingTime(Pt(0, 0), Vec(2, 0), Pt(10, 0), Vec(-2, 0), 2)
	if !ok || !almostEq(tm, 2) {
		t.Errorf("closing time = %v ok=%v, want 2 true", tm, ok)
	}
	// Already within threshold.
	tm, ok = RelativeClosingTime(Pt(0, 0), Vec(0, 0), Pt(1, 0), Vec(0, 0), 5)
	if !ok || tm != 0 {
		t.Errorf("already-close = %v ok=%v", tm, ok)
	}
	// Parallel, never closes.
	_, ok = RelativeClosingTime(Pt(0, 0), Vec(1, 0), Pt(0, 10), Vec(1, 0), 5)
	if ok {
		t.Error("parallel tracks should never close")
	}
	// Diverging.
	_, ok = RelativeClosingTime(Pt(0, 0), Vec(-1, 0), Pt(10, 0), Vec(1, 0), 2)
	if ok {
		t.Error("diverging tracks should never close")
	}
	// Stationary and far apart.
	_, ok = RelativeClosingTime(Pt(0, 0), Vec(0, 0), Pt(10, 0), Vec(0, 0), 2)
	if ok {
		t.Error("stationary far points never close")
	}
}

// Property: the reported closing time really achieves distance <= d (with
// tolerance), and no earlier sampled instant does distance < d - eps.
func TestRelativeClosingTimeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*100, rng.Float64()*100)
		q := Pt(rng.Float64()*100, rng.Float64()*100)
		vp := Vec(rng.Float64()*10-5, rng.Float64()*10-5)
		vq := Vec(rng.Float64()*10-5, rng.Float64()*10-5)
		d := rng.Float64() * 20
		tm, ok := RelativeClosingTime(p, vp, q, vq, d)
		if !ok {
			continue
		}
		pp := DeadReckon(p, vp, tm)
		qq := DeadReckon(q, vq, tm)
		if pp.Dist(qq) > d+1e-6 {
			t.Fatalf("at closing time %v distance is %v > d=%v", tm, pp.Dist(qq), d)
		}
		// Check a few earlier instants are not already strictly closer
		// than d (tolerating the t=0 inside case).
		if tm > 0 {
			for _, f := range []float64{0.25, 0.5, 0.9} {
				te := tm * f
				pe := DeadReckon(p, vp, te)
				qe := DeadReckon(q, vq, te)
				if pe.Dist(qe) < d-1e-6 {
					t.Fatalf("distance %v < d=%v already at t=%v < closing %v",
						pe.Dist(qe), d, te, tm)
				}
			}
		}
	}
}

func TestEscapeTime(t *testing.T) {
	c := Circle{Pt(0, 0), 10}
	if tm, ok := EscapeTime(Pt(15, 0), 1, c); !ok || tm != 0 {
		t.Errorf("outside point: %v %v", tm, ok)
	}
	if tm, ok := EscapeTime(Pt(4, 0), 2, c); !ok || !almostEq(tm, 3) {
		t.Errorf("inside point: %v %v, want 3", tm, ok)
	}
	if _, ok := EscapeTime(Pt(0, 0), 0, c); ok {
		t.Error("stationary inside point can never escape")
	}
}

func TestSafeRadius(t *testing.T) {
	if got := SafeRadius(100, 10, 5, 2); !almostEq(got, 130) {
		t.Errorf("SafeRadius = %v, want 130", got)
	}
	if got := SafeRadius(-3, 10, 5, 1); !almostEq(got, 15) {
		t.Errorf("negative answer radius should clamp to 0: %v", got)
	}
}

func TestReflectInto(t *testing.T) {
	world := NewRect(Pt(0, 0), Pt(100, 100))
	p, v := ReflectInto(Pt(105, 50), Vec(3, 0), world)
	if p != Pt(95, 50) || v != Vec(-3, 0) {
		t.Errorf("reflect right: %v %v", p, v)
	}
	p, v = ReflectInto(Pt(-10, -20), Vec(-1, -2), world)
	if p != Pt(10, 20) || v != Vec(1, 2) {
		t.Errorf("reflect both: %v %v", p, v)
	}
	// Already inside: unchanged.
	p, v = ReflectInto(Pt(50, 50), Vec(1, 1), world)
	if p != Pt(50, 50) || v != Vec(1, 1) {
		t.Errorf("inside point changed: %v %v", p, v)
	}
}

// Property: ReflectInto always lands inside the world for bounded overshoot.
func TestReflectIntoStaysInside(t *testing.T) {
	world := NewRect(Pt(0, 0), Pt(50, 80))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		p := Pt(rng.Float64()*400-200, rng.Float64()*400-200)
		v := Vec(rng.Float64()*20-10, rng.Float64()*20-10)
		got, _ := ReflectInto(p, v, world)
		if !world.Contains(got) {
			t.Fatalf("ReflectInto(%v) = %v escapes %v", p, got, world)
		}
	}
}

func TestStringers(t *testing.T) {
	if s := Pt(1, 2).String(); s == "" {
		t.Error("empty Point string")
	}
	if s := NewRect(Pt(0, 0), Pt(1, 1)).String(); s == "" {
		t.Error("empty Rect string")
	}
	if s := (Circle{Pt(0, 0), 1}).String(); s == "" {
		t.Error("empty Circle string")
	}
}
