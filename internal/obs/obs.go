// Package obs is the observability layer: a structured event tracer for
// the per-query protocol lifecycle and a bounded flight recorder that
// chaos and cluster tests arm so a failed soak dumps the message
// sequence that led to the divergence instead of a bare assertion.
//
// Tracing is wired as an optional Sink on the server, agent, network,
// and federation dependency structs. A nil sink disables it: every emit
// site is a plain nil check around a value-typed Event, so the hot
// paths stay zero-alloc when tracing is off (BenchmarkServerMoveReport
// pins this). Events carry only identifiers and small scalars — never
// pointers into live server state — so recording is race-free even when
// federation nodes tick on parallel goroutines.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"dmknn/internal/model"
	"dmknn/internal/protocol"
)

// EventType discriminates lifecycle events. The zero value is invalid so
// a zeroed Event is recognizable as garbage in a dump.
type EventType uint8

// Lifecycle event types.
const (
	// EvQueryRegistered: the server accepted a QueryRegister. Value is k
	// (or the range radius for range mode).
	EvQueryRegistered EventType = iota + 1
	// EvQueryDeregistered: the monitor was removed.
	EvQueryDeregistered
	// EvProbe: a probe round was broadcast. Seq is the probe sequence,
	// Value the probe radius.
	EvProbe
	// EvInstalled: a monitor (re)install was broadcast. Value is the
	// monitoring-region radius, Seq the epoch.
	EvInstalled
	// EvAnswerFull: a full AnswerUpdate was sent. Seq is the answer seq.
	EvAnswerFull
	// EvAnswerDelta: an incremental AnswerDelta was sent. Seq is the
	// answer seq.
	EvAnswerDelta
	// EvResyncRequested: the focal client detected an answer-sequence
	// gap and asked for a re-baselining update. Seq is the client's last
	// applied seq.
	EvResyncRequested
	// EvReportSent: an object sent an uplink report. Kind says which
	// (move/enter/exit/leave/probe-reply), Value the reported distance.
	EvReportSent
	// EvReportSuppressed: an in-circle object drifted but stayed under
	// the report threshold, so no uplink was spent. Value is the drift.
	EvReportSuppressed
	// EvBoundaryCrossed: an object crossed the advertised answer-circle
	// boundary (Kind distinguishes enter from exit).
	EvBoundaryCrossed
	// EvQueryHandoffBegun: a federation node started migrating a query
	// monitor to a neighbor. Node is the sender, Seq the exported
	// answer seq.
	EvQueryHandoffBegun
	// EvObjectHandoffBegun: a federation node handed an object that
	// crossed a partition boundary to a neighbor.
	EvObjectHandoffBegun
	// EvHandoffAcked: the new home node confirmed a query handoff, so
	// the old node dropped its retry copy.
	EvHandoffAcked
	// EvRelayDropped: a federation relay exceeded its hop budget or had
	// no owner and was dropped.
	EvRelayDropped
	// EvColumnMoved: the balancer reassigned a grid-cell column between
	// adjacent federation nodes. Node is the donor, Value the receiver,
	// Seq the new partition map version.
	EvColumnMoved
	// EvNetSend: the simulated medium accepted a message for delivery.
	// Dir is the metrics direction, Kind the message kind.
	EvNetSend
	// EvNetDeliver: the medium delivered a message to one recipient.
	EvNetDeliver
	// EvNetDrop: the medium lost a message (loss model or client down).
	EvNetDrop

	numEventTypes
)

var eventNames = [numEventTypes]string{
	EvQueryRegistered:    "query-registered",
	EvQueryDeregistered:  "query-deregistered",
	EvProbe:              "probe",
	EvInstalled:          "installed",
	EvAnswerFull:         "answer-full",
	EvAnswerDelta:        "answer-delta",
	EvResyncRequested:    "resync-requested",
	EvReportSent:         "report-sent",
	EvReportSuppressed:   "report-suppressed",
	EvBoundaryCrossed:    "boundary-crossed",
	EvQueryHandoffBegun:  "query-handoff-begun",
	EvObjectHandoffBegun: "object-handoff-begun",
	EvHandoffAcked:       "handoff-acked",
	EvRelayDropped:       "relay-dropped",
	EvColumnMoved:        "column-moved",
	EvNetSend:            "net-send",
	EvNetDeliver:         "net-deliver",
	EvNetDrop:            "net-drop",
}

// String implements fmt.Stringer.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// Event is one traced protocol event. It is a small value type: emit
// sites construct it on the stack and hand it to the sink by value, so
// a disabled (nil) sink costs one branch and an enabled one costs no
// heap allocation.
type Event struct {
	At     model.Tick
	Type   EventType
	Node   int16         // federation node id, -1 when single-node
	Dir    int8          // metrics direction for net events, -1 otherwise
	Kind   protocol.Kind // message kind where applicable, 0 otherwise
	Query  model.QueryID // 0 when not query-scoped
	Object model.ObjectID
	Seq    uint32  // answer/probe sequence or epoch, type-dependent
	Value  float64 // radius, distance, k — type-dependent
}

// String renders one dump line: fixed field order, only meaningful
// fields, so recorder dumps diff cleanly across runs.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d %s", e.At, e.Type)
	if e.Node >= 0 {
		fmt.Fprintf(&b, " node=%d", e.Node)
	}
	if e.Query != 0 {
		fmt.Fprintf(&b, " q=%d", e.Query)
	}
	if e.Object != 0 {
		fmt.Fprintf(&b, " obj=%d", e.Object)
	}
	if e.Kind != 0 {
		fmt.Fprintf(&b, " kind=%s", e.Kind)
	}
	if e.Dir >= 0 {
		fmt.Fprintf(&b, " dir=%d", e.Dir)
	}
	if e.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", e.Seq)
	}
	if e.Value != 0 {
		fmt.Fprintf(&b, " v=%.3f", e.Value)
	}
	return b.String()
}

// Sink receives traced events. Implementations must be safe for
// concurrent use: federation nodes tick on parallel goroutines and all
// share one sink.
type Sink interface {
	Record(Event)
}

// SinkFunc adapts a function to the Sink interface (the engine uses it
// to feed histogram collectors from the event stream).
type SinkFunc func(Event)

// Record implements Sink.
func (f SinkFunc) Record(e Event) { f(e) }

// Tee fans one event stream out to every non-nil sink. It returns nil
// when no sink remains, so emit sites keep their single nil check.
func Tee(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return teeSink(out)
}

type teeSink []Sink

func (t teeSink) Record(e Event) {
	for _, s := range t {
		s.Record(e)
	}
}

// WithNode returns a sink that stamps every event with a federation
// node id before forwarding, so one shared recorder can tell the
// parallel per-node servers apart. A nil sink stays nil.
func WithNode(s Sink, node int16) Sink {
	if s == nil {
		return nil
	}
	return nodeSink{inner: s, node: node}
}

type nodeSink struct {
	inner Sink
	node  int16
}

func (n nodeSink) Record(e Event) {
	e.Node = n.node
	n.inner.Record(e)
}

// DefaultRecorderCap is the flight recorder's default ring size: about
// two thousand protocol events, enough to cover the last few ticks of a
// smoke-scale soak when a divergence assertion fires.
const DefaultRecorderCap = 2048

// Recorder is the flight recorder: a mutex-guarded bounded ring of the
// most recent events plus running per-type counts over the whole run.
// Recording into a full ring overwrites the oldest event and never
// allocates, so a recorder can stay armed for an entire soak.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // ring index of the next write
	total uint64 // events ever recorded (>= len(ring) once wrapped)
	byTyp [numEventTypes]uint64
}

// NewRecorder returns a recorder keeping the last capacity events
// (DefaultRecorderCap if capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Record implements Sink.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
	}
	r.next++
	if r.next == cap(r.ring) {
		r.next = 0
	}
	r.total++
	if int(e.Type) < len(r.byTyp) {
		r.byTyp[e.Type]++
	}
	r.mu.Unlock()
}

// Total returns how many events were recorded over the recorder's
// lifetime, including those the ring has since overwritten.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Count returns the lifetime count of one event type.
func (r *Recorder) Count(t EventType) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(t) >= len(r.byTyp) {
		return 0
	}
	return r.byTyp[t]
}

// Counts returns the lifetime per-type counts keyed by event name,
// omitting zero entries (the expvar export in cmd/dknnd publishes
// this map).
func (r *Recorder) Counts() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64)
	for t, n := range r.byTyp {
		if n > 0 {
			out[EventType(t).String()] = n
		}
	}
	return out
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if r.total > uint64(len(r.ring)) { // wrapped: oldest is at next
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// Dump writes a human-readable flight-recorder dump: the per-type
// counts, then every retained event oldest-first. Chaos tests call it
// through DumpOnFailure when an assertion fires so CI logs carry the
// message sequence that led to the divergence.
func (r *Recorder) Dump(w io.Writer) {
	events := r.Events()
	counts := r.Counts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "flight recorder: %d events recorded, last %d retained\n",
		r.Total(), len(events))
	for _, name := range names {
		fmt.Fprintf(w, "  %-22s %d\n", name, counts[name])
	}
	for _, e := range events {
		fmt.Fprintf(w, "  %s\n", e)
	}
}

// String renders Dump as a string.
func (r *Recorder) String() string {
	var b strings.Builder
	r.Dump(&b)
	return b.String()
}

// TB is the subset of testing.TB that DumpOnFailure needs; declaring it
// here keeps the testing package out of non-test binaries.
type TB interface {
	Cleanup(func())
	Failed() bool
	Logf(format string, args ...any)
}

// DumpOnFailure arms a flight recorder for a test: when the test ends
// failed, the recorder's dump goes to the test log, so a chaos or
// federation divergence ships its protocol history with the assertion.
func DumpOnFailure(t TB, r *Recorder) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("\n%s", r.String())
		}
	})
}
