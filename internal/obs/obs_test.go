package obs

import (
	"strings"
	"sync"
	"testing"

	"dmknn/internal/protocol"
)

func TestRecorderRingRetainsNewest(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(Event{At: 0, Type: EvProbe, Seq: uint32(i), Node: -1, Dir: -1})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint32(7 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d (oldest-first after wrap)", i, e.Seq, want)
		}
	}
	if got := r.Count(EvProbe); got != 10 {
		t.Fatalf("Count(EvProbe) = %d, want 10 (counts survive overwrite)", got)
	}
}

func TestRecorderEventsBeforeWrap(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Type: EvQueryRegistered, Query: 3})
	r.Record(Event{Type: EvAnswerFull, Query: 3, Seq: 1})
	events := r.Events()
	if len(events) != 2 || events[0].Type != EvQueryRegistered || events[1].Type != EvAnswerFull {
		t.Fatalf("unexpected retained events: %v", events)
	}
}

func TestRecorderRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(64)
	e := Event{At: 5, Type: EvReportSent, Object: 9, Kind: protocol.KindMoveReport, Node: -1, Dir: -1}
	// Warm the ring to capacity so the steady state (overwrite) is measured.
	for i := 0; i < 64; i++ {
		r.Record(e)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Record(e) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Type: EvNetDeliver, Node: int16(g), Dir: 0})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Total(); got != 4000 {
		t.Fatalf("Total = %d, want 4000", got)
	}
	if got := len(r.Events()); got != 128 {
		t.Fatalf("retained %d, want full ring of 128", got)
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{At: 3, Type: EvProbe, Query: 7, Seq: 2, Value: 250, Node: -1, Dir: -1})
	r.Record(Event{At: 4, Type: EvResyncRequested, Query: 7, Seq: 9, Node: 1, Dir: -1})
	out := r.String()
	for _, want := range []string{
		"2 events recorded, last 2 retained",
		"probe",
		"resync-requested",
		"t=3 probe q=7 seq=2 v=250.000",
		"t=4 resync-requested node=1 q=7 seq=9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestCountsByName(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Type: EvAnswerDelta})
	r.Record(Event{Type: EvAnswerDelta})
	r.Record(Event{Type: EvNetDrop})
	counts := r.Counts()
	if counts["answer-delta"] != 2 || counts["net-drop"] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	if _, ok := counts["probe"]; ok {
		t.Fatal("Counts includes zero entry")
	}
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Fatal("Tee of nils should be nil")
	}
	a, b := NewRecorder(4), NewRecorder(4)
	if got := Tee(a, nil); got != Sink(a) {
		t.Fatal("Tee with one live sink should return it unwrapped")
	}
	s := Tee(a, nil, b)
	s.Record(Event{Type: EvInstalled})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("tee did not fan out: a=%d b=%d", a.Total(), b.Total())
	}
}

// fakeTB records whether DumpOnFailure's cleanup logged.
type fakeTB struct {
	failed   bool
	cleanups []func()
	logged   []string
}

func (f *fakeTB) Cleanup(fn func())               { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Failed() bool                    { return f.failed }
func (f *fakeTB) Logf(format string, args ...any) { f.logged = append(f.logged, format) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestDumpOnFailure(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Type: EvAnswerFull, Query: 1, Seq: 1})

	pass := &fakeTB{}
	DumpOnFailure(pass, r)
	pass.runCleanups()
	if len(pass.logged) != 0 {
		t.Fatal("passed test should not dump")
	}

	fail := &fakeTB{failed: true}
	DumpOnFailure(fail, r)
	fail.runCleanups()
	if len(fail.logged) != 1 {
		t.Fatal("failed test should dump exactly once")
	}
}

func TestEventTypeString(t *testing.T) {
	if EvQueryRegistered.String() != "query-registered" {
		t.Fatalf("got %q", EvQueryRegistered.String())
	}
	if got := EventType(200).String(); got != "event(200)" {
		t.Fatalf("got %q", got)
	}
}
