// Benchmarks that regenerate every figure and table of the reconstructed
// evaluation (DESIGN.md §5) at smoke scale, one benchmark per experiment.
// Each benchmark iteration runs the full (methods × sweep) grid of its
// experiment and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// exercises the entire evaluation pipeline. The paper-scale numbers come
// from `go run ./cmd/dknn-bench -profile full` and are recorded in
// EXPERIMENTS.md.
package dmknn

import (
	"testing"

	"dmknn/internal/exp"
)

// benchProfile is the smoke-scale evaluation grid.
func benchProfile() exp.Profile {
	p := exp.SmokeProfile()
	// Keep each experiment under a few hundred milliseconds per
	// iteration; b.N will still multiply it.
	p.Base.Ticks = 30
	p.Base.Warmup = 10
	return p
}

// runExperiment benchmarks one experiment of the suite and reports the
// last sweep point's per-method values as custom metrics.
func runExperiment(b *testing.B, build func(exp.Profile) *exp.Experiment) {
	b.Helper()
	p := benchProfile()
	e := build(p)
	var tbl *exp.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tbl == nil || len(tbl.Rows) == 0 {
		b.Fatal("no results")
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	for i, col := range tbl.Columns {
		b.ReportMetric(last.Values[i], sanitizeMetric(col))
	}
}

// sanitizeMetric converts a column header into a benchstat-safe unit.
func sanitizeMetric(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '=', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig5ObjectScaling regenerates Fig 5: uplink/tick vs N.
func BenchmarkFig5ObjectScaling(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig5ObjectScaling() })
}

// BenchmarkFig6VaryK regenerates Fig 6: uplink/tick vs k.
func BenchmarkFig6VaryK(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig6VaryK() })
}

// BenchmarkFig7ObjectSpeed regenerates Fig 7: uplink/tick vs object speed.
func BenchmarkFig7ObjectSpeed(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig7ObjectSpeed() })
}

// BenchmarkFig8QuerySpeed regenerates Fig 8: uplink/tick vs query speed.
func BenchmarkFig8QuerySpeed(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig8QuerySpeed() })
}

// BenchmarkFig9Downlink regenerates Fig 9: downlink+broadcast vs N.
func BenchmarkFig9Downlink(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig9Downlink() })
}

// BenchmarkFig10ServerCPU regenerates Fig 10: server µs/tick vs N.
func BenchmarkFig10ServerCPU(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig10ServerCPU() })
}

// BenchmarkFig11QueryScaling regenerates Fig 11: uplink/tick vs Q.
func BenchmarkFig11QueryScaling(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig11QueryScaling() })
}

// BenchmarkFig12SlackAblation regenerates Fig 12: DKNN cost vs horizon H.
func BenchmarkFig12SlackAblation(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig12SlackAblation() })
}

// BenchmarkFig13GridResolution regenerates Fig 13: cost vs grid cell
// size.
func BenchmarkFig13GridResolution(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig13GridResolution() })
}

// BenchmarkFig14IndexAblation regenerates Fig 14: grid vs R-tree server
// index.
func BenchmarkFig14IndexAblation(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig14IndexAblation() })
}

// BenchmarkFig15Skew regenerates Fig 15: uniform vs hotspot populations.
func BenchmarkFig15Skew(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig15Skew() })
}

// BenchmarkFig16ShardScaling regenerates Fig 16: server critical path vs
// shard count.
func BenchmarkFig16ShardScaling(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig16ShardScaling() })
}

// BenchmarkFig17LossRobustness regenerates Fig 17: quality vs loss.
func BenchmarkFig17LossRobustness(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig17LossRobustness() })
}

// BenchmarkFig19LargeScale regenerates Fig 19: audit-free traffic and
// server time up to N = 100 000 — the guard that the simulated medium's
// cell-indexed fan-out keeps large populations affordable.
func BenchmarkFig19LargeScale(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig19LargeScale() })
}

// BenchmarkFig20ClusterScaling regenerates Fig 20: the spatially
// partitioned federation — per-node server time, inter-node link
// traffic, and handoff counts as the node count grows.
func BenchmarkFig20ClusterScaling(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig20ClusterScaling() })
}

// BenchmarkFig21Staleness regenerates Fig 21: answer staleness and
// report-gap quantiles vs radio loss, collected by the engine's Observe
// mode from the per-query lifecycle trace.
func BenchmarkFig21Staleness(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig21Staleness() })
}

// BenchmarkFig22AdaptiveBalance regenerates Fig 22: adaptive
// partitioning vs the static even split under hotspot skew — load CV,
// server latency tail, applied column moves, and the exactness
// invariant across the migrating ticks.
func BenchmarkFig22AdaptiveBalance(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig22AdaptiveBalance() })
}

// BenchmarkFig24InfluenceUplink regenerates Fig 24: uplink per tick with
// influence-driven frontier thresholds against the fixed-horizon
// baseline at equal (exact) recall, plus the staleness and report-gap
// tails the suppressed reports are allowed to spend.
func BenchmarkFig24InfluenceUplink(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Fig24InfluenceUplink() })
}

// BenchmarkTable2Breakdown regenerates Table 2: message breakdown by kind
// and direction.
func BenchmarkTable2Breakdown(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Accuracy regenerates Table 3: accuracy/cost tradeoff.
func BenchmarkTable3Accuracy(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Table3Accuracy() })
}

// BenchmarkTable4Mobility regenerates Table 4: traffic per mobility model.
func BenchmarkTable4Mobility(b *testing.B) {
	runExperiment(b, func(p exp.Profile) *exp.Experiment { return p.Table4Mobility() })
}
