package dmknn

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dmknn/internal/obs"
)

// quickSim is a small, fast configuration for facade tests.
func quickSim(method string) SimConfig {
	return SimConfig{
		Method:         method,
		World:          Rect{0, 0, 1000, 1000},
		GridCols:       16,
		GridRows:       16,
		NumObjects:     400,
		NumQueries:     4,
		K:              5,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  10,
		Ticks:          40,
		Warmup:         10,
		Seed:           3,
		Protocol:       Protocol{HorizonTicks: 8, MinProbeRadius: 100},
	}
}

func TestRunDKNN(t *testing.T) {
	rep, err := Run(quickSim(MethodDKNN))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "dknn" {
		t.Errorf("method = %q", rep.Method)
	}
	if rep.Exactness != 1.0 {
		t.Errorf("default DKNN must be exact, got %v", rep.Exactness)
	}
	if rep.UplinkPerTick <= 0 {
		t.Error("no uplink traffic measured")
	}
	if rep.UplinkBytes == 0 {
		t.Error("no uplink bytes measured")
	}
	if !strings.Contains(rep.MessageBreakdown, "move-report") {
		t.Errorf("breakdown missing protocol rows:\n%s", rep.MessageBreakdown)
	}
}

func TestRunComparesMethods(t *testing.T) {
	dknn, err := Run(quickSim(MethodDKNN))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Run(quickSim(MethodCP))
	if err != nil {
		t.Fatal(err)
	}
	ci := quickSim(MethodCI)
	ci.CITau = 20
	ciRep, err := Run(ci)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Exactness != 1.0 {
		t.Errorf("CP exactness = %v", cp.Exactness)
	}
	if !(dknn.UplinkPerTick < ciRep.UplinkPerTick && ciRep.UplinkPerTick < cp.UplinkPerTick) {
		t.Errorf("expected DKNN < CI < CP uplink, got %.1f / %.1f / %.1f",
			dknn.UplinkPerTick, ciRep.UplinkPerTick, cp.UplinkPerTick)
	}
}

func TestRunRejectsUnknownMethod(t *testing.T) {
	cfg := quickSim("bogus")
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown method accepted")
	}
	cfg = quickSim(MethodDKNN)
	cfg.Mobility = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown mobility accepted")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	// A zero config must resolve to the headline workload; just check the
	// defaulting logic, not a full (expensive) run.
	cfg := SimConfig{}.withDefaults()
	if cfg.Method != MethodDKNN || cfg.NumObjects != 20000 || cfg.K != 10 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.World == (Rect{}) {
		t.Error("world not defaulted")
	}
}

func TestAnswerString(t *testing.T) {
	a := Answer{Query: 3, Tick: 9, Neighbors: []Neighbor{{ID: 1, Distance: 2.5}}}
	if a.String() == "" {
		t.Error("empty answer string")
	}
}

// Full deployment loop through the public API: server + object clients +
// query client over real TCP with a fast tick.
func TestDeploymentEndToEnd(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100, AnswerSlack: 1}

	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World:          world,
		GridCols:       10,
		GridRows:       10,
		TickInterval:   tick,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  10,
		Protocol:       proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}

	var mu sync.Mutex
	positions := map[ObjectID]Point{
		1: {500, 520},
		2: {500, 540},
		3: {100, 100},
	}
	for id := ObjectID(1); id <= 3; id++ {
		id := id
		oc, err := DialObject(srv.Addr(), id, func() Point {
			mu.Lock()
			defer mu.Unlock()
			return positions[id]
		}, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}

	answers := make(chan Answer, 64)
	qc, err := DialQuery(srv.Addr(), 100, 1, 2,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} },
		func(a Answer) {
			select {
			case answers <- a:
			default:
			}
		},
		copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	// Wait for an initial complete answer.
	deadline := time.After(5 * time.Second)
	var got Answer
	for len(got.Neighbors) != 2 {
		select {
		case got = <-answers:
		case <-deadline:
			t.Fatalf("no complete answer; latest client view: %v", qc.Answer())
		}
	}
	if got.Neighbors[0].ID != 1 || got.Neighbors[1].ID != 2 {
		t.Fatalf("initial answer = %v, want objects 1,2", got)
	}
	if d := got.Neighbors[0].Distance; math.Abs(d-20) > 1e-6 {
		t.Errorf("nearest distance = %v, want 20", d)
	}

	// Move object 3 next to the query; the answer must change to include
	// it.
	mu.Lock()
	positions[3] = Point{500, 505}
	mu.Unlock()
	deadline = time.After(5 * time.Second)
	for {
		select {
		case a := <-answers:
			if len(a.Neighbors) == 2 && (a.Neighbors[0].ID == 3 || a.Neighbors[1].ID == 3) {
				if srv.QueryCount() != 1 {
					t.Errorf("QueryCount = %d", srv.QueryCount())
				}
				if srv.ClientCount() != 4 {
					t.Errorf("ClientCount = %d", srv.ClientCount())
				}
				return
			}
		case <-deadline:
			t.Fatalf("answer never updated; server view: %v", srv.Answer(1))
		}
	}
}

func TestServerOptionsValidation(t *testing.T) {
	if _, err := ListenAndServe("127.0.0.1:0", ServerOptions{}); err == nil {
		t.Fatal("missing world accepted")
	}
	if _, err := DialObject("127.0.0.1:1", 1, func() Point { return Point{} }, ClientOptions{}); err == nil {
		t.Fatal("missing world accepted for client")
	}
}

func TestRunRangeMonitoring(t *testing.T) {
	cfg := quickSim(MethodDKNN)
	cfg.K = 0
	cfg.QueryRange = 120
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exactness != 1.0 {
		t.Errorf("range monitoring exactness = %v", rep.Exactness)
	}
}

// DialRange registers a fixed-radius monitor over TCP.
func TestDeploymentRangeQuery(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}

	// Two objects inside the 100 m radius, one outside.
	for id, p := range map[ObjectID]Point{1: {520, 500}, 2: {500, 540}, 3: {800, 800}} {
		p := p
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}
	got := make(chan Answer, 16)
	qc, err := DialRange(srv.Addr(), 100, 1, 100,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} },
		func(a Answer) {
			select {
			case got <- a:
			default:
			}
		}, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case a := <-got:
			if len(a.Neighbors) == 2 {
				set := map[ObjectID]bool{}
				for _, n := range a.Neighbors {
					set[n.ID] = true
				}
				if !set[1] || !set[2] {
					t.Fatalf("range answer = %v", a.Neighbors)
				}
				return
			}
		case <-deadline:
			t.Fatalf("no complete range answer; server view %v", srv.Answer(1))
		}
	}
}

func TestDialRangeValidation(t *testing.T) {
	if _, err := DialRange("127.0.0.1:1", 1, 1, 0, nil, nil, nil,
		ClientOptions{World: Rect{0, 0, 1, 1}}); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestServerStats(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{World: world, TickInterval: tick})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	oc, err := DialObject(srv.Addr(), 1, func() Point { return Point{1, 1} },
		ClientOptions{World: world, TickInterval: tick})
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Clients != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats never saw the client: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A deployed server with ServerOptions.Trace armed must stream protocol
// events through the real TCP stack into the recorder: registration, the
// probe rounds, the install, and the first full answer all leave a trace.
func TestDeploymentTraceRecorder(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100, AnswerSlack: 1}
	rec := obs.NewRecorder(0)
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto,
		Trace: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}
	oc, err := DialObject(srv.Addr(), 1, func() Point { return Point{500, 520} }, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	answers := make(chan Answer, 16)
	qc, err := DialQuery(srv.Addr(), 100, 1, 1,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} },
		func(a Answer) {
			select {
			case answers <- a:
			default:
			}
		}, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case a := <-answers:
			if len(a.Neighbors) != 1 {
				continue
			}
			for _, ev := range []obs.EventType{
				obs.EvQueryRegistered, obs.EvProbe, obs.EvInstalled, obs.EvAnswerFull,
			} {
				if rec.Count(ev) == 0 {
					t.Errorf("no %v event traced across the deployment", ev)
				}
			}
			return
		case <-deadline:
			t.Fatalf("no complete answer; recorder holds %d events", rec.Total())
		}
	}
}

// Churn soak: objects connect and disconnect while queries run; the
// server must stay available, leak no clients, and keep answering.
func TestDeploymentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	world := Rect{0, 0, 1000, 1000}
	tick := 10 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 200, AnswerSlack: 2}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}

	// A stable core population near the query.
	for id := ObjectID(1); id <= 6; id++ {
		p := Point{480 + float64(id)*8, 500}
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}
	updates := make(chan Answer, 256)
	qc, err := DialQuery(srv.Addr(), 1000, 1, 3,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} },
		func(a Answer) {
			select {
			case updates <- a:
			default:
			}
		}, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()

	// Churn: 40 transient objects connect near the query, live briefly,
	// and disconnect (some abruptly, exercising the reconnect/cleanup
	// paths).
	for i := 0; i < 40; i++ {
		id := ObjectID(100 + i)
		p := Point{495, 495}
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatalf("churn dial %d: %v", i, err)
		}
		time.Sleep(3 * tick)
		if err := oc.Close(); err != nil {
			t.Fatalf("churn close %d: %v", i, err)
		}
	}

	// The stable population must still be served.
	deadline := time.Now().Add(5 * time.Second)
	for {
		a := qc.Answer()
		if len(a.Neighbors) == 3 {
			ok := true
			for _, n := range a.Neighbors {
				if n.ID >= 100 {
					ok = false // transient member lingering is fine briefly
				}
			}
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("answer did not settle after churn: %v (server %v)", a, srv.Answer(1))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// All transient connections must be gone.
	deadline = time.Now().Add(2 * time.Second)
	for srv.ClientCount() != 7 {
		if time.Now().After(deadline) {
			t.Fatalf("client leak: %d connected, want 7", srv.ClientCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Stats().UplinkMsgs == 0 {
		t.Error("no traffic recorded")
	}
}

// A sharded deployed server behaves identically on the wire.
func TestDeploymentSharded(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}
	for id, p := range map[ObjectID]Point{1: {510, 500}, 2: {530, 500}} {
		p := p
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}
	qc, err := DialQuery(srv.Addr(), 100, 7, 2,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} }, nil, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a := qc.Answer(); len(a.Neighbors) == 2 {
			if a.Neighbors[0].ID != 1 {
				t.Fatalf("answer = %v", a.Neighbors)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no answer from sharded server: %v", srv.Answer(7))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The batched ingest pipeline deployed end to end: uplinks queue per
// shard between ticks, the tick loop drains them, and the answers are
// the same as every other server variant's.
func TestDeploymentBatched(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto,
		Shards: 4, BatchedIngest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto}
	for id, p := range map[ObjectID]Point{1: {510, 500}, 2: {530, 500}} {
		p := p
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}
	qc, err := DialQuery(srv.Addr(), 100, 7, 2,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} }, nil, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a := qc.Answer(); len(a.Neighbors) == 2 {
			if a.Neighbors[0].ID != 1 {
				t.Fatalf("answer = %v", a.Neighbors)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no answer from batched server: %v", srv.Answer(7))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerAnswerAccessor(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{World: world, TickInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if a := srv.Answer(42); len(a.Neighbors) != 0 || a.Query != 42 {
		t.Fatalf("unknown query answer = %v", a)
	}
}

// The full deployment loop over UDP: the protocol tolerates the
// datagram medium end-to-end through the public API.
func TestDeploymentOverUDP(t *testing.T) {
	world := Rect{0, 0, 1000, 1000}
	tick := 20 * time.Millisecond
	proto := Protocol{HorizonTicks: 8, MinProbeRadius: 100, AnswerSlack: 1}
	srv, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: world, GridCols: 10, GridRows: 10, TickInterval: tick,
		MaxObjectSpeed: 10, MaxQuerySpeed: 10, Protocol: proto,
		Transport: TransportUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	copts := ClientOptions{World: world, TickInterval: tick, Protocol: proto, Transport: TransportUDP}
	for id, p := range map[ObjectID]Point{1: {510, 500}, 2: {530, 500}} {
		p := p
		oc, err := DialObject(srv.Addr(), id, func() Point { return p }, copts)
		if err != nil {
			t.Fatal(err)
		}
		defer oc.Close()
	}
	qc, err := DialQuery(srv.Addr(), 100, 1, 2,
		func() Point { return Point{500, 500} },
		func() Vector { return Vector{} }, nil, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	deadline := time.Now().Add(8 * time.Second)
	for {
		if a := qc.Answer(); len(a.Neighbors) == 2 && a.Neighbors[0].ID == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no answer over UDP; server view %v", srv.Answer(1))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUnknownTransportRejected(t *testing.T) {
	if _, err := ListenAndServe("127.0.0.1:0", ServerOptions{
		World: Rect{0, 0, 1, 1}, Transport: "carrier-pigeon",
	}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := DialObject("127.0.0.1:1", 1, func() Point { return Point{} },
		ClientOptions{World: Rect{0, 0, 1, 1}, Transport: "x"}); err == nil {
		t.Fatal("unknown client transport accepted")
	}
}
