package dmknn

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/grid"
	"dmknn/internal/metrics"
	"dmknn/internal/model"
	"dmknn/internal/nettcp"
	"dmknn/internal/netudp"
	"dmknn/internal/obs"
	"dmknn/internal/protocol"
	"dmknn/internal/shard"
	"dmknn/internal/transport"
)

// ServerOptions configures a deployed query server.
type ServerOptions struct {
	// World is the coordinate region the population moves in. Required.
	World Rect
	// GridCols/GridRows define the broadcast cell layout (default
	// 64×64).
	GridCols, GridRows int
	// TickInterval is the evaluation interval Δt (default 1s). Server
	// and clients derive the shared tick number from the wall clock, so
	// hosts must be clock-synchronized to a fraction of this interval.
	TickInterval time.Duration
	// Speed bounds of the population in m/s; the protocol's safety slack
	// is sized from them (defaults 30/30).
	MaxObjectSpeed float64
	MaxQuerySpeed  float64
	// Protocol tunes the DKNN protocol.
	Protocol Protocol
	// Shards, when > 1, partitions the server's query state over that
	// many parallel shards (interior scaling on multicore hosts; the
	// wire protocol is unchanged).
	Shards int
	// BatchedIngest switches the (sharded) server to the batched ingest
	// pipeline: uplinks arriving between ticks are enqueued per shard
	// and drained shard-parallel at the next tick, instead of being
	// processed under the owning shard's lock inside the transport's
	// receive goroutine. The wire protocol is unchanged; responses to
	// mid-tick arrivals are deferred to the next tick boundary, which a
	// deployment already tolerates (LatencyTicks is 1). Implies at least
	// one shard; combine with Shards for parallel drains.
	BatchedIngest bool
	// Transport selects the medium: TransportTCP (default; reliable,
	// framed, with disconnect notifications) or TransportUDP (datagrams
	// — lossy and unordered, the medium class the protocol was designed
	// for; silent clients expire after three horizons).
	Transport string
	// Trace, when set, receives the query server's structured protocol
	// events (see internal/obs). The sink is invoked from the tick loop
	// and the transport's receive goroutines, so it must be safe for
	// concurrent use; obs.Recorder is. Nil disables tracing: the hot
	// paths then pay one branch per would-be event and nothing else.
	Trace obs.Sink
}

// Transport names for ServerOptions/ClientOptions.
const (
	TransportTCP = "tcp"
	TransportUDP = "udp"
)

func (o ServerOptions) withDefaults() (ServerOptions, error) {
	if o.World == (Rect{}) {
		return o, fmt.Errorf("dmknn: ServerOptions.World is required")
	}
	if o.GridCols == 0 {
		o.GridCols = 64
	}
	if o.GridRows == 0 {
		o.GridRows = 64
	}
	if o.TickInterval == 0 {
		o.TickInterval = time.Second
	}
	if o.MaxObjectSpeed == 0 {
		o.MaxObjectSpeed = 30
	}
	if o.MaxQuerySpeed == 0 {
		o.MaxQuerySpeed = 30
	}
	switch o.Transport {
	case "", TransportTCP, TransportUDP:
	default:
		return o, fmt.Errorf("dmknn: unknown transport %q", o.Transport)
	}
	return o, nil
}

// wallClock converts the wall time to the shared tick number.
func wallClock(interval time.Duration) func() model.Tick {
	return func() model.Tick {
		return model.Tick(time.Now().UnixNano() / int64(interval))
	}
}

// serverCore is the common surface of the single and sharded servers.
type serverCore interface {
	transport.ServerHandler
	Tick(model.Tick)
	Finalize(model.Tick) bool
	Answer(model.QueryID) model.Answer
	QueryCount() int
	BusyTime() time.Duration
}

// serverTransport is the common surface of the TCP and UDP endpoints.
type serverTransport interface {
	Addr() net.Addr
	AttachHandler(transport.ServerHandler)
	Side() transport.ServerSide
	Serve() error
	Close() error
	ClientCount() int
	Counters() metrics.Counters
}

// Server is a deployed DKNN query server: a network endpoint that moving
// objects and query clients connect to.
type Server struct {
	tcp    serverTransport
	core   serverCore
	ticker *time.Ticker
	expire func() // UDP liveness sweep; nil on TCP
	done   chan struct{}
	wg     sync.WaitGroup
}

// ListenAndServe starts a query server on addr (":0" picks a port; see
// Server.Addr). The returned server is running; call Close to stop it.
func ListenAndServe(addr string, opts ServerOptions) (*Server, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	world := opts.World.internal()
	geom := grid.NewGeometry(world, opts.GridCols, opts.GridRows)
	var (
		tcp    serverTransport
		expire func()
	)
	if opts.Transport == TransportUDP {
		liveness := 3 * time.Duration(max(1, opts.Protocol.HorizonTicks)) * opts.TickInterval
		if opts.Protocol.HorizonTicks == 0 {
			liveness = 60 * opts.TickInterval
		}
		udp, uerr := netudp.Listen(addr, geom, liveness)
		if uerr != nil {
			return nil, uerr
		}
		tcp = udp
		expire = func() { udp.ExpireSilent() }
	} else {
		t, terr := nettcp.Listen(addr, geom)
		if terr != nil {
			return nil, terr
		}
		tcp = t
	}
	cfg := opts.Protocol.internal().WithWorldDefault(world)
	deps := core.ServerDeps{
		Side:           tcp.Side(),
		Now:            wallClock(opts.TickInterval),
		DT:             opts.TickInterval.Seconds(),
		MaxObjectSpeed: opts.MaxObjectSpeed,
		MaxQuerySpeed:  opts.MaxQuerySpeed,
		// Over a real network, probe replies need a round trip: budget
		// one tick each way so Finalize does not conclude a probe before
		// the replies can possibly have arrived.
		LatencyTicks: 1,
		Trace:        opts.Trace,
	}
	var srv serverCore
	var err2 error
	if opts.Shards > 1 || opts.BatchedIngest {
		srv, err2 = shard.NewWithOptions(max(1, opts.Shards), cfg, deps,
			shard.Options{Batched: opts.BatchedIngest})
	} else {
		srv, err2 = core.NewServer(cfg, deps)
	}
	if err2 != nil {
		tcp.Close()
		return nil, err2
	}
	tcp.AttachHandler(srv)

	s := &Server{
		tcp:    tcp,
		core:   srv,
		ticker: time.NewTicker(opts.TickInterval),
		expire: expire,
		done:   make(chan struct{}),
	}
	now := wallClock(opts.TickInterval)
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		_ = tcp.Serve()
	}()
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.done:
				return
			case <-s.ticker.C:
				t := now()
				if s.expire != nil {
					s.expire()
				}
				// The batched pipeline drains the inter-tick arrivals
				// here, on the tick goroutine that owns the medium;
				// Drain is a no-op on synchronous servers. Finalize
				// drains again itself, so replies landing mid-round
				// still conclude probes this tick.
				if d, ok := srv.(interface{ Drain(model.Tick) bool }); ok {
					d.Drain(t)
				}
				srv.Tick(t)
				for i := 0; i < 8 && srv.Finalize(t); i++ {
				}
			}
		}
	}()
	return s, nil
}

// Addr returns the server's listen address ("host:port").
func (s *Server) Addr() string { return s.tcp.Addr().String() }

// Answer returns the server's current answer for a registered query.
func (s *Server) Answer(q QueryID) Answer {
	return fromAnswer(s.core.Answer(model.QueryID(q)))
}

// QueryCount returns the number of registered continuous queries.
func (s *Server) QueryCount() int { return s.core.QueryCount() }

// Stats is an operational snapshot of a deployed server.
type Stats struct {
	Clients        int           `json:"clients"`
	Queries        int           `json:"queries"`
	UplinkMsgs     uint64        `json:"uplink_msgs"`
	DownlinkMsgs   uint64        `json:"downlink_msgs"`
	BroadcastMsgs  uint64        `json:"broadcast_msgs"`
	UplinkBytes    uint64        `json:"uplink_bytes"`
	DownlinkBytes  uint64        `json:"downlink_bytes"`
	BroadcastBytes uint64        `json:"broadcast_bytes"`
	BusyTime       time.Duration `json:"busy_ns"`
}

// Stats returns current operational counters.
func (s *Server) Stats() Stats {
	c := s.tcp.Counters()
	return Stats{
		Clients:        s.tcp.ClientCount(),
		Queries:        s.core.QueryCount(),
		UplinkMsgs:     c.Sent(metrics.Uplink),
		DownlinkMsgs:   c.Sent(metrics.Downlink),
		BroadcastMsgs:  c.Sent(metrics.Broadcast),
		UplinkBytes:    c.SentBytes(metrics.Uplink),
		DownlinkBytes:  c.SentBytes(metrics.Downlink),
		BroadcastBytes: c.SentBytes(metrics.Broadcast),
		BusyTime:       s.core.BusyTime(),
	}
}

// ClientCount returns the number of connected clients.
func (s *Server) ClientCount() int { return s.tcp.ClientCount() }

// Close stops the evaluation loop and the TCP endpoint.
func (s *Server) Close() error {
	close(s.done)
	s.ticker.Stop()
	err := s.tcp.Close()
	s.wg.Wait()
	return err
}

// ClientOptions configures a deployed object or query client. The world,
// tick interval, transport, and protocol settings must match the
// server's.
type ClientOptions struct {
	World        Rect
	TickInterval time.Duration
	Protocol     Protocol
	// Transport must match the server: TransportTCP (default) or
	// TransportUDP.
	Transport string
}

func (o ClientOptions) withDefaults() (ClientOptions, error) {
	if o.World == (Rect{}) {
		return o, fmt.Errorf("dmknn: ClientOptions.World is required")
	}
	if o.TickInterval == 0 {
		o.TickInterval = time.Second
	}
	switch o.Transport {
	case "", TransportTCP, TransportUDP:
	default:
		return o, fmt.Errorf("dmknn: unknown transport %q", o.Transport)
	}
	return o, nil
}

// clientConn is the common surface of the TCP and UDP client sockets.
type clientConn interface {
	transport.ClientSide
	Close() error
}

func dialTransport(o ClientOptions, addr string, id model.ObjectID, h transport.ClientHandler) (clientConn, error) {
	if o.Transport == TransportUDP {
		return netudp.Dial(addr, id, h)
	}
	return nettcp.Dial(addr, id, h)
}

// keepaliveSide wraps a datagram socket and tracks the last transmission,
// so the tick loop can announce the client when it has been silent: a UDP
// server only knows addresses it has heard from, and expires silent ones.
type keepaliveSide struct {
	clientConn
	last atomic.Int64 // unix nanos of the last uplink
}

func (k *keepaliveSide) Uplink(m protocol.Message) {
	k.last.Store(time.Now().UnixNano())
	k.clientConn.Uplink(m)
}

// keepaliveEvery returns how often a silent UDP client must announce
// itself: a third of the server's liveness window.
func keepaliveEvery(o ClientOptions) time.Duration {
	h := o.Protocol.HorizonTicks
	if h <= 0 {
		h = 20
	}
	return time.Duration(h) * o.TickInterval
}

// maybeKeepalive sends a position announcement if the client has been
// silent for the keepalive interval.
func maybeKeepalive(k *keepaliveSide, every time.Duration, id model.ObjectID, pos geo.Point) {
	if time.Since(time.Unix(0, k.last.Load())) < every {
		return
	}
	k.Uplink(protocol.LocationReport{Object: id, Pos: pos})
}

// ObjectClient runs the object-side protocol agent against a deployed
// server: it connects, answers probes, and transmits crossing events,
// reading its own position from the supplied callback.
type ObjectClient struct {
	conn clientConn
	// agent is set after the connection exists; the receive loop may
	// deliver broadcasts before then, which are safely dropped (any
	// missed install is re-broadcast within a horizon).
	agent  atomic.Pointer[core.ObjectAgent]
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup
}

// DialObject connects object id to the server at addr. pos is the
// client's position sensor; it is called from the agent's tick loop.
func DialObject(addr string, id ObjectID, pos func() Point, opts ClientOptions) (*ObjectClient, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	oc := &ObjectClient{done: make(chan struct{})}
	cfg := opts.Protocol.internal().WithWorldDefault(opts.World.internal())
	now := wallClock(opts.TickInterval)

	conn, err := dialTransport(opts, addr, model.ObjectID(id), transport.ClientHandlerFunc(func(m protocol.Message) {
		if a := oc.agent.Load(); a != nil {
			a.HandleServerMessage(m)
		}
	}))
	if err != nil {
		return nil, err
	}
	var side transport.ClientSide = conn
	var ka *keepaliveSide
	if opts.Transport == TransportUDP {
		ka = &keepaliveSide{clientConn: conn}
		side = ka
	}
	agent, err := core.NewObjectAgent(cfg, core.AgentDeps{
		ID:           model.ObjectID(id),
		Side:         side,
		Now:          now,
		Pos:          func() geo.Point { return pos().internal() },
		DT:           opts.TickInterval.Seconds(),
		LatencyTicks: 1, // match the server's assumed delivery bound
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	oc.conn = conn
	oc.agent.Store(agent)
	oc.ticker = time.NewTicker(opts.TickInterval)
	oc.wg.Add(1)
	go func() {
		defer oc.wg.Done()
		for {
			select {
			case <-oc.done:
				return
			case <-oc.ticker.C:
				agent.Tick(now())
				if ka != nil {
					maybeKeepalive(ka, keepaliveEvery(opts), model.ObjectID(id), pos().internal())
				}
			}
		}
	}()
	return oc, nil
}

// Close stops the agent and disconnects.
func (oc *ObjectClient) Close() error {
	close(oc.done)
	oc.ticker.Stop()
	err := oc.conn.Close()
	oc.wg.Wait()
	return err
}

// QueryClient runs the focal-device protocol agent for one continuous
// query: it registers the query, keeps the server's track of the focal
// point fresh, and receives answer updates.
type QueryClient struct {
	conn clientConn
	// agent is set after the connection exists; see ObjectClient.agent.
	agent  atomic.Pointer[core.QueryAgent]
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup
}

// DialQuery connects a focal client, registers a k-NN query, and invokes
// onAnswer (may be nil) for every answer change. clientID must be unique
// among all connected clients (objects and queries share the id space);
// pos and vel are the focal device's sensors.
func DialQuery(addr string, clientID ObjectID, query QueryID, k int,
	pos func() Point, vel func() Vector, onAnswer func(Answer),
	opts ClientOptions) (*QueryClient, error) {
	return dialQuerySpec(addr, clientID,
		model.QuerySpec{ID: model.QueryID(query), K: k},
		pos, vel, onAnswer, opts)
}

func dialQuerySpec(addr string, clientID ObjectID, spec model.QuerySpec,
	pos func() Point, vel func() Vector, onAnswer func(Answer),
	opts ClientOptions) (*QueryClient, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	qc := &QueryClient{done: make(chan struct{})}
	cfg := opts.Protocol.internal().WithWorldDefault(opts.World.internal())
	now := wallClock(opts.TickInterval)

	conn, err := dialTransport(opts, addr, model.ObjectID(clientID), transport.ClientHandlerFunc(func(m protocol.Message) {
		if a := qc.agent.Load(); a != nil {
			a.HandleServerMessage(m)
		}
	}))
	if err != nil {
		return nil, err
	}
	var side transport.ClientSide = conn
	var ka *keepaliveSide
	if opts.Transport == TransportUDP {
		ka = &keepaliveSide{clientConn: conn}
		side = ka
	}
	spec.Pos = pos().internal()
	agent, err := core.NewQueryAgent(cfg, spec, core.QueryAgentDeps{
		AgentDeps: core.AgentDeps{
			ID:           model.ObjectID(clientID),
			Side:         side,
			Now:          now,
			Pos:          func() geo.Point { return pos().internal() },
			DT:           opts.TickInterval.Seconds(),
			LatencyTicks: 1, // match the server's assumed delivery bound
		},
		Vel: func() geo.Vector { return vel().internal() },
	})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if onAnswer != nil {
		agent.OnAnswer = func(a model.Answer) { onAnswer(fromAnswer(a)) }
	}
	qc.conn = conn
	qc.agent.Store(agent)
	qc.ticker = time.NewTicker(opts.TickInterval)
	qc.wg.Add(1)
	go func() {
		defer qc.wg.Done()
		for {
			select {
			case <-qc.done:
				return
			case <-qc.ticker.C:
				agent.Tick(now())
				if ka != nil {
					maybeKeepalive(ka, keepaliveEvery(opts), model.ObjectID(clientID), pos().internal())
				}
			}
		}
	}()
	return qc, nil
}

// DialRange connects a focal client and registers a continuous
// range-monitoring query: the answer is every object within radius meters
// of the moving focal point. Other parameters are as in DialQuery.
func DialRange(addr string, clientID ObjectID, query QueryID, radius float64,
	pos func() Point, vel func() Vector, onAnswer func(Answer),
	opts ClientOptions) (*QueryClient, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("dmknn: non-positive range %v", radius)
	}
	return dialQuerySpec(addr, clientID,
		model.QuerySpec{ID: model.QueryID(query), Range: radius},
		pos, vel, onAnswer, opts)
}

// Answer returns the latest answer received from the server.
func (qc *QueryClient) Answer() Answer { return fromAnswer(qc.agent.Load().Answer()) }

// Close deregisters the query and disconnects.
func (qc *QueryClient) Close() error {
	qc.agent.Load().Deregister()
	// Give the deregister frame a moment on the wire before tearing the
	// connection down; a lost deregister is healed by the server's
	// monitor hygiene but costs a few stray reports.
	time.Sleep(10 * time.Millisecond)
	close(qc.done)
	qc.ticker.Stop()
	err := qc.conn.Close()
	qc.wg.Wait()
	return err
}
