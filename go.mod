module dmknn

go 1.22
