package dmknn_test

// End-to-end federation test over real processes and real sockets: four
// dknnd nodes, each a separate OS process (this test binary re-executed
// with -test.run targeting the helper below), clients in the parent
// process, loopback TCP everywhere. The audit is exactness: the
// continuous query's answer must equal the brute-force kNN of the known
// positions (recall 1.00) — initially, after cross-strip handoffs, and
// after a chaos kill + rejoin of a non-home node.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dmknn"
)

const (
	fedHelperEnv  = "DKNN_FED_HELPER_NODE"
	fedPeersEnv   = "DKNN_FED_PEERS"
	fedClientsEnv = "DKNN_FED_CLIENTS"
	fedBalanceEnv = "DKNN_FED_BALANCE" // balance interval in ticks; empty/absent = static partition

	fedWorldSide = 1000.0
	fedGrid      = 10
	fedTick      = 100 * time.Millisecond
)

func fedProtocol() dmknn.Protocol {
	return dmknn.Protocol{HorizonTicks: 8, AnswerSlack: 1, MinProbeRadius: 150}
}

func fedWorld() dmknn.Rect {
	return dmknn.Rect{MinX: 0, MinY: 0, MaxX: fedWorldSide, MaxY: fedWorldSide}
}

// TestHelperFederationNode is not a test: it is the body of one
// federation node process, re-executed by TestFederationFourProcess.
// It starts the node, prints READY (then HEALTHY once every peer link
// session is up), and serves until its stdin closes or it is killed.
func TestHelperFederationNode(t *testing.T) {
	nodeStr := os.Getenv(fedHelperEnv)
	if nodeStr == "" {
		t.Skip("helper: runs only as a re-executed child process")
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		fmt.Println("HELPER-ERROR:", err)
		os.Exit(1)
	}
	opts := dmknn.FederationOptions{
		World:          fedWorld(),
		GridCols:       fedGrid,
		GridRows:       fedGrid,
		TickInterval:   fedTick,
		MaxObjectSpeed: 10,
		Protocol:       fedProtocol(),
		Node:           node,
		PeerAddrs:      strings.Split(os.Getenv(fedPeersEnv), ","),
		ClientAddrs:    strings.Split(os.Getenv(fedClientsEnv), ","),
		Heartbeat:      100 * time.Millisecond,
	}
	if iv := os.Getenv(fedBalanceEnv); iv != "" {
		n, err := strconv.Atoi(iv)
		if err != nil {
			fmt.Println("HELPER-ERROR:", err)
			os.Exit(1)
		}
		opts.BalanceInterval = n
		opts.BalanceMinGain = 0.02
	}
	srv, err := dmknn.ListenAndServeNode(opts)
	if err != nil {
		fmt.Println("HELPER-ERROR:", err)
		os.Exit(1)
	}
	fmt.Println("READY")
	go func() {
		for !srv.Healthy() {
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Println("HEALTHY")
	}()
	if os.Getenv(fedBalanceEnv) != "" {
		// The parent times its chaos to the first column move; announce it.
		go func() {
			for srv.Stats().PartitionVersion == 0 {
				time.Sleep(20 * time.Millisecond)
			}
			fmt.Println("MOVED")
		}()
	}
	if os.Getenv("DKNN_FED_DEBUG") != "" {
		go func() {
			for {
				st := srv.Stats()
				fmt.Fprintf(os.Stderr, "node%d ver=%d owned=%d att=%d localQ=%d oh=%d qh=%d redir=%d drop=%d mov=%d peers=%d ldrop=%d\n",
					node, st.PartitionVersion, st.OwnedColumns, st.Attached, st.LocalQueries,
					st.ObjectHandoffs, st.QueryHandoffs, st.Redirects, st.RelayDrops, st.BalanceMoves,
					st.PeersUp, st.LinkDropped)
				time.Sleep(2 * time.Second)
			}
		}()
	}
	// Serve until the parent closes our stdin (graceful) or kills us
	// (chaos). Stdout is line-scanned by the parent, so only the marker
	// lines above go there.
	io.Copy(io.Discard, os.Stdin)
	srv.Close()
	os.Exit(0)
}

// fedProc is one node process under the parent's control.
type fedProc struct {
	node  int
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

func spawnFedNode(t *testing.T, node int, peers, clients []string, extraEnv ...string) *fedProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperFederationNode$")
	cmd.Env = append(os.Environ(),
		fedHelperEnv+"="+strconv.Itoa(node),
		fedPeersEnv+"="+strings.Join(peers, ","),
		fedClientsEnv+"="+strings.Join(clients, ","),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &fedProc{node: node, cmd: cmd, stdin: stdin, lines: make(chan string, 64)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case p.lines <- sc.Text():
			default: // parent stopped listening; drop
			}
		}
		close(p.lines)
	}()
	return p
}

// expect waits for a stdout line containing marker.
func (p *fedProc) expect(t *testing.T, marker string, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case l, ok := <-p.lines:
			if !ok {
				t.Fatalf("node %d exited before printing %q", p.node, marker)
			}
			if strings.Contains(l, "HELPER-ERROR") {
				t.Fatalf("node %d: %s", p.node, l)
			}
			if strings.Contains(l, marker) {
				return
			}
		case <-deadline:
			t.Fatalf("node %d: no %q within %v", p.node, marker, timeout)
		}
	}
}

// kill terminates the process abruptly (chaos) and reaps it.
func (p *fedProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// shutdown asks for a graceful exit and reaps the process.
func (p *fedProc) shutdown() {
	p.stdin.Close()
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.kill()
	}
}

func reserveLoopbackPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// fedPositions is the parent's ground truth: every object's position,
// shared with the client position sensors.
type fedPositions struct {
	mu  sync.Mutex
	pos map[dmknn.ObjectID]dmknn.Point
}

func (f *fedPositions) get(id dmknn.ObjectID) dmknn.Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pos[id]
}

func (f *fedPositions) set(id dmknn.ObjectID, p dmknn.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pos[id] = p
}

// knn returns the ids of the k objects nearest q, ties broken by id —
// the brute-force truth the protocol's answer is audited against.
func (f *fedPositions) knn(q dmknn.Point, k int) map[dmknn.ObjectID]bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	type cand struct {
		id dmknn.ObjectID
		d2 float64
	}
	var cands []cand
	for id, p := range f.pos {
		dx, dy := p.X-q.X, p.Y-q.Y
		cands = append(cands, cand{id, dx*dx + dy*dy})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	want := map[dmknn.ObjectID]bool{}
	for i := 0; i < k && i < len(cands); i++ {
		want[cands[i].id] = true
	}
	return want
}

// auditExact polls until the query's answer matches truth exactly
// (recall 1.00 at the audited size).
func auditExact(t *testing.T, phase string, qc *dmknn.QueryClient, truth func() map[dmknn.ObjectID]bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		a := qc.Answer()
		want := truth()
		if len(a.Neighbors) == len(want) {
			exact := true
			for _, n := range a.Neighbors {
				if !want[n.ID] {
					exact = false
					break
				}
			}
			if exact {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: answer %v never matched truth %v", phase, a.Neighbors, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFederationFourProcess is the federation's end-to-end audit: four
// single-node dknnd processes over loopback TCP, twelve clients in the
// parent, and three exactness checkpoints — steady state, after objects
// teleport across strip boundaries (object handoff + client migration),
// and after a chaos kill and rejoin of a node the query is not homed at.
func TestFederationFourProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	const nodes = 4
	peers := reserveLoopbackPorts(t, nodes)
	clients := reserveLoopbackPorts(t, nodes)

	procs := make([]*fedProc, nodes)
	for i := 0; i < nodes; i++ {
		procs[i] = spawnFedNode(t, i, peers, clients)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p != nil {
				p.shutdown()
			}
		}
	})
	for _, p := range procs {
		p.expect(t, "READY", 20*time.Second)
	}
	for _, p := range procs {
		p.expect(t, "HEALTHY", 20*time.Second)
	}

	// With 10 grid columns over 4 nodes the strips split as 3/3/2/2
	// columns: boundaries at x=300, 600, 800. The focal point sits in
	// strip 1; its k=5 neighborhood spans all four strips.
	focal := dmknn.Point{X: 450, Y: 500}
	positions := &fedPositions{pos: map[dmknn.ObjectID]dmknn.Point{
		1: {X: 430, Y: 500}, // strip 1, d=20
		2: {X: 250, Y: 500}, // strip 0, d=200
		3: {X: 650, Y: 500}, // strip 2, d=200
		4: {X: 850, Y: 500}, // strip 3, d=400
		5: {X: 460, Y: 520}, // strip 1, d≈22
		6: {X: 50, Y: 950},  // strip 0, far
		7: {X: 950, Y: 50},  // strip 3, far
		8: {X: 750, Y: 950}, // strip 2, far
	}}

	clientOpts := dmknn.FederationClientOptions{
		World:        fedWorld(),
		GridCols:     fedGrid,
		GridRows:     fedGrid,
		TickInterval: fedTick,
		Protocol:     fedProtocol(),
	}
	for id := dmknn.ObjectID(1); id <= 8; id++ {
		id := id
		oc, err := dmknn.DialObjectCluster(clients, id,
			func() dmknn.Point { return positions.get(id) }, clientOpts)
		if err != nil {
			t.Fatalf("object %d: %v", id, err)
		}
		t.Cleanup(func() { oc.Close() })
	}
	const k = 5
	qc, err := dmknn.DialQueryCluster(clients, 100, 1, k,
		func() dmknn.Point { return focal },
		func() dmknn.Vector { return dmknn.Vector{} },
		nil, clientOpts)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	t.Cleanup(func() { qc.Close() })
	truth := func() map[dmknn.ObjectID]bool { return positions.knn(focal, k) }

	// Checkpoint 1: steady state. The k=5 answer spans strips 0..3, so
	// exactness here already proves cross-node install/report relaying.
	auditExact(t, "steady state", qc, truth, 60*time.Second)

	// Checkpoint 2: two objects teleport across strip boundaries —
	// object 4 from strip 3 into the focal strip (entering the front of
	// the answer), object 3 from strip 2 to the far corner of strip 3
	// (leaving it). Their clients migrate attachment; membership flips.
	positions.set(4, dmknn.Point{X: 550, Y: 500})
	positions.set(3, dmknn.Point{X: 950, Y: 950})
	auditExact(t, "after handoffs", qc, truth, 60*time.Second)

	// Checkpoint 3: chaos. Kill node 3 — NOT the query's home (the
	// focal point is in strip 1) — losing the processes' sessions and
	// the clients attached there, then rejoin it on the same addresses.
	procs[3].kill()
	procs[3] = spawnFedNode(t, 3, peers, clients)
	procs[3].expect(t, "READY", 20*time.Second)
	procs[3].expect(t, "HEALTHY", 30*time.Second)

	// After re-convergence, an object served by the rejoined node moves
	// into the focal strip; the answer must track it exactly — which
	// requires the rejoined node to have re-learned the query and its
	// reattached clients to be live.
	positions.set(7, dmknn.Point{X: 500, Y: 450})
	auditExact(t, "after rejoin", qc, truth, 90*time.Second)
}
