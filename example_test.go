package dmknn_test

import (
	"fmt"
	"time"

	"dmknn"
)

// ExampleRun compares the distributed protocol against the centralized
// periodic baseline on a small synthetic workload.
func ExampleRun() {
	base := dmknn.SimConfig{
		World:          dmknn.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		GridCols:       16,
		GridRows:       16,
		NumObjects:     500,
		NumQueries:     4,
		K:              5,
		MaxObjectSpeed: 10,
		MaxQuerySpeed:  10,
		Ticks:          50,
		Warmup:         10,
		Seed:           1,
		Protocol:       dmknn.Protocol{HorizonTicks: 8, MinProbeRadius: 100},
	}

	cp := base
	cp.Method = dmknn.MethodCP
	cpRep, err := dmknn.Run(cp)
	if err != nil {
		panic(err)
	}
	dk := base
	dk.Method = dmknn.MethodDKNN
	dkRep, err := dmknn.Run(dk)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cp exact: %v\n", cpRep.Exactness == 1)
	fmt.Printf("dknn exact: %v\n", dkRep.Exactness == 1)
	fmt.Printf("dknn cheaper: %v\n", dkRep.UplinkPerTick < cpRep.UplinkPerTick/2)
	// Output:
	// cp exact: true
	// dknn exact: true
	// dknn cheaper: true
}

// ExampleListenAndServe runs the full TCP deployment in-process: a query
// server, one moving-object client, and a continuous query over it.
func ExampleListenAndServe() {
	world := dmknn.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	tick := 10 * time.Millisecond

	srv, err := dmknn.ListenAndServe("127.0.0.1:0", dmknn.ServerOptions{
		World:        world,
		TickInterval: tick,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	opts := dmknn.ClientOptions{World: world, TickInterval: tick}
	obj, err := dmknn.DialObject(srv.Addr(), 1,
		func() dmknn.Point { return dmknn.Point{X: 510, Y: 500} }, opts)
	if err != nil {
		panic(err)
	}
	defer obj.Close()

	got := make(chan dmknn.Answer, 1)
	qc, err := dmknn.DialQuery(srv.Addr(), 100, 1, 1,
		func() dmknn.Point { return dmknn.Point{X: 500, Y: 500} },
		func() dmknn.Vector { return dmknn.Vector{} },
		func(a dmknn.Answer) {
			select {
			case got <- a:
			default:
			}
		}, opts)
	if err != nil {
		panic(err)
	}
	defer qc.Close()

	a := <-got
	fmt.Printf("nearest object: %d at %.0fm\n", a.Neighbors[0].ID, a.Neighbors[0].Distance)
	// Output:
	// nearest object: 1 at 10m
}
