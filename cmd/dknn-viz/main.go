// Command dknn-viz renders a live ASCII view of a running simulation:
// objects as dots, query focal points as '@', and the current answer
// members of the first query as '#'. It is a debugging and demo aid —
// watching the answer set follow the query around makes the protocol's
// behavior tangible.
//
// Usage:
//
//	dknn-viz [-n 400] [-queries 3] [-k 8] [-ticks 200] [-fps 10]
//	         [-width 100] [-height 40] [-plain]
//
// -plain suppresses ANSI cursor control (one frame after another), for
// piping to a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmknn/internal/core"
	"dmknn/internal/geo"
	"dmknn/internal/model"
	"dmknn/internal/sim"
	"dmknn/internal/workload"
)

func main() {
	n := flag.Int("n", 400, "number of objects")
	queries := flag.Int("queries", 3, "number of queries")
	k := flag.Int("k", 8, "neighbors per query")
	ticks := flag.Int("ticks", 200, "frames to render")
	fps := flag.Float64("fps", 10, "frames per second")
	width := flag.Int("width", 100, "view width, characters")
	height := flag.Int("height", 40, "view height, characters")
	plain := flag.Bool("plain", false, "no ANSI cursor control")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	cfg := workload.Quick()
	cfg.NumObjects = *n
	cfg.NumQueries = *queries
	cfg.K = *k
	cfg.Seed = *seed
	cfg.DisableAudit = true

	proto := core.DefaultConfig()
	proto.HorizonTicks = 8
	proto.MinProbeRadius = 100
	method, err := core.New(proto)
	if err != nil {
		fatal(err)
	}
	eng, err := sim.NewEngine(cfg, method)
	if err != nil {
		fatal(err)
	}
	env := eng.Env()

	frame := make([][]byte, *height)
	for i := range frame {
		frame[i] = make([]byte, *width)
	}
	interval := time.Duration(float64(time.Second) / *fps)

	for t := 0; t < *ticks; t++ {
		if err := eng.Step(); err != nil {
			fatal(err)
		}
		render(frame, env, method)
		if !*plain {
			fmt.Print("\033[H\033[2J")
		}
		var b strings.Builder
		for _, row := range frame {
			b.Write(row)
			b.WriteByte('\n')
		}
		up := env.Net.Counters().Sent(0)
		fmt.Printf("%stick %-4d  uplinks so far %-8d  ('.' object, '#' answer member, '@' query)\n",
			b.String(), eng.Now(), up)
		time.Sleep(interval)
	}
}

// render paints the world state into the character frame.
func render(frame [][]byte, env *sim.Env, method *core.Method) {
	h, w := len(frame), len(frame[0])
	for _, row := range frame {
		for i := range row {
			row[i] = ' '
		}
	}
	world := env.World
	plot := func(p geo.Point, ch byte) {
		x := int(float64(w) * (p.X - world.Min.X) / world.Width())
		y := int(float64(h) * (p.Y - world.Min.Y) / world.Height())
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		// Screen y grows downward; world y grows upward.
		frame[h-1-y][x] = ch
	}
	members := map[model.ObjectID]bool{}
	for i := range env.Queries {
		for _, nb := range method.ServerAnswer(env.Queries[i].Spec.ID).Neighbors {
			members[nb.ID] = true
		}
	}
	for i := range env.Objects {
		ch := byte('.')
		if members[env.Objects[i].ID] {
			ch = '#'
		}
		plot(env.Objects[i].Pos, ch)
	}
	for i := range env.Queries {
		plot(env.Queries[i].State.Pos, '@')
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dknn-viz: %v\n", err)
	os.Exit(1)
}
