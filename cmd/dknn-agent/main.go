// Command dknn-agent simulates mobile clients against a running dknnd
// server: it spawns a fleet of moving objects (random-waypoint motion)
// and optionally a moving kNN query, all over real TCP.
//
// Usage:
//
//	dknn-agent [-addr 127.0.0.1:7707] [-objects 100] [-world 10000]
//	           [-speed 20] [-tick 1s] [-query 1] [-k 10] [-duration 30s]
//
// Against a federation, pass every node's client address instead (in
// node-id order, matching the servers' -client-addrs); the agents then
// attach to the node owning their position and follow it across strip
// boundaries:
//
//	dknn-agent -addrs 127.0.0.1:7707,127.0.0.1:7708 -grid 64 ...
//
// With -query N the agent also registers query id N (k nearest objects
// to a moving focal point) and prints every answer update it receives.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmknn"
	"dmknn/internal/geo"
	"dmknn/internal/mobility"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "server address (standalone server)")
	addrs := flag.String("addrs", "", "comma-separated client addresses of ALL federation nodes, in node-id order")
	objects := flag.Int("objects", 100, "number of moving objects to simulate")
	world := flag.Float64("world", 10000, "world side length in meters (must match the server)")
	gridN := flag.Int("grid", 64, "broadcast grid cells per side (federation; must match the servers)")
	speed := flag.Float64("speed", 20, "max speed, m/s")
	tick := flag.Duration("tick", time.Second, "evaluation interval (must match the server)")
	queryID := flag.Uint("query", 0, "register this query id (0 = objects only)")
	k := flag.Int("k", 10, "number of neighbors for the query")
	queryRange := flag.Float64("range", 0, "make the query a fixed-radius range monitor of this many meters (overrides -k; standalone only)")
	baseID := flag.Uint("base-id", 1, "first object client id")
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	seed := flag.Int64("seed", 1, "trajectory seed")
	flag.Parse()

	var fedAddrs []string
	if *addrs != "" {
		fedAddrs = strings.Split(*addrs, ",")
	}

	rect := geo.NewRect(geo.Pt(0, 0), geo.Pt(*world, *world))
	model, err := mobility.NewRandomWaypoint(mobility.Config{
		World: rect, MinSpeed: *speed / 4, MaxSpeed: *speed, Seed: *seed,
	}, 0)
	if err != nil {
		fatal(err)
	}
	// One extra state for the query focal point, when requested.
	n := *objects
	if *queryID != 0 {
		n++
	}
	states := model.Init(n)

	worldRect := dmknn.Rect{MinX: 0, MinY: 0, MaxX: *world, MaxY: *world}
	opts := dmknn.ClientOptions{World: worldRect, TickInterval: *tick}
	fedOpts := dmknn.FederationClientOptions{
		World: worldRect, GridCols: *gridN, GridRows: *gridN, TickInterval: *tick,
	}

	// Drive all trajectories from one goroutine at the tick rate.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(*tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				model.Step(states, tick.Seconds())
			}
		}
	}()

	var closers []func() error
	for i := 0; i < *objects; i++ {
		idx := i
		id := dmknn.ObjectID(uint32(*baseID) + uint32(i))
		pos := func() dmknn.Point {
			return dmknn.Point{X: states[idx].Pos.X, Y: states[idx].Pos.Y}
		}
		var oc *dmknn.ObjectClient
		var err error
		if fedAddrs != nil {
			oc, err = dmknn.DialObjectCluster(fedAddrs, id, pos, fedOpts)
		} else {
			oc, err = dmknn.DialObject(*addr, id, pos, opts)
		}
		if err != nil {
			fatal(fmt.Errorf("object %d: %w", id, err))
		}
		closers = append(closers, oc.Close)
	}
	where := *addr
	if fedAddrs != nil {
		where = fmt.Sprintf("%d-node federation", len(fedAddrs))
	}
	fmt.Printf("dknn-agent: %d objects connected to %s\n", *objects, where)

	if *queryID != 0 {
		qi := n - 1
		clientID := dmknn.ObjectID(uint32(*baseID) + uint32(*objects))
		pos := func() dmknn.Point { return dmknn.Point{X: states[qi].Pos.X, Y: states[qi].Pos.Y} }
		vel := func() dmknn.Vector { return dmknn.Vector{X: states[qi].Vel.X, Y: states[qi].Vel.Y} }
		show := func(a dmknn.Answer) { fmt.Printf("dknn-agent: %v\n", a) }
		var qc *dmknn.QueryClient
		var err error
		switch {
		case fedAddrs != nil && *queryRange > 0:
			fatal(fmt.Errorf("range queries are not supported in federation mode"))
		case fedAddrs != nil:
			qc, err = dmknn.DialQueryCluster(fedAddrs, clientID, dmknn.QueryID(*queryID), *k, pos, vel, show, fedOpts)
		case *queryRange > 0:
			qc, err = dmknn.DialRange(*addr, clientID, dmknn.QueryID(*queryID), *queryRange, pos, vel, show, opts)
		default:
			qc, err = dmknn.DialQuery(*addr, clientID, dmknn.QueryID(*queryID), *k, pos, vel, show, opts)
		}
		if err != nil {
			fatal(fmt.Errorf("query %d: %w", *queryID, err))
		}
		closers = append(closers, qc.Close)
		fmt.Printf("dknn-agent: query %d registered (k=%d range=%g)\n", *queryID, *k, *queryRange)
	}

	time.Sleep(*duration)
	close(stop)
	for _, c := range closers {
		if err := c(); err != nil {
			fmt.Fprintf(os.Stderr, "dknn-agent: close: %v\n", err)
		}
	}
	fmt.Println("dknn-agent: done")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dknn-agent: %v\n", err)
	os.Exit(1)
}
